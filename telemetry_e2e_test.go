// Fleet telemetry plane end-to-end (PROTOCOL.md §3.10): a 4-broker
// fabric publishes delta-encoded TELEMETRY_SNAPSHOTs on the
// system-telemetry topic; one `tracectl top` subscription assembles
// every broker's series, an injected egress-queue-depth breach fires
// exactly one edge-triggered alert (clearing after the hold-down), and
// a crashed broker raises the synthesized absence-of-heartbeat alert —
// all asserted through the -format json board.
package entitytrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"entitytrace/internal/broker"
	"entitytrace/internal/harness"
	"entitytrace/internal/message"
	"entitytrace/internal/obs"
	"entitytrace/internal/obs/timeseries"
	"entitytrace/internal/topic"
	"entitytrace/internal/tracectl"
)

// TestMetricNameLint keeps every metric registered by any package in
// this binary honest against the exposition naming conventions
// (counters end _total, histograms carry a unit, no kind collisions).
// The root package imports effectively everything, so init-registered
// metrics across the codebase are all visible here.
func TestMetricNameLint(t *testing.T) {
	if v := obs.CheckNames(obs.Default.Snapshot()); len(v) != 0 {
		t.Fatalf("metric naming violations:\n  %s", strings.Join(v, "\n  "))
	}
}

// telemetryBoard polls the assembler's rendered -format json output —
// the same bytes `tracectl top -format json` prints — back into a
// TopBoard, so every assertion goes through the public JSON surface.
func telemetryBoard(t *testing.T, a *tracectl.TopAssembler) *tracectl.TopBoard {
	t.Helper()
	var buf bytes.Buffer
	if err := tracectl.RenderTopJSON(&buf, a.Board()); err != nil {
		t.Fatal(err)
	}
	var b tracectl.TopBoard
	if err := json.Unmarshal(buf.Bytes(), &b); err != nil {
		t.Fatalf("board JSON does not parse: %v\n%s", err, buf.String())
	}
	return &b
}

func boardAlert(b *tracectl.TopBoard, rule string) *tracectl.TopAlert {
	for i := range b.Alerts {
		if b.Alerts[i].Rule == rule {
			return &b.Alerts[i]
		}
	}
	return nil
}

func TestTelemetryFleetTopE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("telemetry e2e skipped in short mode")
	}
	const interval = 250 * time.Millisecond
	rules, err := timeseries.ParseRules(
		"deep-queues: broker_egress_queue_depth > 50 for 500ms hold 750ms")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := harness.New(harness.Options{
		Brokers:           4,
		Fabric:            true,
		TelemetryInterval: interval,
		TelemetryRules:    rules,
		EgressQueue:       2048,
		// Keep the stalled consumer connected (not evicted) so the injected
		// queue depth persists across the rule's for-window.
		SlowConsumerDeadline: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// One subscription on one broker sees the whole fleet: the topic's
	// Disseminate distribution propagates snapshots network-wide.
	a := tracectl.NewTopAssembler(nil)
	go func() {
		_ = tracectl.WatchTelemetry(tb.Transport(), tb.Addrs[0], "telemetry-watcher",
			5*time.Minute, interval, a, nil)
	}()

	// Phase 1: every broker's series assemble from /System/Telemetry.
	waitFor(t, 30*time.Second, func() bool {
		b := telemetryBoard(t, a)
		if len(b.Brokers) != 4 {
			return false
		}
		for _, v := range b.Brokers {
			if v.Stale || v.AtNanos == 0 {
				return false
			}
			for _, series := range []string{
				"broker_published_total", "broker_egress_queue_depth",
				"fabric_epoch", "fabric_members",
			} {
				if _, ok := v.Series[series]; !ok {
					return false
				}
			}
			// Gossip convergence: every broker's own membership view must
			// have reached full strength, not merely started reporting.
			if v.Series["fabric_members"].Value != 4 {
				return false
			}
		}
		return true
	})
	board := telemetryBoard(t, a)
	if boardAlert(board, "deep-queues") != nil || board.Episodes != 0 {
		t.Fatalf("alerts before any breach: %+v", board.Alerts)
	}

	// Phase 2: inject the egress breach on broker 0 — a consumer that
	// acks its subscription and then never reads another frame, plus a
	// publisher piling frames onto it. The per-peer queue depth climbs
	// past the threshold and stays there.
	noise := topic.MustParse("/e2e/telemetry/noise")
	stallTr := &stallRecvTransport{Transport: tb.Transport(), passRecvs: 2}
	staller, err := broker.Connect(stallTr, tb.Addrs[0], "telemetry-staller")
	if err != nil {
		t.Fatal(err)
	}
	defer staller.Close()
	if err := staller.Subscribe(noise, func(*message.Envelope) {}); err != nil {
		t.Fatal(err)
	}
	pub, err := broker.Connect(tb.Transport(), tb.Addrs[0], "telemetry-pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// Publish until the stalled peer's queue visibly exceeds the rule
	// threshold: the subscription must first propagate across the fabric,
	// so frames sent too early are legitimately dropped, not queued.
	waitFor(t, 30*time.Second, func() bool {
		for i := 0; i < 100; i++ {
			if err := pub.Publish(message.New(message.TypeData, noise, "telemetry-pub", []byte("fill"))); err != nil {
				t.Fatalf("noise publish: %v", err)
			}
		}
		time.Sleep(20 * time.Millisecond)
		queued := 0
		for _, p := range tb.Brokers[0].Health().Peers {
			queued += p.Queued
		}
		return queued > 100
	})

	// Phase 3: exactly one firing edge, via the JSON board.
	waitFor(t, 30*time.Second, func() bool {
		return boardAlert(telemetryBoard(t, a), "deep-queues") != nil
	})
	board = telemetryBoard(t, a)
	al := boardAlert(board, "deep-queues")
	if al.Series != "broker_egress_queue_depth" || al.Broker != "hb0" || al.Value <= 50 {
		t.Fatalf("firing alert = %+v", al)
	}
	if board.Episodes != 1 {
		t.Fatalf("episodes after fire = %d, want 1", board.Episodes)
	}
	// The alert stays edge-triggered: several more publisher intervals of
	// a standing breach add no new episodes.
	time.Sleep(4 * interval)
	if got := telemetryBoard(t, a).Episodes; got != 1 {
		t.Fatalf("standing breach re-fired: %d episodes", got)
	}

	// Phase 4: relieve the breach; the alert clears after the hold-down
	// without opening a second episode.
	staller.Close()
	waitFor(t, 30*time.Second, func() bool {
		return boardAlert(telemetryBoard(t, a), "deep-queues") == nil
	})
	if got := telemetryBoard(t, a).Episodes; got != 1 {
		t.Fatalf("episodes after clear = %d, want 1 (clear must not re-fire)", got)
	}

	// Phase 5: crash a broker. Its snapshots stop, and the assembler's
	// subscriber-side absence detector raises the synthesized
	// heartbeat-absent alert a dead broker cannot publish for itself.
	if err := tb.StopBroker(3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, func() bool {
		al := boardAlert(telemetryBoard(t, a), "heartbeat-absent")
		return al != nil && al.Broker == "hb3" && al.Synthesized
	})
	board = telemetryBoard(t, a)
	var hb3 *tracectl.TopBrokerView
	for i := range board.Brokers {
		if board.Brokers[i].Broker == "hb3" {
			hb3 = &board.Brokers[i]
		}
	}
	if hb3 == nil || !hb3.Stale {
		t.Fatalf("crashed broker not marked stale: %+v", hb3)
	}
	if board.Episodes != 2 {
		t.Fatalf("episodes after crash = %d, want 2 (deep-queues + heartbeat-absent)", board.Episodes)
	}

	// The text renderer carries the same story for humans.
	var txt bytes.Buffer
	tracectl.RenderTop(&txt, a.Board())
	for _, want := range []string{"hb0", "hb3", "[STALE]", "ALERT*", "heartbeat-absent", "fleet: 4 broker(s)"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("RenderTop output missing %q:\n%s", want, txt.String())
		}
	}
}
