// Package avail derives availability analytics from the verified trace
// stream: a per-entity state machine driven by trace observations, a
// bounded interval ledger behind it, and an SLO engine on top. The
// paper's machinery proves *that* an entity's availability can be
// tracked securely; this package turns the resulting stream into the
// numbers an operator asks for — rolling-window uptime, MTBF/MTTR,
// flap detection with hold-down damping, skew-corrected time-to-detect
// and error-budget burn. Everything is driven by an injected clock, so
// the whole ledger is deterministic under internal/clock fakes.
package avail

import (
	"fmt"
	"sync"
	"time"

	"entitytrace/internal/clock"
	"entitytrace/internal/message"
	"entitytrace/internal/obs"
)

// State is the availability state the ledger exposes for an entity.
// The numeric values are the wire encoding used by
// message.AvailabilityRow.State.
type State uint8

const (
	// Unknown: no observation yet.
	Unknown State = iota
	// Up: last evidence shows the entity available.
	Up
	// Suspect: the broker published FAILURE_SUSPICION; still counted as
	// up for uptime accounting until FAILED/DISCONNECT confirms.
	Suspect
	// Down: the entity failed, disconnected or shut down.
	Down
	// Flapping: the entity crossed up<->down too often within the flap
	// window; held until it stays quiet for the hold-down period.
	Flapping
)

// String names the state the way the board renders it.
func (s State) String() string {
	switch s {
	case Up:
		return "UP"
	case Suspect:
		return "SUSPECT"
	case Down:
		return "DOWN"
	case Flapping:
		return "FLAPPING"
	default:
		return "UNKNOWN"
	}
}

// Kind classifies one observation's availability evidence.
type Kind uint8

const (
	// KindUp is positive evidence of availability (JOIN, READY,
	// ALLS_WELL, ...).
	KindUp Kind = iota
	// KindSuspect is the broker's unconfirmed failure suspicion.
	KindSuspect
	// KindDown is confirmed unavailability (FAILED, DISCONNECT,
	// SHUTDOWN).
	KindDown
)

// KindForType maps a trace type to its availability evidence. The
// second result is false for traces that carry no availability signal
// (interest gauging, silent mode, system snapshots).
func KindForType(t message.Type) (Kind, bool) {
	switch t {
	case message.TraceJoin, message.TraceInitializing, message.TraceRecovering,
		message.TraceReady, message.TraceAllsWell, message.TraceLoadInformation:
		return KindUp, true
	case message.TraceFailureSuspicion:
		return KindSuspect, true
	case message.TraceFailed, message.TraceDisconnect, message.TraceShutdown:
		return KindDown, true
	default:
		return 0, false
	}
}

// Observation is one availability-relevant trace about an entity.
type Observation struct {
	// Entity names the traced entity.
	Entity string
	// Kind is the availability evidence.
	Kind Kind
	// At is the reporter-stamped event time (the broker's SentAt for
	// failure traces); the zero value means unknown.
	At time.Time
	// SeenAt is the local observation time; the zero value selects the
	// ledger clock's now.
	SeenAt time.Time
	// Hops, when present, carries the trace's span records so
	// time-to-detect can be skew-corrected via obs.Assemble instead of
	// trusting raw cross-node clock arithmetic.
	Hops []obs.HopRecord
}

// Event is an availability alert emitted through Config.OnEvent.
type Event struct {
	// Entity names the subject.
	Entity string
	// Type is one of "transition", "flap_start", "flap_end",
	// "slo_breach", "slo_clear" or "burn_alert".
	Type string
	// Old and New frame a transition; equal for non-transition events.
	Old, New State
	// At is the ledger time of the event.
	At time.Time
}

// Config tunes a Ledger. The zero value is usable: real clock, the
// 5m/1h/24h windows, and the default flap and bound parameters.
type Config struct {
	// Clock drives all ledger time; nil selects clock.Real.
	Clock clock.Clock
	// Windows are the rolling uptime windows, shortest first; nil
	// selects DefaultWindows.
	Windows []time.Duration
	// MaxIntervals bounds the closed up/down intervals retained per
	// entity (the ledger's memory bound); zero selects 512.
	MaxIntervals int
	// MaxEntities bounds tracked entities; observations about further
	// entities are dropped (and counted). Zero selects 4096.
	MaxEntities int
	// FlapTransitions is the N in "N up<->down transitions within
	// FlapWindow mean FLAPPING"; zero selects 5.
	FlapTransitions int
	// FlapWindow is the flap-counting window; zero selects 1 minute.
	FlapWindow time.Duration
	// FlapHold is the hold-down: the entity must stay transition-free
	// this long before FLAPPING clears; zero selects 30 seconds.
	FlapHold time.Duration
	// DefaultSLO applies to entities without a per-entity SetSLO; the
	// zero value disables SLO accounting.
	DefaultSLO SLO
	// BurnAlert, when positive, emits a burn_alert event whenever an
	// entity's error-budget burn rate crosses above it (edge
	// triggered).
	BurnAlert float64
	// Registry receives the ledger's gauges and counters; nil disables
	// metrics.
	Registry *obs.Registry
	// Log receives structured availability events; nil silences them.
	Log *obs.Logger
	// OnEvent, when set, receives every availability alert. Called
	// without ledger locks held.
	OnEvent func(Event)
}

// DefaultWindows are the rolling uptime windows the ledger derives.
var DefaultWindows = []time.Duration{5 * time.Minute, time.Hour, 24 * time.Hour}

// interval is one closed stretch of up or down time.
type interval struct {
	start, end int64 // unix nanos
	up         bool
}

// record is one entity's ledger: current state, the bounded closed
// interval ring, running accumulators and SLO position. Each record has
// its own lock so observations about different entities never contend.
type record struct {
	mu sync.Mutex

	state     State // Unknown/Up/Suspect/Down; Flapping is the overlay below
	since     int64 // when state was entered
	firstSeen int64
	lastSeen  int64

	// Bounded ring of closed intervals; prunedTo marks time dropped off
	// the old end so window math never claims coverage it lost.
	ivals    []interval
	head, n  int
	prunedTo int64
	curStart int64
	curUp    bool

	// Closed-interval accumulators for MTBF/MTTR.
	upAccum, downAccum   int64
	failures, recoveries uint64
	transitions          uint64

	// Flap detection: ring of the last FlapTransitions flip times.
	flips     []int64
	flipHead  int
	flipN     int
	flapping  bool
	flapSince int64
	flaps     uint64

	// Skew-corrected time-to-detect of the last/worst failure.
	detectLast, detectMax int64

	// SLO position (evaluated at digest/status time).
	slo      SLO
	hasSLO   bool
	breached bool
	breaches uint64
	burnHot  bool
}

// Ledger tracks availability for a set of entities.
type Ledger struct {
	cfg Config

	mu      sync.RWMutex
	records map[string]*record

	// Metrics (nil when Config.Registry is nil).
	transitionsTotal *obs.Counter
	flapsTotal       *obs.Counter
	breachesTotal    *obs.Counter
	burnAlertsTotal  *obs.Counter
	droppedTotal     *obs.Counter
	detectHist       *obs.Histogram
}

// New builds a ledger.
func New(cfg Config) *Ledger {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = DefaultWindows
	}
	if cfg.MaxIntervals <= 0 {
		cfg.MaxIntervals = 512
	}
	if cfg.MaxEntities <= 0 {
		cfg.MaxEntities = 4096
	}
	if cfg.FlapTransitions <= 0 {
		cfg.FlapTransitions = 5
	}
	if cfg.FlapWindow <= 0 {
		cfg.FlapWindow = time.Minute
	}
	if cfg.FlapHold <= 0 {
		cfg.FlapHold = 30 * time.Second
	}
	l := &Ledger{cfg: cfg, records: make(map[string]*record)}
	if r := cfg.Registry; r != nil {
		l.transitionsTotal = r.Counter("avail_transitions_total")
		l.flapsTotal = r.Counter("avail_flaps_total")
		l.breachesTotal = r.Counter("avail_slo_breaches_total")
		l.burnAlertsTotal = r.Counter("avail_burn_alerts_total")
		l.droppedTotal = r.Counter("avail_observations_dropped_total")
		l.detectHist = r.Histogram("avail_detect_latency_ms", nil)
	}
	return l
}

// record returns the entity's record, creating it under the entity
// bound; nil when the ledger is full.
func (l *Ledger) record(entity string) *record {
	l.mu.RLock()
	rec := l.records[entity]
	l.mu.RUnlock()
	if rec != nil {
		return rec
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec = l.records[entity]; rec != nil {
		return rec
	}
	if len(l.records) >= l.cfg.MaxEntities {
		return nil
	}
	rec = &record{
		ivals: make([]interval, l.cfg.MaxIntervals),
		flips: make([]int64, l.cfg.FlapTransitions),
	}
	if l.cfg.DefaultSLO.Target > 0 {
		rec.slo, rec.hasSLO = l.cfg.DefaultSLO, true
	}
	l.records[entity] = rec
	return rec
}

// Observe feeds one availability observation into the ledger. The
// steady-state path — an observation that confirms the current state —
// is a map read plus a per-entity lock and timestamp store, so it can
// sit directly on the tracker's verified delivery path.
func (l *Ledger) Observe(ob Observation) {
	rec := l.record(ob.Entity)
	if rec == nil {
		if l.droppedTotal != nil {
			l.droppedTotal.Inc()
		}
		return
	}
	target := Up
	switch ob.Kind {
	case KindSuspect:
		target = Suspect
	case KindDown:
		target = Down
	}
	now := ob.SeenAt
	if now.IsZero() {
		now = l.cfg.Clock.Now()
	}
	nn := now.UnixNano()

	rec.mu.Lock()
	if rec.state == target && !rec.flapping {
		// Hot path: evidence confirms what the ledger already believes.
		rec.lastSeen = nn
		rec.mu.Unlock()
		return
	}
	events := l.advance(rec, ob, target, nn)
	rec.mu.Unlock()
	l.emit(events)
}

// advance applies a (potential) state change with rec.mu held and
// returns the alerts to emit once the lock is released.
func (l *Ledger) advance(rec *record, ob Observation, target State, nn int64) []Event {
	var events []Event
	old := displayState(rec)
	rec.lastSeen = nn

	// Hold-down: clear FLAPPING once the entity has stayed quiet.
	if rec.flapping && nn-l.lastFlip(rec) >= int64(l.cfg.FlapHold) {
		rec.flapping = false
		events = append(events, Event{Entity: ob.Entity, Type: "flap_end",
			Old: Flapping, New: target, At: time.Unix(0, nn)})
	}

	if rec.state != target {
		wasUp := rec.state == Up || rec.state == Suspect
		isUp := target == Up || target == Suspect
		switch {
		case rec.state == Unknown:
			rec.firstSeen = nn
			rec.curStart = nn
			rec.curUp = isUp
		case wasUp != isUp:
			l.closeInterval(rec, nn)
			rec.curStart = nn
			rec.curUp = isUp
			rec.transitions++
			if isUp {
				rec.recoveries++
			} else {
				rec.failures++
				l.noteDetection(rec, ob, nn)
			}
			if l.transitionsTotal != nil {
				l.transitionsTotal.Inc()
			}
			if flapped := l.recordFlip(rec, nn); flapped {
				events = append(events, Event{Entity: ob.Entity, Type: "flap_start",
					Old: old, New: Flapping, At: time.Unix(0, nn)})
			} else if !rec.flapping {
				// Damping: while FLAPPING, individual transitions are
				// suppressed — the flap episode is the alert.
				events = append(events, Event{Entity: ob.Entity, Type: "transition",
					Old: old, New: target, At: time.Unix(0, nn)})
			}
		}
		rec.state = target
		rec.since = nn
	}
	return events
}

// closeInterval retires the open interval into the bounded ring,
// folding it into the MTBF/MTTR accumulators.
func (l *Ledger) closeInterval(rec *record, nn int64) {
	iv := interval{start: rec.curStart, end: nn, up: rec.curUp}
	if iv.up {
		rec.upAccum += iv.end - iv.start
	} else {
		rec.downAccum += iv.end - iv.start
	}
	if rec.n == len(rec.ivals) {
		// Ring full: the oldest interval falls off; remember how far the
		// ledger's window coverage now reaches back.
		rec.prunedTo = rec.ivals[rec.head].end
	} else {
		rec.n++
	}
	rec.ivals[rec.head] = iv
	rec.head = (rec.head + 1) % len(rec.ivals)
}

// recordFlip pushes a transition time into the flap ring and reports
// whether this transition started a flap episode.
func (l *Ledger) recordFlip(rec *record, nn int64) bool {
	rec.flips[rec.flipHead] = nn
	rec.flipHead = (rec.flipHead + 1) % len(rec.flips)
	if rec.flipN < len(rec.flips) {
		rec.flipN++
	}
	if rec.flipN < l.cfg.FlapTransitions {
		return false
	}
	// The ring is full here, so the next write slot holds the Nth-back
	// flip.
	oldest := rec.flips[rec.flipHead]
	if nn-oldest > int64(l.cfg.FlapWindow) {
		return false
	}
	if rec.flapping {
		return false
	}
	rec.flapping = true
	rec.flapSince = nn
	rec.flaps++
	if l.flapsTotal != nil {
		l.flapsTotal.Inc()
	}
	return true
}

// lastFlip returns the most recent transition time, or 0.
func (l *Ledger) lastFlip(rec *record) int64 {
	if rec.flipN == 0 {
		return 0
	}
	idx := (rec.flipHead - 1 + len(rec.flips)) % len(rec.flips)
	return rec.flips[idx]
}

// noteDetection records the time-to-detect of a failure: how long after
// the entity stopped being available the observer learned of it. With
// span hops present the delta is skew-corrected through obs.Assemble
// (the same normalization the waterfall uses); otherwise it falls back
// to the clamped difference between the reporter stamp and local
// receipt.
func (l *Ledger) noteDetection(rec *record, ob Observation, nn int64) {
	var d int64
	if len(ob.Hops) > 0 {
		if asm := obs.Assemble(ob.Hops); asm != nil {
			d = asm.TotalNanos
		}
	} else if !ob.At.IsZero() {
		d = nn - ob.At.UnixNano()
	}
	if d < 0 {
		d = 0
	}
	rec.detectLast = d
	if d > rec.detectMax {
		rec.detectMax = d
	}
	if l.detectHist != nil {
		l.detectHist.ObserveDuration(time.Duration(d))
	}
}

// displayState folds the flap overlay into the exposed state.
func displayState(rec *record) State {
	if rec.flapping {
		return Flapping
	}
	return rec.state
}

// emit delivers alerts to the log and callback outside ledger locks.
func (l *Ledger) emit(events []Event) {
	for _, ev := range events {
		if l.cfg.Log != nil {
			switch ev.Type {
			case "transition":
				l.cfg.Log.Info("availability transition",
					"entity", ev.Entity, "from", ev.Old.String(), "to", ev.New.String())
			case "flap_start":
				l.cfg.Log.Warn("entity flapping", "entity", ev.Entity)
			case "flap_end":
				l.cfg.Log.Info("flap cleared", "entity", ev.Entity, "state", ev.New.String())
			case "slo_breach":
				l.cfg.Log.Warn("SLO breached", "entity", ev.Entity)
			case "slo_clear":
				l.cfg.Log.Info("SLO recovered", "entity", ev.Entity)
			case "burn_alert":
				l.cfg.Log.Warn("error-budget burn alert", "entity", ev.Entity)
			}
		}
		if l.cfg.OnEvent != nil {
			l.cfg.OnEvent(ev)
		}
	}
}

// State returns the entity's current availability state.
func (l *Ledger) State(entity string) (State, bool) {
	l.mu.RLock()
	rec := l.records[entity]
	l.mu.RUnlock()
	if rec == nil {
		return Unknown, false
	}
	nn := l.cfg.Clock.Now().UnixNano()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	l.settle(rec, nn)
	return displayState(rec), true
}

// settle applies time-driven state (flap hold-down expiry) with rec.mu
// held; read paths call it so a quiet entity's FLAPPING clears even
// without fresh observations.
func (l *Ledger) settle(rec *record, nn int64) {
	if rec.flapping && nn-l.lastFlip(rec) >= int64(l.cfg.FlapHold) {
		rec.flapping = false
	}
}

// uptimeInWindow computes up and observed nanos within [nn-w, nn],
// honouring the ring's pruning bound. Observed covers only time the
// ledger actually has data for.
func (l *Ledger) uptimeInWindow(rec *record, nn int64, w time.Duration) (up, observed int64) {
	start := nn - int64(w)
	if rec.firstSeen > start {
		start = rec.firstSeen
	}
	if rec.prunedTo > start {
		start = rec.prunedTo
	}
	if rec.state == Unknown || start >= nn {
		return 0, 0
	}
	for i := 0; i < rec.n; i++ {
		iv := rec.ivals[(rec.head-rec.n+i+len(rec.ivals))%len(rec.ivals)]
		if iv.end <= start {
			continue
		}
		s := iv.start
		if s < start {
			s = start
		}
		if iv.up {
			up += iv.end - s
		}
	}
	s := rec.curStart
	if s < start {
		s = start
	}
	if s < nn && rec.curUp {
		up += nn - s
	}
	return up, nn - start
}

// Windows returns the configured rolling windows.
func (l *Ledger) Windows() []time.Duration { return l.cfg.Windows }

// FormatWindow renders a window duration the way the metrics label and
// the board spell it: "5m", "1h", "24h".
func FormatWindow(w time.Duration) string {
	switch {
	case w%time.Hour == 0:
		return fmt.Sprintf("%dh", w/time.Hour)
	case w%time.Minute == 0:
		return fmt.Sprintf("%dm", w/time.Minute)
	case w%time.Second == 0:
		return fmt.Sprintf("%ds", w/time.Second)
	default:
		return w.String()
	}
}
