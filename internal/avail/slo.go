package avail

import (
	"sort"
	"time"

	"entitytrace/internal/message"
	"entitytrace/internal/obs"
)

// SLO is an availability objective: Target availability (e.g. 0.999)
// over a rolling Window (e.g. one hour). The error budget is the
// complement: (1-Target)*Window of tolerated downtime per window.
type SLO struct {
	Target float64
	Window time.Duration
}

// Valid reports whether the SLO is enforceable.
func (s SLO) Valid() bool {
	return s.Target > 0 && s.Target < 1 && s.Window > 0
}

// BudgetStatus is one entity's error-budget position against its SLO.
type BudgetStatus struct {
	// Observed is how much of the window the ledger has data for.
	Observed time.Duration
	// Downtime is the down time within the window.
	Downtime time.Duration
	// Budget is the tolerated downtime per window: (1-Target)*Window.
	Budget time.Duration
	// Remaining is Budget-Downtime (negative once breached).
	Remaining time.Duration
	// BurnRate is the budget consumption rate normalized so 1.0 burns
	// the budget exactly over the window: (Downtime/Observed)/(1-Target).
	BurnRate float64
	// Breached reports Downtime >= Budget.
	Breached bool
}

// RemainingFraction is Remaining/Budget clamped to [0,1] — what the
// gauge and the digest carry.
func (b BudgetStatus) RemainingFraction() float64 {
	if b.Budget <= 0 {
		return 0
	}
	f := float64(b.Remaining) / float64(b.Budget)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// SetSLO sets a per-entity availability objective (creating the
// entity's record if needed); an invalid SLO clears it. The empty
// entity name changes the default applied to entities first seen from
// now on.
func (l *Ledger) SetSLO(entity string, slo SLO) {
	if entity == "" {
		l.mu.Lock()
		l.cfg.DefaultSLO = slo
		l.mu.Unlock()
		return
	}
	rec := l.record(entity)
	if rec == nil {
		return
	}
	rec.mu.Lock()
	rec.slo, rec.hasSLO = slo, slo.Valid()
	rec.breached, rec.burnHot = false, false
	rec.mu.Unlock()
}

// budgetLocked evaluates the entity's budget position with rec.mu held.
func (l *Ledger) budgetLocked(rec *record, nn int64) BudgetStatus {
	slo := rec.slo
	st := BudgetStatus{Budget: time.Duration((1 - slo.Target) * float64(slo.Window))}
	up, observed := l.uptimeInWindow(rec, nn, slo.Window)
	st.Observed = time.Duration(observed)
	st.Downtime = time.Duration(observed - up)
	st.Remaining = st.Budget - st.Downtime
	if observed > 0 && slo.Target < 1 {
		st.BurnRate = (float64(observed-up) / float64(observed)) / (1 - slo.Target)
	}
	st.Breached = st.Downtime >= st.Budget && st.Budget > 0
	return st
}

// checkSLOLocked evaluates the budget and flags edge-triggered breach
// and burn-rate crossings; returned events must be emitted after the
// record lock is released.
func (l *Ledger) checkSLOLocked(entity string, rec *record, nn int64) (BudgetStatus, []Event) {
	st := l.budgetLocked(rec, nn)
	var events []Event
	state := displayState(rec)
	if st.Breached && !rec.breached {
		rec.breached = true
		rec.breaches++
		if l.breachesTotal != nil {
			l.breachesTotal.Inc()
		}
		events = append(events, Event{Entity: entity, Type: "slo_breach",
			Old: state, New: state, At: time.Unix(0, nn)})
	} else if !st.Breached && rec.breached {
		rec.breached = false
		events = append(events, Event{Entity: entity, Type: "slo_clear",
			Old: state, New: state, At: time.Unix(0, nn)})
	}
	if l.cfg.BurnAlert > 0 {
		if st.BurnRate >= l.cfg.BurnAlert && !rec.burnHot {
			rec.burnHot = true
			if l.burnAlertsTotal != nil {
				l.burnAlertsTotal.Inc()
			}
			events = append(events, Event{Entity: entity, Type: "burn_alert",
				Old: state, New: state, At: time.Unix(0, nn)})
		} else if st.BurnRate < l.cfg.BurnAlert {
			rec.burnHot = false
		}
	}
	return st, events
}

// Digest snapshots the whole ledger as an AvailabilityDigest: one row
// per entity with state, window ratios, MTBF/MTTR, flap and detection
// statistics and the SLO budget position. Building the digest also
// refreshes the per-entity gauges (entity_up, availability_ratio_ppm,
// error_budget_remaining_ppm) and performs the edge-triggered SLO
// breach/burn accounting, so the digest loop doubles as the SLO
// evaluation cadence.
func (l *Ledger) Digest(reporter string) *message.AvailabilityDigest {
	now := l.cfg.Clock.Now()
	nn := now.UnixNano()

	l.mu.RLock()
	entities := make([]string, 0, len(l.records))
	for e := range l.records {
		entities = append(entities, e)
	}
	l.mu.RUnlock()
	sort.Strings(entities)

	d := &message.AvailabilityDigest{Reporter: reporter, AtNanos: nn}
	var pending []Event
	for _, entity := range entities {
		l.mu.RLock()
		rec := l.records[entity]
		l.mu.RUnlock()
		if rec == nil {
			continue
		}
		row, events := l.row(entity, rec, nn)
		d.Rows = append(d.Rows, row)
		pending = append(pending, events...)
	}
	l.emit(pending)
	return d
}

// row builds one entity's digest row and refreshes its gauges.
func (l *Ledger) row(entity string, rec *record, nn int64) (message.AvailabilityRow, []Event) {
	rec.mu.Lock()
	l.settle(rec, nn)
	state := displayState(rec)
	row := message.AvailabilityRow{
		Entity:          entity,
		State:           uint8(state),
		SinceNanos:      rec.since,
		Transitions:     uint32(rec.transitions),
		Flaps:           uint32(rec.flaps),
		MTBFNanos:       meanNanos(rec.upAccum, rec.failures),
		MTTRNanos:       meanNanos(rec.downAccum, rec.recoveries),
		DetectLastNanos: rec.detectLast,
		DetectMaxNanos:  rec.detectMax,
		BudgetRemaining: -1,
		BurnRate:        -1,
	}
	row.DowntimeNanos = rec.downAccum
	if rec.state != Unknown && !rec.curUp {
		row.DowntimeNanos += nn - rec.curStart
	}
	ratios := [3]float64{-1, -1, -1}
	for i, w := range l.cfg.Windows {
		up, observed := l.uptimeInWindow(rec, nn, w)
		r := -1.0
		if observed > 0 {
			r = float64(up) / float64(observed)
		}
		if i < len(ratios) {
			ratios[i] = r
		}
	}
	row.Uptime5m, row.Uptime1h, row.Uptime24h = ratios[0], ratios[1], ratios[2]

	var events []Event
	if rec.hasSLO && rec.slo.Valid() {
		var st BudgetStatus
		st, events = l.checkSLOLocked(entity, rec, nn)
		row.BudgetRemaining = st.RemainingFraction()
		row.BurnRate = st.BurnRate
		row.Breaches = uint32(rec.breaches)
	}
	rec.mu.Unlock()

	l.refreshGauges(entity, state, ratios[:], row)
	return row, events
}

// refreshGauges publishes the entity's current position into the
// registry. Gauges are integer-valued, so ratios are exposed in parts
// per million (999_500 == 99.95%).
func (l *Ledger) refreshGauges(entity string, state State, ratios []float64, row message.AvailabilityRow) {
	r := l.cfg.Registry
	if r == nil {
		return
	}
	up := int64(0)
	if state == Up || state == Suspect {
		up = 1
	}
	r.Gauge(obs.WithLabel("entity_up", "entity", entity)).Set(up)
	for i, w := range l.cfg.Windows {
		if i >= len(ratios) || ratios[i] < 0 {
			continue
		}
		name := "availability_ratio_ppm{entity=\"" + entity + "\",window=\"" + FormatWindow(w) + "\"}"
		r.Gauge(name).Set(int64(ratios[i] * 1e6))
	}
	if row.BudgetRemaining >= 0 {
		r.Gauge(obs.WithLabel("error_budget_remaining_ppm", "entity", entity)).Set(int64(row.BudgetRemaining * 1e6))
	}
}

// Budget returns the entity's current budget position (false when the
// entity is unknown or carries no SLO).
func (l *Ledger) Budget(entity string) (BudgetStatus, bool) {
	l.mu.RLock()
	rec := l.records[entity]
	l.mu.RUnlock()
	if rec == nil {
		return BudgetStatus{}, false
	}
	nn := l.cfg.Clock.Now().UnixNano()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if !rec.hasSLO || !rec.slo.Valid() {
		return BudgetStatus{}, false
	}
	return l.budgetLocked(rec, nn), true
}

// meanNanos is total/count, zero-safe.
func meanNanos(total int64, count uint64) int64 {
	if count == 0 {
		return 0
	}
	return total / int64(count)
}
