package avail

import (
	"encoding/json"
	"fmt"
	"net/http"

	"entitytrace/internal/message"
)

// Handler serves the ledger as JSON for the /avail admin endpoint,
// mirroring the /trace flight-recorder endpoint: the body is one
// AvailabilityDigest (reporter, timestamp, one row per entity). The
// optional ?entity= query restricts the digest to one entity. A nil
// ledger answers 503 so a node that runs without availability tracking
// still mounts the route.
func Handler(l *Ledger, node string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if l == nil {
			http.Error(w, "availability ledger disabled", http.StatusServiceUnavailable)
			return
		}
		d := l.Digest(node)
		if entity := r.URL.Query().Get("entity"); entity != "" {
			rows := d.Rows[:0:0]
			for _, row := range d.Rows {
				if row.Entity == entity {
					rows = append(rows, row)
				}
			}
			d.Rows = rows
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// ParseDigest decodes the JSON body served by Handler.
func ParseDigest(b []byte) (*message.AvailabilityDigest, error) {
	var d message.AvailabilityDigest
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("avail: bad digest dump: %w", err)
	}
	return &d, nil
}
