package avail

import (
	"io"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"entitytrace/internal/clock"
	"entitytrace/internal/message"
	"entitytrace/internal/obs"
)

var t0 = time.Unix(1_700_000_000, 0)

// fixture builds a fake-clock ledger and an event collector.
func fixture(t *testing.T, mutate func(*Config)) (*Ledger, *clock.Fake, *events) {
	t.Helper()
	fc := clock.NewFake(t0)
	evs := &events{}
	cfg := Config{
		Clock:   fc,
		OnEvent: evs.record,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg), fc, evs
}

type events struct {
	mu  sync.Mutex
	all []Event
}

func (e *events) record(ev Event) {
	e.mu.Lock()
	e.all = append(e.all, ev)
	e.mu.Unlock()
}

func (e *events) ofType(typ string) []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Event
	for _, ev := range e.all {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

func observe(l *Ledger, entity string, k Kind) {
	l.Observe(Observation{Entity: entity, Kind: k})
}

func row(t *testing.T, l *Ledger, entity string) message.AvailabilityRow {
	t.Helper()
	for _, r := range l.Digest("test").Rows {
		if r.Entity == entity {
			return r
		}
	}
	t.Fatalf("no digest row for %q", entity)
	return message.AvailabilityRow{}
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v ±%v", name, got, want, tol)
	}
}

// TestTransitionsAndUptime drives a known up/down timeline under the
// fake clock and checks the ledger's every derived number exactly.
func TestTransitionsAndUptime(t *testing.T) {
	l, fc, evs := fixture(t, nil)

	observe(l, "e", KindUp) // t=0
	if st, ok := l.State("e"); !ok || st != Up {
		t.Fatalf("state after first up = %v,%v", st, ok)
	}
	fc.Advance(60 * time.Second)
	observe(l, "e", KindDown) // up 60s
	fc.Advance(30 * time.Second)
	observe(l, "e", KindUp)      // down 30s
	fc.Advance(30 * time.Second) // up 30s so far

	r := row(t, l, "e")
	if State(r.State) != Up {
		t.Fatalf("state = %v", State(r.State))
	}
	if r.Transitions != 2 {
		t.Fatalf("transitions = %d, want 2", r.Transitions)
	}
	if got := time.Duration(r.DowntimeNanos); got != 30*time.Second {
		t.Fatalf("downtime = %v, want 30s", got)
	}
	// 5m window: observed 120s, up 90s.
	approx(t, "uptime5m", r.Uptime5m, 90.0/120.0, 1e-9)
	approx(t, "uptime1h", r.Uptime1h, 90.0/120.0, 1e-9)
	// One failure after 60s up, one recovery after 30s down.
	if time.Duration(r.MTBFNanos) != 60*time.Second {
		t.Fatalf("MTBF = %v, want 60s", time.Duration(r.MTBFNanos))
	}
	if time.Duration(r.MTTRNanos) != 30*time.Second {
		t.Fatalf("MTTR = %v, want 30s", time.Duration(r.MTTRNanos))
	}
	trans := evs.ofType("transition")
	if len(trans) != 2 {
		t.Fatalf("transition events = %d, want 2", len(trans))
	}
	if trans[0].Old != Up || trans[0].New != Down {
		t.Fatalf("first transition %v->%v", trans[0].Old, trans[0].New)
	}
}

// TestSuspectCountsAsUp: FAILURE_SUSPICION changes the display state
// but not the uptime accounting until FAILED confirms.
func TestSuspectCountsAsUp(t *testing.T) {
	l, fc, _ := fixture(t, nil)
	observe(l, "e", KindUp)
	fc.Advance(50 * time.Second)
	observe(l, "e", KindSuspect)
	if st, _ := l.State("e"); st != Suspect {
		t.Fatalf("state = %v, want SUSPECT", st)
	}
	fc.Advance(50 * time.Second)
	r := row(t, l, "e")
	approx(t, "uptime5m under suspicion", r.Uptime5m, 1.0, 1e-9)
	if r.Transitions != 0 {
		t.Fatalf("suspicion counted as transition: %d", r.Transitions)
	}
	observe(l, "e", KindDown)
	fc.Advance(100 * time.Second)
	r = row(t, l, "e")
	approx(t, "uptime5m after failure", r.Uptime5m, 0.5, 1e-9)
}

// TestWindowRatiosDiffer: a long-ago outage ages out of the short
// window while still weighing on the long one.
func TestWindowRatiosDiffer(t *testing.T) {
	l, fc, _ := fixture(t, nil)
	observe(l, "e", KindUp)
	fc.Advance(10 * time.Minute)
	observe(l, "e", KindDown)
	fc.Advance(10 * time.Minute) // 10m outage
	observe(l, "e", KindUp)
	fc.Advance(20 * time.Minute) // clean for 20m

	r := row(t, l, "e")
	approx(t, "uptime5m", r.Uptime5m, 1.0, 1e-9) // outage aged out of 5m
	// 1h window: observed 40m, down 10m.
	approx(t, "uptime1h", r.Uptime1h, 30.0/40.0, 1e-9)
}

// TestFlapDetectionAndDamping: five rapid transitions trip FLAPPING,
// per-transition alerts are suppressed while it holds, and the
// hold-down clears it only after a quiet period.
func TestFlapDetectionAndDamping(t *testing.T) {
	l, fc, evs := fixture(t, func(c *Config) {
		c.FlapTransitions = 5
		c.FlapWindow = time.Minute
		c.FlapHold = 30 * time.Second
	})
	observe(l, "e", KindUp)
	// 6 flips, 2s apart: the 5th flip lands within the 1m window.
	kinds := []Kind{KindDown, KindUp, KindDown, KindUp, KindDown, KindUp}
	for _, k := range kinds {
		fc.Advance(2 * time.Second)
		observe(l, "e", k)
	}
	if st, _ := l.State("e"); st != Flapping {
		t.Fatalf("state = %v, want FLAPPING", st)
	}
	starts := evs.ofType("flap_start")
	if len(starts) != 1 {
		t.Fatalf("flap_start events = %d, want 1", len(starts))
	}
	// Damping: of the 6 transitions, only those before the flap tripped
	// produced transition alerts (the 5th flip became flap_start, the
	// 6th was suppressed).
	if got := len(evs.ofType("transition")); got != 4 {
		t.Fatalf("transition alerts = %d, want 4 (damped)", got)
	}
	r := row(t, l, "e")
	if r.Flaps != 1 {
		t.Fatalf("flaps = %d, want 1", r.Flaps)
	}
	if r.Transitions != 6 {
		t.Fatalf("transitions = %d, want 6 (counting continues while damped)", r.Transitions)
	}

	// Still flapping before the hold expires...
	fc.Advance(29 * time.Second)
	if st, _ := l.State("e"); st != Flapping {
		t.Fatalf("hold-down released early: %v", st)
	}
	// ...and clear after it.
	fc.Advance(2 * time.Second)
	if st, _ := l.State("e"); st != Up {
		t.Fatalf("state after hold-down = %v, want UP", st)
	}
}

// TestFlapRequiresWindow: the same number of transitions spread wider
// than the flap window never trips FLAPPING.
func TestFlapRequiresWindow(t *testing.T) {
	l, fc, evs := fixture(t, func(c *Config) {
		c.FlapTransitions = 4
		c.FlapWindow = time.Minute
	})
	observe(l, "e", KindUp)
	for i, k := range []Kind{KindDown, KindUp, KindDown, KindUp, KindDown, KindUp} {
		fc.Advance(30 * time.Second)
		observe(l, "e", k)
		_ = i
	}
	if st, _ := l.State("e"); st == Flapping {
		t.Fatal("slow transitions tripped FLAPPING")
	}
	if len(evs.ofType("flap_start")) != 0 {
		t.Fatal("unexpected flap_start")
	}
}

// TestTimeToDetect: the failure observation carries the broker's stamp;
// the ledger records the clamped local delta, and prefers the
// skew-corrected span total when hops are present.
func TestTimeToDetect(t *testing.T) {
	l, fc, _ := fixture(t, nil)
	observe(l, "e", KindUp)
	fc.Advance(10 * time.Second)
	now := fc.Now()
	l.Observe(Observation{Entity: "e", Kind: KindDown, At: now.Add(-2 * time.Second)})
	r := row(t, l, "e")
	if got := time.Duration(r.DetectLastNanos); got != 2*time.Second {
		t.Fatalf("detect last = %v, want 2s", got)
	}

	// Recovery, then a second failure carrying span hops: TotalNanos of
	// the assembled flow wins over raw stamp arithmetic.
	fc.Advance(10 * time.Second)
	observe(l, "e", KindUp)
	fc.Advance(10 * time.Second)
	base := fc.Now().UnixNano()
	l.Observe(Observation{Entity: "e", Kind: KindDown, Hops: []obs.HopRecord{
		{Node: "hb0", AtNanos: base - int64(3*time.Second)},
		{Node: "hb1", AtNanos: base - int64(time.Second)},
		{Node: "tracker", AtNanos: base},
	}})
	r = row(t, l, "e")
	if got := time.Duration(r.DetectLastNanos); got != 3*time.Second {
		t.Fatalf("detect last with hops = %v, want 3s", got)
	}
	if got := time.Duration(r.DetectMaxNanos); got != 3*time.Second {
		t.Fatalf("detect max = %v, want 3s", got)
	}
}

// TestSLOBreachAndRecovery drives an entity through its error budget:
// 99% over 20 minutes tolerates 12s of downtime; a 30s outage breaches
// (once, edge-triggered), and enough clean uptime afterwards clears it.
func TestSLOBreachAndRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	l, fc, evs := fixture(t, func(c *Config) {
		c.DefaultSLO = SLO{Target: 0.99, Window: 20 * time.Minute}
		c.Registry = reg
	})
	observe(l, "e", KindUp)
	fc.Advance(10 * time.Minute)
	observe(l, "e", KindDown)
	fc.Advance(30 * time.Second)
	observe(l, "e", KindUp)

	r := row(t, l, "e")
	bs, ok := l.Budget("e")
	if !ok {
		t.Fatal("no budget status")
	}
	if !bs.Breached {
		t.Fatalf("30s downtime against a 12s budget not breached: %+v", bs)
	}
	if r.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %v, want 0", r.BudgetRemaining)
	}
	if r.Breaches != 1 {
		t.Fatalf("breaches = %d, want 1", r.Breaches)
	}
	if len(evs.ofType("slo_breach")) != 1 {
		t.Fatalf("slo_breach events = %d, want 1", len(evs.ofType("slo_breach")))
	}
	if got := reg.Counter("avail_slo_breaches_total").Value(); got != 1 {
		t.Fatalf("breach counter = %d, want 1", got)
	}
	// A second digest does not double-count the same episode.
	_ = row(t, l, "e")
	if got := reg.Counter("avail_slo_breaches_total").Value(); got != 1 {
		t.Fatalf("breach counter after re-evaluation = %d, want 1", got)
	}

	// Clean uptime ages the outage out of the window; the breach clears.
	fc.Advance(25 * time.Minute)
	r = row(t, l, "e")
	if len(evs.ofType("slo_clear")) != 1 {
		t.Fatalf("slo_clear events = %d", len(evs.ofType("slo_clear")))
	}
	if r.BudgetRemaining != 1 {
		t.Fatalf("budget remaining after recovery = %v, want 1", r.BudgetRemaining)
	}

	// Gauges reflect the refreshed position in PPM.
	snap := reg.Snapshot()
	if v, ok := snap.Gauges[`entity_up{entity="e"}`]; !ok || v != 1 {
		t.Fatalf("entity_up gauge = %d,%v", v, ok)
	}
	if v, ok := snap.Gauges[`availability_ratio_ppm{entity="e",window="5m"}`]; !ok || v != 1_000_000 {
		t.Fatalf("5m ratio gauge = %d,%v", v, ok)
	}
	if v, ok := snap.Gauges[`error_budget_remaining_ppm{entity="e"}`]; !ok || v != 1_000_000 {
		t.Fatalf("budget gauge = %d,%v", v, ok)
	}
}

// TestBurnAlert: the burn-rate threshold emits one edge-triggered
// alert.
func TestBurnAlert(t *testing.T) {
	l, fc, evs := fixture(t, func(c *Config) {
		c.DefaultSLO = SLO{Target: 0.99, Window: time.Hour}
		c.BurnAlert = 2
	})
	observe(l, "e", KindUp)
	fc.Advance(10 * time.Minute)
	observe(l, "e", KindDown)
	// 1 minute down over 11 minutes observed: burn = (60/660)/0.01 ≈ 9.
	fc.Advance(time.Minute)
	_ = row(t, l, "e")
	_ = row(t, l, "e")
	if got := len(evs.ofType("burn_alert")); got != 1 {
		t.Fatalf("burn_alert events = %d, want 1", got)
	}
	bs, _ := l.Budget("e")
	if bs.BurnRate < 2 {
		t.Fatalf("burn rate = %v, want > 2", bs.BurnRate)
	}
}

// TestSetSLOPerEntity overrides and clears per-entity objectives.
func TestSetSLOPerEntity(t *testing.T) {
	l, fc, _ := fixture(t, nil)
	observe(l, "e", KindUp)
	fc.Advance(time.Minute)
	if _, ok := l.Budget("e"); ok {
		t.Fatal("budget reported without an SLO")
	}
	l.SetSLO("e", SLO{Target: 0.999, Window: time.Hour})
	if _, ok := l.Budget("e"); !ok {
		t.Fatal("budget missing after SetSLO")
	}
	r := row(t, l, "e")
	if r.BudgetRemaining < 0 {
		t.Fatal("digest row missing budget after SetSLO")
	}
	l.SetSLO("e", SLO{}) // invalid clears
	if _, ok := l.Budget("e"); ok {
		t.Fatal("budget survived clearing")
	}
	// Default applies to entities first seen after the change.
	l.SetSLO("", SLO{Target: 0.99, Window: time.Hour})
	observe(l, "late", KindUp)
	if _, ok := l.Budget("late"); !ok {
		t.Fatal("default SLO not applied to new entity")
	}
}

// TestIntervalRingBound: with a tiny ring the ledger keeps working and
// window math never claims coverage it pruned.
func TestIntervalRingBound(t *testing.T) {
	l, fc, _ := fixture(t, func(c *Config) { c.MaxIntervals = 4 })
	observe(l, "e", KindUp)
	for i := 0; i < 20; i++ {
		fc.Advance(10 * time.Second)
		if i%2 == 0 {
			observe(l, "e", KindDown)
		} else {
			observe(l, "e", KindUp)
		}
	}
	r := row(t, l, "e")
	if r.Transitions != 20 {
		t.Fatalf("transitions = %d, want 20", r.Transitions)
	}
	// Alternating 10s up/10s down forever: the retained window must
	// still show roughly half uptime.
	approx(t, "uptime5m (pruned)", r.Uptime5m, 0.5, 0.2)
	// Cumulative downtime uses accumulators, not the ring: 10 outages.
	if got := time.Duration(r.DowntimeNanos); got < 90*time.Second {
		t.Fatalf("cumulative downtime = %v, want ~100s", got)
	}
}

// TestMaxEntities: the ledger drops (and counts) observations past its
// entity bound.
func TestMaxEntities(t *testing.T) {
	reg := obs.NewRegistry()
	l, _, _ := fixture(t, func(c *Config) {
		c.MaxEntities = 2
		c.Registry = reg
	})
	observe(l, "a", KindUp)
	observe(l, "b", KindUp)
	observe(l, "c", KindUp)
	if _, ok := l.State("c"); ok {
		t.Fatal("entity past the bound was tracked")
	}
	if got := reg.Counter("avail_observations_dropped_total").Value(); got != 1 {
		t.Fatalf("dropped counter = %d, want 1", got)
	}
	if got := len(l.Digest("x").Rows); got != 2 {
		t.Fatalf("digest rows = %d, want 2", got)
	}
}

// TestKindForType covers the trace-type mapping.
func TestKindForType(t *testing.T) {
	ups := []message.Type{message.TraceJoin, message.TraceInitializing,
		message.TraceRecovering, message.TraceReady, message.TraceAllsWell,
		message.TraceLoadInformation}
	for _, mt := range ups {
		if k, ok := KindForType(mt); !ok || k != KindUp {
			t.Fatalf("%v -> %v,%v want KindUp", mt, k, ok)
		}
	}
	if k, ok := KindForType(message.TraceFailureSuspicion); !ok || k != KindSuspect {
		t.Fatalf("suspicion -> %v,%v", k, ok)
	}
	downs := []message.Type{message.TraceFailed, message.TraceDisconnect, message.TraceShutdown}
	for _, mt := range downs {
		if k, ok := KindForType(mt); !ok || k != KindDown {
			t.Fatalf("%v -> %v,%v want KindDown", mt, k, ok)
		}
	}
	for _, mt := range []message.Type{message.TraceGaugeInterest,
		message.TraceRevertingToSilentMode, message.TraceBrokerHealth,
		message.TraceAvailabilityDigest, message.TypePing} {
		if _, ok := KindForType(mt); ok {
			t.Fatalf("%v unexpectedly mapped", mt)
		}
	}
}

// TestDigestWireRoundTrip: ledger digest -> wire -> parse preserves
// every row field.
func TestDigestWireRoundTrip(t *testing.T) {
	l, fc, _ := fixture(t, func(c *Config) {
		c.DefaultSLO = SLO{Target: 0.999, Window: time.Hour}
	})
	observe(l, "a", KindUp)
	fc.Advance(time.Minute)
	observe(l, "a", KindDown)
	fc.Advance(time.Second)
	observe(l, "b", KindUp)
	d := l.Digest("hb0")
	back, err := message.UnmarshalAvailabilityDigest(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Reporter != "hb0" || back.AtNanos != d.AtNanos || len(back.Rows) != 2 {
		t.Fatalf("round trip header: %+v", back)
	}
	for i := range d.Rows {
		if *(&back.Rows[i]) != d.Rows[i] {
			t.Fatalf("row %d mismatch:\n  got  %+v\n  want %+v", i, back.Rows[i], d.Rows[i])
		}
	}
}

// TestHandler serves and parses the /avail JSON, including the entity
// filter and the disabled-ledger 503.
func TestHandler(t *testing.T) {
	l, fc, _ := fixture(t, nil)
	observe(l, "a", KindUp)
	observe(l, "b", KindUp)
	fc.Advance(time.Second)
	srv := httptest.NewServer(Handler(l, "node-1"))
	defer srv.Close()

	get := func(url string) []byte {
		t.Helper()
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	d, err := ParseDigest(get(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if d.Reporter != "node-1" || len(d.Rows) != 2 {
		t.Fatalf("dump: %+v", d)
	}
	d, err = ParseDigest(get(srv.URL + "?entity=b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 1 || d.Rows[0].Entity != "b" {
		t.Fatalf("entity filter: %+v", d.Rows)
	}
	if _, err := ParseDigest([]byte("{")); err == nil {
		t.Fatal("ParseDigest accepted garbage")
	}

	off := httptest.NewServer(Handler(nil, "node-1"))
	defer off.Close()
	resp, err := off.Client().Get(off.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("nil ledger status = %d, want 503", resp.StatusCode)
	}
}

// TestFormatWindow covers the label renderer.
func TestFormatWindow(t *testing.T) {
	cases := map[time.Duration]string{
		5 * time.Minute:         "5m",
		time.Hour:               "1h",
		24 * time.Hour:          "24h",
		90 * time.Second:        "90s",
		1500 * time.Millisecond: "1.5s",
	}
	for d, want := range cases {
		if got := FormatWindow(d); got != want {
			t.Fatalf("FormatWindow(%v) = %q, want %q", d, got, want)
		}
	}
}
