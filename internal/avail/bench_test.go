package avail

import (
	"fmt"
	"testing"
	"time"

	"entitytrace/internal/clock"
)

// BenchmarkAvailObserve measures the ledger's steady-state cost — the
// observation confirms the current state — as paid on the tracker's
// verified delivery path: one map read, one per-entity lock, one
// timestamp store.
func BenchmarkAvailObserve(b *testing.B) {
	l := New(Config{Clock: clock.NewFake(t0)})
	seen := t0.Add(time.Second)
	l.Observe(Observation{Entity: "bench", Kind: KindUp, SeenAt: seen})
	ob := Observation{Entity: "bench", Kind: KindUp, SeenAt: seen}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Observe(ob)
	}
}

// BenchmarkAvailObserveTransition measures the slow path: every
// observation flips the state, closing an interval and running flap
// accounting.
func BenchmarkAvailObserveTransition(b *testing.B) {
	l := New(Config{Clock: clock.NewFake(t0), FlapWindow: time.Nanosecond})
	seen := t0.Add(time.Second)
	l.Observe(Observation{Entity: "bench", Kind: KindUp, SeenAt: seen})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := KindDown
		if i%2 == 1 {
			k = KindUp
		}
		l.Observe(Observation{Entity: "bench", Kind: k, SeenAt: seen.Add(time.Duration(i) * time.Millisecond)})
	}
}

// BenchmarkAvailDigest measures a full fleet snapshot: 256 entities
// with SLOs, every row deriving windows, MTBF/MTTR and budget.
func BenchmarkAvailDigest(b *testing.B) {
	fc := clock.NewFake(t0)
	l := New(Config{Clock: fc, DefaultSLO: SLO{Target: 0.999, Window: time.Hour}})
	for i := 0; i < 256; i++ {
		e := fmt.Sprintf("entity-%03d", i)
		l.Observe(Observation{Entity: e, Kind: KindUp})
		fc.Advance(time.Millisecond)
		if i%3 == 0 {
			l.Observe(Observation{Entity: e, Kind: KindDown})
			fc.Advance(time.Millisecond)
			l.Observe(Observation{Entity: e, Kind: KindUp})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := l.Digest("bench"); len(d.Rows) != 256 {
			b.Fatalf("rows = %d", len(d.Rows))
		}
	}
}
