package topic

import (
	"fmt"

	"entitytrace/internal/ident"
)

// ConstrainedPrefix is the first segment identifying a constrained topic
// (§3.1: "This keyword at the very beginning of a topic structure
// identifies that topic as a constrained topic").
const ConstrainedPrefix = "Constrained"

// Action is the {Allowed Actions} element of a constrained topic: the
// actions that can ONLY be performed by the constrainer.
type Action int

const (
	// ActionPublishSubscribe (the paper's default) reserves both actions
	// for the constrainer: "no entities are authorized to perform any
	// actions over the corresponding constrained topic".
	ActionPublishSubscribe Action = iota
	// ActionPublish reserves publishing for the constrainer; other
	// entities are allowed to subscribe.
	ActionPublish
	// ActionSubscribe reserves subscribing for the constrainer; no other
	// entity may subscribe, but others may publish (this is how entities
	// send registrations to a broker's Subscribe-Only topic).
	ActionSubscribe
)

// String returns the canonical segment spelling of the action.
func (a Action) String() string {
	switch a {
	case ActionPublish:
		return "Publish-Only"
	case ActionSubscribe:
		return "Subscribe-Only"
	case ActionPublishSubscribe:
		return "PublishSubscribe"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// parseAction recognises the paper's several spellings of each action.
func parseAction(seg string) (Action, bool) {
	switch seg {
	case "Publish", "Publish-Only", "Publish_Only", "PublishOnly":
		return ActionPublish, true
	case "Subscribe", "Subscribe-Only", "Subscribe_Only", "SubscribeOnly":
		return ActionSubscribe, true
	case "PublishSubscribe":
		return ActionPublishSubscribe, true
	default:
		return 0, false
	}
}

// Distribution is the {Distribution} element: restrictions on how the
// constrainer's actions propagate through the broker network.
type Distribution int

const (
	// DistDisseminate (default) propagates normally.
	DistDisseminate Distribution = iota
	// DistSuppress keeps the constrainer's publishes/subscriptions local
	// to its broker.
	DistSuppress
	// DistLimited appears in the paper's examples (e.g.
	// /Constrained/Traces/Broker/Subscribe-Only/Limited/Trace-Topic) but
	// not in its enumerated values; we model it as suppress-like
	// propagation confined to the hosting broker.
	DistLimited
)

// String returns the canonical segment spelling.
func (d Distribution) String() string {
	switch d {
	case DistDisseminate:
		return "Disseminate"
	case DistSuppress:
		return "Suppress"
	case DistLimited:
		return "Limited"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Propagates reports whether actions on the topic are disseminated to
// other brokers in the network.
func (d Distribution) Propagates() bool { return d == DistDisseminate }

func parseDistribution(seg string) (Distribution, bool) {
	switch seg {
	case "Disseminate":
		return DistDisseminate, true
	case "Suppress":
		return DistSuppress, true
	case "Limited":
		return DistLimited, true
	default:
		return 0, false
	}
}

// ConstrainerBroker is the {Constrainer} value naming the broker
// infrastructure (the default) rather than a specific entity.
const ConstrainerBroker = "Broker"

// DefaultEventType is the default {Event Type} element value.
const DefaultEventType = "RealTime"

// EventTypeTraces is the {Event Type} used by the tracing scheme.
const EventTypeTraces = "Traces"

// Constrained is the parsed form of a constrained topic:
//
//	/Constrained/{EventType}/{Constrainer}/{AllowedActions}/{Distribution}/{suffixes...}
//
// Elements may be omitted in the textual form, in which case defaults
// apply ({Constrainer}=Broker, {AllowedActions}=PublishSubscribe,
// {Distribution}=Disseminate); the paper's equivalence example
// (/Constrained/Traces/Broker/PublishSubscribe/Limited ==
// /Constrained/Traces/Limited) is honoured by ParseConstrained.
type Constrained struct {
	EventType   string
	Constrainer string // ConstrainerBroker or an Entity-ID
	Actions     Action
	Dist        Distribution
	Suffixes    []string
}

// IsConstrained reports whether t begins with the Constrained keyword.
func IsConstrained(t Topic) bool {
	return t.Len() > 0 && t.segments[0] == ConstrainedPrefix
}

// ParseConstrained interprets a topic under the §3.1 grammar. The
// EventType element is required (every example in the paper carries it);
// Constrainer, AllowedActions and Distribution may be omitted and default
// as specified. Remaining segments become suffixes.
func ParseConstrained(t Topic) (*Constrained, error) {
	if !IsConstrained(t) {
		return nil, fmt.Errorf("%w: %q is not a constrained topic", ErrBadTopic, t)
	}
	segs := t.segments[1:]
	if len(segs) == 0 {
		return nil, fmt.Errorf("%w: constrained topic lacks event type", ErrBadTopic)
	}
	c := &Constrained{
		EventType:   segs[0],
		Constrainer: ConstrainerBroker,
		Actions:     ActionPublishSubscribe,
		Dist:        DistDisseminate,
	}
	rest := segs[1:]

	// {Constrainer}: present unless the next segment is recognisably an
	// action or distribution keyword.
	if len(rest) > 0 {
		if _, isAct := parseAction(rest[0]); !isAct {
			if _, isDist := parseDistribution(rest[0]); !isDist {
				c.Constrainer = rest[0]
				rest = rest[1:]
			}
		}
	}
	// {Allowed Actions}.
	if len(rest) > 0 {
		if a, ok := parseAction(rest[0]); ok {
			c.Actions = a
			rest = rest[1:]
		}
	}
	// {Distribution}.
	if len(rest) > 0 {
		if d, ok := parseDistribution(rest[0]); ok {
			c.Dist = d
			rest = rest[1:]
		}
	}
	c.Suffixes = append([]string(nil), rest...)
	return c, nil
}

// Topic renders the constrained topic in fully explicit canonical form.
func (c *Constrained) Topic() (Topic, error) {
	if c.EventType == "" || c.Constrainer == "" {
		return Topic{}, fmt.Errorf("%w: constrained topic needs event type and constrainer", ErrBadTopic)
	}
	segs := []string{ConstrainedPrefix, c.EventType, c.Constrainer, c.Actions.String(), c.Dist.String()}
	segs = append(segs, c.Suffixes...)
	return Build(segs...)
}

// Equivalent reports whether two constrained topics denote the same
// canonical structure (the paper's topic-equivalence relation).
func (c *Constrained) Equivalent(other *Constrained) bool {
	if c.EventType != other.EventType || c.Constrainer != other.Constrainer ||
		c.Actions != other.Actions || c.Dist != other.Dist ||
		len(c.Suffixes) != len(other.Suffixes) {
		return false
	}
	for i := range c.Suffixes {
		if c.Suffixes[i] != other.Suffixes[i] {
			return false
		}
	}
	return true
}

// Principal identifies an actor attempting an action on a topic: either a
// broker (trusted infrastructure node) or a client entity.
type Principal struct {
	IsBroker bool
	Entity   ident.EntityID
}

// BrokerPrincipal is the principal for broker infrastructure nodes.
func BrokerPrincipal() Principal { return Principal{IsBroker: true} }

// EntityPrincipal is the principal for a client entity.
func EntityPrincipal(id ident.EntityID) Principal { return Principal{Entity: id} }

func (c *Constrained) isConstrainer(p Principal) bool {
	if c.Constrainer == ConstrainerBroker {
		return p.IsBroker
	}
	return !p.IsBroker && string(p.Entity) == c.Constrainer
}

// CanPublish reports whether p may publish on the constrained topic.
// Publishing is reserved for the constrainer when the allowed actions
// include Publish.
func (c *Constrained) CanPublish(p Principal) bool {
	switch c.Actions {
	case ActionPublish, ActionPublishSubscribe:
		return c.isConstrainer(p)
	default:
		return true
	}
}

// CanSubscribe reports whether p may subscribe to the constrained topic.
// Subscribing is reserved for the constrainer when the allowed actions
// include Subscribe.
func (c *Constrained) CanSubscribe(p Principal) bool {
	switch c.Actions {
	case ActionSubscribe, ActionPublishSubscribe:
		return c.isConstrainer(p)
	default:
		return true
	}
}

// Authorize checks an action on any topic: constrained topics are parsed
// and enforced, unconstrained topics permit everything. publish selects
// between the publish and subscribe checks.
func Authorize(t Topic, p Principal, publish bool) error {
	if !IsConstrained(t) {
		return nil
	}
	c, err := ParseConstrained(t)
	if err != nil {
		return err
	}
	allowed := c.CanSubscribe(p)
	verb := "subscribe to"
	if publish {
		allowed = c.CanPublish(p)
		verb = "publish on"
	}
	if !allowed {
		return fmt.Errorf("topic: principal %+v may not %s constrained topic %q", p, verb, t)
	}
	return nil
}
