package topic

import (
	"testing"
	"testing/quick"

	"entitytrace/internal/ident"
)

func TestParseConstrainedFullForm(t *testing.T) {
	tp := MustParse("/Constrained/Traces/Broker/Subscribe-Only/Limited/Trace-Topic")
	c, err := ParseConstrained(tp)
	if err != nil {
		t.Fatal(err)
	}
	if c.EventType != "Traces" {
		t.Errorf("EventType = %q", c.EventType)
	}
	if c.Constrainer != ConstrainerBroker {
		t.Errorf("Constrainer = %q", c.Constrainer)
	}
	if c.Actions != ActionSubscribe {
		t.Errorf("Actions = %v", c.Actions)
	}
	if c.Dist != DistLimited {
		t.Errorf("Dist = %v", c.Dist)
	}
	if len(c.Suffixes) != 1 || c.Suffixes[0] != "Trace-Topic" {
		t.Errorf("Suffixes = %v", c.Suffixes)
	}
}

func TestPaperEquivalenceExample(t *testing.T) {
	// §3.1: /Constrained/Traces/Broker/PublishSubscribe/Limited and
	// /Constrained/Traces/Limited are equivalent topics.
	long, err := ParseConstrained(MustParse("/Constrained/Traces/Broker/PublishSubscribe/Limited"))
	if err != nil {
		t.Fatal(err)
	}
	short, err := ParseConstrained(MustParse("/Constrained/Traces/Limited"))
	if err != nil {
		t.Fatal(err)
	}
	if !long.Equivalent(short) {
		t.Fatalf("paper equivalence example failed: %+v vs %+v", long, short)
	}
}

func TestParseConstrainedDefaults(t *testing.T) {
	c, err := ParseConstrained(MustParse("/Constrained/Traces"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Constrainer != ConstrainerBroker || c.Actions != ActionPublishSubscribe || c.Dist != DistDisseminate {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestParseConstrainedEntityConstrainer(t *testing.T) {
	c, err := ParseConstrained(MustParse("/Constrained/Traces/entity-7/Subscribe-Only/tt/sess"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Constrainer != "entity-7" {
		t.Fatalf("Constrainer = %q", c.Constrainer)
	}
	if c.Actions != ActionSubscribe {
		t.Fatalf("Actions = %v", c.Actions)
	}
	if c.Dist != DistDisseminate {
		t.Fatalf("Dist = %v", c.Dist)
	}
	if len(c.Suffixes) != 2 {
		t.Fatalf("Suffixes = %v", c.Suffixes)
	}
}

func TestParseConstrainedActionSpellings(t *testing.T) {
	for _, spelling := range []string{"Publish", "Publish-Only", "Publish_Only", "PublishOnly"} {
		c, err := ParseConstrained(MustParse("/Constrained/Traces/Broker/" + spelling))
		if err != nil {
			t.Fatal(err)
		}
		if c.Actions != ActionPublish {
			t.Errorf("spelling %q parsed as %v", spelling, c.Actions)
		}
	}
}

func TestParseConstrainedErrors(t *testing.T) {
	if _, err := ParseConstrained(MustParse("/NotConstrained/x")); err == nil {
		t.Fatal("accepted non-constrained topic")
	}
	if _, err := ParseConstrained(MustParse("/Constrained")); err == nil {
		t.Fatal("accepted constrained topic without event type")
	}
}

func TestConstrainedCanonicalRoundTrip(t *testing.T) {
	c := &Constrained{
		EventType:   "Traces",
		Constrainer: "svc-1",
		Actions:     ActionPublish,
		Dist:        DistSuppress,
		Suffixes:    []string{"abc", "def"},
	}
	tp, err := c.Topic()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseConstrained(tp)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equivalent(back) {
		t.Fatalf("canonical round trip: %+v vs %+v", c, back)
	}
}

func TestConstrainedCanonicalRoundTripProperty(t *testing.T) {
	actions := []Action{ActionPublish, ActionSubscribe, ActionPublishSubscribe}
	dists := []Distribution{DistDisseminate, DistSuppress, DistLimited}
	prop := func(aIdx, dIdx uint8, entityConstrainer bool, nSuffix uint8) bool {
		c := &Constrained{
			EventType:   "Traces",
			Constrainer: ConstrainerBroker,
			Actions:     actions[int(aIdx)%len(actions)],
			Dist:        dists[int(dIdx)%len(dists)],
		}
		if entityConstrainer {
			c.Constrainer = "some-entity"
		}
		for i := 0; i < int(nSuffix%4); i++ {
			c.Suffixes = append(c.Suffixes, "sfx")
		}
		tp, err := c.Topic()
		if err != nil {
			return false
		}
		back, err := ParseConstrained(tp)
		return err == nil && c.Equivalent(back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConstrainedTopicValidation(t *testing.T) {
	c := &Constrained{}
	if _, err := c.Topic(); err == nil {
		t.Fatal("empty constrained rendered")
	}
}

func TestAuthorizationMatrix(t *testing.T) {
	broker := BrokerPrincipal()
	owner := EntityPrincipal("owner")
	other := EntityPrincipal("other")

	cases := []struct {
		topic  string
		p      Principal
		canPub bool
		canSub bool
		descr  string
	}{
		// Broker Publish-Only: broker publishes, everyone subscribes.
		{"/Constrained/Traces/Broker/Publish-Only/tt/AllUpdates", broker, true, true, "broker on pubonly"},
		{"/Constrained/Traces/Broker/Publish-Only/tt/AllUpdates", other, false, true, "entity on pubonly"},
		// Broker Subscribe-Only: broker subscribes, everyone publishes.
		{"/Constrained/Traces/Broker/Subscribe-Only/Registration", broker, true, true, "broker on subonly"},
		{"/Constrained/Traces/Broker/Subscribe-Only/Registration", other, true, false, "entity on subonly"},
		// PublishSubscribe: broker only, nothing for entities.
		{"/Constrained/Traces/Broker/PublishSubscribe/Admin", broker, true, true, "broker on pubsub"},
		{"/Constrained/Traces/Broker/PublishSubscribe/Admin", other, false, false, "entity on pubsub"},
		// Entity constrainer Subscribe-Only: only that entity subscribes.
		{"/Constrained/Traces/owner/Subscribe-Only/tt/sess", owner, true, true, "owner on own subonly"},
		{"/Constrained/Traces/owner/Subscribe-Only/tt/sess", other, true, false, "other on owner subonly"},
		{"/Constrained/Traces/owner/Subscribe-Only/tt/sess", broker, true, false, "broker on owner subonly"},
	}
	for _, tc := range cases {
		c, err := ParseConstrained(MustParse(tc.topic))
		if err != nil {
			t.Fatalf("%s: %v", tc.descr, err)
		}
		if got := c.CanPublish(tc.p); got != tc.canPub {
			t.Errorf("%s: CanPublish = %v, want %v", tc.descr, got, tc.canPub)
		}
		if got := c.CanSubscribe(tc.p); got != tc.canSub {
			t.Errorf("%s: CanSubscribe = %v, want %v", tc.descr, got, tc.canSub)
		}
	}
}

func TestAuthorizeHelper(t *testing.T) {
	plain := MustParse("/public/topic")
	if err := Authorize(plain, EntityPrincipal("anyone"), true); err != nil {
		t.Fatalf("unconstrained publish rejected: %v", err)
	}
	constrained := MustParse("/Constrained/Traces/Broker/Publish-Only/tt/Load")
	if err := Authorize(constrained, EntityPrincipal("x"), true); err == nil {
		t.Fatal("entity publish on broker Publish-Only allowed")
	}
	if err := Authorize(constrained, EntityPrincipal("x"), false); err != nil {
		t.Fatalf("entity subscribe on broker Publish-Only rejected: %v", err)
	}
	if err := Authorize(MustParse("/Constrained"), BrokerPrincipal(), true); err == nil {
		t.Fatal("malformed constrained topic authorized")
	}
}

func TestActionDistributionStrings(t *testing.T) {
	if ActionPublish.String() != "Publish-Only" ||
		ActionSubscribe.String() != "Subscribe-Only" ||
		ActionPublishSubscribe.String() != "PublishSubscribe" {
		t.Fatal("action strings wrong")
	}
	if Action(9).String() == "" || Distribution(9).String() == "" {
		t.Fatal("unknown enum produced empty string")
	}
	if DistDisseminate.String() != "Disseminate" || DistSuppress.String() != "Suppress" || DistLimited.String() != "Limited" {
		t.Fatal("distribution strings wrong")
	}
	if !DistDisseminate.Propagates() || DistSuppress.Propagates() || DistLimited.Propagates() {
		t.Fatal("Propagates wrong")
	}
}

func TestDerivativeTopics(t *testing.T) {
	u := ident.NewUUID()
	cases := []struct {
		tp   Topic
		last string
	}{
		{ChangeNotifications(u), SuffixChangeNotifications},
		{AllUpdates(u), SuffixAllUpdates},
		{StateTransitions(u), SuffixStateTransitions},
		{Load(u), SuffixLoad},
		{NetworkMetrics(u), SuffixNetworkMetrics},
		{GaugeInterest(u), SuffixInterest},
	}
	for _, c := range cases {
		segs := c.tp.Segments()
		if segs[len(segs)-1] != c.last {
			t.Errorf("topic %q does not end in %q", c.tp, c.last)
		}
		if !c.tp.HasPrefix("Constrained", "Traces", "Broker", "Publish-Only") {
			t.Errorf("topic %q lacks Publish-Only prefix", c.tp)
		}
		pc, err := ParseConstrained(c.tp)
		if err != nil {
			t.Errorf("derivative %q does not parse as constrained: %v", c.tp, err)
			continue
		}
		if pc.Actions != ActionPublish {
			t.Errorf("derivative %q parsed actions %v", c.tp, pc.Actions)
		}
	}
	// Gauge-interest response is broker Subscribe-Only (trackers publish).
	resp := GaugeInterestResponse(u)
	pc, err := ParseConstrained(resp)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Actions != ActionSubscribe {
		t.Fatalf("interest response actions = %v", pc.Actions)
	}
}

func TestRegistrationTopic(t *testing.T) {
	c, err := ParseConstrained(Registration())
	if err != nil {
		t.Fatal(err)
	}
	if c.Actions != ActionSubscribe || c.Constrainer != ConstrainerBroker {
		t.Fatalf("registration topic parsed as %+v", c)
	}
	// An entity may publish a registration but not subscribe to others'.
	e := EntityPrincipal("newcomer")
	if !c.CanPublish(e) || c.CanSubscribe(e) {
		t.Fatal("registration topic permissions wrong")
	}
}

func TestBrokerToEntitySessionValidation(t *testing.T) {
	_, err := BrokerToEntitySession("bad/id", ident.NewUUID(), ident.NewSessionID())
	if err == nil {
		t.Fatal("accepted slashed entity ID")
	}
	tp, err := BrokerToEntitySession("good-id", ident.NewUUID(), ident.NewSessionID())
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseConstrained(tp)
	if err != nil {
		t.Fatal(err)
	}
	if c.Constrainer != "good-id" || c.Actions != ActionSubscribe {
		t.Fatalf("session topic parsed as %+v", c)
	}
}

func TestClassSet(t *testing.T) {
	s := NewClassSet(ClassLoad, ClassAllUpdates)
	if !s.Has(ClassLoad) || !s.Has(ClassAllUpdates) || s.Has(ClassNetworkMetrics) {
		t.Fatal("ClassSet membership wrong")
	}
	s = s.Add(ClassNetworkMetrics)
	if !s.Has(ClassNetworkMetrics) {
		t.Fatal("Add failed")
	}
	if s.Empty() {
		t.Fatal("non-empty set reported Empty")
	}
	if !(ClassSet(0)).Empty() {
		t.Fatal("zero set not Empty")
	}
	union := NewClassSet(ClassLoad).Union(NewClassSet(ClassStateTransitions))
	if !union.Has(ClassLoad) || !union.Has(ClassStateTransitions) {
		t.Fatal("Union failed")
	}
	all := AllClasses()
	if got := len(all.Classes()); got != NumTraceClasses {
		t.Fatalf("AllClasses has %d classes", got)
	}
	for _, c := range AllTraceClasses() {
		if c.String() == "UnknownClass" {
			t.Fatalf("class %d has no name", c)
		}
		if ForClass(ident.NewUUID(), c).IsZero() {
			t.Fatalf("ForClass(%v) returned zero topic", c)
		}
	}
	if TraceClass(99).String() != "UnknownClass" {
		t.Fatal("unknown class string")
	}
}
