package topic_test

import (
	"fmt"

	"entitytrace/internal/topic"
)

// Constrained topics (§3.1) expand omitted elements to their defaults;
// the paper's own equivalence example holds.
func ExampleParseConstrained() {
	long, _ := topic.ParseConstrained(topic.MustParse("/Constrained/Traces/Broker/PublishSubscribe/Limited"))
	short, _ := topic.ParseConstrained(topic.MustParse("/Constrained/Traces/Limited"))
	fmt.Println("equivalent:", long.Equivalent(short))
	canonical, _ := short.Topic()
	fmt.Println("canonical:", canonical)
	// Output:
	// equivalent: true
	// canonical: /Constrained/Traces/Broker/PublishSubscribe/Limited
}

// Constrained topics carry their own authorization: Publish-Only broker
// topics let entities subscribe but never publish.
func ExampleConstrained_CanPublish() {
	c, _ := topic.ParseConstrained(topic.MustParse("/Constrained/Traces/Broker/Publish-Only/tt/AllUpdates"))
	entity := topic.EntityPrincipal("some-service")
	fmt.Println("entity can publish:", c.CanPublish(entity))
	fmt.Println("entity can subscribe:", c.CanSubscribe(entity))
	fmt.Println("broker can publish:", c.CanPublish(topic.BrokerPrincipal()))
	// Output:
	// entity can publish: false
	// entity can subscribe: true
	// broker can publish: true
}

// Trackers select trace classes (§3.5) with a ClassSet.
func ExampleClassSet() {
	classes := topic.NewClassSet(topic.ClassChangeNotifications, topic.ClassLoad)
	fmt.Println("wants load:", classes.Has(topic.ClassLoad))
	fmt.Println("wants heartbeats:", classes.Has(topic.ClassAllUpdates))
	for _, c := range classes.Classes() {
		fmt.Println("class:", c)
	}
	// Output:
	// wants load: true
	// wants heartbeats: false
	// class: ChangeNotifications
	// class: Load
}
