package topic

import (
	"strings"
	"testing"
	"testing/quick"

	"entitytrace/internal/ident"
)

func TestParseValid(t *testing.T) {
	cases := []string{
		"/a",
		"/StockQuotes/Companies/Adobe",
		"/Constrained/Traces/Broker/Subscribe-Only/Registration",
		"/a/b/*",
	}
	for _, s := range cases {
		tp, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", s, err)
			continue
		}
		if tp.String() != s {
			t.Errorf("Parse(%q).String() = %q", s, tp.String())
		}
	}
}

func TestParseInvalid(t *testing.T) {
	cases := []string{
		"",
		"nolead/slash",
		"/",
		"/a//b",
		"/a/",
		"/a/*/b", // wildcard not final
	}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted malformed topic", s)
		}
	}
}

func TestBuildAndSegments(t *testing.T) {
	tp, err := Build("x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	if tp.String() != "/x/y/z" {
		t.Fatalf("Build = %q", tp.String())
	}
	segs := tp.Segments()
	segs[0] = "mutated"
	if tp.Segments()[0] != "x" {
		t.Fatal("Segments() exposed internal slice")
	}
	if tp.Len() != 3 {
		t.Fatalf("Len = %d", tp.Len())
	}
	if _, err := Build(); err == nil {
		t.Fatal("Build() with no segments succeeded")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad topic")
		}
	}()
	MustParse("bad")
}

func TestChild(t *testing.T) {
	base := MustParse("/Traces")
	child, err := base.Child("abc", "def")
	if err != nil {
		t.Fatal(err)
	}
	if child.String() != "/Traces/abc/def" {
		t.Fatalf("Child = %q", child)
	}
	if _, err := (Topic{}).Child("x"); err == nil {
		t.Fatal("Child of zero topic succeeded")
	}
	wc := MustParse("/a/*")
	if _, err := wc.Child("x"); err == nil {
		t.Fatal("Child of wildcard topic succeeded")
	}
}

func TestEqualAndMatches(t *testing.T) {
	a := MustParse("/x/y/z")
	b := MustParse("/x/y/z")
	c := MustParse("/x/y")
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal misbehaved")
	}
	if !a.Matches(b) {
		t.Fatal("exact subscription did not match")
	}
	if a.Matches(c) {
		t.Fatal("shorter non-wildcard subscription matched")
	}
	wc := MustParse("/x/y/*")
	if !a.Matches(wc) {
		t.Fatal("wildcard subscription did not match deeper topic")
	}
	if !c.Matches(MustParse("/x/*")) {
		t.Fatal("wildcard did not match")
	}
	if MustParse("/q/y/z").Matches(wc) {
		t.Fatal("wildcard matched different prefix")
	}
	// Wildcard matches the exact prefix itself too.
	if !MustParse("/x/y").Matches(wc) {
		t.Fatal("wildcard should match its own prefix")
	}
}

func TestHasPrefix(t *testing.T) {
	tp := MustParse("/Constrained/Traces/Broker")
	if !tp.HasPrefix("Constrained") || !tp.HasPrefix("Constrained", "Traces") {
		t.Fatal("HasPrefix false negative")
	}
	if tp.HasPrefix("Traces") || tp.HasPrefix("Constrained", "Traces", "Broker", "More") {
		t.Fatal("HasPrefix false positive")
	}
}

func TestIsZeroAndWildcard(t *testing.T) {
	if !(Topic{}).IsZero() {
		t.Fatal("zero topic not IsZero")
	}
	if MustParse("/a").IsZero() {
		t.Fatal("parsed topic IsZero")
	}
	if !MustParse("/a/*").IsWildcard() || MustParse("/a").IsWildcard() {
		t.Fatal("IsWildcard misbehaved")
	}
}

func TestParseStringRoundTripProperty(t *testing.T) {
	// Any topic built from non-empty slash-free segments round trips.
	prop := func(raw []string) bool {
		segs := make([]string, 0, len(raw))
		for _, s := range raw {
			s = strings.Map(func(r rune) rune {
				if r == '/' || r == 0 {
					return 'x'
				}
				return r
			}, s)
			if s == "" || s == Wildcard {
				s = "seg"
			}
			segs = append(segs, s)
		}
		if len(segs) == 0 {
			return true
		}
		tp, err := Build(segs...)
		if err != nil {
			return false
		}
		back, err := Parse(tp.String())
		return err == nil && back.Equal(tp)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorsAndLiveness(t *testing.T) {
	d := AvailabilityDescriptor("entity-9")
	if string(d) != "Availability/Traces/entity-9" {
		t.Fatalf("descriptor = %q", d)
	}
	q := LivenessQuery("entity-9")
	if q != "/Liveness/entity-9" {
		t.Fatalf("query = %q", q)
	}
	id, ok := EntityFromLivenessQuery(q)
	if !ok || id != "entity-9" {
		t.Fatalf("EntityFromLivenessQuery = %q, %v", id, ok)
	}
	if _, ok := EntityFromLivenessQuery("/Other/entity-9"); ok {
		t.Fatal("accepted non-liveness query")
	}
	if _, ok := EntityFromLivenessQuery("/Liveness/"); ok {
		t.Fatal("accepted empty entity")
	}
	if _, ok := EntityFromLivenessQuery("/Liveness/a/b"); ok {
		t.Fatal("accepted slashed entity")
	}
}

func TestUUIDTopicSegments(t *testing.T) {
	u := ident.NewUUID()
	tp := EntityToBrokerSession(u, ident.NewSessionID())
	if !tp.HasPrefix("Constrained", "Traces", "Broker", "Subscribe-Only", "Limited") {
		t.Fatalf("session topic = %q", tp)
	}
	if tp.Len() != 7 {
		t.Fatalf("session topic has %d segments", tp.Len())
	}
}

func TestIsSessionKeyDelivery(t *testing.T) {
	if !IsSessionKeyDelivery(SessionKeyDelivery("hb0")) {
		t.Fatal("canonical SessionKeyDelivery topic not recognized")
	}
	tt := ident.NewUUID()
	bad := []string{
		"/Constrained/Traces/Broker/Publish-Only/System/SessionKeys",     // missing name
		"/Constrained/Traces/Broker/Publish-Only/System/SessionKeys/a/b", // extra segment
		"/Constrained/Traces/Broker/Subscribe-Only/System/SessionKeys/a", // wrong direction
		"/Constrained/Traces/Broker/Publish-Only/System/SessionKeys/*",   // wildcard name
		"/Constrained/Traces/Broker/Publish-Only/" + tt.String() + "/AllUpdates", // guarded trace topic
		"/Constrained/Traces/tracker-1/Subscribe-Only/Keys/" + tt.String(),       // tracker key topic
	}
	for _, s := range bad {
		if IsSessionKeyDelivery(MustParse(s)) {
			t.Errorf("IsSessionKeyDelivery(%q) = true, want false", s)
		}
	}
}
