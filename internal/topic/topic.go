// Package topic implements the topic machinery of the publish/subscribe
// substrate: plain "/"-separated topics (§2.1), the constrained-topic
// grammar of §3.1 with its default elements and equivalence rules, and
// builders for the trace and derivative topics of Tables 1 and 2.
package topic

import (
	"errors"
	"fmt"
	"strings"

	"entitytrace/internal/ident"
)

// Wildcard is the subscription suffix matching any topic subtree, e.g.
// "/Constrained/Traces/*" receives every constrained trace message.
const Wildcard = "*"

// ErrBadTopic reports a malformed topic string.
var ErrBadTopic = errors.New("topic: malformed topic")

// Topic is a parsed "/"-separated topic. The zero value is invalid;
// construct topics with Parse or Build.
type Topic struct {
	segments []string
	// str caches the canonical form: topics are parsed once but
	// stringified on every routing decision, so String must not
	// re-join segments per call.
	str string
}

// Parse validates and parses a topic string. Topics must start with '/'
// (leading-slash-less strings such as descriptors are handled by the TDN
// query machinery, not here), must not contain empty segments, and may
// only use the wildcard as the final segment.
func Parse(s string) (Topic, error) {
	if s == "" || s[0] != '/' {
		return Topic{}, fmt.Errorf("%w: %q (must start with '/')", ErrBadTopic, s)
	}
	raw := strings.Split(s[1:], "/")
	for i, seg := range raw {
		if seg == "" {
			return Topic{}, fmt.Errorf("%w: %q (empty segment)", ErrBadTopic, s)
		}
		if seg == Wildcard && i != len(raw)-1 {
			return Topic{}, fmt.Errorf("%w: %q (wildcard only allowed as final segment)", ErrBadTopic, s)
		}
	}
	return Topic{segments: raw, str: s}, nil
}

// MustParse is Parse for statically known strings; it panics on error.
func MustParse(s string) Topic {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Build constructs a topic from individual segments.
func Build(segments ...string) (Topic, error) {
	if len(segments) == 0 {
		return Topic{}, fmt.Errorf("%w: no segments", ErrBadTopic)
	}
	return Parse("/" + strings.Join(segments, "/"))
}

// String returns the canonical "/a/b/c" form.
func (t Topic) String() string {
	if len(t.segments) == 0 {
		return ""
	}
	if t.str != "" {
		return t.str
	}
	return "/" + strings.Join(t.segments, "/")
}

// Segments returns a copy of the topic's path elements.
func (t Topic) Segments() []string {
	return append([]string(nil), t.segments...)
}

// Len returns the number of segments.
func (t Topic) Len() int { return len(t.segments) }

// IsZero reports whether the topic is the (invalid) zero value.
func (t Topic) IsZero() bool { return len(t.segments) == 0 }

// IsWildcard reports whether the topic ends in the wildcard segment.
func (t Topic) IsWildcard() bool {
	return len(t.segments) > 0 && t.segments[len(t.segments)-1] == Wildcard
}

// Child returns the topic extended with extra segments.
func (t Topic) Child(segments ...string) (Topic, error) {
	if t.IsZero() {
		return Topic{}, fmt.Errorf("%w: child of zero topic", ErrBadTopic)
	}
	if t.IsWildcard() {
		return Topic{}, fmt.Errorf("%w: child of wildcard topic", ErrBadTopic)
	}
	all := append(t.Segments(), segments...)
	return Build(all...)
}

// Equal reports exact segment equality.
func (t Topic) Equal(other Topic) bool {
	if len(t.segments) != len(other.segments) {
		return false
	}
	for i := range t.segments {
		if t.segments[i] != other.segments[i] {
			return false
		}
	}
	return true
}

// Matches reports whether a concrete published topic t is delivered to a
// subscription sub. A subscription matches if it is segment-for-segment
// equal, or if it ends in the wildcard and the prefix before the wildcard
// is a prefix of t.
func (t Topic) Matches(sub Topic) bool {
	if sub.IsWildcard() {
		prefix := sub.segments[:len(sub.segments)-1]
		if len(t.segments) < len(prefix) {
			return false
		}
		for i := range prefix {
			if t.segments[i] != prefix[i] {
				return false
			}
		}
		return true
	}
	return t.Equal(sub)
}

// HasPrefix reports whether t starts with the given segments.
func (t Topic) HasPrefix(segments ...string) bool {
	if len(t.segments) < len(segments) {
		return false
	}
	for i := range segments {
		if t.segments[i] != segments[i] {
			return false
		}
	}
	return true
}

// Descriptor is a topic descriptor registered at a TDN during topic
// creation (§3.1), e.g. "Availability/Traces/<Entity-ID>". Descriptors do
// not carry a leading slash in the paper's examples.
type Descriptor string

// AvailabilityDescriptor builds the descriptor a traced entity registers
// for its trace topic: Availability/Traces/Entity-ID (§3.1).
func AvailabilityDescriptor(entity ident.EntityID) Descriptor {
	return Descriptor("Availability/Traces/" + string(entity))
}

// LivenessQuery builds the discovery query a tracker uses to find an
// entity's trace topic: /Liveness/Entity-ID (§3.4).
func LivenessQuery(entity ident.EntityID) string {
	return "/Liveness/" + string(entity)
}

// EntityFromLivenessQuery extracts the entity ID from a /Liveness/<ID>
// query, reporting ok=false for anything else.
func EntityFromLivenessQuery(q string) (ident.EntityID, bool) {
	const prefix = "/Liveness/"
	if !strings.HasPrefix(q, prefix) {
		return "", false
	}
	id := ident.EntityID(q[len(prefix):])
	if id.Validate() != nil {
		return "", false
	}
	return id, true
}
