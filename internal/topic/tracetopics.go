package topic

import (
	"entitytrace/internal/ident"
)

// This file builds the concrete topics the tracing scheme uses: the
// registration topic (§3.2), the per-session topics, and the derivative
// topics of Table 2 on which brokers publish the different trace types.

// Suffix segments used by the derivative topics (Table 2) and protocol
// topics (§3.2, §3.5).
const (
	SuffixRegistration        = "Registration"
	SuffixChangeNotifications = "ChangeNotifications"
	SuffixAllUpdates          = "AllUpdates"
	SuffixStateTransitions    = "StateTransitions"
	SuffixLoad                = "Load"
	SuffixNetworkMetrics      = "NetworkMetrics"
	SuffixInterest            = "Interest"
	SuffixSystem              = "System"
	SuffixHealth              = "Health"
	SuffixAvailability        = "Availability"
	SuffixSessionKeys         = "SessionKeys"
	SuffixFabric              = "Fabric"
	SuffixTelemetry           = "Telemetry"
)

// SystemHealth returns the constrained derivative topic carrying broker
// self-monitoring snapshots:
// /Constrained/Traces/Broker/Publish-Only/System/Health. The fabric
// monitors itself with its own derivative-topic mechanism: Publish-Only
// with the broker as constrainer means only brokers may publish health
// snapshots while anyone may subscribe, and the default Disseminate
// distribution propagates them network-wide, so one subscription
// anywhere observes every broker. The "System" segment is deliberately
// not a UUID, so the topic falls outside the per-trace-topic token
// guard.
func SystemHealth() Topic {
	return MustParse("/Constrained/Traces/Broker/Publish-Only/" + SuffixSystem + "/" + SuffixHealth)
}

// SystemAvailability returns the constrained derivative topic carrying
// per-broker availability digests:
// /Constrained/Traces/Broker/Publish-Only/System/Availability. It
// mirrors SystemHealth(): Publish-Only with the broker as constrainer
// means only brokers may publish digests while anyone may subscribe,
// and the default Disseminate distribution propagates them
// network-wide, so one subscription anywhere sees the availability of
// every entity in the fleet.
func SystemAvailability() Topic {
	return MustParse("/Constrained/Traces/Broker/Publish-Only/" + SuffixSystem + "/" + SuffixAvailability)
}

// SystemFabric returns the constrained topic carrying broker-fabric
// membership gossip (PROTOCOL.md §3.9):
// /Constrained/Traces/Broker/Publish-Only/System/Fabric. It mirrors
// SystemHealth(): Publish-Only with the broker as constrainer means
// only brokers may gossip, the default Disseminate distribution
// propagates exchanges across whatever links exist (anti-entropy
// convergence even when two brokers are not directly linked), and the
// non-UUID "System" segment keeps it outside the per-trace-topic token
// guard and outside the sharded keyspace.
func SystemFabric() Topic {
	return MustParse("/Constrained/Traces/Broker/Publish-Only/" + SuffixSystem + "/" + SuffixFabric)
}

// SystemTelemetry returns the constrained topic carrying per-broker
// metric snapshots (PROTOCOL.md §3.10):
// /Constrained/Traces/Broker/Publish-Only/System/Telemetry. It mirrors
// SystemHealth(): Publish-Only with the broker as constrainer means
// only brokers may publish telemetry while anyone may subscribe, the
// default Disseminate distribution propagates snapshots network-wide
// (one `tracectl top` subscription anywhere assembles the whole
// fleet), and the non-UUID "System" segment keeps the topic outside
// the per-trace-topic token guard and outside the sharded keyspace.
func SystemTelemetry() Topic {
	return MustParse("/Constrained/Traces/Broker/Publish-Only/" + SuffixSystem + "/" + SuffixTelemetry)
}

// Registration returns the constrained topic on which trace registration
// messages are issued (§3.2). The broker is the only subscriber;
// entities publish to it. The Suppress distribution (§3.1: "in the case
// of a Subscribe_Only action combined with Suppress distribution, the
// constrainer's subscriptions are not propagated within the broker
// network") is essential here: every broker subscribes locally, and
// without suppression a registration would reach every trace manager in
// the network and create phantom sessions at brokers the entity never
// connected to.
func Registration() Topic {
	return MustParse("/Constrained/Traces/Broker/Subscribe-Only/Suppress/Registration")
}

// EntityToBrokerSession returns the topic the traced entity publishes its
// messages over and the broker subscribes to:
// /Constrained/Traces/Broker/Subscribe-Only/Limited/<TraceTopic>/<SessionID>
// (§3.2, §3.3).
func EntityToBrokerSession(traceTopic ident.UUID, session ident.SessionID) Topic {
	return MustParse("/Constrained/Traces/Broker/Subscribe-Only/Limited/" +
		traceTopic.String() + "/" + session.String())
}

// BrokerToEntitySession returns the topic the broker uses to reach the
// traced entity (pings, control):
// /Constrained/Traces/<Entity-ID>/Subscribe-Only/<TraceTopic>/<SessionID>
// (§3.2, §3.3). The entity is the constrainer, so only it may subscribe.
func BrokerToEntitySession(entity ident.EntityID, traceTopic ident.UUID, session ident.SessionID) (Topic, error) {
	if err := entity.Validate(); err != nil {
		return Topic{}, err
	}
	return Parse("/Constrained/Traces/" + string(entity) + "/Subscribe-Only/" +
		traceTopic.String() + "/" + session.String())
}

// derivative builds a broker Publish-Only derivative topic with the given
// final suffix: /Constrained/Traces/Broker/Publish-Only/<TraceTopic>/<sfx>
// (Table 2).
func derivative(traceTopic ident.UUID, sfx string) Topic {
	return MustParse("/Constrained/Traces/Broker/Publish-Only/" + traceTopic.String() + "/" + sfx)
}

// ChangeNotifications carries JOIN, FAILURE_SUSPICION, FAILED, DISCONNECT
// and REVERTING_TO_SILENT_MODE traces.
func ChangeNotifications(traceTopic ident.UUID) Topic {
	return derivative(traceTopic, SuffixChangeNotifications)
}

// AllUpdates carries ALLS_WELL heartbeats issued on every ping response.
func AllUpdates(traceTopic ident.UUID) Topic {
	return derivative(traceTopic, SuffixAllUpdates)
}

// StateTransitions carries INITIALIZING, RECOVERING, READY and SHUTDOWN
// state information reported by the traced entity.
func StateTransitions(traceTopic ident.UUID) Topic {
	return derivative(traceTopic, SuffixStateTransitions)
}

// Load carries LOAD_INFORMATION traces (CPU, memory, workload).
func Load(traceTopic ident.UUID) Topic {
	return derivative(traceTopic, SuffixLoad)
}

// NetworkMetrics carries NETWORK_METRICS traces (loss rates, transit
// delay, bandwidth).
func NetworkMetrics(traceTopic ident.UUID) Topic {
	return derivative(traceTopic, SuffixNetworkMetrics)
}

// GaugeInterest returns the topic on which the broker publishes
// GUAGE_INTEREST probes: /Constrained/Traces/Broker/Publish-Only/
// <TraceTopic>/Interest (§3.5). (The paper's Table 2 also lists a
// /Traces/<topic>/Request-Response form; the §3.5 prose topic is used.)
func GaugeInterest(traceTopic ident.UUID) Topic {
	return derivative(traceTopic, SuffixInterest)
}

// GaugeInterestResponse returns the topic trackers answer on:
// /Constrained/Traces/Broker/Subscribe-Only/<TraceTopic>/Interest (§3.5).
func GaugeInterestResponse(traceTopic ident.UUID) Topic {
	return MustParse("/Constrained/Traces/Broker/Subscribe-Only/" + traceTopic.String() + "/" + SuffixInterest)
}

// SessionKeyRequests returns the topic on which verifiers ask the
// publisher's hosting broker for sealed §6.3 session parameters:
// /Constrained/Traces/Broker/Subscribe-Only/<TraceTopic>/SessionKeys.
// Subscribe-Only with the broker as constrainer mirrors the
// gauge-interest response topic: only brokers subscribe (the hosting
// broker, locally), while any principal — an intermediate broker or a
// tracker — may publish a request, and the default Disseminate
// distribution carries the request across the fabric to wherever the
// session lives.
func SessionKeyRequests(traceTopic ident.UUID) Topic {
	return MustParse("/Constrained/Traces/Broker/Subscribe-Only/" + traceTopic.String() + "/" + SuffixSessionKeys)
}

// SessionKeyDelivery returns the topic on which a requesting broker
// receives sealed session parameters:
// /Constrained/Traces/Broker/Publish-Only/System/SessionKeys/<name>.
// Publish-Only with the broker as constrainer means only brokers may
// publish responses; the "System" segment is deliberately not a UUID, so
// the topic falls outside the per-trace-topic token guard — the
// response envelope instead carries the publisher's token and RSA
// delegate signature, which the requester verifies in full before
// trusting the sealed key (the one RSA verification §6.3 amortizes).
// Trackers do not use this topic: their responses arrive on the
// key-delivery topic they announce in interest responses.
func SessionKeyDelivery(name string) Topic {
	return MustParse("/Constrained/Traces/Broker/Publish-Only/" + SuffixSystem + "/" + SuffixSessionKeys + "/" + name)
}

// IsSessionKeyDelivery reports whether tp has the exact shape of a
// SessionKeyDelivery topic. Hosting brokers validate a broker
// requester's DeliveryTopic against this before publishing a
// SESSION_KEY_RESPONSE: a requester-chosen topic of any other shape —
// in particular a per-trace-topic constrained topic whose token guard
// would reject the response and score a violation against the
// responding broker — is refused.
func IsSessionKeyDelivery(tp Topic) bool {
	s := tp.segments
	return len(s) == 7 &&
		s[0] == "Constrained" && s[1] == "Traces" && s[2] == "Broker" &&
		s[3] == "Publish-Only" && s[4] == SuffixSystem && s[5] == SuffixSessionKeys &&
		s[6] != Wildcard
}

// IsTraceDerivative reports whether tp has the exact shape of a
// per-trace-topic derivative class topic (Table 2):
// /Constrained/Traces/Broker/Publish-Only/<TraceTopic-UUID>/<class>.
// These are the streams the availability ledger is built from, and the
// default set a broker's durable log persists before fan-out — the
// system topics (non-UUID "System" segment) and transient interest
// probes deliberately fall outside it.
func IsTraceDerivative(tp Topic) bool {
	s := tp.segments
	if len(s) != 6 ||
		s[0] != "Constrained" || s[1] != "Traces" || s[2] != "Broker" || s[3] != "Publish-Only" {
		return false
	}
	if _, err := ident.ParseUUID(s[4]); err != nil {
		return false
	}
	switch s[5] {
	case SuffixChangeNotifications, SuffixAllUpdates, SuffixStateTransitions,
		SuffixLoad, SuffixNetworkMetrics:
		return true
	}
	return false
}

// TraceClass names a selectable category of trace information a tracker
// may register interest in (§3.5: "any combination of change
// notifications, all-updates, state transitions, load information or
// network metrics").
type TraceClass int

const (
	ClassChangeNotifications TraceClass = iota
	ClassAllUpdates
	ClassStateTransitions
	ClassLoad
	ClassNetworkMetrics
	numTraceClasses
)

// NumTraceClasses is the number of selectable trace classes.
const NumTraceClasses = int(numTraceClasses)

// String returns the class's topic suffix.
func (tc TraceClass) String() string {
	switch tc {
	case ClassChangeNotifications:
		return SuffixChangeNotifications
	case ClassAllUpdates:
		return SuffixAllUpdates
	case ClassStateTransitions:
		return SuffixStateTransitions
	case ClassLoad:
		return SuffixLoad
	case ClassNetworkMetrics:
		return SuffixNetworkMetrics
	default:
		return "UnknownClass"
	}
}

// AllTraceClasses lists every selectable class.
func AllTraceClasses() []TraceClass {
	return []TraceClass{
		ClassChangeNotifications, ClassAllUpdates, ClassStateTransitions,
		ClassLoad, ClassNetworkMetrics,
	}
}

// ForClass returns the derivative topic carrying the given class of
// traces for traceTopic.
func ForClass(traceTopic ident.UUID, tc TraceClass) Topic {
	return derivative(traceTopic, tc.String())
}

// ClassSet is a bitmask of trace classes, used in gauge-interest
// responses.
type ClassSet uint8

// NewClassSet builds a set from individual classes.
func NewClassSet(classes ...TraceClass) ClassSet {
	var s ClassSet
	for _, c := range classes {
		s |= 1 << uint(c)
	}
	return s
}

// AllClasses is the set of every trace class.
func AllClasses() ClassSet { return NewClassSet(AllTraceClasses()...) }

// Has reports membership.
func (s ClassSet) Has(c TraceClass) bool { return s&(1<<uint(c)) != 0 }

// Add returns the set with c included.
func (s ClassSet) Add(c TraceClass) ClassSet { return s | 1<<uint(c) }

// Union merges two sets.
func (s ClassSet) Union(other ClassSet) ClassSet { return s | other }

// Empty reports whether no class is selected.
func (s ClassSet) Empty() bool { return s == 0 }

// Classes expands the set into a slice.
func (s ClassSet) Classes() []TraceClass {
	var out []TraceClass
	for _, c := range AllTraceClasses() {
		if s.Has(c) {
			out = append(out, c)
		}
	}
	return out
}
