package baseline

import (
	"testing"
	"testing/quick"
)

func TestAllToAllConfigValidate(t *testing.T) {
	bad := []AllToAllConfig{
		{N: 1, HeartbeatEvery: 1, FailAfter: 1},
		{N: 2, HeartbeatEvery: 0, FailAfter: 1},
		{N: 2, HeartbeatEvery: 1, FailAfter: 0},
	}
	for i, c := range bad {
		if _, err := NewAllToAll(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAllToAllMessageComplexity(t *testing.T) {
	// The paper's claim: N entities → N×(N−1) messages per period.
	for _, n := range []int{2, 5, 10, 30} {
		s, err := NewAllToAll(AllToAllConfig{N: n, HeartbeatEvery: 1, FailAfter: 3})
		if err != nil {
			t.Fatal(err)
		}
		sent := s.Tick()
		if want := MessagesPerPeriod(n); sent != want {
			t.Fatalf("N=%d: %d messages per period, want %d", n, sent, want)
		}
	}
}

func TestAllToAllDetection(t *testing.T) {
	s, err := NewAllToAll(AllToAllConfig{N: 10, HeartbeatEvery: 2, FailAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up so everyone has heard from everyone.
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	if err := s.Kill(4); err != nil {
		t.Fatal(err)
	}
	ticks, msgs := s.DetectionTicks(4)
	// Detection needs more than FailAfter periods and bounded by one
	// extra period.
	if ticks < 2*3 || ticks > 2*(3+2) {
		t.Fatalf("detection took %d ticks", ticks)
	}
	if msgs == 0 {
		t.Fatal("no messages counted during detection")
	}
	// Live entities suspect only the dead one.
	for i := 0; i < 10; i++ {
		if i == 4 {
			continue
		}
		sus := s.SuspectsOf(i)
		if len(sus) != 1 || sus[0] != 4 {
			t.Fatalf("entity %d suspects %v", i, sus)
		}
	}
	if s.Now() == 0 {
		t.Fatal("clock not advancing")
	}
}

func TestAllToAllKillValidation(t *testing.T) {
	s, _ := NewAllToAll(AllToAllConfig{N: 3, HeartbeatEvery: 1, FailAfter: 1})
	if err := s.Kill(-1); err == nil {
		t.Fatal("killed entity -1")
	}
	if err := s.Kill(3); err == nil {
		t.Fatal("killed entity 3")
	}
}

func TestMessagesPerPeriodProperty(t *testing.T) {
	prop := func(n uint8) bool {
		nn := int(n%60) + 2
		// Quadratic growth: doubling N roughly quadruples messages.
		m1 := MessagesPerPeriod(nn)
		m2 := MessagesPerPeriod(2 * nn)
		return m2 > 3*m1 && m1 == uint64(nn)*uint64(nn-1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if MessagesPerPeriod(1) != 0 {
		t.Fatal("MessagesPerPeriod(1) != 0")
	}
}

func TestBrokeredComplexityLinear(t *testing.T) {
	// The paper's scheme is linear in N for a fixed tracker count and
	// silent with no trackers (beyond pings).
	if got := BrokeredMessagesPerPeriod(10, 0); got != 20 {
		t.Fatalf("no-interest period messages = %d, want 20 (pings+responses)", got)
	}
	if got := BrokeredMessagesPerPeriod(10, 3); got != 50 {
		t.Fatalf("3-tracker period messages = %d, want 50", got)
	}
	if BrokeredMessagesPerPeriod(0, 5) != 0 {
		t.Fatal("zero entities should cost zero")
	}
	// Crossover: for N=30, the naive scheme costs 870/period while the
	// brokered scheme with 5 trackers costs 210.
	if MessagesPerPeriod(30) <= BrokeredMessagesPerPeriod(30, 5) {
		t.Fatal("naive scheme unexpectedly cheaper")
	}
}

func TestGossipConfigValidate(t *testing.T) {
	bad := []GossipConfig{
		{N: 1, Fanout: 1, FailTicks: 1},
		{N: 4, Fanout: 0, FailTicks: 1},
		{N: 4, Fanout: 4, FailTicks: 1},
		{N: 4, Fanout: 1, FailTicks: 0},
	}
	for i, c := range bad {
		if _, err := NewGossip(c); err == nil {
			t.Errorf("bad gossip config %d accepted", i)
		}
	}
}

func TestGossipDetection(t *testing.T) {
	g, err := NewGossip(GossipConfig{N: 16, Fanout: 2, FailTicks: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		g.Round()
	}
	if err := g.Kill(3); err != nil {
		t.Fatal(err)
	}
	rounds, msgs, err := g.DetectionRounds(3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rounds <= 4 {
		t.Fatalf("gossip detected in %d rounds, faster than staleness threshold", rounds)
	}
	if msgs == 0 {
		t.Fatal("no gossip messages counted")
	}
	if g.Now() == 0 {
		t.Fatal("round counter stuck")
	}
}

func TestGossipDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) (int, uint64) {
		g, err := NewGossip(GossipConfig{N: 12, Fanout: 2, FailTicks: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			g.Round()
		}
		g.Kill(1)
		r, m, err := g.DetectionRounds(1, 200)
		if err != nil {
			t.Fatal(err)
		}
		return r, m
	}
	r1, m1 := run(42)
	r2, m2 := run(42)
	if r1 != r2 || m1 != m2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", r1, m1, r2, m2)
	}
}

func TestGossipNoFalsePositivesWhileHealthy(t *testing.T) {
	g, err := NewGossip(GossipConfig{N: 10, Fanout: 3, FailTicks: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		g.Round()
	}
	if sus := g.MajoritySuspects(); len(sus) != 0 {
		t.Fatalf("healthy system majority-suspects %v", sus)
	}
}

func TestGossipKillValidation(t *testing.T) {
	g, _ := NewGossip(GossipConfig{N: 4, Fanout: 1, FailTicks: 2, Seed: 1})
	if err := g.Kill(9); err == nil {
		t.Fatal("killed out-of-range node")
	}
}

func TestGossipNonConvergence(t *testing.T) {
	g, _ := NewGossip(GossipConfig{N: 4, Fanout: 1, FailTicks: 100, Seed: 1})
	g.Kill(0)
	if _, _, err := g.DetectionRounds(0, 5); err == nil {
		t.Fatal("detection converged faster than staleness threshold allows")
	}
}

func TestGossipMessageCountPerRound(t *testing.T) {
	g, _ := NewGossip(GossipConfig{N: 10, Fanout: 3, FailTicks: 3, Seed: 9})
	g.Round()
	// 10 live nodes × fanout 3.
	if g.MessagesSent != 30 {
		t.Fatalf("round sent %d messages, want 30", g.MessagesSent)
	}
	g.Kill(0)
	before := g.MessagesSent
	g.Round()
	if g.MessagesSent-before != 27 {
		t.Fatalf("round with one dead node sent %d", g.MessagesSent-before)
	}
}
