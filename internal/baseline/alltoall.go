// Package baseline implements the comparison schemes the paper situates
// itself against: the naive all-to-all heartbeat scheme of §1 ("If there
// are N entities within the system, with each of them issuing one
// message at regular intervals, every entity within the system receives
// (N-1) messages... there would be Nx(N-1) messages within the system
// every second"), and a gossip-style failure detector in the spirit of
// van Renesse et al. (related work [7]).
//
// Both are discrete-time simulations with deterministic seeds, used by
// the benchmark harness for message-complexity and detection-latency
// comparisons.
package baseline

import (
	"errors"
	"fmt"
)

// AllToAllConfig parameterizes the naive heartbeat simulation.
type AllToAllConfig struct {
	// N is the number of entities.
	N int
	// HeartbeatEvery is the heartbeat period in ticks.
	HeartbeatEvery int
	// FailAfter is the number of missed heartbeats after which a peer is
	// declared failed.
	FailAfter int
}

// Validate checks the configuration.
func (c AllToAllConfig) Validate() error {
	if c.N < 2 {
		return errors.New("baseline: all-to-all needs N >= 2")
	}
	if c.HeartbeatEvery < 1 || c.FailAfter < 1 {
		return errors.New("baseline: periods must be >= 1")
	}
	return nil
}

// AllToAll simulates the naive scheme in discrete ticks. Every entity
// broadcasts a heartbeat to every other entity each HeartbeatEvery
// ticks; each entity tracks when it last heard from each peer.
type AllToAll struct {
	cfg   AllToAllConfig
	tick  int
	alive []bool
	// lastHeard[i][j] = tick at which i last heard from j.
	lastHeard [][]int
	// MessagesSent counts total heartbeat transmissions.
	MessagesSent uint64
}

// NewAllToAll builds the simulation with all entities alive.
func NewAllToAll(cfg AllToAllConfig) (*AllToAll, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &AllToAll{
		cfg:       cfg,
		alive:     make([]bool, cfg.N),
		lastHeard: make([][]int, cfg.N),
	}
	for i := range s.alive {
		s.alive[i] = true
		s.lastHeard[i] = make([]int, cfg.N)
	}
	return s, nil
}

// Kill marks an entity failed; it stops heartbeating.
func (s *AllToAll) Kill(i int) error {
	if i < 0 || i >= s.cfg.N {
		return fmt.Errorf("baseline: entity %d out of range", i)
	}
	s.alive[i] = false
	return nil
}

// Tick advances one time step, returning the number of heartbeats sent
// during it.
func (s *AllToAll) Tick() uint64 {
	s.tick++
	var sent uint64
	if s.tick%s.cfg.HeartbeatEvery == 0 {
		for i := 0; i < s.cfg.N; i++ {
			if !s.alive[i] {
				continue
			}
			for j := 0; j < s.cfg.N; j++ {
				if i == j {
					continue
				}
				sent++
				s.lastHeard[j][i] = s.tick
			}
		}
	}
	s.MessagesSent += sent
	return sent
}

// Tick reports the current simulation time.
func (s *AllToAll) Now() int { return s.tick }

// SuspectsOf reports which peers entity i currently considers failed.
func (s *AllToAll) SuspectsOf(i int) []int {
	var out []int
	window := s.cfg.HeartbeatEvery * s.cfg.FailAfter
	for j := 0; j < s.cfg.N; j++ {
		if j == i {
			continue
		}
		if s.tick-s.lastHeard[i][j] > window {
			out = append(out, j)
		}
	}
	return out
}

// DetectionTicks runs the simulation until every live entity suspects
// the given failed entity, returning (ticks needed, messages sent since
// the failure). Kill must have been called first.
func (s *AllToAll) DetectionTicks(failed int) (int, uint64) {
	start := s.tick
	startMsgs := s.MessagesSent
	for {
		s.Tick()
		all := true
		for i := 0; i < s.cfg.N; i++ {
			if i == failed || !s.alive[i] {
				continue
			}
			found := false
			for _, sus := range s.SuspectsOf(i) {
				if sus == failed {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all {
			return s.tick - start, s.MessagesSent - startMsgs
		}
	}
}

// MessagesPerPeriod returns the analytic N×(N−1) message count the paper
// quotes for one heartbeat period.
func MessagesPerPeriod(n int) uint64 {
	if n < 2 {
		return 0
	}
	return uint64(n) * uint64(n-1)
}

// BrokeredMessagesPerPeriod returns the message count of the paper's
// scheme for one heartbeat period with a single hosting broker, t
// interested trackers and interest-gated publication: one ping + one
// response per entity, plus one trace publication fan-out per entity if
// any tracker is interested (the broker network fans out along
// subscription paths; with a single broker it is t deliveries).
func BrokeredMessagesPerPeriod(n, interestedTrackers int) uint64 {
	if n < 1 {
		return 0
	}
	perEntity := uint64(2) // ping + response
	if interestedTrackers > 0 {
		perEntity += uint64(interestedTrackers)
	}
	return uint64(n) * perEntity
}
