package baseline

import (
	"errors"
	"math/rand"
)

// GossipConfig parameterizes the gossip failure detector (related work
// [7]: "a given node gossips (and passes information) to a set of
// randomly selected nodes").
type GossipConfig struct {
	// N is the number of nodes.
	N int
	// Fanout is how many random peers each node gossips to per round.
	Fanout int
	// FailTicks is the staleness threshold: a node whose heartbeat
	// counter has not advanced for FailTicks rounds is suspected.
	FailTicks int
	// Seed makes peer selection reproducible.
	Seed int64
}

// Validate checks the configuration.
func (c GossipConfig) Validate() error {
	if c.N < 2 {
		return errors.New("baseline: gossip needs N >= 2")
	}
	if c.Fanout < 1 || c.Fanout >= c.N {
		return errors.New("baseline: fanout must be in [1, N)")
	}
	if c.FailTicks < 1 {
		return errors.New("baseline: FailTicks must be >= 1")
	}
	return nil
}

// Gossip simulates a heartbeat-counter gossip protocol in rounds.
type Gossip struct {
	cfg   GossipConfig
	rng   *rand.Rand
	round int
	alive []bool
	// hb[i][j] = highest heartbeat counter node i has seen for node j.
	hb [][]int
	// seenAt[i][j] = round at which hb[i][j] last increased.
	seenAt [][]int
	// MessagesSent counts gossip messages (one per target per round).
	MessagesSent uint64
}

// NewGossip builds the simulation.
func NewGossip(cfg GossipConfig) (*Gossip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Gossip{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		alive: make([]bool, cfg.N),
		hb:    make([][]int, cfg.N),
		seenAt: func() [][]int {
			s := make([][]int, cfg.N)
			for i := range s {
				s[i] = make([]int, cfg.N)
			}
			return s
		}(),
	}
	for i := range g.alive {
		g.alive[i] = true
		g.hb[i] = make([]int, cfg.N)
	}
	return g, nil
}

// Kill fails a node: it stops incrementing and gossiping.
func (g *Gossip) Kill(i int) error {
	if i < 0 || i >= g.cfg.N {
		return errors.New("baseline: node out of range")
	}
	g.alive[i] = false
	return nil
}

// Round advances one gossip round: every live node increments its own
// counter and pushes its full table to Fanout random peers, which merge
// entry-wise maxima.
func (g *Gossip) Round() {
	g.round++
	for i := 0; i < g.cfg.N; i++ {
		if !g.alive[i] {
			continue
		}
		g.bump(i, i, g.hb[i][i]+1)
	}
	// Snapshot of tables at round start for symmetric exchange.
	type push struct {
		from, to int
		table    []int
	}
	var pushes []push
	for i := 0; i < g.cfg.N; i++ {
		if !g.alive[i] {
			continue
		}
		for _, target := range g.pickPeers(i) {
			tbl := make([]int, g.cfg.N)
			copy(tbl, g.hb[i])
			pushes = append(pushes, push{i, target, tbl})
		}
	}
	for _, p := range pushes {
		g.MessagesSent++
		if !g.alive[p.to] {
			continue
		}
		for j, v := range p.table {
			g.bump(p.to, j, v)
		}
	}
}

// bump merges a counter observation at node i for node j.
func (g *Gossip) bump(i, j, v int) {
	if v > g.hb[i][j] {
		g.hb[i][j] = v
		g.seenAt[i][j] = g.round
	}
}

// pickPeers selects Fanout distinct random live-or-dead peers (gossip
// does not know who is dead).
func (g *Gossip) pickPeers(i int) []int {
	peers := make([]int, 0, g.cfg.Fanout)
	seen := map[int]bool{i: true}
	for len(peers) < g.cfg.Fanout {
		p := g.rng.Intn(g.cfg.N)
		if seen[p] {
			continue
		}
		seen[p] = true
		peers = append(peers, p)
	}
	return peers
}

// SuspectsOf reports which nodes i currently suspects.
func (g *Gossip) SuspectsOf(i int) []int {
	var out []int
	for j := 0; j < g.cfg.N; j++ {
		if j == i {
			continue
		}
		if g.round-g.seenAt[i][j] > g.cfg.FailTicks {
			out = append(out, j)
		}
	}
	return out
}

// MajoritySuspects reports nodes suspected by a majority of live nodes —
// the consensus criterion GEMS applies (related work [8]: "a majority is
// needed for deeming a failure").
func (g *Gossip) MajoritySuspects() []int {
	liveCount := 0
	votes := make([]int, g.cfg.N)
	for i := 0; i < g.cfg.N; i++ {
		if !g.alive[i] {
			continue
		}
		liveCount++
		for _, s := range g.SuspectsOf(i) {
			votes[s]++
		}
	}
	var out []int
	for j, v := range votes {
		if v > liveCount/2 {
			out = append(out, j)
		}
	}
	return out
}

// DetectionRounds runs rounds until the failed node is majority-
// suspected, returning (rounds, messages since failure). Kill must have
// been called first. maxRounds bounds the search.
func (g *Gossip) DetectionRounds(failed, maxRounds int) (int, uint64, error) {
	start := g.round
	startMsgs := g.MessagesSent
	for g.round-start < maxRounds {
		g.Round()
		for _, s := range g.MajoritySuspects() {
			if s == failed {
				return g.round - start, g.MessagesSent - startMsgs, nil
			}
		}
	}
	return 0, 0, errors.New("baseline: gossip did not converge")
}

// Round reports the current round number.
func (g *Gossip) Now() int { return g.round }
