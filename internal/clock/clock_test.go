package clock

import (
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	c := Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestRealTimerFires(t *testing.T) {
	c := Real{}
	timer := c.NewTimer(time.Millisecond)
	select {
	case <-timer.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
}

func TestFakeNowAndAdvance(t *testing.T) {
	start := time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if got := f.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	f.Advance(3 * time.Second)
	if got := f.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("after Advance, Now() = %v", got)
	}
}

func TestFakeAfterFiresAtDeadline(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before any advance")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	f.Advance(time.Second)
	select {
	case got := <-ch:
		want := time.Unix(10, 0)
		if !got.Equal(want) {
			t.Fatalf("After delivered %v, want %v", got, want)
		}
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-f.After(-time.Second):
	default:
		t.Fatal("After(-1s) did not fire immediately")
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	timer := f.NewTimer(5 * time.Second)
	if !timer.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	if timer.Stop() {
		t.Fatal("second Stop should report false")
	}
	f.Advance(10 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestFakeTimerReset(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	timer := f.NewTimer(5 * time.Second)
	timer.Reset(20 * time.Second)
	f.Advance(10 * time.Second)
	select {
	case <-timer.C():
		t.Fatal("reset timer fired at original deadline")
	default:
	}
	f.Advance(10 * time.Second)
	select {
	case <-timer.C():
	default:
		t.Fatal("reset timer did not fire at new deadline")
	}
}

func TestFakePendingTimers(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	t1 := f.NewTimer(time.Second)
	f.NewTimer(2 * time.Second)
	if got := f.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers = %d, want 2", got)
	}
	t1.Stop()
	if got := f.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers after stop = %d, want 1", got)
	}
	f.Advance(5 * time.Second)
	if got := f.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers after advance = %d, want 0", got)
	}
}

func TestFakeSet(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(30 * time.Second)
	f.Set(time.Unix(60, 0))
	if got := f.Now(); !got.Equal(time.Unix(60, 0)) {
		t.Fatalf("Now after Set = %v", got)
	}
	select {
	case <-ch:
	default:
		t.Fatal("Set did not fire due timer")
	}
}

func TestFakeSleepUnblocksOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to register its waiter.
	deadline := time.After(2 * time.Second)
	for f.PendingTimers() == 0 {
		select {
		case <-deadline:
			t.Fatal("sleeper never registered")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	f.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestRealAfterSleepAndTimerOps(t *testing.T) {
	c := Real{}
	start := time.Now()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("Real.After never fired")
	}
	c.Sleep(time.Millisecond)
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("Real timers returned too quickly")
	}
	timer := c.NewTimer(time.Hour)
	if !timer.Stop() {
		t.Fatal("Stop on pending real timer reported false")
	}
	timer.Reset(time.Millisecond)
	select {
	case <-timer.C():
	case <-time.After(2 * time.Second):
		t.Fatal("reset real timer never fired")
	}
}
