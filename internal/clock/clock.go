// Package clock provides an abstraction over wall-clock time so that
// components which schedule pings, expire tokens or detect failures can be
// tested deterministically. Production code uses Real; tests use Fake,
// which only advances when told to.
package clock

import (
	"sync"
	"time"
)

// Clock is the subset of time functionality used throughout the tracker.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives the current time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// NewTimer returns a timer that fires after d.
	NewTimer(d time.Duration) Timer
}

// Timer mirrors time.Timer for both real and fake clocks.
type Timer interface {
	// C returns the channel on which the expiry is delivered.
	C() <-chan time.Time
	// Stop prevents the timer from firing. It reports whether the timer
	// was still pending.
	Stop() bool
	// Reset re-arms the timer with duration d.
	Reset(d time.Duration) bool
}

// Real is a Clock backed by the time package.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time        { return r.t.C }
func (r realTimer) Stop() bool                 { return r.t.Stop() }
func (r realTimer) Reset(d time.Duration) bool { return r.t.Reset(d) }

// Fake is a manually advanced Clock. The zero value is not usable; create
// one with NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan time.Time
	stopped  bool
}

// NewFake returns a Fake clock set to start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.newWaiter(d).ch
}

// Sleep implements Clock. It blocks until the fake time has been advanced
// past the deadline by another goroutine.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

// NewTimer implements Clock.
func (f *Fake) NewTimer(d time.Duration) Timer {
	return &fakeTimer{f: f, w: f.newWaiter(d)}
}

func (f *Fake) newWaiter(d time.Duration) *fakeWaiter {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{deadline: f.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- f.now
		return w
	}
	f.waiters = append(f.waiters, w)
	return w
}

// Advance moves the fake time forward by d, firing any timers whose
// deadlines are reached.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var remaining []*fakeWaiter
	var fired []*fakeWaiter
	for _, w := range f.waiters {
		if w.stopped {
			continue
		}
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
	f.mu.Unlock()
	for _, w := range fired {
		select {
		case w.ch <- now:
		default:
		}
	}
}

// Set jumps the fake clock to t (which must not be earlier than the
// current fake time) and fires due timers.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	d := t.Sub(f.now)
	f.mu.Unlock()
	if d > 0 {
		f.Advance(d)
	}
}

// PendingTimers reports how many unfired, unstopped timers exist. Useful
// in tests to assert scheduling behaviour.
func (f *Fake) PendingTimers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.waiters {
		if !w.stopped {
			n++
		}
	}
	return n
}

type fakeTimer struct {
	f *Fake
	w *fakeWaiter
}

func (t *fakeTimer) C() <-chan time.Time { return t.w.ch }

func (t *fakeTimer) Stop() bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	was := !t.w.stopped
	t.w.stopped = true
	return was
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	t.f.mu.Lock()
	was := !t.w.stopped
	t.w.stopped = true
	t.f.mu.Unlock()
	t.w = t.f.newWaiter(d)
	return was
}
