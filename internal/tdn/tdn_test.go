package tdn

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"entitytrace/internal/credential"
	"entitytrace/internal/ident"
	"entitytrace/internal/secure"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// Shared fixture: one CA, one TDN identity, a few entity identities.
var (
	fixtureOnce sync.Once
	fxCA        *credential.Authority
	fxVerifier  *credential.Verifier
	fxTDNIdent  *credential.Identity
	fxTDNIdent2 *credential.Identity
	fxOwner     *credential.Identity
	fxTracker   *credential.Identity
	fxOutsider  *credential.Identity
	fxErr       error
)

func fixture(t *testing.T) {
	t.Helper()
	fixtureOnce.Do(func() {
		fxCA, fxErr = credential.NewAuthority("tdn-test-ca", credential.WithKeyBits(secure.PaperRSABits))
		if fxErr != nil {
			return
		}
		if fxVerifier, fxErr = credential.NewVerifier(fxCA.CACertificate()); fxErr != nil {
			return
		}
		issue := func(name ident.EntityID) *credential.Identity {
			if fxErr != nil {
				return nil
			}
			id, err := fxCA.Issue(name)
			if err != nil {
				fxErr = err
			}
			return id
		}
		fxTDNIdent = issue("tdn-1")
		fxTDNIdent2 = issue("tdn-2")
		fxOwner = issue("traced-svc")
		fxTracker = issue("tracker-1")
		fxOutsider = issue("outsider")
	})
	if fxErr != nil {
		t.Fatal(fxErr)
	}
}

func newNode(t *testing.T, id *credential.Identity) *Node {
	t.Helper()
	n, err := NewNode(id, fxVerifier)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func signedCreateRequest(t *testing.T, owner *credential.Identity, allowAny bool, allowed []string, lifetime time.Duration) *CreateRequest {
	t.Helper()
	req := &CreateRequest{
		Owner:      owner.Credential.Entity,
		OwnerCert:  owner.Credential.Cert,
		Descriptor: string(topic.AvailabilityDescriptor(owner.Credential.Entity)),
		AllowAny:   allowAny,
		Allowed:    allowed,
		Lifetime:   lifetime,
		RequestID:  ident.NewRequestID(),
	}
	signer, err := owner.Signer(secure.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	if err := req.Sign(signer); err != nil {
		t.Fatal(err)
	}
	return req
}

func TestCreateTopicAndVerifyAdvertisement(t *testing.T) {
	fixture(t)
	node := newNode(t, fxTDNIdent)
	req := signedCreateRequest(t, fxOwner, false, []string{"tracker-1"}, time.Hour)
	ad, err := node.CreateTopic(req)
	if err != nil {
		t.Fatal(err)
	}
	if ad.TopicID.IsNil() {
		t.Fatal("advertisement lacks topic UUID")
	}
	if ad.Owner != "traced-svc" || ad.TDNName != "tdn-1" {
		t.Fatalf("ad fields: %+v", ad)
	}
	ownerPub, err := ad.Verify(fxVerifier, time.Now())
	if err != nil {
		t.Fatalf("advertisement verify: %v", err)
	}
	if ownerPub.N.Cmp(fxOwner.Private.PublicKey.N) != 0 {
		t.Fatal("advertisement returned wrong owner key")
	}
}

func TestCreateTopicRejectsBadSignature(t *testing.T) {
	fixture(t)
	node := newNode(t, fxTDNIdent)
	req := signedCreateRequest(t, fxOwner, true, nil, time.Hour)
	req.Descriptor = "Availability/Traces/hijacked" // invalidates signature
	if _, err := node.CreateTopic(req); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("tampered create accepted: %v", err)
	}
}

func TestCreateTopicRejectsForeignCredential(t *testing.T) {
	fixture(t)
	node := newNode(t, fxTDNIdent)
	foreignCA, err := credential.NewAuthority("foreign", credential.WithKeyBits(secure.PaperRSABits))
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := foreignCA.Issue("impostor")
	if err != nil {
		t.Fatal(err)
	}
	req := signedCreateRequest(t, foreign, true, nil, time.Hour)
	if _, err := node.CreateTopic(req); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("foreign credential accepted: %v", err)
	}
}

func TestDiscoverAuthorized(t *testing.T) {
	fixture(t)
	node := newNode(t, fxTDNIdent)
	req := signedCreateRequest(t, fxOwner, false, []string{"tracker-1"}, time.Hour)
	ad, err := node.CreateTopic(req)
	if err != nil {
		t.Fatal(err)
	}
	// The authorized tracker discovers via /Liveness/<Entity-ID>.
	got, err := node.Discover(topic.LivenessQuery("traced-svc"), "tracker-1", fxTracker.Credential.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TopicID != ad.TopicID {
		t.Fatalf("discover returned %v", got)
	}
	// The owner can always discover its own topic.
	if _, err := node.Discover(topic.LivenessQuery("traced-svc"), "traced-svc", fxOwner.Credential.Cert); err != nil {
		t.Fatalf("owner discovery failed: %v", err)
	}
}

func TestDiscoverUnauthorizedIndistinguishable(t *testing.T) {
	fixture(t)
	node := newNode(t, fxTDNIdent)
	req := signedCreateRequest(t, fxOwner, false, []string{"tracker-1"}, time.Hour)
	if _, err := node.CreateTopic(req); err != nil {
		t.Fatal(err)
	}
	// The outsider holds a valid credential but is not in the
	// restrictions: the response must equal the nonexistent-topic case.
	_, errRestricted := node.Discover(topic.LivenessQuery("traced-svc"), "outsider", fxOutsider.Credential.Cert)
	_, errMissing := node.Discover(topic.LivenessQuery("no-such-entity"), "outsider", fxOutsider.Credential.Cert)
	if !errors.Is(errRestricted, ErrNotFound) || !errors.Is(errMissing, ErrNotFound) {
		t.Fatalf("restricted=%v missing=%v; want both ErrNotFound", errRestricted, errMissing)
	}
}

func TestDiscoverRequiresValidCredential(t *testing.T) {
	fixture(t)
	node := newNode(t, fxTDNIdent)
	req := signedCreateRequest(t, fxOwner, true, nil, time.Hour)
	if _, err := node.CreateTopic(req); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Discover(topic.LivenessQuery("traced-svc"), "tracker-1", []byte("junk")); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("junk credential: %v", err)
	}
	// Credential naming a different entity must fail too.
	if _, err := node.Discover(topic.LivenessQuery("traced-svc"), "tracker-1", fxOutsider.Credential.Cert); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("mismatched credential: %v", err)
	}
}

func TestLifetimeExpiry(t *testing.T) {
	fixture(t)
	node := newNode(t, fxTDNIdent)
	now := time.Now()
	node.SetTimeFunc(func() time.Time { return now })
	req := signedCreateRequest(t, fxOwner, true, nil, time.Minute)
	ad, err := node.CreateTopic(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := node.Lookup(ad.TopicID); !ok {
		t.Fatal("fresh topic not found")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := node.Lookup(ad.TopicID); ok {
		t.Fatal("expired topic still served by Lookup")
	}
	if _, err := node.Discover(topic.LivenessQuery("traced-svc"), "tracker-1", fxTracker.Credential.Cert); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired topic discovered: %v", err)
	}
	if pruned := node.Sweep(); pruned != 1 {
		t.Fatalf("Sweep pruned %d", pruned)
	}
	if node.Size() != 0 {
		t.Fatalf("Size = %d after sweep", node.Size())
	}
}

func TestDefaultLifetimeApplied(t *testing.T) {
	fixture(t)
	node := newNode(t, fxTDNIdent)
	req := signedCreateRequest(t, fxOwner, true, nil, 0)
	ad, err := node.CreateTopic(req)
	if err != nil {
		t.Fatal(err)
	}
	life := time.Duration(ad.ExpiresAt - ad.CreatedAt)
	if life != DefaultLifetime {
		t.Fatalf("default lifetime = %v", life)
	}
}

func TestReplicationAcrossNodes(t *testing.T) {
	fixture(t)
	n1 := newNode(t, fxTDNIdent)
	n2 := newNode(t, fxTDNIdent2)
	n1.AddPeer(n2)
	req := signedCreateRequest(t, fxOwner, false, []string{"tracker-1"}, time.Hour)
	ad, err := n1.CreateTopic(req)
	if err != nil {
		t.Fatal(err)
	}
	// The advertisement survives the loss of n1: discovery at n2 works.
	got, err := n2.Discover(topic.LivenessQuery("traced-svc"), "tracker-1", fxTracker.Credential.Cert)
	if err != nil {
		t.Fatalf("discovery at replica: %v", err)
	}
	if got[0].TopicID != ad.TopicID {
		t.Fatal("replica returned different advertisement")
	}
	// Replicating a tampered advertisement is rejected.
	bad := *ad
	bad.Owner = "hijacker"
	if err := n2.Replicate(&bad); err == nil {
		t.Fatal("tampered advertisement replicated")
	}
}

func TestAdvertisementMarshalRoundTrip(t *testing.T) {
	fixture(t)
	node := newNode(t, fxTDNIdent)
	req := signedCreateRequest(t, fxOwner, false, []string{"a", "b"}, time.Hour)
	ad, err := node.CreateTopic(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalAdvertisement(ad.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.TopicID != ad.TopicID || back.Owner != ad.Owner ||
		back.Descriptor != ad.Descriptor || len(back.Allowed) != 2 ||
		back.ExpiresAt != ad.ExpiresAt {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, ad)
	}
	if _, err := back.Verify(fxVerifier, time.Now()); err != nil {
		t.Fatalf("round-tripped ad failed verification: %v", err)
	}
}

func TestUnmarshalAdvertisementMalformed(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, []byte("garbage advertisement bytes")} {
		if _, err := UnmarshalAdvertisement(b); err == nil {
			t.Errorf("accepted %d-byte garbage", len(b))
		}
	}
}

func TestMayDiscover(t *testing.T) {
	ad := &Advertisement{Owner: "own", Allowed: []string{"friend"}}
	if !ad.MayDiscover("own") || !ad.MayDiscover("friend") || ad.MayDiscover("stranger") {
		t.Fatal("MayDiscover matrix wrong")
	}
	open := &Advertisement{Owner: "own", AllowAny: true}
	if !open.MayDiscover("stranger") {
		t.Fatal("AllowAny ignored")
	}
}

func TestRPCEndToEnd(t *testing.T) {
	fixture(t)
	tr := transport.NewInproc()
	n1 := newNode(t, fxTDNIdent)
	n2 := newNode(t, fxTDNIdent2)
	s1 := NewServer(n1)
	s2 := NewServer(n2)
	l1, _ := tr.Listen("tdn1")
	l2, _ := tr.Listen("tdn2")
	s1.Serve(l1)
	s2.Serve(l2)
	defer s1.Close()
	defer s2.Close()
	n1.AddPeer(NewRemoteReplicator(tr, "tdn2"))

	client, err := NewClient(tr, "tdn1")
	if err != nil {
		t.Fatal(err)
	}
	req := signedCreateRequest(t, fxOwner, false, []string{"tracker-1"}, time.Hour)
	ad, err := client.CreateTopic(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Verify(fxVerifier, time.Now()); err != nil {
		t.Fatalf("RPC-returned ad invalid: %v", err)
	}

	// Discovery through the failover client: first address dead.
	failover, err := NewClient(tr, "dead-tdn", "tdn2")
	if err != nil {
		t.Fatal(err)
	}
	ads, err := failover.Discover(topic.LivenessQuery("traced-svc"), "tracker-1", fxTracker.Credential.Cert)
	if err != nil {
		t.Fatalf("failover discovery: %v", err)
	}
	if ads[0].TopicID != ad.TopicID {
		t.Fatal("failover returned wrong ad")
	}

	// Lookup by UUID.
	got, err := failover.Lookup(ad.TopicID)
	if err != nil {
		t.Fatal(err)
	}
	if got.TopicID != ad.TopicID {
		t.Fatal("lookup mismatch")
	}
	if _, err := failover.Lookup(ident.NewUUID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup of unknown UUID: %v", err)
	}

	// Unauthorized discovery over RPC reads as not-found.
	if _, err := failover.Discover(topic.LivenessQuery("traced-svc"), "outsider", fxOutsider.Credential.Cert); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unauthorized RPC discovery: %v", err)
	}
}

func TestRPCSurvivesTDNLoss(t *testing.T) {
	fixture(t)
	tr := transport.NewInproc()
	n1 := newNode(t, fxTDNIdent)
	n2 := newNode(t, fxTDNIdent2)
	s1 := NewServer(n1)
	s2 := NewServer(n2)
	l1, _ := tr.Listen("t1")
	l2, _ := tr.Listen("t2")
	s1.Serve(l1)
	s2.Serve(l2)
	defer s2.Close()
	n1.AddPeer(NewRemoteReplicator(tr, "t2"))

	client, _ := NewClient(tr, "t1", "t2")
	req := signedCreateRequest(t, fxOwner, true, nil, time.Hour)
	ad, err := client.CreateTopic(req)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the TDN that created the topic.
	s1.Close()
	ads, err := client.Discover(topic.LivenessQuery("traced-svc"), "tracker-1", fxTracker.Credential.Cert)
	if err != nil {
		t.Fatalf("discovery after TDN loss: %v", err)
	}
	if ads[0].TopicID != ad.TopicID {
		t.Fatal("replica served wrong advertisement")
	}
}

func TestClientNeedsAddresses(t *testing.T) {
	if _, err := NewClient(transport.NewInproc()); err == nil {
		t.Fatal("NewClient with no addresses succeeded")
	}
}

func TestServerRejectsGarbageFrames(t *testing.T) {
	fixture(t)
	tr := transport.NewInproc()
	node := newNode(t, fxTDNIdent)
	s := NewServer(node)
	l, _ := tr.Listen("garbage-tdn")
	s.Serve(l)
	defer s.Close()
	conn, err := tr.Dial("garbage-tdn")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, frame := range [][]byte{{}, {99}, {opCreate, 1, 2, 3}} {
		if err := conn.Send(frame); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		status, _, _, err := unmarshalResponse(resp)
		if err != nil {
			t.Fatal(err)
		}
		if status == statusOK {
			t.Fatalf("garbage frame %v got OK", frame)
		}
	}
}

func TestDurableStorage(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	n1 := newNode(t, fxTDNIdent)
	if _, err := n1.EnableStorage(dir); err != nil {
		t.Fatal(err)
	}
	if n1.StorageDir() != dir {
		t.Fatal("storage dir not recorded")
	}
	req := signedCreateRequest(t, fxOwner, false, []string{"tracker-1"}, time.Hour)
	ad, err := n1.CreateTopic(req)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh node over the same directory restores the advertisement.
	n2 := newNode(t, fxTDNIdent2)
	restored, err := n2.EnableStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored %d advertisements", restored)
	}
	got, ok := n2.Lookup(ad.TopicID)
	if !ok || got.TopicID != ad.TopicID {
		t.Fatal("restored advertisement not served")
	}
	// Discovery restrictions survive the round trip.
	if _, err := n2.Discover(topic.LivenessQuery("traced-svc"), "outsider", fxOutsider.Credential.Cert); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restrictions lost on restore: %v", err)
	}
	// Sweep removes the file; the next restore finds nothing.
	now := time.Now()
	n2.SetTimeFunc(func() time.Time { return now.Add(2 * time.Hour) })
	if pruned := n2.Sweep(); pruned != 1 {
		t.Fatalf("Sweep pruned %d", pruned)
	}
	n3 := newNode(t, fxTDNIdent)
	if restored, _ := n3.EnableStorage(dir); restored != 0 {
		t.Fatalf("expired advertisement restored: %d", restored)
	}
}

func TestStorageSkipsCorruptFiles(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk.ad"), []byte("not an advertisement"), 0o644); err != nil {
		t.Fatal(err)
	}
	n := newNode(t, fxTDNIdent)
	restored, err := n.EnableStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Fatalf("restored %d from corrupt store", restored)
	}
	// The corrupt file was quarantined.
	if _, err := os.Stat(filepath.Join(dir, "junk.ad")); !os.IsNotExist(err) {
		t.Fatal("corrupt file not removed")
	}
}

func TestPrefixDiscovery(t *testing.T) {
	fixture(t)
	node := newNode(t, fxTDNIdent)
	for _, owner := range []*credential.Identity{fxOwner, fxTracker} {
		req := signedCreateRequest(t, owner, true, nil, time.Hour)
		if _, err := node.CreateTopic(req); err != nil {
			t.Fatal(err)
		}
	}
	// Prefix query finds both availability topics.
	ads, err := node.Discover("Availability/Traces/*", "outsider", fxOutsider.Credential.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if len(ads) != 2 {
		t.Fatalf("prefix discovery found %d", len(ads))
	}
	// Restrictions still apply per advertisement.
	restricted := signedCreateRequest(t, fxTDNIdent2, false, []string{"friend-only"}, time.Hour)
	// fxTDNIdent2 is an identity usable as an owner here.
	if _, err := node.CreateTopic(restricted); err != nil {
		t.Fatal(err)
	}
	ads, err = node.Discover("Availability/Traces/*", "outsider", fxOutsider.Credential.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if len(ads) != 2 {
		t.Fatalf("restricted topic leaked via prefix discovery: %d", len(ads))
	}
	// Non-matching prefix reads as not-found.
	if _, err := node.Discover("Nothing/Here/*", "outsider", fxOutsider.Credential.Cert); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty prefix discovery: %v", err)
	}
}
