package tdn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"entitytrace/internal/ident"
	"entitytrace/internal/transport"
)

// RPC op codes.
const (
	opCreate uint8 = iota + 1
	opDiscover
	opReplicate
	opLookup
)

// RPC status codes.
const (
	statusOK uint8 = iota
	statusNotFound
	statusBadRequest
	statusError
)

// Server exposes a Node over a transport.
type Server struct {
	node *Node
	wg   sync.WaitGroup
	mu   sync.Mutex
	ls   []transport.Listener
	done bool
}

// NewServer wraps a node.
func NewServer(node *Node) *Server { return &Server{node: node} }

// Serve accepts RPC connections on l until the listener closes.
func (s *Server) Serve(l transport.Listener) {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		l.Close()
		return
	}
	s.ls = append(s.ls, l)
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
}

// Close stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	ls := s.ls
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	s.wg.Wait()
}

// handle serves requests on one connection until it closes.
func (s *Server) handle(conn transport.Conn) {
	defer conn.Close()
	for {
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		resp := s.dispatch(frame)
		if err := conn.Send(resp); err != nil {
			return
		}
	}
}

// dispatch decodes one request frame and produces the response frame.
func (s *Server) dispatch(frame []byte) []byte {
	if len(frame) < 1 {
		return marshalResponse(statusBadRequest, "empty frame", nil)
	}
	op, body := frame[0], frame[1:]
	switch op {
	case opCreate:
		req, err := unmarshalCreateRequest(body)
		if err != nil {
			return marshalResponse(statusBadRequest, err.Error(), nil)
		}
		ad, err := s.node.CreateTopic(req)
		if err != nil {
			return marshalResponse(statusFor(err), err.Error(), nil)
		}
		return marshalResponse(statusOK, "", [][]byte{ad.Marshal()})
	case opDiscover:
		query, requester, cert, err := unmarshalDiscoverRequest(body)
		if err != nil {
			return marshalResponse(statusBadRequest, err.Error(), nil)
		}
		ads, err := s.node.Discover(query, requester, cert)
		if err != nil {
			return marshalResponse(statusFor(err), err.Error(), nil)
		}
		wire := make([][]byte, len(ads))
		for i, ad := range ads {
			wire[i] = ad.Marshal()
		}
		return marshalResponse(statusOK, "", wire)
	case opReplicate:
		ad, err := UnmarshalAdvertisement(body)
		if err != nil {
			return marshalResponse(statusBadRequest, err.Error(), nil)
		}
		if err := s.node.Replicate(ad); err != nil {
			return marshalResponse(statusError, err.Error(), nil)
		}
		return marshalResponse(statusOK, "", nil)
	case opLookup:
		if len(body) != 16 {
			return marshalResponse(statusBadRequest, "lookup wants 16 bytes", nil)
		}
		var id ident.UUID
		copy(id[:], body)
		ad, ok := s.node.Lookup(id)
		if !ok {
			return marshalResponse(statusNotFound, "unknown topic", nil)
		}
		return marshalResponse(statusOK, "", [][]byte{ad.Marshal()})
	default:
		return marshalResponse(statusBadRequest, fmt.Sprintf("unknown op %d", op), nil)
	}
}

func statusFor(err error) uint8 {
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrUnauthorizedDiscovery):
		// Unauthorized discovery is reported as not-found (§3.1: ignored).
		return statusNotFound
	case errors.Is(err, ErrBadRequest):
		return statusBadRequest
	default:
		return statusError
	}
}

// --- wire helpers -------------------------------------------------------

func marshalCreateRequest(req *CreateRequest) []byte {
	var buf []byte
	buf = append(buf, opCreate)
	buf = appendBytes(buf, []byte(req.Owner))
	buf = appendBytes(buf, req.OwnerCert)
	buf = appendBytes(buf, []byte(req.Descriptor))
	if req.AllowAny {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendU32(buf, uint32(len(req.Allowed)))
	for _, a := range req.Allowed {
		buf = appendBytes(buf, []byte(a))
	}
	buf = appendU64(buf, uint64(req.Lifetime))
	buf = append(buf, req.RequestID[:]...)
	buf = appendBytes(buf, req.Signature)
	return buf
}

func unmarshalCreateRequest(b []byte) (*CreateRequest, error) {
	c := &cursor{b: b}
	req := &CreateRequest{}
	req.Owner = ident.EntityID(c.bytes())
	req.OwnerCert = c.bytes()
	req.Descriptor = string(c.bytes())
	req.AllowAny = c.u8() == 1
	n := c.u32()
	if c.err == nil && n > 1<<16 {
		return nil, fmt.Errorf("%w: too many allowed entries", ErrBadRequest)
	}
	for i := uint32(0); i < n && c.err == nil; i++ {
		req.Allowed = append(req.Allowed, string(c.bytes()))
	}
	req.Lifetime = time.Duration(c.u64())
	copy(req.RequestID[:], c.take(16))
	req.Signature = c.bytes()
	if c.err != nil || c.off != len(b) {
		return nil, fmt.Errorf("%w: malformed create request", ErrBadRequest)
	}
	return req, nil
}

func marshalDiscoverRequest(query string, requester ident.EntityID, cert []byte) []byte {
	var buf []byte
	buf = append(buf, opDiscover)
	buf = appendBytes(buf, []byte(query))
	buf = appendBytes(buf, []byte(requester))
	buf = appendBytes(buf, cert)
	return buf
}

func unmarshalDiscoverRequest(b []byte) (query string, requester ident.EntityID, cert []byte, err error) {
	c := &cursor{b: b}
	query = string(c.bytes())
	requester = ident.EntityID(c.bytes())
	cert = c.bytes()
	if c.err != nil || c.off != len(b) {
		return "", "", nil, fmt.Errorf("%w: malformed discover request", ErrBadRequest)
	}
	return query, requester, cert, nil
}

func marshalResponse(status uint8, detail string, ads [][]byte) []byte {
	var buf []byte
	buf = append(buf, status)
	buf = appendBytes(buf, []byte(detail))
	buf = appendU32(buf, uint32(len(ads)))
	for _, ad := range ads {
		buf = appendBytes(buf, ad)
	}
	return buf
}

func unmarshalResponse(b []byte) (status uint8, detail string, ads []*Advertisement, err error) {
	c := &cursor{b: b}
	status = c.u8()
	detail = string(c.bytes())
	n := c.u32()
	if c.err == nil && n > 1<<16 {
		return 0, "", nil, errors.New("tdn: too many advertisements in response")
	}
	for i := uint32(0); i < n && c.err == nil; i++ {
		raw := c.bytes()
		if c.err != nil {
			break
		}
		ad, aerr := UnmarshalAdvertisement(raw)
		if aerr != nil {
			return 0, "", nil, aerr
		}
		ads = append(ads, ad)
	}
	if c.err != nil || c.off != len(b) {
		return 0, "", nil, errors.New("tdn: malformed response")
	}
	return status, detail, ads, nil
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// --- client -------------------------------------------------------------

// Client talks to one or more TDN servers, failing over between them:
// "since a given topic advertisement will be stored at multiple TDN
// nodes, this scheme sustains the loss of TDN nodes" (§2.2).
type Client struct {
	tr    transport.Transport
	addrs []string
}

// NewClient creates a client with an ordered list of TDN addresses.
func NewClient(tr transport.Transport, addrs ...string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("tdn: client needs at least one address")
	}
	return &Client{tr: tr, addrs: addrs}, nil
}

// call tries each TDN in turn until one answers.
func (c *Client) call(frame []byte) ([]byte, error) {
	var lastErr error
	for _, addr := range c.addrs {
		conn, err := c.tr.Dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		err = conn.Send(frame)
		if err == nil {
			var resp []byte
			resp, err = conn.Recv()
			if err == nil {
				conn.Close()
				return resp, nil
			}
		}
		conn.Close()
		lastErr = err
	}
	return nil, fmt.Errorf("tdn: all TDNs unreachable: %w", lastErr)
}

// CreateTopic sends a creation request, returning the signed
// advertisement.
func (c *Client) CreateTopic(req *CreateRequest) (*Advertisement, error) {
	resp, err := c.call(marshalCreateRequest(req))
	if err != nil {
		return nil, err
	}
	status, detail, ads, err := unmarshalResponse(resp)
	if err != nil {
		return nil, err
	}
	if status != statusOK || len(ads) != 1 {
		return nil, fmt.Errorf("tdn: create failed: %s", detail)
	}
	return ads[0], nil
}

// Discover runs a discovery query with the requester's credential.
func (c *Client) Discover(query string, requester ident.EntityID, cert []byte) ([]*Advertisement, error) {
	resp, err := c.call(marshalDiscoverRequest(query, requester, cert))
	if err != nil {
		return nil, err
	}
	status, detail, ads, err := unmarshalResponse(resp)
	if err != nil {
		return nil, err
	}
	switch status {
	case statusOK:
		return ads, nil
	case statusNotFound:
		return nil, ErrNotFound
	default:
		return nil, fmt.Errorf("tdn: discover failed: %s", detail)
	}
}

// Lookup resolves a topic UUID to its advertisement.
func (c *Client) Lookup(id ident.UUID) (*Advertisement, error) {
	frame := append([]byte{opLookup}, id[:]...)
	resp, err := c.call(frame)
	if err != nil {
		return nil, err
	}
	status, detail, ads, err := unmarshalResponse(resp)
	if err != nil {
		return nil, err
	}
	if status == statusNotFound {
		return nil, ErrNotFound
	}
	if status != statusOK || len(ads) != 1 {
		return nil, fmt.Errorf("tdn: lookup failed: %s", detail)
	}
	return ads[0], nil
}

// RemoteReplicator replicates advertisements to a TDN over the network;
// wire two server-backed nodes together with node.AddPeer.
type RemoteReplicator struct {
	tr   transport.Transport
	addr string
}

// NewRemoteReplicator targets the TDN server at addr.
func NewRemoteReplicator(tr transport.Transport, addr string) *RemoteReplicator {
	return &RemoteReplicator{tr: tr, addr: addr}
}

// Replicate implements Replicator.
func (r *RemoteReplicator) Replicate(ad *Advertisement) error {
	conn, err := r.tr.Dial(r.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(append([]byte{opReplicate}, ad.Marshal()...)); err != nil {
		return err
	}
	resp, err := conn.Recv()
	if err != nil {
		return err
	}
	status, detail, _, err := unmarshalResponse(resp)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("tdn: replicate failed: %s", detail)
	}
	return nil
}
