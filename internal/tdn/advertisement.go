// Package tdn implements the Topic Discovery Nodes of §2.2 and §3.1:
// specialized nodes that create trace topics, store cryptographically
// signed topic advertisements, enforce discovery restrictions, honour
// topic lifetimes, and replicate advertisements across TDNs so the loss
// of individual nodes does not disrupt discovery.
package tdn

import (
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"entitytrace/internal/credential"
	"entitytrace/internal/ident"
	"entitytrace/internal/secure"
)

// Errors surfaced by advertisement handling.
var (
	// ErrAdMalformed reports an undecodable advertisement.
	ErrAdMalformed = errors.New("tdn: malformed advertisement")
	// ErrAdExpired reports an advertisement past its lifetime.
	ErrAdExpired = errors.New("tdn: advertisement expired")
	// ErrAdSignature reports a bad TDN signature.
	ErrAdSignature = errors.New("tdn: advertisement signature invalid")
)

const adVersion = 1

// Advertisement is the cryptographically signed record a TDN creates for
// a topic (§3.1): "a cryptographically signed topic advertisement that
// includes the newly created topic, along with the credentials,
// descriptors, discovery restrictions and lifetime. This advertisement
// establishes the ownership of the topic."
type Advertisement struct {
	// TopicID is the 128-bit UUID generated at the TDN ("so that no
	// entity is able to claim some other entity's topic as its own").
	TopicID ident.UUID
	// Owner is the entity the topic belongs to.
	Owner ident.EntityID
	// OwnerCert is the owner's DER-encoded X.509 credential.
	OwnerCert []byte
	// Descriptor is the discovery descriptor, e.g.
	// "Availability/Traces/<Entity-ID>".
	Descriptor string
	// AllowAny permits discovery by any credentialed entity.
	AllowAny bool
	// Allowed lists entity IDs authorized to discover the topic when
	// AllowAny is false (the owner is always allowed).
	Allowed []string
	// CreatedAt and ExpiresAt bound the topic lifetime (Unix nanos).
	CreatedAt int64
	ExpiresAt int64
	// TDNName names the creating TDN; TDNCert is its credential so any
	// node can verify the signature chain.
	TDNName string
	TDNCert []byte
	// Signature is the TDN's signature over all fields above.
	Signature []byte
}

// signingBytes serializes the signed portion.
func (a *Advertisement) signingBytes() []byte {
	var buf []byte
	buf = append(buf, adVersion)
	buf = append(buf, a.TopicID[:]...)
	buf = appendBytes(buf, []byte(a.Owner))
	buf = appendBytes(buf, a.OwnerCert)
	buf = appendBytes(buf, []byte(a.Descriptor))
	if a.AllowAny {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(a.Allowed)))
	for _, e := range a.Allowed {
		buf = appendBytes(buf, []byte(e))
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.CreatedAt))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.ExpiresAt))
	buf = appendBytes(buf, []byte(a.TDNName))
	buf = appendBytes(buf, a.TDNCert)
	return buf
}

// Marshal serializes the advertisement including the signature.
func (a *Advertisement) Marshal() []byte {
	return appendBytes(a.signingBytes(), a.Signature)
}

// UnmarshalAdvertisement parses a wire-format advertisement.
func UnmarshalAdvertisement(b []byte) (*Advertisement, error) {
	r := &cursor{b: b}
	if v := r.u8(); r.err == nil && v != adVersion {
		return nil, fmt.Errorf("%w: version %d", ErrAdMalformed, v)
	}
	a := &Advertisement{}
	copy(a.TopicID[:], r.take(16))
	a.Owner = ident.EntityID(r.bytes())
	a.OwnerCert = []byte(r.bytes())
	a.Descriptor = string(r.bytes())
	a.AllowAny = r.u8() == 1
	n := r.u32()
	if r.err == nil && n > 1<<16 {
		return nil, fmt.Errorf("%w: %d allowed entries", ErrAdMalformed, n)
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		a.Allowed = append(a.Allowed, string(r.bytes()))
	}
	a.CreatedAt = int64(r.u64())
	a.ExpiresAt = int64(r.u64())
	a.TDNName = string(r.bytes())
	a.TDNCert = []byte(r.bytes())
	a.Signature = []byte(r.bytes())
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAdMalformed, r.err)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrAdMalformed)
	}
	return a, nil
}

// Verify checks the advertisement's TDN signature chain against the
// trusted CA and its lifetime against now. On success it returns the
// owner's public key (extracted from the embedded owner credential), so
// relying parties — brokers verifying authorization tokens (§4.3) — can
// resolve the topic owner's key from the advertisement alone.
func (a *Advertisement) Verify(v *credential.Verifier, now time.Time) (*rsa.PublicKey, error) {
	if now.UnixNano() > a.ExpiresAt {
		return nil, fmt.Errorf("%w: expired %v", ErrAdExpired, time.Unix(0, a.ExpiresAt))
	}
	tdnCred := &credential.Credential{Entity: ident.EntityID(a.TDNName), Cert: a.TDNCert}
	tdnPub, err := v.Verify(tdnCred)
	if err != nil {
		return nil, fmt.Errorf("%w: TDN credential: %v", ErrAdSignature, err)
	}
	if err := secure.Verify(tdnPub, secure.SHA256, a.signingBytes(), a.Signature); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAdSignature, err)
	}
	ownerCred := &credential.Credential{Entity: a.Owner, Cert: a.OwnerCert}
	ownerPub, err := v.Verify(ownerCred)
	if err != nil {
		return nil, fmt.Errorf("%w: owner credential: %v", ErrAdSignature, err)
	}
	return ownerPub, nil
}

// MayDiscover reports whether the given entity is authorized by the
// advertisement's discovery restrictions.
func (a *Advertisement) MayDiscover(e ident.EntityID) bool {
	if e == a.Owner {
		return true
	}
	if a.AllowAny {
		return true
	}
	for _, allowed := range a.Allowed {
		if allowed == string(e) {
			return true
		}
	}
	return false
}

// cursor is a minimal wire reader shared by the tdn codecs.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) {
		c.err = errors.New("truncated")
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *cursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (c *cursor) bytes() []byte {
	n := c.u32()
	if c.err != nil {
		return nil
	}
	if n > 16<<20 {
		c.err = errors.New("field too large")
		return nil
	}
	b := c.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}
