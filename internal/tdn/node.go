package tdn

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"entitytrace/internal/credential"
	"entitytrace/internal/ident"
	"entitytrace/internal/obs"
	"entitytrace/internal/secure"
	"entitytrace/internal/topic"
)

// TDN activity counters across all nodes in the process (§3.1).
var (
	mTopicsCreated = obs.Default.Counter("tdn_topics_created_total")
	mReplications  = obs.Default.Counter("tdn_replications_total")
	mDiscServed    = obs.Default.Counter(obs.WithLabel("tdn_discoveries_total", "outcome", "served"))
	mDiscDenied    = obs.Default.Counter(obs.WithLabel("tdn_discoveries_total", "outcome", "not_found"))
	mSwept         = obs.Default.Counter("tdn_advertisements_swept_total")
)

// Node errors.
var (
	// ErrUnauthorizedDiscovery reports a discovery attempt by an entity
	// outside the topic's restrictions. Per §3.1, such requests are
	// simply "ignored by the TDN" — the RPC layer translates this into a
	// not-found response so unauthorized requesters cannot distinguish a
	// restricted topic from a nonexistent one.
	ErrUnauthorizedDiscovery = errors.New("tdn: discovery not authorized")
	// ErrBadRequest reports an invalid creation or discovery request.
	ErrBadRequest = errors.New("tdn: bad request")
	// ErrNotFound reports no matching advertisements.
	ErrNotFound = errors.New("tdn: no matching topic")
)

// DefaultLifetime bounds topics whose creation request does not specify
// a lifetime.
const DefaultLifetime = 24 * time.Hour

// CreateRequest asks a TDN to create a topic (§3.1): credentials, a
// descriptor, discovery restrictions and a lifetime, signed by the
// owner to prove key possession.
type CreateRequest struct {
	Owner      ident.EntityID
	OwnerCert  []byte
	Descriptor string
	AllowAny   bool
	Allowed    []string
	Lifetime   time.Duration
	RequestID  ident.RequestID
	Signature  []byte // owner signature over the fields above
}

func (cr *CreateRequest) signingBytes() []byte {
	var buf []byte
	buf = appendBytes(buf, []byte(cr.Owner))
	buf = appendBytes(buf, cr.OwnerCert)
	buf = appendBytes(buf, []byte(cr.Descriptor))
	if cr.AllowAny {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, a := range cr.Allowed {
		buf = appendBytes(buf, []byte(a))
	}
	buf = append(buf, cr.RequestID[:]...)
	var lt [8]byte
	for i := 0; i < 8; i++ {
		lt[i] = byte(uint64(cr.Lifetime) >> (56 - 8*i))
	}
	return append(buf, lt[:]...)
}

// SignCreateRequest signs the request with the owner's signer.
func (cr *CreateRequest) Sign(s *secure.Signer) error {
	sig, err := s.Sign(cr.signingBytes())
	if err != nil {
		return err
	}
	cr.Signature = sig
	return nil
}

// Node is one Topic Discovery Node. It holds advertisements in memory,
// replicates new ones to peers, and prunes expired topics. Safe for
// concurrent use.
type Node struct {
	name     string
	identity *credential.Identity
	signer   *secure.Signer
	verifier *credential.Verifier
	now      func() time.Time
	log      *obs.Logger

	mu         sync.RWMutex
	byID       map[ident.UUID]*Advertisement
	peers      []Replicator
	storageDir string
	closed     bool
}

// Replicator receives advertisements created at other TDNs.
type Replicator interface {
	Replicate(ad *Advertisement) error
}

// NewNode creates a TDN with the given identity (issued by the system
// CA) and a verifier trusting that CA.
func NewNode(id *credential.Identity, verifier *credential.Verifier) (*Node, error) {
	if id == nil || id.Private == nil {
		return nil, errors.New("tdn: node needs an identity with a private key")
	}
	signer, err := secure.NewSigner(id.Private, secure.SHA256)
	if err != nil {
		return nil, err
	}
	return &Node{
		name:     string(id.Credential.Entity),
		identity: id,
		signer:   signer,
		verifier: verifier,
		now:      time.Now,
		byID:     make(map[ident.UUID]*Advertisement),
	}, nil
}

// SetTimeFunc overrides the node clock, for lifetime tests.
func (n *Node) SetTimeFunc(f func() time.Time) { n.now = f }

// SetLogger installs a structured logger for creation, replication and
// discovery diagnostics; nil (the default) silences them.
func (n *Node) SetLogger(l *obs.Logger) { n.log = l.With("tdn", n.name) }

// Name returns the TDN's name.
func (n *Node) Name() string { return n.name }

// AddPeer registers a replication target.
func (n *Node) AddPeer(p Replicator) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = append(n.peers, p)
}

// CreateTopic validates a creation request, generates the topic UUID,
// signs the advertisement, stores it, replicates it to peer TDNs and
// returns it (§3.1).
func (n *Node) CreateTopic(req *CreateRequest) (*Advertisement, error) {
	if err := req.Owner.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if strings.TrimSpace(req.Descriptor) == "" {
		return nil, fmt.Errorf("%w: empty descriptor", ErrBadRequest)
	}
	// Verify the owner credential chains to the CA and names the owner.
	cred := &credential.Credential{Entity: req.Owner, Cert: req.OwnerCert}
	ownerPub, err := n.verifier.Verify(cred)
	if err != nil {
		return nil, fmt.Errorf("%w: credential: %v", ErrBadRequest, err)
	}
	// Verify proof of key possession.
	if err := secure.Verify(ownerPub, secure.SHA1, req.signingBytes(), req.Signature); err != nil {
		if err2 := secure.Verify(ownerPub, secure.SHA256, req.signingBytes(), req.Signature); err2 != nil {
			return nil, fmt.Errorf("%w: request signature: %v", ErrBadRequest, err)
		}
	}
	lifetime := req.Lifetime
	if lifetime <= 0 {
		lifetime = DefaultLifetime
	}
	now := n.now()
	ad := &Advertisement{
		TopicID:    ident.NewUUID(), // generated at the TDN, not the entity
		Owner:      req.Owner,
		OwnerCert:  req.OwnerCert,
		Descriptor: req.Descriptor,
		AllowAny:   req.AllowAny,
		Allowed:    append([]string(nil), req.Allowed...),
		CreatedAt:  now.UnixNano(),
		ExpiresAt:  now.Add(lifetime).UnixNano(),
		TDNName:    n.name,
		TDNCert:    n.identity.Credential.Cert,
	}
	sig, err := n.signer.Sign(ad.signingBytes())
	if err != nil {
		return nil, err
	}
	ad.Signature = sig

	n.mu.Lock()
	n.byID[ad.TopicID] = ad
	peers := append([]Replicator(nil), n.peers...)
	n.mu.Unlock()
	n.persist(ad)
	mTopicsCreated.Inc()
	n.log.Info("topic created", "topic", ad.TopicID, "owner", ad.Owner,
		"descriptor", ad.Descriptor, "peers", len(peers))
	// Best-effort replication: the scheme "sustains the loss of TDN
	// nodes" because each advertisement is stored at multiple TDNs.
	for _, p := range peers {
		_ = p.Replicate(ad)
	}
	return ad, nil
}

// Replicate stores an advertisement created at another TDN after
// verifying its signature chain.
func (n *Node) Replicate(ad *Advertisement) error {
	if _, err := ad.Verify(n.verifier, n.now()); err != nil {
		n.log.Warn("replication rejected", "topic", ad.TopicID, "err", err)
		return err
	}
	n.mu.Lock()
	if _, exists := n.byID[ad.TopicID]; exists {
		n.mu.Unlock()
		return nil
	}
	n.byID[ad.TopicID] = ad
	n.mu.Unlock()
	n.persist(ad)
	mReplications.Inc()
	n.log.Debug("advertisement replicated", "topic", ad.TopicID, "from", ad.TDNName)
	return nil
}

// Discover evaluates a discovery query for a credentialed requester.
// Queries take the /Liveness/<Entity-ID> form (§3.4), match a descriptor
// exactly, or — supporting the topic discovery scheme's "variety of
// query formats" (§2.2) — match a descriptor prefix when they end in
// "/*" (e.g. "Availability/Traces/*"). Per-advertisement discovery
// restrictions apply to every match. Unauthorized or unmatched queries
// return ErrNotFound indistinguishably (§3.1: ignored).
func (n *Node) Discover(query string, requester ident.EntityID, requesterCert []byte) ([]*Advertisement, error) {
	cred := &credential.Credential{Entity: requester, Cert: requesterCert}
	if _, err := n.verifier.Verify(cred); err != nil {
		return nil, fmt.Errorf("%w: credential: %v", ErrBadRequest, err)
	}
	descriptor := query
	if entity, ok := topic.EntityFromLivenessQuery(query); ok {
		descriptor = string(topic.AvailabilityDescriptor(entity))
	}
	prefix := ""
	if strings.HasSuffix(descriptor, "/*") {
		prefix = strings.TrimSuffix(descriptor, "*")
	}
	now := n.now()
	var out []*Advertisement
	n.mu.RLock()
	for _, ad := range n.byID {
		if prefix != "" {
			if !strings.HasPrefix(ad.Descriptor, prefix) {
				continue
			}
		} else if ad.Descriptor != descriptor {
			continue
		}
		if now.UnixNano() > ad.ExpiresAt {
			continue
		}
		if !ad.MayDiscover(requester) {
			continue
		}
		out = append(out, ad)
	}
	n.mu.RUnlock()
	if len(out) == 0 {
		// Unauthorized and unmatched queries are indistinguishable by
		// design, so the counter cannot separate them either.
		mDiscDenied.Inc()
		n.log.Debug("discovery empty", "query", query, "requester", requester)
		return nil, ErrNotFound
	}
	mDiscServed.Inc()
	n.log.Debug("discovery served", "query", query, "requester", requester, "matches", len(out))
	return out, nil
}

// Lookup fetches an advertisement by topic UUID regardless of discovery
// restrictions; brokers use it to resolve topic owners when validating
// authorization tokens. Expired advertisements are not returned.
func (n *Node) Lookup(id ident.UUID) (*Advertisement, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ad, ok := n.byID[id]
	if !ok || n.now().UnixNano() > ad.ExpiresAt {
		return nil, false
	}
	return ad, true
}

// Sweep removes expired advertisements, returning how many were pruned.
func (n *Node) Sweep() int {
	now := n.now().UnixNano()
	n.mu.Lock()
	var expired []ident.UUID
	for id, ad := range n.byID {
		if now > ad.ExpiresAt {
			delete(n.byID, id)
			expired = append(expired, id)
		}
	}
	n.mu.Unlock()
	for _, id := range expired {
		n.unpersist(id.String())
	}
	if len(expired) > 0 {
		mSwept.Add(uint64(len(expired)))
		n.log.Info("swept expired advertisements", "count", len(expired))
	}
	return len(expired)
}

// Size reports stored advertisements.
func (n *Node) Size() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.byID)
}
