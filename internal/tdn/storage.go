package tdn

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Durable storage for TDN nodes: every advertisement is persisted as one
// file named by its topic UUID. Advertisements are TDN-signed and
// self-verifying, so reloads re-check the signature chain before serving
// anything; a corrupted or tampered file is skipped (and reported).
//
// This extends the paper's availability story: replication (§2.2)
// protects against losing TDN *nodes*; durability protects a node's own
// store across restarts.

const adFileSuffix = ".ad"

// EnableStorage makes the node persist advertisements under dir and
// loads whatever verifiable advertisements are already there. It returns
// how many advertisements were restored.
func (n *Node) EnableStorage(dir string) (restored int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("tdn: creating storage dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("tdn: reading storage dir: %w", err)
	}
	now := n.now()
	n.mu.Lock()
	n.storageDir = dir
	n.mu.Unlock()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), adFileSuffix) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		ad, err := UnmarshalAdvertisement(raw)
		if err != nil {
			// Corrupt file: quarantine by deletion; the advertisement is
			// replicated elsewhere (§2.2).
			_ = os.Remove(path)
			continue
		}
		if _, err := ad.Verify(n.verifier, now); err != nil {
			// Expired or tampered.
			_ = os.Remove(path)
			continue
		}
		n.mu.Lock()
		if _, dup := n.byID[ad.TopicID]; !dup {
			n.byID[ad.TopicID] = ad
			restored++
		}
		n.mu.Unlock()
	}
	return restored, nil
}

// persist writes one advertisement if storage is enabled; callers do not
// hold n.mu.
func (n *Node) persist(ad *Advertisement) {
	n.mu.RLock()
	dir := n.storageDir
	n.mu.RUnlock()
	if dir == "" {
		return
	}
	path := filepath.Join(dir, ad.TopicID.String()+adFileSuffix)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, ad.Marshal(), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// unpersist removes an advertisement's file (expiry sweep).
func (n *Node) unpersist(topicID string) {
	n.mu.RLock()
	dir := n.storageDir
	n.mu.RUnlock()
	if dir == "" {
		return
	}
	_ = os.Remove(filepath.Join(dir, topicID+adFileSuffix))
}

// StorageDir reports the configured storage directory ("" when memory
// only).
func (n *Node) StorageDir() string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.storageDir
}
