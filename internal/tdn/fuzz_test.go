package tdn

import (
	"sync"
	"testing"
	"time"

	"entitytrace/internal/credential"
	"entitytrace/internal/secure"
)

// FuzzUnmarshalAdvertisement checks the advertisement parser against
// arbitrary bytes: no panics, and accepted values round trip.
func FuzzUnmarshalAdvertisement(f *testing.F) {
	ad := &Advertisement{
		Owner:      "fuzz-owner",
		OwnerCert:  []byte{1, 2, 3},
		Descriptor: "Availability/Traces/fuzz-owner",
		Allowed:    []string{"a", "b"},
		CreatedAt:  time.Now().UnixNano(),
		ExpiresAt:  time.Now().Add(time.Hour).UnixNano(),
		TDNName:    "tdn",
		TDNCert:    []byte{4, 5},
		Signature:  []byte{6},
	}
	f.Add(ad.Marshal())
	f.Add([]byte{})
	f.Add([]byte{adVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := UnmarshalAdvertisement(data)
		if err != nil {
			return
		}
		back, err := UnmarshalAdvertisement(parsed.Marshal())
		if err != nil {
			t.Fatalf("accepted advertisement does not round trip: %v", err)
		}
		if back.TopicID != parsed.TopicID || back.Owner != parsed.Owner {
			t.Fatal("round trip changed advertisement identity")
		}
	})
}

// FuzzRPCDispatch throws arbitrary frames at the TDN RPC dispatcher.
func FuzzRPCDispatch(f *testing.F) {
	// Build a throwaway node; its verifier rejects everything signed,
	// which is fine — the dispatcher just must not panic.
	f.Add([]byte{})
	f.Add([]byte{opCreate})
	f.Add([]byte{opDiscover, 0, 0, 0, 1, 'x'})
	f.Add([]byte{opReplicate, 1, 2, 3})
	f.Add([]byte{opLookup, 1})
	f.Add(append([]byte{opLookup}, make([]byte, 16)...))
	f.Fuzz(func(t *testing.T, frame []byte) {
		srv := fuzzServer(t)
		resp := srv.dispatch(frame)
		if len(resp) == 0 {
			t.Fatal("dispatcher returned empty response")
		}
	})
}

var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzErr  error
)

func fuzzServer(t *testing.T) *Server {
	t.Helper()
	fuzzOnce.Do(func() {
		ca, err := credential.NewAuthority("fuzz-ca", credential.WithKeyBits(secure.PaperRSABits))
		if err != nil {
			fuzzErr = err
			return
		}
		verifier, err := credential.NewVerifier(ca.CACertificate())
		if err != nil {
			fuzzErr = err
			return
		}
		id, err := ca.Issue("fuzz-tdn")
		if err != nil {
			fuzzErr = err
			return
		}
		node, err := NewNode(id, verifier)
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzSrv = NewServer(node)
	})
	if fuzzErr != nil {
		t.Fatal(fuzzErr)
	}
	return fuzzSrv
}
