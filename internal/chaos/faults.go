package chaos

import (
	"math/rand"
	"sync"
	"time"
)

// Event describes one frame crossing a chaotic connection. Faults are
// evaluated on the receive path of the wrapped connection, so each frame
// generates exactly one event even when both endpoints of a link share
// the same injector-wrapped transport.
type Event struct {
	// Conn is the injector-assigned connection sequence number
	// (deterministic as long as connections are established in a
	// deterministic order).
	Conn uint64
	// Link is the listener-side address of the connection: the bound
	// address for accepted connections, the dialed address for dialed
	// ones. It names the logical link a fault targets.
	Link string
	// ToListener reports the frame's direction: true when it flows
	// dialer→listener (the event fires on the accepted side), false
	// when it flows listener→dialer (the event fires on the dialed
	// side). Asymmetric partitions match on this.
	ToListener bool
	// Now is the injector clock's current time.
	Now time.Time
	// Frame is the frame under consideration. Faults must not mutate it
	// in place; Verdict.Frame carries replacements.
	Frame []byte
}

// Verdict is a fault's decision about one frame. The zero value passes
// the frame through untouched.
type Verdict struct {
	// Drop discards the frame.
	Drop bool
	// Frame, when non-nil, replaces the frame bytes (corruption).
	Frame []byte
	// Copies delivers the frame 1+Copies times (duplication).
	Copies int
	// Delay postpones delivery (latency / bandwidth shaping).
	Delay time.Duration
	// Hold stashes the frame and releases it after the next frame on
	// the same connection delivers (reordering).
	Hold bool
}

// Fault inspects frame events and renders verdicts. Implementations are
// shared across all connections of an injector and must be safe for
// concurrent use; per-connection state should key on Event.Conn. The
// rng is the event connection's deterministic source — faults must draw
// randomness only from it so runs replay identically.
type Fault interface {
	Apply(ev *Event, rng *rand.Rand) Verdict
}

// FaultFunc adapts a function to Fault.
type FaultFunc func(ev *Event, rng *rand.Rand) Verdict

// Apply implements Fault.
func (f FaultFunc) Apply(ev *Event, rng *rand.Rand) Verdict { return f(ev, rng) }

// Matcher selects the frame events a fault applies to.
type Matcher func(*Event) bool

// OnLink matches both directions of connections dialed to or accepted
// at addr.
func OnLink(addr string) Matcher {
	return func(ev *Event) bool { return ev.Link == addr }
}

// Toward matches frames flowing dialer→listener on the link at addr:
// one half of an asymmetric partition.
func Toward(addr string) Matcher {
	return func(ev *Event) bool { return ev.Link == addr && ev.ToListener }
}

// From matches frames flowing listener→dialer on the link at addr: the
// other half of an asymmetric partition.
func From(addr string) Matcher {
	return func(ev *Event) bool { return ev.Link == addr && !ev.ToListener }
}

// When gates a fault behind a matcher; unmatched events pass through.
func When(m Matcher, f Fault) Fault {
	return FaultFunc(func(ev *Event, rng *rand.Rand) Verdict {
		if !m(ev) {
			return Verdict{}
		}
		return f.Apply(ev, rng)
	})
}

// Drop discards every matched frame: combined with Toward/From it forms
// asymmetric partitions, with OnLink a full partition.
func Drop() Fault {
	return FaultFunc(func(*Event, *rand.Rand) Verdict { return Verdict{Drop: true} })
}

// Loss drops frames with probability rate.
func Loss(rate float64) Fault {
	return FaultFunc(func(_ *Event, rng *rand.Rand) Verdict {
		return Verdict{Drop: rate > 0 && rng.Float64() < rate}
	})
}

// Duplicate delivers copies extra copies of a frame with probability
// prob. copies < 1 is treated as 1.
func Duplicate(prob float64, copies int) Fault {
	if copies < 1 {
		copies = 1
	}
	return FaultFunc(func(_ *Event, rng *rand.Rand) Verdict {
		if prob > 0 && rng.Float64() < prob {
			return Verdict{Copies: copies}
		}
		return Verdict{}
	})
}

// Reorder holds a frame back with probability prob, releasing it after
// the next frame on the same connection delivers: adjacent frames swap.
func Reorder(prob float64) Fault {
	return FaultFunc(func(_ *Event, rng *rand.Rand) Verdict {
		if prob > 0 && rng.Float64() < prob {
			return Verdict{Hold: true}
		}
		return Verdict{}
	})
}

// Corrupt flips 1..maxFlips random bytes of a frame with probability
// prob. maxFlips < 1 is treated as 1. Empty frames pass through.
func Corrupt(prob float64, maxFlips int) Fault {
	if maxFlips < 1 {
		maxFlips = 1
	}
	return FaultFunc(func(ev *Event, rng *rand.Rand) Verdict {
		if prob <= 0 || rng.Float64() >= prob || len(ev.Frame) == 0 {
			return Verdict{}
		}
		cp := append([]byte(nil), ev.Frame...)
		flips := 1 + rng.Intn(maxFlips)
		for i := 0; i < flips; i++ {
			cp[rng.Intn(len(cp))] ^= byte(1 + rng.Intn(255))
		}
		return Verdict{Frame: cp}
	})
}

// Latency delays every frame by d plus a uniform random [0, jitter)
// component.
func Latency(d, jitter time.Duration) Fault {
	return FaultFunc(func(_ *Event, rng *rand.Rand) Verdict {
		delay := d
		if jitter > 0 {
			delay += time.Duration(rng.Int63n(int64(jitter)))
		}
		return Verdict{Delay: delay}
	})
}

// Bandwidth caps each connection's delivery rate at bytesPerSec with a
// simple virtual-clock model: each frame occupies the link for
// len/rate, and frames arriving while the link is busy wait their turn.
func Bandwidth(bytesPerSec float64) Fault {
	b := &bandwidth{bps: bytesPerSec, freeAt: make(map[uint64]time.Time)}
	return b
}

type bandwidth struct {
	bps    float64
	mu     sync.Mutex
	freeAt map[uint64]time.Time // conn -> when the virtual link idles
}

func (b *bandwidth) Apply(ev *Event, _ *rand.Rand) Verdict {
	if b.bps <= 0 || len(ev.Frame) == 0 {
		return Verdict{}
	}
	cost := time.Duration(float64(len(ev.Frame)) / b.bps * float64(time.Second))
	b.mu.Lock()
	at := b.freeAt[ev.Conn]
	if at.Before(ev.Now) {
		at = ev.Now
	}
	delay := at.Sub(ev.Now) + cost
	b.freeAt[ev.Conn] = at.Add(cost)
	b.mu.Unlock()
	return Verdict{Delay: delay}
}
