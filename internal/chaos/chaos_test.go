package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"entitytrace/internal/clock"
	"entitytrace/internal/transport"
)

// pipe sets up a wrapped inproc listener at addr plus a dialed and an
// accepted connection through the injector.
func pipe(t *testing.T, inj *Injector, addr string) (client, server transport.Conn) {
	t.Helper()
	ln, err := inj.Listen(addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan transport.Conn, 1)
	errs := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errs <- err
			return
		}
		accepted <- c
	}()
	client, err = inj.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	select {
	case server = <-accepted:
	case err := <-errs:
		t.Fatalf("accept: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func newInjector(t *testing.T, seed int64, cfg Config) *Injector {
	t.Helper()
	cfg.Seed = seed
	inj, err := New(transport.NewInproc(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return inj
}

func TestSeedRequired(t *testing.T) {
	if _, err := New(transport.NewInproc(), Config{}); err == nil {
		t.Fatal("New accepted a zero seed")
	}
}

// TestDeterministicReplay is the acceptance-criteria test: two runs with
// the same seed produce the identical fault schedule (journal digest)
// and the identical delivered frame sequence; a different seed diverges.
func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) (delivered []string, digest uint64) {
		inj := newInjector(t, seed, Config{})
		inj.Set("loss", Loss(0.3))
		inj.Set("dup", Duplicate(0.3, 1))
		inj.Set("corrupt", Corrupt(0.2, 4))
		client, server := pipe(t, inj, fmt.Sprintf("replay-%d-%d", seed, len(delivered)))

		done := make(chan []string, 1)
		go func() {
			var got []string
			for {
				f, err := server.Recv()
				if err != nil {
					done <- got
					return
				}
				got = append(got, string(f))
			}
		}()
		for i := 0; i < 64; i++ {
			if err := client.Send([]byte(fmt.Sprintf("frame-%02d-payload", i))); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		// Inproc delivery is synchronous into the peer buffer; give the
		// reader a moment to drain, then close to stop it.
		time.Sleep(50 * time.Millisecond)
		client.Close()
		server.Close()
		select {
		case delivered = <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("reader did not finish")
		}
		return delivered, inj.JournalDigest()
	}

	gotA, digA := run(42)
	gotB, digB := run(42)
	if digA != digB {
		t.Fatalf("same seed produced different digests: %#x vs %#x", digA, digB)
	}
	if len(gotA) != len(gotB) {
		t.Fatalf("same seed delivered %d vs %d frames", len(gotA), len(gotB))
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("frame %d diverged: %q vs %q", i, gotA[i], gotB[i])
		}
	}
	if len(gotA) == 64 {
		t.Fatal("loss fault dropped nothing across 64 frames")
	}
	_, digC := run(43)
	if digC == digA {
		t.Fatalf("different seeds produced the same digest %#x", digA)
	}
}

func TestDuplicateDeliversCopies(t *testing.T) {
	inj := newInjector(t, 7, Config{})
	inj.Set("dup", Duplicate(1.0, 2))
	client, server := pipe(t, inj, "dup")
	if err := client.Send([]byte("hello")); err != nil {
		t.Fatalf("send: %v", err)
	}
	for i := 0; i < 3; i++ {
		f, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if string(f) != "hello" {
			t.Fatalf("recv %d: got %q", i, f)
		}
	}
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	inj := newInjector(t, 7, Config{})
	// Deterministic reorder: hold exactly the frames tagged 'A'.
	inj.Set("swap", FaultFunc(func(ev *Event, _ *rand.Rand) Verdict {
		return Verdict{Hold: len(ev.Frame) > 0 && ev.Frame[0] == 'A'}
	}))
	client, server := pipe(t, inj, "reorder")
	for _, m := range []string{"A-first", "B-second"} {
		if err := client.Send([]byte(m)); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	want := []string{"B-second", "A-first"}
	for i, w := range want {
		f, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if string(f) != w {
			t.Fatalf("recv %d: got %q want %q", i, f, w)
		}
	}
}

func TestCorruptMutatesWithoutPanic(t *testing.T) {
	inj := newInjector(t, 9, Config{})
	inj.Set("corrupt", Corrupt(1.0, 3))
	client, server := pipe(t, inj, "corrupt")
	payload := bytes.Repeat([]byte{0xAA}, 128)
	if err := client.Send(payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	f, err := server.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if len(f) != len(payload) {
		t.Fatalf("corruption changed length: %d", len(f))
	}
	if bytes.Equal(f, payload) {
		t.Fatal("frame not corrupted")
	}
}

func TestAsymmetricPartition(t *testing.T) {
	inj := newInjector(t, 11, Config{})
	inj.Set("partition", When(Toward("asym"), Drop()))
	client, server := pipe(t, inj, "asym")

	// listener→dialer still flows.
	if err := server.Send([]byte("down")); err != nil {
		t.Fatalf("server send: %v", err)
	}
	f, err := client.Recv()
	if err != nil || string(f) != "down" {
		t.Fatalf("client recv: %q %v", f, err)
	}

	// dialer→listener is silently dropped.
	if err := client.Send([]byte("up")); err != nil {
		t.Fatalf("client send: %v", err)
	}
	got := make(chan []byte, 1)
	go func() {
		if f, err := server.Recv(); err == nil {
			got <- f
		}
	}()
	select {
	case f := <-got:
		t.Fatalf("partitioned direction delivered %q", f)
	case <-time.After(100 * time.Millisecond):
	}

	// Healing the partition restores the direction.
	inj.Clear("partition")
	if err := client.Send([]byte("healed")); err != nil {
		t.Fatalf("client send: %v", err)
	}
	select {
	case f := <-got:
		if string(f) != "healed" {
			t.Fatalf("post-heal frame %q", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post-heal frame not delivered")
	}
}

func TestFlapClosesConnections(t *testing.T) {
	inj := newInjector(t, 13, Config{})
	client, server := pipe(t, inj, "flap")
	if n := inj.ConnCount(); n != 2 {
		t.Fatalf("conn count %d", n)
	}
	if n := inj.Flap(); n != 2 {
		t.Fatalf("flapped %d conns", n)
	}
	if _, err := client.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("client recv after flap: %v", err)
	}
	if _, err := server.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("server recv after flap: %v", err)
	}
	if n := inj.ConnCount(); n != 0 {
		t.Fatalf("conn count after flap %d", n)
	}
}

func TestTimelineOnFakeClock(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	inj := newInjector(t, 17, Config{Clock: fc})
	stop, done := inj.Play([]Step{
		{After: 10 * time.Millisecond, Name: "loss", Fault: Loss(0.5)},
		{After: 10 * time.Millisecond, Name: "loss"}, // clear
	})
	defer stop()

	waitActive := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if len(inj.Active()) == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("active faults never reached %d (now %v)", want, inj.Active())
	}

	waitTimers := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if fc.PendingTimers() >= want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("fake clock never saw %d pending timers", want)
	}

	waitTimers(1)
	fc.Advance(10 * time.Millisecond)
	waitActive(1)
	waitTimers(1)
	fc.Advance(10 * time.Millisecond)
	waitActive(0)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timeline never finished")
	}
}

func TestBandwidthDelaysLargeFrames(t *testing.T) {
	// 1 KiB/s: a 512-byte frame costs 500ms of virtual link time.
	b := Bandwidth(1024)
	now := time.Unix(100, 0)
	ev := &Event{Conn: 1, Now: now, Frame: make([]byte, 512)}
	v := b.Apply(ev, nil)
	if v.Delay != 500*time.Millisecond {
		t.Fatalf("first frame delay %v", v.Delay)
	}
	// A second frame at the same instant queues behind the first.
	v2 := b.Apply(ev, nil)
	if v2.Delay != time.Second {
		t.Fatalf("second frame delay %v", v2.Delay)
	}
}
