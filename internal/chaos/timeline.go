package chaos

import (
	"sync"
	"time"
)

// Step is one entry in a scheduled fault timeline. After the given
// delay (relative to the previous step), the named fault slot is set
// (Fault non-nil) or cleared (Fault nil), and optionally the affected
// connections are flapped.
type Step struct {
	// After is the delay since the previous step (or Play for the
	// first step).
	After time.Duration
	// Name is the fault slot to set or clear. Empty performs no fault
	// change (useful for pure-flap steps).
	Name string
	// Fault, when non-nil, is installed under Name; when nil, Name is
	// cleared.
	Fault Fault
	// Flap force-closes live connections when the step fires: all of
	// them if FlapLink is empty, else just that link's.
	Flap     bool
	FlapLink string
}

// Play executes the steps sequentially on the injector clock. It
// returns a stop function (idempotent, cancels remaining steps) and a
// channel closed when the timeline finishes or is stopped. Driven by a
// clock.Fake, a timeline replays identically under Advance.
func (inj *Injector) Play(steps []Step) (stop func(), done <-chan struct{}) {
	quit := make(chan struct{})
	fin := make(chan struct{})
	var once sync.Once
	stopOnce := func() { once.Do(func() { close(quit) }) }
	go func() {
		defer close(fin)
		for _, s := range steps {
			if s.After > 0 {
				t := inj.clk.NewTimer(s.After)
				select {
				case <-t.C():
				case <-quit:
					t.Stop()
					return
				}
			} else {
				select {
				case <-quit:
					return
				default:
				}
			}
			if s.Name != "" {
				if s.Fault != nil {
					inj.Set(s.Name, s.Fault)
					inj.record(0, "", "timeline", "set "+s.Name)
				} else {
					inj.Clear(s.Name)
					inj.record(0, "", "timeline", "clear "+s.Name)
				}
			}
			if s.Flap {
				if s.FlapLink != "" {
					inj.FlapLink(s.FlapLink)
				} else {
					inj.Flap()
				}
			}
		}
	}()
	return stopOnce, fin
}
