// Package chaos is a deterministic, seedable fault-injection layer for
// transport.Transport. An Injector wraps a transport and applies a set
// of named faults — partitions (full or asymmetric), link flaps, frame
// duplication, reordering, byte corruption, latency and bandwidth caps —
// to every frame received over connections it created. All randomness
// derives from the injector seed and per-connection sequence numbers, so
// two runs with the same seed and the same connection/frame order render
// identical verdicts; the decision journal (Decisions, JournalDigest)
// lets tests assert exactly that.
//
// Faults fire only on the receive path, mirroring transport.Shaped: when
// both endpoints of a link share one injector-wrapped transport, each
// frame is judged exactly once — on the receiving side — regardless of
// direction.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"entitytrace/internal/clock"
	"entitytrace/internal/obs"
	"entitytrace/internal/transport"
)

// Metrics exposed on the process-wide obs registry.
var (
	mDropped    = obs.Default.Counter(obs.WithLabel("chaos_frames_total", "action", "dropped"))
	mDuplicated = obs.Default.Counter(obs.WithLabel("chaos_frames_total", "action", "duplicated"))
	mCorrupted  = obs.Default.Counter(obs.WithLabel("chaos_frames_total", "action", "corrupted"))
	mReordered  = obs.Default.Counter(obs.WithLabel("chaos_frames_total", "action", "reordered"))
	mDelayed    = obs.Default.Counter(obs.WithLabel("chaos_frames_total", "action", "delayed"))
	mFlaps      = obs.Default.Counter("chaos_flaps_total")
	mActive     = obs.Default.Gauge("chaos_faults_active")
)

// DefaultJournalSize bounds the decision journal ring.
const DefaultJournalSize = 4096

// Config configures an Injector.
type Config struct {
	// Seed drives every random decision. It is required and must be
	// non-zero: chaos runs are deterministic by construction, and an
	// implicit wall-clock seed would silently break replay.
	Seed int64
	// Clock supplies time for delays and timelines; nil means the real
	// clock. Tests pass clock.Fake to step through schedules.
	Clock clock.Clock
	// Log, when set, records every non-noop verdict at debug level.
	Log *obs.Logger
	// JournalSize bounds the in-memory decision journal (default
	// DefaultJournalSize; negative disables journaling).
	JournalSize int
}

// Decision is one journaled fault verdict (or flap / timeline action).
type Decision struct {
	Seq    uint64 // monotone per injector
	Conn   uint64 // connection sequence number (0 for injector-level actions)
	Link   string // listener-side address of the connection
	Fault  string // fault slot name, or "flap"/"timeline"
	Action string // e.g. "drop", "dup+2", "corrupt", "hold", "delay=5ms"
}

func (d Decision) String() string {
	return fmt.Sprintf("#%d conn=%d link=%s fault=%s action=%s", d.Seq, d.Conn, d.Link, d.Fault, d.Action)
}

// Injector wraps a transport.Transport with fault injection.
type Injector struct {
	inner transport.Transport
	clk   clock.Clock
	seed  int64
	log   *obs.Logger

	mu       sync.Mutex
	faults   []namedFault // sorted by name for deterministic application
	conns    map[*chaoticConn]struct{}
	connSeq  uint64
	journal  []Decision
	jCap     int
	jSeq     uint64
	jDropped uint64
}

type namedFault struct {
	name  string
	fault Fault
}

// New wraps inner with fault injection. The seed must be non-zero.
func New(inner transport.Transport, cfg Config) (*Injector, error) {
	if cfg.Seed == 0 {
		return nil, fmt.Errorf("chaos: Config.Seed must be non-zero (explicit seeds keep runs reproducible)")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	jc := cfg.JournalSize
	if jc == 0 {
		jc = DefaultJournalSize
	}
	if jc < 0 {
		jc = 0
	}
	return &Injector{
		inner: inner,
		clk:   clk,
		seed:  cfg.Seed,
		log:   cfg.Log,
		conns: make(map[*chaoticConn]struct{}),
		jCap:  jc,
	}, nil
}

// Name implements transport.Transport.
func (inj *Injector) Name() string { return inj.inner.Name() + "+chaos" }

// Set installs (or replaces) the named fault. Faults apply to frames in
// lexicographic slot-name order, keeping composite schedules
// deterministic regardless of installation order.
func (inj *Injector) Set(name string, f Fault) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i := range inj.faults {
		if inj.faults[i].name == name {
			inj.faults[i].fault = f
			return
		}
	}
	inj.faults = append(inj.faults, namedFault{name, f})
	sort.Slice(inj.faults, func(i, j int) bool { return inj.faults[i].name < inj.faults[j].name })
	mActive.Set(int64(len(inj.faults)))
}

// Clear removes the named fault; clearing an absent name is a no-op.
func (inj *Injector) Clear(name string) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i := range inj.faults {
		if inj.faults[i].name == name {
			inj.faults = append(inj.faults[:i], inj.faults[i+1:]...)
			break
		}
	}
	mActive.Set(int64(len(inj.faults)))
}

// ClearAll removes every fault.
func (inj *Injector) ClearAll() {
	inj.mu.Lock()
	inj.faults = nil
	inj.mu.Unlock()
	mActive.Set(0)
}

// Active returns the installed fault names in application order.
func (inj *Injector) Active() []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]string, len(inj.faults))
	for i, nf := range inj.faults {
		out[i] = nf.name
	}
	return out
}

// Flap force-closes every live connection created through the injector
// and reports how many it closed. Persistent links and reconnecting
// sessions are expected to dial back in.
func (inj *Injector) Flap() int { return inj.flap("") }

// FlapLink force-closes the live connections on the link whose
// listener-side address is addr.
func (inj *Injector) FlapLink(addr string) int { return inj.flap(addr) }

func (inj *Injector) flap(addr string) int {
	inj.mu.Lock()
	victims := make([]*chaoticConn, 0, len(inj.conns))
	for c := range inj.conns {
		if addr == "" || c.link == addr {
			victims = append(victims, c)
		}
	}
	inj.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	if len(victims) > 0 {
		mFlaps.Add(uint64(len(victims)))
		inj.record(0, addr, "flap", fmt.Sprintf("closed=%d", len(victims)))
	}
	return len(victims)
}

// ConnCount reports the number of live connections.
func (inj *Injector) ConnCount() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return len(inj.conns)
}

// Decisions returns a copy of the journaled decisions, oldest first
// (bounded by Config.JournalSize; older entries may have been evicted).
func (inj *Injector) Decisions() []Decision {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Decision(nil), inj.journal...)
}

// JournalDigest folds every decision ever journaled (including evicted
// ones, via the running sequence number) into one FNV-1a digest. Two
// runs with the same seed and frame order produce equal digests.
func (inj *Injector) JournalDigest() uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d evicted=%d\n", inj.seed, inj.jDropped)
	for _, d := range inj.journal {
		fmt.Fprintln(h, d.String())
	}
	return h.Sum64()
}

func (inj *Injector) record(conn uint64, link, fault, action string) {
	inj.mu.Lock()
	d := Decision{Seq: inj.jSeq, Conn: conn, Link: link, Fault: fault, Action: action}
	inj.jSeq++
	if inj.jCap > 0 {
		if len(inj.journal) >= inj.jCap {
			inj.journal = inj.journal[1:]
			inj.jDropped++
		}
		inj.journal = append(inj.journal, d)
	}
	log := inj.log
	inj.mu.Unlock()
	if log != nil {
		log.Debug("chaos verdict", "conn", conn, "link", link, "fault", fault, "action", action)
	}
}

// snapshot returns the fault list for one frame evaluation.
func (inj *Injector) snapshot() []namedFault {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.faults
}

// Dial implements transport.Transport.
func (inj *Injector) Dial(addr string) (transport.Conn, error) {
	c, err := inj.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return inj.newConn(c, addr, false), nil
}

// Listen implements transport.Transport.
func (inj *Injector) Listen(addr string) (transport.Listener, error) {
	l, err := inj.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &chaoticListener{Listener: l, inj: inj}, nil
}

func (inj *Injector) newConn(c transport.Conn, link string, accepted bool) *chaoticConn {
	inj.mu.Lock()
	inj.connSeq++
	cc := &chaoticConn{
		Conn:     c,
		inj:      inj,
		id:       inj.connSeq,
		link:     link,
		accepted: accepted,
		rng:      rand.New(rand.NewSource(splitmix64(uint64(inj.seed) ^ inj.connSeq))),
	}
	inj.conns[cc] = struct{}{}
	inj.mu.Unlock()
	return cc
}

func (inj *Injector) dropConn(cc *chaoticConn) {
	inj.mu.Lock()
	delete(inj.conns, cc)
	inj.mu.Unlock()
}

type chaoticListener struct {
	transport.Listener
	inj *Injector
}

func (l *chaoticListener) Accept() (transport.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.newConn(c, l.Addr(), true), nil
}

type chaoticConn struct {
	transport.Conn
	inj      *Injector
	id       uint64
	link     string // listener-side address of this connection's link
	accepted bool   // true when this end was produced by Accept
	rng      *rand.Rand

	closeOnce sync.Once

	// Receive-path state; Recv is single-goroutine per transport.Conn
	// contract, so no lock is needed.
	pending [][]byte // frames queued ahead of the next inner Recv
	held    [][]byte // frames stashed by Reorder verdicts
}

func (c *chaoticConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.inj.dropConn(c)
		err = c.Conn.Close()
	})
	return err
}

func (c *chaoticConn) Recv() ([]byte, error) {
	for {
		if len(c.pending) > 0 {
			f := c.pending[0]
			c.pending = c.pending[1:]
			return f, nil
		}
		frame, err := c.Conn.Recv()
		if err != nil {
			// Reordering is not loss: surface stashed frames before
			// the terminal error.
			if len(c.held) > 0 {
				f := c.held[0]
				c.held = c.held[1:]
				return f, nil
			}
			return nil, err
		}
		frame, delay, delivered := c.judge(frame)
		if !delivered {
			continue
		}
		if delay > 0 {
			c.inj.clk.Sleep(delay)
		}
		return frame, nil
	}
}

// judge runs the fault chain over one received frame. It returns the
// (possibly replaced) frame, an accumulated delivery delay, and whether
// the frame should be delivered now; duplicates and released held
// frames are queued onto c.pending.
func (c *chaoticConn) judge(frame []byte) ([]byte, time.Duration, bool) {
	ev := Event{
		Conn:       c.id,
		Link:       c.link,
		ToListener: c.accepted,
		Now:        c.inj.clk.Now(),
	}
	var (
		delay  time.Duration
		copies int
		hold   bool
	)
	for _, nf := range c.inj.snapshot() {
		ev.Frame = frame
		v := nf.fault.Apply(&ev, c.rng)
		switch {
		case v.Drop:
			mDropped.Add(1)
			c.inj.record(c.id, c.link, nf.name, "drop")
			return nil, 0, false
		case v.Frame != nil:
			frame = v.Frame
			mCorrupted.Add(1)
			c.inj.record(c.id, c.link, nf.name, "corrupt")
		}
		if v.Copies > 0 {
			copies += v.Copies
			mDuplicated.Add(uint64(v.Copies))
			c.inj.record(c.id, c.link, nf.name, fmt.Sprintf("dup+%d", v.Copies))
		}
		if v.Delay > 0 {
			delay += v.Delay
			mDelayed.Add(1)
			c.inj.record(c.id, c.link, nf.name, fmt.Sprintf("delay=%s", v.Delay))
		}
		if v.Hold {
			hold = true
			mReordered.Add(1)
			c.inj.record(c.id, c.link, nf.name, "hold")
		}
	}
	if hold {
		c.held = append(c.held, frame)
		return nil, 0, false
	}
	for i := 0; i < copies; i++ {
		c.pending = append(c.pending, append([]byte(nil), frame...))
	}
	// A delivered frame releases anything stashed behind it: the held
	// frames come out after it, i.e. reordered.
	if len(c.held) > 0 {
		c.pending = append(c.pending, c.held...)
		c.held = nil
	}
	return frame, delay, true
}

// splitmix64 scrambles a seed so per-connection RNG streams are
// decorrelated even for adjacent connection IDs.
func splitmix64(x uint64) int64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}
