package broker

import (
	"time"

	"entitytrace/internal/backoff"
	"entitytrace/internal/message"
	"entitytrace/internal/obs"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// Fabric routing counters (PROTOCOL.md §3.9).
var (
	mFabricForwards = obs.Default.Counter("broker_fabric_forward_total")
	mFabricFanIn    = obs.Default.Counter("broker_fabric_fanin_total")
	mFabricNoRoute  = obs.Default.Counter("broker_fabric_no_route_total")
)

// ShardInfo is a fabric ownership snapshot surfaced on broker health.
type ShardInfo struct {
	// Epoch is the current ownership-table epoch.
	Epoch uint64
	// Members is the live fabric member count.
	Members int
	// OwnedPerMille is this broker's share of the hash circle.
	OwnedPerMille int
}

// Sharding is the fabric ownership table the broker consults on the
// publish path (implemented by internal/fabric). Route must be safe for
// unbounded concurrent use and lock-free in steady state: it runs once
// per published envelope.
type Sharding interface {
	// Route maps an exact topic string to its owning broker under the
	// current epoch. sharded=false means the topic is outside the
	// partitioned keyspace and routes by ordinary subscription flood;
	// local=true means this broker owns it.
	Route(ts string) (owner string, local, sharded bool)
	// Info snapshots the table for health reporting.
	Info() ShardInfo
}

// shardingRef boxes the interface so it can live in an atomic.Pointer.
type shardingRef struct{ s Sharding }

// SetSharding installs (or, with nil, removes) the fabric ownership
// table. Installed after construction — the fabric needs the broker to
// exist first — and read atomically on the publish path, so no routing
// goroutine ever blocks on it.
func (b *Broker) SetSharding(s Sharding) {
	if s == nil {
		b.sharding.Store(nil)
		return
	}
	b.sharding.Store(&shardingRef{s: s})
}

// shardingOf returns the installed ownership table, nil when the broker
// runs outside a fabric.
func (b *Broker) shardingOf() Sharding {
	ref := b.sharding.Load()
	if ref == nil {
		return nil
	}
	return ref.s
}

// shardAdvertiseOK reports whether this broker's subscription on ts
// should be advertised over link p. Under a fabric, subscriptions on
// sharded topics register with the owning shard only — the
// forward-to-owner rule guarantees every publish reaches the owner, so
// advertising anywhere else would only re-create the full flooded
// routing index the fabric exists to shrink. The owner itself
// advertises to nobody (it is the rendezvous), and wildcards plus
// unsharded topics keep flood semantics. Callers hold b.mu.
func (b *Broker) shardAdvertiseOK(ts string, p *peer) bool {
	s := b.shardingOf()
	if s == nil {
		return true
	}
	owner, local, sharded := s.Route(ts)
	if !sharded {
		return true
	}
	if local {
		return false
	}
	return p.name == owner
}

// RefreshAllLinks re-reconciles every subscribed topic's advertisement
// state across all links. The fabric invokes it after each ownership
// epoch change so sharded subscriptions re-register with their new
// owners and drop off the old ones.
func (b *Broker) RefreshAllLinks() {
	b.mu.RLock()
	topics := make([]string, 0, len(b.subs))
	for ts := range b.subs {
		topics = append(topics, ts)
	}
	b.mu.RUnlock()
	for _, ts := range topics {
		b.refreshLinks(ts)
	}
}

// linkByName returns the live broker link with the given name, nil when
// none is connected.
func (b *Broker) linkByName(name string) *peer {
	b.mu.RLock()
	defer b.mu.RUnlock()
	p := b.links[name]
	if p == nil || p.closed.Load() || p.evicted.Load() {
		return nil
	}
	return p
}

// LinkUp reports whether a live broker link with the given name is
// connected (either direction).
func (b *Broker) LinkUp(name string) bool { return b.linkByName(name) != nil }

// LinkNames lists the names of currently connected broker links, both
// dialed and inbound.
func (b *Broker) LinkNames() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.links))
	for name, p := range b.links {
		if !p.closed.Load() && !p.evicted.Load() {
			out = append(out, name)
		}
	}
	return out
}

// EnsureLink maintains a named broker link to addr over tr: an
// idempotent, per-name redial loop that dials whenever no live link
// with that name exists (an inbound link from the same broker counts)
// and backs off between attempts. This is the fabric's auto-dial
// replacing hand-wired -link lists; DropLink cancels it.
func (b *Broker) EnsureLink(name string, tr transport.Transport, addr string) {
	if name == "" || name == b.name {
		return
	}
	b.linkMu.Lock()
	if b.linkDials == nil {
		b.linkDials = make(map[string]chan struct{})
	}
	if _, ok := b.linkDials[name]; ok {
		b.linkMu.Unlock()
		return
	}
	stop := make(chan struct{})
	b.linkDials[name] = stop
	b.linkMu.Unlock()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.linkMu.Lock()
		delete(b.linkDials, name)
		b.linkMu.Unlock()
		return
	}
	b.wg.Add(1)
	b.mu.Unlock()
	go func() {
		defer b.wg.Done()
		b.ensureLinkLoop(name, tr, addr, stop)
	}()
}

// linkProbeInterval paces the "is the inbound link still up" check an
// EnsureLink loop performs while it is not the dialing side.
const linkProbeInterval = 250 * time.Millisecond

func (b *Broker) ensureLinkLoop(name string, tr transport.Transport, addr string, stop chan struct{}) {
	policy := backoff.New(backoff.Config{Initial: 50 * time.Millisecond, Max: 2 * time.Second})
	wait := func(d time.Duration) bool {
		t := b.clk.NewTimer(d)
		select {
		case <-b.done:
			t.Stop()
			return false
		case <-stop:
			t.Stop()
			return false
		case <-t.C():
			return true
		}
	}
	for {
		select {
		case <-b.done:
			return
		case <-stop:
			return
		default:
		}
		if b.LinkUp(name) {
			// A link with this name is already connected (inbound, or
			// hand-wired); just watch for it to disappear.
			policy.Reset()
			if !wait(linkProbeInterval) {
				return
			}
			continue
		}
		mLinkDials.Inc()
		p, err := b.dialLinkNamed(tr, addr, name)
		if err == nil {
			mLinkUp.Inc()
			policy.Reset()
			b.log.Info("fabric link established", "peer", name, "addr", addr)
			b.peerLoop(p)
			mLinkLost.Inc()
			b.log.Warn("fabric link lost", "peer", name)
		}
		if !wait(policy.Next()) {
			return
		}
	}
}

// DropLink cancels an EnsureLink loop and closes any live link with
// that name. The fabric calls it when a member leaves or fails.
func (b *Broker) DropLink(name string) {
	b.linkMu.Lock()
	if stop, ok := b.linkDials[name]; ok {
		close(stop)
		delete(b.linkDials, name)
	}
	b.linkMu.Unlock()
	if p := b.linkByName(name); p != nil {
		p.closed.Store(true)
		p.out.beginClose()
		p.conn.Close()
	}
}

// routeShardRemote handles an envelope whose topic is owned by another
// shard (PROTOCOL.md §3.9 forward-to-owner rule). Three cases:
//
//   - Fan-in: the envelope arrives over the link FROM its owner. The
//     owner already admitted, guard-verified and persisted it, so after
//     duplicate/TTL suppression it goes straight to local subscribers
//     and client peers — never back over links, which is what keeps
//     fabric routing loop-free in one hop.
//   - No route: the owner's link is not up (fabric still assembling, or
//     mid-rebalance). The broker degrades to the pre-fabric flood path —
//     full admission, persist, subscription fan-out — rather than drop.
//   - Forward: full admission runs here (the client's violations are
//     scored at its own ingress broker, and a client-forbidden publish
//     cannot be laundered to the owner under the link's broker
//     principal), the envelope is durably persisted at its origin when
//     it entered the fabric here (crash-proofing the one hop to the
//     owner — see the fabric handoff replay), forwarded to the owner
//     with the TTL decremented, and delivered to local subscribers
//     directly. The local delivery matters: admission recorded the
//     envelope ID, so the owner's fan-back over this same link would be
//     suppressed as a duplicate — co-located subscribers would
//     otherwise never hear topics owned by another shard.
func (b *Broker) routeShardRemote(from *peer, env *message.Envelope, principal topic.Principal, owner string, sampled bool) error {
	if from != nil && from.isBroker && from.name == owner {
		if sampled {
			b.cfg.Flight.Record(obs.FlightEvent{
				Kind:  obs.FlightIngress,
				Trace: flightTraceOf(env),
				Peer:  from.name,
				Topic: env.Topic.String(),
			})
		}
		if !b.firstSighting(env.ID) {
			b.stats.duplicates.Add(1)
			mDuplicates.Inc()
			b.recordDrop(from, env, "duplicate")
			return nil
		}
		if env.TTL == 0 {
			b.stats.expired.Add(1)
			mExpired.Inc()
			b.recordDrop(from, env, "ttl_expired")
			return nil
		}
		b.stats.published.Add(1)
		mPublished.Inc()
		mFabricFanIn.Inc()
		b.deliver(from, env, sampled, true)
		return nil
	}
	link := b.linkByName(owner)
	if link == nil {
		mFabricNoRoute.Inc()
		ok, err := b.admit(from, env, principal, sampled)
		if !ok {
			return err
		}
		if b.cfg.Durable != nil && b.persistable(env.Topic) {
			if _, err := b.cfg.Durable.Append(env.Topic.String(), env.Marshal()); err != nil {
				mDurableAppendErrs.Inc()
				b.log.Warn("durable append failed", "topic", env.Topic.String(), "err", err)
			}
		}
		b.finishRoute(from, env, sampled)
		return nil
	}
	ok, err := b.admit(from, env, principal, sampled)
	if !ok {
		return err
	}
	origin := from == nil || !from.isBroker
	if origin && b.cfg.Durable != nil && b.persistable(env.Topic) {
		if _, err := b.cfg.Durable.Append(env.Topic.String(), env.Marshal()); err != nil {
			mDurableAppendErrs.Inc()
			b.log.Warn("durable append failed", "topic", env.Topic.String(), "err", err)
		}
	}
	b.stats.published.Add(1)
	mPublished.Inc()
	b.forwardTo(link, env, sampled)
	b.deliver(from, env, sampled, true)
	return nil
}

// forwardTo frames env with a decremented TTL and enqueues it on one
// link — the unicast hop of the forward-to-owner rule, with the same
// shed/slow-consumer handling as fan-out delivery.
func (b *Broker) forwardTo(p *peer, env *message.Envelope, sampled bool) {
	fwdTTL := env.TTL - 1
	var frame []byte
	if env.Span == nil {
		frame = make([]byte, 1, 1+env.WireSize())
		frame[0] = frameEnvelope
		frame = env.AppendWire(frame, fwdTTL)
	} else {
		fwd := env.Clone()
		fwd.TTL = fwdTTL
		fwd.AddHop(b.name, time.Now())
		frame = make([]byte, 1, 1+fwd.WireSize())
		frame[0] = frameEnvelope
		frame = fwd.AppendWire(frame, fwdTTL)
	}
	b.stats.forwarded.Add(1)
	mForwarded.Inc()
	mFabricForwards.Inc()
	if sampled {
		b.cfg.Flight.Record(obs.FlightEvent{
			Kind:  obs.FlightEgress,
			Trace: flightTraceOf(env),
			Peer:  p.name,
		})
	}
	shed, stalledFor := p.out.enqueueData(frame, b.clk.Now())
	if shed > 0 {
		b.stats.sheds.Add(uint64(shed))
		mEgressSheds.Add(uint64(shed))
		if b.cfg.Flight != nil {
			b.cfg.Flight.Record(obs.FlightEvent{
				Kind:  obs.FlightShed,
				Trace: flightTraceOf(env),
				Peer:  p.name,
				N:     shed,
			})
		}
		if stalledFor >= b.cfg.SlowConsumerDeadline {
			b.evictPeer(p, ReasonSlowConsumer, "egress queue saturated")
		}
	}
}

// ReforwardSharded re-routes one durably persisted sharded envelope
// after an ownership change (the fabric's handoff replay): this broker
// admitted and persisted it at origin, so admission is bypassed and it
// goes straight to the current owner — or into local fan-out when this
// broker has become the owner (its own origin log already holds the
// record, so nothing is re-persisted). Duplicates the old owner had
// already fanned out are absorbed downstream by the per-broker ID rings
// and the trackers' per-trace timestamp dedupe. Reports whether the
// envelope had somewhere to go.
func (b *Broker) ReforwardSharded(env *message.Envelope) bool {
	s := b.shardingOf()
	if s == nil {
		return false
	}
	owner, local, sharded := s.Route(env.Topic.String())
	if !sharded {
		return false
	}
	if local {
		b.deliver(nil, env, false, false)
		return true
	}
	link := b.linkByName(owner)
	if link == nil {
		mFabricNoRoute.Inc()
		return false
	}
	b.forwardTo(link, env, false)
	return true
}
