package broker

import "entitytrace/internal/ident"

// uuidRing is a fixed-capacity FIFO of message IDs backing the dedupe
// window. The seed kept this FIFO as a slice advanced with s = s[1:],
// which pins the backing array's consumed prefix and forces append to
// reallocate forever; the ring reuses one allocation for the broker's
// lifetime.
type uuidRing struct {
	buf  []ident.UUID
	head int // index of the oldest element
	n    int // populated count
}

// newUUIDRing allocates a ring holding up to capacity IDs.
func newUUIDRing(capacity int) *uuidRing {
	if capacity < 1 {
		capacity = 1
	}
	return &uuidRing{buf: make([]ident.UUID, capacity)}
}

// push appends id; when the ring is full it overwrites and returns the
// displaced oldest entry with evicted=true.
func (r *uuidRing) push(id ident.UUID) (old ident.UUID, evicted bool) {
	if r.n == len(r.buf) {
		old = r.buf[r.head]
		r.buf[r.head] = id
		r.head = (r.head + 1) % len(r.buf)
		return old, true
	}
	r.buf[(r.head+r.n)%len(r.buf)] = id
	r.n++
	return ident.UUID{}, false
}

// len reports the populated count.
func (r *uuidRing) len() int { return r.n }

// cap reports the ring's fixed capacity.
func (r *uuidRing) cap() int { return len(r.buf) }
