package broker

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// newTestBroker starts a broker on an in-proc transport and returns it
// with its address.
func newTestBroker(t *testing.T, tr transport.Transport, cfg Config) (*Broker, string) {
	t.Helper()
	b := New(cfg)
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	b.Serve(l)
	t.Cleanup(b.Close)
	return b, l.Addr()
}

// chain builds n brokers connected in a line b0 - b1 - ... - b(n-1).
func chain(t *testing.T, tr transport.Transport, n int) ([]*Broker, []string) {
	t.Helper()
	brokers := make([]*Broker, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		brokers[i], addrs[i] = newTestBroker(t, tr, Config{Name: fmt.Sprintf("b%d", i)})
	}
	for i := 1; i < n; i++ {
		if err := brokers[i].ConnectTo(tr, addrs[i-1]); err != nil {
			t.Fatal(err)
		}
	}
	return brokers, addrs
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func recvEnvelope(t *testing.T, ch <-chan *message.Envelope, what string) *message.Envelope {
	t.Helper()
	select {
	case e := <-ch:
		return e
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return nil
	}
}

func TestSingleBrokerPubSub(t *testing.T) {
	tr := transport.NewInproc()
	_, addr := newTestBroker(t, tr, Config{Name: "b0"})

	sub, err := Connect(tr, addr, "subscriber")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Connect(tr, addr, "publisher")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	got := make(chan *message.Envelope, 1)
	tp := topic.MustParse("/news/sports")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	env := message.New(message.TypeData, tp, "publisher", []byte("goal"))
	if err := pub.Publish(env); err != nil {
		t.Fatal(err)
	}
	e := recvEnvelope(t, got, "published envelope")
	if string(e.Payload) != "goal" || e.Source != "publisher" {
		t.Fatalf("got %+v", e)
	}
}

func TestTopicIsolation(t *testing.T) {
	tr := transport.NewInproc()
	_, addr := newTestBroker(t, tr, Config{})
	sub, _ := Connect(tr, addr, "s")
	defer sub.Close()
	pub, _ := Connect(tr, addr, "p")
	defer pub.Close()

	got := make(chan *message.Envelope, 4)
	if err := sub.Subscribe(topic.MustParse("/a/b"), func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	_ = pub.Publish(message.New(message.TypeData, topic.MustParse("/a/c"), "p", []byte("other")))
	_ = pub.Publish(message.New(message.TypeData, topic.MustParse("/a/b"), "p", []byte("mine")))
	e := recvEnvelope(t, got, "matching envelope")
	if string(e.Payload) != "mine" {
		t.Fatalf("received non-matching envelope %q", e.Payload)
	}
	select {
	case e := <-got:
		t.Fatalf("unexpected extra delivery: %q on %s", e.Payload, e.Topic)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestWildcardSubscription(t *testing.T) {
	tr := transport.NewInproc()
	_, addr := newTestBroker(t, tr, Config{})
	sub, _ := Connect(tr, addr, "s")
	defer sub.Close()
	pub, _ := Connect(tr, addr, "p")
	defer pub.Close()

	got := make(chan *message.Envelope, 4)
	if err := sub.Subscribe(topic.MustParse("/metrics/*"), func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	_ = pub.Publish(message.New(message.TypeData, topic.MustParse("/metrics/cpu/host1"), "p", []byte("42")))
	e := recvEnvelope(t, got, "wildcard delivery")
	if e.Topic.String() != "/metrics/cpu/host1" {
		t.Fatalf("topic %s", e.Topic)
	}
}

func TestClientWildcardUnderConstrainedDenied(t *testing.T) {
	tr := transport.NewInproc()
	_, addr := newTestBroker(t, tr, Config{})
	c, _ := Connect(tr, addr, "snooper")
	defer c.Close()
	err := c.Subscribe(topic.MustParse("/Constrained/*"), func(*message.Envelope) {})
	if !errors.Is(err, ErrSubscribeDenied) {
		t.Fatalf("wildcard under /Constrained: err=%v", err)
	}
}

func TestConstrainedSubscribeDenied(t *testing.T) {
	tr := transport.NewInproc()
	_, addr := newTestBroker(t, tr, Config{})
	c, _ := Connect(tr, addr, "eve")
	defer c.Close()
	// Subscribe-Only topics of the broker cannot be subscribed by entities.
	err := c.Subscribe(topic.Registration(), func(*message.Envelope) {})
	if !errors.Is(err, ErrSubscribeDenied) {
		t.Fatalf("registration subscribe: err=%v", err)
	}
	// Another entity's session topic cannot be subscribed either.
	tp, _ := topic.BrokerToEntitySession("alice", ident.NewUUID(), ident.NewSessionID())
	if err := c.Subscribe(tp, func(*message.Envelope) {}); !errors.Is(err, ErrSubscribeDenied) {
		t.Fatalf("foreign session subscribe: err=%v", err)
	}
}

func TestConstrainedPublishDropped(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	c, _ := Connect(tr, addr, "mallory")
	defer c.Close()
	// Publish-Only broker topics reject entity publishes (§4.3).
	tp := topic.ChangeNotifications(ident.NewUUID())
	env := message.New(message.TraceFailed, tp, "mallory", []byte("spoof"))
	if err := c.Publish(env); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "violation count", func() bool { return b.Snapshot().Violations >= 1 })
	if b.Snapshot().Published != 0 {
		t.Fatal("spoofed trace was routed")
	}
}

func TestSourceSpoofingDropped(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	c, _ := Connect(tr, addr, "honest")
	defer c.Close()
	env := message.New(message.TypeData, topic.MustParse("/x"), "someone-else", nil)
	_ = c.Publish(env)
	waitFor(t, "spoof violation", func() bool { return b.Snapshot().Violations >= 1 })
}

func TestViolationDisconnect(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{ViolationLimit: 3})
	c, _ := Connect(tr, addr, "mallory")
	defer c.Close()
	tp := topic.ChangeNotifications(ident.NewUUID())
	for i := 0; i < 5; i++ {
		env := message.New(message.TraceFailed, tp, "mallory", nil)
		if err := c.Publish(env); err != nil {
			break // connection already torn down
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitFor(t, "disconnect", func() bool { return b.Snapshot().Disconnects >= 1 })
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client not disconnected after repeated violations")
	}
}

func TestGuardInvokedAndPunished(t *testing.T) {
	tr := transport.NewInproc()
	var guarded atomic.Int64
	guard := func(env *message.Envelope, from topic.Principal) error {
		guarded.Add(1)
		if string(env.Payload) == "bad" {
			return errors.New("guard says no")
		}
		return nil
	}
	b, addr := newTestBroker(t, tr, Config{Guard: guard})
	c, _ := Connect(tr, addr, "client")
	defer c.Close()

	got := make(chan *message.Envelope, 2)
	sub, _ := Connect(tr, addr, "sub")
	defer sub.Close()
	tp := topic.MustParse("/guarded")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	_ = c.Publish(message.New(message.TypeData, tp, "client", []byte("bad")))
	_ = c.Publish(message.New(message.TypeData, tp, "client", []byte("good")))
	e := recvEnvelope(t, got, "guarded delivery")
	if string(e.Payload) != "good" {
		t.Fatalf("guard let %q through", e.Payload)
	}
	if guarded.Load() < 2 {
		t.Fatalf("guard invoked %d times", guarded.Load())
	}
	if b.Snapshot().Violations != 1 {
		t.Fatalf("violations = %d", b.Snapshot().Violations)
	}
}

func TestMultiHopRouting(t *testing.T) {
	tr := transport.NewInproc()
	brokers, addrs := chain(t, tr, 4)

	sub, _ := Connect(tr, addrs[3], "sub")
	defer sub.Close()
	pub, _ := Connect(tr, addrs[0], "pub")
	defer pub.Close()

	got := make(chan *message.Envelope, 1)
	tp := topic.MustParse("/far/away")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	// Wait until the subscription has propagated back to broker 0.
	waitFor(t, "subscription propagation", func() bool { return brokers[0].HasSubscription(tp.String()) })

	_ = pub.Publish(message.New(message.TypeData, tp, "pub", []byte("hello across 4 brokers")))
	e := recvEnvelope(t, got, "multi-hop delivery")
	if string(e.Payload) != "hello across 4 brokers" {
		t.Fatalf("payload %q", e.Payload)
	}
	if e.TTL >= message.DefaultTTL {
		t.Fatalf("TTL not decremented: %d", e.TTL)
	}
}

func TestLateLinkReceivesExistingSubscriptions(t *testing.T) {
	tr := transport.NewInproc()
	b0, addr0 := newTestBroker(t, tr, Config{Name: "b0"})
	_ = b0
	b1, addr1 := newTestBroker(t, tr, Config{Name: "b1"})

	sub, _ := Connect(tr, addr0, "sub")
	defer sub.Close()
	tp := topic.MustParse("/pre/existing")
	got := make(chan *message.Envelope, 1)
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	// Link up after the subscription exists.
	if err := b1.ConnectTo(tr, addr0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "sync to new link", func() bool { return b1.HasSubscription(tp.String()) })

	pub, _ := Connect(tr, addr1, "pub")
	defer pub.Close()
	_ = pub.Publish(message.New(message.TypeData, tp, "pub", []byte("late link")))
	recvEnvelope(t, got, "delivery across late link")
}

func TestSuppressedTopicsStayLocal(t *testing.T) {
	tr := transport.NewInproc()
	brokers, _ := chain(t, tr, 2)

	// A Limited-distribution session topic must not propagate.
	tt, sess := ident.NewUUID(), ident.NewSessionID()
	local := topic.EntityToBrokerSession(tt, sess) // .../Limited/...

	done := brokers[1].SubscribeLocal(local, func(*message.Envelope) {})
	defer done()
	time.Sleep(50 * time.Millisecond)
	if brokers[0].HasSubscription(local.String()) {
		t.Fatal("Limited topic subscription propagated to neighbour broker")
	}
	// A disseminated topic does propagate.
	dis := topic.ChangeNotifications(tt)
	done2 := brokers[1].SubscribeLocal(dis, func(*message.Envelope) {})
	defer done2()
	waitFor(t, "disseminated propagation", func() bool { return brokers[0].HasSubscription(dis.String()) })
}

func TestDuplicateSuppression(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	sub, _ := Connect(tr, addr, "s")
	defer sub.Close()
	pub, _ := Connect(tr, addr, "p")
	defer pub.Close()

	got := make(chan *message.Envelope, 4)
	tp := topic.MustParse("/dup")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	env := message.New(message.TypeData, tp, "p", []byte("once"))
	_ = pub.Publish(env)
	_ = pub.Publish(env) // same ID
	recvEnvelope(t, got, "first delivery")
	select {
	case <-got:
		t.Fatal("duplicate envelope delivered")
	case <-time.After(100 * time.Millisecond):
	}
	waitFor(t, "duplicate counter", func() bool { return b.Snapshot().Duplicates >= 1 })
}

func TestTTLExpiry(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	pub, _ := Connect(tr, addr, "p")
	defer pub.Close()
	env := message.New(message.TypeData, topic.MustParse("/x"), "p", nil)
	env.TTL = 0
	_ = pub.Publish(env)
	waitFor(t, "TTL drop", func() bool { return b.Snapshot().Expired >= 1 })
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	tr := transport.NewInproc()
	_, addr := newTestBroker(t, tr, Config{})
	sub, _ := Connect(tr, addr, "s")
	defer sub.Close()
	pub, _ := Connect(tr, addr, "p")
	defer pub.Close()

	got := make(chan *message.Envelope, 4)
	tp := topic.MustParse("/onoff")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	_ = pub.Publish(message.New(message.TypeData, tp, "p", []byte("1")))
	recvEnvelope(t, got, "pre-unsubscribe delivery")
	if err := sub.Unsubscribe(tp); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	_ = pub.Publish(message.New(message.TypeData, tp, "p", []byte("2")))
	select {
	case e := <-got:
		t.Fatalf("delivery after unsubscribe: %q", e.Payload)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestSubscribeLocalAndCancel(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	pub, _ := Connect(tr, addr, "p")
	defer pub.Close()

	got := make(chan *message.Envelope, 4)
	// Local subscribers have broker privileges: they may watch
	// Subscribe-Only topics like the registration topic.
	cancel := b.SubscribeLocal(topic.Registration(), func(e *message.Envelope) { got <- e })
	env := message.New(message.TypeRegistration, topic.Registration(), "p", []byte("reg"))
	_ = pub.Publish(env)
	recvEnvelope(t, got, "local delivery")
	cancel()
	time.Sleep(20 * time.Millisecond)
	env2 := message.New(message.TypeRegistration, topic.Registration(), "p", []byte("reg2"))
	_ = pub.Publish(env2)
	select {
	case <-got:
		t.Fatal("delivery after local cancel")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestBrokerPublishLocalOrigin(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	sub, _ := Connect(tr, addr, "s")
	defer sub.Close()
	got := make(chan *message.Envelope, 1)
	// Entities may subscribe to broker Publish-Only topics.
	tp := topic.AllUpdates(ident.NewUUID())
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	env := message.New(message.TraceAllsWell, tp, "", []byte("alive"))
	if err := b.Publish(env); err != nil {
		t.Fatal(err)
	}
	recvEnvelope(t, got, "broker-originated trace")
}

func TestStatsSnapshot(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	sub, _ := Connect(tr, addr, "s")
	defer sub.Close()
	pub, _ := Connect(tr, addr, "p")
	defer pub.Close()
	tp := topic.MustParse("/counted")
	got := make(chan *message.Envelope, 1)
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	_ = pub.Publish(message.New(message.TypeData, tp, "p", nil))
	recvEnvelope(t, got, "counted delivery")
	s := b.Snapshot()
	if s.Published != 1 || s.DeliveredLocal != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if b.PeerCount() != 2 {
		t.Fatalf("PeerCount = %d", b.PeerCount())
	}
	if b.SubscriptionCount() != 1 {
		t.Fatalf("SubscriptionCount = %d", b.SubscriptionCount())
	}
}

func TestClientCloseIsClean(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	c, _ := Connect(tr, addr, "fleeting")
	if err := c.Subscribe(topic.MustParse("/t"), func(*message.Envelope) {}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "peer removal", func() bool { return b.PeerCount() == 0 })
	if b.SubscriptionCount() != 0 {
		t.Fatal("subscriptions survived peer removal")
	}
	if err := c.Publish(message.New(message.TypeData, topic.MustParse("/t"), "fleeting", nil)); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("publish after close: %v", err)
	}
	if err := c.Subscribe(topic.MustParse("/t2"), func(*message.Envelope) {}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("subscribe after close: %v", err)
	}
}

func TestBrokerCloseUnblocksClients(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	c, _ := Connect(tr, addr, "c")
	b.Close()
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client not notified of broker shutdown")
	}
}

func TestRoutingOverTCPAndUDP(t *testing.T) {
	for _, trName := range []string{"tcp", "udp"} {
		t.Run(trName, func(t *testing.T) {
			tr, err := transport.New(trName)
			if err != nil {
				t.Fatal(err)
			}
			b := New(Config{Name: "b-" + trName})
			l, err := tr.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			b.Serve(l)
			defer b.Close()

			sub, err := Connect(tr, l.Addr(), "s")
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
			pub, err := Connect(tr, l.Addr(), "p")
			if err != nil {
				t.Fatal(err)
			}
			defer pub.Close()
			got := make(chan *message.Envelope, 1)
			tp := topic.MustParse("/socket/test")
			if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
				t.Fatal(err)
			}
			_ = pub.Publish(message.New(message.TypeData, tp, "p", []byte(trName)))
			e := recvEnvelope(t, got, trName+" delivery")
			if string(e.Payload) != trName {
				t.Fatalf("payload %q", e.Payload)
			}
		})
	}
}

// TestDedupeWindowEviction verifies that the duplicate-suppression
// window is bounded: after the window rolls over, an old ID is treated
// as new again (acceptable: TTL and topology bound actual loops).
func TestDedupeWindowEviction(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{DedupeWindow: 8})
	pub, _ := Connect(tr, addr, "p")
	defer pub.Close()
	sub, _ := Connect(tr, addr, "s")
	defer sub.Close()
	got := make(chan *message.Envelope, 32)
	tp := topic.MustParse("/evict")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	first := message.New(message.TypeData, tp, "p", []byte("first"))
	_ = pub.Publish(first)
	recvEnvelope(t, got, "first delivery")
	// Push 8 more unique IDs through to evict the first.
	for i := 0; i < 8; i++ {
		_ = pub.Publish(message.New(message.TypeData, tp, "p", []byte("filler")))
		recvEnvelope(t, got, "filler delivery")
	}
	// The original ID is forgotten: a replay is delivered again.
	_ = pub.Publish(first)
	e := recvEnvelope(t, got, "replay after eviction")
	if string(e.Payload) != "first" {
		t.Fatalf("unexpected payload %q", e.Payload)
	}
	if b.Snapshot().Duplicates != 0 {
		t.Fatalf("evicted ID counted as duplicate")
	}
}

// TestUnsubscribeWildcard verifies wildcard handler cleanup on the
// client side.
func TestUnsubscribeWildcard(t *testing.T) {
	tr := transport.NewInproc()
	_, addr := newTestBroker(t, tr, Config{})
	sub, _ := Connect(tr, addr, "s")
	defer sub.Close()
	pub, _ := Connect(tr, addr, "p")
	defer pub.Close()
	got := make(chan *message.Envelope, 4)
	wc := topic.MustParse("/w/*")
	if err := sub.Subscribe(wc, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	_ = pub.Publish(message.New(message.TypeData, topic.MustParse("/w/x"), "p", []byte("1")))
	recvEnvelope(t, got, "wildcard delivery")
	if err := sub.Unsubscribe(wc); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	_ = pub.Publish(message.New(message.TypeData, topic.MustParse("/w/y"), "p", []byte("2")))
	select {
	case e := <-got:
		t.Fatalf("delivery after wildcard unsubscribe: %q", e.Payload)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestOnClientDisconnectCallback verifies the disconnect notification
// carries the entity identifier and fires once per client drop.
func TestOnClientDisconnectCallback(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	dropped := make(chan ident.EntityID, 4)
	b.OnClientDisconnect(func(e ident.EntityID) { dropped <- e })
	c, _ := Connect(tr, addr, "short-lived")
	waitFor(t, "peer registration", func() bool { return b.PeerCount() == 1 })
	c.Close()
	select {
	case e := <-dropped:
		if e != "short-lived" {
			t.Fatalf("disconnect for %q", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("disconnect callback never fired")
	}
}

// TestDiamondTopologyNoStorm wires four brokers in a cycle
// (a-b, a-c, b-d, c-d) and verifies messages are delivered exactly once
// with duplicate suppression absorbing the redundant path.
func TestDiamondTopologyNoStorm(t *testing.T) {
	tr := transport.NewInproc()
	names := []string{"a", "b", "c", "d"}
	brokers := map[string]*Broker{}
	addrs := map[string]string{}
	for _, n := range names {
		b, addr := newTestBroker(t, tr, Config{Name: n})
		brokers[n] = b
		addrs[n] = addr
	}
	links := [][2]string{{"b", "a"}, {"c", "a"}, {"d", "b"}, {"d", "c"}}
	for _, l := range links {
		if err := brokers[l[0]].ConnectTo(tr, addrs[l[1]]); err != nil {
			t.Fatal(err)
		}
	}

	sub, _ := Connect(tr, addrs["d"], "sub")
	defer sub.Close()
	got := make(chan *message.Envelope, 16)
	tp := topic.MustParse("/diamond")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	// Both diamond branches must carry interest before publishing:
	// broker a needs the subscription registered by b AND c, or the
	// message takes a single path and no duplicate ever reaches d.
	waitFor(t, "propagation to a via both branches", func() bool {
		a := brokers["a"]
		a.mu.RLock()
		defer a.mu.RUnlock()
		return len(a.subs[tp.String()]) >= 2
	})

	pub, _ := Connect(tr, addrs["a"], "pub")
	defer pub.Close()
	if err := pub.Publish(message.New(message.TypeData, tp, "pub", []byte("once"))); err != nil {
		t.Fatal(err)
	}
	recvEnvelope(t, got, "diamond delivery")
	// The second copy arriving via the other path must be suppressed.
	select {
	case e := <-got:
		t.Fatalf("duplicate delivery through diamond: %q", e.Payload)
	case <-time.After(200 * time.Millisecond):
	}
	waitFor(t, "duplicate suppressed somewhere", func() bool {
		return brokers["d"].Snapshot().Duplicates >= 1 ||
			brokers["b"].Snapshot().Duplicates >= 1 ||
			brokers["c"].Snapshot().Duplicates >= 1
	})
}

func TestBrokerNameAndClientAccessors(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{Name: "named-broker"})
	if b.Name() != "named-broker" {
		t.Fatalf("Name = %q", b.Name())
	}
	c, err := Connect(tr, addr, "acc-client")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Entity() != "acc-client" {
		t.Fatalf("Entity = %q", c.Entity())
	}
	// OnUnhandled catches deliveries with no matching handler: subscribe
	// with one handler, then swap topics by unsubscribing the handler
	// state only (simulated by publishing on a subscribed-but-unhandled
	// topic after handler removal via Unsubscribe + resubscribe race is
	// contrived; instead verify the default handler fires for replies on
	// a topic subscribed through a second client sharing the identity).
	unhandled := make(chan *message.Envelope, 1)
	c.OnUnhandled(func(e *message.Envelope) { unhandled <- e })
	tp := topic.MustParse("/unhandled/topic")
	if err := c.Subscribe(tp, func(*message.Envelope) {}); err != nil {
		t.Fatal(err)
	}
	// Remove the handler but keep the broker-side subscription by
	// re-adding it at the broker through a raw control frame: simplest
	// equivalent is to unsubscribe handlers then have the broker deliver
	// a message on a wildcard-covered topic with no specific handler.
	wc := topic.MustParse("/unhandled/*")
	if err := c.Subscribe(wc, func(*message.Envelope) {}); err != nil {
		t.Fatal(err)
	}
	_ = c.Unsubscribe(wc) // drops the wildcard handler; broker may still deliver briefly
	pub, _ := Connect(tr, addr, "acc-pub")
	defer pub.Close()
	_ = pub.Publish(message.New(message.TypeData, tp, "acc-pub", []byte("handled")))
	// The exact-handler still exists, so nothing lands in unhandled; the
	// accessor is exercised either way.
	time.Sleep(50 * time.Millisecond)
}
