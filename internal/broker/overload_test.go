package broker

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"entitytrace/internal/clock"
	"entitytrace/internal/message"
	"entitytrace/internal/obs"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// gateConn is a transport.Conn whose Send completes only when the test
// feeds a token through gate, letting tests hold an egress writer
// mid-flight deterministically.
type gateConn struct {
	mu     sync.Mutex
	sent   [][]byte
	gate   chan struct{}
	closed chan struct{}
	once   sync.Once
}

func newGateConn() *gateConn {
	return &gateConn{gate: make(chan struct{}, 64), closed: make(chan struct{})}
}

func (c *gateConn) Send(f []byte) error {
	select {
	case <-c.gate:
	case <-c.closed:
		return transport.ErrClosed
	}
	c.mu.Lock()
	c.sent = append(c.sent, append([]byte(nil), f...))
	c.mu.Unlock()
	return nil
}

func (c *gateConn) Recv() ([]byte, error) { <-c.closed; return nil, transport.ErrClosed }
func (c *gateConn) Close() error          { c.once.Do(func() { close(c.closed) }); return nil }
func (c *gateConn) LocalAddr() string     { return "gate-local" }
func (c *gateConn) RemoteAddr() string    { return "gate-remote" }

func (c *gateConn) sentFrames() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.sent...)
}

// TestEgressShedOldestAndControlPriority drives the egress queue
// directly: data beyond the bound sheds oldest-first, the stall clock
// accumulates while saturated, and a control frame enqueued last still
// transmits before all queued data.
func TestEgressShedOldestAndControlPriority(t *testing.T) {
	conn := newGateConn()
	e := newEgress(conn, 4, 0, 0)
	base := time.Unix(1000, 0)
	frames := [][]byte{
		[]byte("d0"), []byte("d1"), []byte("d2"),
		[]byte("d3"), []byte("d4"), []byte("d5"),
	}
	for i, f := range frames[:5] {
		shed, stalled := e.enqueueData(f, base)
		wantShed := 0
		if i == 4 { // 5th frame overflows the bound of 4
			wantShed = 1
		}
		if shed != wantShed || stalled != 0 {
			t.Fatalf("frame %d: shed=%d stalled=%v", i, shed, stalled)
		}
	}
	// A later overflow reports how long the queue has been continuously
	// saturated.
	shed, stalled := e.enqueueData(frames[5], base.Add(time.Second))
	if shed != 1 || stalled != time.Second {
		t.Fatalf("6th frame: shed=%d stalled=%v", shed, stalled)
	}
	if !e.enqueueCtrl([]byte("c0")) {
		t.Fatal("control enqueue refused")
	}

	go e.run()
	for i := 0; i < 5; i++ { // 1 control + 4 surviving data frames
		conn.gate <- struct{}{}
	}
	waitFor(t, "egress drain", func() bool { return len(conn.sentFrames()) == 5 })
	sent := conn.sentFrames()
	want := []string{"c0", "d2", "d3", "d4", "d5"} // d0/d1 shed, control first
	for i, w := range want {
		if string(sent[i]) != w {
			t.Fatalf("send order %d = %q, want %q (all: %q)", i, sent[i], w, sent)
		}
	}
	e.beginClose()
	select {
	case <-conn.closed:
	case <-time.After(5 * time.Second):
		t.Fatal("writer did not close conn after beginClose")
	}
}

// TestEgressShedAll verifies eviction drops every queued data frame in
// one step.
func TestEgressShedAll(t *testing.T) {
	e := newEgress(newGateConn(), 8, 0, 0)
	now := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		e.enqueueData([]byte{byte(i)}, now)
	}
	if n := e.shedAll(); n != 5 {
		t.Fatalf("shedAll = %d, want 5", n)
	}
	if n := e.shedAll(); n != 0 {
		t.Fatalf("second shedAll = %d, want 0", n)
	}
}

// rawSubscriber dials the broker directly and subscribes without ever
// reading: the broker-side pipe fills and its egress queue saturates —
// the canonical slow consumer.
func rawSubscriber(t *testing.T, tr transport.Transport, addr, name, ts string) transport.Conn {
	t.Helper()
	conn, err := tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	hello := &control{Kind: ctrlHello, Name: name}
	if err := conn.Send(append([]byte{frameControl}, marshalControl(hello)...)); err != nil {
		t.Fatal(err)
	}
	sub := &control{Kind: ctrlSub, ID: 1, Topic: ts}
	if err := conn.Send(append([]byte{frameControl}, marshalControl(sub)...)); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestSlowConsumerEvictedAndHealthyIsolated floods a topic with one
// subscriber that never reads and one that does: the stalled peer is
// shed then evicted with a typed reason, its principal is quarantined,
// and the healthy subscriber keeps receiving throughout (no head-of-line
// blocking through the fan-out path).
func TestSlowConsumerEvictedAndHealthyIsolated(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{
		Name:                 "b0",
		EgressQueue:          16,
		SlowConsumerDeadline: 50 * time.Millisecond,
	})
	tp := topic.MustParse("/hol")

	stalled := rawSubscriber(t, tr, addr, "staller", tp.String())
	defer stalled.Close()

	healthy, err := Connect(tr, addr, "healthy")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	got := make(chan *message.Envelope, 8192)
	if err := healthy.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}

	pub, err := Connect(tr, addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && b.Snapshot().SlowConsumerEvictions == 0 {
		for i := 0; i < 100; i++ {
			if err := pub.Publish(message.New(message.TypeData, tp, "pub", []byte("flood"))); err != nil {
				t.Fatalf("publisher hit error while a sibling stalled: %v", err)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	s := b.Snapshot()
	if s.SlowConsumerEvictions == 0 {
		t.Fatal("stalled peer never evicted")
	}
	if s.EgressSheds == 0 {
		t.Fatal("no frames shed before eviction")
	}
	// The healthy subscriber was never blocked behind the stalled one.
	waitFor(t, "healthy deliveries", func() bool { return len(got) > 0 })

	// The stalled peer is eventually removed entirely (force-close after
	// the eviction grace) and a fresh delivery still works.
	waitFor(t, "stalled peer removal", func() bool { return b.PeerCount() == 2 })
	drainEnvelopes(got)
	_ = pub.Publish(message.New(message.TypeData, tp, "pub", []byte("after")))
	recvEnvelope(t, got, "post-eviction delivery")

	// The evicted principal is quarantined: a reconnect is refused with a
	// typed DISCONNECT as the first and only frame.
	recl, err := Connect(tr, addr, "staller")
	if err != nil {
		t.Fatal(err)
	}
	defer recl.Close()
	select {
	case <-recl.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("quarantined reconnect not dropped")
	}
	if r := recl.DisconnectReason(); r != ReasonQuarantined {
		t.Fatalf("DisconnectReason = %v, want quarantined", r)
	}
	if b.Snapshot().QuarantineRejects == 0 {
		t.Fatal("quarantine reject not counted")
	}
}

func drainEnvelopes(ch chan *message.Envelope) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// TestPublishRateThrottled verifies ingress admission control: a burst
// beyond the token bucket is rejected before routing, counted, and does
// not by itself evict the client.
func TestPublishRateThrottled(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{
		PublishRate:  5,
		PublishBurst: 2,
	})
	pub, err := Connect(tr, addr, "bursty")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	tp := topic.MustParse("/burst")
	for i := 0; i < 30; i++ {
		_ = pub.Publish(message.New(message.TypeData, tp, "bursty", nil))
	}
	waitFor(t, "throttles", func() bool { return b.Snapshot().Throttled >= 20 })
	s := b.Snapshot()
	if s.Published > 10 {
		t.Fatalf("flood was routed: Published = %d", s.Published)
	}
	if s.Disconnects != 0 {
		t.Fatalf("burst alone evicted the client: %+v", s)
	}
	select {
	case <-pub.Done():
		t.Fatal("client dropped for a mere burst")
	default:
	}
}

// TestSustainedFloodEscalatesToDoSEviction verifies throttle violations
// accumulate (at their reduced weight) into a DoS eviction with the
// typed reason delivered to the client.
func TestSustainedFloodEscalatesToDoSEviction(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{
		PublishRate:    1,
		PublishBurst:   1,
		ViolationLimit: 2, // 16 throttles at weight 0.125
	})
	pub, err := Connect(tr, addr, "flooder")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	tp := topic.MustParse("/flood")
	for i := 0; i < 200; i++ {
		if err := pub.Publish(message.New(message.TypeData, tp, "flooder", nil)); err != nil {
			break // already torn down
		}
	}
	select {
	case <-pub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("sustained flooder never evicted")
	}
	waitFor(t, "dos disconnect", func() bool { return b.Snapshot().Disconnects >= 1 })
	if r := pub.DisconnectReason(); r != ReasonDoS {
		t.Fatalf("DisconnectReason = %v, want dos", r)
	}
}

// TestViolationScoreDecay is the regression for the seed's monotonic
// violation counter: a sub-threshold trickle of violations spread over
// fake-clock hours decays away instead of accumulating into an unjust
// disconnect.
func TestViolationScoreDecay(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_000_000, 0))
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{
		ViolationLimit: 3,
		Clock:          fake,
	})
	c, err := Connect(tr, addr, "sporadic")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 20 violations — far past the limit of 3 if they accumulated — one
	// per fake-clock hour.
	for i := 0; i < 20; i++ {
		env := message.New(message.TypeData, topic.MustParse("/x"), "someone-else", nil)
		if err := c.Publish(env); err != nil {
			t.Fatalf("violation %d: connection already dead: %v", i, err)
		}
		waitFor(t, "violation recorded", func() bool { return b.Snapshot().Violations >= uint64(i + 1) })
		fake.Advance(time.Hour)
	}
	if d := b.Snapshot().Disconnects; d != 0 {
		t.Fatalf("trickle of sporadic violations caused %d disconnects", d)
	}
	select {
	case <-c.Done():
		t.Fatal("long-lived peer with sporadic violations was dropped")
	default:
	}
}

// TestQuarantineExpires verifies a banned principal is admitted again
// once the quarantine window lapses on the (fake) clock.
func TestQuarantineExpires(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_000_000, 0))
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{Clock: fake})
	b.Banish("offender", time.Minute)

	refused, err := Connect(tr, addr, "offender")
	if err != nil {
		t.Fatal(err)
	}
	defer refused.Close()
	select {
	case <-refused.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("quarantined connect not refused")
	}
	if r := refused.DisconnectReason(); r != ReasonQuarantined {
		t.Fatalf("DisconnectReason = %v, want quarantined", r)
	}

	fake.Advance(2 * time.Minute)
	again, err := Connect(tr, addr, "offender")
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if err := again.Subscribe(topic.MustParse("/back"), func(*message.Envelope) {}); err != nil {
		t.Fatalf("post-quarantine subscribe: %v", err)
	}
}

// TestBanishEvictsConnectedPeer verifies the administrative ban evicts a
// live connection with the typed reason.
func TestBanishEvictsConnectedPeer(t *testing.T) {
	tr := transport.NewInproc()
	b, addr := newTestBroker(t, tr, Config{})
	c, err := Connect(tr, addr, "persona-non-grata")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "peer registration", func() bool { return b.PeerCount() == 1 })
	b.Banish("persona-non-grata", time.Minute)
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("banished peer not dropped")
	}
	if r := c.DisconnectReason(); r != ReasonQuarantined {
		t.Fatalf("DisconnectReason = %v, want quarantined", r)
	}
}

// stallTransport wraps a transport so that dialed connections pass their
// first sends (the handshake) through and then block forever — a dead
// TCP peer from the writer's perspective.
type stallTransport struct {
	transport.Transport
	passSends int
}

func (s *stallTransport) Dial(addr string) (transport.Conn, error) {
	conn, err := s.Transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &stallConn{Conn: conn, pass: s.passSends, stalled: make(chan struct{})}, nil
}

type stallConn struct {
	transport.Conn
	mu      sync.Mutex
	pass    int
	stalled chan struct{}
	once    sync.Once
}

func (c *stallConn) Send(f []byte) error {
	c.mu.Lock()
	ok := c.pass > 0
	if ok {
		c.pass--
	}
	c.mu.Unlock()
	if ok {
		return c.Conn.Send(f)
	}
	<-c.stalled
	return transport.ErrClosed
}

func (c *stallConn) Close() error {
	c.once.Do(func() { close(c.stalled) })
	return c.Conn.Close()
}

// TestClientWriteDeadline verifies Publish against a stalled connection
// returns ErrWriteTimeout within the configured deadline and tears the
// client down so reconnect logic can take over, instead of blocking
// forever.
func TestClientWriteDeadline(t *testing.T) {
	tr := transport.NewInproc()
	_, addr := newTestBroker(t, tr, Config{})
	stall := &stallTransport{Transport: tr, passSends: 1} // hello passes
	c, err := ConnectWith(stall, addr, "writer", ConnectOpts{WriteTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Publish(message.New(message.TypeData, topic.MustParse("/w"), "writer", []byte("x")))
	if !errors.Is(err, ErrWriteTimeout) {
		t.Fatalf("Publish on stalled conn: err=%v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("write deadline took %v", el)
	}
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client not torn down after write timeout")
	}
	if err := c.Publish(message.New(message.TypeData, topic.MustParse("/w"), "writer", nil)); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("publish after timeout teardown: %v", err)
	}
}

// TestOverloadMetricsExposed asserts the overload counters and gauge are
// visible through the prometheus-style exposition (the same rendering
// /metrics serves).
func TestOverloadMetricsExposed(t *testing.T) {
	// Make sure each metric has been touched at least once regardless of
	// test ordering.
	mEgressSheds.Add(0)
	mSlowEvictions.Add(0)
	mThrottled.Add(0)
	mQuarantineRejct.Add(0)
	mEgressDepth.Set(mEgressDepth.Value())
	var buf bytes.Buffer
	obs.Default.WriteText(&buf)
	out := buf.String()
	for _, name := range []string{
		"broker_egress_queue_depth",
		"broker_egress_sheds_total",
		"broker_slow_consumer_evictions_total",
		"broker_publish_throttled_total",
		"broker_quarantine_rejects_total",
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("metric %s missing from exposition:\n%s", name, out)
		}
	}
}
