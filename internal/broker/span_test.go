package broker

import (
	"testing"
	"time"

	"entitytrace/internal/message"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// TestSpanAccumulatesAcrossLinks publishes a span'd envelope through a
// three-broker chain and checks that each forwarding broker stamped a
// hop, so the full path publisher→b2→b1→subscriber reconstructs at the
// receiving end.
func TestSpanAccumulatesAcrossLinks(t *testing.T) {
	tr := transport.NewInproc()
	_, addrs := chain(t, tr, 3)

	sub, err := Connect(tr, addrs[0], "subscriber")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Connect(tr, addrs[2], "publisher")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	got := make(chan *message.Envelope, 1)
	tp := topic.MustParse("/span/path")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	// Subscription propagation across both links.
	waitFor(t, "subscription propagation", func() bool {
		env := message.New(message.TypeData, tp, "publisher", []byte("probe"))
		env.StartSpan()
		env.AddHop("publisher", time.Now())
		if err := pub.Publish(env); err != nil {
			t.Fatal(err)
		}
		select {
		case e := <-got:
			got <- e
			return true
		case <-time.After(50 * time.Millisecond):
			return false
		}
	})

	e := recvEnvelope(t, got, "span'd envelope")
	if e.Span == nil {
		t.Fatal("span lost crossing broker links")
	}
	hops := make([]string, 0, len(e.Span.Hops))
	for _, h := range e.Span.Hops {
		hops = append(hops, h.Node)
	}
	// Originator hop plus one stamp per broker on the path: b2 and b1
	// stamp when forwarding across links, and b0 stamps when forwarding
	// to the subscribing client connection.
	want := []string{"publisher", "b2", "b1", "b0"}
	if len(hops) != len(want) {
		t.Fatalf("hops = %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", hops, want)
		}
	}
	for i := 1; i < len(e.Span.Hops); i++ {
		if e.Span.Hops[i].AtNanos < e.Span.Hops[i-1].AtNanos {
			t.Fatalf("hop timestamps not monotonic under one clock: %v", e.Span.Hops)
		}
	}
	if lat := e.Span.HopLatencies(); len(lat) != 3 {
		t.Fatalf("latencies = %v, want 3 deltas", lat)
	}
}

// TestPlainEnvelopeForwardsWithoutSpan checks the pay-as-you-go contract:
// envelopes that never opted in cross links without growing a span.
func TestPlainEnvelopeForwardsWithoutSpan(t *testing.T) {
	tr := transport.NewInproc()
	_, addrs := chain(t, tr, 2)

	sub, err := Connect(tr, addrs[0], "subscriber")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Connect(tr, addrs[1], "publisher")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	got := make(chan *message.Envelope, 1)
	tp := topic.MustParse("/span/plain")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription propagation", func() bool {
		if err := pub.Publish(message.New(message.TypeData, tp, "publisher", []byte("x"))); err != nil {
			t.Fatal(err)
		}
		select {
		case e := <-got:
			got <- e
			return true
		case <-time.After(50 * time.Millisecond):
			return false
		}
	})
	e := recvEnvelope(t, got, "plain envelope")
	if e.Span != nil {
		t.Fatalf("plain envelope grew a span in transit: %+v", e.Span)
	}
}
