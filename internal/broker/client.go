package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// Client errors.
var (
	// ErrSubscribeDenied reports a subscription rejected by the broker's
	// authorization checks.
	ErrSubscribeDenied = errors.New("broker: subscription denied")
	// ErrReplayDenied reports a replay request the broker refused: no
	// durable log, a non-durable topic, or no active subscription.
	ErrReplayDenied = errors.New("broker: replay denied")
	// ErrClientClosed reports use of a closed client.
	ErrClientClosed = errors.New("broker: client closed")
	// ErrWriteTimeout reports a frame write that stayed blocked past the
	// client's write timeout — the broker (or the pipe to it) stopped
	// reading. The connection is torn down so Done fires and reconnect
	// logic can take over.
	ErrWriteTimeout = errors.New("broker: write timed out")
)

// subscribeTimeout bounds the wait for a subscription acknowledgement.
const subscribeTimeout = 10 * time.Second

// DefaultWriteTimeout bounds each frame write to the broker when
// ConnectOpts.WriteTimeout is zero. Without it a publish into a dead TCP
// peer blocks forever.
const DefaultWriteTimeout = 10 * time.Second

// ConnectOpts tunes a client connection.
type ConnectOpts struct {
	// WriteTimeout bounds each outbound frame write. Zero selects
	// DefaultWriteTimeout; negative disables the deadline entirely.
	WriteTimeout time.Duration
}

// Handler consumes envelopes delivered to a client subscription.
type Handler func(*message.Envelope)

// DurableHandler consumes offset-annotated envelopes served by a
// replay pump (frameDurable). The offset is the record's position in
// the broker's durable topic log: strictly increasing within one
// uninterrupted stream, repeating only on redelivery — dedupe on it,
// process, then Ack it (PROTOCOL.md §3.8).
type DurableHandler func(offset uint64, env *message.Envelope)

// Client is an entity's connection to its broker: the funnel through
// which it publishes messages into the network and receives messages for
// its subscriptions (§2: "an entity uses this broker, which it is
// connected to, to funnel messages to the broker network").
type Client struct {
	entity ident.EntityID
	conn   transport.Conn

	mu       sync.Mutex
	handlers map[string][]Handler // topic string -> handlers
	wild     []wildHandler
	durable  map[string]DurableHandler // topic string -> replay handler
	pending  map[uint64]chan *control
	closed   bool

	defaultHandler atomic.Value // Handler
	nextID         atomic.Uint64
	// reason records the typed DISCONNECT cause announced by the broker
	// before it dropped the connection (zero = ReasonNone).
	reason       atomic.Uint64
	writeTimeout time.Duration
	done         chan struct{}
}

type wildHandler struct {
	tp topic.Topic
	h  Handler
}

// Connect dials a broker and performs the client handshake with default
// options.
func Connect(tr transport.Transport, addr string, entity ident.EntityID) (*Client, error) {
	return ConnectWith(tr, addr, entity, ConnectOpts{})
}

// ConnectWith dials a broker with explicit options.
func ConnectWith(tr transport.Transport, addr string, entity ident.EntityID, opts ConnectOpts) (*Client, error) {
	if err := entity.Validate(); err != nil {
		return nil, err
	}
	if opts.WriteTimeout == 0 {
		opts.WriteTimeout = DefaultWriteTimeout
	}
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	hello := &control{Kind: ctrlHello, IsBroker: false, Name: string(entity)}
	if err := conn.Send(append([]byte{frameControl}, marshalControl(hello)...)); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{
		entity:       entity,
		conn:         conn,
		handlers:     make(map[string][]Handler),
		pending:      make(map[uint64]chan *control),
		writeTimeout: opts.WriteTimeout,
		done:         make(chan struct{}),
	}
	go c.recvLoop()
	return c, nil
}

// Entity returns the client's entity identifier.
func (c *Client) Entity() ident.EntityID { return c.entity }

// OnUnhandled installs a handler for envelopes that match none of the
// subscription handlers (e.g. replies on topics subscribed before a
// handler change).
func (c *Client) OnUnhandled(h Handler) { c.defaultHandler.Store(h) }

// recvLoop pumps frames from the broker.
func (c *Client) recvLoop() {
	defer c.shutdown()
	for {
		frame, err := c.conn.Recv()
		if err != nil {
			return
		}
		if len(frame) < 1 {
			continue
		}
		switch frame[0] {
		case frameControl:
			ctl, err := parseControl(frame[1:])
			if err != nil {
				continue
			}
			if ctl.Kind == ctrlDisconnect {
				c.reason.Store(uint64(ctl.ID))
				continue
			}
			if ctl.Kind == ctrlAck || ctl.Kind == ctrlDeny {
				c.mu.Lock()
				ch := c.pending[ctl.ID]
				delete(c.pending, ctl.ID)
				c.mu.Unlock()
				if ch != nil {
					ch <- ctl
				}
			}
		case frameEnvelope:
			env, err := message.UnmarshalShared(frame[1:])
			if err != nil {
				continue
			}
			c.dispatch(env)
		case frameDurable:
			// An offset-annotated replay/live record from a pump
			// (PROTOCOL.md §3.8). A registered durable handler gets the
			// offset; otherwise the envelope degrades to plain dispatch.
			offset, inner, err := parseDurable(frame[1:])
			if err != nil {
				continue
			}
			env, err := message.UnmarshalShared(inner[1:])
			if err != nil {
				continue
			}
			ts := env.Topic.String()
			c.mu.Lock()
			dh := c.durable[ts]
			c.mu.Unlock()
			if dh != nil {
				dh(offset, env)
			} else {
				c.dispatch(env)
			}
		case frameBatch:
			// A coalesced egress drain from the broker (PROTOCOL.md §3.7).
			frames, err := parseBatch(frame[1:])
			if err != nil {
				continue
			}
			for _, f := range frames {
				env, err := message.UnmarshalShared(f[1:])
				if err != nil {
					continue
				}
				c.dispatch(env)
			}
		}
	}
}

// dispatch routes an incoming envelope to matching handlers.
func (c *Client) dispatch(env *message.Envelope) {
	ts := env.Topic.String()
	c.mu.Lock()
	hs := append([]Handler(nil), c.handlers[ts]...)
	for _, wh := range c.wild {
		if env.Topic.Matches(wh.tp) {
			hs = append(hs, wh.h)
		}
	}
	c.mu.Unlock()
	if len(hs) == 0 {
		if dh, ok := c.defaultHandler.Load().(Handler); ok && dh != nil {
			dh(env)
		}
		return
	}
	for _, h := range hs {
		h(env)
	}
}

// Subscribe registers interest in a topic and waits for the broker's
// acknowledgement, so a successful return means subsequent publishes on
// the topic (at this broker) will be delivered.
func (c *Client) Subscribe(tp topic.Topic, h Handler) error {
	if tp.IsZero() {
		return fmt.Errorf("broker: subscribe to zero topic")
	}
	id := c.nextID.Add(1)
	ch := make(chan *control, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()

	sub := &control{Kind: ctrlSub, ID: id, Topic: tp.String()}
	if err := c.sendTimed(append([]byte{frameControl}, marshalControl(sub)...)); err != nil {
		return err
	}
	select {
	case ctl := <-ch:
		if ctl == nil {
			return ErrClientClosed
		}
		if ctl.Kind == ctrlDeny {
			return fmt.Errorf("%w: %s", ErrSubscribeDenied, ctl.Reason)
		}
	case <-c.done:
		return ErrClientClosed
	case <-time.After(subscribeTimeout):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("broker: subscribe to %s timed out", tp)
	}
	c.mu.Lock()
	ts := tp.String()
	c.handlers[ts] = append(c.handlers[ts], h)
	if tp.IsWildcard() {
		c.wild = append(c.wild, wildHandler{tp: tp, h: h})
	}
	c.mu.Unlock()
	return nil
}

// Replay asks the broker to serve the (already subscribed) durable
// topic from its log starting after since — the highest offset this
// consumer has processed, 0 for everything retained — and registers h
// for the offset-annotated stream. From the broker's ack onward the
// topic is served exclusively by its replay pump: catch-up records
// first, then live appends, in log order. Call Ack as records are
// processed; un-acked records are redelivered with backoff. A deny
// (no durable log at this broker, topic not persisted) leaves the
// plain live subscription in place.
func (c *Client) Replay(tp topic.Topic, since uint64, h DurableHandler) error {
	if tp.IsZero() {
		return fmt.Errorf("broker: replay of zero topic")
	}
	ts := tp.String()
	id := c.nextID.Add(1)
	ch := make(chan *control, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	// Register before sending: the pump's first records can arrive
	// ahead of the ack.
	if c.durable == nil {
		c.durable = make(map[string]DurableHandler)
	}
	c.durable[ts] = h
	c.pending[id] = ch
	c.mu.Unlock()

	replay := &control{Kind: ctrlReplay, ID: id, Topic: ts, Cursor: since}
	if err := c.sendTimed(append([]byte{frameControl}, marshalControl(replay)...)); err != nil {
		c.dropDurable(ts)
		return err
	}
	select {
	case ctl := <-ch:
		if ctl == nil {
			c.dropDurable(ts)
			return ErrClientClosed
		}
		if ctl.Kind == ctrlDeny {
			c.dropDurable(ts)
			return fmt.Errorf("%w: %s", ErrReplayDenied, ctl.Reason)
		}
	case <-c.done:
		c.dropDurable(ts)
		return ErrClientClosed
	case <-time.After(subscribeTimeout):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.dropDurable(ts)
		return fmt.Errorf("broker: replay of %s timed out", tp)
	}
	return nil
}

func (c *Client) dropDurable(ts string) {
	c.mu.Lock()
	delete(c.durable, ts)
	c.mu.Unlock()
}

// Ack advances this client's replay cursor on tp: offset is the
// highest contiguously processed record. Fire-and-forget — the broker
// applies it monotonically, so a lost or reordered ack only delays
// cursor progress (and at worst causes an offset-deduped redelivery).
func (c *Client) Ack(tp topic.Topic, offset uint64) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClientClosed
	}
	ack := &control{Kind: ctrlAckCur, Topic: tp.String(), Cursor: offset}
	return c.sendTimed(append([]byte{frameControl}, marshalControl(ack)...))
}

// Unsubscribe withdraws interest in a topic and removes its handlers.
func (c *Client) Unsubscribe(tp topic.Topic) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	ts := tp.String()
	delete(c.handlers, ts)
	delete(c.durable, ts)
	if tp.IsWildcard() {
		kept := c.wild[:0]
		for _, wh := range c.wild {
			if !wh.tp.Equal(tp) {
				kept = append(kept, wh)
			}
		}
		c.wild = kept
	}
	c.mu.Unlock()
	unsub := &control{Kind: ctrlUnsub, ID: c.nextID.Add(1), Topic: ts}
	return c.sendTimed(append([]byte{frameControl}, marshalControl(unsub)...))
}

// Publish sends an envelope into the broker network. The envelope's
// Source must be the client's entity (brokers drop spoofed sources). The
// write is bounded by the connection's write timeout: if the broker has
// stopped reading, Publish returns ErrWriteTimeout and tears the
// connection down rather than blocking forever.
func (c *Client) Publish(env *message.Envelope) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClientClosed
	}
	return c.sendTimed(append([]byte{frameEnvelope}, env.Marshal()...))
}

// PublishBatch sends several envelopes in one frameBatch write
// (PROTOCOL.md §3.7): the publisher-side counterpart of egress drain
// coalescing, amortizing the per-frame transport cost for producers
// that emit bursts. The broker ingests the envelopes in order with the
// same admission control the single-envelope path applies. An empty
// slice is a no-op; a single envelope degrades to Publish.
func (c *Client) PublishBatch(envs []*message.Envelope) error {
	switch len(envs) {
	case 0:
		return nil
	case 1:
		return c.Publish(envs[0])
	}
	if len(envs) > maxBatchFrames {
		return fmt.Errorf("broker: batch of %d exceeds %d frames", len(envs), maxBatchFrames)
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClientClosed
	}
	size := 1
	for _, env := range envs {
		size += 4 + 1 + env.WireSize()
	}
	frames := make([][]byte, len(envs))
	for i, env := range envs {
		f := make([]byte, 1, 1+env.WireSize())
		f[0] = frameEnvelope
		frames[i] = env.AppendWire(f, env.TTL)
	}
	return c.sendTimed(appendBatch(make([]byte, 0, size), frames))
}

// sendTimed writes one frame under the write deadline. On timeout the
// client shuts down: closing the connection both unblocks the stuck
// writer goroutine and fires Done so reconnect machinery takes over — a
// write that cannot complete within the deadline means the broker-side
// pipe is dead or wedged, and no later write would fare better.
func (c *Client) sendTimed(frame []byte) error {
	if c.writeTimeout < 0 {
		return c.conn.Send(frame)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- c.conn.Send(frame) }()
	t := time.NewTimer(c.writeTimeout)
	defer t.Stop()
	select {
	case err := <-errCh:
		return err
	case <-t.C:
		c.shutdown()
		return ErrWriteTimeout
	}
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	bye := &control{Kind: ctrlBye}
	_ = c.sendTimed(append([]byte{frameControl}, marshalControl(bye)...))
	err := c.conn.Close()
	c.shutdown()
	return err
}

// shutdown marks the client closed and releases waiters.
func (c *Client) shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	close(c.done)
	c.conn.Close()
}

// Done is closed when the connection drops; entities use it to detect
// broker failure.
func (c *Client) Done() <-chan struct{} { return c.done }

// DisconnectReason returns the typed cause the broker announced before
// terminating the connection, or ReasonNone when the connection dropped
// without one (network failure, orderly close, broker crash). Reconnect
// logic backs off harder when Evicted() is true: the broker threw this
// client out deliberately, so hot-looping against it only feeds the
// quarantine.
func (c *Client) DisconnectReason() DisconnectReason {
	return DisconnectReason(c.reason.Load())
}
