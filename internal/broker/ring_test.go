package broker

import (
	"testing"

	"entitytrace/internal/ident"
)

// TestUUIDRingEviction drives the dedupe ring through fill, wrap and
// steady-state overwrite, checking FIFO order of the displaced IDs.
func TestUUIDRingEviction(t *testing.T) {
	const capacity = 4
	r := newUUIDRing(capacity)
	if r.cap() != capacity {
		t.Fatalf("cap = %d, want %d", r.cap(), capacity)
	}
	ids := make([]ident.UUID, 3*capacity)
	for i := range ids {
		ids[i] = ident.NewUUID()
	}
	// Filling must not evict.
	for i := 0; i < capacity; i++ {
		if old, evicted := r.push(ids[i]); evicted {
			t.Fatalf("push %d evicted %v before ring was full", i, old)
		}
		if r.len() != i+1 {
			t.Fatalf("len = %d after %d pushes", r.len(), i+1)
		}
	}
	// Every further push displaces the oldest ID, in insertion order.
	for i := capacity; i < len(ids); i++ {
		old, evicted := r.push(ids[i])
		if !evicted {
			t.Fatalf("push %d did not evict with a full ring", i)
		}
		if want := ids[i-capacity]; old != want {
			t.Fatalf("push %d evicted %v, want %v (FIFO order)", i, old, want)
		}
		if r.len() != capacity {
			t.Fatalf("len = %d, want %d (fixed at capacity)", r.len(), capacity)
		}
	}
}

// TestUUIDRingMinCapacity verifies the degenerate capacity is clamped so
// a misconfigured window cannot panic the dedupe path.
func TestUUIDRingMinCapacity(t *testing.T) {
	r := newUUIDRing(0)
	if r.cap() != 1 {
		t.Fatalf("cap = %d, want clamp to 1", r.cap())
	}
	a, b := ident.NewUUID(), ident.NewUUID()
	if _, evicted := r.push(a); evicted {
		t.Fatal("first push evicted")
	}
	old, evicted := r.push(b)
	if !evicted || old != a {
		t.Fatalf("second push: evicted=%v old=%v, want eviction of %v", evicted, old, a)
	}
}

// TestFirstSightingWindow exercises the broker-level dedupe semantics on
// the ring: IDs inside the window are duplicates, IDs displaced out of
// the window are forgotten and admitted again.
func TestFirstSightingWindow(t *testing.T) {
	b := New(Config{Name: "ring-test", DedupeWindow: 3})
	defer b.Close()
	ids := []ident.UUID{ident.NewUUID(), ident.NewUUID(), ident.NewUUID(), ident.NewUUID()}
	for i, id := range ids[:3] {
		if !b.firstSighting(id) {
			t.Fatalf("id %d reported as duplicate on first sighting", i)
		}
	}
	for i, id := range ids[:3] {
		if b.firstSighting(id) {
			t.Fatalf("id %d not recognized as duplicate inside window", i)
		}
	}
	// A fourth ID displaces ids[0]; the displaced ID is new again (and
	// its re-admission displaces ids[1], leaving ids[2] in the window).
	if !b.firstSighting(ids[3]) {
		t.Fatal("fresh id reported as duplicate")
	}
	if !b.firstSighting(ids[0]) {
		t.Fatal("displaced id still reported as duplicate")
	}
	if b.firstSighting(ids[2]) {
		t.Fatal("id still inside window admitted twice")
	}
}
