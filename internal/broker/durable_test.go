package broker

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"entitytrace/internal/backoff"
	"entitytrace/internal/durable"
	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// newDurableBroker starts a broker with a disk-backed durable store and
// fast redelivery pacing for the tests that provoke rewinds.
func newDurableBroker(t *testing.T, tr transport.Transport) (*Broker, string, *durable.Store) {
	t.Helper()
	store, err := durable.Open(t.TempDir(), durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	b, addr := newTestBroker(t, tr, Config{
		Name:    "durable-broker",
		Durable: store,
		Redeliver: backoff.Config{
			Initial: 30 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: 0,
		},
	})
	t.Cleanup(store.Close)
	return b, addr, store
}

func traceEnv(tp topic.Topic, n byte) *message.Envelope {
	return message.New(message.TraceAllsWell, tp, "traced-entity", bytes.Repeat([]byte{n}, 16))
}

func TestDurablePublishPersistsTraceTopics(t *testing.T) {
	tr := transport.NewInproc()
	b, _, store := newDurableBroker(t, tr)
	durableTopic := topic.AllUpdates(ident.NewUUID())
	plain := topic.MustParse("/plain/topic")
	for i := 0; i < 3; i++ {
		if err := b.Publish(traceEnv(durableTopic, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Publish(message.New(message.TypeData, plain, "traced-entity", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if h := store.Head(durableTopic.String()); h != 3 {
		t.Fatalf("durable head = %d, want 3", h)
	}
	if lg := store.Get(plain.String()); lg != nil {
		t.Fatal("non-trace topic was persisted")
	}
	// The persisted payload is the envelope wire form.
	recs, err := store.Get(durableTopic.String()).ReadFrom(1, 10, 1<<20)
	if err != nil || len(recs) != 3 {
		t.Fatalf("read persisted: %d records, err %v", len(recs), err)
	}
	env, err := message.Unmarshal(recs[0].Payload)
	if err != nil {
		t.Fatalf("persisted payload does not unmarshal: %v", err)
	}
	if env.Type != message.TraceAllsWell || env.Topic.String() != durableTopic.String() {
		t.Fatalf("persisted envelope = %v on %s", env.Type, env.Topic)
	}
}

// durableSink collects offset-annotated deliveries.
type durableSink struct {
	mu      sync.Mutex
	offsets []uint64
	envs    []*message.Envelope
	plain   int
}

func (s *durableSink) durable(offset uint64, env *message.Envelope) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offsets = append(s.offsets, offset)
	s.envs = append(s.envs, env)
}

func (s *durableSink) live(*message.Envelope) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plain++
}

func (s *durableSink) snapshot() ([]uint64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.offsets...), s.plain
}

func TestReplayCatchUpThenLive(t *testing.T) {
	tr := transport.NewInproc()
	b, addr, _ := newDurableBroker(t, tr)
	tp := topic.StateTransitions(ident.NewUUID())

	// Three records persisted before the consumer ever connects.
	for i := 0; i < 3; i++ {
		if err := b.Publish(traceEnv(tp, byte(i))); err != nil {
			t.Fatal(err)
		}
	}

	c, err := Connect(tr, addr, "late-tracker")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sink := &durableSink{}
	if err := c.Subscribe(tp, sink.live); err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(tp, 0, sink.durable); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "catch-up replay", func() bool {
		offs, _ := sink.snapshot()
		return len(offs) >= 3
	})
	for i := 1; i <= 3; i++ {
		if err := c.Ack(tp, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Live publishes now flow through the same pump, offset-annotated.
	for i := 3; i < 6; i++ {
		if err := b.Publish(traceEnv(tp, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "live records via pump", func() bool {
		offs, _ := sink.snapshot()
		return len(offs) >= 6
	})
	for i := 4; i <= 6; i++ {
		if err := c.Ack(tp, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	offs, plain := sink.snapshot()
	for i, off := range offs[:6] {
		if off != uint64(i+1) {
			t.Fatalf("offsets = %v, want 1..6 in order", offs)
		}
	}
	if plain != 0 {
		t.Fatalf("cursored topic delivered %d plain envelopes (want 0: pump is the only source)", plain)
	}
}

func TestReplayResumeFromCursor(t *testing.T) {
	tr := transport.NewInproc()
	b, addr, _ := newDurableBroker(t, tr)
	tp := topic.Load(ident.NewUUID())
	for i := 0; i < 5; i++ {
		if err := b.Publish(traceEnv(tp, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Connect(tr, addr, "resuming-tracker")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sink := &durableSink{}
	if err := c.Subscribe(tp, sink.live); err != nil {
		t.Fatal(err)
	}
	// Resume after offset 3: only 4 and 5 replay.
	if err := c.Replay(tp, 3, sink.durable); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "resumed replay", func() bool {
		offs, _ := sink.snapshot()
		return len(offs) >= 2
	})
	offs, _ := sink.snapshot()
	if offs[0] != 4 || offs[1] != 5 {
		t.Fatalf("resumed offsets = %v, want [4 5]", offs)
	}
}

func TestRedeliveryOnMissingAck(t *testing.T) {
	tr := transport.NewInproc()
	b, addr, _ := newDurableBroker(t, tr)
	tp := topic.ChangeNotifications(ident.NewUUID())
	if err := b.Publish(traceEnv(tp, 1)); err != nil {
		t.Fatal(err)
	}
	c, err := Connect(tr, addr, "silent-tracker")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sink := &durableSink{}
	if err := c.Subscribe(tp, sink.live); err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(tp, 0, sink.durable); err != nil {
		t.Fatal(err)
	}
	// Never ack: the pump must rewind and retransmit offset 1.
	waitFor(t, "redelivery of unacked record", func() bool {
		offs, _ := sink.snapshot()
		return len(offs) >= 3
	})
	offs, _ := sink.snapshot()
	for _, off := range offs {
		if off != 1 {
			t.Fatalf("redelivered offsets = %v, want all 1", offs)
		}
	}
	if b.Snapshot().Redeliveries == 0 {
		t.Fatal("stats show no redeliveries")
	}
	// Acking stops the retransmissions.
	if err := c.Ack(tp, 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	before, _ := sink.snapshot()
	time.Sleep(250 * time.Millisecond)
	after, _ := sink.snapshot()
	if len(after) != len(before) {
		t.Fatalf("redelivery continued after ack: %d -> %d", len(before), len(after))
	}
}

func TestReplayDenials(t *testing.T) {
	tr := transport.NewInproc()
	tpDurable := topic.AllUpdates(ident.NewUUID())

	// No durable store at the broker.
	_, addrPlain := newTestBroker(t, tr, Config{Name: "no-store"})
	c1, err := Connect(tr, addrPlain, "tracker-a")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Subscribe(tpDurable, func(*message.Envelope) {}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Replay(tpDurable, 0, func(uint64, *message.Envelope) {}); !errors.Is(err, ErrReplayDenied) {
		t.Fatalf("replay without store: %v, want ErrReplayDenied", err)
	}

	_, addr, _ := newDurableBroker(t, tr)
	c2, err := Connect(tr, addr, "tracker-b")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Replay without a subscription.
	if err := c2.Replay(tpDurable, 0, func(uint64, *message.Envelope) {}); !errors.Is(err, ErrReplayDenied) {
		t.Fatalf("replay without subscription: %v, want ErrReplayDenied", err)
	}
	// Replay of a non-durable topic.
	plain := topic.MustParse("/not/durable")
	if err := c2.Subscribe(plain, func(*message.Envelope) {}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Replay(plain, 0, func(uint64, *message.Envelope) {}); !errors.Is(err, ErrReplayDenied) {
		t.Fatalf("replay of non-durable topic: %v, want ErrReplayDenied", err)
	}
}

func TestReplayCursorDroppedOnUnsubscribe(t *testing.T) {
	tr := transport.NewInproc()
	b, addr, _ := newDurableBroker(t, tr)
	tp := topic.AllUpdates(ident.NewUUID())
	c, err := Connect(tr, addr, "fickle-tracker")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sink := &durableSink{}
	if err := c.Subscribe(tp, sink.live); err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(tp, 0, sink.durable); err != nil {
		t.Fatal(err)
	}
	var pump *replayCursor
	waitFor(t, "cursor installed", func() bool {
		b.mu.RLock()
		defer b.mu.RUnlock()
		for p := range b.peers {
			if rc := p.cursorFor(tp.String()); rc != nil {
				pump = rc
				return true
			}
		}
		return false
	})
	if err := c.Unsubscribe(tp); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pump stopped on unsubscribe", func() bool {
		select {
		case <-pump.stop:
			return true
		default:
			return false
		}
	})
}

func TestPersistablePredicateOverride(t *testing.T) {
	tr := transport.NewInproc()
	store, err := durable.Open(t.TempDir(), durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	custom := topic.MustParse("/custom/persisted")
	b, _ := newTestBroker(t, tr, Config{
		Name:    "custom-persist",
		Durable: store,
		DurablePersist: func(tp topic.Topic) bool {
			return tp.String() == custom.String()
		},
	})
	if err := b.Publish(message.New(message.TypeData, custom, "e", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(traceEnv(topic.AllUpdates(ident.NewUUID()), 1)); err != nil {
		t.Fatal(err)
	}
	if store.Head(custom.String()) != 1 {
		t.Fatal("override predicate did not persist the custom topic")
	}
	if got := len(store.Topics()); got != 1 {
		t.Fatalf("store has %d topics, want 1 (override replaces default predicate)", got)
	}
}

// FuzzReplayFrame drives the durable-frame and cursor-bearing control
// parsers with arbitrary bytes: no panics, no over-reads, and valid
// frames must round-trip.
func FuzzReplayFrame(f *testing.F) {
	env := message.New(message.TraceAllsWell, topic.MustParse("/a/b"), "e", []byte("seed"))
	envFrame := append([]byte{frameEnvelope}, env.Marshal()...)
	f.Add(appendDurable(nil, 7, envFrame))
	f.Add(appendDurable(nil, 0, []byte{frameEnvelope}))
	f.Add(marshalControl(&control{Kind: ctrlReplay, ID: 3, Topic: "/a/b", Cursor: 42}))
	f.Add(marshalControl(&control{Kind: ctrlAckCur, Topic: "/a/b", Cursor: 9}))
	f.Add(marshalControl(&control{Kind: ctrlSub, ID: 1, Topic: "/a/b"}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if offset, inner, err := parseDurable(data); err == nil {
			if got := appendDurable(nil, offset, inner); !bytes.Equal(got[1:], data) {
				t.Fatal("durable frame round trip mismatch")
			}
		}
		if c, err := parseControl(data); err == nil {
			// Semantic round trip: the IsBroker byte is canonicalized to
			// 0/1 on marshal, so compare parsed structs, not raw bytes.
			c2, err := parseControl(marshalControl(c))
			if err != nil || *c2 != *c {
				t.Fatalf("control round trip mismatch: kind %d (%v)", c.Kind, err)
			}
		}
	})
}
