package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"entitytrace/internal/backoff"
	"entitytrace/internal/clock"
	"entitytrace/internal/durable"
	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/obs"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// Process-wide routing counters, aggregated across all broker instances
// (tests and benchmarks create many short-lived brokers; per-instance
// numbers stay available via Snapshot).
var (
	mPublished      = obs.Default.Counter("broker_published_total")
	mDeliveredLocal = obs.Default.Counter("broker_delivered_local_total")
	mForwarded      = obs.Default.Counter("broker_forwarded_total")
	mDuplicates     = obs.Default.Counter("broker_duplicates_total")
	mViolations     = obs.Default.Counter("broker_violations_total")
	mDisconnectsDoS = obs.Default.Counter(obs.WithLabel("broker_disconnects_total", "reason", "dos"))
	mExpired        = obs.Default.Counter("broker_expired_total")
	mLinkDials      = obs.Default.Counter("broker_link_dial_attempts_total")
	mLinkUp         = obs.Default.Counter("broker_link_established_total")
	mLinkLost       = obs.Default.Counter("broker_link_lost_total")
)

// Guard inspects messages arriving from peers before they are routed.
// The tracing layer installs a guard that enforces authorization tokens
// on trace topics (§4.3/§5.2); a non-nil error drops the message and
// counts a violation against the sender.
type Guard func(env *message.Envelope, from topic.Principal) error

// Config tunes a broker node.
type Config struct {
	// Name identifies the broker in logs and link handshakes.
	Name string
	// Guard optionally vets inbound messages (may be nil).
	Guard Guard
	// ViolationLimit is the decaying violation score at which the broker
	// "will terminate communications with such an entity" (§5.2). A
	// plain violation weighs 1; throttled publishes weigh less. Zero
	// means DefaultViolationLimit.
	ViolationLimit int
	// ViolationHalfLife is the half-life of each peer's violation score:
	// the accumulated score halves every such interval, so sporadic
	// legitimate failures never add up to an unjust disconnect. Zero
	// means DefaultViolationHalfLife; negative disables decay (the
	// seed's monotonic-counter behaviour).
	ViolationHalfLife time.Duration
	// DedupeWindow is the number of recently seen message IDs remembered
	// for duplicate suppression. Zero means DefaultDedupeWindow.
	DedupeWindow int
	// EgressQueue bounds each peer's outbound data queue (frames). When
	// the queue is full the oldest data frame is shed to admit the new
	// one; control frames have their own priority lane and are never
	// shed. Zero means DefaultEgressQueue.
	EgressQueue int
	// SlowConsumerDeadline is how long a peer's egress queue may stay
	// saturated (continuously shedding) before the peer is classified a
	// slow consumer and evicted with a typed DISCONNECT. Zero means
	// DefaultSlowConsumerDeadline.
	SlowConsumerDeadline time.Duration
	// BatchBytes, when positive, enables egress drain coalescing: each
	// writer pass packs queued data frames up to this many bytes into
	// one frameBatch send (PROTOCOL.md §3.7), amortizing the per-frame
	// transport cost under fan-out load. Control frames are never
	// batched. Zero disables batching.
	BatchBytes int
	// BatchLatency, when positive (and BatchBytes enabled), lets an
	// underfull drain linger once this long for more frames before
	// flushing, bounding the extra latency batching may add. Zero
	// flushes every drain immediately.
	BatchLatency time.Duration
	// PublishRate, when positive, throttles each client publisher to
	// this many envelopes per second (token bucket, burst PublishBurst)
	// at ingress — before the envelope is unmarshaled or its signature
	// verified. Broker links are exempt (they aggregate many sources).
	// Zero disables rate limiting.
	PublishRate float64
	// PublishBurst is the token-bucket depth for PublishRate. Zero
	// selects max(1, PublishRate).
	PublishBurst int
	// QuarantineDuration is how long an evicted principal's reconnects
	// are refused (typed DISCONNECT(quarantined) at hello). Zero means
	// DefaultQuarantineDuration; negative disables quarantine.
	QuarantineDuration time.Duration
	// Flight, when non-nil, records this broker's routing decisions —
	// ingress, drops, route fan-out, egress enqueues/sheds, evictions,
	// quarantine rejections — into the bounded flight-recorder ring for
	// post-hoc inspection via /trace. Guard verdicts are recorded by the
	// guard itself: pair this with core.NewObservedTokenGuard sharing the
	// same recorder. Nil disables recording at the cost of one nil check.
	Flight *obs.FlightRecorder
	// Logf receives diagnostic output; nil silences it. Superseded by
	// Log but still honoured (wrapped in a structured logger) so older
	// callers keep working.
	Logf func(format string, args ...any)
	// Log is the structured logger; when set it takes precedence over
	// Logf. Nil with a nil Logf silences diagnostics.
	Log *obs.Logger
	// Clock paces persistent-link redial backoff; nil means the real
	// clock. Tests inject clock.Fake to step reconnect schedules.
	Clock clock.Clock
	// Durable, when non-nil, persists envelopes on selected topics to
	// the append-only tamper-evident log before fan-out, and enables
	// REPLAY/ACK cursor serving (PROTOCOL.md §3.8). The broker does not
	// own the store: the caller opens it (recovery happens there) and
	// closes it after the broker.
	Durable *durable.Store
	// DurablePersist overrides the persistence predicate: which topics
	// append to the durable log. Nil selects the per-trace-topic
	// derivative class topics (topic.IsTraceDerivative).
	DurablePersist func(tp topic.Topic) bool
	// Redeliver paces per-cursor retransmission when a replay
	// subscriber stops acking. Zero Initial selects the package
	// default (250ms initial, 5s cap).
	Redeliver backoff.Config
}

// Defaults for Config zero values.
const (
	DefaultViolationLimit       = 8
	DefaultViolationHalfLife    = 30 * time.Second
	DefaultDedupeWindow         = 8192
	DefaultEgressQueue          = 512
	DefaultSlowConsumerDeadline = 3 * time.Second
	DefaultQuarantineDuration   = 30 * time.Second
)

// throttleViolationWeight is how much one rate-limited publish adds to
// the offender score: sustained flooding escalates to a DoS disconnect
// (§5.2 repeat offenders) while a short burst merely gets throttled.
const throttleViolationWeight = 0.125

// evictGrace is how long an eviction waits for the writer to flush the
// typed DISCONNECT before the connection is force-closed regardless.
const evictGrace = 250 * time.Millisecond

// Stats counts broker activity; read with Snapshot.
type Stats struct {
	Published             uint64 // envelopes accepted from peers or local publishers
	DeliveredLocal        uint64 // envelopes handed to local subscribers
	Forwarded             uint64 // envelopes sent over links
	Duplicates            uint64 // envelopes dropped by dedupe
	Violations            uint64 // guard or authorization failures (throttles included)
	Disconnects           uint64 // peers evicted (all reasons)
	Expired               uint64 // envelopes dropped for exhausted TTL
	EgressSheds           uint64 // data frames shed from full egress queues
	SlowConsumerEvictions uint64 // peers evicted for sustained egress saturation
	Throttled             uint64 // publishes rejected by per-publisher rate limiting
	QuarantineRejects     uint64 // reconnects refused while quarantined
	ReplayRecords         uint64 // offset-annotated records served by replay pumps
	Redeliveries          uint64 // records retransmitted after a missed-ack rewind
}

// Broker is one router node in the broker network.
type Broker struct {
	cfg  Config
	clk  clock.Clock
	name string
	log  *obs.Logger

	// mu guards the routing index (peers, subs, wildcards, local) and
	// lifecycle state. The index is read-mostly: every publish takes the
	// read lock in deliver, so concurrent publishers proceed in parallel
	// and only subscription churn (rare) takes the write lock.
	mu    sync.RWMutex
	peers map[*peer]struct{}
	// subs maps exact subscription topic strings to the peers holding
	// them. Wildcard subscriptions are included and matched by scan.
	subs map[string]map[subscriberRef]struct{}
	// wildcards holds subscriptions ending in /* pre-parsed, so the
	// per-publish wildcard scan never re-runs topic.Parse.
	wildcards map[string]topic.Topic
	local     map[string][]*localSub
	listeners []transport.Listener
	pending   map[transport.Conn]struct{} // conns awaiting hello
	closed    bool
	done      chan struct{}
	// links indexes broker-link peers by name for the fabric's
	// forward-to-owner unicast (guarded by mu; inbound links are named by
	// their hello, dialed links by EnsureLink/ConnectTo).
	links map[string]*peer

	// sharding, when installed (SetSharding), is the fabric ownership
	// table consulted once per publish; atomic so the hot path never
	// locks for it.
	sharding atomic.Pointer[shardingRef]

	// linkMu guards linkDials, the per-name EnsureLink redial loops.
	linkMu    sync.Mutex
	linkDials map[string]chan struct{}

	// propCache memoizes propagatable() per topic string (bounded by
	// propCacheMax, counted in propCacheN) so the constrained-grammar
	// parse does not re-run on every publish.
	propCache  sync.Map // string -> bool
	propCacheN atomic.Int64

	seenMu   sync.Mutex
	seen     map[ident.UUID]struct{}
	seenRing *uuidRing

	disconnectMu sync.Mutex
	onDisconnect []func(entity ident.EntityID)

	// quar refuses reconnects from recently evicted principals (§5.2).
	quar *quarantine

	stats struct {
		published      atomic.Uint64
		deliveredLocal atomic.Uint64
		forwarded      atomic.Uint64
		duplicates     atomic.Uint64
		violations     atomic.Uint64
		disconnects    atomic.Uint64
		expired        atomic.Uint64
		sheds          atomic.Uint64
		slowEvictions  atomic.Uint64
		throttled      atomic.Uint64
		quarRejects    atomic.Uint64
		replayRecords  atomic.Uint64
		redeliveries   atomic.Uint64
	}

	wg sync.WaitGroup
}

// subscriberRef distinguishes remote peers from in-broker subscribers in
// the subscription index.
type subscriberRef struct {
	p *peer // nil for local subscriptions
}

// localSub is an in-broker subscriber (the tracing layer).
type localSub struct {
	tp      topic.Topic
	handler func(*message.Envelope)
}

// peer is one connection: either a client entity or a neighbouring
// broker link.
type peer struct {
	conn      transport.Conn
	isBroker  bool
	name      string
	principal topic.Principal
	// out is the peer's bounded egress queue, drained by a dedicated
	// writer goroutine (no routing goroutine ever blocks on this peer's
	// connection).
	out *egress
	// score and bucket are touched only by the peer's receive loop (one
	// goroutine), so neither needs locking.
	score  violationScore
	bucket pubBucket
	// advertised tracks which topics we have propagated SUBs for over
	// this link (broker links only).
	advertised map[string]struct{}
	// subs tracks this peer's own subscriptions.
	subs    map[string]struct{}
	closed  atomic.Bool
	evicted atomic.Bool
	// cursors holds this peer's replay cursors by exact topic string
	// (client connections that sent ctrlReplay); hasCursors lets the
	// delivery hot path skip the map lock for the common cursor-less
	// peer. Guarded by curMu.
	curMu      sync.Mutex
	cursors    map[string]*replayCursor
	hasCursors atomic.Bool
}

// New creates a broker node.
func New(cfg Config) *Broker {
	if cfg.Name == "" {
		cfg.Name = "broker-" + ident.NewUUID().String()[:8]
	}
	if cfg.ViolationLimit <= 0 {
		cfg.ViolationLimit = DefaultViolationLimit
	}
	if cfg.ViolationHalfLife == 0 {
		cfg.ViolationHalfLife = DefaultViolationHalfLife
	}
	if cfg.DedupeWindow <= 0 {
		cfg.DedupeWindow = DefaultDedupeWindow
	}
	if cfg.EgressQueue <= 0 {
		cfg.EgressQueue = DefaultEgressQueue
	}
	if cfg.SlowConsumerDeadline <= 0 {
		cfg.SlowConsumerDeadline = DefaultSlowConsumerDeadline
	}
	if cfg.PublishRate > 0 && cfg.PublishBurst <= 0 {
		cfg.PublishBurst = int(cfg.PublishRate)
		if cfg.PublishBurst < 1 {
			cfg.PublishBurst = 1
		}
	}
	if cfg.QuarantineDuration == 0 {
		cfg.QuarantineDuration = DefaultQuarantineDuration
	}
	log := cfg.Log
	if log == nil {
		log = obs.NewCallbackLogger(obs.LevelDebug, cfg.Logf)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	return &Broker{
		cfg:       cfg,
		clk:       cfg.Clock,
		name:      cfg.Name,
		log:       log.With("broker", cfg.Name),
		peers:     make(map[*peer]struct{}),
		subs:      make(map[string]map[subscriberRef]struct{}),
		wildcards: make(map[string]topic.Topic),
		local:     make(map[string][]*localSub),
		links:     make(map[string]*peer),
		pending:   make(map[transport.Conn]struct{}),
		seen:      make(map[ident.UUID]struct{}, cfg.DedupeWindow),
		seenRing:  newUUIDRing(cfg.DedupeWindow),
		quar:      newQuarantine(),
		done:      make(chan struct{}),
	}
}

// Name returns the broker's name.
func (b *Broker) Name() string { return b.name }

// Serve accepts connections from l until the broker or listener closes.
// It returns immediately; accepting happens on background goroutines.
func (b *Broker) Serve(l transport.Listener) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		l.Close()
		return
	}
	b.listeners = append(b.listeners, l)
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.handleInbound(conn)
			}()
		}
	}()
}

// handleInbound performs the hello handshake for an accepted connection.
func (b *Broker) handleInbound(conn transport.Conn) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		conn.Close()
		return
	}
	b.pending[conn] = struct{}{}
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.pending, conn)
		b.mu.Unlock()
	}()
	frame, err := conn.Recv()
	if err != nil {
		conn.Close()
		return
	}
	if len(frame) < 1 || frame[0] != frameControl {
		conn.Close()
		return
	}
	c, err := parseControl(frame[1:])
	if err != nil || c.Kind != ctrlHello {
		conn.Close()
		return
	}
	// Quarantined principals are refused before a peer is even
	// registered: the typed DISCONNECT is the first and only frame of
	// the connection, so the client's reconnect logic can back off
	// instead of hot-looping (§5.2 repeat-offender handling).
	if !c.IsBroker && b.quar.active(c.Name, b.clk.Now()) {
		b.stats.quarRejects.Add(1)
		mQuarantineRejct.Inc()
		if b.cfg.Flight != nil {
			b.cfg.Flight.Record(obs.FlightEvent{Kind: obs.FlightQuarantine, Peer: c.Name})
		}
		b.log.Warn("quarantined reconnect refused", "peer", c.Name)
		_ = conn.Send(disconnectFrame(ReasonQuarantined, "principal quarantined"))
		conn.Close()
		return
	}
	p := b.newPeer(conn, c.IsBroker, c.Name)
	if p == nil {
		conn.Close()
		return
	}
	if c.IsBroker {
		b.syncLinkSubscriptions(p)
	}
	b.peerLoop(p)
}

// ConnectTo establishes a broker-to-broker link by dialing addr over tr.
func (b *Broker) ConnectTo(tr transport.Transport, addr string) error {
	p, err := b.dialLink(tr, addr)
	if err != nil {
		return err
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.peerLoop(p)
	}()
	return nil
}

// dialLink dials a peer broker and registers the link, naming it by
// address (the hand-wired -link form; fabric links dial by name).
func (b *Broker) dialLink(tr transport.Transport, addr string) (*peer, error) {
	return b.dialLinkNamed(tr, addr, addr)
}

// dialLinkNamed dials a peer broker and registers the link under the
// given peer name, so the fabric can forward to it by broker name.
func (b *Broker) dialLinkNamed(tr transport.Transport, addr, name string) (*peer, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	hello := &control{Kind: ctrlHello, IsBroker: true, Name: b.name}
	if err := conn.Send(append([]byte{frameControl}, marshalControl(hello)...)); err != nil {
		conn.Close()
		return nil, err
	}
	p := b.newPeer(conn, true, name)
	if p == nil {
		conn.Close()
		return nil, errors.New("broker: closed")
	}
	b.syncLinkSubscriptions(p)
	return p, nil
}

// ConnectToPersistent maintains a broker link across failures: it dials
// addr, runs the link until it drops, and re-dials until the broker
// closes, pacing attempts with exponential backoff seeded from retry as
// the initial delay (retry <= 0 selects backoff.DefaultInitial).
// Subscription state is re-synchronized on every reconnection, so
// routing recovers automatically when a neighbouring broker restarts.
func (b *Broker) ConnectToPersistent(tr transport.Transport, addr string, retry time.Duration) {
	b.ConnectToPersistentBackoff(tr, addr, backoff.Config{Initial: retry, Max: maxRetryCap(retry)})
}

// maxRetryCap keeps the legacy fixed-interval callers' worst-case redial
// delay within one order of magnitude of what they asked for, rather
// than letting it grow to the 30s default cap.
func maxRetryCap(retry time.Duration) time.Duration {
	if retry <= 0 {
		return 0 // backoff defaults
	}
	return 8 * retry
}

// ConnectToPersistentBackoff is ConnectToPersistent with full control
// over the redial pacing. Each failed dial (or lost link) waits the
// policy's next delay; a link that establishes resets the policy so the
// next outage starts again from the initial delay. Dial attempts,
// establishments and losses are counted on the obs registry
// (broker_link_dial_attempts_total, broker_link_established_total,
// broker_link_lost_total).
func (b *Broker) ConnectToPersistentBackoff(tr transport.Transport, addr string, cfg backoff.Config) {
	policy := backoff.New(cfg)
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			select {
			case <-b.done:
				return
			default:
			}
			mLinkDials.Inc()
			p, err := b.dialLink(tr, addr)
			if err == nil {
				mLinkUp.Inc()
				policy.Reset()
				b.log.Info("link established", "peer", addr)
				b.peerLoop(p)
				mLinkLost.Inc()
				b.log.Warn("link lost", "peer", addr)
			}
			delay := policy.Next()
			b.log.Debug("link redial scheduled", "peer", addr, "delay", delay.String())
			t := b.clk.NewTimer(delay)
			select {
			case <-b.done:
				t.Stop()
				return
			case <-t.C():
			}
		}
	}()
}

// newPeer registers a connection as a peer and starts its egress
// writer.
func (b *Broker) newPeer(conn transport.Conn, isBroker bool, name string) *peer {
	p := &peer{
		conn:       conn,
		isBroker:   isBroker,
		name:       name,
		out:        newEgress(conn, b.cfg.EgressQueue, b.cfg.BatchBytes, b.cfg.BatchLatency),
		advertised: make(map[string]struct{}),
		subs:       make(map[string]struct{}),
	}
	if isBroker {
		p.principal = topic.BrokerPrincipal()
	} else {
		p.principal = topic.EntityPrincipal(ident.EntityID(name))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.peers[p] = struct{}{}
	if isBroker && name != "" {
		// Newest link wins the by-name index; removePeer only clears the
		// entry if it still points at the departing peer.
		b.links[name] = p
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		p.out.run()
	}()
	return p
}

// peerLoop pumps frames from a peer until the connection drops.
func (b *Broker) peerLoop(p *peer) {
	defer b.removePeer(p)
	for {
		frame, err := p.conn.Recv()
		if err != nil {
			return
		}
		if len(frame) < 1 {
			continue
		}
		switch frame[0] {
		case frameControl:
			c, err := parseControl(frame[1:])
			if err != nil {
				b.punish(p, fmt.Errorf("bad control frame: %w", err))
				continue
			}
			if done := b.handleControl(p, c); done {
				return
			}
		case frameEnvelope:
			b.ingestEnvelope(p, frame[1:])
		case frameBatch:
			// A coalesced egress drain from a peer (PROTOCOL.md §3.7):
			// split strictly, then ingest every sub-envelope in order. A
			// malformed batch is rejected as a whole — no prefix of it is
			// routed.
			frames, err := parseBatch(frame[1:])
			if err != nil {
				b.punish(p, fmt.Errorf("bad batch frame: %w", err))
				continue
			}
			b.ingestBatch(p, frames)
		default:
			b.punish(p, fmt.Errorf("unknown frame kind %d", frame[0]))
		}
		if p.closed.Load() {
			return
		}
	}
}

// ingestEnvelope admits one envelope body (the bytes after the
// frameEnvelope kind byte) from a peer: rate-limit before parsing, then
// unmarshal and route. Both the single-envelope and batch ingress paths
// funnel through here so admission control and violation accounting are
// identical per envelope regardless of framing.
func (b *Broker) ingestEnvelope(p *peer, body []byte) {
	env := b.parseIngress(p, body)
	if env == nil {
		return
	}
	b.routeFrom(p, env)
}

// parseIngress rate-limits and parses one envelope body from p. It
// returns nil (after scoring the violation) when the frame is throttled
// or malformed.
func (b *Broker) parseIngress(p *peer, body []byte) *message.Envelope {
	// Per-publisher admission control runs before the envelope is even
	// unmarshaled: a flooding client is rejected before its traffic
	// costs any parsing or signature-verification CPU.
	if b.cfg.PublishRate > 0 && !p.isBroker &&
		!p.bucket.allow(b.clk.Now(), b.cfg.PublishRate, float64(b.cfg.PublishBurst)) {
		b.stats.throttled.Add(1)
		mThrottled.Inc()
		if b.cfg.Flight != nil {
			// The frame is rejected before parsing, so no trace ID.
			b.cfg.Flight.Record(obs.FlightEvent{
				Kind: obs.FlightDrop, Peer: p.name, Reason: "throttled",
			})
		}
		b.punishWeighted(p, throttleViolationWeight, errThrottled)
		return nil
	}
	// Shared parse: the read loop hands over a freshly allocated frame
	// (every transport copies on receive), so the envelope fields can
	// alias it instead of re-copying — see message.UnmarshalShared.
	env, err := message.UnmarshalShared(body)
	if err != nil {
		b.punish(p, fmt.Errorf("bad envelope: %w", err))
		return nil
	}
	return env
}

// ingestBatch admits every envelope of a coalesced publish frame, then
// persists the durable ones with one group append per topic before any
// of them fan out. The persisted bytes are the original wire encodings,
// so the batch path skips re-marshaling entirely; persist-before-fan-out
// (PROTOCOL.md §3.8) still holds for each envelope because delivery only
// starts after every group append returns.
func (b *Broker) ingestBatch(p *peer, frames [][]byte) {
	// Under a fabric the per-envelope path must run: each envelope of the
	// batch may be owned by a different shard, and route() applies the
	// forward-to-owner and origin-persist rules individually. The group
	// append below would persist before ownership is consulted.
	if b.cfg.Durable == nil || b.shardingOf() != nil {
		for _, f := range frames {
			b.ingestEnvelope(p, f[1:])
			if p.closed.Load() {
				return
			}
		}
		return
	}
	type admitted struct {
		env     *message.Envelope
		sampled bool
	}
	envs := make([]admitted, 0, len(frames))
	var byTopic map[string][][]byte
	for _, f := range frames {
		body := f[1:]
		env := b.parseIngress(p, body)
		if env == nil {
			if p.closed.Load() {
				break
			}
			continue
		}
		sampled := b.cfg.Flight.Sampled()
		ok, err := b.admit(p, env, p.principal, sampled)
		if err != nil && !errors.Is(err, ErrNoPunish) {
			b.punish(p, err)
		}
		if ok {
			if b.persistable(env.Topic) {
				if byTopic == nil {
					byTopic = make(map[string][][]byte, 1)
				}
				ts := env.Topic.String()
				byTopic[ts] = append(byTopic[ts], body)
			}
			envs = append(envs, admitted{env, sampled})
		}
		if p.closed.Load() {
			break
		}
	}
	for ts, payloads := range byTopic {
		if _, err := b.cfg.Durable.AppendBatch(ts, payloads); err != nil {
			mDurableAppendErrs.Inc()
			b.log.Warn("durable append failed", "topic", ts, "err", err)
		}
	}
	for _, a := range envs {
		b.finishRoute(p, a.env, a.sampled)
	}
}

// handleControl processes a control frame; it reports whether the peer
// loop should exit.
func (b *Broker) handleControl(p *peer, c *control) bool {
	switch c.Kind {
	case ctrlSub:
		tp, err := topic.Parse(c.Topic)
		if err != nil {
			b.deny(p, c.ID, err.Error())
			b.punish(p, err)
			return false
		}
		if err := b.authorizeSubscribe(p, tp); err != nil {
			b.deny(p, c.ID, err.Error())
			b.punish(p, err)
			return false
		}
		b.addSubscription(p, tp)
		b.ack(p, c.ID)
	case ctrlUnsub:
		tp, err := topic.Parse(c.Topic)
		if err == nil {
			b.removeSubscription(p, tp)
			p.dropCursor(c.Topic)
		}
		b.ack(p, c.ID)
	case ctrlReplay:
		b.handleReplay(p, c)
	case ctrlAckCur:
		b.handleAckCur(p, c)
	case ctrlBye:
		return true
	case ctrlHello:
		b.punish(p, errors.New("duplicate hello"))
	default:
		// Acks/denies are client-side frames; ignore from peers.
	}
	return false
}

// authorizeSubscribe enforces constrained-topic subscribe rules. Clients
// may not use wildcards under /Constrained, which would bypass
// enforcement.
func (b *Broker) authorizeSubscribe(p *peer, tp topic.Topic) error {
	if tp.IsWildcard() && !p.isBroker && tp.HasPrefix(topic.ConstrainedPrefix) {
		return fmt.Errorf("broker: wildcard subscription under /%s denied", topic.ConstrainedPrefix)
	}
	if p.isBroker {
		// Links aggregate downstream subscribers; the terminal broker
		// enforced its own clients.
		return nil
	}
	return topic.Authorize(tp, p.principal, false)
}

// ack / deny send subscription outcomes to client peers.
func (b *Broker) ack(p *peer, id uint64) {
	if p.isBroker || id == 0 {
		return
	}
	b.sendCtrl(p, &control{Kind: ctrlAck, ID: id})
}

func (b *Broker) deny(p *peer, id uint64, reason string) {
	if p.isBroker || id == 0 {
		return
	}
	b.sendCtrl(p, &control{Kind: ctrlDeny, ID: id, Reason: reason})
}

// sendCtrl queues a control frame on the peer's priority lane. A peer
// that cannot absorb even control traffic is wedged beyond rescue and
// evicted on the spot.
func (b *Broker) sendCtrl(p *peer, c *control) {
	if !p.out.enqueueCtrl(append([]byte{frameControl}, marshalControl(c)...)) {
		b.evictPeer(p, ReasonSlowConsumer, "control queue overflow")
	}
}

// disconnectFrame builds the typed DISCONNECT notice.
func disconnectFrame(reason DisconnectReason, detail string) []byte {
	c := &control{Kind: ctrlDisconnect, ID: uint64(reason), Reason: detail}
	return append([]byte{frameControl}, marshalControl(c)...)
}

// errThrottled names the rate-limit violation for logs.
var errThrottled = errors.New("broker: publish rate exceeded")

// punish counts a violation against a peer and disconnects it past the
// limit (§5.2: "In the case of multiple bogus attempts by a malicious
// entity, the broker will terminate communications with such an
// entity").
func (b *Broker) punish(p *peer, err error) {
	b.punishWeighted(p, 1, err)
}

// punishWeighted adds weight to the peer's decaying offender score and
// evicts it once the score crosses the violation limit. Sub-unit
// weights (throttling) log at debug so a flood cannot spam the log.
// The score itself is only touched from the peer's receive loop.
func (b *Broker) punishWeighted(p *peer, weight float64, err error) {
	b.stats.violations.Add(1)
	mViolations.Inc()
	if weight >= 1 {
		b.log.Warn("violation", "peer", p.name, "err", err)
	} else {
		b.log.Debug("violation", "peer", p.name, "weight", weight, "err", err)
	}
	score := p.score.add(b.clk.Now(), weight, b.cfg.ViolationHalfLife)
	if score >= float64(b.cfg.ViolationLimit) {
		b.evictPeer(p, ReasonDoS, err.Error())
	}
}

// evictPeer terminates a peer deliberately: its queued data is shed, a
// typed DISCONNECT is queued on the control lane, the principal is
// quarantined, and the connection is force-closed after a short grace
// in case the pipe is too wedged to flush the notice. Idempotent.
func (b *Broker) evictPeer(p *peer, reason DisconnectReason, detail string) {
	if !p.evicted.CompareAndSwap(false, true) {
		return
	}
	b.stats.disconnects.Add(1)
	switch reason {
	case ReasonSlowConsumer:
		b.stats.slowEvictions.Add(1)
		mSlowEvictions.Inc()
	case ReasonDoS:
		mDisconnectsDoS.Inc()
	}
	// DoS and slow-consumer evictions open a fresh quarantine window; a
	// quarantine eviction (Banish) already set its own window, which must
	// not be overwritten with the default duration.
	if !p.isBroker && reason != ReasonQuarantined && b.cfg.QuarantineDuration > 0 {
		b.quar.ban(p.name, b.clk.Now(), b.cfg.QuarantineDuration)
	}
	b.log.Warn("evicting peer", "peer", p.name, "reason", reason.String(), "detail", detail)
	if b.cfg.Flight != nil {
		b.cfg.Flight.Record(obs.FlightEvent{
			Kind:   obs.FlightEvict,
			Peer:   p.name,
			Reason: reason.String() + ": " + detail,
		})
	}
	if dropped := p.out.shedAll(); dropped > 0 {
		b.stats.sheds.Add(uint64(dropped))
		mEgressSheds.Add(uint64(dropped))
	}
	p.out.enqueueCtrl(disconnectFrame(reason, detail))
	p.out.beginClose()
	p.closed.Store(true)
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		t := b.clk.NewTimer(evictGrace)
		select {
		case <-t.C():
		case <-b.done:
			t.Stop()
		}
		p.conn.Close()
	}()
}

// Banish quarantines a principal for d and evicts any currently
// connected peers carrying it — the administrative form of §5.2's
// repeat-offender handling.
func (b *Broker) Banish(entity ident.EntityID, d time.Duration) {
	b.quar.ban(string(entity), b.clk.Now(), d)
	b.mu.Lock()
	var victims []*peer
	for p := range b.peers {
		if !p.isBroker && p.name == string(entity) {
			victims = append(victims, p)
		}
	}
	b.mu.Unlock()
	for _, p := range victims {
		b.evictPeer(p, ReasonQuarantined, "banished")
	}
}

// OnClientDisconnect registers a callback invoked whenever a client
// (entity) connection drops, with the entity's identifier. The tracing
// layer uses it to publish DISCONNECT traces (§3.3) without waiting for
// ping timeouts.
func (b *Broker) OnClientDisconnect(f func(entity ident.EntityID)) {
	b.disconnectMu.Lock()
	defer b.disconnectMu.Unlock()
	b.onDisconnect = append(b.onDisconnect, f)
}

// removePeer unregisters a peer and drops its subscriptions. An
// evicted peer's connection is not closed here: evictPeer has already
// queued the typed DISCONNECT, and closing now would race the egress
// writer's flush of it — the writer closes the conn once the control
// lane drains, with the evictGrace timer as the backstop for a peer
// that has stopped reading. The check consults p.evicted (not
// p.closed): eviction CASes it before queueing the DISCONNECT, so a
// concurrent evictPeer that has queued the notice but not yet reached
// its closed.Store can never see its flush cut short here.
func (b *Broker) removePeer(p *peer) {
	p.stopCursors()
	p.out.beginClose()
	if !p.evicted.Load() {
		p.conn.Close()
	}
	b.mu.Lock()
	if _, ok := b.peers[p]; !ok {
		b.mu.Unlock()
		return
	}
	delete(b.peers, p)
	if p.isBroker && b.links[p.name] == p {
		delete(b.links, p.name)
	}
	affected := make([]string, 0, len(p.subs))
	ref := subscriberRef{p: p}
	for ts := range p.subs {
		if set, ok := b.subs[ts]; ok {
			delete(set, ref)
			if len(set) == 0 {
				delete(b.subs, ts)
				delete(b.wildcards, ts)
			}
		}
		affected = append(affected, ts)
	}
	b.mu.Unlock()
	for _, ts := range affected {
		b.refreshLinks(ts)
	}
	if !p.isBroker {
		b.disconnectMu.Lock()
		callbacks := make([]func(ident.EntityID), len(b.onDisconnect))
		copy(callbacks, b.onDisconnect)
		b.disconnectMu.Unlock()
		for _, f := range callbacks {
			f(ident.EntityID(p.name))
		}
	}
}

// addSubscription indexes a peer subscription and propagates it.
func (b *Broker) addSubscription(p *peer, tp topic.Topic) {
	ts := tp.String()
	b.mu.Lock()
	p.subs[ts] = struct{}{}
	set, ok := b.subs[ts]
	if !ok {
		set = make(map[subscriberRef]struct{})
		b.subs[ts] = set
	}
	set[subscriberRef{p: p}] = struct{}{}
	if tp.IsWildcard() {
		b.wildcards[ts] = tp
	}
	b.mu.Unlock()
	b.refreshLinks(ts)
}

// removeSubscription drops a peer subscription and propagates the
// change.
func (b *Broker) removeSubscription(p *peer, tp topic.Topic) {
	ts := tp.String()
	b.mu.Lock()
	delete(p.subs, ts)
	if set, ok := b.subs[ts]; ok {
		delete(set, subscriberRef{p: p})
		if len(set) == 0 {
			delete(b.subs, ts)
			delete(b.wildcards, ts)
		}
	}
	b.mu.Unlock()
	b.refreshLinks(ts)
}

// SubscribeLocal registers an in-broker subscriber with broker
// privileges; the tracing layer uses this for registration and session
// topics. The returned cancel function unsubscribes.
func (b *Broker) SubscribeLocal(tp topic.Topic, handler func(*message.Envelope)) (cancel func()) {
	ts := tp.String()
	ls := &localSub{tp: tp, handler: handler}
	b.mu.Lock()
	b.local[ts] = append(b.local[ts], ls)
	set, ok := b.subs[ts]
	if !ok {
		set = make(map[subscriberRef]struct{})
		b.subs[ts] = set
	}
	set[subscriberRef{}] = struct{}{}
	if tp.IsWildcard() {
		b.wildcards[ts] = tp
	}
	b.mu.Unlock()
	b.refreshLinks(ts)
	return func() {
		b.mu.Lock()
		lss := b.local[ts]
		for i, cand := range lss {
			if cand == ls {
				b.local[ts] = append(lss[:i], lss[i+1:]...)
				break
			}
		}
		if len(b.local[ts]) == 0 {
			delete(b.local, ts)
			if set, ok := b.subs[ts]; ok {
				delete(set, subscriberRef{})
				if len(set) == 0 {
					delete(b.subs, ts)
					delete(b.wildcards, ts)
				}
			}
		}
		b.mu.Unlock()
		b.refreshLinks(ts)
	}
}

// propagatable reports whether subscriptions/publishes on ts travel
// between brokers: constrained topics with Suppress/Limited distribution
// stay local to the hosting broker.
func propagatable(ts string) bool {
	tp, err := topic.Parse(ts)
	if err != nil || !topic.IsConstrained(tp) {
		return err == nil
	}
	c, err := topic.ParseConstrained(tp)
	if err != nil {
		return false
	}
	return c.Dist.Propagates()
}

// propCacheMax bounds the propagation memo: topic strings are
// publisher-controlled, so an uncapped memo would be a memory-growth
// vector. Past the cap the answer is computed without being stored.
const propCacheMax = 8192

// propagates is propagatable memoized per broker: the grammar parse is
// pure, and deliver asks the same question for every publish on a topic.
func (b *Broker) propagates(ts string) bool {
	if v, ok := b.propCache.Load(ts); ok {
		return v.(bool)
	}
	v := propagatable(ts)
	if b.propCacheN.Load() < propCacheMax {
		if _, loaded := b.propCache.LoadOrStore(ts, v); !loaded {
			b.propCacheN.Add(1)
		}
	}
	return v
}

// refreshLinks reconciles the SUB state of every broker link for one
// topic: a link should hold our SUB iff some subscriber other than that
// link wants the topic and the topic propagates.
func (b *Broker) refreshLinks(ts string) {
	type action struct {
		p   *peer
		sub bool
	}
	var actions []action
	prop := b.propagates(ts)
	b.mu.Lock()
	set := b.subs[ts]
	for p := range b.peers {
		if !p.isBroker {
			continue
		}
		want := false
		if prop && b.shardAdvertiseOK(ts, p) {
			for ref := range set {
				if ref.p != p {
					want = true
					break
				}
			}
		}
		_, have := p.advertised[ts]
		if want && !have {
			p.advertised[ts] = struct{}{}
			actions = append(actions, action{p, true})
		} else if !want && have {
			delete(p.advertised, ts)
			actions = append(actions, action{p, false})
		}
	}
	b.mu.Unlock()
	for _, a := range actions {
		kind := ctrlSub
		if !a.sub {
			kind = ctrlUnsub
		}
		b.sendCtrl(a.p, &control{Kind: kind, Topic: ts})
	}
}

// syncLinkSubscriptions advertises all current topics to a new link.
func (b *Broker) syncLinkSubscriptions(p *peer) {
	b.mu.Lock()
	topics := make([]string, 0, len(b.subs))
	for ts, set := range b.subs {
		if !b.propagates(ts) || !b.shardAdvertiseOK(ts, p) {
			continue
		}
		for ref := range set {
			if ref.p != p {
				topics = append(topics, ts)
				break
			}
		}
	}
	for _, ts := range topics {
		p.advertised[ts] = struct{}{}
	}
	b.mu.Unlock()
	for _, ts := range topics {
		b.sendCtrl(p, &control{Kind: ctrlSub, Topic: ts})
	}
}

// Publish injects a broker-originated envelope (broker principal): the
// tracing layer publishes pings and traces through this.
func (b *Broker) Publish(env *message.Envelope) error {
	return b.route(nil, env, topic.BrokerPrincipal())
}

// ErrNoPunish, wrapped into a guard rejection, marks a drop that is not
// the delivering peer's fault: the envelope is discarded but no
// violation is scored against the peer. The session-key layer uses it
// for tags referencing a session this broker has not (or no longer)
// installed — a correct forwarder delivering such a message is evidence
// the verifier should renegotiate, not that the peer misbehaves.
var ErrNoPunish = errors.New("broker: drop without violation")

// routeFrom handles an envelope received from a peer.
func (b *Broker) routeFrom(p *peer, env *message.Envelope) {
	if err := b.route(p, env, p.principal); err != nil && !errors.Is(err, ErrNoPunish) {
		b.punish(p, err)
	}
}

// flightTraceOf derives the flight-recorder correlation ID for an
// envelope: the span's TraceID when present, the envelope ID otherwise.
func flightTraceOf(env *message.Envelope) obs.FlightTrace {
	if env.Span != nil {
		return obs.FlightTrace(env.Span.TraceID)
	}
	return obs.FlightTrace(env.ID)
}

// flightPeerName names the ingress source for flight events.
func flightPeerName(from *peer) string {
	if from == nil {
		return "local"
	}
	return from.name
}

// recordDrop appends an always-on drop event to the flight recorder
// (no-op when recording is disabled).
func (b *Broker) recordDrop(from *peer, env *message.Envelope, reason string) {
	if b.cfg.Flight == nil {
		return
	}
	b.cfg.Flight.Record(obs.FlightEvent{
		Kind:   obs.FlightDrop,
		Trace:  flightTraceOf(env),
		Peer:   flightPeerName(from),
		Topic:  env.Topic.String(),
		Reason: reason,
	})
}

// route authorizes, dedupes and distributes an envelope. from is nil for
// local (broker-originated) publishes.
func (b *Broker) route(from *peer, env *message.Envelope, principal topic.Principal) error {
	// One atomic add decides whether this envelope's healthy events
	// (ingress, route, egress) are recorded; drops are always recorded.
	sampled := b.cfg.Flight.Sampled()
	// Fabric partitioning (PROTOCOL.md §3.9): a sharded topic owned by
	// another broker is forwarded to (or fanned in from) its owner
	// instead of flood-routed; locally owned and unsharded topics take
	// the ordinary pipeline below.
	if s := b.shardingOf(); s != nil {
		if owner, local, sharded := s.Route(env.Topic.String()); sharded && !local {
			return b.routeShardRemote(from, env, principal, owner, sampled)
		}
	}
	ok, err := b.admit(from, env, principal, sampled)
	if !ok {
		return err
	}
	// Persist before fan-out (PROTOCOL.md §3.8): an authorized envelope
	// on a durable topic reaches the append-only log before any
	// subscriber sees it, so replay can always reconstruct what was
	// delivered. Append failure degrades durability, not liveness — the
	// envelope still fans out, and the error is counted and logged.
	if b.cfg.Durable != nil && b.persistable(env.Topic) {
		if _, err := b.cfg.Durable.Append(env.Topic.String(), env.Marshal()); err != nil {
			mDurableAppendErrs.Inc()
			b.log.Warn("durable append failed", "topic", env.Topic.String(), "err", err)
		}
	}
	b.finishRoute(from, env, sampled)
	return nil
}

// admit runs every pre-persist stage of the publish pipeline — flight
// ingress sampling, duplicate suppression, TTL, source-spoofing,
// authorization, and the pluggable guard. It reports whether the
// envelope should proceed to persistence and fan-out; ok=false with a
// nil error is a silent drop (duplicate or expired).
func (b *Broker) admit(from *peer, env *message.Envelope, principal topic.Principal, sampled bool) (ok bool, err error) {
	if sampled {
		b.cfg.Flight.Record(obs.FlightEvent{
			Kind:  obs.FlightIngress,
			Trace: flightTraceOf(env),
			Peer:  flightPeerName(from),
			Topic: env.Topic.String(),
		})
	}
	// Duplicate suppression (also guards against routing loops).
	if !b.firstSighting(env.ID) {
		b.stats.duplicates.Add(1)
		mDuplicates.Inc()
		b.recordDrop(from, env, "duplicate")
		return false, nil
	}
	if env.TTL == 0 {
		b.stats.expired.Add(1)
		mExpired.Inc()
		b.recordDrop(from, env, "ttl_expired")
		return false, nil
	}
	// Source spoofing check: a client's envelopes must carry its own
	// entity identifier. Broker links aggregate many sources.
	if from != nil && !from.isBroker && env.Source != ident.EntityID(from.name) {
		b.recordDrop(from, env, "spoofed_source")
		return false, fmt.Errorf("broker: source %q spoofed by client %q", env.Source, from.name)
	}
	if err := topic.Authorize(env.Topic, principal, true); err != nil {
		b.recordDrop(from, env, "unauthorized_topic")
		return false, err
	}
	if b.cfg.Guard != nil {
		// Guard rejections are recorded by the guard itself (with the
		// drop reason and cache outcome); see Config.Flight.
		if err := b.cfg.Guard(env, principal); err != nil {
			return false, err
		}
	}
	return true, nil
}

// finishRoute is the post-persist tail of the publish pipeline: count
// the publish and fan out to subscribers and links.
func (b *Broker) finishRoute(from *peer, env *message.Envelope, sampled bool) {
	b.stats.published.Add(1)
	mPublished.Inc()
	b.deliver(from, env, sampled, false)
}

// deliverScratch pools the per-delivery collection state so routing an
// envelope does not allocate a fresh dedupe map and fan-out slices for
// every publish.
type deliverScratch struct {
	locals []*localSub
	remote []*peer
	seen   map[*peer]struct{}
}

var deliverScratchPool = sync.Pool{
	New: func() any {
		return &deliverScratch{seen: make(map[*peer]struct{}, 8)}
	},
}

func (sc *deliverScratch) release() {
	clear(sc.locals)
	clear(sc.remote)
	sc.locals = sc.locals[:0]
	sc.remote = sc.remote[:0]
	clear(sc.seen)
	deliverScratchPool.Put(sc)
}

// deliver hands the envelope to local subscribers and forwards it to
// interested links. It holds only the routing index's read lock while
// collecting subscribers, so concurrent publishers do not serialize.
// sampled carries route's per-envelope flight-sampling decision.
// skipBrokers suppresses link forwarding: fan-in deliveries from a
// topic's shard owner go to local subscribers and clients only, which
// keeps fabric routing one-hop and loop-free.
func (b *Broker) deliver(from *peer, env *message.Envelope, sampled, skipBrokers bool) {
	ts := env.Topic.String()
	sc := deliverScratchPool.Get().(*deliverScratch)
	defer sc.release()
	b.mu.RLock()
	// Exact subscriptions.
	collect := func(subTopic string) {
		for ref := range b.subs[subTopic] {
			if ref.p == nil {
				continue
			}
			if ref.p == from {
				continue
			}
			if _, dup := sc.seen[ref.p]; dup {
				continue
			}
			sc.seen[ref.p] = struct{}{}
			sc.remote = append(sc.remote, ref.p)
		}
		sc.locals = append(sc.locals, b.local[subTopic]...)
	}
	collect(ts)
	// Wildcard subscriptions, stored pre-parsed.
	for wts, wtp := range b.wildcards {
		if wts == ts {
			continue
		}
		if env.Topic.Matches(wtp) {
			collect(wts)
		}
	}
	b.mu.RUnlock()

	if sampled {
		b.cfg.Flight.Record(obs.FlightEvent{
			Kind:  obs.FlightRoute,
			Trace: flightTraceOf(env),
			N:     len(sc.remote),
			N2:    len(sc.locals),
		})
	}
	for _, ls := range sc.locals {
		b.stats.deliveredLocal.Add(1)
		mDeliveredLocal.Inc()
		ls.handler(env)
	}
	if len(sc.remote) == 0 {
		return
	}
	prop := b.propagates(ts)
	// Build the forwarded frame in one exactly-sized allocation. The TTL
	// decrement is folded into serialization (AppendWire emits ttl-1 in
	// place of the envelope's TTL byte), so the common case — no span —
	// forwards without cloning the envelope at all. Span-stamping brokers
	// still clone: AddHop mutates shared state.
	fwdTTL := env.TTL - 1
	var frame []byte
	if env.Span == nil {
		frame = make([]byte, 1, 1+env.WireSize())
		frame[0] = frameEnvelope
		frame = env.AppendWire(frame, fwdTTL)
	} else {
		fwd := env.Clone()
		fwd.TTL = fwdTTL
		fwd.AddHop(b.name, time.Now())
		frame = make([]byte, 1, 1+fwd.WireSize())
		frame[0] = frameEnvelope
		frame = fwd.AppendWire(frame, fwdTTL)
	}
	now := b.clk.Now()
	for _, p := range sc.remote {
		if p.isBroker && (skipBrokers || !prop || fwdTTL == 0) {
			continue
		}
		// A peer holding a replay cursor on this exact topic is served
		// solely by its pump: the log is the single ordered source, so
		// catch-up and live delivery cannot race or duplicate.
		if p.hasCursors.Load() && p.cursorFor(ts) != nil {
			continue
		}
		b.stats.forwarded.Add(1)
		mForwarded.Inc()
		if sampled {
			b.cfg.Flight.Record(obs.FlightEvent{
				Kind:  obs.FlightEgress,
				Trace: flightTraceOf(env),
				Peer:  p.name,
			})
		}
		// Non-blocking enqueue: a stalled peer sheds its own oldest frames
		// instead of head-of-line-blocking this fan-out, and once it has
		// been continuously saturated past the deadline it is evicted as a
		// slow consumer.
		shed, stalledFor := p.out.enqueueData(frame, now)
		if shed > 0 {
			b.stats.sheds.Add(uint64(shed))
			mEgressSheds.Add(uint64(shed))
			if b.cfg.Flight != nil {
				b.cfg.Flight.Record(obs.FlightEvent{
					Kind:  obs.FlightShed,
					Trace: flightTraceOf(env),
					Peer:  p.name,
					N:     shed,
				})
			}
			if stalledFor >= b.cfg.SlowConsumerDeadline {
				b.evictPeer(p, ReasonSlowConsumer, "egress queue saturated")
			}
		}
	}
}

// firstSighting records the message ID, reporting whether it was new.
// The window is a fixed-size ring: the displaced oldest ID leaves the
// map, and no per-message allocation occurs once the window fills.
func (b *Broker) firstSighting(id ident.UUID) bool {
	b.seenMu.Lock()
	defer b.seenMu.Unlock()
	if _, dup := b.seen[id]; dup {
		return false
	}
	b.seen[id] = struct{}{}
	if old, evicted := b.seenRing.push(id); evicted {
		delete(b.seen, old)
	}
	return true
}

// Snapshot returns current counters.
func (b *Broker) Snapshot() Stats {
	return Stats{
		Published:             b.stats.published.Load(),
		DeliveredLocal:        b.stats.deliveredLocal.Load(),
		Forwarded:             b.stats.forwarded.Load(),
		Duplicates:            b.stats.duplicates.Load(),
		Violations:            b.stats.violations.Load(),
		Disconnects:           b.stats.disconnects.Load(),
		Expired:               b.stats.expired.Load(),
		EgressSheds:           b.stats.sheds.Load(),
		SlowConsumerEvictions: b.stats.slowEvictions.Load(),
		Throttled:             b.stats.throttled.Load(),
		QuarantineRejects:     b.stats.quarRejects.Load(),
		ReplayRecords:         b.stats.replayRecords.Load(),
		Redeliveries:          b.stats.redeliveries.Load(),
	}
}

// PeerHealth is one peer's row in a broker health snapshot.
type PeerHealth struct {
	// Name is the peer's entity ID or broker name.
	Name string
	// IsBroker distinguishes links from client connections.
	IsBroker bool
	// Queued is the peer's current egress data-queue depth (frames).
	Queued int
	// Score is the peer's decaying offender score as of its last update.
	Score float64
}

// Health is a point-in-time topology/health snapshot of one broker: the
// self-monitoring payload published on the system-health topic and
// rendered by tracectl's broker map.
type Health struct {
	// Name is the broker's name.
	Name string
	// Peers lists connected peers (links and clients), sorted by name.
	Peers []PeerHealth
	// Subscriptions counts distinct subscribed topic strings.
	Subscriptions int
	// Stats is the broker's counter snapshot.
	Stats Stats
	// FlightHead is the flight recorder's latest sequence number (0 when
	// recording is disabled).
	FlightHead uint64
	// FabricEpoch/FabricMembers/FabricOwnedPerMille snapshot the fabric
	// ownership table (all zero outside a fabric): the epoch number, the
	// live member count, and this broker's share of the hash circle in
	// per-mille.
	FabricEpoch         uint64
	FabricMembers       int
	FabricOwnedPerMille int
}

// Health snapshots the broker's topology and per-peer queue/offender
// state.
func (b *Broker) Health() Health {
	h := Health{Name: b.name, Stats: b.Snapshot(), FlightHead: b.cfg.Flight.Head()}
	if s := b.shardingOf(); s != nil {
		info := s.Info()
		h.FabricEpoch = info.Epoch
		h.FabricMembers = info.Members
		h.FabricOwnedPerMille = info.OwnedPerMille
	}
	b.mu.RLock()
	h.Subscriptions = len(b.subs)
	peers := make([]*peer, 0, len(b.peers))
	for p := range b.peers {
		peers = append(peers, p)
	}
	b.mu.RUnlock()
	h.Peers = make([]PeerHealth, 0, len(peers))
	for _, p := range peers {
		h.Peers = append(h.Peers, PeerHealth{
			Name:     p.name,
			IsBroker: p.isBroker,
			Queued:   p.out.depth(),
			Score:    p.score.current(),
		})
	}
	sort.Slice(h.Peers, func(i, j int) bool { return h.Peers[i].Name < h.Peers[j].Name })
	return h
}

// PeerCount reports connected peers (clients + links).
func (b *Broker) PeerCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.peers)
}

// SubscriptionCount reports distinct subscribed topic strings.
func (b *Broker) SubscriptionCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// HasSubscription reports whether any subscriber holds exactly ts; the
// tests and the tracing layer use it to await propagation.
func (b *Broker) HasSubscription(ts string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.subs[ts]
	return ok
}

// Close shuts the broker down: listeners stop, peers drop.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.done)
	peers := make([]*peer, 0, len(b.peers))
	for p := range b.peers {
		peers = append(peers, p)
	}
	pending := make([]transport.Conn, 0, len(b.pending))
	for c := range b.pending {
		pending = append(pending, c)
	}
	listeners := b.listeners
	b.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, p := range peers {
		p.closed.Store(true)
		p.out.beginClose()
		p.conn.Close()
	}
	for _, c := range pending {
		c.Close()
	}
	b.wg.Wait()
}
