package broker

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"time"

	"entitytrace/internal/message"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// envFrame builds a complete frameEnvelope frame carrying an envelope
// with a payload of n filler bytes.
func envFrame(t *testing.T, n int) []byte {
	t.Helper()
	env := message.New(message.TypeData, topic.MustParse("/batch/test"), "batcher", bytes.Repeat([]byte{'p'}, n))
	f := make([]byte, 1, 1+env.WireSize())
	f[0] = frameEnvelope
	return env.AppendWire(f, env.TTL)
}

func TestBatchRoundTrip(t *testing.T) {
	frames := [][]byte{envFrame(t, 3), envFrame(t, 100), envFrame(t, 0)}
	wire := appendBatch(nil, frames)
	if len(wire) != batchWireSize(frames) {
		t.Fatalf("wire size %d, batchWireSize %d", len(wire), batchWireSize(frames))
	}
	if wire[0] != frameBatch {
		t.Fatalf("kind byte %d, want %d", wire[0], frameBatch)
	}
	got, err := parseBatch(wire[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("parsed %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestParseBatchMalformed(t *testing.T) {
	good := envFrame(t, 8)
	body := func(frames ...[]byte) []byte { return appendBatch(nil, frames)[1:] }

	cases := []struct {
		name string
		body []byte
		want string
	}{
		{"empty body", nil, "empty batch"},
		{"short length prefix", []byte{0, 0, 1}, "truncated batch length prefix"},
		{"trailing garbage", append(body(good), 0xff, 0xff), "truncated batch length prefix"},
		{"zero-length sub-frame", []byte{0, 0, 0, 0}, "empty batch sub-frame"},
		{"oversized sub-frame length", binary.BigEndian.AppendUint32(nil, maxBatchFrameLen+1), "exceeds"},
		{"truncated sub-frame", body(good)[:4+len(good)-1], "truncated batch sub-frame"},
		{"interleaved control frame", body(good, append([]byte{frameControl}, good[1:]...)), "only envelopes batch"},
		{"nested batch", body(good, append([]byte{frameBatch}, body(good)...)), "only envelopes batch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseBatch(tc.body); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseBatch = %v, want error containing %q", err, tc.want)
			}
		})
	}

	// Frame-count cap: one more than maxBatchFrames minimal entries.
	var big []byte
	for i := 0; i < maxBatchFrames+1; i++ {
		big = binary.BigEndian.AppendUint32(big, 1)
		big = append(big, frameEnvelope)
	}
	if _, err := parseBatch(big); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("over-count batch: %v", err)
	}
}

// FuzzParseBatch hammers the batch parser with truncated, oversized, and
// interleaved frames. Invariants: no panic, and any accepted parse
// re-encodes byte-identically (the format is canonical, so a parse/
// re-encode loop cannot smuggle bytes past the router).
func FuzzParseBatch(f *testing.F) {
	env := message.New(message.TypeData, topic.MustParse("/fuzz/batch"), "fuzzer", []byte("payload"))
	frame := make([]byte, 1, 1+env.WireSize())
	frame[0] = frameEnvelope
	frame = env.AppendWire(frame, env.TTL)

	f.Add(appendBatch(nil, [][]byte{frame})[1:])
	f.Add(appendBatch(nil, [][]byte{frame, frame, frame})[1:])
	f.Add(appendBatch(nil, [][]byte{frame})[1 : 4+len(frame)/2]) // truncated sub-frame
	f.Add(binary.BigEndian.AppendUint32(nil, maxBatchFrameLen+1)) // oversized length
	f.Add([]byte{0, 0, 1})                                        // short prefix
	f.Add([]byte{0, 0, 0, 0})                                     // zero-length entry
	ctrl := append([]byte{frameControl}, frame[1:]...)
	f.Add(appendBatch(nil, [][]byte{frame, ctrl})[1:]) // interleaved control
	nested := append([]byte{frameBatch}, appendBatch(nil, [][]byte{frame})[1:]...)
	f.Add(appendBatch(nil, [][]byte{nested})[1:]) // nested batch

	f.Fuzz(func(t *testing.T, body []byte) {
		frames, err := parseBatch(body)
		if err != nil {
			return
		}
		if len(frames) == 0 {
			t.Fatal("accepted batch with zero frames")
		}
		re := appendBatch(nil, frames)
		if !bytes.Equal(re[1:], body) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", body, re[1:])
		}
	})
}

// TestEgressBatchCoalescing pre-loads the queue and verifies one drain
// pass packs frames under the byte budget into a single frameBatch send,
// while a lone oversized frame still travels alone and unwrapped.
func TestEgressBatchCoalescing(t *testing.T) {
	conn := newGateConn()
	small := [][]byte{
		[]byte("frame-00"), []byte("frame-01"), []byte("frame-02"),
		[]byte("frame-03"), []byte("frame-04"),
	}
	huge := bytes.Repeat([]byte{'H'}, 256)
	// Budget fits exactly three small frames: 1 + 3*(4+8) = 37.
	e := newEgress(conn, 64, 37, 0)
	base := time.Unix(1000, 0)
	for _, fr := range small {
		e.enqueueData(fr, base)
	}
	e.enqueueData(huge, base)

	go e.run()
	for i := 0; i < 3; i++ {
		conn.gate <- struct{}{}
	}
	waitFor(t, "three coalesced sends", func() bool { return len(conn.sentFrames()) == 3 })
	sent := conn.sentFrames()

	// First send: batch of three.
	if sent[0][0] != frameBatch {
		t.Fatalf("first send kind %d, want batch", sent[0][0])
	}
	got, err := parseBatchLoose(sent[0][1:])
	if err != nil || len(got) != 3 {
		t.Fatalf("first batch: %d frames, err %v", len(got), err)
	}
	// Second send: remaining two smalls (underfull, still batched).
	if sent[1][0] != frameBatch {
		t.Fatalf("second send kind %d, want batch", sent[1][0])
	}
	if got, err = parseBatchLoose(sent[1][1:]); err != nil || len(got) != 2 {
		t.Fatalf("second batch: %d frames, err %v", len(got), err)
	}
	// Third send: the oversized frame alone, raw — a single-frame drain
	// skips the batch wrapper entirely.
	if !bytes.Equal(sent[2], huge) {
		t.Fatalf("third send = %d bytes kind %d, want raw oversized frame", len(sent[2]), sent[2][0])
	}
	e.beginClose()
}

// parseBatchLoose splits a batch body without the envelope-kind
// restriction; egress unit tests batch opaque byte strings.
func parseBatchLoose(b []byte) ([][]byte, error) {
	var frames [][]byte
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("truncated prefix")
		}
		n := binary.BigEndian.Uint32(b[:4])
		if int(n) > len(b)-4 {
			return nil, fmt.Errorf("truncated frame")
		}
		frames = append(frames, b[4:4+n])
		b = b[4+n:]
	}
	return frames, nil
}

// TestEgressBatchLingerFlushesOnLatency verifies the latency bound: an
// underfull drain holds its frames once, then flushes after batchLatency
// even if nothing else arrives.
func TestEgressBatchLingerFlushesOnLatency(t *testing.T) {
	conn := newGateConn()
	conn.gate <- struct{}{}
	e := newEgress(conn, 64, 1<<20, 30*time.Millisecond)
	// Start the writer first so it parks on the wake channel; the
	// enqueue's wake token is then consumed by the outer wait and the
	// linger timer runs its full course.
	go e.run()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	e.enqueueData([]byte("lonely"), start)
	waitFor(t, "lingered flush", func() bool { return len(conn.sentFrames()) == 1 })
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("flushed after %v, before the linger window", elapsed)
	}
	if got := conn.sentFrames()[0]; !bytes.Equal(got, []byte("lonely")) {
		t.Fatalf("sent %q", got)
	}
	e.beginClose()
}

// TestEgressBatchControlPreemptsLinger verifies the priority lane:
// a control frame enqueued during a linger cuts the wait short and
// transmits before the lingering data.
func TestEgressBatchControlPreemptsLinger(t *testing.T) {
	conn := newGateConn()
	e := newEgress(conn, 64, 1<<20, time.Hour) // linger would block ~forever
	go e.run()
	time.Sleep(5 * time.Millisecond) // let the writer park on the wake channel
	e.enqueueData([]byte("data-frame"), time.Unix(1000, 0))
	// The writer is now lingering; a control frame preempts it.
	time.Sleep(10 * time.Millisecond)
	if !e.enqueueCtrl([]byte("ctrl-frame")) {
		t.Fatal("control enqueue refused")
	}
	conn.gate <- struct{}{}
	conn.gate <- struct{}{}
	waitFor(t, "control then data", func() bool { return len(conn.sentFrames()) == 2 })
	sent := conn.sentFrames()
	if !bytes.Equal(sent[0], []byte("ctrl-frame")) {
		t.Fatalf("first send %q, want control frame", sent[0])
	}
	if !bytes.Equal(sent[1], []byte("data-frame")) {
		t.Fatalf("second send %q, want data frame", sent[1])
	}
	e.beginClose()
}

// TestEgressBatchRespectsFrameCap verifies a drain never packs more than
// maxBatchFrames entries no matter how deep the queue is.
func TestEgressBatchRespectsFrameCap(t *testing.T) {
	conn := newGateConn()
	e := newEgress(conn, maxBatchFrames+10, 1<<30, 0)
	for i := 0; i < maxBatchFrames+5; i++ {
		e.enqueueData([]byte{byte(i)}, time.Unix(1000, 0))
	}
	e.mu.Lock()
	frames := e.popBatchLocked()
	rest := e.queuedData()
	e.mu.Unlock()
	if len(frames) != maxBatchFrames {
		t.Fatalf("popped %d frames, want %d", len(frames), maxBatchFrames)
	}
	if rest != 5 {
		t.Fatalf("%d frames left queued, want 5", rest)
	}
	conn.Close()
}

// TestPublishBatchRoundTrip sends a client-coalesced batch through a
// broker with batching enabled on its egress and checks every envelope
// fans out to the subscriber intact and in order.
func TestPublishBatchRoundTrip(t *testing.T) {
	tr := transport.NewInproc()
	_, addr := newTestBroker(t, tr, Config{Name: "b0", BatchBytes: 8 << 10, BatchLatency: time.Millisecond})

	sub, err := Connect(tr, addr, "subscriber")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Connect(tr, addr, "publisher")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	tp := topic.MustParse("/batch/roundtrip")
	got := make(chan *message.Envelope, 64)
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}

	const n = 20
	envs := make([]*message.Envelope, n)
	for i := range envs {
		envs[i] = message.New(message.TypeData, tp, "publisher", []byte(fmt.Sprintf("batched-%02d", i)))
	}
	if err := pub.PublishBatch(envs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e := recvEnvelope(t, got, fmt.Sprintf("batched envelope %d", i))
		if want := fmt.Sprintf("batched-%02d", i); string(e.Payload) != want {
			t.Fatalf("envelope %d payload %q, want %q", i, e.Payload, want)
		}
	}

	// Degenerate sizes: empty batch is a no-op, single-envelope batch is
	// a plain publish.
	if err := pub.PublishBatch(nil); err != nil {
		t.Fatal(err)
	}
	single := message.New(message.TypeData, tp, "publisher", []byte("solo"))
	if err := pub.PublishBatch([]*message.Envelope{single}); err != nil {
		t.Fatal(err)
	}
	recvEnvelope(t, got, "single-envelope batch")

	// Over-long batches are refused client-side before any bytes move.
	over := make([]*message.Envelope, maxBatchFrames+1)
	for i := range over {
		over[i] = envs[0]
	}
	if err := pub.PublishBatch(over); err == nil {
		t.Fatal("oversized batch accepted")
	}
}
