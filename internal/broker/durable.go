package broker

import (
	"errors"
	"sync"
	"time"

	"entitytrace/internal/backoff"
	"entitytrace/internal/durable"
	"entitytrace/internal/obs"
	"entitytrace/internal/topic"
)

// errReplayFromLink names the protocol violation of a broker link
// sending a client-only REPLAY frame.
var errReplayFromLink = errors.New("broker: replay from broker link")

// This file wires the durable topic log (internal/durable) into the
// broker: constrained trace derivatives persist in route() before
// fan-out, and a client that sent REPLAY for a subscribed durable
// topic is served exclusively by a per-(peer,topic) pump goroutine
// that tails the log — catch-up and live delivery unified in one
// ordered, offset-annotated stream (frameDurable), with ack-cursor
// tracking and backoff-paced redelivery when acks stop arriving.
// PROTOCOL.md §3.8.

var (
	mDurableAppendErrs = obs.Default.Counter("durable_append_errors_total")
	mReplayRecords     = obs.Default.Counter("durable_replay_records_total")
	mRedeliveries      = obs.Default.Counter("durable_redeliveries_total")
	mAckCursors        = obs.Default.Counter("durable_acks_total")
	mReplayCursors     = obs.Default.Gauge("durable_replay_cursors")
)

// Replay pump batch bounds: how much one wakeup reads from the log.
const (
	replayBatchRecords = 64
	replayBatchBytes   = 256 << 10
)

// Default redelivery pacing when Config.Redeliver is zero: first
// retransmit after 250ms without ack progress, backing off to 5s.
var defaultRedeliver = backoff.Config{
	Initial: 250 * time.Millisecond,
	Max:     5 * time.Second,
	Factor:  2,
	Jitter:  0.2,
}

// persistable reports whether envelopes on tp are appended to the
// durable log before fan-out. The default predicate selects the
// per-trace-topic derivative class topics (Table 2) — the streams the
// availability ledger is built from.
func (b *Broker) persistable(tp topic.Topic) bool {
	if b.cfg.DurablePersist != nil {
		return b.cfg.DurablePersist(tp)
	}
	return topic.IsTraceDerivative(tp)
}

// replayCursor is the per-(peer,topic) at-least-once delivery state: a
// pump goroutine tails the topic log from sent+1, annotating each
// record with its offset (frameDurable), while acks advance acked.
// When acks stall past the backoff deadline the pump rewinds sent to
// acked and retransmits.
type replayCursor struct {
	b  *Broker
	p  *peer
	ts string
	lg *durable.Log

	mu       sync.Mutex
	acked    uint64
	sent     uint64
	pol      *backoff.Policy
	deadline time.Time // zero when nothing is outstanding

	kick     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
}

func (b *Broker) newReplayCursor(p *peer, ts string, lg *durable.Log, since uint64) *replayCursor {
	cfg := b.cfg.Redeliver
	if cfg.Initial <= 0 {
		cfg = defaultRedeliver
	}
	return &replayCursor{
		b: b, p: p, ts: ts, lg: lg,
		acked: since, sent: since,
		pol:  backoff.New(cfg),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
}

func (rc *replayCursor) stopNow() {
	rc.stopOnce.Do(func() { close(rc.stop) })
}

// ack advances the cursor from a ctrlAckCur frame.
func (rc *replayCursor) ack(offset uint64) {
	rc.mu.Lock()
	if offset > rc.acked {
		rc.acked = min(offset, rc.sent)
		rc.pol.Reset()
		if rc.acked == rc.sent {
			rc.deadline = time.Time{}
		} else {
			rc.deadline = time.Now().Add(rc.pol.Next())
		}
	}
	rc.mu.Unlock()
	select {
	case rc.kick <- struct{}{}:
	default:
	}
}

// run is the pump loop. It exits when the cursor is stopped (peer
// removal, unsubscribe, replacement) and is tracked on the broker's
// wait group so Close joins it.
func (rc *replayCursor) run() {
	defer rc.b.wg.Done()
	defer mReplayCursors.Add(-1)
	mReplayCursors.Add(1)
	for {
		// Capture the notify channel before reading Head so an append
		// between the two never goes unobserved.
		notify := rc.lg.Notify()
		rc.mu.Lock()
		sent := rc.sent
		rc.mu.Unlock()
		if head := rc.lg.Head(); sent < head {
			if !rc.pumpBatch(sent) {
				return
			}
			continue
		}
		rc.mu.Lock()
		deadline := rc.deadline
		rc.mu.Unlock()
		if !deadline.IsZero() {
			timer := time.NewTimer(time.Until(deadline))
			select {
			case <-rc.stop:
				timer.Stop()
				return
			case <-notify:
				timer.Stop()
			case <-rc.kick:
				timer.Stop()
			case <-timer.C:
				rc.rewind()
			}
			continue
		}
		select {
		case <-rc.stop:
			return
		case <-notify:
		case <-rc.kick:
		}
	}
}

// pumpBatch reads and transmits one batch from sent+1. It returns
// false when the peer is gone and the pump should exit.
func (rc *replayCursor) pumpBatch(sent uint64) bool {
	recs, err := rc.lg.ReadFrom(sent+1, replayBatchRecords, replayBatchBytes)
	if err != nil || len(recs) == 0 {
		// A read error here means the log was closed under us
		// (broker shutdown) or the segment vanished to retention;
		// back off to the wait path either way.
		return err == nil
	}
	now := rc.b.clk.Now()
	for _, r := range recs {
		frame := make([]byte, 0, 1+8+1+len(r.Payload))
		frame = appendDurable(frame, r.Offset, nil)
		frame = append(frame, frameEnvelope)
		frame = append(frame, r.Payload...)
		shed, stalledFor := rc.p.out.enqueueData(frame, now)
		if shed > 0 {
			rc.b.stats.sheds.Add(uint64(shed))
			mEgressSheds.Add(uint64(shed))
			if stalledFor >= rc.b.cfg.SlowConsumerDeadline {
				rc.b.evictPeer(rc.p, ReasonSlowConsumer, "replay egress saturated")
				return false
			}
		}
		mReplayRecords.Inc()
		rc.b.stats.replayRecords.Add(1)
	}
	last := recs[len(recs)-1].Offset
	rc.mu.Lock()
	if last > rc.sent {
		rc.sent = last
	}
	if rc.deadline.IsZero() && rc.sent > rc.acked {
		rc.deadline = time.Now().Add(rc.pol.Next())
	}
	rc.mu.Unlock()
	return !rc.p.closed.Load()
}

// rewind retransmits everything past the ack cursor: the deadline
// elapsed with no ack progress, so sent snaps back to acked and the
// pump re-reads the gap from the log. The backoff policy paces
// successive rewinds so a wedged-but-alive consumer is not flooded.
func (rc *replayCursor) rewind() {
	rc.mu.Lock()
	if rc.acked < rc.sent && !rc.deadline.IsZero() && !time.Now().Before(rc.deadline) {
		n := rc.sent - rc.acked
		rc.sent = rc.acked
		rc.deadline = time.Now().Add(rc.pol.Next())
		mRedeliveries.Add(n)
		rc.b.stats.redeliveries.Add(n)
	}
	rc.mu.Unlock()
}

// cursorFor returns the peer's replay cursor for exact topic ts, nil
// if none. deliver() consults it to skip live enqueueing: a cursored
// (peer,topic) receives every envelope from its pump, offset-annotated
// and in log order.
func (p *peer) cursorFor(ts string) *replayCursor {
	p.curMu.Lock()
	defer p.curMu.Unlock()
	return p.cursors[ts]
}

// setCursor installs (or replaces) the peer's cursor for ts.
func (p *peer) setCursor(ts string, rc *replayCursor) {
	p.curMu.Lock()
	old := p.cursors[ts]
	if p.cursors == nil {
		p.cursors = make(map[string]*replayCursor)
	}
	p.cursors[ts] = rc
	p.curMu.Unlock()
	p.hasCursors.Store(true)
	if old != nil {
		old.stopNow()
	}
}

// dropCursor stops and removes the cursor for ts, if any.
func (p *peer) dropCursor(ts string) {
	p.curMu.Lock()
	rc := p.cursors[ts]
	delete(p.cursors, ts)
	p.curMu.Unlock()
	if rc != nil {
		rc.stopNow()
	}
}

// stopCursors stops every pump for this peer (peer removal).
func (p *peer) stopCursors() {
	p.curMu.Lock()
	cursors := make([]*replayCursor, 0, len(p.cursors))
	for _, rc := range p.cursors {
		cursors = append(cursors, rc)
	}
	p.cursors = nil
	p.curMu.Unlock()
	for _, rc := range cursors {
		rc.stopNow()
	}
}

// handleReplay serves a client's ctrlReplay: validate, install a
// cursor at the client's since-offset, and start the pump. The client
// must already hold the (authorized) subscription — replay inherits
// its authorization — and links never replay: brokers forward live
// traffic, consumers own cursors.
func (b *Broker) handleReplay(p *peer, c *control) {
	if p.isBroker {
		b.punish(p, errReplayFromLink)
		return
	}
	if b.cfg.Durable == nil {
		b.deny(p, c.ID, "durable log not enabled")
		return
	}
	tp, err := topic.Parse(c.Topic)
	if err != nil {
		b.deny(p, c.ID, err.Error())
		b.punish(p, err)
		return
	}
	if !b.persistable(tp) {
		b.deny(p, c.ID, "topic not durable")
		return
	}
	b.mu.RLock()
	_, subscribed := p.subs[c.Topic]
	b.mu.RUnlock()
	if !subscribed {
		b.deny(p, c.ID, "replay requires an active subscription")
		return
	}
	lg, err := b.cfg.Durable.Ensure(c.Topic)
	if err != nil {
		b.deny(p, c.ID, "durable log unavailable")
		b.log.Warn("durable ensure failed", "topic", c.Topic, "err", err)
		return
	}
	rc := b.newReplayCursor(p, c.Topic, lg, c.Cursor)
	p.setCursor(c.Topic, rc)
	b.wg.Add(1)
	go rc.run()
	b.ack(p, c.ID)
}

// handleAckCur advances a replay cursor from a ctrlAckCur frame.
// Unknown cursors are ignored: the ack may race an unsubscribe or a
// cursor replacement, neither of which is a protocol violation.
func (b *Broker) handleAckCur(p *peer, c *control) {
	rc := p.cursorFor(c.Topic)
	if rc == nil {
		return
	}
	mAckCursors.Inc()
	rc.ack(c.Cursor)
}
