package broker

import (
	"sync"
	"time"

	"entitytrace/internal/obs"
	"entitytrace/internal/transport"
)

// Egress metrics, process-wide across broker instances.
var (
	mEgressDepth     = obs.Default.Gauge("broker_egress_queue_depth")
	mEgressSheds     = obs.Default.Counter("broker_egress_sheds_total")
	mSlowEvictions   = obs.Default.Counter("broker_slow_consumer_evictions_total")
	mThrottled       = obs.Default.Counter("broker_publish_throttled_total")
	mQuarantineRejct = obs.Default.Counter("broker_quarantine_rejects_total")
	mBatchSends      = obs.Default.Counter("broker_egress_batch_sends_total")
	mBatchFrames     = obs.Default.Counter("broker_egress_batched_frames_total")
)

// egress is a peer's bounded outbound queue, drained by one dedicated
// writer goroutine, so a peer that stops reading stalls only its own
// writer — never the routing goroutine that fans a message out (the
// seed's synchronous per-peer send head-of-line-blocked every delivery
// behind the slowest subscriber).
//
// Two priority classes share the writer: control frames (ACK/DENY/SUB/
// DISCONNECT) always transmit before queued data frames, and are never
// shed. Data frames beyond the bound shed oldest-first — for an
// availability-tracking workload a fresher trace supersedes a staler
// one, so dropping from the head loses the least information.
type egress struct {
	conn transport.Conn

	// batchBytes > 0 enables drain coalescing: each writer pass packs as
	// many queued data frames as fit under the byte budget into one
	// frameBatch send. batchLatency > 0 additionally lets an underfull
	// drain linger once, waiting for more frames to accumulate, before
	// flushing — bounding the latency a coalesced frame can be held.
	// Control frames are never batched and always preempt the linger.
	batchBytes   int
	batchLatency time.Duration

	mu        sync.Mutex
	wake      chan struct{} // 1-buffered writer wakeup
	ctrl      [][]byte      // control frames: priority, never shed
	data      [][]byte      // data frames: bounded, shed oldest on overflow
	dataHead  int           // index of the logical head within data
	bound     int           // max queued data frames
	ctrlBound int           // max queued control frames (hopeless peer past it)
	// stalledSince is the time the data queue first overflowed and has
	// not recovered since; zero while healthy. The writer clears it when
	// the queue drains below half the bound (hysteresis, so a consumer
	// that trickle-reads without catching up still accumulates stall
	// time).
	stalledSince time.Time
	sheds        uint64
	closing      bool // flush remaining control frames, then close conn
	dead         bool // writer exited (send error or close)
}

// egressCtrlSlack is how many control frames beyond the data bound the
// control queue tolerates before the peer is declared hopeless.
const egressCtrlSlack = 64

func newEgress(conn transport.Conn, bound, batchBytes int, batchLatency time.Duration) *egress {
	return &egress{
		conn:         conn,
		wake:         make(chan struct{}, 1),
		bound:        bound,
		ctrlBound:    bound + egressCtrlSlack,
		batchBytes:   batchBytes,
		batchLatency: batchLatency,
	}
}

func (e *egress) signal() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// enqueueCtrl queues a priority control frame. It reports false when the
// control queue itself is full — a peer that cannot even absorb control
// traffic is beyond rescue and should be closed by the caller.
func (e *egress) enqueueCtrl(frame []byte) bool {
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return true // connection already torn down; nothing to escalate
	}
	if len(e.ctrl) >= e.ctrlBound {
		e.mu.Unlock()
		return false
	}
	e.ctrl = append(e.ctrl, frame)
	mEgressDepth.Add(1)
	e.mu.Unlock()
	e.signal()
	return true
}

// enqueueData queues a data frame, shedding the oldest queued frame when
// the bound is hit. It returns the number of frames shed by this call
// (0 or 1) and, when the queue is saturated, how long it has
// continuously been so — the caller turns that into a slow-consumer
// eviction once it exceeds the deadline.
func (e *egress) enqueueData(frame []byte, now time.Time) (shed int, stalledFor time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead || e.closing {
		return 0, 0
	}
	if e.queuedData() >= e.bound {
		// Shed the oldest queued frame to admit the new one.
		e.data[e.dataHead] = nil
		e.dataHead++
		e.compact()
		e.sheds++
		shed = 1
		mEgressDepth.Add(-1)
		if e.stalledSince.IsZero() {
			e.stalledSince = now
		}
		stalledFor = now.Sub(e.stalledSince)
	}
	e.data = append(e.data, frame)
	mEgressDepth.Add(1)
	e.signal()
	return shed, stalledFor
}

// queuedData returns the number of live data frames. Callers hold e.mu.
func (e *egress) queuedData() int { return len(e.data) - e.dataHead }

// depth reports the current live data-frame count for health snapshots;
// safe from any goroutine.
func (e *egress) depth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queuedData()
}

// compact reclaims the consumed prefix of the data slice once it grows
// past the live region. Callers hold e.mu.
func (e *egress) compact() {
	if e.dataHead > len(e.data)/2 && e.dataHead > 16 {
		n := copy(e.data, e.data[e.dataHead:])
		for i := n; i < len(e.data); i++ {
			e.data[i] = nil
		}
		e.data = e.data[:n]
		e.dataHead = 0
	}
}

// shedAll drops every queued data frame (eviction: the peer will never
// read them) and returns how many were dropped.
func (e *egress) shedAll() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.queuedData()
	e.data = nil
	e.dataHead = 0
	e.sheds += uint64(n)
	mEgressDepth.Add(-int64(n))
	return n
}

// beginClose asks the writer to flush remaining control frames and then
// close the connection. Data frames are not flushed.
func (e *egress) beginClose() {
	e.mu.Lock()
	e.closing = true
	e.mu.Unlock()
	e.signal()
}

// popBatchLocked removes and returns the longest prefix of queued data
// frames that fits the batch byte budget (always at least one frame,
// even when that frame alone exceeds the budget) and the frame cap.
// Callers hold e.mu.
func (e *egress) popBatchLocked() [][]byte {
	var frames [][]byte
	size := 1 // frameBatch kind byte
	for e.queuedData() > 0 && len(frames) < maxBatchFrames {
		f := e.data[e.dataHead]
		if len(frames) > 0 && size+4+len(f) > e.batchBytes {
			break
		}
		size += 4 + len(f)
		frames = append(frames, f)
		e.data[e.dataHead] = nil
		e.dataHead++
	}
	e.compact()
	return frames
}

// batchUnderfullLocked reports whether the queued data would not yet
// fill the batch byte budget — the condition under which a linger pass
// waits for more. Callers hold e.mu.
func (e *egress) batchUnderfullLocked() bool {
	size := 1
	for i := e.dataHead; i < len(e.data); i++ {
		size += 4 + len(e.data[i])
		if size >= e.batchBytes {
			return false
		}
	}
	return true
}

// run is the writer loop: it drains control frames before data frames
// until the connection dies or beginClose has been honoured. It owns all
// conn.Send calls for the peer. With batching enabled, each data pass
// coalesces the queue (up to batchBytes) into one frameBatch send; an
// underfull pass may linger once, up to batchLatency, for more frames —
// control frames and closure interrupt the linger immediately.
func (e *egress) run() {
	lingered := false
	for {
		e.mu.Lock()
		for len(e.ctrl) == 0 && e.queuedData() == 0 && !e.closing && !e.dead {
			e.mu.Unlock()
			<-e.wake
			e.mu.Lock()
		}
		if e.dead || (e.closing && len(e.ctrl) == 0) {
			// Drop whatever data remains and leave.
			drop := int64(len(e.ctrl) + e.queuedData())
			e.ctrl, e.data, e.dataHead = nil, nil, 0
			e.dead = true
			e.mu.Unlock()
			mEgressDepth.Add(-drop)
			e.conn.Close()
			return
		}
		var frame []byte
		consumed := int64(1)
		if len(e.ctrl) > 0 {
			frame = e.ctrl[0]
			e.ctrl = e.ctrl[1:]
		} else if e.batchBytes <= 0 {
			frame = e.data[e.dataHead]
			e.data[e.dataHead] = nil
			e.dataHead++
			e.compact()
		} else {
			if e.batchLatency > 0 && !lingered && !e.closing && e.batchUnderfullLocked() {
				// Underfull drain: hold the frames once, bounded by the
				// latency budget, hoping to amortize the send. A control
				// frame or closure signals the wake channel and cuts the
				// linger short.
				lingered = true
				e.mu.Unlock()
				t := time.NewTimer(e.batchLatency)
				select {
				case <-e.wake:
				case <-t.C:
				}
				t.Stop()
				continue
			}
			frames := e.popBatchLocked()
			if len(frames) == 1 {
				frame = frames[0]
			} else {
				frame = appendBatch(make([]byte, 0, batchWireSize(frames)), frames)
				mBatchSends.Inc()
				mBatchFrames.Add(uint64(len(frames)))
			}
			consumed = int64(len(frames))
			lingered = false
		}
		e.mu.Unlock()

		err := e.conn.Send(frame)

		e.mu.Lock()
		mEgressDepth.Add(-consumed)
		if err != nil {
			drop := int64(len(e.ctrl) + e.queuedData())
			e.ctrl, e.data, e.dataHead = nil, nil, 0
			e.dead = true
			e.mu.Unlock()
			mEgressDepth.Add(-drop)
			e.conn.Close()
			return
		}
		// A completed send with the queue back under half the bound means
		// the consumer is draining again: clear the stall clock.
		if e.queuedData() <= e.bound/2 {
			e.stalledSince = time.Time{}
		}
		e.mu.Unlock()
	}
}
