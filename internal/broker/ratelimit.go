package broker

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// pubBucket is a per-publisher token bucket. Admission is checked at
// ingress, before the envelope is even unmarshaled, so a flooding
// publisher is throttled before signature verification burns CPU
// (§5.2's DoS coping pushed to the cheapest possible point). It is
// accessed only from the owning peer's receive loop, so it needs no
// lock.
type pubBucket struct {
	tokens float64
	last   time.Time
}

// allow consumes one token if available, refilling at rate tokens/sec up
// to burst. The first call initializes a full bucket.
func (b *pubBucket) allow(now time.Time, rate, burst float64) bool {
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+rate*dt.Seconds())
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// violationScore is the decaying §5.2 offender score that replaces the
// seed's monotonically increasing violation counter: each violation adds
// its weight, and the accumulated score halves every half-life. A
// long-lived legitimate peer with sporadic failures therefore never
// accumulates into an unjust disconnect, while a burst or sustained
// attack still crosses the limit quickly.
//
// Writes happen only from the owning peer's receive loop; the score
// itself is kept as atomic float bits so health snapshots can read it
// from other goroutines without a lock.
type violationScore struct {
	bits atomic.Uint64 // math.Float64bits of the score
	at   time.Time     // last decay application; owner goroutine only
}

// add decays the score to now, adds weight, and returns the new score.
// Owner goroutine only.
func (v *violationScore) add(now time.Time, weight float64, halfLife time.Duration) float64 {
	score := math.Float64frombits(v.bits.Load())
	if !v.at.IsZero() && halfLife > 0 {
		if dt := now.Sub(v.at); dt > 0 {
			score *= math.Exp2(-float64(dt) / float64(halfLife))
		}
	}
	v.at = now
	score += weight
	v.bits.Store(math.Float64bits(score))
	return score
}

// current returns the score as of its last update (no decay applied);
// safe from any goroutine.
func (v *violationScore) current() float64 {
	return math.Float64frombits(v.bits.Load())
}

// quarantine tracks principals whose reconnects are temporarily refused
// after an eviction (§5.2 repeat offenders): a banned entity that
// redials is sent a typed DISCONNECT(quarantined) and dropped before it
// can cost the broker anything further.
type quarantine struct {
	mu    sync.Mutex
	until map[string]time.Time
}

func newQuarantine() *quarantine {
	return &quarantine{until: make(map[string]time.Time)}
}

// ban quarantines the principal until now+d.
func (q *quarantine) ban(principal string, now time.Time, d time.Duration) {
	if d <= 0 || principal == "" {
		return
	}
	q.mu.Lock()
	q.until[principal] = now.Add(d)
	q.mu.Unlock()
}

// active reports whether principal is currently quarantined, lazily
// dropping lapsed entries.
func (q *quarantine) active(principal string, now time.Time) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	until, ok := q.until[principal]
	if !ok {
		return false
	}
	if now.Before(until) {
		return true
	}
	delete(q.until, principal)
	return false
}
