// Package broker implements the NaradaBrokering-style publish/subscribe
// substrate of §2: cooperating broker nodes that route topic-addressed
// messages between producers and consumers. Entities connect to one
// broker and funnel messages through it; brokers propagate subscriptions
// to each other and forward messages along links with interested
// subscribers. Constrained topics (§3.1) are enforced at every broker,
// and an optional message guard lets the tracing layer impose
// authorization-token checks (§4.3) with denial-of-service accounting
// (§5.2).
package broker

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame kinds on the wire: a one-byte discriminator precedes either a
// control body, a marshaled message envelope, or a batch of envelope
// frames coalesced by the egress writer (PROTOCOL.md §3.7).
const (
	frameControl  byte = 1
	frameEnvelope byte = 2
	frameBatch    byte = 3
	// frameDurable is a broker→client envelope annotated with its
	// durable-log offset: [kind][u64 offset][envelope frame]. Replay
	// pumps use it so the consumer can dedupe and ack by offset
	// (PROTOCOL.md §3.8).
	frameDurable byte = 4
)

// appendDurable appends the durable wire form: kind byte, offset, and
// the complete envelope frame (its own kind byte included).
func appendDurable(dst []byte, offset uint64, envFrame []byte) []byte {
	dst = append(dst, frameDurable)
	dst = binary.BigEndian.AppendUint64(dst, offset)
	return append(dst, envFrame...)
}

// parseDurable splits a durable frame body (after the kind byte) into
// its offset and the inner envelope frame. Strict: the inner frame must
// be a non-empty frameEnvelope within the length cap.
func parseDurable(b []byte) (uint64, []byte, error) {
	if len(b) < 9 {
		return 0, nil, errors.New("broker: truncated durable frame")
	}
	offset := binary.BigEndian.Uint64(b[:8])
	inner := b[8:]
	if len(inner) > maxBatchFrameLen {
		return 0, nil, fmt.Errorf("broker: durable frame length %d exceeds %d", len(inner), maxBatchFrameLen)
	}
	if inner[0] != frameEnvelope {
		return 0, nil, fmt.Errorf("broker: durable inner frame kind %d (only envelopes replay)", inner[0])
	}
	return offset, inner, nil
}

// Batch framing bounds. A batch frame is frameBatch followed by
// repeated [u32 length][sub-frame] entries, where every sub-frame is a
// complete frameEnvelope frame (kind byte included). Control frames are
// never batched — they ride the priority lane — and batches never nest.
const (
	// maxBatchFrames bounds the entries one batch may carry.
	maxBatchFrames = 4096
	// maxBatchFrameLen bounds one sub-frame's length (matches the message
	// reader's field cap).
	maxBatchFrameLen = 16 << 20
)

// appendBatch appends the batch wire form of frames to dst: the
// frameBatch kind byte, then each frame length-prefixed. The caller
// guarantees frames is non-empty and every entry is a frameEnvelope
// frame.
func appendBatch(dst []byte, frames [][]byte) []byte {
	dst = append(dst, frameBatch)
	for _, f := range frames {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f)))
		dst = append(dst, f...)
	}
	return dst
}

// batchWireSize returns the exact length appendBatch would produce.
func batchWireSize(frames [][]byte) int {
	n := 1
	for _, f := range frames {
		n += 4 + len(f)
	}
	return n
}

// parseBatch splits a batch frame body (after the kind byte) into its
// sub-frames. It is strict: at least one entry, every entry a non-empty
// frameEnvelope frame within the length cap, no trailing bytes, no
// nested batches — so a truncated, oversized or interleaved frame is
// rejected as a whole rather than partially applied.
func parseBatch(b []byte) ([][]byte, error) {
	if len(b) == 0 {
		return nil, errors.New("broker: empty batch frame")
	}
	var frames [][]byte
	for len(b) > 0 {
		if len(frames) >= maxBatchFrames {
			return nil, fmt.Errorf("broker: batch exceeds %d frames", maxBatchFrames)
		}
		if len(b) < 4 {
			return nil, errors.New("broker: truncated batch length prefix")
		}
		n := binary.BigEndian.Uint32(b[:4])
		b = b[4:]
		if n == 0 {
			return nil, errors.New("broker: empty batch sub-frame")
		}
		if n > maxBatchFrameLen {
			return nil, fmt.Errorf("broker: batch sub-frame length %d exceeds %d", n, maxBatchFrameLen)
		}
		if int(n) > len(b) {
			return nil, errors.New("broker: truncated batch sub-frame")
		}
		f := b[:n]
		b = b[n:]
		if f[0] != frameEnvelope {
			return nil, fmt.Errorf("broker: batch sub-frame kind %d (only envelopes batch)", f[0])
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// Control message kinds.
type ctrlKind uint8

const (
	// ctrlHello opens a connection, identifying the peer.
	ctrlHello ctrlKind = iota + 1
	// ctrlSub registers interest in a topic.
	ctrlSub
	// ctrlUnsub withdraws interest.
	ctrlUnsub
	// ctrlAck acknowledges a Sub/Unsub by ID (client connections only).
	ctrlAck
	// ctrlDeny rejects a Sub by ID with a reason.
	ctrlDeny
	// ctrlBye announces orderly shutdown.
	ctrlBye
	// ctrlDisconnect is a broker→client notice that the broker is about
	// to terminate the connection, carrying a typed reason (§5.2 / §3.3
	// of PROTOCOL.md). The DisconnectReason code travels in the ID field;
	// Reason holds free-form detail. Best effort: a peer whose pipe is
	// already full may never read it, but a quarantined reconnect always
	// receives one as the first (and only) frame of the new connection.
	ctrlDisconnect
	// ctrlReplay asks the broker to serve a subscribed durable topic
	// from the log: ID correlates the ack/deny, Cursor is the highest
	// offset the subscriber has already processed (0 for everything
	// retained). PROTOCOL.md §3.8.
	ctrlReplay
	// ctrlAckCur advances a replay subscription's ack cursor: Cursor is
	// the highest contiguously processed offset. Fire-and-forget.
	ctrlAckCur
)

// DisconnectReason is the typed cause carried by a DISCONNECT control
// frame. The numeric values are wire format (PROTOCOL.md §3.3) — do not
// reorder.
type DisconnectReason uint64

const (
	// ReasonNone means the connection dropped without a broker-announced
	// cause (network failure, orderly BYE, broker shutdown).
	ReasonNone DisconnectReason = 0
	// ReasonDoS: the peer's decaying violation score crossed the limit
	// ("the broker will terminate communications with such an entity",
	// §5.2).
	ReasonDoS DisconnectReason = 1
	// ReasonSlowConsumer: the peer's egress queue stayed saturated past
	// the slow-consumer deadline and the broker shed then evicted it.
	ReasonSlowConsumer DisconnectReason = 2
	// ReasonQuarantined: the peer's principal is temporarily banned;
	// reconnects are refused until the quarantine lapses.
	ReasonQuarantined DisconnectReason = 3
)

// String names the reason for logs and metrics labels.
func (r DisconnectReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonDoS:
		return "dos"
	case ReasonSlowConsumer:
		return "slow-consumer"
	case ReasonQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("reason-%d", uint64(r))
	}
}

// Evicted reports whether the reason represents a deliberate broker
// eviction — the cases where a reconnecting client should back off hard
// instead of hot-looping against a broker that just threw it out.
func (r DisconnectReason) Evicted() bool {
	return r == ReasonDoS || r == ReasonSlowConsumer || r == ReasonQuarantined
}

// control is the parsed form of a control frame.
type control struct {
	Kind ctrlKind
	// Hello fields.
	IsBroker bool
	Name     string
	// Sub/Unsub/Ack/Deny fields.
	ID     uint64
	Topic  string
	Reason string
	// Replay/AckCur field: a durable-log offset. Marshaled only for
	// those kinds, so older control frames keep their exact wire form.
	Cursor uint64
}

// hasCursor reports whether kind carries the trailing Cursor field.
func (k ctrlKind) hasCursor() bool { return k == ctrlReplay || k == ctrlAckCur }

// marshalControl encodes a control frame body (without the frame kind
// byte).
func marshalControl(c *control) []byte {
	var buf []byte
	buf = append(buf, byte(c.Kind))
	if c.IsBroker {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendString(buf, c.Name)
	buf = binary.BigEndian.AppendUint64(buf, c.ID)
	buf = appendString(buf, c.Topic)
	buf = appendString(buf, c.Reason)
	if c.Kind.hasCursor() {
		buf = binary.BigEndian.AppendUint64(buf, c.Cursor)
	}
	return buf
}

// parseControl decodes a control frame body.
func parseControl(b []byte) (*control, error) {
	c := &control{}
	if len(b) < 2 {
		return nil, errors.New("broker: short control frame")
	}
	c.Kind = ctrlKind(b[0])
	c.IsBroker = b[1] == 1
	rest := b[2:]
	var err error
	if c.Name, rest, err = readString(rest); err != nil {
		return nil, err
	}
	if len(rest) < 8 {
		return nil, errors.New("broker: truncated control frame")
	}
	c.ID = binary.BigEndian.Uint64(rest[:8])
	rest = rest[8:]
	if c.Topic, rest, err = readString(rest); err != nil {
		return nil, err
	}
	if c.Reason, rest, err = readString(rest); err != nil {
		return nil, err
	}
	if c.Kind.hasCursor() {
		if len(rest) < 8 {
			return nil, errors.New("broker: truncated cursor field")
		}
		c.Cursor = binary.BigEndian.Uint64(rest[:8])
		rest = rest[8:]
	}
	if len(rest) != 0 {
		return nil, errors.New("broker: trailing control bytes")
	}
	if c.Kind < ctrlHello || c.Kind > ctrlAckCur {
		return nil, fmt.Errorf("broker: unknown control kind %d", c.Kind)
	}
	return c, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, errors.New("broker: truncated string")
	}
	n := binary.BigEndian.Uint32(b[:4])
	if n > 1<<20 || int(n) > len(b)-4 {
		return "", nil, errors.New("broker: bad string length")
	}
	return string(b[4 : 4+n]), b[4+n:], nil
}
