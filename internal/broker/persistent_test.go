package broker

import (
	"testing"
	"time"

	"entitytrace/internal/backoff"
	"entitytrace/internal/message"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// TestPersistentLinkSurvivesBrokerRestart kills a neighbouring broker
// and restarts it at the same address; the persistent link re-dials,
// re-synchronizes subscriptions, and routing recovers.
func TestPersistentLinkSurvivesBrokerRestart(t *testing.T) {
	tr := transport.NewInproc()

	// b1 holds the subscriber and maintains a persistent link to the
	// address "hub".
	b1 := New(Config{Name: "b1"})
	defer b1.Close()
	l1, err := tr.Listen("edge")
	if err != nil {
		t.Fatal(err)
	}
	b1.Serve(l1)

	startHub := func() *Broker {
		hub := New(Config{Name: "hub"})
		lh, err := tr.Listen("hub")
		if err != nil {
			t.Fatal(err)
		}
		hub.Serve(lh)
		return hub
	}
	hub := startHub()

	b1.ConnectToPersistent(tr, "hub", 20*time.Millisecond)

	sub, err := Connect(tr, "edge", "subscriber")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	got := make(chan *message.Envelope, 16)
	tp := topic.MustParse("/durable/topic")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial propagation", func() bool { return hub.HasSubscription(tp.String()) })

	pub, err := Connect(tr, "hub", "publisher")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(message.New(message.TypeData, tp, "publisher", []byte("before"))); err != nil {
		t.Fatal(err)
	}
	recvEnvelope(t, got, "pre-restart delivery")

	// Kill the hub; the persistent link starts re-dialing.
	pub.Close()
	hub.Close()
	time.Sleep(50 * time.Millisecond)

	// Restart at the same address; the link must come back and re-sync
	// the /durable/topic subscription.
	hub2 := startHub()
	defer hub2.Close()
	waitFor(t, "post-restart propagation", func() bool { return hub2.HasSubscription(tp.String()) })

	pub2, err := Connect(tr, "hub", "publisher")
	if err != nil {
		t.Fatal(err)
	}
	defer pub2.Close()
	if err := pub2.Publish(message.New(message.TypeData, tp, "publisher", []byte("after"))); err != nil {
		t.Fatal(err)
	}
	e := recvEnvelope(t, got, "post-restart delivery")
	if string(e.Payload) != "after" {
		t.Fatalf("payload %q", e.Payload)
	}
}

// TestPersistentLinkBackoffEstablishesLate starts the redial loop before
// any listener exists at the target address: dial attempts fail and back
// off, and once the peer finally appears the link comes up, syncs
// subscriptions and routes. Link metrics must reflect the struggle
// (more dial attempts than establishments).
func TestPersistentLinkBackoffEstablishesLate(t *testing.T) {
	tr := transport.NewInproc()
	dials0, up0 := mLinkDials.Value(), mLinkUp.Value()

	b1 := New(Config{Name: "edge-late"})
	defer b1.Close()
	l1, err := tr.Listen("edge-late")
	if err != nil {
		t.Fatal(err)
	}
	b1.Serve(l1)

	// No listener at "hub-late" yet: every dial fails.
	b1.ConnectToPersistentBackoff(tr, "hub-late", backoff.Config{
		Initial: 5 * time.Millisecond,
		Max:     20 * time.Millisecond,
		Seed:    3,
	})

	sub, err := Connect(tr, "edge-late", "subscriber")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	got := make(chan *message.Envelope, 16)
	tp := topic.MustParse("/late/topic")
	if err := sub.Subscribe(tp, func(e *message.Envelope) { got <- e }); err != nil {
		t.Fatal(err)
	}

	// Let several failed attempts accumulate before the peer exists.
	waitFor(t, "failed dial attempts", func() bool { return mLinkDials.Value() >= dials0+3 })

	hub := New(Config{Name: "hub-late"})
	defer hub.Close()
	lh, err := tr.Listen("hub-late")
	if err != nil {
		t.Fatal(err)
	}
	hub.Serve(lh)

	waitFor(t, "late link propagation", func() bool { return hub.HasSubscription(tp.String()) })
	if up := mLinkUp.Value() - up0; up < 1 {
		t.Fatalf("broker_link_established_total delta = %d", up)
	}
	if dials := mLinkDials.Value() - dials0; dials < 4 {
		t.Fatalf("broker_link_dial_attempts_total delta = %d, want >= 4", dials)
	}

	pub, err := Connect(tr, "hub-late", "publisher")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(message.New(message.TypeData, tp, "publisher", []byte("eventually"))); err != nil {
		t.Fatal(err)
	}
	e := recvEnvelope(t, got, "late-link delivery")
	if string(e.Payload) != "eventually" {
		t.Fatalf("payload %q", e.Payload)
	}
}

// TestPersistentLinkStopsOnClose verifies the redial loop terminates
// when the owning broker closes (no goroutine leak / busy loop).
func TestPersistentLinkStopsOnClose(t *testing.T) {
	tr := transport.NewInproc()
	b := New(Config{Name: "lonely"})
	// No listener at "void": the loop only ever fails to dial.
	b.ConnectToPersistent(tr, "void", 5*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		b.Close() // must not hang on the redial goroutine
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with a persistent link pending")
	}
}
