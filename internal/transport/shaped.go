package transport

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrSeedRequired reports a ShapeConfig that requests randomized
// behaviour (loss or jitter) without an explicit seed. Deriving a seed
// implicitly (e.g. from the wall clock) would make "deterministic"
// experiments silently flaky, so callers must choose one.
var ErrSeedRequired = errors.New("transport: ShapeConfig.Seed must be non-zero when LossRate or Jitter is set")

// Shaped wraps another transport, injecting deterministic-seedable
// artificial latency and loss on received frames. The paper's testbed is
// a 100 Mbps LAN with 1-2 ms per-hop latency (§6.1); Shaped lets the
// benchmark harness reproduce that cost structure on a single machine,
// and lets failure-detector tests exercise lossy links.
type Shaped struct {
	inner Transport
	cfg   ShapeConfig
}

// ShapeConfig describes the injected network behaviour.
type ShapeConfig struct {
	// Latency is added to every delivered frame (one-way).
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) component.
	Jitter time.Duration
	// LossRate drops frames with the given probability in [0, 1).
	LossRate float64
	// Seed makes the loss/jitter sequence reproducible. It is required
	// (non-zero) whenever LossRate or Jitter introduces randomness;
	// pure-latency shaping may leave it zero.
	Seed int64
}

// NewShaped wraps inner with the given shaping. It fails with
// ErrSeedRequired if cfg requests randomized behaviour without an
// explicit seed.
func NewShaped(inner Transport, cfg ShapeConfig) (*Shaped, error) {
	if cfg.Seed == 0 && (cfg.LossRate > 0 || cfg.Jitter > 0) {
		return nil, ErrSeedRequired
	}
	return &Shaped{inner: inner, cfg: cfg}, nil
}

// Name implements Transport.
func (s *Shaped) Name() string { return s.inner.Name() + "+shaped" }

// Listen implements Transport.
func (s *Shaped) Listen(addr string) (Listener, error) {
	l, err := s.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &shapedListener{l: l, cfg: s.cfg}, nil
}

// Dial implements Transport.
func (s *Shaped) Dial(addr string) (Conn, error) {
	c, err := s.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return newShapedConn(c, s.cfg), nil
}

type shapedListener struct {
	l   Listener
	cfg ShapeConfig
}

func (sl *shapedListener) Accept() (Conn, error) {
	c, err := sl.l.Accept()
	if err != nil {
		return nil, err
	}
	return newShapedConn(c, sl.cfg), nil
}

func (sl *shapedListener) Close() error { return sl.l.Close() }
func (sl *shapedListener) Addr() string { return sl.l.Addr() }

type shapedConn struct {
	Conn
	cfg ShapeConfig
	mu  sync.Mutex
	rng *rand.Rand
}

func newShapedConn(c Conn, cfg ShapeConfig) *shapedConn {
	// NewShaped guarantees Seed is explicit whenever randomness is in
	// play, so the sequence below replays across runs.
	return &shapedConn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Recv applies loss and latency on the receive path; shaping receive
// rather than send keeps Send non-blocking for the caller.
func (sc *shapedConn) Recv() ([]byte, error) {
	for {
		frame, err := sc.Conn.Recv()
		if err != nil {
			return nil, err
		}
		sc.mu.Lock()
		drop := sc.cfg.LossRate > 0 && sc.rng.Float64() < sc.cfg.LossRate
		var jitter time.Duration
		if sc.cfg.Jitter > 0 {
			jitter = time.Duration(sc.rng.Int63n(int64(sc.cfg.Jitter)))
		}
		sc.mu.Unlock()
		if drop {
			continue
		}
		if d := sc.cfg.Latency + jitter; d > 0 {
			time.Sleep(d)
		}
		return frame, nil
	}
}
