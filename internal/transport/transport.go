// Package transport provides the pluggable transport layer beneath the
// broker network. The paper's scheme is transport independent (§1 item
// 2): entities and brokers exchange framed messages through the Transport
// interface, with TCP, UDP and in-process implementations, plus a
// traffic-shaping wrapper that injects latency and loss for experiments.
package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// MaxFrameSize bounds a single framed message (shared by all transports;
// UDP additionally requires frames to fit a datagram).
const MaxFrameSize = 8 << 20

// Errors common to all transports.
var (
	// ErrClosed reports use of a closed connection or listener.
	ErrClosed = errors.New("transport: closed")
	// ErrFrameTooLarge reports a frame exceeding MaxFrameSize (or the
	// datagram limit for UDP).
	ErrFrameTooLarge = errors.New("transport: frame too large")
)

// Conn is a bidirectional, message-framed connection. Send is safe for
// concurrent use; Recv must be called from a single goroutine.
type Conn interface {
	// Send transmits one frame.
	Send(frame []byte) error
	// Recv blocks until a frame arrives or the connection closes.
	Recv() ([]byte, error)
	// Close tears the connection down; pending Recv calls return
	// ErrClosed (or io.EOF mapped to ErrClosed).
	Close() error
	// LocalAddr and RemoteAddr describe the endpoints.
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks until a connection arrives or the listener closes.
	Accept() (Conn, error)
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
	// Addr is the bound address, suitable for Dial.
	Addr() string
}

// Transport creates listeners and connections.
type Transport interface {
	// Name identifies the transport ("tcp", "udp", "inproc").
	Name() string
	// Listen binds addr and returns a listener.
	Listen(addr string) (Listener, error)
	// Dial connects to addr.
	Dial(addr string) (Conn, error)
}

// registry maps transport names to constructors, so executables can
// select transports by flag.
var (
	registryMu sync.RWMutex
	registry   = make(map[string]func() Transport)
)

// Register installs a transport constructor under name, replacing any
// existing registration.
func Register(name string, f func() Transport) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = f
}

// New returns a fresh transport by registered name.
func New(name string) (Transport, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown transport %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists registered transport names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("tcp", func() Transport { return NewTCP() })
	Register("udp", func() Transport { return NewUDP() })
	Register("inproc", func() Transport { return NewInproc() })
}
