package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes frames until closed.
func echoServer(t *testing.T, l Listener) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				defer c.Close()
				for {
					f, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(f); err != nil {
						return
					}
				}
			}(c)
		}
	}()
}

// transportsUnderTest returns one instance per transport, with loopback
// listen addresses.
func transportsUnderTest() map[string]struct {
	tr   Transport
	addr string
} {
	return map[string]struct {
		tr   Transport
		addr string
	}{
		"tcp":    {NewTCP(), "127.0.0.1:0"},
		"udp":    {NewUDP(), "127.0.0.1:0"},
		"inproc": {NewInproc(), ""},
	}
}

func TestEchoAcrossTransports(t *testing.T) {
	for name, tc := range transportsUnderTest() {
		t.Run(name, func(t *testing.T) {
			l, err := tc.tr.Listen(tc.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			echoServer(t, l)
			c, err := tc.tr.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < 10; i++ {
				msg := []byte(fmt.Sprintf("frame-%d", i))
				if err := c.Send(msg); err != nil {
					t.Fatal(err)
				}
				got, err := c.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("echo mismatch: %q vs %q", got, msg)
				}
			}
		})
	}
}

func TestLargeFrames(t *testing.T) {
	// TCP and inproc must carry frames far larger than a datagram.
	for _, name := range []string{"tcp", "inproc"} {
		t.Run(name, func(t *testing.T) {
			tc := transportsUnderTest()[name]
			l, err := tc.tr.Listen(tc.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			echoServer(t, l)
			c, err := tc.tr.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			big := make([]byte, 1<<20)
			for i := range big {
				big[i] = byte(i)
			}
			if err := c.Send(big); err != nil {
				t.Fatal(err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, big) {
				t.Fatal("large frame corrupted")
			}
		})
	}
}

func TestFrameSizeLimits(t *testing.T) {
	tcp := NewTCP()
	l, _ := tcp.Listen("127.0.0.1:0")
	defer l.Close()
	echoServer(t, l)
	c, err := tcp.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized tcp frame: err=%v", err)
	}

	udp := NewUDP()
	ul, _ := udp.Listen("127.0.0.1:0")
	defer ul.Close()
	uc, err := udp.Dial(ul.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()
	if err := uc.Send(make([]byte, MaxDatagram+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized udp frame: err=%v", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	for name, tc := range transportsUnderTest() {
		t.Run(name, func(t *testing.T) {
			l, err := tc.tr.Listen(tc.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			const senders, perSender = 8, 50
			received := make(chan []byte, senders*perSender)
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				for i := 0; i < senders*perSender; i++ {
					f, err := c.Recv()
					if err != nil {
						return
					}
					received <- f
				}
			}()

			c, err := tc.tr.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < perSender; i++ {
						_ = c.Send([]byte(fmt.Sprintf("s%d-%d", s, i)))
					}
				}(s)
			}
			wg.Wait()
			// Frames must arrive whole (no interleaving corruption). UDP
			// may drop under pressure, so only demand a majority there.
			min := senders * perSender
			if name == "udp" {
				min = senders * perSender / 2
			}
			deadline := time.After(5 * time.Second)
			got := 0
			for got < min {
				select {
				case f := <-received:
					if len(f) < 4 || f[0] != 's' {
						t.Fatalf("corrupt frame %q", f)
					}
					got++
				case <-deadline:
					t.Fatalf("received %d/%d frames before timeout", got, min)
				}
			}
		})
	}
}

func TestRecvAfterCloseReturnsErrClosed(t *testing.T) {
	for name, tc := range transportsUnderTest() {
		t.Run(name, func(t *testing.T) {
			l, err := tc.tr.Listen(tc.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go func() {
				c, err := l.Accept()
				if err == nil {
					c.Close()
				}
			}()
			c, err := tc.tr.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			// UDP has no connection teardown signal; only check
			// stream-like transports for peer-close, and self-close for
			// all.
			c.Close()
			if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
				t.Fatalf("Recv after close: err=%v", err)
			}
		})
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	for name, tc := range transportsUnderTest() {
		t.Run(name, func(t *testing.T) {
			l, err := tc.tr.Listen(tc.addr)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := l.Accept()
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			l.Close()
			select {
			case err := <-done:
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("Accept after close: err=%v", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Accept did not unblock on close")
			}
		})
	}
}

func TestUDPDemuxesPeers(t *testing.T) {
	udp := NewUDP()
	l, err := udp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type recvd struct {
		conn  Conn
		frame []byte
	}
	got := make(chan recvd, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				f, err := c.Recv()
				if err == nil {
					got <- recvd{c, f}
				}
			}(c)
		}
	}()

	c1, _ := udp.Dial(l.Addr())
	c2, _ := udp.Dial(l.Addr())
	defer c1.Close()
	defer c2.Close()
	if err := c1.Send([]byte("from-1")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Send([]byte("from-2")); err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for i := 0; i < 2; i++ {
		select {
		case r := <-got:
			seen[r.conn.RemoteAddr()] = string(r.frame)
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for demuxed frames")
		}
	}
	if len(seen) != 2 {
		t.Fatalf("expected 2 peers, saw %d: %v", len(seen), seen)
	}
}

func TestInprocAddressReuseAndUnbind(t *testing.T) {
	ip := NewInproc()
	l, err := ip.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Listen("svc"); err == nil {
		t.Fatal("double bind succeeded")
	}
	l.Close()
	l2, err := ip.Listen("svc")
	if err != nil {
		t.Fatalf("rebind after close failed: %v", err)
	}
	l2.Close()
	if _, err := ip.Dial("nowhere"); err == nil {
		t.Fatal("dialing unbound inproc address succeeded")
	}
}

func TestInprocAutoAddress(t *testing.T) {
	ip := NewInproc()
	l1, _ := ip.Listen("")
	l2, _ := ip.Listen("")
	defer l1.Close()
	defer l2.Close()
	if l1.Addr() == l2.Addr() {
		t.Fatal("auto-assigned addresses collide")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"tcp", "udp", "inproc"} {
		tr, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if tr.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, tr.Name())
		}
	}
	if _, err := New("carrier-pigeon"); err == nil {
		t.Fatal("unknown transport accepted")
	}
	names := Names()
	if len(names) < 3 {
		t.Fatalf("Names() = %v", names)
	}
}

func TestShapedLatency(t *testing.T) {
	base := NewInproc()
	shaped, err := NewShaped(base, ShapeConfig{Latency: 20 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := shaped.Listen("lat")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	echoServer(t, l)
	c, err := shaped.Dial("lat")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	// Round trip crosses two shaped receive paths (server's and ours).
	if rtt := time.Since(start); rtt < 40*time.Millisecond {
		t.Fatalf("rtt %v below injected 2x20ms", rtt)
	}
	if shaped.Name() != "inproc+shaped" {
		t.Fatalf("Name = %q", shaped.Name())
	}
}

func TestShapedRequiresExplicitSeed(t *testing.T) {
	base := NewInproc()
	for _, cfg := range []ShapeConfig{
		{LossRate: 0.1},
		{Jitter: time.Millisecond},
	} {
		if _, err := NewShaped(base, cfg); !errors.Is(err, ErrSeedRequired) {
			t.Fatalf("NewShaped(%+v) err = %v, want ErrSeedRequired", cfg, err)
		}
	}
	// Pure-latency shaping has no randomness and needs no seed.
	if _, err := NewShaped(base, ShapeConfig{Latency: time.Millisecond}); err != nil {
		t.Fatalf("latency-only shaping rejected: %v", err)
	}
}

func TestShapedLoss(t *testing.T) {
	base := NewInproc()
	shaped, err := NewShaped(base, ShapeConfig{LossRate: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	l, err := shaped.Listen("loss")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const n = 200
	received := make(chan struct{}, n)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
			received <- struct{}{}
		}
	}()
	c, err := shaped.Dial("loss")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := c.Send([]byte("probe")); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	time.Sleep(100 * time.Millisecond)
	got := len(received)
	// With p=0.5 and n=200, [60, 140] is a ±5.7σ window.
	if got < 60 || got > 140 {
		t.Fatalf("with 50%% loss received %d/%d", got, n)
	}
}
