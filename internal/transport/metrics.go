package transport

import "entitytrace/internal/obs"

// Per-transport traffic counters. Handles are cached per transport name
// so steady-state accounting is a pair of atomic adds per frame.
type transportMetrics struct {
	bytesIn     *obs.Counter
	bytesOut    *obs.Counter
	messagesIn  *obs.Counter
	messagesOut *obs.Counter
}

var (
	tcpMetrics    = newTransportMetrics("tcp")
	udpMetrics    = newTransportMetrics("udp")
	inprocMetrics = newTransportMetrics("inproc")
)

func newTransportMetrics(name string) *transportMetrics {
	return &transportMetrics{
		bytesIn:     obs.Default.Counter(obs.WithLabel("transport_bytes_in_total", "transport", name)),
		bytesOut:    obs.Default.Counter(obs.WithLabel("transport_bytes_out_total", "transport", name)),
		messagesIn:  obs.Default.Counter(obs.WithLabel("transport_messages_in_total", "transport", name)),
		messagesOut: obs.Default.Counter(obs.WithLabel("transport_messages_out_total", "transport", name)),
	}
}

// recordSend accounts one outbound frame of n bytes.
func (m *transportMetrics) recordSend(n int) {
	m.bytesOut.Add(uint64(n))
	m.messagesOut.Inc()
}

// recordRecv accounts one inbound frame of n bytes.
func (m *transportMetrics) recordRecv(n int) {
	m.bytesIn.Add(uint64(n))
	m.messagesIn.Inc()
}
