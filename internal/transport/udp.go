package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// MaxDatagram bounds a UDP frame; one frame maps to one datagram, as in
// the paper's UDP benchmarks.
const MaxDatagram = 60 * 1024

// UDP is the datagram transport. The listener demultiplexes inbound
// datagrams by source address into per-peer logical connections, giving
// UDP the same Conn/Listener surface as TCP.
type UDP struct{}

// NewUDP returns the UDP transport.
func NewUDP() *UDP { return &UDP{} }

// Name implements Transport.
func (*UDP) Name() string { return "udp" }

// Listen implements Transport.
func (*UDP) Listen(addr string) (Listener, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: udp listen %s: %w", addr, err)
	}
	ul := &udpListener{
		pc:      pc,
		conns:   make(map[string]*udpServerConn),
		accepts: make(chan *udpServerConn, 64),
		done:    make(chan struct{}),
	}
	go ul.pump()
	return ul, nil
}

// Dial implements Transport.
func (*UDP) Dial(addr string) (Conn, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: udp resolve %s: %w", addr, err)
	}
	c, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: udp dial %s: %w", addr, err)
	}
	return &udpClientConn{c: c}, nil
}

type udpListener struct {
	pc      net.PacketConn
	mu      sync.Mutex
	conns   map[string]*udpServerConn
	accepts chan *udpServerConn
	done    chan struct{}
	closed  bool
}

// pump reads datagrams and routes them to per-peer connections; unknown
// peers create new connections delivered to Accept.
func (ul *udpListener) pump() {
	buf := make([]byte, MaxDatagram)
	for {
		n, addr, err := ul.pc.ReadFrom(buf)
		if err != nil {
			ul.mu.Lock()
			for _, c := range ul.conns {
				c.closeLocked()
			}
			ul.conns = map[string]*udpServerConn{}
			ul.mu.Unlock()
			close(ul.done)
			return
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		key := addr.String()
		ul.mu.Lock()
		c, ok := ul.conns[key]
		if !ok {
			c = &udpServerConn{
				ul:    ul,
				peer:  addr,
				inbox: make(chan []byte, 1024),
				done:  make(chan struct{}),
			}
			ul.conns[key] = c
			select {
			case ul.accepts <- c:
			default:
				// Accept backlog full: drop the implicit connection, as a
				// UDP listener under SYN-flood-like pressure would.
				delete(ul.conns, key)
				c = nil
			}
		}
		ul.mu.Unlock()
		if c == nil {
			continue
		}
		select {
		case c.inbox <- frame:
		default:
			// Receiver not draining; UDP drops.
		}
	}
}

func (ul *udpListener) Accept() (Conn, error) {
	select {
	case c := <-ul.accepts:
		return c, nil
	case <-ul.done:
		return nil, ErrClosed
	}
}

func (ul *udpListener) Close() error {
	ul.mu.Lock()
	if ul.closed {
		ul.mu.Unlock()
		return nil
	}
	ul.closed = true
	ul.mu.Unlock()
	return ul.pc.Close()
}

func (ul *udpListener) Addr() string { return ul.pc.LocalAddr().String() }

func (ul *udpListener) drop(peer string) {
	ul.mu.Lock()
	delete(ul.conns, peer)
	ul.mu.Unlock()
}

// udpServerConn is a listener-side logical connection to one peer.
type udpServerConn struct {
	ul     *udpListener
	peer   net.Addr
	inbox  chan []byte
	done   chan struct{}
	closMu sync.Mutex
	closed bool
}

func (c *udpServerConn) Send(frame []byte) error {
	if len(frame) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes (udp datagram limit %d)", ErrFrameTooLarge, len(frame), MaxDatagram)
	}
	c.closMu.Lock()
	closed := c.closed
	c.closMu.Unlock()
	if closed {
		return ErrClosed
	}
	_, err := c.ul.pc.WriteTo(frame, c.peer)
	if err == nil {
		udpMetrics.recordSend(len(frame))
	}
	return mapNetErr(err)
}

func (c *udpServerConn) Recv() ([]byte, error) {
	select {
	case f := <-c.inbox:
		udpMetrics.recordRecv(len(f))
		return f, nil
	case <-c.done:
		// Drain anything buffered before reporting closure.
		select {
		case f := <-c.inbox:
			udpMetrics.recordRecv(len(f))
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *udpServerConn) Close() error {
	c.closMu.Lock()
	defer c.closMu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
		c.ul.drop(c.peer.String())
	}
	return nil
}

// closeLocked is called by the listener pump with its own synchronization.
func (c *udpServerConn) closeLocked() {
	c.closMu.Lock()
	defer c.closMu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
}

func (c *udpServerConn) LocalAddr() string  { return c.ul.pc.LocalAddr().String() }
func (c *udpServerConn) RemoteAddr() string { return c.peer.String() }

// udpClientConn is a dialed, connected UDP socket.
type udpClientConn struct {
	c      *net.UDPConn
	sendMu sync.Mutex
}

func (c *udpClientConn) Send(frame []byte) error {
	if len(frame) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes (udp datagram limit %d)", ErrFrameTooLarge, len(frame), MaxDatagram)
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	_, err := c.c.Write(frame)
	if err == nil {
		udpMetrics.recordSend(len(frame))
	}
	return mapNetErr(err)
}

func (c *udpClientConn) Recv() ([]byte, error) {
	buf := make([]byte, MaxDatagram)
	n, err := c.c.Read(buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) {
			return nil, mapNetErr(err)
		}
		return nil, mapNetErr(err)
	}
	udpMetrics.recordRecv(n)
	return buf[:n], nil
}

func (c *udpClientConn) Close() error       { return c.c.Close() }
func (c *udpClientConn) LocalAddr() string  { return c.c.LocalAddr().String() }
func (c *udpClientConn) RemoteAddr() string { return c.c.RemoteAddr().String() }
