package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP is the stream transport: frames are sent as a 4-byte big-endian
// length prefix followed by the frame body.
type TCP struct{}

// NewTCP returns the TCP transport.
func NewTCP() *TCP { return &TCP{} }

// Name implements Transport.
func (*TCP) Name() string { return "tcp" }

// Listen implements Transport.
func (*TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Transport.
func (*TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// Trace messages are small and latency-sensitive; never batch.
		_ = tc.SetNoDelay(true)
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	l net.Listener
}

func (tl *tcpListener) Accept() (Conn, error) {
	c, err := tl.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return newTCPConn(c), nil
}

func (tl *tcpListener) Close() error { return tl.l.Close() }
func (tl *tcpListener) Addr() string { return tl.l.Addr().String() }

type tcpConn struct {
	c       net.Conn
	sendMu  sync.Mutex
	recvBuf [4]byte
}

func newTCPConn(c net.Conn) *tcpConn { return &tcpConn{c: c} }

func (tc *tcpConn) Send(frame []byte) error {
	if len(frame) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(frame))
	}
	tc.sendMu.Lock()
	defer tc.sendMu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := tc.c.Write(hdr[:]); err != nil {
		return mapNetErr(err)
	}
	if _, err := tc.c.Write(frame); err != nil {
		return mapNetErr(err)
	}
	tcpMetrics.recordSend(len(frame) + len(hdr))
	return nil
}

func (tc *tcpConn) Recv() ([]byte, error) {
	if _, err := io.ReadFull(tc.c, tc.recvBuf[:]); err != nil {
		return nil, mapNetErr(err)
	}
	n := binary.BigEndian.Uint32(tc.recvBuf[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(tc.c, frame); err != nil {
		return nil, mapNetErr(err)
	}
	tcpMetrics.recordRecv(len(frame) + len(tc.recvBuf))
	return frame, nil
}

func (tc *tcpConn) Close() error       { return tc.c.Close() }
func (tc *tcpConn) LocalAddr() string  { return tc.c.LocalAddr().String() }
func (tc *tcpConn) RemoteAddr() string { return tc.c.RemoteAddr().String() }

// mapNetErr folds the several shutdown errors into ErrClosed so callers
// have a single sentinel to test.
func mapNetErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrClosed
	}
	return err
}
