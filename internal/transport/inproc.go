package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Inproc is the in-process transport: connections are paired channel
// queues inside one address space. It is used for laptop-scale
// experiments and deterministic tests where socket overhead would only
// add noise. Each Inproc value is an isolated address namespace.
type Inproc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextAuto  atomic.Uint64
}

// NewInproc returns an empty in-process namespace.
func NewInproc() *Inproc {
	return &Inproc{listeners: make(map[string]*inprocListener)}
}

// Name implements Transport.
func (*Inproc) Name() string { return "inproc" }

// Listen implements Transport. The empty address allocates a fresh one.
func (ip *Inproc) Listen(addr string) (Listener, error) {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	if addr == "" || addr == ":0" {
		addr = fmt.Sprintf("inproc-%d", ip.nextAuto.Add(1))
	}
	if _, exists := ip.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: inproc address %q already bound", addr)
	}
	l := &inprocListener{
		ip:      ip,
		addr:    addr,
		accepts: make(chan Conn, 64),
		done:    make(chan struct{}),
	}
	ip.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (ip *Inproc) Dial(addr string) (Conn, error) {
	ip.mu.Lock()
	l, ok := ip.listeners[addr]
	ip.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: inproc dial %q: no listener", addr)
	}
	clientSide, serverSide := newInprocPair(
		fmt.Sprintf("inproc-client-%d", ip.nextAuto.Add(1)), addr)
	select {
	case l.accepts <- serverSide:
		return clientSide, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (ip *Inproc) unbind(addr string) {
	ip.mu.Lock()
	delete(ip.listeners, addr)
	ip.mu.Unlock()
}

type inprocListener struct {
	ip      *Inproc
	addr    string
	accepts chan Conn
	done    chan struct{}
	once    sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	// Prefer pending connections over shutdown so dialers that won the
	// race against Close are not stranded half-open.
	select {
	case c := <-l.accepts:
		return c, nil
	default:
	}
	select {
	case c := <-l.accepts:
		return c, nil
	case <-l.done:
		select {
		case c := <-l.accepts:
			return c, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.ip.unbind(l.addr)
		// Tear down connections nobody will ever accept.
		for {
			select {
			case c := <-l.accepts:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// inprocConn is one direction-pair endpoint; send and recv channels of
// the two endpoints are crossed.
type inprocConn struct {
	send   chan []byte
	recv   chan []byte
	local  string
	remote string
	done   chan struct{}
	peer   *inprocConn
	closMu sync.Mutex
	closed bool
}

func newInprocPair(clientAddr, serverAddr string) (client, server *inprocConn) {
	a := make(chan []byte, 1024)
	b := make(chan []byte, 1024)
	client = &inprocConn{send: a, recv: b, local: clientAddr, remote: serverAddr, done: make(chan struct{})}
	server = &inprocConn{send: b, recv: a, local: serverAddr, remote: clientAddr, done: make(chan struct{})}
	client.peer = server
	server.peer = client
	return client, server
}

func (c *inprocConn) Send(frame []byte) error {
	if len(frame) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(frame))
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return ErrClosed
	case c.send <- cp:
		inprocMetrics.recordSend(len(cp))
		return nil
	}
}

func (c *inprocConn) Recv() ([]byte, error) {
	select {
	case f := <-c.recv:
		inprocMetrics.recordRecv(len(f))
		return f, nil
	case <-c.done:
		select {
		case f := <-c.recv:
			inprocMetrics.recordRecv(len(f))
			return f, nil
		default:
			return nil, ErrClosed
		}
	case <-c.peer.done:
		// Peer closed: drain remaining frames first.
		select {
		case f := <-c.recv:
			inprocMetrics.recordRecv(len(f))
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *inprocConn) Close() error {
	c.closMu.Lock()
	defer c.closMu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	return nil
}

func (c *inprocConn) LocalAddr() string  { return c.local }
func (c *inprocConn) RemoteAddr() string { return c.remote }
