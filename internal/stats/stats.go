// Package stats provides the summary statistics the paper reports in its
// evaluation tables (mean, standard deviation, standard error) plus
// simple histograms and percentiles used by the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates observations with Welford's online algorithm, so it
// is numerically stable and needs O(1) memory for mean/stddev. It also
// retains raw values (optional, bounded) for percentile queries.
type Sample struct {
	n       int
	mean    float64
	m2      float64
	min     float64
	max     float64
	raw     []float64
	keepRaw bool
}

// NewSample returns a Sample. If keepRaw is true, individual observations
// are retained so percentiles can be computed.
func NewSample(keepRaw bool) *Sample {
	return &Sample{keepRaw: keepRaw, min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.n++
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if s.keepRaw {
		s.raw = append(s.raw, v)
	}
}

// AddDuration records a duration observation in milliseconds, the unit
// used throughout the paper's tables.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Variance returns the sample (n-1) variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean (stddev / sqrt(n)).
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Min returns the smallest observation, or 0 with no observations.
func (s *Sample) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 with no observations.
func (s *Sample) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It requires raw retention.
func (s *Sample) Percentile(p float64) (float64, error) {
	if !s.keepRaw {
		return 0, fmt.Errorf("stats: sample does not retain raw values")
	}
	if s.n == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range", p)
	}
	sorted := append([]float64(nil), s.raw...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary is the (mean, stddev, stderr) triple reported in the paper's
// tables, in milliseconds.
type Summary struct {
	Name   string
	N      int
	Mean   float64
	StdDev float64
	StdErr float64
}

// Summarize produces a Summary with the given row name.
func (s *Sample) Summarize(name string) Summary {
	return Summary{Name: name, N: s.n, Mean: s.Mean(), StdDev: s.StdDev(), StdErr: s.StdErr()}
}

// String formats the summary like a row of the paper's Table 3.
func (sm Summary) String() string {
	return fmt.Sprintf("%-40s %10.2f %10.2f %10.2f", sm.Name, sm.Mean, sm.StdDev, sm.StdErr)
}

// Histogram is a fixed-bucket histogram over [lo, hi) with uniform bucket
// widths; values outside the range land in underflow/overflow counters.
type Histogram struct {
	lo, hi    float64
	buckets   []uint64
	underflow uint64
	overflow  uint64
	count     uint64
}

// NewHistogram creates a histogram with n uniform buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram configuration")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]uint64, n)}
}

// Add records a value.
func (h *Histogram) Add(v float64) {
	h.count++
	switch {
	case v < h.lo:
		h.underflow++
	case v >= h.hi:
		h.overflow++
	default:
		idx := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if idx == len(h.buckets) { // float edge case at v==hi-epsilon
			idx--
		}
		h.buckets[idx]++
	}
}

// Count returns the number of recorded values, including out-of-range.
func (h *Histogram) Count() uint64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.underflow, h.overflow }
