package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSampleKnownValues(t *testing.T) {
	// Values with a hand-computable mean/stddev.
	s := NewSample(false)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-9) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if !almostEqual(s.StdDev(), want, 1e-9) {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), want)
	}
	if !almostEqual(s.StdErr(), want/math.Sqrt(8), 1e-9) {
		t.Fatalf("StdErr = %v", s.StdErr())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	s := NewSample(false)
	if s.Mean() != 0 || s.StdDev() != 0 || s.StdErr() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	s.Add(42)
	if s.Mean() != 42 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.StdDev() != 0 {
		t.Fatalf("single-observation StdDev = %v, want 0", s.StdDev())
	}
}

func TestSampleAddDurationUsesMilliseconds(t *testing.T) {
	s := NewSample(false)
	s.AddDuration(1500 * time.Microsecond)
	if !almostEqual(s.Mean(), 1.5, 1e-9) {
		t.Fatalf("Mean = %v, want 1.5 ms", s.Mean())
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	prop := func(vals []float64) bool {
		// Constrain to finite, moderate values.
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			clean = append(clean, v)
		}
		if len(clean) < 2 {
			return true
		}
		s := NewSample(false)
		var sum float64
		for _, v := range clean {
			s.Add(v)
			sum += v
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, v := range clean {
			ss += (v - mean) * (v - mean)
		}
		naiveVar := ss / float64(len(clean)-1)
		return almostEqual(s.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almostEqual(s.Variance(), naiveVar, 1e-6*(1+naiveVar))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	s := NewSample(true)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	p50, err := s.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p50, 50.5, 1e-9) {
		t.Fatalf("p50 = %v, want 50.5", p50)
	}
	p0, _ := s.Percentile(0)
	p100, _ := s.Percentile(100)
	if p0 != 1 || p100 != 100 {
		t.Fatalf("p0/p100 = %v/%v", p0, p100)
	}
	if _, err := s.Percentile(101); err == nil {
		t.Fatal("accepted percentile > 100")
	}
}

func TestPercentileRequiresRaw(t *testing.T) {
	s := NewSample(false)
	s.Add(1)
	if _, err := s.Percentile(50); err == nil {
		t.Fatal("Percentile without raw retention should error")
	}
}

func TestSummarize(t *testing.T) {
	s := NewSample(false)
	s.Add(10)
	s.Add(20)
	sm := s.Summarize("2 hops")
	if sm.Name != "2 hops" || sm.N != 2 || !almostEqual(sm.Mean, 15, 1e-9) {
		t.Fatalf("bad summary: %+v", sm)
	}
	if sm.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(100)
	if h.Count() != 13 {
		t.Fatalf("Count = %d", h.Count())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("under/over = %d/%d", under, over)
	}
	if h.NumBuckets() != 10 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with bad config did not panic")
		}
	}()
	NewHistogram(10, 0, 5)
}
