package stats_test

import (
	"fmt"

	"entitytrace/internal/stats"
)

// Sample produces the mean / standard deviation / standard error triples
// the paper's tables report.
func ExampleSample() {
	s := stats.NewSample(true)
	for _, ms := range []float64{72.1, 73.4, 72.8, 71.9, 73.0} {
		s.Add(ms)
	}
	sm := s.Summarize("2 hops")
	fmt.Printf("%s: mean=%.2f n=%d\n", sm.Name, sm.Mean, sm.N)
	p50, _ := s.Percentile(50)
	fmt.Printf("median=%.1f\n", p50)
	// Output:
	// 2 hops: mean=72.64 n=5
	// median=72.8
}
