package message

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"entitytrace/internal/ident"
	"entitytrace/internal/obs"
	"entitytrace/internal/secure"
	"entitytrace/internal/topic"
)

// Type identifies the content of a message. Values below firstTraceType
// are protocol messages; the remainder are the trace types of Table 1.
type Type uint16

// Protocol message types.
const (
	// TypeData is an application payload with no protocol meaning.
	TypeData Type = iota
	// TypeRegistration is a trace registration (§3.2).
	TypeRegistration
	// TypeRegistrationResponse acknowledges a registration with a session
	// identifier (§3.2).
	TypeRegistrationResponse
	// TypePing is a broker-initiated ping (§3.3).
	TypePing
	// TypePingResponse answers a ping, echoing number and timestamp.
	TypePingResponse
	// TypeInterestResponse answers a GUAGE_INTEREST probe (§3.5).
	TypeInterestResponse
	// TypeKeyDelivery carries a sealed secret trace key (§5.1).
	TypeKeyDelivery
	// TypeStateReport carries a state transition from the traced entity
	// to its broker.
	TypeStateReport
	// TypeLoadReport carries load information from the traced entity.
	TypeLoadReport
	// TypeError reports a protocol failure back to a requester.
	TypeError
	// TypeDelegation carries a sealed authorization-token delegation
	// (§4.3) from the traced entity to its hosting broker.
	TypeDelegation
	// TypeSilentMode asks the broker to disable tracing for the session
	// (the broker publishes REVERTING_TO_SILENT_MODE, §3.3).
	TypeSilentMode
	// TypeResume re-enables tracing after silent mode.
	TypeResume

	firstTraceType
)

// Trace types (Table 1).
const (
	// State information reported by a traced entity.
	TraceInitializing Type = firstTraceType + iota
	TraceRecovering
	TraceReady
	TraceShutdown
	// Broker-generated failure-detection traces.
	TraceFailureSuspicion
	TraceFailed
	TraceDisconnect
	// Interest gauging.
	TraceGaugeInterest
	// Tracing lifecycle.
	TraceJoin
	TraceRevertingToSilentMode
	// Heartbeats.
	TraceAllsWell
	// Load and network information.
	TraceLoadInformation
	TraceNetworkMetrics
	// Broker self-monitoring: periodic topology/health snapshots on the
	// system-health derivative topic (appended after the Table 1 types so
	// existing wire values are unchanged).
	TraceBrokerHealth
	// Availability analytics: periodic per-broker ledger digests on the
	// system-availability derivative topic (appended to keep existing
	// wire values stable).
	TraceAvailabilityDigest

	// Session-key negotiation (§6.3 signing-cost optimization): protocol
	// messages appended after the trace block so existing wire values are
	// unchanged. TypeSessionKeyRequest asks the publisher's hosting
	// broker for the sealed session parameters of a session ID;
	// TypeSessionKeyResponse delivers them sealed to the requester's RSA
	// credential.
	TypeSessionKeyRequest
	TypeSessionKeyResponse

	// TypeFabricGossip carries broker-fabric membership gossip
	// (PROTOCOL.md §3.9) on the constrained system-fabric topic. Appended
	// after the session-key block so existing wire values are unchanged;
	// like those, it is a protocol message, not a trace.
	TypeFabricGossip

	// TraceTelemetrySnapshot carries a broker's periodic delta-encoded
	// metric snapshot (PROTOCOL.md §3.10) on the constrained
	// system-telemetry topic. Appended after the fabric block so
	// existing wire values are unchanged; like the fabric gossip it is a
	// protocol message, not a Table 1 trace.
	TraceTelemetrySnapshot

	lastType
)

// firstSessionType marks the end of the Table 1 trace block: the
// session-key control types appended after it are protocol messages,
// not traces.
const firstSessionType = TypeSessionKeyRequest

// IsTrace reports whether the type is one of Table 1's trace types.
// (TraceInitializing aliases firstTraceType; the session-key control
// types appended after the trace block are excluded.)
func (t Type) IsTrace() bool { return t >= firstTraceType && t < firstSessionType }

// Valid reports whether t is a known message type.
func (t Type) Valid() bool { return t < lastType }

// String returns the paper's spelling of the type where one exists.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeRegistration:
		return "REGISTRATION"
	case TypeRegistrationResponse:
		return "REGISTRATION_RESPONSE"
	case TypePing:
		return "PING"
	case TypePingResponse:
		return "PING_RESPONSE"
	case TypeInterestResponse:
		return "INTEREST_RESPONSE"
	case TypeKeyDelivery:
		return "KEY_DELIVERY"
	case TypeStateReport:
		return "STATE_REPORT"
	case TypeLoadReport:
		return "LOAD_REPORT"
	case TypeError:
		return "ERROR"
	case TypeDelegation:
		return "DELEGATION"
	case TypeSilentMode:
		return "SILENT_MODE"
	case TypeResume:
		return "RESUME"
	case TraceInitializing:
		return "INITIALIZING"
	case TraceRecovering:
		return "RECOVERING"
	case TraceReady:
		return "READY"
	case TraceShutdown:
		return "SHUTDOWN"
	case TraceFailureSuspicion:
		return "FAILURE_SUSPICION"
	case TraceFailed:
		return "FAILED"
	case TraceDisconnect:
		return "DISCONNECT"
	case TraceGaugeInterest:
		return "GUAGE_INTEREST" // the paper's own spelling
	case TraceJoin:
		return "JOIN"
	case TraceRevertingToSilentMode:
		return "REVERTING_TO_SILENT_MODE"
	case TraceAllsWell:
		return "ALLS_WELL"
	case TraceLoadInformation:
		return "LOAD_INFORMATION"
	case TraceNetworkMetrics:
		return "NETWORK_METRICS"
	case TraceBrokerHealth:
		return "BROKER_HEALTH"
	case TraceAvailabilityDigest:
		return "AVAILABILITY_DIGEST"
	case TypeSessionKeyRequest:
		return "SESSION_KEY_REQUEST"
	case TypeSessionKeyResponse:
		return "SESSION_KEY_RESPONSE"
	case TypeFabricGossip:
		return "FABRIC_GOSSIP"
	case TraceTelemetrySnapshot:
		return "TELEMETRY_SNAPSHOT"
	default:
		return fmt.Sprintf("Type(%d)", uint16(t))
	}
}

// Envelope flags.
const (
	// FlagEncrypted marks a payload encrypted under the secret trace key
	// (§5.1) or the entity↔broker symmetric key (§6.3).
	FlagEncrypted uint16 = 1 << iota
	// FlagSecured in a GUAGE_INTEREST probe announces that traces will be
	// secured (§5.1: "it also sets a flag indicating that the traces will
	// be secured").
	FlagSecured
	// FlagSessionTag marks an envelope authenticated by an HMAC-SHA256
	// session tag (§6.3 signing-cost optimization) instead of a
	// per-message RSA delegate signature: Signature holds the 16-byte
	// session ID followed by the 32-byte tag. The flag is part of
	// SigningBytes, so stripping or adding it invalidates both the tag
	// and any RSA signature — a downgrade attack cannot go unnoticed.
	FlagSessionTag
)

// envelopeVersion is the wire format version byte.
const envelopeVersion = 1

// DefaultTTL bounds broker-network forwarding of a message.
const DefaultTTL = 32

// Envelope is the unit of exchange in the broker network. Topic routing
// uses Topic; authorization uses Source, Signature and Token; Payload is
// type-specific.
type Envelope struct {
	// ID uniquely identifies the message, for duplicate suppression
	// during routing.
	ID ident.UUID
	// Type identifies the payload's meaning.
	Type Type
	// Topic is the topic the message is published on.
	Topic topic.Topic
	// Source names the publishing entity ("" for broker-originated
	// messages).
	Source ident.EntityID
	// Timestamp is the publish time in Unix nanoseconds.
	Timestamp int64
	// SeqNum is a per-publisher monotonically increasing number; pings
	// use it for loss and reordering detection (§3.3).
	SeqNum uint64
	// RequestID correlates responses with requests (§3.2).
	RequestID ident.UUID
	// TTL bounds forwarding hops.
	TTL uint8
	// Flags carries FlagEncrypted / FlagSecured.
	Flags uint16
	// Payload is the serialized type-specific body.
	Payload []byte
	// Token is a serialized authorization token (§4.3), required on
	// broker-published trace messages.
	Token []byte
	// Signature covers SigningBytes (§4.2: every trace message initiated
	// at a traced entity is cryptographically signed).
	Signature []byte
	// Span is the optional per-hop tracing annotation (observability
	// layer). Like the TTL it is mutable routing state: excluded from
	// SigningBytes, appended after the signature on the wire, absent in
	// seed-format envelopes.
	Span *Span
}

// New builds an envelope with a fresh ID, the given type/topic/payload,
// the current time and the default TTL.
func New(t Type, tp topic.Topic, source ident.EntityID, payload []byte) *Envelope {
	return &Envelope{
		ID:        ident.NewUUID(),
		Type:      t,
		Topic:     tp,
		Source:    source,
		Timestamp: time.Now().UnixNano(),
		TTL:       DefaultTTL,
		Payload:   payload,
	}
}

// Time returns the timestamp as a time.Time.
func (e *Envelope) Time() time.Time { return time.Unix(0, e.Timestamp) }

// ttlExcluded selects the signed form in marshalBody: TTL is mutable
// routing state, decremented at every forwarding broker, so it must be
// excluded from signatures (like the mutable header fields of IPsec AH).
const ttlExcluded = -1

// marshalBody serializes everything except the signature. ttl is the
// TTL byte to emit, or ttlExcluded for the signed form; forwarding
// brokers pass the decremented value so re-marshaling does not require
// mutating (and therefore cloning) the envelope.
func (e *Envelope) marshalBody(w *writer, ttl int) {
	w.u8(envelopeVersion)
	w.uuid(e.ID)
	w.u16(uint16(e.Type))
	w.str(e.Topic.String())
	w.str(string(e.Source))
	w.i64(e.Timestamp)
	w.u64(e.SeqNum)
	w.uuid(e.RequestID)
	if ttl != ttlExcluded {
		w.u8(uint8(ttl))
	}
	w.u16(e.Flags)
	w.bytes(e.Payload)
	w.bytes(e.Token)
}

// bodySize returns the exact serialized size of marshalBody's output so
// buffers can be allocated once, with withTTL selecting the wire form.
func (e *Envelope) bodySize(withTTL bool) int {
	n := 1 + 16 + 2 + // version, ID, type
		4 + len(e.Topic.String()) +
		4 + len(e.Source) +
		8 + 8 + 16 + // timestamp, seqnum, request ID
		2 + // flags
		4 + len(e.Payload) +
		4 + len(e.Token)
	if withTTL {
		n++
	}
	return n
}

// WireSize returns the exact length Marshal would produce, so frame
// buffers can be sized without a trial serialization.
func (e *Envelope) WireSize() int {
	return e.bodySize(true) + 4 + len(e.Signature) + e.Span.wireSize()
}

// SigningBytes returns the canonical byte string a signature covers: the
// full body excluding the signature itself and the mutable TTL.
func (e *Envelope) SigningBytes() []byte {
	w := writer{buf: make([]byte, 0, e.bodySize(false))}
	e.marshalBody(&w, ttlExcluded)
	return w.buf
}

// signingScratch pools the transient buffers Sign and VerifySignature
// serialize into: the canonical bytes only live for the duration of one
// hash, and brokers re-verify a delegate signature on every forwarded
// trace, so these allocations are pure hot-path garbage.
var signingScratch = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// withSigningBytes invokes f with the pooled canonical signing bytes.
func (e *Envelope) withSigningBytes(f func(b []byte) error) error {
	bp := signingScratch.Get().(*[]byte)
	w := writer{buf: (*bp)[:0]}
	e.marshalBody(&w, ttlExcluded)
	err := f(w.buf)
	*bp = w.buf
	signingScratch.Put(bp)
	return err
}

// Envelope crypto latencies, the per-hop costs of the paper's §5
// evaluation, observed on every live sign/verify.
var (
	mSignLatency   = obs.Default.Histogram("envelope_sign_ms", nil)
	mVerifyLatency = obs.Default.Histogram("envelope_verify_ms", nil)
)

// Sign computes and attaches a signature over SigningBytes (§3.2: the
// signing is done by computing the checksum for the message and
// encrypting this message digest with its private key).
func (e *Envelope) Sign(s *secure.Signer) error {
	start := time.Now()
	err := e.withSigningBytes(func(b []byte) error {
		sig, err := s.Sign(b)
		if err != nil {
			return err
		}
		e.Signature = sig
		return nil
	})
	if err != nil {
		return err
	}
	mSignLatency.ObserveDuration(time.Since(start))
	return nil
}

// Session-path authentication metrics, the amortized counterpart of the
// RSA sign/verify histograms above. Unlike the RSA ops (tens of µs, two
// clock reads are noise), a session tag is sub-µs work where the clock
// reads alone cost ~12% — so these histograms sample 1-in-N, the same
// trade the flight recorder makes on the routing path.
var (
	mSessionSignLatency   = obs.Default.Histogram("envelope_session_sign_ms", nil)
	mSessionVerifyLatency = obs.Default.Histogram("envelope_session_verify_ms", nil)
	sessionLatTick        atomic.Uint64
)

// sessionLatSample is the 1-in-N sampling rate for the session-tag
// latency histograms.
const sessionLatSample = 64

// ErrNoSessionTag reports an envelope that does not carry a session tag
// (FlagSessionTag clear or Signature malformed).
var ErrNoSessionTag = errors.New("message: envelope has no session tag")

// SignSession authenticates the envelope with a session tag instead of
// an RSA signature: sets FlagSessionTag and writes sessionID||tag into
// Signature, where the tag is HMAC-SHA256 over SigningBytes (which
// includes the flag, binding the choice of mechanism).
func (e *Envelope) SignSession(k *secure.SessionKey) error {
	timed := sessionLatTick.Add(1)%sessionLatSample == 0
	var start time.Time
	if timed {
		start = time.Now()
	}
	e.Flags |= FlagSessionTag
	id := k.ID()
	err := e.withSigningBytes(func(b []byte) error {
		sig := make([]byte, 0, secure.SessionIDLen+secure.SessionTagLen)
		sig = append(sig, id[:]...)
		e.Signature = k.AppendTag(sig, b)
		return nil
	})
	if err != nil {
		return err
	}
	if timed {
		mSessionSignLatency.ObserveDuration(time.Since(start))
	}
	return nil
}

// SessionID extracts the session identifier from a session-tagged
// envelope's signature field. Returns ErrNoSessionTag if the envelope is
// not session-tagged or the field is too short to hold an ID and tag.
func (e *Envelope) SessionID() ([secure.SessionIDLen]byte, error) {
	var id [secure.SessionIDLen]byte
	if e.Flags&FlagSessionTag == 0 {
		return id, ErrNoSessionTag
	}
	if len(e.Signature) != secure.SessionIDLen+secure.SessionTagLen {
		return id, fmt.Errorf("%w: signature length %d", ErrNoSessionTag, len(e.Signature))
	}
	copy(id[:], e.Signature[:secure.SessionIDLen])
	return id, nil
}

// VerifySessionTag checks the session tag against k. The caller is
// responsible for looking k up by SessionID and enforcing its validity
// window and token binding.
func (e *Envelope) VerifySessionTag(k *secure.SessionKey) error {
	if e.Flags&FlagSessionTag == 0 || len(e.Signature) != secure.SessionIDLen+secure.SessionTagLen {
		return ErrNoSessionTag
	}
	timed := sessionLatTick.Add(1)%sessionLatSample == 0
	var start time.Time
	if timed {
		start = time.Now()
	}
	err := e.withSigningBytes(func(b []byte) error {
		return k.VerifyTag(b, e.Signature[secure.SessionIDLen:])
	})
	if err == nil && timed {
		mSessionVerifyLatency.ObserveDuration(time.Since(start))
	}
	return err
}

// VerifySignature checks the attached signature against pub.
func (e *Envelope) VerifySignature(pub *rsa.PublicKey, h secure.Hash) error {
	if len(e.Signature) == 0 {
		return errors.New("message: envelope is unsigned")
	}
	start := time.Now()
	err := e.withSigningBytes(func(b []byte) error {
		return secure.Verify(pub, h, b, e.Signature)
	})
	if err == nil {
		mVerifyLatency.ObserveDuration(time.Since(start))
	}
	return err
}

// Marshal serializes the envelope including any signature, followed by
// the optional span annotation. The buffer is sized exactly, so the
// serialization costs one allocation.
func (e *Envelope) Marshal() []byte {
	return e.AppendWire(make([]byte, 0, e.WireSize()), e.TTL)
}

// AppendWire appends the envelope's wire form to dst with ttl in place
// of e.TTL, and returns the extended buffer. Forwarding brokers use it
// to emit the TTL-decremented frame without cloning the envelope:
// everything except the TTL byte is emitted byte-identically.
func (e *Envelope) AppendWire(dst []byte, ttl uint8) []byte {
	w := writer{buf: dst}
	e.marshalBody(&w, int(ttl))
	w.bytes(e.Signature)
	if e.Span != nil {
		e.Span.marshal(&w)
	}
	return w.buf
}

// Unmarshal parses a wire-format envelope. The returned envelope owns
// copies of all variable-length fields.
func Unmarshal(b []byte) (*Envelope, error) {
	return unmarshalReader(newReader(b))
}

// UnmarshalShared parses a wire-format envelope whose Payload, Token and
// Signature alias b. Receive loops use it on freshly allocated frame
// buffers they own — the per-field copies are the dominant allocation on
// the routing hot path. The caller must not modify b afterwards; use
// Unmarshal (or Clone the result) when buffer lifetime is unclear.
func UnmarshalShared(b []byte) (*Envelope, error) {
	return unmarshalReader(newSharedReader(b))
}

func unmarshalReader(r *reader) (*Envelope, error) {
	if v := r.u8(); r.err == nil && v != envelopeVersion {
		return nil, fmt.Errorf("message: unsupported envelope version %d", v)
	}
	e := &Envelope{}
	e.ID = r.uuid()
	e.Type = Type(r.u16())
	topicStr := r.str()
	e.Source = ident.EntityID(r.str())
	e.Timestamp = r.i64()
	e.SeqNum = r.u64()
	e.RequestID = r.uuid()
	e.TTL = r.u8()
	e.Flags = r.u16()
	e.Payload = r.bytes()
	e.Token = r.bytes()
	e.Signature = r.bytes()
	// Optional trailing span annotation; seed-format envelopes end here.
	if r.err == nil && r.off < len(r.b) {
		span, err := unmarshalSpan(r)
		if err != nil {
			return nil, err
		}
		e.Span = span
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	tp, err := topic.Parse(topicStr)
	if err != nil {
		return nil, fmt.Errorf("message: envelope topic: %w", err)
	}
	e.Topic = tp
	if !e.Type.Valid() {
		return nil, fmt.Errorf("message: unknown message type %d", uint16(e.Type))
	}
	return e, nil
}

// Clone returns a deep copy; brokers clone before mutating TTL (or
// stamping hops) so shared references stay immutable.
func (e *Envelope) Clone() *Envelope {
	cp := *e
	cp.Payload = append([]byte(nil), e.Payload...)
	cp.Token = append([]byte(nil), e.Token...)
	cp.Signature = append([]byte(nil), e.Signature...)
	cp.Span = e.Span.Clone()
	return &cp
}
