package message

import (
	"bytes"
	"testing"
	"time"

	"entitytrace/internal/secure"
)

func TestSpanRoundTrip(t *testing.T) {
	e := sampleEnvelope()
	sp := e.StartSpan()
	if sp.TraceID != e.ID {
		t.Fatalf("span trace ID %v, want envelope ID %v", sp.TraceID, e.ID)
	}
	t0 := time.Unix(0, 1_000_000_000)
	e.AddHop("svc-1", t0)
	e.AddHop("broker-1", t0.Add(2*time.Millisecond))
	e.AddHop("broker-2", t0.Add(5*time.Millisecond))

	back, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Span == nil {
		t.Fatal("span lost in round trip")
	}
	if back.Span.TraceID != e.ID {
		t.Fatalf("trace ID %v, want %v", back.Span.TraceID, e.ID)
	}
	if len(back.Span.Hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(back.Span.Hops))
	}
	for i, want := range []Hop{
		{Node: "svc-1", AtNanos: t0.UnixNano()},
		{Node: "broker-1", AtNanos: t0.Add(2 * time.Millisecond).UnixNano()},
		{Node: "broker-2", AtNanos: t0.Add(5 * time.Millisecond).UnixNano()},
	} {
		if back.Span.Hops[i] != want {
			t.Fatalf("hop %d = %+v, want %+v", i, back.Span.Hops[i], want)
		}
	}
}

// TestSeedFormatCompatibility pins the wire contract: an envelope without
// a span marshals to exactly the seed byte layout (the span'd form is a
// strict extension), and seed-format bytes decode to a nil span.
func TestSeedFormatCompatibility(t *testing.T) {
	e := sampleEnvelope()
	seedWire := e.Marshal()

	back, err := Unmarshal(seedWire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Span != nil {
		t.Fatal("seed-format envelope decoded with a span")
	}

	e.StartSpan()
	e.AddHop("svc-1", time.Unix(0, 42))
	spanWire := e.Marshal()
	if !bytes.HasPrefix(spanWire, seedWire) {
		t.Fatal("span'd wire form is not a strict extension of the seed form")
	}
	if len(spanWire) == len(seedWire) {
		t.Fatal("span added zero bytes")
	}
}

// TestSignatureSurvivesHopStamping mirrors TestSignatureSurvivesTTLDecrement:
// the span is mutable routing state outside the signed byte range, so
// brokers stamping hops must not invalidate the publisher's signature.
func TestSignatureSurvivesHopStamping(t *testing.T) {
	e := sampleEnvelope()
	signer, _ := secure.NewSigner(testPair.Private, secure.SHA1)
	if err := e.Sign(signer); err != nil {
		t.Fatal(err)
	}
	e.StartSpan()
	e.AddHop("broker-1", time.Now())
	e.AddHop("broker-2", time.Now())
	back, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := back.VerifySignature(testPair.Public, secure.SHA1); err != nil {
		t.Fatalf("hop stamping broke the signature: %v", err)
	}
}

func TestSpanRejectsBadTrailer(t *testing.T) {
	e := sampleEnvelope()
	e.StartSpan()
	e.AddHop("svc-1", time.Unix(0, 1))
	wire := e.Marshal()

	// Corrupt the trailer marker.
	seedLen := len(sampleEnvelopeSeedWire(e))
	bad := append([]byte(nil), wire...)
	bad[seedLen] = 0x7f
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("accepted unknown trailer marker")
	}

	// Truncate mid-span.
	if _, err := Unmarshal(wire[:len(wire)-3]); err == nil {
		t.Fatal("accepted truncated span")
	}

	// Trailing bytes after a valid span.
	if _, err := Unmarshal(append(append([]byte(nil), wire...), 0xff)); err == nil {
		t.Fatal("accepted trailing bytes after span")
	}
}

// sampleEnvelopeSeedWire returns e's wire form without its span.
func sampleEnvelopeSeedWire(e *Envelope) []byte {
	cp := e.Clone()
	cp.Span = nil
	return cp.Marshal()
}

func TestSpanHopBound(t *testing.T) {
	e := sampleEnvelope()
	e.StartSpan()
	before := mSpanTruncated.Value()
	for i := 0; i < MaxHops+10; i++ {
		e.AddHop("n", time.Unix(0, int64(i)))
	}
	if got := len(e.Span.Hops); got != MaxHops {
		t.Fatalf("hops = %d, want capped at %d", got, MaxHops)
	}
	// Refused hops are not silent: each increments the truncation
	// counter surfaced in /stats, so invisible flow tails are detectable.
	if got := mSpanTruncated.Value() - before; got != 10 {
		t.Fatalf("span_hops_truncated_total advanced by %d, want 10", got)
	}
	back, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Span.Hops) != MaxHops {
		t.Fatalf("round-tripped hops = %d", len(back.Span.Hops))
	}
}

func TestAddHopWithoutSpanIsNoop(t *testing.T) {
	e := sampleEnvelope()
	e.AddHop("broker-1", time.Now())
	if e.Span != nil {
		t.Fatal("AddHop created a span on an envelope that never opted in")
	}
}

func TestStartSpanIdempotent(t *testing.T) {
	e := sampleEnvelope()
	sp := e.StartSpan()
	e.AddHop("a", time.Unix(0, 1))
	if e.StartSpan() != sp {
		t.Fatal("StartSpan replaced an existing span")
	}
	if len(e.Span.Hops) != 1 {
		t.Fatal("StartSpan cleared existing hops")
	}
}

func TestHopLatencies(t *testing.T) {
	var nilSpan *Span
	if nilSpan.HopLatencies() != nil {
		t.Fatal("nil span latencies")
	}
	s := &Span{Hops: []Hop{
		{Node: "a", AtNanos: 100},
		{Node: "b", AtNanos: 350},
		{Node: "c", AtNanos: 250}, // clock skew: negative delta preserved
	}}
	got := s.HopLatencies()
	want := []time.Duration{250, -100}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("latencies = %v, want %v", got, want)
	}
}

func TestCloneDeepCopiesSpan(t *testing.T) {
	e := sampleEnvelope()
	e.StartSpan()
	e.AddHop("a", time.Unix(0, 1))
	cp := e.Clone()
	cp.AddHop("b", time.Unix(0, 2))
	if len(e.Span.Hops) != 1 {
		t.Fatalf("mutating the clone changed the original (hops=%d)", len(e.Span.Hops))
	}
	if cp.Span.TraceID != e.Span.TraceID {
		t.Fatal("clone lost the trace ID")
	}
}
