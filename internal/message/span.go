package message

import (
	"fmt"
	"time"

	"entitytrace/internal/ident"
	"entitytrace/internal/obs"
)

// Per-hop tracing (observability layer): an envelope may carry an
// optional span annotation recording the nodes it passed through and
// when. The annotation is appended to the wire form AFTER the signature
// and is excluded from SigningBytes — like the TTL it is mutable routing
// state, stamped by every forwarding broker, so it must not invalidate
// the publisher's signature. Envelopes without the annotation (the seed
// wire format) parse unchanged, and an absent annotation adds zero
// bytes, so the feature is wire-compatible and pay-as-you-go.

// MaxHops bounds the hop list against hostile or looping growth; AddHop
// stops recording past the bound (the TTL bounds actual forwarding far
// earlier) and counts each refused hop in span_hops_truncated_total.
const MaxHops = 32

// mSpanTruncated counts hops refused by AddHop because the span was
// already at MaxHops — a nonzero value means flows exist whose tails are
// invisible to trace assembly.
var mSpanTruncated = obs.Default.Counter("span_hops_truncated_total")

// spanMarker introduces the optional trailing span section.
const spanMarker = 0x01

// Hop is one node traversal: the node's name and its local clock when
// the envelope passed through.
type Hop struct {
	// Node names the traversing node (entity ID or broker name).
	Node string
	// AtNanos is the node's local Unix-nanosecond timestamp. Deltas
	// between adjacent hops measure per-hop latency (subject to clock
	// skew between nodes, §4.3's NTP bound).
	AtNanos int64
}

// Time returns the hop timestamp as a time.Time.
func (h Hop) Time() time.Time { return time.Unix(0, h.AtNanos) }

// Span identifies one traced message flow and accumulates its hops, so
// the path entity→broker→…→tracker can be reconstructed.
type Span struct {
	// TraceID correlates the flow (by default the originating
	// envelope's ID).
	TraceID ident.UUID
	// Hops is the traversal record, oldest first.
	Hops []Hop
}

// Clone deep-copies the span.
func (s *Span) Clone() *Span {
	if s == nil {
		return nil
	}
	cp := &Span{TraceID: s.TraceID}
	cp.Hops = append([]Hop(nil), s.Hops...)
	return cp
}

// wireSize returns the exact serialized size of the span section (0 for
// an absent span), mirroring marshal.
func (s *Span) wireSize() int {
	if s == nil {
		return 0
	}
	n := 1 + 16 + 1 // marker, trace ID, hop count
	hops := len(s.Hops)
	if hops > MaxHops {
		hops = MaxHops
	}
	for _, h := range s.Hops[:hops] {
		n += 4 + len(h.Node) + 8
	}
	return n
}

// marshal appends the span wire section: marker, trace ID, hop count,
// hops.
func (s *Span) marshal(w *writer) {
	w.u8(spanMarker)
	w.uuid(s.TraceID)
	n := len(s.Hops)
	if n > MaxHops {
		n = MaxHops
	}
	w.u8(uint8(n))
	for _, h := range s.Hops[:n] {
		w.str(h.Node)
		w.i64(h.AtNanos)
	}
}

// unmarshalSpan parses a span section; the reader is positioned at the
// marker byte.
func unmarshalSpan(r *reader) (*Span, error) {
	if m := r.u8(); r.err == nil && m != spanMarker {
		return nil, fmt.Errorf("message: unknown envelope trailer marker %d", m)
	}
	s := &Span{TraceID: r.uuid()}
	n := int(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	if n > MaxHops {
		return nil, fmt.Errorf("message: span hop count %d exceeds %d", n, MaxHops)
	}
	for i := 0; i < n && r.err == nil; i++ {
		s.Hops = append(s.Hops, Hop{Node: r.str(), AtNanos: r.i64()})
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// StartSpan attaches a span to the envelope (correlated by the envelope
// ID) if it does not already carry one, and returns it. Originators call
// this; forwarding nodes only stamp hops on spans that already exist.
func (e *Envelope) StartSpan() *Span {
	if e.Span == nil {
		e.Span = &Span{TraceID: e.ID}
	}
	return e.Span
}

// AddHop stamps a traversal on the envelope's span. Envelopes without a
// span are left untouched, so hop accounting costs nothing unless the
// originator opted in with StartSpan. Hops past MaxHops are refused and
// counted in span_hops_truncated_total.
func (e *Envelope) AddHop(node string, at time.Time) {
	if e.Span == nil {
		return
	}
	if len(e.Span.Hops) >= MaxHops {
		mSpanTruncated.Inc()
		return
	}
	e.Span.Hops = append(e.Span.Hops, Hop{Node: node, AtNanos: at.UnixNano()})
}

// HopLatencies returns the durations between adjacent hops (length
// len(Hops)-1). Negative deltas are possible under inter-node clock
// skew and are reported as measured.
func (s *Span) HopLatencies() []time.Duration {
	if s == nil || len(s.Hops) < 2 {
		return nil
	}
	out := make([]time.Duration, 0, len(s.Hops)-1)
	for i := 1; i < len(s.Hops); i++ {
		out = append(out, time.Duration(s.Hops[i].AtNanos-s.Hops[i-1].AtNanos))
	}
	return out
}
