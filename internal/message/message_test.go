package message

import (
	"bytes"
	"testing"
	"testing/quick"

	"entitytrace/internal/ident"
	"entitytrace/internal/secure"
	"entitytrace/internal/topic"
)

var testPair *secure.KeyPair

func init() {
	var err error
	testPair, err = secure.GenerateKeyPair(secure.PaperRSABits)
	if err != nil {
		panic(err)
	}
}

func sampleEnvelope() *Envelope {
	e := New(TraceAllsWell, topic.MustParse("/Constrained/Traces/Broker/Publish-Only/tt/AllUpdates"),
		"entity-1", []byte("payload"))
	e.SeqNum = 7
	e.RequestID = ident.NewRequestID()
	e.Token = []byte("token-bytes")
	e.Flags = FlagSecured
	return e
}

func TestEnvelopeRoundTrip(t *testing.T) {
	e := sampleEnvelope()
	back, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != e.ID || back.Type != e.Type || !back.Topic.Equal(e.Topic) ||
		back.Source != e.Source || back.Timestamp != e.Timestamp ||
		back.SeqNum != e.SeqNum || back.RequestID != e.RequestID ||
		back.TTL != e.TTL || back.Flags != e.Flags ||
		!bytes.Equal(back.Payload, e.Payload) || !bytes.Equal(back.Token, e.Token) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, e)
	}
}

func TestEnvelopeRoundTripProperty(t *testing.T) {
	prop := func(payload, token []byte, seq uint64, ttl uint8, flags uint16) bool {
		e := New(TypeData, topic.MustParse("/a/b"), "src", payload)
		e.SeqNum = seq
		e.TTL = ttl
		e.Flags = flags
		e.Token = token
		back, err := Unmarshal(e.Marshal())
		return err == nil && back.SeqNum == seq && back.TTL == ttl &&
			back.Flags == flags && bytes.Equal(back.Payload, payload) &&
			bytes.Equal(back.Token, token)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeSignVerify(t *testing.T) {
	e := sampleEnvelope()
	signer, _ := secure.NewSigner(testPair.Private, secure.SHA1)
	if err := e.Sign(signer); err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := back.VerifySignature(testPair.Public, secure.SHA1); err != nil {
		t.Fatalf("verify after round trip: %v", err)
	}
}

func TestEnvelopeSignatureDetectsTamper(t *testing.T) {
	e := sampleEnvelope()
	signer, _ := secure.NewSigner(testPair.Private, secure.SHA1)
	if err := e.Sign(signer); err != nil {
		t.Fatal(err)
	}
	e.Payload = []byte("tampered")
	if err := e.VerifySignature(testPair.Public, secure.SHA1); err == nil {
		t.Fatal("tampered envelope verified")
	}
}

func TestEnvelopeUnsignedVerifyFails(t *testing.T) {
	e := sampleEnvelope()
	if err := e.VerifySignature(testPair.Public, secure.SHA1); err == nil {
		t.Fatal("unsigned envelope verified")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	cases := [][]byte{nil, {}, {1}, []byte("random junk that is not an envelope")}
	for _, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("Unmarshal(%d bytes) succeeded", len(c))
		}
	}
}

func TestUnmarshalWrongVersion(t *testing.T) {
	e := sampleEnvelope()
	wire := e.Marshal()
	wire[0] = 99
	if _, err := Unmarshal(wire); err == nil {
		t.Fatal("accepted wrong version")
	}
}

func TestUnmarshalTrailingBytes(t *testing.T) {
	wire := append(sampleEnvelope().Marshal(), 0xff)
	if _, err := Unmarshal(wire); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestUnmarshalBadTopic(t *testing.T) {
	e := sampleEnvelope()
	e.Topic = topic.Topic{} // zero topic serializes as ""
	if _, err := Unmarshal(e.Marshal()); err == nil {
		t.Fatal("accepted envelope with invalid topic")
	}
}

func TestUnmarshalUnknownType(t *testing.T) {
	e := sampleEnvelope()
	e.Type = lastType + 5
	if _, err := Unmarshal(e.Marshal()); err == nil {
		t.Fatal("accepted unknown message type")
	}
}

func TestUnmarshalHostileLength(t *testing.T) {
	// Craft an envelope whose payload length prefix claims 1 GiB.
	e := sampleEnvelope()
	e.Payload = nil
	wire := e.Marshal()
	// Find the payload length field by re-marshaling with a marker.
	// Simpler: corrupt a length prefix near the end (token length).
	wire[len(wire)-4-len(e.Signature)-4-len(e.Token)-4] = 0xff
	if _, err := Unmarshal(wire); err == nil {
		t.Fatal("accepted hostile length prefix")
	}
}

func TestClone(t *testing.T) {
	e := sampleEnvelope()
	e.Signature = []byte("sig")
	c := e.Clone()
	c.Payload[0] = 'X'
	c.TTL--
	if e.Payload[0] == 'X' || e.TTL == c.TTL {
		t.Fatal("Clone shares state with original")
	}
}

func TestTypePredicates(t *testing.T) {
	if !TraceInitializing.IsTrace() || !TraceNetworkMetrics.IsTrace() {
		t.Fatal("trace types not IsTrace")
	}
	if TypePing.IsTrace() || TypeRegistration.IsTrace() {
		t.Fatal("protocol types reported IsTrace")
	}
	if !TraceInitializing.Valid() || !TypeData.Valid() {
		t.Fatal("valid types reported invalid")
	}
	if (lastType + 1).Valid() {
		t.Fatal("out-of-range type reported valid")
	}
}

func TestTypeStrings(t *testing.T) {
	known := map[Type]string{
		TraceAllsWell:              "ALLS_WELL",
		TraceGaugeInterest:         "GUAGE_INTEREST",
		TraceFailureSuspicion:      "FAILURE_SUSPICION",
		TraceFailed:                "FAILED",
		TraceJoin:                  "JOIN",
		TraceRevertingToSilentMode: "REVERTING_TO_SILENT_MODE",
		TraceLoadInformation:       "LOAD_INFORMATION",
		TraceNetworkMetrics:        "NETWORK_METRICS",
		TypePing:                   "PING",
	}
	for ty, want := range known {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", uint16(ty), got, want)
		}
	}
	if Type(9999).String() == "" {
		t.Fatal("unknown type produced empty string")
	}
}

func TestEntityStateStringsAndTraceTypes(t *testing.T) {
	cases := map[EntityState]struct {
		str string
		tt  Type
	}{
		StateInitializing: {"INITIALIZING", TraceInitializing},
		StateRecovering:   {"RECOVERING", TraceRecovering},
		StateReady:        {"READY", TraceReady},
		StateShutdown:     {"SHUTDOWN", TraceShutdown},
	}
	for st, want := range cases {
		if st.String() != want.str {
			t.Errorf("%d.String() = %q", st, st.String())
		}
		if st.TraceType() != want.tt {
			t.Errorf("%v.TraceType() = %v", st, st.TraceType())
		}
		if !st.Valid() {
			t.Errorf("%v not Valid", st)
		}
	}
	if EntityState(9).Valid() {
		t.Fatal("invalid state reported valid")
	}
}

func TestRegistrationRoundTrip(t *testing.T) {
	rg := &Registration{
		Entity:           "svc",
		CertDER:          []byte{1, 2, 3},
		Advertisement:    []byte{4, 5},
		SecureTraces:     true,
		SymmetricChannel: true,
	}
	back, err := UnmarshalRegistration(rg.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Entity != rg.Entity || !bytes.Equal(back.CertDER, rg.CertDER) ||
		!bytes.Equal(back.Advertisement, rg.Advertisement) ||
		back.SecureTraces != rg.SecureTraces ||
		back.SymmetricChannel != rg.SymmetricChannel {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, rg)
	}
	if _, err := UnmarshalRegistration([]byte{1, 2}); err == nil {
		t.Fatal("accepted truncated registration")
	}
}

func TestRegistrationResponseRoundTrip(t *testing.T) {
	rr := &RegistrationResponse{RequestID: ident.NewRequestID(), SessionID: ident.NewSessionID(), BrokerCert: []byte{5, 6}}
	back, err := UnmarshalRegistrationResponse(rr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.RequestID != rr.RequestID || back.SessionID != rr.SessionID || !bytes.Equal(back.BrokerCert, rr.BrokerCert) {
		t.Fatalf("round trip mismatch")
	}
	if _, err := UnmarshalRegistrationResponse([]byte{1}); err == nil {
		t.Fatal("accepted truncated response")
	}
}

func TestPingRoundTrip(t *testing.T) {
	p := &Ping{Number: 42, BrokerTimestamp: 12345}
	back, err := UnmarshalPing(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *p {
		t.Fatal("round trip mismatch")
	}
	if _, err := UnmarshalPing(nil); err == nil {
		t.Fatal("accepted empty ping")
	}
}

func TestPingResponseRoundTrip(t *testing.T) {
	p := &PingResponse{Number: 42, BrokerTimestamp: 9, EntityTimestamp: 10, State: StateReady}
	back, err := UnmarshalPingResponse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *p {
		t.Fatal("round trip mismatch")
	}
	bad := &PingResponse{State: EntityState(9)}
	if _, err := UnmarshalPingResponse(bad.Marshal()); err == nil {
		t.Fatal("accepted invalid state")
	}
}

func TestStateReportRoundTrip(t *testing.T) {
	s := &StateReport{From: StateInitializing, To: StateReady, At: 77}
	back, err := UnmarshalStateReport(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *s {
		t.Fatal("round trip mismatch")
	}
	bad := &StateReport{From: EntityState(7), To: StateReady}
	if _, err := UnmarshalStateReport(bad.Marshal()); err == nil {
		t.Fatal("accepted invalid transition")
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	l := &LoadReport{CPUPercent: 42.5, MemoryUsedBytes: 1 << 30, MemoryTotalBytes: 4 << 30, Workload: 0.75, At: 5}
	back, err := UnmarshalLoadReport(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *l {
		t.Fatal("round trip mismatch")
	}
	if _, err := UnmarshalLoadReport([]byte{1}); err == nil {
		t.Fatal("accepted truncated load report")
	}
}

func TestNetworkReportRoundTrip(t *testing.T) {
	n := &NetworkReport{LossRate: 0.01, MeanRTTMillis: 1.9, OutOfOrderRate: 0.002, BandwidthBps: 1e8, SampleCount: 10, At: 3}
	back, err := UnmarshalNetworkReport(n.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *n {
		t.Fatal("round trip mismatch")
	}
}

func TestGaugeInterestProbeRoundTrip(t *testing.T) {
	g := &GaugeInterestProbe{TraceTopic: ident.NewUUID(), Secured: true, ResponseTopic: "/x/y"}
	back, err := UnmarshalGaugeInterestProbe(g.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *g {
		t.Fatal("round trip mismatch")
	}
}

func TestInterestResponseRoundTrip(t *testing.T) {
	ir := &InterestResponse{
		Tracker:          "tracker-1",
		TraceTopic:       ident.NewUUID(),
		Classes:          topic.NewClassSet(topic.ClassLoad, topic.ClassAllUpdates),
		CertDER:          []byte{9, 9},
		KeyDeliveryTopic: "/keys/t1",
	}
	back, err := UnmarshalInterestResponse(ir.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Tracker != ir.Tracker || back.TraceTopic != ir.TraceTopic ||
		back.Classes != ir.Classes || !bytes.Equal(back.CertDER, ir.CertDER) ||
		back.KeyDeliveryTopic != ir.KeyDeliveryTopic {
		t.Fatal("round trip mismatch")
	}
}

func TestTraceKeyRoundTrip(t *testing.T) {
	tk := &TraceKey{Purpose: PurposeTrace, Key: []byte("0123456789abcdef01234567"), Algorithm: "AES-192-CBC", Padding: "PKCS7"}
	back, err := UnmarshalTraceKey(tk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Purpose != tk.Purpose || !bytes.Equal(back.Key, tk.Key) || back.Algorithm != tk.Algorithm || back.Padding != tk.Padding {
		t.Fatal("round trip mismatch")
	}
	bad := &TraceKey{Purpose: 9, Key: []byte{1}}
	if _, err := UnmarshalTraceKey(bad.Marshal()); err == nil {
		t.Fatal("accepted unknown key purpose")
	}
}

func TestDelegationRoundTrip(t *testing.T) {
	d := &Delegation{TokenBytes: []byte{1, 2, 3}, DelegatePrivDER: []byte{4, 5}}
	back, err := UnmarshalDelegation(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.TokenBytes, d.TokenBytes) || !bytes.Equal(back.DelegatePrivDER, d.DelegatePrivDER) {
		t.Fatal("round trip mismatch")
	}
	if _, err := UnmarshalDelegation([]byte{1}); err == nil {
		t.Fatal("accepted truncated delegation")
	}
}

func TestTraceEventRoundTrip(t *testing.T) {
	te := &TraceEvent{Entity: "e", TraceTopic: ident.NewUUID(), Detail: "suspected", Body: []byte{1}}
	back, err := UnmarshalTraceEvent(te.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Entity != te.Entity || back.TraceTopic != te.TraceTopic ||
		back.Detail != te.Detail || !bytes.Equal(back.Body, te.Body) {
		t.Fatal("round trip mismatch")
	}
}

func TestErrorReportRoundTrip(t *testing.T) {
	er := &ErrorReport{Code: ErrCodeBadSignature, Detail: "verification failed"}
	back, err := UnmarshalErrorReport(er.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *er {
		t.Fatal("round trip mismatch")
	}
}

func TestPayloadPropertyRoundTrips(t *testing.T) {
	if err := quick.Check(func(num uint64, ts int64) bool {
		p := &Ping{Number: num, BrokerTimestamp: ts}
		back, err := UnmarshalPing(p.Marshal())
		return err == nil && *back == *p
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(cpu, wl float64, mu, mt uint64, at int64) bool {
		l := &LoadReport{CPUPercent: cpu, MemoryUsedBytes: mu, MemoryTotalBytes: mt, Workload: wl, At: at}
		back, err := UnmarshalLoadReport(l.Marshal())
		if err != nil {
			return false
		}
		// NaN never compares equal; compare bit patterns via re-marshal.
		return bytes.Equal(back.Marshal(), l.Marshal())
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSignatureSurvivesTTLDecrement pins the routing-critical property
// that TTL is excluded from the signed bytes: a broker may decrement TTL
// when forwarding without invalidating the publisher's signature.
func TestSignatureSurvivesTTLDecrement(t *testing.T) {
	signer, _ := secure.NewSigner(testPair.Private, secure.SHA1)
	if err := quick.Check(func(payload []byte, ttl uint8) bool {
		e := New(TraceAllsWell, topic.MustParse("/Constrained/Traces/Broker/Publish-Only/tt/AllUpdates"), "", payload)
		e.TTL = ttl
		if err := e.Sign(signer); err != nil {
			return false
		}
		// Forwarding: clone, decrement, re-marshal, re-parse — as the
		// broker network does at each hop.
		fwd := e.Clone()
		if fwd.TTL > 0 {
			fwd.TTL--
		}
		back, err := Unmarshal(fwd.Marshal())
		if err != nil {
			return false
		}
		return back.VerifySignature(testPair.Public, secure.SHA1) == nil
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSignatureCoversFlagsAndPayload confirms that mutating any signed
// field is detected even after the TTL exclusion.
func TestSignatureCoversFlagsAndPayload(t *testing.T) {
	signer, _ := secure.NewSigner(testPair.Private, secure.SHA1)
	e := sampleEnvelope()
	if err := e.Sign(signer); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Envelope){
		func(x *Envelope) { x.Flags ^= FlagEncrypted },
		func(x *Envelope) { x.SeqNum++ },
		func(x *Envelope) { x.Token = append(x.Token, 1) },
		func(x *Envelope) { x.Source = "someone-else" },
		func(x *Envelope) { x.Timestamp++ },
	}
	for i, mutate := range mutations {
		c := e.Clone()
		mutate(c)
		if err := c.VerifySignature(testPair.Public, secure.SHA1); err == nil {
			t.Errorf("mutation %d not detected by signature", i)
		}
	}
}
