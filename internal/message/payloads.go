package message

import (
	"fmt"

	"entitytrace/internal/ident"
	"entitytrace/internal/topic"
)

// EntityState is a traced entity's lifecycle state (§3.3: INITIALIZING,
// RECOVERING, READY or SHUTDOWN).
type EntityState uint8

const (
	StateInitializing EntityState = iota
	StateRecovering
	StateReady
	StateShutdown
)

// String returns the paper's spelling of the state.
func (s EntityState) String() string {
	switch s {
	case StateInitializing:
		return "INITIALIZING"
	case StateRecovering:
		return "RECOVERING"
	case StateReady:
		return "READY"
	case StateShutdown:
		return "SHUTDOWN"
	default:
		return fmt.Sprintf("EntityState(%d)", uint8(s))
	}
}

// Valid reports whether s is a defined state.
func (s EntityState) Valid() bool { return s <= StateShutdown }

// TraceType returns the Table 1 trace type announcing this state.
func (s EntityState) TraceType() Type {
	switch s {
	case StateInitializing:
		return TraceInitializing
	case StateRecovering:
		return TraceRecovering
	case StateReady:
		return TraceReady
	default:
		return TraceShutdown
	}
}

// Registration is the payload of a TypeRegistration message (§3.2): the
// entity's identifier and credentials and the trace-topic advertisement
// establishing provenance, plus the entity's security elections. The
// request identifier and the signature live on the envelope. Keys (the
// §6.3 symmetric channel key, the §5.1 secret trace key and the §4.3
// delegation) follow after the response, sealed to the broker credential
// it carries.
type Registration struct {
	Entity        ident.EntityID
	CertDER       []byte
	Advertisement []byte
	// SecureTraces requests §5.1 confidentiality: the entity will send a
	// secret trace key and the broker will encrypt published traces.
	SecureTraces bool
	// SymmetricChannel requests the §6.3 signing-cost optimization: the
	// entity will send a shared symmetric key and authenticate its
	// messages by authenticated encryption instead of signatures.
	SymmetricChannel bool
}

// Marshal serializes the registration payload.
func (rg *Registration) Marshal() []byte {
	var w writer
	w.str(string(rg.Entity))
	w.bytes(rg.CertDER)
	w.bytes(rg.Advertisement)
	if rg.SecureTraces {
		w.u8(1)
	} else {
		w.u8(0)
	}
	if rg.SymmetricChannel {
		w.u8(1)
	} else {
		w.u8(0)
	}
	return w.buf
}

// UnmarshalRegistration parses a Registration payload.
func UnmarshalRegistration(b []byte) (*Registration, error) {
	r := newReader(b)
	rg := &Registration{}
	rg.Entity = ident.EntityID(r.str())
	rg.CertDER = r.bytes()
	rg.Advertisement = r.bytes()
	rg.SecureTraces = r.u8() == 1
	rg.SymmetricChannel = r.u8() == 1
	if err := r.done(); err != nil {
		return nil, err
	}
	return rg, nil
}

// RegistrationResponse is the *sealed* body of a
// TypeRegistrationResponse: the request identifier from the original
// message and the newly generated session identifier (§3.2). The entire
// struct is encrypted with a random secret key wrapped under the
// entity's public key; the envelope's Payload carries the sealed bytes.
type RegistrationResponse struct {
	RequestID ident.RequestID
	SessionID ident.SessionID
	// BrokerCert is the hosting broker's DER credential; the entity
	// seals its keys and delegation to this certificate's public key.
	BrokerCert []byte
}

// Marshal serializes the response body (pre-sealing).
func (rr *RegistrationResponse) Marshal() []byte {
	var w writer
	w.uuid(rr.RequestID)
	w.uuid(rr.SessionID)
	w.bytes(rr.BrokerCert)
	return w.buf
}

// UnmarshalRegistrationResponse parses a response body (post-opening).
func UnmarshalRegistrationResponse(b []byte) (*RegistrationResponse, error) {
	r := newReader(b)
	rr := &RegistrationResponse{}
	rr.RequestID = r.uuid()
	rr.SessionID = r.uuid()
	rr.BrokerCert = r.bytes()
	if err := r.done(); err != nil {
		return nil, err
	}
	return rr, nil
}

// Ping is the payload of a broker-initiated ping (§3.3): a monotonically
// increasing message number and the broker timestamp at issue time.
type Ping struct {
	Number          uint64
	BrokerTimestamp int64
}

// Marshal serializes the ping.
func (p *Ping) Marshal() []byte {
	var w writer
	w.u64(p.Number)
	w.i64(p.BrokerTimestamp)
	return w.buf
}

// UnmarshalPing parses a Ping payload.
func UnmarshalPing(b []byte) (*Ping, error) {
	r := newReader(b)
	p := &Ping{}
	p.Number = r.u64()
	p.BrokerTimestamp = r.i64()
	if err := r.done(); err != nil {
		return nil, err
	}
	return p, nil
}

// PingResponse answers a ping; it must include both the message number
// and the timestamp contained in the original ping (§3.3).
type PingResponse struct {
	Number          uint64
	BrokerTimestamp int64
	EntityTimestamp int64
	State           EntityState
}

// Marshal serializes the ping response.
func (p *PingResponse) Marshal() []byte {
	var w writer
	w.u64(p.Number)
	w.i64(p.BrokerTimestamp)
	w.i64(p.EntityTimestamp)
	w.u8(uint8(p.State))
	return w.buf
}

// UnmarshalPingResponse parses a PingResponse payload.
func UnmarshalPingResponse(b []byte) (*PingResponse, error) {
	r := newReader(b)
	p := &PingResponse{}
	p.Number = r.u64()
	p.BrokerTimestamp = r.i64()
	p.EntityTimestamp = r.i64()
	p.State = EntityState(r.u8())
	if err := r.done(); err != nil {
		return nil, err
	}
	if !p.State.Valid() {
		return nil, fmt.Errorf("message: invalid entity state %d", uint8(p.State))
	}
	return p, nil
}

// StateReport is sent by a traced entity whenever a state transition
// occurs (§3.3).
type StateReport struct {
	From EntityState
	To   EntityState
	At   int64
}

// Marshal serializes the state report.
func (s *StateReport) Marshal() []byte {
	var w writer
	w.u8(uint8(s.From))
	w.u8(uint8(s.To))
	w.i64(s.At)
	return w.buf
}

// UnmarshalStateReport parses a StateReport payload.
func UnmarshalStateReport(b []byte) (*StateReport, error) {
	r := newReader(b)
	s := &StateReport{}
	s.From = EntityState(r.u8())
	s.To = EntityState(r.u8())
	s.At = r.i64()
	if err := r.done(); err != nil {
		return nil, err
	}
	if !s.From.Valid() || !s.To.Valid() {
		return nil, fmt.Errorf("message: invalid state transition %d->%d", s.From, s.To)
	}
	return s, nil
}

// LoadReport carries the load information of §3.3: CPU info, memory
// usage and workload.
type LoadReport struct {
	CPUPercent       float64
	MemoryUsedBytes  uint64
	MemoryTotalBytes uint64
	Workload         float64
	At               int64
}

// Marshal serializes the load report.
func (l *LoadReport) Marshal() []byte {
	var w writer
	w.f64(l.CPUPercent)
	w.u64(l.MemoryUsedBytes)
	w.u64(l.MemoryTotalBytes)
	w.f64(l.Workload)
	w.i64(l.At)
	return w.buf
}

// UnmarshalLoadReport parses a LoadReport payload.
func UnmarshalLoadReport(b []byte) (*LoadReport, error) {
	r := newReader(b)
	l := &LoadReport{}
	l.CPUPercent = r.f64()
	l.MemoryUsedBytes = r.u64()
	l.MemoryTotalBytes = r.u64()
	l.Workload = r.f64()
	l.At = r.i64()
	if err := r.done(); err != nil {
		return nil, err
	}
	return l, nil
}

// NetworkReport carries the network-realm metrics of §3.3, computed by
// the broker from ping/response behaviour: loss rates, transit delay and
// bandwidth, plus out-of-order delivery rates.
type NetworkReport struct {
	LossRate       float64
	MeanRTTMillis  float64
	OutOfOrderRate float64
	BandwidthBps   float64
	SampleCount    uint32
	At             int64
}

// Marshal serializes the network report.
func (n *NetworkReport) Marshal() []byte {
	var w writer
	w.f64(n.LossRate)
	w.f64(n.MeanRTTMillis)
	w.f64(n.OutOfOrderRate)
	w.f64(n.BandwidthBps)
	w.u32(n.SampleCount)
	w.i64(n.At)
	return w.buf
}

// UnmarshalNetworkReport parses a NetworkReport payload.
func UnmarshalNetworkReport(b []byte) (*NetworkReport, error) {
	r := newReader(b)
	n := &NetworkReport{}
	n.LossRate = r.f64()
	n.MeanRTTMillis = r.f64()
	n.OutOfOrderRate = r.f64()
	n.BandwidthBps = r.f64()
	n.SampleCount = r.u32()
	n.At = r.i64()
	if err := r.done(); err != nil {
		return nil, err
	}
	return n, nil
}

// GaugeInterestProbe is the payload of a TraceGaugeInterest message
// (§3.5). Secured mirrors the envelope FlagSecured bit for convenience;
// ResponseTopic names the Subscribe-Only topic trackers answer on.
type GaugeInterestProbe struct {
	TraceTopic    ident.UUID
	Secured       bool
	ResponseTopic string
}

// Marshal serializes the probe.
func (g *GaugeInterestProbe) Marshal() []byte {
	var w writer
	w.uuid(g.TraceTopic)
	if g.Secured {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.str(g.ResponseTopic)
	return w.buf
}

// UnmarshalGaugeInterestProbe parses a probe payload.
func UnmarshalGaugeInterestProbe(b []byte) (*GaugeInterestProbe, error) {
	r := newReader(b)
	g := &GaugeInterestProbe{}
	g.TraceTopic = r.uuid()
	g.Secured = r.u8() == 1
	g.ResponseTopic = r.str()
	if err := r.done(); err != nil {
		return nil, err
	}
	return g, nil
}

// InterestResponse is a tracker's answer to a gauge-interest probe
// (§3.5, §5.1): the classes of trace information it wants, its
// credentials, and — when traces are secured — the topic over which it
// expects the sealed trace key.
type InterestResponse struct {
	Tracker          ident.EntityID
	TraceTopic       ident.UUID
	Classes          topic.ClassSet
	CertDER          []byte
	KeyDeliveryTopic string
}

// Marshal serializes the interest response.
func (ir *InterestResponse) Marshal() []byte {
	var w writer
	w.str(string(ir.Tracker))
	w.uuid(ir.TraceTopic)
	w.u8(uint8(ir.Classes))
	w.bytes(ir.CertDER)
	w.str(ir.KeyDeliveryTopic)
	return w.buf
}

// UnmarshalInterestResponse parses an interest response payload.
func UnmarshalInterestResponse(b []byte) (*InterestResponse, error) {
	r := newReader(b)
	ir := &InterestResponse{}
	ir.Tracker = ident.EntityID(r.str())
	ir.TraceTopic = r.uuid()
	ir.Classes = topic.ClassSet(r.u8())
	ir.CertDER = r.bytes()
	ir.KeyDeliveryTopic = r.str()
	if err := r.done(); err != nil {
		return nil, err
	}
	return ir, nil
}

// Key purposes for TypeKeyDelivery messages.
const (
	// PurposeChannel is the §6.3 entity-to-broker symmetric channel key.
	PurposeChannel uint8 = 1
	// PurposeTrace is the §5.1 secret trace key encrypting published
	// traces.
	PurposeTrace uint8 = 2
)

// TraceKey is the *sealed* body of a TypeKeyDelivery message (§5.1,
// §6.3): a secret key together with the encryption algorithm and padding
// scheme that will be used, and the purpose it serves.
type TraceKey struct {
	Purpose   uint8
	Key       []byte
	Algorithm string
	Padding   string
}

// Marshal serializes the trace key body (pre-sealing).
func (tk *TraceKey) Marshal() []byte {
	var w writer
	w.u8(tk.Purpose)
	w.bytes(tk.Key)
	w.str(tk.Algorithm)
	w.str(tk.Padding)
	return w.buf
}

// UnmarshalTraceKey parses a trace key body (post-opening).
func UnmarshalTraceKey(b []byte) (*TraceKey, error) {
	r := newReader(b)
	tk := &TraceKey{}
	tk.Purpose = r.u8()
	tk.Key = r.bytes()
	tk.Algorithm = r.str()
	tk.Padding = r.str()
	if err := r.done(); err != nil {
		return nil, err
	}
	if tk.Purpose != PurposeChannel && tk.Purpose != PurposeTrace {
		return nil, fmt.Errorf("message: unknown key purpose %d", tk.Purpose)
	}
	return tk, nil
}

// Delegation is the *sealed* body of a TypeDelegation message (§4.3):
// the signed authorization token and the randomly generated private key
// whose public half the token carries, with which the broker signs the
// trace messages it publishes.
type Delegation struct {
	TokenBytes      []byte
	DelegatePrivDER []byte
}

// Marshal serializes the delegation body (pre-sealing).
func (d *Delegation) Marshal() []byte {
	var w writer
	w.bytes(d.TokenBytes)
	w.bytes(d.DelegatePrivDER)
	return w.buf
}

// UnmarshalDelegation parses a delegation body (post-opening).
func UnmarshalDelegation(b []byte) (*Delegation, error) {
	r := newReader(b)
	d := &Delegation{}
	d.TokenBytes = r.bytes()
	d.DelegatePrivDER = r.bytes()
	if err := r.done(); err != nil {
		return nil, err
	}
	return d, nil
}

// TraceEvent is the generic trace body a broker publishes to trackers:
// which entity the trace concerns, the session, free-form detail, and an
// optional nested report (StateReport / LoadReport / NetworkReport)
// selected by the envelope's Type.
type TraceEvent struct {
	Entity     ident.EntityID
	TraceTopic ident.UUID
	Detail     string
	Body       []byte
}

// Marshal serializes the trace event.
func (te *TraceEvent) Marshal() []byte {
	var w writer
	w.str(string(te.Entity))
	w.uuid(te.TraceTopic)
	w.str(te.Detail)
	w.bytes(te.Body)
	return w.buf
}

// UnmarshalTraceEvent parses a trace event payload.
func UnmarshalTraceEvent(b []byte) (*TraceEvent, error) {
	r := newReader(b)
	te := &TraceEvent{}
	te.Entity = ident.EntityID(r.str())
	te.TraceTopic = r.uuid()
	te.Detail = r.str()
	te.Body = r.bytes()
	if err := r.done(); err != nil {
		return nil, err
	}
	return te, nil
}

// ErrorReport is the payload of a TypeError message (§3.2: "If there is
// any error in the verification process, an error message is returned
// back to the entity").
type ErrorReport struct {
	Code   uint16
	Detail string
}

// Error codes.
const (
	ErrCodeBadSignature uint16 = iota + 1
	ErrCodeBadCredential
	ErrCodeBadAdvertisement
	ErrCodeUnauthorized
	ErrCodeInternal
)

// Marshal serializes the error report.
func (er *ErrorReport) Marshal() []byte {
	var w writer
	w.u16(er.Code)
	w.str(er.Detail)
	return w.buf
}

// UnmarshalErrorReport parses an error report payload.
func UnmarshalErrorReport(b []byte) (*ErrorReport, error) {
	r := newReader(b)
	er := &ErrorReport{}
	er.Code = r.u16()
	er.Detail = r.str()
	if err := r.done(); err != nil {
		return nil, err
	}
	return er, nil
}

// BrokerHealthPeer is one peer row in a broker self-monitoring
// snapshot: the peer's name, whether it is a broker link, its current
// egress queue depth and its decaying offender score.
type BrokerHealthPeer struct {
	Name     string
	IsBroker bool
	Queued   uint32
	Score    float64
}

// BrokerHealth is the payload of a TraceBrokerHealth message: the
// periodic topology/health snapshot a broker publishes about itself on
// the system-health derivative topic, so the fabric is monitored with
// the same trace machinery it provides for entities. Trackers and
// tracectl render broker maps and queue/offender state from it.
type BrokerHealth struct {
	// Broker names the reporting broker.
	Broker string
	// AtNanos is the broker's local clock at snapshot time.
	AtNanos int64
	// Subscriptions counts distinct subscribed topic strings.
	Subscriptions uint32
	// Published/Forwarded/Duplicates/Violations/Disconnects/EgressSheds/
	// Throttled are the broker's routing counters.
	Published   uint64
	Forwarded   uint64
	Duplicates  uint64
	Violations  uint64
	Disconnects uint64
	EgressSheds uint64
	Throttled   uint64
	// GuardHits/GuardMisses are the verified-token cache's counters (zero
	// when the broker runs uncached).
	GuardHits   uint64
	GuardMisses uint64
	// FlightHead is the flight recorder's latest sequence number (zero
	// when recording is disabled).
	FlightHead uint64
	// Peers lists connected peers (links and clients).
	Peers []BrokerHealthPeer
	// FabricEpoch/FabricMembers/FabricOwnedPerMille describe the broker's
	// fabric shard state (PROTOCOL.md §3.9): the ownership-table epoch,
	// the live member count, and the local share of the hash circle in
	// per-mille. All zero when the broker runs outside a fabric. On the
	// wire these are an optional trailing block: snapshots recorded
	// before the fabric existed still parse, with all three left zero.
	FabricEpoch         uint64
	FabricMembers       uint32
	FabricOwnedPerMille uint32
}

// maxHealthPeers bounds the parsed peer list (a broker with more peers
// truncates its report; the wire format stores the count in a u16).
const maxHealthPeers = 4096

// Marshal serializes the health snapshot.
func (bh *BrokerHealth) Marshal() []byte {
	var w writer
	w.str(bh.Broker)
	w.i64(bh.AtNanos)
	w.u32(bh.Subscriptions)
	w.u64(bh.Published)
	w.u64(bh.Forwarded)
	w.u64(bh.Duplicates)
	w.u64(bh.Violations)
	w.u64(bh.Disconnects)
	w.u64(bh.EgressSheds)
	w.u64(bh.Throttled)
	w.u64(bh.GuardHits)
	w.u64(bh.GuardMisses)
	w.u64(bh.FlightHead)
	peers := bh.Peers
	if len(peers) > maxHealthPeers {
		peers = peers[:maxHealthPeers]
	}
	w.u16(uint16(len(peers)))
	for _, p := range peers {
		w.str(p.Name)
		if p.IsBroker {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.u32(p.Queued)
		w.f64(p.Score)
	}
	w.u64(bh.FabricEpoch)
	w.u32(bh.FabricMembers)
	w.u32(bh.FabricOwnedPerMille)
	return w.buf
}

// UnmarshalBrokerHealth parses a health snapshot payload.
func UnmarshalBrokerHealth(b []byte) (*BrokerHealth, error) {
	r := newReader(b)
	bh := &BrokerHealth{}
	bh.Broker = r.str()
	bh.AtNanos = r.i64()
	bh.Subscriptions = r.u32()
	bh.Published = r.u64()
	bh.Forwarded = r.u64()
	bh.Duplicates = r.u64()
	bh.Violations = r.u64()
	bh.Disconnects = r.u64()
	bh.EgressSheds = r.u64()
	bh.Throttled = r.u64()
	bh.GuardHits = r.u64()
	bh.GuardMisses = r.u64()
	bh.FlightHead = r.u64()
	n := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if n > maxHealthPeers {
		return nil, fmt.Errorf("message: broker health peer count %d exceeds %d", n, maxHealthPeers)
	}
	for i := 0; i < n && r.err == nil; i++ {
		p := BrokerHealthPeer{Name: r.str()}
		p.IsBroker = r.u8() != 0
		p.Queued = r.u32()
		p.Score = r.f64()
		bh.Peers = append(bh.Peers, p)
	}
	// Optional trailing fabric block (absent from pre-fabric snapshots).
	if r.err == nil && r.off < len(r.b) {
		bh.FabricEpoch = r.u64()
		bh.FabricMembers = r.u32()
		bh.FabricOwnedPerMille = r.u32()
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return bh, nil
}

// AvailabilityRow is one entity's row in an availability digest: the
// ledger-derived state, uptime ratios, MTBF/MTTR, flap and detection
// statistics, and the SLO error-budget position.
type AvailabilityRow struct {
	// Entity names the tracked entity.
	Entity string
	// State is the ledger state (avail.State numeric value: 0 Unknown,
	// 1 Up, 2 Suspect, 3 Down, 4 Flapping).
	State uint8
	// SinceNanos is the wall-clock time the current state was entered.
	SinceNanos int64
	// Transitions counts up<->down transitions observed so far.
	Transitions uint32
	// Flaps counts flap episodes (entries into FLAPPING).
	Flaps uint32
	// DowntimeNanos is cumulative observed downtime.
	DowntimeNanos int64
	// Uptime5m/1h/24h are rolling-window uptime ratios in [0,1]; -1
	// marks a window with no observations yet.
	Uptime5m  float64
	Uptime1h  float64
	Uptime24h float64
	// MTBFNanos/MTTRNanos are mean time between failures / to recovery;
	// zero when no complete cycle has been observed.
	MTBFNanos int64
	MTTRNanos int64
	// DetectLastNanos/DetectMaxNanos are the skew-corrected
	// time-to-detect of the most recent failure and the worst seen.
	DetectLastNanos int64
	DetectMaxNanos  int64
	// BudgetRemaining is the SLO error budget remaining as a fraction of
	// the whole budget in [0,1]; -1 when no SLO is configured.
	BudgetRemaining float64
	// BurnRate is the current error-budget burn rate (1.0 = burning
	// exactly at the sustainable SLO rate); -1 when no SLO is set.
	BurnRate float64
	// Breaches counts SLO breach episodes.
	Breaches uint32
}

// AvailabilityDigest is the payload of a TraceAvailabilityDigest
// message: the periodic fleet-availability snapshot a broker publishes
// about the entities it hosts on the system-availability derivative
// topic, so a single subscription anywhere observes fleet-wide
// availability the same way the system-health topic exposes broker
// health.
type AvailabilityDigest struct {
	// Reporter names the publishing node (a broker, or a tracker when
	// serialized for the /avail admin endpoint).
	Reporter string
	// AtNanos is the reporter's local clock at digest time.
	AtNanos int64
	// Rows carries one entry per tracked entity.
	Rows []AvailabilityRow
}

// maxAvailRows bounds the parsed row list (the wire format stores the
// count in a u16; a reporter with more entities truncates its digest).
const maxAvailRows = 4096

// Marshal serializes the availability digest.
func (ad *AvailabilityDigest) Marshal() []byte {
	var w writer
	w.str(ad.Reporter)
	w.i64(ad.AtNanos)
	rows := ad.Rows
	if len(rows) > maxAvailRows {
		rows = rows[:maxAvailRows]
	}
	w.u16(uint16(len(rows)))
	for _, row := range rows {
		w.str(row.Entity)
		w.u8(row.State)
		w.i64(row.SinceNanos)
		w.u32(row.Transitions)
		w.u32(row.Flaps)
		w.i64(row.DowntimeNanos)
		w.f64(row.Uptime5m)
		w.f64(row.Uptime1h)
		w.f64(row.Uptime24h)
		w.i64(row.MTBFNanos)
		w.i64(row.MTTRNanos)
		w.i64(row.DetectLastNanos)
		w.i64(row.DetectMaxNanos)
		w.f64(row.BudgetRemaining)
		w.f64(row.BurnRate)
		w.u32(row.Breaches)
	}
	return w.buf
}

// UnmarshalAvailabilityDigest parses an availability digest payload.
func UnmarshalAvailabilityDigest(b []byte) (*AvailabilityDigest, error) {
	r := newReader(b)
	ad := &AvailabilityDigest{}
	ad.Reporter = r.str()
	ad.AtNanos = r.i64()
	n := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if n > maxAvailRows {
		return nil, fmt.Errorf("message: availability digest row count %d exceeds %d", n, maxAvailRows)
	}
	for i := 0; i < n && r.err == nil; i++ {
		row := AvailabilityRow{Entity: r.str()}
		row.State = r.u8()
		row.SinceNanos = r.i64()
		row.Transitions = r.u32()
		row.Flaps = r.u32()
		row.DowntimeNanos = r.i64()
		row.Uptime5m = r.f64()
		row.Uptime1h = r.f64()
		row.Uptime24h = r.f64()
		row.MTBFNanos = r.i64()
		row.MTTRNanos = r.i64()
		row.DetectLastNanos = r.i64()
		row.DetectMaxNanos = r.i64()
		row.BudgetRemaining = r.f64()
		row.BurnRate = r.f64()
		row.Breaches = r.u32()
		ad.Rows = append(ad.Rows, row)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ad, nil
}

// SessionKeyRequest is the payload of a TypeSessionKeyRequest message
// (§6.3 signing-cost optimization): a verifier — an intermediate broker
// or a tracker — that saw a session tag it cannot check asks the
// publisher's hosting broker for the sealed session parameters. The
// requester proves who it is with its X.509 credential; the responder
// seals the parameters to the credential's public key and publishes
// them on DeliveryTopic.
type SessionKeyRequest struct {
	// TraceTopic is the trace topic UUID the session publishes on.
	TraceTopic ident.UUID
	// SessionID names the session whose parameters are requested (zero
	// for "the current session of this topic").
	SessionID [16]byte
	// Requester names the asking principal (a broker name or tracker
	// entity ID).
	Requester ident.EntityID
	// CertDER is the requester's credential; the responder verifies it
	// against the shared CA before sealing anything to it.
	CertDER []byte
	// DeliveryTopic is where the requester listens for the sealed
	// SessionKeyResponse.
	DeliveryTopic string
}

// Marshal serializes the session-key request.
func (sr *SessionKeyRequest) Marshal() []byte {
	var w writer
	w.uuid(sr.TraceTopic)
	w.buf = append(w.buf, sr.SessionID[:]...)
	w.str(string(sr.Requester))
	w.bytes(sr.CertDER)
	w.str(sr.DeliveryTopic)
	return w.buf
}

// UnmarshalSessionKeyRequest parses a session-key request payload.
func UnmarshalSessionKeyRequest(b []byte) (*SessionKeyRequest, error) {
	r := newReader(b)
	sr := &SessionKeyRequest{}
	sr.TraceTopic = r.uuid()
	sid := r.uuid()
	copy(sr.SessionID[:], sid[:])
	sr.Requester = ident.EntityID(r.str())
	sr.CertDER = r.bytes()
	sr.DeliveryTopic = r.str()
	if err := r.done(); err != nil {
		return nil, err
	}
	return sr, nil
}

// SessionKeyResponse is the payload of a TypeSessionKeyResponse message:
// the session parameters sealed to one requester's RSA credential. The
// envelope carrying it is signed with the publisher's RSA delegate key
// and carries the authorization token, so the requester performs the
// one full token + RSA verification of §6.3 on the response itself
// before trusting the session key inside.
type SessionKeyResponse struct {
	// TraceTopic is the trace topic UUID the session publishes on.
	TraceTopic ident.UUID
	// Recipient names the principal the blob is sealed to; other
	// subscribers of a shared delivery topic skip it.
	Recipient ident.EntityID
	// Sealed is secure.SessionParams sealed to the recipient's public
	// key (SealTo/OpenSessionParams).
	Sealed []byte
}

// Marshal serializes the session-key response.
func (sp *SessionKeyResponse) Marshal() []byte {
	var w writer
	w.uuid(sp.TraceTopic)
	w.str(string(sp.Recipient))
	w.bytes(sp.Sealed)
	return w.buf
}

// UnmarshalSessionKeyResponse parses a session-key response payload.
func UnmarshalSessionKeyResponse(b []byte) (*SessionKeyResponse, error) {
	r := newReader(b)
	sp := &SessionKeyResponse{}
	sp.TraceTopic = r.uuid()
	sp.Recipient = ident.EntityID(r.str())
	sp.Sealed = r.bytes()
	if err := r.done(); err != nil {
		return nil, err
	}
	return sp, nil
}

// FabricMemberRow is one broker's row in a fabric membership gossip
// message (PROTOCOL.md §3.9): its name, how to dial it, the monotone
// heartbeat counter, and the Left tombstone for graceful departures.
type FabricMemberRow struct {
	Name      string
	Transport string
	Addr      string
	Heartbeat uint64
	Left      bool
}

// FabricGossip is the payload of a TypeFabricGossip message: one
// broker's anti-entropy membership exchange on the system-fabric topic.
// Receivers fold Rows in by entry-wise heartbeat maximum; Epoch is the
// sender's current ownership-table epoch, carried for observability
// (ownership itself is derived from the converged live member set, not
// from this number).
type FabricGossip struct {
	// Broker names the gossiping broker.
	Broker string
	// Epoch is the sender's ownership-table epoch.
	Epoch uint64
	// Rows is the sender's full membership view, tombstones included.
	Rows []FabricMemberRow
}

// maxFabricRows bounds the parsed membership list; a fabric is a broker
// fleet, not an entity population, so the cap is deliberately small.
const maxFabricRows = 1024

// Marshal serializes the gossip exchange.
func (fg *FabricGossip) Marshal() []byte {
	var w writer
	w.str(fg.Broker)
	w.u64(fg.Epoch)
	rows := fg.Rows
	if len(rows) > maxFabricRows {
		rows = rows[:maxFabricRows]
	}
	w.u16(uint16(len(rows)))
	for _, row := range rows {
		w.str(row.Name)
		w.str(row.Transport)
		w.str(row.Addr)
		w.u64(row.Heartbeat)
		if row.Left {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
	return w.buf
}

// UnmarshalFabricGossip parses a fabric gossip payload.
func UnmarshalFabricGossip(b []byte) (*FabricGossip, error) {
	r := newReader(b)
	fg := &FabricGossip{}
	fg.Broker = r.str()
	fg.Epoch = r.u64()
	n := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if n > maxFabricRows {
		return nil, fmt.Errorf("message: fabric gossip row count %d exceeds %d", n, maxFabricRows)
	}
	for i := 0; i < n && r.err == nil; i++ {
		row := FabricMemberRow{Name: r.str()}
		row.Transport = r.str()
		row.Addr = r.str()
		row.Heartbeat = r.u64()
		row.Left = r.u8() != 0
		fg.Rows = append(fg.Rows, row)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return fg, nil
}

// TelemetryRow is one series sample in a telemetry snapshot. Counter
// rows carry the delta since the broker's previous snapshot (a fresh
// broker anchors at its current cumulative value), so steady-state
// snapshots stay small under varint encoding; gauge rows carry the
// instantaneous value. Receivers fold counter deltas back into
// cumulative series, re-anchoring when a broker restart makes the
// stream restart from zero.
type TelemetryRow struct {
	// Name is the series name (registry metric or broker-derived).
	Name string
	// Counter distinguishes delta-encoded counters from gauges.
	Counter bool
	// Value is the gauge value or counter delta.
	Value int64
}

// TelemetryAlert is one standing or edge alert row in a telemetry
// snapshot (the anomaly engine's output, PROTOCOL.md §3.10).
type TelemetryAlert struct {
	// Rule names the alert rule.
	Rule string
	// Series is the series the rule watches.
	Series string
	// Firing is true while the alert stands; a clearing edge row
	// reports false once.
	Firing bool
	// SinceNanos identifies the episode: when the firing edge happened.
	SinceNanos int64
	// Value is the observed value at the last evaluation.
	Value float64
}

// TelemetrySnapshot is the payload of a TraceTelemetrySnapshot message:
// one broker's periodic metric sample on the system-telemetry topic,
// assembled fleet-wide by `tracectl top`. Rows are delta-encoded (see
// TelemetryRow); IntervalMillis tells receivers the publisher's cadence
// so they can compute rates and absence windows without configuration.
type TelemetrySnapshot struct {
	// Broker names the publishing broker.
	Broker string
	// AtNanos is the publisher's local clock at sample time.
	AtNanos int64
	// FabricEpoch is the publisher's ownership-table epoch (0 outside a
	// fabric), so assemblers key fleet views by broker/epoch.
	FabricEpoch uint64
	// IntervalMillis is the publisher's telemetry period.
	IntervalMillis uint32
	// Rows carries one entry per series.
	Rows []TelemetryRow
	// Alerts carries the standing alerts plus this tick's edges.
	Alerts []TelemetryAlert
}

// maxTelemetryRows bounds the parsed row and alert lists (the wire
// format stores each count in a u16; a publisher with more series
// truncates).
const maxTelemetryRows = 4096

// Marshal serializes the telemetry snapshot.
func (ts *TelemetrySnapshot) Marshal() []byte {
	var w writer
	w.str(ts.Broker)
	w.i64(ts.AtNanos)
	w.u64(ts.FabricEpoch)
	w.u32(ts.IntervalMillis)
	rows := ts.Rows
	if len(rows) > maxTelemetryRows {
		rows = rows[:maxTelemetryRows]
	}
	w.u16(uint16(len(rows)))
	for _, row := range rows {
		w.str(row.Name)
		if row.Counter {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.varint(row.Value)
	}
	alerts := ts.Alerts
	if len(alerts) > maxTelemetryRows {
		alerts = alerts[:maxTelemetryRows]
	}
	w.u16(uint16(len(alerts)))
	for _, al := range alerts {
		w.str(al.Rule)
		w.str(al.Series)
		if al.Firing {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.i64(al.SinceNanos)
		w.f64(al.Value)
	}
	return w.buf
}

// UnmarshalTelemetrySnapshot parses a telemetry snapshot payload.
func UnmarshalTelemetrySnapshot(b []byte) (*TelemetrySnapshot, error) {
	r := newReader(b)
	ts := &TelemetrySnapshot{}
	ts.Broker = r.str()
	ts.AtNanos = r.i64()
	ts.FabricEpoch = r.u64()
	ts.IntervalMillis = r.u32()
	n := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if n > maxTelemetryRows {
		return nil, fmt.Errorf("message: telemetry row count %d exceeds %d", n, maxTelemetryRows)
	}
	for i := 0; i < n && r.err == nil; i++ {
		row := TelemetryRow{Name: r.str()}
		row.Counter = r.u8() != 0
		row.Value = r.varint()
		ts.Rows = append(ts.Rows, row)
	}
	na := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if na > maxTelemetryRows {
		return nil, fmt.Errorf("message: telemetry alert count %d exceeds %d", na, maxTelemetryRows)
	}
	for i := 0; i < na && r.err == nil; i++ {
		al := TelemetryAlert{Rule: r.str()}
		al.Series = r.str()
		al.Firing = r.u8() != 0
		al.SinceNanos = r.i64()
		al.Value = r.f64()
		ts.Alerts = append(ts.Alerts, al)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ts, nil
}
