package message

import (
	"bytes"
	"testing"
	"time"

	"entitytrace/internal/secure"
	"entitytrace/internal/topic"
)

// signedEnvelope builds a fully populated, signed, span-annotated
// envelope — the richest wire image corruption can hit.
func signedEnvelope(t testing.TB) (*Envelope, *secure.KeyPair) {
	t.Helper()
	pair, err := secure.GenerateKeyPair(secure.PaperRSABits)
	if err != nil {
		t.Fatal(err)
	}
	s, err := secure.NewSigner(pair.Private, secure.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	e := New(TraceRecovering, topic.MustParse("/Constrained/Traces/Broker/Publish-Only/tt/StateTransitions"),
		"corrupt-src", (&StateReport{From: StateReady, To: StateRecovering, At: 1}).Marshal())
	e.Token = []byte("delegation-token-bytes")
	if err := e.Sign(s); err != nil {
		t.Fatal(err)
	}
	e.StartSpan()
	e.AddHop("corrupt-src", time.Unix(0, 1))
	e.AddHop("broker-0", time.Unix(0, 2))
	return e, pair
}

// TestCorruptionNeverPanics flips every byte of a valid signed envelope
// (one at a time) and also truncates it at every length. The parser must
// survive all of it, and no flip that alters signed content may pass
// signature verification — the chaos invariant that corrupted frames
// are rejected, never trusted and never fatal.
func TestCorruptionNeverPanics(t *testing.T) {
	env, pair := signedEnvelope(t)
	wire := env.Marshal()
	signedImage := env.SigningBytes()

	for i := 0; i < len(wire); i++ {
		cp := append([]byte(nil), wire...)
		cp[i] ^= 0xFF
		mut, err := Unmarshal(cp)
		if err != nil {
			continue // rejected outright: fine
		}
		// If the flip survives both parsing and verification it must
		// have been signature-transparent (TTL byte, span trailer):
		// the signed content is bit-identical to the original's.
		if err := mut.VerifySignature(pair.Public, secure.SHA1); err == nil {
			if !bytes.Equal(mut.SigningBytes(), signedImage) {
				t.Fatalf("byte %d: corruption changed signed content yet verified", i)
			}
		}
	}

	for n := 0; n <= len(wire); n++ {
		if _, err := Unmarshal(wire[:n]); err != nil {
			continue
		}
		if n != len(wire) {
			// A shorter prefix can only parse if the span trailer was
			// dropped cleanly; identity fields must be intact.
			mut, _ := Unmarshal(wire[:n])
			if mut.ID != env.ID {
				t.Fatalf("truncation at %d changed envelope identity", n)
			}
		}
	}
}

// TestFlippedSignatureRejected flips each byte of the signature field
// itself: the envelope still parses (the signature is opaque on the
// wire) but verification must fail for every variant.
func TestFlippedSignatureRejected(t *testing.T) {
	env, pair := signedEnvelope(t)
	if err := env.VerifySignature(pair.Public, secure.SHA1); err != nil {
		t.Fatalf("pristine envelope rejected: %v", err)
	}
	for i := range env.Signature {
		mut := env.Clone()
		mut.Signature = append([]byte(nil), env.Signature...)
		mut.Signature[i] ^= 0x01
		reparsed, err := Unmarshal(mut.Marshal())
		if err != nil {
			t.Fatalf("signature flip at %d broke parsing: %v", i, err)
		}
		if err := reparsed.VerifySignature(pair.Public, secure.SHA1); err == nil {
			t.Fatalf("signature flip at %d verified", i)
		}
	}
}
