package message

import (
	"reflect"
	"testing"
)

func TestTelemetrySnapshotRoundtrip(t *testing.T) {
	in := &TelemetrySnapshot{
		Broker:         "hb2",
		AtNanos:        1_723_000_000_123_456_789,
		FabricEpoch:    7,
		IntervalMillis: 1000,
		Rows: []TelemetryRow{
			{Name: "broker_published_total", Counter: true, Value: 1234},
			{Name: "broker_egress_queue_depth", Counter: false, Value: 17},
			{Name: "guard_hits_total", Counter: true, Value: -55}, // restart re-anchor delta
			{Name: "fabric_epoch", Counter: false, Value: 7},
		},
		Alerts: []TelemetryAlert{
			{Rule: "deep-queues", Series: "broker_egress_queue_depth", Firing: true,
				SinceNanos: 42, Value: 170.5},
			{Rule: "quiet", Series: "broker_published_total", Firing: false,
				SinceNanos: 17, Value: 0.25},
		},
	}
	out, err := UnmarshalTelemetrySnapshot(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed snapshot:\n in=%+v\nout=%+v", in, out)
	}
}

func TestTelemetrySnapshotEmpty(t *testing.T) {
	in := &TelemetrySnapshot{Broker: "hb0", AtNanos: 1, IntervalMillis: 50}
	out, err := UnmarshalTelemetrySnapshot(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Broker != "hb0" || len(out.Rows) != 0 || len(out.Alerts) != 0 {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestTelemetrySnapshotRowCap(t *testing.T) {
	in := &TelemetrySnapshot{Broker: "hb0", AtNanos: 1}
	for i := 0; i < maxTelemetryRows+10; i++ {
		in.Rows = append(in.Rows, TelemetryRow{Name: "s", Value: int64(i)})
		in.Alerts = append(in.Alerts, TelemetryAlert{Rule: "r", Series: "s"})
	}
	out, err := UnmarshalTelemetrySnapshot(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != maxTelemetryRows || len(out.Alerts) != maxTelemetryRows {
		t.Fatalf("marshal did not truncate at the cap: %d rows, %d alerts", len(out.Rows), len(out.Alerts))
	}
	// A forged count beyond the cap is rejected outright, not allocated.
	var w writer
	w.str("hb0")
	w.i64(1)
	w.u64(0)
	w.u32(50)
	w.u16(maxTelemetryRows + 1)
	if _, err := UnmarshalTelemetrySnapshot(w.buf); err == nil {
		t.Fatal("oversized row count accepted")
	}
}

func TestTelemetrySnapshotTruncated(t *testing.T) {
	wire := (&TelemetrySnapshot{
		Broker: "hb1", AtNanos: 5, IntervalMillis: 50,
		Rows:   []TelemetryRow{{Name: "a", Counter: true, Value: -3}},
		Alerts: []TelemetryAlert{{Rule: "r", Series: "a", Firing: true, SinceNanos: 9, Value: 1}},
	}).Marshal()
	for cut := 0; cut < len(wire); cut++ {
		if _, err := UnmarshalTelemetrySnapshot(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage is rejected too (r.done()).
	if _, err := UnmarshalTelemetrySnapshot(append(wire, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
