package message

import (
	"testing"
	"time"

	"entitytrace/internal/topic"
)

// FuzzUnmarshalEnvelope hammers the envelope parser with mutated wire
// bytes: it must never panic, and anything it accepts must re-marshal
// and re-parse to the same bytes-level structure. The corpus seeds both
// the seed wire format (no span trailer) and span'd envelopes, so
// mutations explore the optional trailer's parse paths.
func FuzzUnmarshalEnvelope(f *testing.F) {
	e := New(TraceAllsWell, topic.MustParse("/Constrained/Traces/Broker/Publish-Only/tt/AllUpdates"),
		"entity", []byte("payload"))
	e.Token = []byte("token")
	e.Signature = []byte("signature")
	f.Add(e.Marshal()) // seed format: no span trailer
	spanned := e.Clone()
	spanned.StartSpan()
	spanned.AddHop("entity", time.Unix(0, 1))
	spanned.AddHop("broker-1", time.Unix(0, 2_000_000))
	f.Add(spanned.Marshal()) // span trailer with two hops
	empty := e.Clone()
	empty.StartSpan()
	f.Add(empty.Marshal()) // span trailer with zero hops
	// Span trailer at exactly MaxHops: the largest hop count the parser
	// accepts, so mutations probe the boundary (MaxHops+1 must reject).
	full := e.Clone()
	full.StartSpan()
	for i := 0; i < MaxHops; i++ {
		full.AddHop("n", time.Unix(0, int64(i)))
	}
	f.Add(full.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1})
	// Truncated span trailers: cut the spanned wire at several points
	// inside the trailer so mutations start from half-parsed hop records.
	spannedWire := spanned.Marshal()
	plainLen := len(e.Marshal())
	for _, cut := range []int{1, 2, len(spanned.Marshal()[plainLen:]) / 2, len(spannedWire) - plainLen - 1} {
		if cut > 0 && plainLen+cut < len(spannedWire) {
			f.Add(append([]byte(nil), spannedWire[:plainLen+cut]...))
		}
	}
	// Flipped signature bytes: parseable envelopes whose signatures can
	// no longer verify, seeding the corrupted-frame handling paths.
	for _, pos := range []int{0, len(e.Signature) / 2, len(e.Signature) - 1} {
		flipped := e.Clone()
		flipped.Signature[pos] ^= 0xFF
		f.Add(flipped.Marshal())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Unmarshal(data)
		if err != nil {
			return
		}
		back, err := Unmarshal(env.Marshal())
		if err != nil {
			t.Fatalf("accepted envelope does not round trip: %v", err)
		}
		if back.ID != env.ID || back.Type != env.Type || !back.Topic.Equal(env.Topic) {
			t.Fatal("round trip changed envelope identity")
		}
		if (back.Span == nil) != (env.Span == nil) {
			t.Fatal("round trip changed span presence")
		}
		if env.Span != nil && len(back.Span.Hops) != len(env.Span.Hops) {
			t.Fatal("round trip changed hop count")
		}
	})
}

// FuzzPayloadParsers covers every typed payload decoder.
func FuzzPayloadParsers(f *testing.F) {
	f.Add((&Registration{Entity: "e", CertDER: []byte{1}}).Marshal())
	f.Add((&Ping{Number: 1}).Marshal())
	f.Add((&PingResponse{State: StateReady}).Marshal())
	f.Add((&StateReport{From: StateReady, To: StateShutdown}).Marshal())
	f.Add((&LoadReport{CPUPercent: 1}).Marshal())
	f.Add((&NetworkReport{LossRate: 0.5}).Marshal())
	f.Add((&GaugeInterestProbe{Secured: true}).Marshal())
	f.Add((&InterestResponse{Tracker: "t"}).Marshal())
	f.Add((&TraceKey{Purpose: PurposeTrace, Key: []byte{1}}).Marshal())
	f.Add((&Delegation{TokenBytes: []byte{1}}).Marshal())
	f.Add((&TraceEvent{Entity: "e"}).Marshal())
	f.Add((&ErrorReport{Code: 1}).Marshal())
	f.Add((&BrokerHealth{Broker: "b", Published: 1,
		Peers: []BrokerHealthPeer{{Name: "p", IsBroker: true, Queued: 2, Score: 0.5}}}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		// None of these may panic on arbitrary input.
		_, _ = UnmarshalRegistration(data)
		_, _ = UnmarshalRegistrationResponse(data)
		_, _ = UnmarshalPing(data)
		_, _ = UnmarshalPingResponse(data)
		_, _ = UnmarshalStateReport(data)
		_, _ = UnmarshalLoadReport(data)
		_, _ = UnmarshalNetworkReport(data)
		_, _ = UnmarshalGaugeInterestProbe(data)
		_, _ = UnmarshalInterestResponse(data)
		_, _ = UnmarshalTraceKey(data)
		_, _ = UnmarshalDelegation(data)
		_, _ = UnmarshalTraceEvent(data)
		_, _ = UnmarshalErrorReport(data)
		_, _ = UnmarshalBrokerHealth(data)
	})
}

// FuzzTelemetrySnapshot hammers the telemetry snapshot parser: it must
// never panic, stay within the row cap, and anything it accepts must
// re-marshal and re-parse identically (the delta rows use the zigzag
// varint helpers, so the corpus seeds negative and large values to walk
// the multi-byte encodings).
func FuzzTelemetrySnapshot(f *testing.F) {
	f.Add((&TelemetrySnapshot{Broker: "hb0", AtNanos: 1, IntervalMillis: 50}).Marshal())
	f.Add((&TelemetrySnapshot{
		Broker: "hb1", AtNanos: 1 << 40, FabricEpoch: 3, IntervalMillis: 1000,
		Rows: []TelemetryRow{
			{Name: "broker_published_total", Counter: true, Value: 12345},
			{Name: "broker_egress_queue_depth", Value: 17},
			{Name: "re_anchor_total", Counter: true, Value: -1 << 50},
		},
		Alerts: []TelemetryAlert{
			{Rule: "deep-queues", Series: "broker_egress_queue_depth",
				Firing: true, SinceNanos: 42, Value: 170.5},
			{Rule: "deep-queues", Series: "broker_egress_queue_depth",
				Firing: false, SinceNanos: 42, Value: 3},
		},
	}).Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := UnmarshalTelemetrySnapshot(data)
		if err != nil {
			return
		}
		if len(ts.Rows) > maxTelemetryRows || len(ts.Alerts) > maxTelemetryRows {
			t.Fatalf("accepted %d rows / %d alerts past the cap", len(ts.Rows), len(ts.Alerts))
		}
		back, err := UnmarshalTelemetrySnapshot(ts.Marshal())
		if err != nil {
			t.Fatalf("accepted snapshot does not round trip: %v", err)
		}
		if back.Broker != ts.Broker || back.AtNanos != ts.AtNanos ||
			back.FabricEpoch != ts.FabricEpoch || back.IntervalMillis != ts.IntervalMillis ||
			len(back.Rows) != len(ts.Rows) || len(back.Alerts) != len(ts.Alerts) {
			t.Fatal("round trip changed snapshot header or counts")
		}
		for i := range ts.Rows {
			if back.Rows[i] != ts.Rows[i] {
				t.Fatalf("round trip changed row %d: %+v vs %+v", i, ts.Rows[i], back.Rows[i])
			}
		}
	})
}
