// Package message defines the message envelope exchanged through the
// broker network and the payloads of the tracing protocol (registrations,
// pings, traces, gauge-interest exchanges, key deliveries). Messages are
// serialized with a small hand-rolled binary codec: length-prefixed
// fields, big-endian fixed-width integers, no reflection.
package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"entitytrace/internal/ident"
)

// ErrTruncated reports a wire buffer that ended before a complete value.
var ErrTruncated = errors.New("message: truncated wire data")

// ErrTooLarge reports a field exceeding wire limits.
var ErrTooLarge = errors.New("message: field too large")

// maxFieldLen bounds any single length-prefixed field (16 MiB), guarding
// against hostile length prefixes.
const maxFieldLen = 16 << 20

// writer accumulates wire bytes.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) uuid(u ident.UUID) { w.buf = append(w.buf, u[:]...) }

// varint writes v zigzag-encoded as a uvarint: the compact encoding the
// telemetry snapshot uses for counter deltas and gauge values, where
// small magnitudes of either sign dominate.
func (w *writer) varint(v int64) {
	w.buf = binary.AppendUvarint(w.buf, uint64((v<<1)^(v>>63)))
}

// bytes writes a u32 length prefix followed by the data.
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) str(s string) { w.bytes([]byte(s)) }

// reader consumes wire bytes, latching the first error. A shared reader
// returns sub-slices of the input from bytes() instead of copies — only
// safe when the caller owns the buffer and never reuses it (receive
// paths, where every transport hands over a freshly allocated frame).
type reader struct {
	b      []byte
	off    int
	err    error
	shared bool
}

func newReader(b []byte) *reader { return &reader{b: b} }

func newSharedReader(b []byte) *reader { return &reader{b: b, shared: true} }

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(ErrTruncated)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

// varint reads one zigzag-encoded uvarint.
func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return int64(u>>1) ^ -int64(u&1)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) uuid() ident.UUID {
	var u ident.UUID
	b := r.take(16)
	if b != nil {
		copy(u[:], b)
	}
	return u
}

// bytes reads a u32 length prefix and returns the data: a copy by
// default, a capacity-clipped sub-slice of the input when the reader is
// shared (the receive hot path, where the field copies are the dominant
// allocation cost).
func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n > maxFieldLen {
		r.fail(fmt.Errorf("%w: %d bytes", ErrTooLarge, n))
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	if r.shared {
		return b[:len(b):len(b)]
	}
	return append([]byte(nil), b...)
}

func (r *reader) str() string { return string(r.bytes()) }

// done verifies the buffer was fully consumed and returns the latched
// error, if any.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("message: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}
