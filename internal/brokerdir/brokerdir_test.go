package brokerdir

import (
	"errors"
	"testing"
	"time"

	"entitytrace/internal/transport"
)

func TestRegisterAndPick(t *testing.T) {
	d := NewDirectory(time.Minute)
	if err := d.Register("b1", "tcp", "127.0.0.1:1", 5); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("b2", "tcp", "127.0.0.1:2", 2); err != nil {
		t.Fatal(err)
	}
	e, err := d.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "b2" {
		t.Fatalf("Pick = %q, want least-loaded b2", e.Name)
	}
}

func TestPickEmpty(t *testing.T) {
	d := NewDirectory(0)
	if _, err := d.Pick(); !errors.Is(err, ErrNoBrokers) {
		t.Fatalf("Pick on empty dir: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	d := NewDirectory(0)
	if err := d.Register("", "tcp", "a", 0); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := d.Register("b", "", "a", 0); err == nil {
		t.Fatal("empty transport accepted")
	}
	if err := d.Register("b", "tcp", "", 0); err == nil {
		t.Fatal("empty addr accepted")
	}
}

func TestTTLExpiry(t *testing.T) {
	d := NewDirectory(10 * time.Second)
	now := time.Unix(0, 0)
	d.SetTimeFunc(func() time.Time { return now })
	d.Register("b1", "tcp", "a:1", 0)
	now = now.Add(11 * time.Second)
	if _, err := d.Pick(); !errors.Is(err, ErrNoBrokers) {
		t.Fatalf("expired registration still picked: %v", err)
	}
	// Refresh keeps it alive.
	d.Register("b2", "tcp", "a:2", 0)
	now = now.Add(9 * time.Second)
	d.Register("b2", "tcp", "a:2", 1)
	now = now.Add(9 * time.Second)
	if _, err := d.Pick(); err != nil {
		t.Fatalf("refreshed registration expired: %v", err)
	}
}

func TestDeregister(t *testing.T) {
	d := NewDirectory(time.Minute)
	d.Register("b1", "tcp", "a:1", 0)
	d.Deregister("b1")
	if _, err := d.Pick(); !errors.Is(err, ErrNoBrokers) {
		t.Fatal("deregistered broker still picked")
	}
}

func TestList(t *testing.T) {
	d := NewDirectory(time.Minute)
	d.Register("z", "tcp", "a:1", 0)
	d.Register("a", "udp", "a:2", 1)
	l := d.List()
	if len(l) != 2 || l[0].Name != "a" || l[1].Name != "z" {
		t.Fatalf("List = %+v", l)
	}
}

func TestTieBreakByName(t *testing.T) {
	d := NewDirectory(time.Minute)
	d.Register("b2", "tcp", "a:2", 1)
	d.Register("b1", "tcp", "a:1", 1)
	e, _ := d.Pick()
	if e.Name != "b1" {
		t.Fatalf("tie break picked %q", e.Name)
	}
}

func TestRPCEndToEnd(t *testing.T) {
	tr := transport.NewInproc()
	dir := NewDirectory(time.Minute)
	srv := NewServer(dir)
	l, err := tr.Listen("dir")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	defer srv.Close()

	c := NewClient(tr, "dir")
	if err := c.Register("b1", "inproc", "broker-1", 3.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("b2", "inproc", "broker-2", 1.25); err != nil {
		t.Fatal(err)
	}
	e, err := c.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "b2" || e.Addr != "broker-2" || e.Load != 1.25 {
		t.Fatalf("Pick = %+v", e)
	}
	list, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("List returned %d entries", len(list))
	}
	if err := c.Deregister("b2"); err != nil {
		t.Fatal(err)
	}
	e, err = c.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "b1" {
		t.Fatalf("after deregister Pick = %q", e.Name)
	}
}

func TestRPCPickEmpty(t *testing.T) {
	tr := transport.NewInproc()
	srv := NewServer(NewDirectory(time.Minute))
	l, _ := tr.Listen("dir2")
	srv.Serve(l)
	defer srv.Close()
	c := NewClient(tr, "dir2")
	if _, err := c.Pick(); !errors.Is(err, ErrNoBrokers) {
		t.Fatalf("Pick over RPC on empty dir: %v", err)
	}
}

func TestRPCGarbage(t *testing.T) {
	tr := transport.NewInproc()
	srv := NewServer(NewDirectory(time.Minute))
	l, _ := tr.Listen("dir3")
	srv.Serve(l)
	defer srv.Close()
	conn, err := tr.Dial("dir3")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, frame := range [][]byte{{}, {77}, {opRegister, 1}} {
		if err := conn.Send(frame); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(resp) == 0 || resp[0] == statusOK {
			t.Fatalf("garbage frame %v accepted", frame)
		}
	}
}

func TestConnectBest(t *testing.T) {
	d := NewDirectory(time.Minute)
	if _, _, err := d.ConnectBest(); !errors.Is(err, ErrNoBrokers) {
		t.Fatalf("empty dir ConnectBest: %v", err)
	}
	d.Register("b1", "tcp", "127.0.0.1:9", 1)
	tr, addr, err := d.ConnectBest()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "tcp" || addr != "127.0.0.1:9" {
		t.Fatalf("ConnectBest = %s %s", tr.Name(), addr)
	}
	d.Register("b2", "carrier-pigeon", "coop:1", 0)
	if _, _, err := d.ConnectBest(); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestClientConnectBest(t *testing.T) {
	tr := transport.NewInproc()
	dir := NewDirectory(time.Minute)
	srv := NewServer(dir)
	l, _ := tr.Listen("dir-cb")
	srv.Serve(l)
	defer srv.Close()
	c := NewClient(tr, "dir-cb")
	if err := c.Register("b1", "udp", "127.0.0.1:10", 0.5); err != nil {
		t.Fatal(err)
	}
	trOut, addr, err := c.ConnectBest()
	if err != nil {
		t.Fatal(err)
	}
	if trOut.Name() != "udp" || addr != "127.0.0.1:10" {
		t.Fatalf("ConnectBest = %s %s", trOut.Name(), addr)
	}
}
