// Package brokerdir is the broker discovery scheme of §3.2 (the paper
// defers to Ref [3], "On the Discovery of Brokers in Distributed
// Messaging Infrastructures"): brokers register themselves with a
// directory, periodically refresh their registration with a load figure,
// and entities ask the directory for a valid broker — by default the
// least-loaded live one.
package brokerdir

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"time"

	"entitytrace/internal/obs"
	"entitytrace/internal/transport"
)

// ErrNoBrokers reports an empty or fully expired directory.
var ErrNoBrokers = errors.New("brokerdir: no live brokers")

// mExpired counts registrations dropped for missing their refresh —
// by the periodic sweep or lazily on lookup. A rising rate means
// brokers are dying (or partitioned from the directory) faster than
// they re-register.
var mExpired = obs.Default.Counter("brokerdir_expired_total")

// DefaultTTL is how long a registration stays valid without refresh.
const DefaultTTL = 30 * time.Second

// Entry describes one registered broker.
type Entry struct {
	// Name is the broker's name.
	Name string
	// Transport and Addr tell entities how to connect.
	Transport string
	Addr      string
	// Load is the broker's self-reported load (e.g. peer count).
	Load float64
	// Epoch is the broker's fabric ownership-table epoch (PROTOCOL.md
	// §3.9); zero for brokers outside a fabric. Carried so joining
	// brokers and operators can see how converged the fabric's view is.
	Epoch uint64
	// RenewedAt is the last refresh time.
	RenewedAt time.Time
}

// Directory is the in-memory registry. Safe for concurrent use.
type Directory struct {
	mu      sync.Mutex
	entries map[string]*Entry
	ttl     time.Duration
	now     func() time.Time
}

// NewDirectory creates a directory with the given registration TTL
// (<= 0 selects DefaultTTL).
func NewDirectory(ttl time.Duration) *Directory {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Directory{
		entries: make(map[string]*Entry),
		ttl:     ttl,
		now:     time.Now,
	}
}

// SetTimeFunc overrides the clock, for tests.
func (d *Directory) SetTimeFunc(f func() time.Time) { d.now = f }

// Register adds or refreshes a broker registration.
func (d *Directory) Register(name, transportName, addr string, load float64) error {
	return d.RegisterEpoch(name, transportName, addr, load, 0)
}

// RegisterEpoch is Register also carrying the broker's fabric
// ownership-table epoch.
func (d *Directory) RegisterEpoch(name, transportName, addr string, load float64, epoch uint64) error {
	if name == "" || transportName == "" || addr == "" {
		return errors.New("brokerdir: name, transport and addr are required")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[name] = &Entry{
		Name:      name,
		Transport: transportName,
		Addr:      addr,
		Load:      load,
		Epoch:     epoch,
		RenewedAt: d.now(),
	}
	return nil
}

// Deregister removes a broker.
func (d *Directory) Deregister(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, name)
}

// live returns unexpired entries, pruning dead ones.
func (d *Directory) live() []*Entry {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []*Entry
	for name, e := range d.entries {
		if now.Sub(e.RenewedAt) > d.ttl {
			delete(d.entries, name)
			mExpired.Inc()
			continue
		}
		cp := *e
		out = append(out, &cp)
	}
	return out
}

// Sweep prunes expired registrations immediately, returning how many
// were dropped. Without it a dead broker lingers until the next lookup
// happens to walk past it — under rapid churn Pick could keep returning
// an entry whose broker died within the TTL window; a periodic sweep
// (see StartSweeper and cmd/brokerdird) bounds that staleness.
func (d *Directory) Sweep() int {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	dropped := 0
	for name, e := range d.entries {
		if now.Sub(e.RenewedAt) > d.ttl {
			delete(d.entries, name)
			mExpired.Inc()
			dropped++
		}
	}
	return dropped
}

// StartSweeper runs Sweep every interval (<= 0 selects half the TTL)
// until the returned stop function is called.
func (d *Directory) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = d.ttl / 2
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				d.Sweep()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// Pick returns the least-loaded live broker.
func (d *Directory) Pick() (*Entry, error) {
	live := d.live()
	if len(live) == 0 {
		return nil, ErrNoBrokers
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].Load != live[j].Load {
			return live[i].Load < live[j].Load
		}
		return live[i].Name < live[j].Name
	})
	return live[0], nil
}

// List returns all live brokers sorted by name.
func (d *Directory) List() []*Entry {
	live := d.live()
	sort.Slice(live, func(i, j int) bool { return live[i].Name < live[j].Name })
	return live
}

// --- RPC exposure --------------------------------------------------------

// Op codes and statuses for the directory's wire protocol.
const (
	opRegister uint8 = iota + 1
	opDeregister
	opPick
	opList
)

const (
	statusOK uint8 = iota
	statusEmpty
	statusBad
)

// Server exposes a Directory over a transport.
type Server struct {
	dir *Directory
	mu  sync.Mutex
	ls  []transport.Listener
	wg  sync.WaitGroup
}

// NewServer wraps a directory.
func NewServer(dir *Directory) *Server { return &Server{dir: dir} }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l transport.Listener) {
	s.mu.Lock()
	s.ls = append(s.ls, l)
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				for {
					frame, err := conn.Recv()
					if err != nil {
						return
					}
					if err := conn.Send(s.dispatch(frame)); err != nil {
						return
					}
				}
			}()
		}
	}()
}

// Close stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	ls := s.ls
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	s.wg.Wait()
}

func (s *Server) dispatch(frame []byte) []byte {
	if len(frame) < 1 {
		return []byte{statusBad}
	}
	switch frame[0] {
	case opRegister:
		e, err := decodeEntry(frame[1:])
		if err != nil {
			return []byte{statusBad}
		}
		if err := s.dir.RegisterEpoch(e.Name, e.Transport, e.Addr, e.Load, e.Epoch); err != nil {
			return []byte{statusBad}
		}
		return []byte{statusOK}
	case opDeregister:
		s.dir.Deregister(string(frame[1:]))
		return []byte{statusOK}
	case opPick:
		e, err := s.dir.Pick()
		if err != nil {
			return []byte{statusEmpty}
		}
		return append([]byte{statusOK}, encodeEntry(e)...)
	case opList:
		entries := s.dir.List()
		out := []byte{statusOK}
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(entries)))
		out = append(out, n[:]...)
		for _, e := range entries {
			enc := encodeEntry(e)
			var l [4]byte
			binary.BigEndian.PutUint32(l[:], uint32(len(enc)))
			out = append(out, l[:]...)
			out = append(out, enc...)
		}
		return out
	default:
		return []byte{statusBad}
	}
}

func encodeEntry(e *Entry) []byte {
	var buf []byte
	put := func(s string) {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(s)))
		buf = append(buf, l[:]...)
		buf = append(buf, s...)
	}
	put(e.Name)
	put(e.Transport)
	put(e.Addr)
	var load [8]byte
	binary.BigEndian.PutUint64(load[:], uint64(e.Load*1e6))
	buf = append(buf, load[:]...)
	// Epoch is appended after the original fields; decodeEntry has always
	// ignored trailing bytes, so pre-epoch peers interoperate.
	var epoch [8]byte
	binary.BigEndian.PutUint64(epoch[:], e.Epoch)
	buf = append(buf, epoch[:]...)
	return buf
}

func decodeEntry(b []byte) (*Entry, error) {
	off := 0
	get := func() (string, error) {
		if off+4 > len(b) {
			return "", errors.New("truncated")
		}
		n := int(binary.BigEndian.Uint32(b[off : off+4]))
		off += 4
		if off+n > len(b) {
			return "", errors.New("truncated")
		}
		s := string(b[off : off+n])
		off += n
		return s, nil
	}
	e := &Entry{}
	var err error
	if e.Name, err = get(); err != nil {
		return nil, err
	}
	if e.Transport, err = get(); err != nil {
		return nil, err
	}
	if e.Addr, err = get(); err != nil {
		return nil, err
	}
	if off+8 > len(b) {
		return nil, errors.New("truncated")
	}
	e.Load = float64(binary.BigEndian.Uint64(b[off:off+8])) / 1e6
	off += 8
	// Optional trailing epoch (absent from pre-epoch encoders).
	if off+8 <= len(b) {
		e.Epoch = binary.BigEndian.Uint64(b[off : off+8])
	}
	return e, nil
}

// ConnectBest picks the least-loaded live broker from the directory and
// returns a transport plus address for connecting to it — the "securely
// discover a valid broker" step of §3.2. It fails if the registered
// transport is unknown.
func (d *Directory) ConnectBest() (transport.Transport, string, error) {
	e, err := d.Pick()
	if err != nil {
		return nil, "", err
	}
	tr, err := transport.New(e.Transport)
	if err != nil {
		return nil, "", err
	}
	return tr, e.Addr, nil
}

// Client talks to a directory server.
type Client struct {
	tr   transport.Transport
	addr string
}

// NewClient targets the directory at addr.
func NewClient(tr transport.Transport, addr string) *Client {
	return &Client{tr: tr, addr: addr}
}

func (c *Client) call(frame []byte) ([]byte, error) {
	conn, err := c.tr.Dial(c.addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.Send(frame); err != nil {
		return nil, err
	}
	return conn.Recv()
}

// Register announces a broker.
func (c *Client) Register(name, transportName, addr string, load float64) error {
	return c.RegisterEpoch(name, transportName, addr, load, 0)
}

// RegisterEpoch is Register also carrying the broker's fabric
// ownership-table epoch.
func (c *Client) RegisterEpoch(name, transportName, addr string, load float64, epoch uint64) error {
	e := &Entry{Name: name, Transport: transportName, Addr: addr, Load: load, Epoch: epoch}
	resp, err := c.call(append([]byte{opRegister}, encodeEntry(e)...))
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != statusOK {
		return errors.New("brokerdir: register rejected")
	}
	return nil
}

// Deregister removes a broker.
func (c *Client) Deregister(name string) error {
	resp, err := c.call(append([]byte{opDeregister}, name...))
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != statusOK {
		return errors.New("brokerdir: deregister rejected")
	}
	return nil
}

// Pick returns the least-loaded live broker.
func (c *Client) Pick() (*Entry, error) {
	resp, err := c.call([]byte{opPick})
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 {
		return nil, errors.New("brokerdir: empty response")
	}
	if resp[0] == statusEmpty {
		return nil, ErrNoBrokers
	}
	if resp[0] != statusOK {
		return nil, errors.New("brokerdir: pick rejected")
	}
	return decodeEntry(resp[1:])
}

// ConnectBest is the client-side counterpart of Directory.ConnectBest:
// pick the least-loaded live broker over RPC and return how to reach it.
func (c *Client) ConnectBest() (transport.Transport, string, error) {
	e, err := c.Pick()
	if err != nil {
		return nil, "", err
	}
	tr, err := transport.New(e.Transport)
	if err != nil {
		return nil, "", err
	}
	return tr, e.Addr, nil
}

// List fetches all live brokers.
func (c *Client) List() ([]*Entry, error) {
	resp, err := c.call([]byte{opList})
	if err != nil {
		return nil, err
	}
	if len(resp) < 5 || resp[0] != statusOK {
		return nil, errors.New("brokerdir: list rejected")
	}
	n := binary.BigEndian.Uint32(resp[1:5])
	if n > 1<<16 {
		return nil, errors.New("brokerdir: absurd list length")
	}
	out := make([]*Entry, 0, n)
	b := resp[5:]
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, errors.New("brokerdir: truncated list")
		}
		l := int(binary.BigEndian.Uint32(b[:4]))
		b = b[4:]
		if len(b) < l {
			return nil, errors.New("brokerdir: truncated entry")
		}
		e, err := decodeEntry(b[:l])
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		b = b[l:]
	}
	return out, nil
}
