package obs

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: a bounded, lock-light ring of structured routing
// events every broker keeps about its own recent decisions — ingress,
// guard verdict, route decision, egress enqueue/shed, eviction and
// quarantine. The ring answers "what did this broker decide about trace
// #X, and when?" after the fact, without logs and without a collector:
// the events are exported as JSON over the admin endpoint
// (/trace?id=<uuid>&last=<n>) and dumped on SIGQUIT.
//
// The hot-path contract is one atomic add for the sampling decision;
// only events that pass sampling (or that record a drop, which is
// always-on) take the ring mutex for the append. Events are plain value
// structs reused in place inside the ring, so steady-state recording
// allocates only when a field (reason string) must be materialized.

// DefaultFlightEvents is the ring capacity daemons use unless told
// otherwise: enough to hold several seconds of sampled steady-state
// traffic plus every recent drop.
const DefaultFlightEvents = 4096

// DefaultFlightSample is the healthy-traffic sampling rate: 1-in-N
// ingress/route/egress events are recorded. Drops, sheds, evictions and
// quarantine rejections bypass sampling entirely.
const DefaultFlightSample = 64

// FlightKind classifies a flight-recorder event.
type FlightKind uint8

// Flight event kinds, in rough pipeline order.
const (
	FlightIngress    FlightKind = iota // envelope arrived from a peer (or local publish)
	FlightGuard                        // §4.3 guard verdict (accept or drop)
	FlightDrop                         // routing rejection before delivery (duplicate, TTL, spoof, topic authz, throttle)
	FlightRoute                        // route decision: local and remote fan-out counts
	FlightEgress                       // frame enqueued toward one remote peer
	FlightShed                         // frames shed from a peer's egress queue
	FlightEvict                        // peer eviction
	FlightQuarantine                   // connection rejected while quarantined
)

var flightKindNames = [...]string{
	FlightIngress:    "ingress",
	FlightGuard:      "guard",
	FlightDrop:       "drop",
	FlightRoute:      "route",
	FlightEgress:     "egress",
	FlightShed:       "shed",
	FlightEvict:      "evict",
	FlightQuarantine: "quarantine",
}

// String returns the wire/JSON name of the kind.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return "unknown(" + strconv.Itoa(int(k)) + ")"
}

// MarshalJSON encodes the kind as its string name.
func (k FlightKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind from its string name.
func (k *FlightKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range flightKindNames {
		if name == s {
			*k = FlightKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown flight kind %q", s)
}

// FlightTrace is the 128-bit trace correlation ID carried by flight
// events — the envelope's span TraceID, or the envelope ID when no span
// is attached. Stored raw (no string formatting on the record path) and
// rendered in canonical UUID form only at JSON time.
type FlightTrace [16]byte

// IsZero reports an absent trace ID (events such as evictions are not
// tied to one envelope).
func (t FlightTrace) IsZero() bool { return t == FlightTrace{} }

// String formats the trace ID in the canonical 8-4-4-4-12 form.
func (t FlightTrace) String() string {
	var b [36]byte
	hex.Encode(b[0:8], t[0:4])
	b[8] = '-'
	hex.Encode(b[9:13], t[4:6])
	b[13] = '-'
	hex.Encode(b[14:18], t[6:8])
	b[18] = '-'
	hex.Encode(b[19:23], t[8:10])
	b[23] = '-'
	hex.Encode(b[24:36], t[10:16])
	return string(b[:])
}

// ParseFlightTrace parses the canonical textual form.
func ParseFlightTrace(s string) (FlightTrace, error) {
	var t FlightTrace
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return t, fmt.Errorf("obs: malformed trace id %q", s)
	}
	hexOnly := s[0:8] + s[9:13] + s[14:18] + s[19:23] + s[24:36]
	raw, err := hex.DecodeString(hexOnly)
	if err != nil {
		return t, fmt.Errorf("obs: malformed trace id %q", s)
	}
	copy(t[:], raw)
	return t, nil
}

// MarshalJSON encodes the trace ID as a UUID string, or null when zero.
func (t FlightTrace) MarshalJSON() ([]byte, error) {
	if t.IsZero() {
		return []byte("null"), nil
	}
	return json.Marshal(t.String())
}

// UnmarshalJSON decodes a UUID string or null.
func (t *FlightTrace) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*t = FlightTrace{}
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseFlightTrace(s)
	if err != nil {
		return err
	}
	*t = parsed
	return nil
}

// FlightEvent is one recorded broker decision. Which optional fields are
// set depends on Kind:
//
//	ingress:    Peer (source, "local" for a local publish), Topic
//	guard:      Peer (publishing principal), Topic, Cache (hit/miss/
//	            stale/bypass/off), DurNanos (verification time), Reason
//	            set on drops
//	drop:       Peer, Topic, Reason (duplicate, ttl_expired,
//	            spoofed_source, unauthorized_topic, throttled)
//	route:      N (remote fan-out), N2 (local deliveries)
//	egress:     Peer (destination)
//	shed:       Peer (destination), N (frames shed)
//	evict:      Peer, Reason
//	quarantine: Peer
type FlightEvent struct {
	Seq      uint64      `json:"seq"`
	AtNanos  int64       `json:"at_nanos"`
	Kind     FlightKind  `json:"kind"`
	Trace    FlightTrace `json:"trace_id,omitempty"`
	Peer     string      `json:"peer,omitempty"`
	Topic    string      `json:"topic,omitempty"`
	Reason   string      `json:"reason,omitempty"`
	Cache    string      `json:"cache,omitempty"`
	DurNanos int64       `json:"dur_nanos,omitempty"`
	N        int         `json:"n,omitempty"`
	N2       int         `json:"n2,omitempty"`
}

// Time returns the event timestamp.
func (e FlightEvent) Time() time.Time { return time.Unix(0, e.AtNanos) }

// FlightRecorder is the per-broker bounded event ring. A nil recorder is
// valid and disables recording: Sampled reports false and Record is a
// no-op, so call sites need no branches.
type FlightRecorder struct {
	node    string
	sampleN uint64
	tick    atomic.Uint64

	mu   sync.Mutex
	ring []FlightEvent
	next int // next write slot
	n    int // populated slots
	seq  uint64
}

// NewFlightRecorder creates a recorder for the named node with a ring of
// size events (<=0 selects DefaultFlightEvents) sampling 1-in-sampleN
// healthy events (<=0 selects DefaultFlightSample; 1 records
// everything).
func NewFlightRecorder(node string, size, sampleN int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightEvents
	}
	if sampleN <= 0 {
		sampleN = DefaultFlightSample
	}
	return &FlightRecorder{node: node, sampleN: uint64(sampleN), ring: make([]FlightEvent, size)}
}

// Node returns the recorder's node name ("" for nil).
func (r *FlightRecorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// SampleN returns the healthy-traffic sampling rate (0 for nil).
func (r *FlightRecorder) SampleN() int {
	if r == nil {
		return 0
	}
	return int(r.sampleN)
}

// Sampled is the hot-path sampling decision for healthy traffic: one
// atomic add, true for 1-in-N calls. Callers make the decision once per
// envelope and record all of that envelope's healthy events (ingress,
// route, egress) or none, so sampled flows are complete. Drops bypass
// Sampled and go straight to Record. A nil recorder reports false.
func (r *FlightRecorder) Sampled() bool {
	if r == nil {
		return false
	}
	return r.tick.Add(1)%r.sampleN == 0
}

// Record appends the event to the ring, stamping its sequence number
// and, when AtNanos is zero, the current time. No-op on nil.
func (r *FlightRecorder) Record(ev FlightEvent) {
	if r == nil {
		return
	}
	if ev.AtNanos == 0 {
		ev.AtNanos = time.Now().UnixNano()
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	r.ring[r.next] = ev
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
}

// Head returns the most recently assigned sequence number (0 if nothing
// recorded or nil).
func (r *FlightRecorder) Head() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// FlightFilter selects events from a recorder snapshot. The zero value
// selects the newest DefaultFlightQuery events of any trace.
type FlightFilter struct {
	// Trace, when non-zero, keeps only events stamped with this trace ID.
	Trace FlightTrace
	// Since, when non-zero, keeps only events with Seq > Since (tailing).
	Since uint64
	// Last, when > 0, keeps only the newest Last events after the other
	// filters; <= 0 selects DefaultFlightQuery.
	Last int
}

// DefaultFlightQuery bounds /trace responses when the request does not
// say how many events it wants.
const DefaultFlightQuery = 256

// Events snapshots the ring, oldest first, applying the filter.
func (r *FlightRecorder) Events(f FlightFilter) []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := make([]FlightEvent, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		all = append(all, r.ring[(start+i)%len(r.ring)])
	}
	r.mu.Unlock()

	out := all[:0]
	for _, ev := range all {
		if !f.Trace.IsZero() && ev.Trace != f.Trace {
			continue
		}
		if f.Since != 0 && ev.Seq <= f.Since {
			continue
		}
		out = append(out, ev)
	}
	last := f.Last
	if last <= 0 {
		last = DefaultFlightQuery
	}
	if len(out) > last {
		out = out[len(out)-last:]
	}
	return out
}

// FlightDump is the JSON document served by /trace and written on
// SIGQUIT: the node's name, its ring head sequence, and the selected
// events oldest first.
type FlightDump struct {
	Node   string        `json:"node"`
	Head   uint64        `json:"head"`
	Events []FlightEvent `json:"events"`
}

// Dump snapshots the recorder into the exported document form.
func (r *FlightRecorder) Dump(f FlightFilter) FlightDump {
	return FlightDump{Node: r.Node(), Head: r.Head(), Events: r.Events(f)}
}

// WriteJSON writes the filtered dump as indented JSON (the SIGQUIT
// format).
func (r *FlightRecorder) WriteJSON(w io.Writer, f FlightFilter) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Dump(f))
}

// ParseFlightDump parses the JSON document produced by Dump/WriteJSON
// and the /trace endpoint. It is the inverse tracectl uses.
func ParseFlightDump(b []byte) (*FlightDump, error) {
	var d FlightDump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, err
	}
	for i, ev := range d.Events {
		if int(ev.Kind) >= len(flightKindNames) {
			return nil, fmt.Errorf("obs: event %d: unknown flight kind %d", i, ev.Kind)
		}
	}
	return &d, nil
}

// errNoRecorder reports a /trace request against a daemon with the
// flight recorder disabled.
var errNoRecorder = errors.New("obs: flight recorder disabled")

// FlightHandler serves the recorder as JSON:
//
//	GET /trace?id=<uuid>&last=<n>&since=<seq>
//
// id filters to one trace ID, last bounds the event count (default
// DefaultFlightQuery), since selects only events after the given
// sequence number (for tailing). A nil recorder answers 503.
func FlightHandler(r *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, errNoRecorder.Error(), http.StatusServiceUnavailable)
			return
		}
		var f FlightFilter
		q := req.URL.Query()
		if id := q.Get("id"); id != "" {
			t, err := ParseFlightTrace(id)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			f.Trace = t
		}
		if last := q.Get("last"); last != "" {
			n, err := strconv.Atoi(last)
			if err != nil || n < 0 {
				http.Error(w, "obs: bad last parameter", http.StatusBadRequest)
				return
			}
			f.Last = n
		}
		if since := q.Get("since"); since != "" {
			n, err := strconv.ParseUint(since, 10, 64)
			if err != nil {
				http.Error(w, "obs: bad since parameter", http.StatusBadRequest)
				return
			}
			f.Since = n
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Dump(f))
	})
}
