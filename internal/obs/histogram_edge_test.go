package obs

import "testing"

// Edge cases of the fixed-bucket histogram: empty snapshots, a single
// observation, and values outside the configured bucket range on either
// side. The steady-state and concurrency behaviour is covered in
// obs_test.go; these pin down the boundaries trace assembly and the
// e2e_latency_seconds stage histograms depend on.

func TestHistogramEmptySnapshot(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	snap := h.Snapshot()
	if snap.Count != 0 {
		t.Fatalf("count = %d, want 0", snap.Count)
	}
	if snap.P50 != 0 || snap.P90 != 0 || snap.P99 != 0 {
		t.Fatalf("empty quantiles = %v/%v/%v, want zeros", snap.P50, snap.P90, snap.P99)
	}
	if len(snap.Buckets) != 4 { // 3 bounds + overflow
		t.Fatalf("buckets = %d, want 4", len(snap.Buckets))
	}
	for _, b := range snap.Buckets {
		if b.Count != 0 {
			t.Fatalf("empty histogram has nonzero bucket %+v", b)
		}
	}
	if snap.Buckets[len(snap.Buckets)-1].Le != "+Inf" {
		t.Fatalf("overflow bucket le = %q", snap.Buckets[len(snap.Buckets)-1].Le)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(1.5)
	snap := h.Snapshot()
	if snap.Count != 1 || h.Count() != 1 {
		t.Fatalf("count = %d/%d, want 1", snap.Count, h.Count())
	}
	if snap.Min != 1.5 || snap.Max != 1.5 || snap.Mean != 1.5 {
		t.Fatalf("moments = min %v max %v mean %v, want all 1.5", snap.Min, snap.Max, snap.Mean)
	}
	if snap.StdDev != 0 {
		t.Fatalf("stddev = %v, want 0 for one observation", snap.StdDev)
	}
	// All quantiles interpolate inside the (1, 2] bucket that holds the
	// single value — never outside it.
	for _, q := range []float64{snap.P50, snap.P90, snap.P99} {
		if q <= 1 || q > 2 {
			t.Fatalf("quantile %v outside the observation's bucket (1, 2]", q)
		}
	}
}

func TestHistogramBelowRange(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(-5) // below every bound: lands in the first bucket
	h.Observe(0)
	snap := h.Snapshot()
	if snap.Buckets[0].Count != 2 {
		t.Fatalf("first bucket = %d, want both sub-range values", snap.Buckets[0].Count)
	}
	if snap.Min != -5 || snap.Max != 0 {
		t.Fatalf("min/max = %v/%v", snap.Min, snap.Max)
	}
	// Interpolation in the first bucket runs from an implicit lower bound
	// of zero; the estimate stays within [0, 1].
	if snap.P99 < 0 || snap.P99 > 1 {
		t.Fatalf("p99 = %v, want within the first bucket [0, 1]", snap.P99)
	}
}

func TestHistogramAboveRange(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(1e9) // far past the last bound: overflow bucket
	}
	snap := h.Snapshot()
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.Le != "+Inf" || last.Count != 10 {
		t.Fatalf("overflow bucket = %+v, want all 10", last)
	}
	// The overflow bucket has no upper bound to interpolate against, so
	// every quantile inside it reports the observed maximum.
	if snap.P50 != 1e9 || snap.P99 != 1e9 {
		t.Fatalf("overflow quantiles = %v/%v, want observed max", snap.P50, snap.P99)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := newHistogram([]float64{4, 1, 2})
	h.Observe(1.5)
	snap := h.Snapshot()
	if snap.Buckets[0].Le != "1" || snap.Buckets[1].Le != "2" || snap.Buckets[2].Le != "4" {
		t.Fatalf("bounds not sorted: %+v", snap.Buckets)
	}
	if snap.Buckets[0].Count != 0 || snap.Buckets[1].Count != 1 {
		t.Fatalf("cumulative counts wrong: %+v", snap.Buckets)
	}
}
