package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	g := r.Gauge("test_gauge")
	const workers, rounds = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*rounds {
		t.Fatalf("counter = %d, want %d", got, workers*rounds)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	handles := make([]*Counter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i] = r.Counter("same_name_total")
		}(w)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if handles[i] != handles[0] {
			t.Fatal("concurrent Counter() calls returned distinct handles for one name")
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", nil)
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				h.Observe(float64(seed*rounds+i) / 100.0)
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*rounds {
		t.Fatalf("count = %d, want %d", snap.Count, workers*rounds)
	}
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.Le != "+Inf" || last.Count != workers*rounds {
		t.Fatalf("overflow bucket = %+v, want le=+Inf count=%d", last, workers*rounds)
	}
	if snap.Min != 0 || snap.Max != float64(workers*rounds-1)/100.0 {
		t.Fatalf("min/max = %v/%v", snap.Min, snap.Max)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 uniform values in (0, 4]: quantiles interpolate inside buckets.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	snap := h.Snapshot()
	if snap.P50 < 1.5 || snap.P50 > 2.5 {
		t.Fatalf("p50 = %v, want ~2", snap.P50)
	}
	if snap.P99 < 3.5 || snap.P99 > 4.0 {
		t.Fatalf("p99 = %v, want ~4", snap.P99)
	}
	if snap.P95 < 3.5 || snap.P95 > 4.0 {
		t.Fatalf("p95 = %v, want ~3.8", snap.P95)
	}
	if snap.P95 > snap.P99 {
		t.Fatalf("p95 %v > p99 %v", snap.P95, snap.P99)
	}
	// Values beyond the last bound land in +Inf and report the max.
	h2 := newHistogram([]float64{1})
	h2.Observe(50)
	if got := h2.Snapshot().P99; got != 50 {
		t.Fatalf("overflow p99 = %v, want observed max 50", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram(nil)
	h.ObserveDuration(2500 * time.Microsecond)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Max != 2.5 {
		t.Fatalf("snapshot = count %d max %v, want 1 and 2.5ms", snap.Count, snap.Max)
	}
}

func TestWithLabelAndBaseName(t *testing.T) {
	name := WithLabel("traces_dropped_total", "reason", "bad_signature")
	if name != `traces_dropped_total{reason="bad_signature"}` {
		t.Fatalf("WithLabel = %q", name)
	}
	if got := baseName(name); got != "traces_dropped_total" {
		t.Fatalf("baseName = %q", got)
	}
	if got := baseName("plain_total"); got != "plain_total" {
		t.Fatalf("baseName(plain) = %q", got)
	}
}

func TestLoggerRedaction(t *testing.T) {
	var lines []string
	l := NewCallbackLogger(LevelDebug, func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	secret := "super-secret-value"
	l.Info("registered",
		"entity", "svc-1",
		"token", secret,
		"trace_key", []byte(secret),
		"privateKey", secret,
		"signature", secret,
		"credential", secret,
	)
	out := strings.Join(lines, "\n")
	if strings.Contains(out, secret) {
		t.Fatalf("secret value leaked into log output: %q", out)
	}
	if !strings.Contains(out, "svc-1") {
		t.Fatalf("non-sensitive value missing: %q", out)
	}
	if !strings.Contains(out, "[REDACTED 18 bytes]") {
		t.Fatalf("redaction placeholder missing: %q", out)
	}
}

func TestRedactedKeys(t *testing.T) {
	for _, key := range []string{"token", "Token", "authToken", "trace_key", "secret", "password", "signature", "credential", "cert", "privateKey"} {
		if !Redacted(key) {
			t.Errorf("Redacted(%q) = false, want true", key)
		}
	}
	for _, key := range []string{"entity", "session", "topic", "peer", "reason", "err"} {
		if Redacted(key) {
			t.Errorf("Redacted(%q) = true, want false", key)
		}
	}
}

func TestLoggerTextFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelInfo, false)
	l.Debug("hidden")
	l.With("broker", "b-1").Warn("link lost", "peer", "10.0.0.1:7100", "detail", "reset by peer")
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line emitted at info level: %q", out)
	}
	for _, want := range []string{"level=WARN", `msg="link lost"`, "broker=b-1", "peer=10.0.0.1:7100", `detail="reset by peer"`, "ts="} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output %q missing %q", out, want)
		}
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, true)
	l.Info("registered", "entity", "svc-1", "sessions", 3, "token", "abc")
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("output is not one JSON object: %v\n%s", err, sb.String())
	}
	if rec["level"] != "INFO" || rec["msg"] != "registered" || rec["entity"] != "svc-1" {
		t.Fatalf("unexpected record: %v", rec)
	}
	if rec["sessions"] != float64(3) {
		t.Fatalf("numeric field mangled: %v", rec["sessions"])
	}
	if rec["token"] != "[REDACTED 3 bytes]" {
		t.Fatalf("token not redacted in JSON: %v", rec["token"])
	}
}

// TestLoggerJSONStringer pins that Stringer values (UUIDs, durations,
// entity IDs — often backed by byte arrays) render as their string form
// in JSON mode, matching the text format, instead of as number arrays.
func TestLoggerJSONStringer(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, true)
	l.Info("ping", "rtt", 1500*time.Microsecond)
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["rtt"] != "1.5ms" {
		t.Fatalf("Stringer rendered as %v, want \"1.5ms\"", rec["rtt"])
	}
}

func TestNilLoggerIsSilent(t *testing.T) {
	var l *Logger
	l.Info("nothing")                    // must not panic
	l.With("k", "v").Error("still fine") // nil propagates through With
	if l.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
	if l.Logf() != nil {
		t.Fatal("nil logger should yield a nil Logf callback")
	}
	if NewCallbackLogger(LevelDebug, nil) != nil {
		t.Fatal("nil callback should yield a nil logger")
	}
}

func TestLoggerMissingValue(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, false)
	l.Info("odd", "orphan")
	if !strings.Contains(sb.String(), `orphan=(MISSING)`) {
		t.Fatalf("missing-value marker absent: %q", sb.String())
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "DEBUG": LevelDebug,
		"info": LevelInfo, "warn": LevelWarn, "warning": LevelWarn,
		"error": LevelError, "bogus": LevelInfo, "": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("traces_published_total").Add(7)
	r.Counter(WithLabel("traces_dropped_total", "reason", "bad_signature")).Inc()
	r.Gauge("core_sessions_active").Set(2)
	r.Histogram("ping_rtt_ms", nil).Observe(1.5)

	// Text exposition.
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE traces_published_total counter",
		"traces_published_total 7",
		`traces_dropped_total{reason="bad_signature"} 1`,
		"core_sessions_active 2",
		"# HELP traces_published_total traces_published_total counter.",
		"# TYPE ping_rtt_ms histogram",
		`ping_rtt_ms_bucket{le="2.5"} 1`,
		"ping_rtt_ms_count 1",
		"ping_rtt_ms_sum 1.5",
		"# TYPE ping_rtt_ms_summary summary",
		"# HELP ping_rtt_ms_summary ping_rtt_ms_summary summary.",
		`ping_rtt_ms_summary{quantile="0.5"}`,
		`ping_rtt_ms_summary{quantile="0.95"}`,
		`ping_rtt_ms_summary{quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("text exposition missing %q:\n%s", want, body)
		}
	}

	// JSON exposition.
	rec = httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["traces_published_total"] != 7 || snap.Gauges["core_sessions_active"] != 2 {
		t.Fatalf("json snapshot wrong: %+v", snap)
	}
	if snap.Histograms["ping_rtt_ms"].Count != 1 {
		t.Fatalf("json histogram missing: %+v", snap.Histograms)
	}
}

func TestAdminMuxHealthz(t *testing.T) {
	mux := NewAdminMux(NewRegistry(), func() map[string]any {
		return map[string]any{"sessions": 4, "broker": "b-1"}
	})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("healthz Content-Type = %q", ct)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" || out["sessions"] != float64(4) || out["broker"] != "b-1" {
		t.Fatalf("healthz = %v", out)
	}
	if _, ok := out["uptime_seconds"]; !ok {
		t.Fatal("healthz missing uptime_seconds")
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof index status = %d", rec.Code)
	}
}

func TestLogfAdapter(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, false)
	l.Logf()("hello %d", 42)
	if !strings.Contains(sb.String(), `msg="hello 42"`) {
		t.Fatalf("Logf adapter output: %q", sb.String())
	}
}
