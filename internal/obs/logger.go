package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int8

// Levels, in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int8(l))
	}
}

// ParseLevel maps a flag string to a Level (case-insensitive; unknown
// strings select Info).
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// redactedMarkers are substrings of field keys whose values must never
// reach a log sink: key material, tokens, credentials, signatures. A
// matched value is replaced with a length-only placeholder.
var redactedMarkers = []string{"token", "key", "secret", "passw", "sign", "cred", "cert", "private"}

// Redacted reports whether values logged under key are replaced with a
// placeholder.
func Redacted(key string) bool {
	lk := strings.ToLower(key)
	for _, m := range redactedMarkers {
		if strings.Contains(lk, m) {
			return true
		}
	}
	return false
}

// redact substitutes sensitive values with a size-preserving marker so
// logs stay diagnostic ("a 300-byte token was present") without leaking
// material.
func redact(key string, v any) any {
	if !Redacted(key) {
		return v
	}
	switch tv := v.(type) {
	case []byte:
		return fmt.Sprintf("[REDACTED %d bytes]", len(tv))
	case string:
		return fmt.Sprintf("[REDACTED %d bytes]", len(tv))
	default:
		return "[REDACTED]"
	}
}

// field is one resolved key/value pair.
type field struct {
	key string
	val any
}

// Logger is a leveled key=value (or JSON) logger. The zero sink (nil
// *Logger) is valid and silent, matching the repo's "nil Logf silences
// diagnostics" convention. With returns derived loggers sharing the
// parent's sink, so one mutex serializes a daemon's output.
type Logger struct {
	emit    func(line string)
	level   Level
	jsonFmt bool
	noTime  bool
	fields  []field
}

// NewLogger writes lines to w at or above level; jsonFormat selects
// one-object-per-line JSON instead of key=value text.
func NewLogger(w io.Writer, level Level, jsonFormat bool) *Logger {
	var mu sync.Mutex
	return &Logger{
		emit: func(line string) {
			mu.Lock()
			defer mu.Unlock()
			_, _ = io.WriteString(w, line+"\n")
		},
		level:   level,
		jsonFmt: jsonFormat,
	}
}

// NewCallbackLogger adapts a legacy Logf callback (e.g. testing.T.Logf)
// into a structured logger: every record is rendered key=value and
// handed to f as a single line, without a timestamp (test runners add
// their own).
func NewCallbackLogger(level Level, f func(format string, args ...any)) *Logger {
	if f == nil {
		return nil
	}
	return &Logger{
		emit:   func(line string) { f("%s", line) },
		level:  level,
		noTime: true,
	}
}

// With returns a logger that prepends the given key/value pairs to every
// record. A trailing key without a value is paired with "(MISSING)".
func (l *Logger) With(keyvals ...any) *Logger {
	if l == nil || len(keyvals) == 0 {
		return l
	}
	cp := *l
	cp.fields = append(append([]field(nil), l.fields...), resolve(keyvals)...)
	return &cp
}

// Enabled reports whether records at lv are emitted.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.level }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, keyvals ...any) { l.log(LevelDebug, msg, keyvals) }

// Info logs at info level.
func (l *Logger) Info(msg string, keyvals ...any) { l.log(LevelInfo, msg, keyvals) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, keyvals ...any) { l.log(LevelWarn, msg, keyvals) }

// Error logs at error level.
func (l *Logger) Error(msg string, keyvals ...any) { l.log(LevelError, msg, keyvals) }

func (l *Logger) log(lv Level, msg string, keyvals []any) {
	if !l.Enabled(lv) {
		return
	}
	fields := l.fields
	if len(keyvals) > 0 {
		fields = append(append([]field(nil), fields...), resolve(keyvals)...)
	}
	if l.jsonFmt {
		l.emit(renderJSON(lv, msg, fields, l.noTime))
		return
	}
	l.emit(renderText(lv, msg, fields, l.noTime))
}

// resolve pairs the variadic keyvals and applies redaction once, at
// record construction.
func resolve(keyvals []any) []field {
	out := make([]field, 0, (len(keyvals)+1)/2)
	for i := 0; i < len(keyvals); i += 2 {
		key := fmt.Sprint(keyvals[i])
		var val any = "(MISSING)"
		if i+1 < len(keyvals) {
			val = keyvals[i+1]
		}
		out = append(out, field{key: key, val: redact(key, val)})
	}
	return out
}

func renderText(lv Level, msg string, fields []field, noTime bool) string {
	var b strings.Builder
	if !noTime {
		b.WriteString("ts=")
		b.WriteString(time.Now().UTC().Format(time.RFC3339Nano))
		b.WriteByte(' ')
	}
	b.WriteString("level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(strconv.Quote(msg))
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(f.key)
		b.WriteByte('=')
		b.WriteString(textValue(f.val))
	}
	return b.String()
}

// textValue renders a value, quoting when the plain form would be
// ambiguous in key=value output.
func textValue(v any) string {
	s := fmt.Sprint(v)
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

func renderJSON(lv Level, msg string, fields []field, noTime bool) string {
	var b strings.Builder
	b.WriteByte('{')
	if !noTime {
		b.WriteString(`"ts":`)
		b.WriteString(strconv.Quote(time.Now().UTC().Format(time.RFC3339Nano)))
		b.WriteByte(',')
	}
	b.WriteString(`"level":`)
	b.WriteString(strconv.Quote(lv.String()))
	b.WriteString(`,"msg":`)
	b.WriteString(strconv.Quote(msg))
	for _, f := range fields {
		b.WriteByte(',')
		b.WriteString(strconv.Quote(f.key))
		b.WriteByte(':')
		b.Write(jsonValue(f.val))
	}
	b.WriteByte('}')
	return b.String()
}

// jsonValue marshals a field value. Errors and Stringers (UUIDs,
// durations, entity IDs) render as their string form — matching the
// text format, and keeping byte-array-backed IDs readable — with a
// fallback to fmt.Sprint for unmarshalable types (channels, NaN
// floats). Types with their own JSON marshaling keep it.
func jsonValue(v any) []byte {
	switch tv := v.(type) {
	case error:
		v = tv.Error()
	case json.Marshaler:
		// keep the custom representation
	case fmt.Stringer:
		v = tv.String()
	}
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(fmt.Sprint(v))
	}
	return data
}

// Logf adapts the logger back to the legacy func(format, args...) shape
// still accepted by older Config fields; lines are logged at Info.
// A nil logger yields a nil callback, preserving "nil silences" checks.
func (l *Logger) Logf() func(format string, args ...any) {
	if l == nil {
		return nil
	}
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
