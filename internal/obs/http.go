package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteText renders the registry in a prometheus-style plain-text
// exposition: counters and gauges as single samples, histograms as
// cumulative buckets plus summary statistics. Metric names may carry a
// single {key="value"} label suffix; families sharing a base name are
// grouped under one TYPE header.
func (r *Registry) WriteText(w io.Writer) {
	snap := r.Snapshot()
	writeTextSnapshot(w, snap)
}

func writeTextSnapshot(w io.Writer, snap Snapshot) {
	lastFamily := ""
	family := func(base, kind string) {
		if base == lastFamily {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s %s.\n", base, base, kind)
		fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		lastFamily = base
	}
	for _, name := range sortedKeys(snap.Counters) {
		family(baseName(name), "counter")
		fmt.Fprintf(w, "%s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		family(baseName(name), "gauge")
		fmt.Fprintf(w, "%s %d\n", name, snap.Gauges[name])
	}
	// Histograms group by base name so labeled variants share one family
	// header, and their label suffix merges into each derived sample
	// (`h{x="y"}` renders `h_bucket{x="y",le="..."}` — the base name
	// never carries the brace suffix into the derived sample name).
	names := sortedKeys(snap.Histograms)
	for _, name := range names {
		h := snap.Histograms[name]
		base, labels := splitLabels(name)
		family(base, "histogram")
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s %d\n", sampleName(base+"_bucket", labels, "le", b.Le), b.Count)
		}
		fmt.Fprintf(w, "%s %d\n", sampleName(base+"_count", labels, "", ""), h.Count)
		fmt.Fprintf(w, "%s %s\n", sampleName(base+"_sum", labels, "", ""), fnum(h.Mean*float64(h.Count)))
	}
	// Quantiles form their own summary families with their own TYPE and
	// HELP headers — the bare `name{quantile="..."}` lines previously
	// rode untyped under the histogram family, which strict exposition
	// parsers reject.
	for _, name := range names {
		h := snap.Histograms[name]
		if h.Count == 0 {
			continue
		}
		base, labels := splitLabels(name)
		sbase := base + "_summary"
		family(sbase, "summary")
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.95", h.P95}, {"0.99", h.P99}} {
			fmt.Fprintf(w, "%s %s\n", sampleName(sbase, labels, "quantile", q.q), fnum(q.v))
		}
		fmt.Fprintf(w, "%s %s\n", sampleName(sbase+"_sum", labels, "", ""), fnum(h.Mean*float64(h.Count)))
		fmt.Fprintf(w, "%s %d\n", sampleName(sbase+"_count", labels, "", ""), h.Count)
	}
	// Spread statistics as per-histogram gauge families.
	for _, stat := range []string{"mean", "stddev", "min", "max"} {
		for _, name := range names {
			h := snap.Histograms[name]
			if h.Count == 0 {
				continue
			}
			base, labels := splitLabels(name)
			v := map[string]float64{"mean": h.Mean, "stddev": h.StdDev, "min": h.Min, "max": h.Max}[stat]
			family(base+"_"+stat, "gauge")
			fmt.Fprintf(w, "%s %s\n", sampleName(base+"_"+stat, labels, "", ""), fnum(v))
		}
	}
}

// splitLabels splits a metric name into its base and the body of a
// single trailing {...} label suffix (empty when unlabeled).
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// sampleName renders a derived sample name: the base plus the carried
// label body plus an optional extra label, escaped for exposition.
func sampleName(base, labels, key, val string) string {
	if key != "" {
		extra := key + `="` + escapeLabelValue(val) + `"`
		if labels != "" {
			labels += "," + extra
		} else {
			labels = extra
		}
	}
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

func fnum(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// Handler serves the registry: plain text by default, JSON when the
// request asks for it (?format=json or an Accept header preferring
// application/json).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}

// Health is the detail callback for /healthz; the returned map is
// merged into the response alongside status and uptime.
type Health func() map[string]any

// NewAdminMux builds the daemon admin surface: /metrics (text + JSON),
// /healthz (enriched JSON from the health callback) and the standard
// /debug/pprof handlers.
func NewAdminMux(r *Registry, health Health) *http.ServeMux {
	started := time.Now()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		out := map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(started).Seconds(),
		}
		if health != nil {
			detail := health()
			keys := make([]string, 0, len(detail))
			for k := range detail {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				out[k] = detail[k]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeAdmin binds addr and serves mux until the process exits; it is a
// convenience for daemons that treat the admin endpoint as best-effort.
// The error (including listen failures) is returned for logging.
func ServeAdmin(addr string, mux *http.ServeMux) error {
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	err := srv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
