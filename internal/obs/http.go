package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteText renders the registry in a prometheus-style plain-text
// exposition: counters and gauges as single samples, histograms as
// cumulative buckets plus summary statistics. Metric names may carry a
// single {key="value"} label suffix; families sharing a base name are
// grouped under one TYPE header.
func (r *Registry) WriteText(w io.Writer) {
	snap := r.Snapshot()
	writeTextSnapshot(w, snap)
}

func writeTextSnapshot(w io.Writer, snap Snapshot) {
	lastType := ""
	for _, name := range sortedKeys(snap.Counters) {
		if base := baseName(name); base != lastType {
			fmt.Fprintf(w, "# TYPE %s counter\n", base)
			lastType = base
		}
		fmt.Fprintf(w, "%s %d\n", name, snap.Counters[name])
	}
	lastType = ""
	for _, name := range sortedKeys(snap.Gauges) {
		if base := baseName(name); base != lastType {
			fmt.Fprintf(w, "# TYPE %s gauge\n", base)
			lastType = base
		}
		fmt.Fprintf(w, "%s %d\n", name, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, b.Le, b.Count)
		}
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
		if h.Count > 0 {
			fmt.Fprintf(w, "%s_mean %s\n", name, fnum(h.Mean))
			fmt.Fprintf(w, "%s_stddev %s\n", name, fnum(h.StdDev))
			fmt.Fprintf(w, "%s_min %s\n", name, fnum(h.Min))
			fmt.Fprintf(w, "%s_max %s\n", name, fnum(h.Max))
			fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", name, fnum(h.P50))
			fmt.Fprintf(w, "%s{quantile=\"0.9\"} %s\n", name, fnum(h.P90))
			fmt.Fprintf(w, "%s{quantile=\"0.95\"} %s\n", name, fnum(h.P95))
			fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", name, fnum(h.P99))
		}
	}
}

func fnum(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// Handler serves the registry: plain text by default, JSON when the
// request asks for it (?format=json or an Accept header preferring
// application/json).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}

// Health is the detail callback for /healthz; the returned map is
// merged into the response alongside status and uptime.
type Health func() map[string]any

// NewAdminMux builds the daemon admin surface: /metrics (text + JSON),
// /healthz (enriched JSON from the health callback) and the standard
// /debug/pprof handlers.
func NewAdminMux(r *Registry, health Health) *http.ServeMux {
	started := time.Now()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		out := map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(started).Seconds(),
		}
		if health != nil {
			detail := health()
			keys := make([]string, 0, len(detail))
			for k := range detail {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				out[k] = detail[k]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeAdmin binds addr and serves mux until the process exits; it is a
// convenience for daemons that treat the admin endpoint as best-effort.
// The error (including listen failures) is returned for logging.
func ServeAdmin(addr string, mux *http.ServeMux) error {
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	err := srv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
