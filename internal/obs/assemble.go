package obs

import "sort"

// Trace assembly: reconstructing one end-to-end flow
// (entity→broker→…→tracker) from the per-hop span trailer, with
// clock-skew normalization. Every hop timestamp comes from a different
// node's clock (§4.3 assumes only an NTP-style bound), so raw adjacent
// deltas can be negative or inflated; the assembly anchors the flow's
// total duration to the first and last hop and redistributes it over the
// per-segment deltas, so per-stage attributions always sum to the
// observed total and are never negative.

// HopRecord is one node traversal: the node's name and its local
// Unix-nanosecond clock when the flow passed through. It mirrors the
// envelope span's hop without importing the message package (obs is a
// leaf below it).
type HopRecord struct {
	Node    string `json:"node"`
	AtNanos int64  `json:"at_nanos"`
}

// Segment is one inter-node leg of an assembled flow. Nanos is the
// skew-normalized attribution; RawNanos the as-measured clock delta
// (negative under skew).
type Segment struct {
	From     string `json:"from"`
	To       string `json:"to"`
	Nanos    int64  `json:"nanos"`
	RawNanos int64  `json:"raw_nanos"`
}

// Assembly is a reconstructed flow: the traversal-ordered hops, the
// normalized inter-node segments, and the skew accounting.
type Assembly struct {
	Hops     []HopRecord `json:"hops"`
	Segments []Segment   `json:"segments"`
	// TotalNanos is the flow's end-to-end duration anchored to the first
	// and last hop timestamps (0 when fewer than two hops, or when even
	// the anchor pair is skew-inverted).
	TotalNanos int64 `json:"total_nanos"`
	// SkewNanos totals the negative raw deltas that were clamped — a
	// measure of how much inter-node clock skew distorted this flow.
	SkewNanos int64 `json:"skew_nanos"`
	// Scaled reports that per-segment attributions were rescaled so they
	// sum to TotalNanos.
	Scaled bool `json:"scaled,omitempty"`
}

// Assemble reconstructs a flow from its hops, which must be in
// traversal order (the span trailer's order). Normalization: negative
// adjacent deltas are clamped to zero and accounted in SkewNanos; the
// remaining positive deltas are scaled so the segments sum to the
// first→last anchor duration. When the anchor itself is inverted
// (first hop's clock ahead of the last's) the clamped raw deltas are
// reported unscaled and TotalNanos is their sum.
func Assemble(hops []HopRecord) *Assembly {
	a := &Assembly{Hops: hops}
	if len(hops) < 2 {
		return a
	}
	total := hops[len(hops)-1].AtNanos - hops[0].AtNanos
	var sum int64
	a.Segments = make([]Segment, 0, len(hops)-1)
	for i := 1; i < len(hops); i++ {
		raw := hops[i].AtNanos - hops[i-1].AtNanos
		clamped := raw
		if clamped < 0 {
			a.SkewNanos += -clamped
			clamped = 0
		}
		sum += clamped
		a.Segments = append(a.Segments, Segment{
			From:     hops[i-1].Node,
			To:       hops[i].Node,
			Nanos:    clamped,
			RawNanos: raw,
		})
	}
	if total < 0 {
		// Even the anchor pair is inverted; the clamped deltas are the
		// best available estimate.
		a.SkewNanos += -total
		a.TotalNanos = sum
		return a
	}
	a.TotalNanos = total
	if sum != total && sum > 0 {
		// Redistribute the anchored total over the positive deltas so the
		// segments sum exactly to it (integer remainder goes to the last
		// nonzero segment).
		var distributed int64
		lastNonZero := -1
		for i := range a.Segments {
			if a.Segments[i].Nanos == 0 {
				continue
			}
			scaled := a.Segments[i].Nanos * total / sum
			a.Segments[i].Nanos = scaled
			distributed += scaled
			lastNonZero = i
		}
		if lastNonZero >= 0 {
			a.Segments[lastNonZero].Nanos += total - distributed
		}
		a.Scaled = true
	} else if sum == 0 && total > 0 {
		// All deltas clamped or zero: attribute the whole flow to the
		// final segment (the anchor says time passed somewhere).
		a.Segments[len(a.Segments)-1].Nanos = total
		a.Scaled = true
	}
	return a
}

// MergeHops stable-sorts hop records by timestamp, deduplicating exact
// (node, timestamp) repeats. It reconstructs traversal order for hop
// sets gathered out of order — chaos-reordered delivery, or hops
// recovered from several brokers' flight recorders — before Assemble.
// Under inter-node clock skew the sort can differ from the true
// traversal order; spans carried in-envelope should be assembled in
// their recorded order instead.
func MergeHops(lists ...[]HopRecord) []HopRecord {
	var out []HopRecord
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtNanos < out[j].AtNanos })
	dedup := out[:0]
	for i, h := range out {
		if i > 0 && h == out[i-1] {
			continue
		}
		dedup = append(dedup, h)
	}
	return dedup
}
