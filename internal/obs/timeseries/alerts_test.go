package timeseries

import (
	"testing"
	"time"
)

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(
		"deep-queues: broker_egress_queue_depth > 100 for 2s hold 10s; " +
			"rate(broker_published_total) < 0.5 for 5s; " +
			"absent(broker_published_total) for 3s")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	r := rules[0]
	if r.Name != "deep-queues" || r.Kind != Threshold || r.Series != "broker_egress_queue_depth" ||
		r.Less || r.Value != 100 || r.For != 2*time.Second || r.Hold != 10*time.Second {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = rules[1]
	if r.Kind != RateOfChange || r.Series != "broker_published_total" || !r.Less || r.Value != 0.5 ||
		r.For != 5*time.Second || r.Hold != 0 {
		t.Fatalf("rule 1 = %+v", r)
	}
	if r.Name != "rate(broker_published_total) < 0.5 for 5s" {
		t.Fatalf("unnamed rule keeps source text, got %q", r.Name)
	}
	if r.holdDown() != 5*time.Second {
		t.Fatalf("zero Hold defaults to For, got %v", r.holdDown())
	}
	r = rules[2]
	if r.Kind != Absent || r.Series != "broker_published_total" || r.For != 3*time.Second {
		t.Fatalf("rule 2 = %+v", r)
	}
	if got, err := ParseRules("  ;  ; "); err != nil || len(got) != 0 {
		t.Fatalf("blank rules: %v %v", got, err)
	}
	for _, bad := range []string{
		"x > 1",                   // missing for
		"x > 1 for",               // missing duration
		"x > 1 for 0s",            // non-positive for
		"x > 1 for 2s hold",       // dangling hold
		"x > 1 for 2s hold -1s",   // non-positive hold
		"x > 1 for 2s extra junk", // trailing tokens
		"x >= 1 for 2s",           // unsupported operator leaves bound unparsable
		"x for 2s",                // no comparison
		": x > 1 for 2s",          // empty name
		"x > nope for 2s",         // bad bound
		"absent() for 2s",         // empty series
		"x > 1 < 2 for 2s",        // both operators
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}
}

// evalAt drives the engine through one sample+eval tick.
func evalAt(e *Engine, s *Series, atSec, v int64) []Alert {
	s.Append(atSec*sec, v)
	return e.Eval(atSec * sec)
}

func TestThresholdEdgeTriggering(t *testing.T) {
	st := New(Options{})
	s := st.Series("depth", Gauge)
	rules, err := ParseRules("deep: depth > 100 for 2s hold 3s")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, rules, nil)

	// Below threshold: nothing.
	if edges := evalAt(e, s, 1, 50); len(edges) != 0 {
		t.Fatalf("fired below threshold: %+v", edges)
	}
	// Above threshold but not yet held For: armed, no edge.
	if edges := evalAt(e, s, 2, 150); len(edges) != 0 {
		t.Fatalf("fired before For window: %+v", edges)
	}
	if edges := evalAt(e, s, 3, 160); len(edges) != 0 {
		t.Fatalf("fired at 1s of 2s window: %+v", edges)
	}
	// Held 2s: exactly one firing edge.
	edges := evalAt(e, s, 4, 170)
	if len(edges) != 1 || !edges[0].Firing || edges[0].Rule != "deep" || edges[0].Value != 170 {
		t.Fatalf("want one firing edge, got %+v", edges)
	}
	fired := edges[0].SinceNanos
	if fired != 4*sec {
		t.Fatalf("SinceNanos = %d", fired)
	}
	// Still firing: standing, no repeat edge.
	if edges := evalAt(e, s, 5, 180); len(edges) != 0 {
		t.Fatalf("repeat edge while standing: %+v", edges)
	}
	if f := e.Firing(); len(f) != 1 || f[0].SinceNanos != fired {
		t.Fatalf("Firing() = %+v", f)
	}
	// Dips below, then flaps back up before the 3s hold-down: no clear.
	if edges := evalAt(e, s, 6, 90); len(edges) != 0 {
		t.Fatalf("cleared without hold-down: %+v", edges)
	}
	if edges := evalAt(e, s, 7, 150); len(edges) != 0 {
		t.Fatalf("flap produced an edge: %+v", edges)
	}
	// Falls and stays below for the hold-down: exactly one clearing edge,
	// same episode (SinceNanos preserved).
	evalAt(e, s, 8, 90)
	evalAt(e, s, 9, 80)
	evalAt(e, s, 10, 70)
	edges = e.Eval(11 * sec)
	if len(edges) != 1 || edges[0].Firing || edges[0].SinceNanos != fired {
		t.Fatalf("want one clearing edge of the same episode, got %+v", edges)
	}
	if f := e.Firing(); len(f) != 0 {
		t.Fatalf("still firing after clear: %+v", f)
	}
	// A fresh breach starts a new episode with a new SinceNanos.
	evalAt(e, s, 12, 200)
	evalAt(e, s, 13, 200)
	edges = evalAt(e, s, 14, 200)
	if len(edges) != 1 || !edges[0].Firing || edges[0].SinceNanos == fired {
		t.Fatalf("want a new episode, got %+v", edges)
	}
}

func TestAbsentRule(t *testing.T) {
	st := New(Options{})
	rules, err := ParseRules("hb: absent(heartbeat) for 3s")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, rules, nil)
	// Series never registered: absent by definition, fires immediately
	// (the For window is the condition, not a second wait).
	edges := e.Eval(10 * sec)
	if len(edges) != 1 || !edges[0].Firing || edges[0].Rule != "hb" {
		t.Fatalf("never-seen series: %+v", edges)
	}
	// Samples resume and keep coming for the hold-down (3s): clears.
	s := st.Series("heartbeat", Gauge)
	s.Append(11*sec, 1)
	if edges := e.Eval(11 * sec); len(edges) != 0 {
		t.Fatalf("cleared without hold-down: %+v", edges)
	}
	s.Append(12*sec, 1)
	e.Eval(12 * sec)
	s.Append(13*sec, 1)
	e.Eval(13 * sec)
	s.Append(14*sec, 1)
	edges = e.Eval(14 * sec)
	if len(edges) != 1 || edges[0].Firing {
		t.Fatalf("want clearing edge, got %+v", edges)
	}
	// Silence for the window fires again immediately.
	edges = e.Eval(17*sec + 1)
	if len(edges) != 1 || !edges[0].Firing {
		t.Fatalf("want re-fire after silence, got %+v", edges)
	}
}

func TestRateOfChangeRule(t *testing.T) {
	st := New(Options{})
	s := st.Series("pub_total", Counter)
	rules, err := ParseRules("hot: rate(pub_total) > 50 for 2s")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, rules, nil)
	// 10/s: below bound.
	v := int64(0)
	for at := int64(1); at <= 4; at++ {
		v += 10
		if edges := evalAt(e, s, at, v); len(edges) != 0 {
			t.Fatalf("fired at 10/s: %+v", edges)
		}
	}
	// Jump to 100/s; the mean window rate must cross 50 and hold 2s.
	var fired bool
	for at := int64(5); at <= 12 && !fired; at++ {
		v += 100
		fired = len(evalAt(e, s, at, v)) == 1
	}
	if !fired {
		t.Fatal("rate rule never fired at 100/s")
	}
	// No samples at all: rate rule stays quiet instead of erroring.
	st2 := New(Options{})
	e2 := NewEngine(st2, rules, nil)
	if edges := e2.Eval(1 * sec); len(edges) != 0 {
		t.Fatalf("rate rule fired on missing series: %+v", edges)
	}
}

func TestThresholdLess(t *testing.T) {
	st := New(Options{})
	s := st.Series("members", Gauge)
	rules, err := ParseRules("lonely: members < 2 for 1s")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, rules, nil)
	evalAt(e, s, 1, 5)
	evalAt(e, s, 2, 1)
	edges := evalAt(e, s, 3, 1)
	if len(edges) != 1 || !edges[0].Firing {
		t.Fatalf("less-than rule: %+v", edges)
	}
	if rules[0].Kind.String() != "threshold" {
		t.Fatalf("kind string %q", rules[0].Kind.String())
	}
	if (Rule{Kind: RateOfChange}).Kind.String() != "rate" || (Rule{Kind: Absent}).Kind.String() != "absent" {
		t.Fatal("kind strings")
	}
}
