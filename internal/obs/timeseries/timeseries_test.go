package timeseries

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"entitytrace/internal/obs"
)

const sec = int64(time.Second)

func TestAppendQueryRoundtrip(t *testing.T) {
	st := New(Options{})
	s := st.Series("x", Gauge)
	base := int64(1_000_000) * sec
	for i := int64(0); i < 300; i++ {
		s.Append(base+i*sec, i*i-40*i) // non-monotone values, negative deltas included
	}
	pts := s.Query(0, 0)
	if len(pts) != 300 {
		t.Fatalf("got %d points, want 300", len(pts))
	}
	for i, p := range pts {
		want := int64(i)*int64(i) - 40*int64(i)
		if p.T != base+int64(i)*sec || p.V != want {
			t.Fatalf("point %d = %+v, want T=%d V=%d", i, p, base+int64(i)*sec, want)
		}
	}
	if got := s.Latest(); got.V != 299*299-40*299 {
		t.Fatalf("Latest = %+v", got)
	}
}

func TestAppendDropsNonIncreasingTimestamps(t *testing.T) {
	st := New(Options{})
	s := st.Series("x", Gauge)
	s.Append(10*sec, 1)
	s.Append(10*sec, 2) // same timestamp: dropped
	s.Append(9*sec, 3)  // going backwards: dropped
	s.Append(11*sec, 4)
	pts := s.Query(0, 0)
	if len(pts) != 2 || pts[0].V != 1 || pts[1].V != 4 {
		t.Fatalf("got %+v, want [{10s 1} {11s 4}]", pts)
	}
}

func TestRetentionWraparound(t *testing.T) {
	// Retention 10s @ 1s -> 2 blocks of 128 samples; well before 600
	// appends the ring must wrap and discard the oldest block.
	st := New(Options{Step: time.Second, Retention: 10 * time.Second,
		CoarseStep: time.Hour, CoarseRetention: 2 * time.Hour})
	s := st.Series("x", Gauge)
	const n = 600
	for i := int64(0); i < n; i++ {
		s.Append(i*sec, i)
	}
	pts := s.Query((n-1)*sec, 0) // since == newest: fine ring answers
	if len(pts) != 1 || pts[0].V != n-1 {
		t.Fatalf("newest query = %+v", pts)
	}
	all := s.Query(599*sec-5*sec, 0)
	// Everything returned must be contiguous and correct after the wrap.
	for i := 1; i < len(all); i++ {
		if all[i].T != all[i-1].T+sec || all[i].V != all[i-1].V+1 {
			t.Fatalf("discontinuity at %d: %+v -> %+v", i, all[i-1], all[i])
		}
	}
	if last := all[len(all)-1]; last.V != n-1 {
		t.Fatalf("last = %+v, want V=%d", last, n-1)
	}
	// The ring holds at most 2 blocks x 128 samples; the start of history
	// must have been discarded.
	fineAll := s.fine.decode()
	if len(fineAll) > 2*blockSamples {
		t.Fatalf("fine ring retained %d samples, cap is %d", len(fineAll), 2*blockSamples)
	}
	if fineAll[0].T == 0 {
		t.Fatalf("oldest sample survived %d appends; ring did not wrap", n)
	}
}

func TestDownsampleBoundary(t *testing.T) {
	// Coarse step 10s: each coarse point must be the closing (last fine)
	// sample before a 10s boundary.
	st := New(Options{Step: time.Second, Retention: 10 * time.Second,
		CoarseStep: 10 * time.Second, CoarseRetention: time.Hour})
	s := st.Series("x", Counter)
	const n = 1000
	for i := int64(0); i < n; i++ {
		s.Append(i*sec, i*3)
	}
	coarse := s.coarse.decode()
	if len(coarse) == 0 {
		t.Fatal("no coarse samples after 1000 fine appends")
	}
	for _, p := range coarse {
		// Boundary closing sample: timestamp ends a 10s bucket (t = 10k-1
		// seconds for this 1s cadence) and the value is the fine value then.
		if (p.T/sec+1)%10 != 0 {
			t.Fatalf("coarse point %+v not at a bucket-closing second", p)
		}
		if p.V != (p.T/sec)*3 {
			t.Fatalf("coarse point %+v: want V=%d", p, (p.T/sec)*3)
		}
	}
	// A query reaching past the fine ring's retention must fall through to
	// coarse history and stay sorted across the junction.
	all := s.Query(0, 0)
	if all[0].T >= s.fine.oldest() {
		t.Fatalf("deep query lost coarse history: starts at %d, fine oldest %d", all[0].T, s.fine.oldest())
	}
	for i := 1; i < len(all); i++ {
		if all[i].T <= all[i-1].T {
			t.Fatalf("merged query not sorted at %d: %d then %d", i, all[i-1].T, all[i].T)
		}
	}
}

func TestQueryStepThinning(t *testing.T) {
	st := New(Options{})
	s := st.Series("x", Gauge)
	const base = 1000
	for i := int64(0); i < 30; i++ {
		s.Append((base+i)*sec, i)
	}
	pts := s.Query(0, 10*sec)
	// Last point of each 10s bucket: t=1009, t=1019, t=1029.
	want := []int64{9, 19, 29}
	if len(pts) != len(want) {
		t.Fatalf("got %d points %+v, want %v", len(pts), pts, want)
	}
	for i, p := range pts {
		if p.T != (base+want[i])*sec || p.V != want[i] {
			t.Fatalf("point %d = %+v, want t=%ds", i, p, base+want[i])
		}
	}
}

func TestCounterResetReanchor(t *testing.T) {
	pts := []Point{
		{T: 0, V: 100},
		{T: sec, V: 150},    // +50/s
		{T: 2 * sec, V: 5},  // reset: re-anchor, rate 0
		{T: 3 * sec, V: 25}, // +20/s
	}
	rates := Rate(pts)
	if len(rates) != 3 {
		t.Fatalf("got %d rates, want 3", len(rates))
	}
	if rates[0].V != 50 || rates[1].V != 0 || rates[2].V != 20 {
		t.Fatalf("rates = %+v, want [50 0 20]", rates)
	}
	if got := Rate(pts[:1]); got != nil {
		t.Fatalf("Rate of one point = %+v, want nil", got)
	}
}

func TestAppendZeroAllocs(t *testing.T) {
	st := New(Options{})
	s := st.Series("hot", Counter)
	tNanos := int64(0)
	v := int64(0)
	// Warm up past the first block so the run covers block rollover too.
	for i := 0; i < blockSamples+1; i++ {
		tNanos += sec
		v += 7
		s.Append(tNanos, v)
	}
	avg := testing.AllocsPerRun(2000, func() {
		tNanos += sec
		v += 7
		s.Append(tNanos, v)
	})
	if avg != 0 {
		t.Fatalf("steady-state Append allocates %.2f allocs/op, want 0", avg)
	}
}

func TestConcurrentAppendQuery(t *testing.T) {
	// Exercised under -race by `make telemetry`: concurrent appenders on
	// distinct and shared series racing readers.
	st := New(Options{Step: time.Millisecond, Retention: 100 * time.Millisecond})
	var appenders, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		appenders.Add(1)
		go func(g int) {
			defer appenders.Done()
			own := st.Series(fmt.Sprintf("own-%d", g), Gauge)
			shared := st.Series("shared", Counter)
			for i := int64(1); i < 3000; i++ {
				own.Append(i*int64(time.Millisecond), i)
				shared.Append(i*int64(time.Millisecond)+int64(g), i)
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, name := range st.Names() {
				s := st.Get(name)
				_ = s.Query(0, 10*int64(time.Millisecond))
				_ = s.Latest()
			}
		}
	}()
	appenders.Wait()
	close(stop)
	readers.Wait()
	if got := len(st.Names()); got != 5 {
		t.Fatalf("got %d series, want 5", got)
	}
}

func TestParseRetention(t *testing.T) {
	o, err := ParseRetention("15m@1s/2h@15s")
	if err != nil {
		t.Fatal(err)
	}
	if o.Retention != 15*time.Minute || o.Step != time.Second ||
		o.CoarseRetention != 2*time.Hour || o.CoarseStep != 15*time.Second {
		t.Fatalf("parsed %+v", o)
	}
	if o, err = ParseRetention(""); err != nil || o.Step != time.Second {
		t.Fatalf("empty retention: %+v, %v", o, err)
	}
	for _, bad := range []string{"15m@1s", "x@1s/2h@15s", "15m@1s/2h", "1s@15m/2h@15s", "15m/2h"} {
		if _, err := ParseRetention(bad); err == nil {
			t.Errorf("ParseRetention(%q) accepted", bad)
		}
	}
}

func TestSamplerSampleOnce(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("reqs_total")
	g := reg.Gauge("depth")
	h := reg.Histogram("rtt_ms", nil)
	st := New(Options{})
	sm := NewSampler(reg, st, time.Second)
	now := time.Unix(1000, 0)

	sm.SampleOnce(now) // histogram empty: only _count appears
	c.Add(5)
	g.Set(42)
	h.Observe(3.5)
	sm.SampleOnce(now.Add(time.Second))

	if s := st.Get("reqs_total"); s == nil || s.Kind() != Counter || s.Latest().V != 5 {
		t.Fatalf("reqs_total = %+v", s)
	}
	if s := st.Get("depth"); s == nil || s.Kind() != Gauge || s.Latest().V != 42 {
		t.Fatalf("depth = %+v", s)
	}
	if s := st.Get("rtt_ms_count"); s == nil || s.Latest().V != 1 {
		t.Fatalf("rtt_ms_count = %+v", s)
	}
	// Millisecond histograms export microsecond quantile gauges; the
	// quantile is bucket-interpolated, so bound it rather than pin it.
	if s := st.Get("rtt_p50_us"); s == nil || s.Latest().V < 3000 || s.Latest().V > 5000 {
		t.Fatalf("rtt_p50_us = %+v", s)
	}
	if s := st.Get("rtt_p99_us"); s == nil {
		t.Fatal("rtt_p99_us missing")
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("ticks_total")
	st := New(Options{})
	sm := NewSampler(reg, st, 5*time.Millisecond)
	sm.Start()
	sm.Start() // idempotent
	c.Add(1)
	deadline := time.Now().Add(2 * time.Second)
	for st.Get("ticks_total") == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	sm.Stop()
	sm.Stop() // idempotent
	if st.Get("ticks_total") == nil {
		t.Fatal("sampler never sampled")
	}
	if sm.Store() != st || sm.Interval() != 5*time.Millisecond {
		t.Fatal("accessors disagree")
	}
}

func TestHistQuantileNames(t *testing.T) {
	if p50, p99 := histQuantileNames("ping_rtt_ms"); p50 != "ping_rtt_p50_us" || p99 != "ping_rtt_p99_us" {
		t.Fatalf("got %s %s", p50, p99)
	}
	if p50, _ := histQuantileNames("odd"); p50 != "odd_p50_x1000" {
		t.Fatalf("got %s", p50)
	}
}
