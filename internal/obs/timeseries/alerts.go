package timeseries

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"entitytrace/internal/obs"
)

// This file is the rule-driven anomaly engine on top of the store:
// threshold, rate-of-change and absence-of-heartbeat rules, evaluated
// once per sampler tick. Alerts are edge-triggered with a hold-down —
// the condition must hold for the rule's 'for' window before the single
// firing edge, and must stay false for the 'hold' window before the
// single clearing edge — mirroring the availability ledger's flap
// damping, so a metric oscillating around its threshold raises one
// alert episode, not a storm.

// RuleKind selects a rule's condition.
type RuleKind uint8

const (
	// Threshold compares the series' latest value against Value.
	Threshold RuleKind = iota
	// RateOfChange compares the series' per-second rate over the 'for'
	// window against Value (counters re-anchor across resets).
	RateOfChange
	// Absent fires when the series has recorded no sample within the
	// 'for' window — the absence-of-heartbeat rule.
	Absent
)

// String names the kind (the grammar's spelling).
func (k RuleKind) String() string {
	switch k {
	case RateOfChange:
		return "rate"
	case Absent:
		return "absent"
	default:
		return "threshold"
	}
}

// Rule is one parsed alert rule (see ParseRules for the grammar).
type Rule struct {
	// Name labels the rule in alerts and logs (defaults to the rule's
	// source text).
	Name string
	// Series is the store series the condition reads.
	Series string
	// Kind selects the condition.
	Kind RuleKind
	// Less inverts the comparison to < (Threshold and RateOfChange).
	Less bool
	// Value is the comparison bound (unused for Absent).
	Value float64
	// For is how long the condition must hold before the firing edge;
	// for Absent it is the silence window itself.
	For time.Duration
	// Hold is how long the condition must stay false before the
	// clearing edge (zero selects For).
	Hold time.Duration
}

func (r Rule) holdDown() time.Duration {
	if r.Hold > 0 {
		return r.Hold
	}
	return r.For
}

// ParseRules parses a semicolon-separated rule list, the -alert-rules
// flag grammar (PROTOCOL.md §3.10):
//
//	rules := rule (';' rule)*
//	rule  := [name ':'] cond 'for' dur ['hold' dur]
//	cond  := series ('>'|'<') number        threshold on the latest value
//	       | rate '(' series ')' ('>'|'<') number   per-second rate over the for-window
//	       | absent '(' series ')'          no sample within the for-window
//
// e.g. "deep-queues: broker_egress_queue_depth > 100 for 2s hold 10s;
// absent(broker_published_total) for 5s". Whitespace is insignificant.
func ParseRules(s string) ([]Rule, error) {
	var out []Rule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func parseRule(s string) (Rule, error) {
	r := Rule{Name: s}
	body := s
	// An explicit name ends at the first ':' (series names never carry
	// one; a rate(...) or absent(...) call never precedes it).
	if i := strings.IndexByte(s, ':'); i >= 0 {
		r.Name = strings.TrimSpace(s[:i])
		body = strings.TrimSpace(s[i+1:])
		if r.Name == "" || body == "" {
			return r, fmt.Errorf("timeseries: rule %q: empty name or body", s)
		}
	}
	fields := strings.Fields(body)
	// Re-join, then split on the 'for' keyword from the right so the
	// condition text keeps its own spacing-insensitive parse.
	forIdx := -1
	for i, f := range fields {
		if f == "for" {
			forIdx = i
		}
	}
	if forIdx < 0 || forIdx == len(fields)-1 {
		return r, fmt.Errorf("timeseries: rule %q: missing 'for <duration>'", s)
	}
	var err error
	if r.For, err = time.ParseDuration(fields[forIdx+1]); err != nil || r.For <= 0 {
		return r, fmt.Errorf("timeseries: rule %q: bad for-duration %q", s, fields[forIdx+1])
	}
	rest := fields[forIdx+2:]
	switch {
	case len(rest) == 0:
	case len(rest) == 2 && rest[0] == "hold":
		if r.Hold, err = time.ParseDuration(rest[1]); err != nil || r.Hold <= 0 {
			return r, fmt.Errorf("timeseries: rule %q: bad hold-duration %q", s, rest[1])
		}
	default:
		return r, fmt.Errorf("timeseries: rule %q: trailing %q", s, strings.Join(rest, " "))
	}
	cond := strings.Join(fields[:forIdx], " ")
	return parseCond(r, s, cond)
}

func parseCond(r Rule, src, cond string) (Rule, error) {
	if inner, ok := callArg(cond, "absent"); ok {
		r.Kind = Absent
		r.Series = inner
		return r, nil
	}
	lhs, op, rhs, err := splitCompare(cond)
	if err != nil {
		return r, fmt.Errorf("timeseries: rule %q: %w", src, err)
	}
	r.Less = op == '<'
	if r.Value, err = strconv.ParseFloat(rhs, 64); err != nil {
		return r, fmt.Errorf("timeseries: rule %q: bad bound %q", src, rhs)
	}
	if inner, ok := callArg(lhs, "rate"); ok {
		r.Kind = RateOfChange
		r.Series = inner
		return r, nil
	}
	r.Kind = Threshold
	r.Series = lhs
	if r.Series == "" {
		return r, fmt.Errorf("timeseries: rule %q: empty series", src)
	}
	return r, nil
}

// callArg extracts X from "fn(X)" (nil-tolerant of spaces).
func callArg(s, fn string) (string, bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, fn+"(") || !strings.HasSuffix(s, ")") {
		return "", false
	}
	inner := strings.TrimSpace(s[len(fn)+1 : len(s)-1])
	return inner, inner != ""
}

func splitCompare(cond string) (lhs string, op byte, rhs string, err error) {
	gt := strings.IndexByte(cond, '>')
	lt := strings.IndexByte(cond, '<')
	switch {
	case gt >= 0 && lt < 0:
		return strings.TrimSpace(cond[:gt]), '>', strings.TrimSpace(cond[gt+1:]), nil
	case lt >= 0 && gt < 0:
		return strings.TrimSpace(cond[:lt]), '<', strings.TrimSpace(cond[lt+1:]), nil
	default:
		return "", 0, "", fmt.Errorf("condition %q: want one of '>' or '<', or absent(series)", cond)
	}
}

// Alert is one edge or standing state of a rule.
type Alert struct {
	// Rule is the rule's name.
	Rule string `json:"rule"`
	// Series is the series the rule watches.
	Series string `json:"series"`
	// Firing is true while the alert stands (a clearing edge reports
	// false).
	Firing bool `json:"firing"`
	// SinceNanos is when the firing edge happened; it identifies the
	// episode (two alerts with equal Rule and SinceNanos are the same
	// episode).
	SinceNanos int64 `json:"since_nanos"`
	// Value is the observed value at the most recent evaluation.
	Value float64 `json:"value"`
}

type ruleState struct {
	condSince  int64 // when the condition last became true (0: false)
	clearSince int64 // while firing, when it last became false
	firedAt    int64 // episode start (0: not firing)
	lastValue  float64
}

// mAlertsFiring is the number of alert rules currently firing,
// process-wide (every engine adds its own firing count).
var mAlertsFiring = obs.Default.Gauge("obs_alerts_firing")

// Engine evaluates a rule set against a store. Call Eval once per
// sampler tick; it returns only the edges (fire/clear transitions) and
// Firing returns the standing set for telemetry snapshots.
type Engine struct {
	store  *Store
	rules  []Rule
	states []ruleState
	log    *obs.Logger
}

// NewEngine builds an engine over store with rules; log (nil-safe)
// receives one structured line per edge.
func NewEngine(store *Store, rules []Rule, log *obs.Logger) *Engine {
	return &Engine{store: store, rules: rules, states: make([]ruleState, len(rules)), log: log}
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule { return e.rules }

// Eval evaluates every rule at nowNanos and returns the edges: one
// Alert per rule that fired or cleared this evaluation.
func (e *Engine) Eval(nowNanos int64) []Alert {
	var edges []Alert
	for i := range e.rules {
		r := &e.rules[i]
		st := &e.states[i]
		cond, value, immediate := e.condition(r, nowNanos)
		st.lastValue = value
		if st.firedAt == 0 {
			// Idle: arm on condition, fire after it holds For (absence
			// already encodes its window, so it fires on the spot).
			if !cond {
				st.condSince = 0
				continue
			}
			if st.condSince == 0 {
				st.condSince = nowNanos
			}
			if !immediate && nowNanos-st.condSince < int64(r.For) {
				continue
			}
			st.firedAt = nowNanos
			st.clearSince = 0
			mAlertsFiring.Add(1)
			e.log.Warn("alert firing", "rule", r.Name, "series", r.Series,
				"kind", r.Kind.String(), "value", value)
			edges = append(edges, Alert{Rule: r.Name, Series: r.Series, Firing: true,
				SinceNanos: st.firedAt, Value: value})
			continue
		}
		// Firing: clear only after the condition stays false for the
		// hold-down window (flap damping).
		if cond {
			st.clearSince = 0
			continue
		}
		if st.clearSince == 0 {
			st.clearSince = nowNanos
		}
		if nowNanos-st.clearSince < int64(r.holdDown()) {
			continue
		}
		since := st.firedAt
		st.firedAt, st.condSince, st.clearSince = 0, 0, 0
		mAlertsFiring.Add(-1)
		e.log.Info("alert cleared", "rule", r.Name, "series", r.Series,
			"kind", r.Kind.String(), "value", value)
		edges = append(edges, Alert{Rule: r.Name, Series: r.Series, Firing: false,
			SinceNanos: since, Value: value})
	}
	return edges
}

// Firing returns the currently standing alerts (for telemetry snapshot
// rows), ordered like the rule set.
func (e *Engine) Firing() []Alert {
	var out []Alert
	for i := range e.rules {
		if st := &e.states[i]; st.firedAt != 0 {
			r := &e.rules[i]
			out = append(out, Alert{Rule: r.Name, Series: r.Series, Firing: true,
				SinceNanos: st.firedAt, Value: st.lastValue})
		}
	}
	return out
}

// condition evaluates one rule: the boolean, the observed value, and
// whether a true condition fires immediately (absence rules, whose
// window is the condition itself).
func (e *Engine) condition(r *Rule, nowNanos int64) (cond bool, value float64, immediate bool) {
	s := e.store.Get(r.Series)
	switch r.Kind {
	case Absent:
		if s == nil {
			// Never seen at all: absent by definition.
			return true, 0, true
		}
		last := s.Latest()
		return nowNanos-last.T >= int64(r.For), float64(last.V), true
	case RateOfChange:
		if s == nil {
			return false, 0, false
		}
		pts := s.Query(nowNanos-int64(r.For)-int64(e.store.opts.Step), 0)
		rates := Rate(pts)
		if len(rates) == 0 {
			return false, 0, false
		}
		// The window's mean rate: total positive movement over elapsed
		// time, robust to tick jitter.
		var sum float64
		for _, fp := range rates {
			sum += fp.V
		}
		value = sum / float64(len(rates))
		return compare(value, r), value, false
	default:
		if s == nil {
			return false, 0, false
		}
		p := s.Latest()
		if p.T == 0 {
			return false, 0, false
		}
		value = float64(p.V)
		return compare(value, r), value, false
	}
}

func compare(v float64, r *Rule) bool {
	if r.Less {
		return v < r.Value
	}
	return v > r.Value
}
