// Package timeseries is the in-process metric history behind the fleet
// telemetry plane (PROTOCOL.md §3.10): a bounded, lock-light store of
// named series sampled from an obs.Registry on a ticker. Each series
// keeps its points in a fixed ring of compressed blocks — delta-of-delta
// timestamps and zigzag-varint values, the Gorilla/TSDB trick — at two
// resolutions: a fine ring (default 1 s step, 15 m retention) and a
// coarse downsampled ring (default 15 s step, 2 h retention) fed by the
// fine one at each coarse boundary. Steady-state appends write varints
// into preallocated block buffers and perform zero heap allocations.
//
// The package depends only on the standard library and internal/obs.
package timeseries

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"entitytrace/internal/obs"
)

// Kind distinguishes cumulative counters (rates are meaningful, resets
// re-anchor) from instantaneous gauges.
type Kind uint8

const (
	// Gauge samples are instantaneous values.
	Gauge Kind = iota
	// Counter samples are cumulative monotonic counts; a decrease means
	// the process restarted and consumers re-anchor instead of spiking.
	Counter
)

// String names the kind.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Options configures a Store's two retention rings.
type Options struct {
	// Step is the fine ring's expected sampling period (default 1s).
	Step time.Duration
	// Retention is how far back the fine ring reaches (default 15m).
	Retention time.Duration
	// CoarseStep is the downsampled ring's period (default 15s).
	CoarseStep time.Duration
	// CoarseRetention is the downsampled ring's reach (default 2h).
	CoarseRetention time.Duration
}

func (o *Options) setDefaults() {
	if o.Step <= 0 {
		o.Step = time.Second
	}
	if o.Retention <= 0 {
		o.Retention = 15 * time.Minute
	}
	if o.CoarseStep <= 0 {
		o.CoarseStep = 15 * time.Second
	}
	if o.CoarseRetention <= 0 {
		o.CoarseRetention = 2 * time.Hour
	}
}

// blockSamples is how many samples one compressed block holds. 128
// samples per block keeps the per-block decode cost trivial while the
// ring granularity (one block is overwritten at a time) stays well under
// a minute at the default 1 s step.
const blockSamples = 128

// block is one compressed run of samples. The first sample is held in
// the header fields; every later sample appends two zigzag varints
// (delta-of-delta timestamp, value delta) to buf, whose capacity is
// preallocated for the worst case so appends never grow it.
type block struct {
	buf          []byte
	n            int
	t0, v0       int64
	lastT, lastV int64
	prevDT       int64
}

func (b *block) reset() {
	b.buf = b.buf[:0]
	b.n = 0
}

func (b *block) append(t, v int64) {
	if b.n == 0 {
		b.t0, b.v0 = t, v
		b.lastT, b.lastV = t, v
		b.prevDT = 0
		b.n = 1
		return
	}
	dt := t - b.lastT
	b.buf = appendZigzag(b.buf, dt-b.prevDT)
	b.buf = appendZigzag(b.buf, v-b.lastV)
	b.prevDT = dt
	b.lastT, b.lastV = t, v
	b.n++
}

func (b *block) full() bool { return b.n >= blockSamples }

// Point is one decoded sample: a unix-nano timestamp and an integer
// value (gauges verbatim; counters cumulative).
type Point struct {
	T int64 `json:"t"`
	V int64 `json:"v"`
}

// decodeInto appends the block's samples to dst.
func (b *block) decodeInto(dst []Point) []Point {
	if b.n == 0 {
		return dst
	}
	dst = append(dst, Point{T: b.t0, V: b.v0})
	t, v := b.t0, b.v0
	var dt int64
	buf := b.buf
	for i := 1; i < b.n; i++ {
		dod, n := readZigzag(buf)
		buf = buf[n:]
		dv, n := readZigzag(buf)
		buf = buf[n:]
		dt += dod
		t += dt
		v += dv
		dst = append(dst, Point{T: t, V: v})
	}
	return dst
}

// appendZigzag appends v zigzag-encoded as a uvarint.
func appendZigzag(buf []byte, v int64) []byte {
	return binary.AppendUvarint(buf, uint64((v<<1)^(v>>63)))
}

// readZigzag decodes one zigzag uvarint, returning the value and the
// bytes consumed.
func readZigzag(buf []byte) (int64, int) {
	u, n := binary.Uvarint(buf)
	return int64(u>>1) ^ -int64(u&1), n
}

// ring is a fixed circle of blocks; when the current block fills, the
// oldest is reset and overwritten.
type ring struct {
	blocks []block
	cur    int
}

func newRing(samples int) *ring {
	n := (samples+blockSamples-1)/blockSamples + 1
	r := &ring{blocks: make([]block, n)}
	for i := range r.blocks {
		// Worst case per sample: two maximal varints.
		r.blocks[i].buf = make([]byte, 0, blockSamples*2*binary.MaxVarintLen64)
	}
	return r
}

func (r *ring) append(t, v int64) {
	if r.blocks[r.cur].full() {
		r.cur = (r.cur + 1) % len(r.blocks)
		r.blocks[r.cur].reset()
	}
	r.blocks[r.cur].append(t, v)
}

// decode returns every retained sample, oldest first.
func (r *ring) decode() []Point {
	var out []Point
	n := len(r.blocks)
	for i := 1; i <= n; i++ {
		out = r.blocks[(r.cur+i)%n].decodeInto(out)
	}
	return out
}

// oldest returns the earliest retained timestamp (0 when empty).
func (r *ring) oldest() int64 {
	n := len(r.blocks)
	for i := 1; i <= n; i++ {
		if b := &r.blocks[(r.cur+i)%n]; b.n > 0 {
			return b.t0
		}
	}
	return 0
}

// Series is one named metric's history at both resolutions. Appends
// take the series lock only; different series never contend.
type Series struct {
	name string
	kind Kind

	mu         sync.Mutex
	fine       *ring
	coarse     *ring
	coarseStep int64
	nextCoarse int64 // next coarse boundary, 0 before the first sample
	lastT      int64
	lastV      int64
	count      uint64
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Kind returns the series kind.
func (s *Series) Kind() Kind { return s.kind }

// Append records one sample. Timestamps must be non-decreasing; a
// sample at or before the previous one is dropped (ticker jitter and
// restarts, not time travel). Steady-state appends allocate nothing.
func (s *Series) Append(tNanos, v int64) {
	s.mu.Lock()
	if s.count > 0 && tNanos <= s.lastT {
		s.mu.Unlock()
		return
	}
	// Downsample on boundary crossing: the coarse ring records the last
	// fine sample before each coarse boundary, so a coarse point is the
	// closing value of its bucket (counters: the cumulative count as of
	// the boundary; gauges: the last observed level).
	if s.nextCoarse == 0 {
		s.nextCoarse = (tNanos/s.coarseStep + 1) * s.coarseStep
	} else if tNanos >= s.nextCoarse {
		s.coarse.append(s.lastT, s.lastV)
		s.nextCoarse = (tNanos/s.coarseStep + 1) * s.coarseStep
	}
	s.fine.append(tNanos, v)
	s.lastT, s.lastV = tNanos, v
	s.count++
	s.mu.Unlock()
}

// Latest returns the most recent sample (zero Point when empty).
func (s *Series) Latest() Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return Point{}
	}
	return Point{T: s.lastT, V: s.lastV}
}

// Query returns retained samples at or after sinceNanos, oldest first,
// thinned to at most one point per step (stepNanos <= 0 keeps the
// native resolution). The fine ring answers when it still reaches back
// to sinceNanos; older queries fall through to the coarse ring.
func (s *Series) Query(sinceNanos, stepNanos int64) []Point {
	s.mu.Lock()
	var pts []Point
	fineOldest := s.fine.oldest()
	if fineOldest != 0 && sinceNanos >= fineOldest {
		pts = s.fine.decode()
	} else {
		// Coarse boundary points at or after the fine ring's oldest sample
		// duplicate fine samples; keep only the older history so the merged
		// result stays sorted.
		for _, p := range s.coarse.decode() {
			if fineOldest == 0 || p.T < fineOldest {
				pts = append(pts, p)
			}
		}
		pts = append(pts, s.fine.decode()...)
	}
	s.mu.Unlock()
	kept := pts[:0]
	for _, p := range pts {
		if p.T >= sinceNanos {
			kept = append(kept, p)
		}
	}
	return alignStep(kept, stepNanos)
}

// alignStep keeps the last point of every step bucket.
func alignStep(pts []Point, step int64) []Point {
	if step <= 0 || len(pts) == 0 {
		return pts
	}
	out := pts[:0]
	for i, p := range pts {
		if i+1 < len(pts) && pts[i+1].T/step == p.T/step {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Store holds every series of one process (or one assembled fleet
// view). Series lookup is read-locked; callers on hot paths capture the
// *Series handle once.
type Store struct {
	opts Options

	mu     sync.RWMutex
	series map[string]*Series
}

// New creates a store with opts (zero-value fields take defaults).
func New(opts Options) *Store {
	opts.setDefaults()
	return &Store{opts: opts, series: make(map[string]*Series)}
}

// Options returns the store's resolved retention configuration.
func (st *Store) Options() Options { return st.opts }

// Series returns the series registered under name, creating it with
// the given kind on first use (an existing series keeps its kind).
func (st *Store) Series(name string, kind Kind) *Series {
	st.mu.RLock()
	s, ok := st.series[name]
	st.mu.RUnlock()
	if ok {
		return s
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if s, ok = st.series[name]; ok {
		return s
	}
	fineSamples := int(st.opts.Retention / st.opts.Step)
	coarseSamples := int(st.opts.CoarseRetention / st.opts.CoarseStep)
	s = &Series{
		name:       name,
		kind:       kind,
		fine:       newRing(fineSamples),
		coarse:     newRing(coarseSamples),
		coarseStep: int64(st.opts.CoarseStep),
	}
	st.series[name] = s
	return s
}

// Get returns the series registered under name, or nil.
func (st *Store) Get(name string) *Series {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.series[name]
}

// Names returns every registered series name in lexical order.
func (st *Store) Names() []string {
	st.mu.RLock()
	names := make([]string, 0, len(st.series))
	for n := range st.series {
		names = append(names, n)
	}
	st.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Each calls f for every registered series in lexical name order.
func (st *Store) Each(f func(*Series)) {
	for _, n := range st.Names() {
		if s := st.Get(n); s != nil {
			f(s)
		}
	}
}

// FPoint is one rate sample: a unix-nano timestamp and a per-second
// floating-point rate.
type FPoint struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Rate converts cumulative counter points into per-second rates between
// consecutive samples. A negative delta means the counter reset (the
// process restarted mid-stream): the rate re-anchors at zero for that
// interval instead of spiking hugely negative or wrapping.
func Rate(pts []Point) []FPoint {
	if len(pts) < 2 {
		return nil
	}
	out := make([]FPoint, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dt := pts[i].T - pts[i-1].T
		if dt <= 0 {
			continue
		}
		dv := pts[i].V - pts[i-1].V
		if dv < 0 {
			dv = 0 // counter reset: re-anchor, don't spike
		}
		out = append(out, FPoint{T: pts[i].T, V: float64(dv) / (float64(dt) / 1e9)})
	}
	return out
}

// Sampler periodically copies an obs.Registry into a Store: counters
// and gauges verbatim under their registry names, histograms as a
// _count counter plus p50/p99 gauges in thousandths of the histogram's
// unit (so the default millisecond histograms yield microsecond series,
// suffixed _us).
type Sampler struct {
	reg      *obs.Registry
	store    *Store
	interval time.Duration
	now      func() time.Time

	mu   sync.Mutex
	done chan struct{}
	wg   sync.WaitGroup
}

// NewSampler builds a sampler feeding store from reg every interval.
func NewSampler(reg *obs.Registry, store *Store, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = store.opts.Step
	}
	return &Sampler{reg: reg, store: store, interval: interval, now: time.Now}
}

// Store returns the store the sampler feeds.
func (sm *Sampler) Store() *Store { return sm.store }

// Interval returns the sampling period.
func (sm *Sampler) Interval() time.Duration { return sm.interval }

// SampleOnce copies the registry's current values into the store at
// the given instant; the ticker loop calls it every interval and tests
// call it directly.
func (sm *Sampler) SampleOnce(now time.Time) {
	t := now.UnixNano()
	snap := sm.reg.Snapshot()
	for name, v := range snap.Counters {
		sm.store.Series(name, Counter).Append(t, int64(v))
	}
	for name, v := range snap.Gauges {
		sm.store.Series(name, Gauge).Append(t, v)
	}
	for name, h := range snap.Histograms {
		sm.store.Series(name+"_count", Counter).Append(t, int64(h.Count))
		if h.Count == 0 {
			continue
		}
		p50, p99 := histQuantileNames(name)
		sm.store.Series(p50, Gauge).Append(t, int64(h.P50*1000))
		sm.store.Series(p99, Gauge).Append(t, int64(h.P99*1000))
	}
}

// histQuantileNames derives the quantile series names for histogram
// name: millisecond histograms (the repo convention, suffix _ms) yield
// _p50_us/_p99_us microsecond series; anything else gets a _x1000
// fixed-point marker.
func histQuantileNames(name string) (p50, p99 string) {
	if base, ok := strings.CutSuffix(name, "_ms"); ok {
		return base + "_p50_us", base + "_p99_us"
	}
	return name + "_p50_x1000", name + "_p99_x1000"
}

// Start launches the ticker loop.
func (sm *Sampler) Start() {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.done != nil {
		return
	}
	sm.done = make(chan struct{})
	done := sm.done
	sm.wg.Add(1)
	go func() {
		defer sm.wg.Done()
		tick := time.NewTicker(sm.interval)
		defer tick.Stop()
		for {
			select {
			case now := <-tick.C:
				sm.SampleOnce(now)
			case <-done:
				return
			}
		}
	}()
}

// Stop halts the ticker loop and waits for it to exit.
func (sm *Sampler) Stop() {
	sm.mu.Lock()
	done := sm.done
	sm.done = nil
	sm.mu.Unlock()
	if done != nil {
		close(done)
		sm.wg.Wait()
	}
}

// ParseRetention parses a "fine@step/coarse@step" retention flag, e.g.
// "15m@1s/2h@15s", into Options. An empty string returns defaults.
func ParseRetention(s string) (Options, error) {
	var o Options
	if s == "" {
		o.setDefaults()
		return o, nil
	}
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return o, fmt.Errorf("timeseries: retention %q: want fine@step/coarse@step", s)
	}
	var err error
	if o.Retention, o.Step, err = parseRetPart(parts[0]); err != nil {
		return o, err
	}
	if o.CoarseRetention, o.CoarseStep, err = parseRetPart(parts[1]); err != nil {
		return o, err
	}
	o.setDefaults()
	return o, nil
}

func parseRetPart(s string) (ret, step time.Duration, err error) {
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return 0, 0, fmt.Errorf("timeseries: retention part %q: want retention@step", s)
	}
	if ret, err = time.ParseDuration(s[:at]); err != nil {
		return 0, 0, fmt.Errorf("timeseries: retention part %q: %w", s, err)
	}
	if step, err = time.ParseDuration(s[at+1:]); err != nil {
		return 0, 0, fmt.Errorf("timeseries: retention part %q: %w", s, err)
	}
	if ret <= 0 || step <= 0 || ret < step {
		return 0, 0, fmt.Errorf("timeseries: retention part %q: retention must cover at least one step", s)
	}
	return ret, step, nil
}
