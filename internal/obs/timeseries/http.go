package timeseries

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"entitytrace/internal/obs"
)

// SeriesDump is one series' slice of a /timeseries response.
type SeriesDump struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
	// Rates accompanies counter series: the per-second rate between
	// consecutive points, reset-re-anchored.
	Rates []FPoint `json:"rates,omitempty"`
}

// Handler serves GET /timeseries over a store:
//
//	?series=a,b   comma-separated names (empty lists every name, no points)
//	?since=5m     lookback duration, or absolute unix seconds
//	?step=15s     thinning step (empty keeps native resolution)
//	?format=prom  Prometheus-style range text instead of JSON
//
// JSON responses are {"series":[{name,kind,points:[{t,v}],rates:...}]};
// the prom format emits one "name value timestamp_ms" sample per line,
// families separated by a # comment — the text shape of a range query,
// scrapeable by anything that reads exposition samples.
func Handler(store *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		names := splitNames(q.Get("series"))
		if len(names) == 0 {
			// Name listing: the discovery call tracectl and humans start
			// from.
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"series": store.Names()})
			return
		}
		since, err := parseSince(q.Get("since"), time.Now())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var step int64
		if v := q.Get("step"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				http.Error(w, fmt.Sprintf("timeseries: bad step %q", v), http.StatusBadRequest)
				return
			}
			step = int64(d)
		}
		var dumps []SeriesDump
		for _, name := range names {
			s := store.Get(name)
			if s == nil {
				http.Error(w, fmt.Sprintf("timeseries: unknown series %q", name), http.StatusNotFound)
				return
			}
			d := SeriesDump{Name: name, Kind: s.Kind().String(), Points: s.Query(since, step)}
			if s.Kind() == Counter {
				d.Rates = Rate(d.Points)
			}
			dumps = append(dumps, d)
		}
		if q.Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			for _, d := range dumps {
				fmt.Fprintf(w, "# %s %s\n", d.Name, d.Kind)
				for _, p := range d.Points {
					fmt.Fprintf(w, "%s %d %d\n", d.Name, p.V, p.T/int64(time.Millisecond))
				}
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"series": dumps})
	})
}

// MountRegistry is the one-line daemon wiring for the telemetry plane's
// local store: it builds a store with the given retention (empty keeps
// defaults), starts a sampler of reg into it at interval, and mounts
// the /timeseries handler on mux. A non-positive interval disables
// sampling and mounts nothing. The returned sampler (nil when disabled)
// should be stopped at shutdown.
func MountRegistry(mux *http.ServeMux, reg *obs.Registry, interval time.Duration, retention string) (*Sampler, error) {
	if interval <= 0 || mux == nil {
		return nil, nil
	}
	var opts Options
	if retention != "" {
		var err error
		if opts, err = ParseRetention(retention); err != nil {
			return nil, err
		}
	}
	store := New(opts)
	mux.Handle("/timeseries", Handler(store))
	s := NewSampler(reg, store, interval)
	s.Start()
	return s, nil
}

func splitNames(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseSince accepts a lookback duration ("5m") or absolute unix
// seconds; empty means everything retained.
func parseSince(s string, now time.Time) (int64, error) {
	if s == "" {
		return 0, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		if d < 0 {
			d = -d
		}
		return now.Add(-d).UnixNano(), nil
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return sec * int64(time.Second), nil
	}
	return 0, fmt.Errorf("timeseries: bad since %q (want duration or unix seconds)", s)
}
