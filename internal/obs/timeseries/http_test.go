package timeseries

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"entitytrace/internal/obs"
)

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestHandlerListingAndQuery(t *testing.T) {
	st := New(Options{})
	g := st.Series("depth", Gauge)
	c := st.Series("pub_total", Counter)
	for i := int64(1); i <= 5; i++ {
		g.Append(i*sec, i*10)
		c.Append(i*sec, i*100)
	}
	h := Handler(st)

	// No series param: name listing.
	code, body := get(t, h, "/timeseries")
	if code != http.StatusOK {
		t.Fatalf("listing: %d %s", code, body)
	}
	var listing struct {
		Series []string `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Series) != 2 || listing.Series[0] != "depth" {
		t.Fatalf("listing = %+v", listing)
	}

	// Query both; the counter carries rates.
	code, body = get(t, h, "/timeseries?series=depth,pub_total&step=1s")
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	var resp struct {
		Series []SeriesDump `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Series) != 2 {
		t.Fatalf("got %d series", len(resp.Series))
	}
	if d := resp.Series[0]; d.Kind != "gauge" || len(d.Points) != 5 || d.Rates != nil {
		t.Fatalf("depth dump = %+v", d)
	}
	if d := resp.Series[1]; d.Kind != "counter" || len(d.Rates) != 4 || d.Rates[0].V != 100 {
		t.Fatalf("pub_total dump = %+v", d)
	}

	// Prom text format.
	code, body = get(t, h, "/timeseries?series=depth&format=prom")
	if code != http.StatusOK || !strings.Contains(body, "# depth gauge\n") ||
		!strings.Contains(body, "depth 50 5000\n") {
		t.Fatalf("prom format: %d %q", code, body)
	}

	// Errors.
	if code, _ = get(t, h, "/timeseries?series=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown series: %d", code)
	}
	if code, _ = get(t, h, "/timeseries?series=depth&step=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad step: %d", code)
	}
	if code, _ = get(t, h, "/timeseries?series=depth&since=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad since: %d", code)
	}
}

func TestParseSince(t *testing.T) {
	now := time.Unix(10_000, 0)
	if got, err := parseSince("", now); err != nil || got != 0 {
		t.Fatalf("empty since: %d %v", got, err)
	}
	if got, err := parseSince("5m", now); err != nil || got != now.Add(-5*time.Minute).UnixNano() {
		t.Fatalf("duration since: %d %v", got, err)
	}
	if got, err := parseSince("9000", now); err != nil || got != 9000*sec {
		t.Fatalf("unix since: %d %v", got, err)
	}
}

func TestMountRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("reqs_total").Add(3)
	mux := http.NewServeMux()
	sampler, err := MountRegistry(mux, reg, 5*time.Millisecond, "1m@5ms/10m@1s")
	if err != nil {
		t.Fatal(err)
	}
	if sampler == nil {
		t.Fatal("sampler nil")
	}
	defer sampler.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for sampler.Store().Get("reqs_total") == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	code, body := get(t, mux, "/timeseries?series=reqs_total")
	if code != http.StatusOK || !strings.Contains(body, `"name":"reqs_total"`) {
		t.Fatalf("mounted handler: %d %s", code, body)
	}

	// Disabled or unmountable: nil sampler, no error.
	if s, err := MountRegistry(mux, reg, 0, ""); s != nil || err != nil {
		t.Fatalf("interval 0: %v %v", s, err)
	}
	if s, err := MountRegistry(nil, reg, time.Second, ""); s != nil || err != nil {
		t.Fatalf("nil mux: %v %v", s, err)
	}
	// Bad retention propagates.
	if _, err := MountRegistry(http.NewServeMux(), reg, time.Second, "bogus"); err == nil {
		t.Fatal("bad retention accepted")
	}
}
