// Package obs is the always-on observability layer: a lock-cheap metrics
// registry (atomic counters, gauges, fixed-bucket latency histograms), a
// leveled structured logger with secret redaction, and HTTP exposure for
// daemons (/metrics, /healthz, /debug/pprof). Every hot-path component
// (transport, broker routing, envelope crypto, the trace manager) reports
// into the package-level Default registry so a single endpoint can
// reconstruct the paper's per-hop cost breakdown (§5) on a live system.
//
// The package depends only on the standard library and internal/stats.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (peer counts, session counts).
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments (or, negative n, decrements) the gauge.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds named metrics. Lookup is read-locked and metrics cache
// their handle at the call site, so steady-state updates are purely
// atomic; the write lock is only taken on first registration of a name.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the instrumented packages report
// into and the daemons expose over /metrics.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on
// first use. Instrumented packages should capture the returned handle in
// a package variable rather than calling Counter per update.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (nil buckets selects
// DefaultLatencyBuckets). Bounds of an existing histogram are not
// changed.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(buckets)
	r.hists[name] = h
	return h
}

// WithLabel renders a flat metric name carrying one label, in the
// conventional name{key="value"} form, so related counters (e.g. drop
// reasons) group together in the exposition.
func WithLabel(name, key, value string) string {
	// Escape for the text exposition format, not Go syntax: %q would
	// render non-ASCII and control characters as Go escapes no
	// exposition parser understands.
	return name + "{" + key + `="` + escapeLabelValue(value) + `"}`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	snap := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for n, c := range counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		snap.Histograms[n] = h.Snapshot()
	}
	return snap
}

// sortedKeys returns map keys in lexical order for stable exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// baseName strips a {label} suffix from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
