package obs

import (
	"fmt"
	"sort"
	"strings"
)

// escapeLabelValue escapes a label value for the text exposition
// format: backslash, double quote and newline are the only characters
// the format requires escaping.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// histogramUnitSuffixes are the unit suffixes CheckNames accepts on
// histogram names — every quantity needs a unit a reader can trust.
var histogramUnitSuffixes = []string{"_ms", "_us", "_ns", "_seconds", "_bytes"}

// CheckNames lints every metric name in a snapshot against the
// conventions this codebase (and the Prometheus ecosystem) relies on:
//
//   - base names match [a-zA-Z_][a-zA-Z0-9_]*
//   - counters end in _total; gauges and histograms do not
//   - histograms carry a unit suffix (ms/us/ns/seconds/bytes)
//   - no base name is registered under more than one metric kind
//
// It returns one human-readable violation per problem (empty when
// clean); a unit test over the process registry keeps new metrics
// honest.
func CheckNames(snap Snapshot) []string {
	var out []string
	kinds := map[string]string{} // base -> kind first seen
	note := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	check := func(names []string, kind string) {
		for _, name := range names {
			base := baseName(name)
			if !validMetricName(base) {
				note("%s %q: base name %q is not a valid metric name", kind, name, base)
			}
			if prev, ok := kinds[base]; ok && prev != kind {
				note("%s %q: base name %q already registered as a %s", kind, name, base, prev)
			} else {
				kinds[base] = kind
			}
			switch kind {
			case "counter":
				if !strings.HasSuffix(base, "_total") {
					note("counter %q: missing _total suffix", name)
				}
			case "gauge", "histogram":
				if strings.HasSuffix(base, "_total") {
					note("%s %q: _total suffix is reserved for counters", kind, name)
				}
			}
			if kind == "histogram" {
				ok := false
				for _, suf := range histogramUnitSuffixes {
					if strings.HasSuffix(base, suf) {
						ok = true
						break
					}
				}
				if !ok {
					note("histogram %q: missing unit suffix (one of %s)",
						name, strings.Join(histogramUnitSuffixes, " "))
				}
			}
		}
	}
	check(sortedKeys(snap.Counters), "counter")
	check(sortedKeys(snap.Gauges), "gauge")
	check(sortedKeys(snap.Histograms), "histogram")
	sort.Strings(out)
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
