package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightTraceRoundTrip(t *testing.T) {
	tr := FlightTrace{0x0f, 0x3c, 0xaa, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d}
	s := tr.String()
	if len(s) != 36 {
		t.Fatalf("canonical form has length %d: %q", len(s), s)
	}
	back, err := ParseFlightTrace(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != tr {
		t.Fatalf("round trip changed trace: %s != %s", back, tr)
	}
	if _, err := ParseFlightTrace("not-a-uuid"); err == nil {
		t.Fatal("malformed trace id accepted")
	}
	var zero FlightTrace
	if !zero.IsZero() || tr.IsZero() {
		t.Fatal("IsZero wrong")
	}
	b, err := json.Marshal(zero)
	if err != nil || string(b) != "null" {
		t.Fatalf("zero trace marshals to %q (%v), want null", b, err)
	}
}

func TestFlightKindJSON(t *testing.T) {
	for k := FlightIngress; k <= FlightQuarantine; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back FlightKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("kind %s round-tripped to %s", k, back)
		}
	}
	var k FlightKind
	if err := json.Unmarshal([]byte(`"bogus"`), &k); err == nil {
		t.Fatal("unknown kind name accepted")
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	r := NewFlightRecorder("b0", 4, 1)
	for i := 0; i < 10; i++ {
		r.Record(FlightEvent{Kind: FlightIngress, AtNanos: int64(i + 1), N: i})
	}
	if got := r.Head(); got != 10 {
		t.Fatalf("head = %d, want 10", got)
	}
	evs := r.Events(FlightFilter{})
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Oldest first, and only the newest 4 survive the wrap.
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderFilters(t *testing.T) {
	r := NewFlightRecorder("b0", 64, 1)
	t1 := FlightTrace{1}
	t2 := FlightTrace{2}
	r.Record(FlightEvent{Kind: FlightIngress, Trace: t1, AtNanos: 1})
	r.Record(FlightEvent{Kind: FlightDrop, Trace: t2, AtNanos: 2})
	r.Record(FlightEvent{Kind: FlightRoute, Trace: t1, AtNanos: 3})

	byTrace := r.Events(FlightFilter{Trace: t1})
	if len(byTrace) != 2 || byTrace[0].Kind != FlightIngress || byTrace[1].Kind != FlightRoute {
		t.Fatalf("trace filter returned %+v", byTrace)
	}
	since := r.Events(FlightFilter{Since: 2})
	if len(since) != 1 || since[0].Seq != 3 {
		t.Fatalf("since filter returned %+v", since)
	}
	last := r.Events(FlightFilter{Last: 1})
	if len(last) != 1 || last[0].Seq != 3 {
		t.Fatalf("last filter returned %+v", last)
	}
}

func TestFlightSampling(t *testing.T) {
	r := NewFlightRecorder("b0", 8, 4)
	hits := 0
	for i := 0; i < 400; i++ {
		if r.Sampled() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 sampling hit %d of 400", hits)
	}
	every := NewFlightRecorder("b0", 8, 1)
	for i := 0; i < 10; i++ {
		if !every.Sampled() {
			t.Fatal("sampleN=1 must record everything")
		}
	}
}

func TestNilFlightRecorderIsNoop(t *testing.T) {
	var r *FlightRecorder
	if r.Sampled() {
		t.Fatal("nil recorder sampled")
	}
	r.Record(FlightEvent{Kind: FlightDrop}) // must not panic
	if r.Head() != 0 || r.Events(FlightFilter{}) != nil || r.Node() != "" || r.SampleN() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder("b0", 128, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if r.Sampled() {
					r.Record(FlightEvent{Kind: FlightIngress, AtNanos: int64(i + 1)})
				}
				_ = r.Events(FlightFilter{Last: 5})
			}
		}()
	}
	wg.Wait()
	if r.Head() == 0 {
		t.Fatal("nothing recorded")
	}
}

func TestFlightDumpJSONRoundTrip(t *testing.T) {
	r := NewFlightRecorder("hb1", 16, 1)
	r.Record(FlightEvent{Kind: FlightIngress, Trace: FlightTrace{9}, Peer: "entity-1", Topic: "/t", AtNanos: 5})
	r.Record(FlightEvent{Kind: FlightGuard, Trace: FlightTrace{9}, Cache: "hit", DurNanos: 1200, AtNanos: 6})
	r.Record(FlightEvent{Kind: FlightDrop, Peer: "x", Reason: "unauthorized_topic", AtNanos: 7})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, FlightFilter{}); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFlightDump(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d.Node != "hb1" || d.Head != 3 || len(d.Events) != 3 {
		t.Fatalf("parsed dump %+v", d)
	}
	if d.Events[1].Kind != FlightGuard || d.Events[1].Cache != "hit" || d.Events[1].DurNanos != 1200 {
		t.Fatalf("guard event did not survive: %+v", d.Events[1])
	}
	if d.Events[0].Trace != (FlightTrace{9}) {
		t.Fatalf("trace id did not survive: %+v", d.Events[0])
	}
	if _, err := ParseFlightDump([]byte(`{"node":"x","events":[{"kind":"bogus"}]}`)); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestFlightHandler(t *testing.T) {
	r := NewFlightRecorder("hb0", 16, 1)
	tr := FlightTrace{7}
	r.Record(FlightEvent{Kind: FlightIngress, Trace: tr, AtNanos: 1})
	r.Record(FlightEvent{Kind: FlightRoute, Trace: tr, AtNanos: 2})
	r.Record(FlightEvent{Kind: FlightIngress, Trace: FlightTrace{8}, AtNanos: 3})
	srv := httptest.NewServer(FlightHandler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/trace?id=" + tr.String() + "&last=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFlightDump(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 2 {
		t.Fatalf("id filter returned %d events, want 2", len(d.Events))
	}

	for _, bad := range []string{"?id=zzz", "?last=-1", "?since=x"} {
		resp, err := srv.Client().Get(srv.URL + "/trace" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("%s answered %d, want 400", bad, resp.StatusCode)
		}
	}

	off := httptest.NewServer(FlightHandler(nil))
	defer off.Close()
	resp2, err := off.Client().Get(off.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 503 {
		t.Fatalf("nil recorder answered %d, want 503", resp2.StatusCode)
	}
}

func TestFlightRecordStampsTime(t *testing.T) {
	r := NewFlightRecorder("b0", 4, 1)
	before := time.Now().UnixNano()
	r.Record(FlightEvent{Kind: FlightEvict, Peer: "p"})
	ev := r.Events(FlightFilter{})[0]
	if ev.AtNanos < before {
		t.Fatalf("AtNanos %d not stamped", ev.AtNanos)
	}
	if !strings.Contains(ev.Kind.String(), "evict") {
		t.Fatalf("kind renders as %q", ev.Kind)
	}
}

// FuzzParseFlightDump hammers the /trace JSON parser (the format
// tracectl consumes): it must never panic, and any dump it accepts must
// re-encode and re-parse to the same event count and kinds.
func FuzzParseFlightDump(f *testing.F) {
	r := NewFlightRecorder("hb0", 8, 1)
	r.Record(FlightEvent{Kind: FlightIngress, Trace: FlightTrace{1}, Peer: "entity-1", Topic: "/Constrained/Traces/x", AtNanos: 1})
	r.Record(FlightEvent{Kind: FlightGuard, Cache: "miss", DurNanos: 900, Reason: "token expired", AtNanos: 2})
	r.Record(FlightEvent{Kind: FlightRoute, N: 2, N2: 1, AtNanos: 3})
	r.Record(FlightEvent{Kind: FlightShed, Peer: "hb1", N: 17, AtNanos: 4})
	var buf bytes.Buffer
	_ = r.WriteJSON(&buf, FlightFilter{})
	f.Add(buf.Bytes())
	f.Add([]byte(`{"node":"","head":0,"events":[]}`))
	f.Add([]byte(`{"events":[{"kind":"quarantine","trace_id":null}]}`))
	f.Add([]byte(`{"events":[{"kind":"drop","trace_id":"00000000-0000-0000-0000-000000000001"}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseFlightDump(data)
		if err != nil {
			return
		}
		re, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("accepted dump does not re-encode: %v", err)
		}
		back, err := ParseFlightDump(re)
		if err != nil {
			t.Fatalf("re-encoded dump does not re-parse: %v", err)
		}
		if len(back.Events) != len(d.Events) {
			t.Fatal("round trip changed event count")
		}
		for i := range d.Events {
			if back.Events[i].Kind != d.Events[i].Kind || back.Events[i].Trace != d.Events[i].Trace {
				t.Fatal("round trip changed event identity")
			}
		}
	})
}
