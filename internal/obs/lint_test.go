package obs

import (
	"strings"
	"testing"
)

func TestEscapeLabelValue(t *testing.T) {
	for in, want := range map[string]string{
		"plain":        "plain",
		`back\slash`:   `back\\slash`,
		`qu"ote`:       `qu\"ote`,
		"new\nline":    `new\nline`,
		"uni-✓-code":   "uni-✓-code",
		`all\"` + "\n": `all\\\"\n`,
	} {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
	if got := WithLabel("drops_total", "reason", `ba"d`); got != `drops_total{reason="ba\"d"}` {
		t.Errorf("WithLabel = %q", got)
	}
}

func TestCheckNamesClean(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("traces_published_total")
	reg.Counter(WithLabel("drops_total", "reason", "expired"))
	reg.Gauge("egress_queue_depth")
	reg.Histogram("ping_rtt_ms", nil)
	reg.Histogram("frame_size_bytes", nil)
	if v := CheckNames(reg.Snapshot()); len(v) != 0 {
		t.Fatalf("clean registry flagged: %v", v)
	}
}

func TestCheckNamesViolations(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("missing_suffix")   // counter without _total
	reg.Gauge("wrong_total")        // gauge with _total
	reg.Gauge("9starts_with_digit") // invalid base name
	reg.Histogram("latency", nil)   // histogram without a unit
	reg.Histogram("shadow_ms", nil) // same base under two kinds...
	reg.Gauge("shadow_ms")          // ...gauge shadows the histogram
	v := CheckNames(reg.Snapshot())
	wantSubstrings := []string{
		`counter "missing_suffix": missing _total suffix`,
		`gauge "wrong_total": _total suffix is reserved`,
		`"9starts_with_digit" is not a valid metric name`,
		`histogram "latency": missing unit suffix`,
		`already registered as a`,
	}
	for _, want := range wantSubstrings {
		found := false
		for _, got := range v {
			if strings.Contains(got, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no violation matching %q in %v", want, v)
		}
	}
	if len(v) != len(wantSubstrings) {
		t.Errorf("got %d violations, want %d: %v", len(v), len(wantSubstrings), v)
	}
}

func TestValidMetricName(t *testing.T) {
	for name, want := range map[string]bool{
		"ok_name":  true,
		"_leading": true,
		"CamelOK9": true,
		"":         false,
		"9lead":    false,
		"has-dash": false,
		"has.dot":  false,
	} {
		if got := validMetricName(name); got != want {
			t.Errorf("validMetricName(%q) = %v, want %v", name, got, want)
		}
	}
}
