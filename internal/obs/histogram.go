package obs

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"entitytrace/internal/stats"
)

// DefaultLatencyBuckets are histogram upper bounds in milliseconds,
// spanning sub-10µs crypto operations to multi-second stalls. An
// implicit +Inf overflow bucket always exists.
var DefaultLatencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
}

// Histogram is a fixed-bucket latency histogram. Bucket increments are
// atomic; mean/stddev/min/max reuse the Welford accumulator from
// internal/stats behind a short-critical-section mutex, so concurrent
// Observe calls are cheap and race-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has len(bounds)+1 (overflow)
	counts []atomic.Uint64

	mu     sync.Mutex
	sample *stats.Sample
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
		sample: stats.NewSample(false),
	}
}

// Observe records one value (milliseconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[idx].Add(1)
	h.mu.Lock()
	h.sample.Add(v)
	h.mu.Unlock()
}

// ObserveDuration records a duration in milliseconds, the unit of the
// paper's evaluation tables.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Time runs f and records its wall duration.
func (h *Histogram) Time(f func()) {
	start := time.Now()
	f()
	h.ObserveDuration(time.Since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// BucketCount is one cumulative bucket of a snapshot. Le is the
// formatted upper bound ("+Inf" for the overflow bucket) so the snapshot
// marshals to JSON without infinities.
type BucketCount struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time summary: Welford moments plus
// cumulative buckets and bucket-interpolated percentiles.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Mean    float64       `json:"mean"`
	StdDev  float64       `json:"stddev"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot summarizes the histogram. Bucket counts and the Welford
// moments are read without a global pause, so under concurrent writers
// the two views may differ by in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	raw := make([]uint64, len(h.counts))
	for i := range h.counts {
		raw[i] = h.counts[i].Load()
	}
	h.mu.Lock()
	snap := HistogramSnapshot{
		Count:  uint64(h.sample.N()),
		Mean:   h.sample.Mean(),
		StdDev: h.sample.StdDev(),
		Min:    h.sample.Min(),
		Max:    h.sample.Max(),
	}
	h.mu.Unlock()

	var cum uint64
	snap.Buckets = make([]BucketCount, 0, len(raw))
	for i, c := range raw {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatBound(h.bounds[i])
		}
		snap.Buckets = append(snap.Buckets, BucketCount{Le: le, Count: cum})
	}
	snap.P50 = h.quantile(raw, cum, 0.50, snap.Max)
	snap.P90 = h.quantile(raw, cum, 0.90, snap.Max)
	snap.P95 = h.quantile(raw, cum, 0.95, snap.Max)
	snap.P99 = h.quantile(raw, cum, 0.99, snap.Max)
	return snap
}

// quantile estimates the q-th quantile by linear interpolation inside
// the first bucket whose cumulative count reaches the target rank. The
// overflow bucket reports the observed maximum.
func (h *Histogram) quantile(raw []uint64, total uint64, q, max float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range raw {
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) {
			return max
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return max
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
