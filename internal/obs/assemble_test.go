package obs

import (
	"math/rand"
	"reflect"
	"testing"
)

// hopsAt builds a hop list from (node, timestamp) pairs.
func hopsAt(pairs ...any) []HopRecord {
	var out []HopRecord
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, HopRecord{Node: pairs[i].(string), AtNanos: int64(pairs[i+1].(int))})
	}
	return out
}

func TestAssembleEmptyAndSingle(t *testing.T) {
	if a := Assemble(nil); a.TotalNanos != 0 || len(a.Segments) != 0 {
		t.Fatalf("empty assembly = %+v", a)
	}
	a := Assemble(hopsAt("only", 100))
	if a.TotalNanos != 0 || len(a.Segments) != 0 || a.SkewNanos != 0 {
		t.Fatalf("single-hop assembly = %+v", a)
	}
}

func TestAssembleWellOrdered(t *testing.T) {
	a := Assemble(hopsAt("entity", 0, "hb0", 100, "hb1", 250, "tracker", 400))
	if a.TotalNanos != 400 {
		t.Fatalf("total = %d, want 400", a.TotalNanos)
	}
	if a.SkewNanos != 0 || a.Scaled {
		t.Fatalf("clean flow reported skew/scaling: %+v", a)
	}
	want := []Segment{
		{From: "entity", To: "hb0", Nanos: 100, RawNanos: 100},
		{From: "hb0", To: "hb1", Nanos: 150, RawNanos: 150},
		{From: "hb1", To: "tracker", Nanos: 150, RawNanos: 150},
	}
	if !reflect.DeepEqual(a.Segments, want) {
		t.Fatalf("segments = %+v", a.Segments)
	}
}

// TestAssembleSkewClamped: a middle node's clock runs behind, producing
// a negative raw delta. The attribution clamps it, accounts the skew,
// and rescales the rest so the segments still sum to the anchored total.
func TestAssembleSkewClamped(t *testing.T) {
	a := Assemble(hopsAt("entity", 0, "hb0", 300, "hb1", 200, "tracker", 500))
	if a.TotalNanos != 500 {
		t.Fatalf("total = %d, want anchor 500", a.TotalNanos)
	}
	if a.SkewNanos != 100 {
		t.Fatalf("skew = %d, want 100", a.SkewNanos)
	}
	if !a.Scaled {
		t.Fatal("clamped flow not marked scaled")
	}
	var sum int64
	for _, s := range a.Segments {
		if s.Nanos < 0 {
			t.Fatalf("negative attribution: %+v", s)
		}
		sum += s.Nanos
	}
	if sum != a.TotalNanos {
		t.Fatalf("segments sum to %d, want %d", sum, a.TotalNanos)
	}
	if a.Segments[1].RawNanos != -100 {
		t.Fatalf("raw delta = %d, want -100 preserved", a.Segments[1].RawNanos)
	}
}

// TestAssembleInvertedAnchor: the first hop's clock is ahead of the
// last's, so even the flow's total is unmeasurable; the clamped deltas
// are the best estimate and nothing is scaled against the bogus anchor.
func TestAssembleInvertedAnchor(t *testing.T) {
	a := Assemble(hopsAt("entity", 1000, "hb0", 1100, "tracker", 900))
	if a.TotalNanos != 100 {
		t.Fatalf("total = %d, want clamped-delta sum 100", a.TotalNanos)
	}
	if a.SkewNanos != 200+100 {
		t.Fatalf("skew = %d, want 300 (inverted segment + inverted anchor)", a.SkewNanos)
	}
	if a.Scaled {
		t.Fatal("inverted anchor must not claim scaled attribution")
	}
}

// TestAssembleZeroDeltaPrefix: identical timestamps on the early hops
// (sub-resolution processing) contribute nothing; the final segment
// carries the whole anchored duration without any rescaling.
func TestAssembleZeroDeltaPrefix(t *testing.T) {
	a := Assemble(hopsAt("a", 0, "b", 0, "c", 0, "d", 900))
	if a.TotalNanos != 900 {
		t.Fatalf("total = %d, want 900", a.TotalNanos)
	}
	var sum int64
	for _, s := range a.Segments {
		sum += s.Nanos
	}
	if sum != 900 || a.Scaled || a.SkewNanos != 0 {
		t.Fatalf("segments sum = %d scaled=%v skew=%d, want 900/false/0", sum, a.Scaled, a.SkewNanos)
	}
	if last := a.Segments[len(a.Segments)-1]; last.Nanos != 900 {
		t.Fatalf("final segment = %+v, want the full 900", last)
	}
}

// TestMergeHopsChaosReorder reconstructs traversal order from hop sets
// delivered out of order — the chaos injector's reorder fault applied to
// span fragments gathered from several brokers. Any seeded shuffle of
// any partition into sub-lists must assemble identically to the in-order
// flow.
func TestMergeHopsChaosReorder(t *testing.T) {
	ordered := hopsAt("entity", 10, "hb0", 120, "hb1", 240, "hb2", 380, "tracker", 500)
	want := Assemble(ordered)
	rng := rand.New(rand.NewSource(42)) // fixed seed: failures replay
	for round := 0; round < 50; round++ {
		shuffled := append([]HopRecord(nil), ordered...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		// Partition into 1..3 fragments, as if recovered from several
		// brokers' flight recorders.
		cut1 := rng.Intn(len(shuffled) + 1)
		cut2 := cut1 + rng.Intn(len(shuffled)+1-cut1)
		merged := MergeHops(shuffled[:cut1], shuffled[cut1:cut2], shuffled[cut2:])
		if !reflect.DeepEqual(merged, ordered) {
			t.Fatalf("round %d: merged = %+v, want traversal order", round, merged)
		}
		if got := Assemble(merged); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: reordered assembly = %+v, want %+v", round, got, want)
		}
	}
}

func TestMergeHopsDeduplicates(t *testing.T) {
	a := hopsAt("entity", 10, "hb0", 120)
	b := hopsAt("hb0", 120, "hb1", 240) // hb0@120 repeated across fragments
	merged := MergeHops(a, b)
	want := hopsAt("entity", 10, "hb0", 120, "hb1", 240)
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged = %+v, want exact duplicates removed", merged)
	}
	// Same node at a new timestamp is a genuine revisit, not a duplicate.
	revisit := MergeHops(hopsAt("hb0", 120, "hb0", 130))
	if len(revisit) != 2 {
		t.Fatalf("revisit collapsed: %+v", revisit)
	}
}

func TestMergeHopsStableOnTies(t *testing.T) {
	// Equal timestamps on different nodes: stable sort keeps first-seen
	// order within the tie instead of flapping between runs.
	merged := MergeHops(hopsAt("a", 100, "b", 100, "c", 50))
	want := hopsAt("c", 50, "a", 100, "b", 100)
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged = %+v, want stable tie order", merged)
	}
}
