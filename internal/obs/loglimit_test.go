package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for limiter tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLogLimiterSuppression(t *testing.T) {
	var buf strings.Builder
	clk := &fakeClock{t: time.Unix(1000, 0)}
	lim := NewLogLimiter(NewLogger(&buf, LevelInfo, false), time.Second, clk.now)

	// First line per key admits.
	lim.Warn("peer-a", "boom", "n", 1)
	lim.Warn("peer-b", "boom")
	if got := strings.Count(buf.String(), "boom"); got != 2 {
		t.Fatalf("first lines: %d admitted, want 2", got)
	}

	// A storm inside the interval is swallowed per key.
	for i := 0; i < 50; i++ {
		lim.Warn("peer-a", "boom")
	}
	if got := strings.Count(buf.String(), "boom"); got != 2 {
		t.Fatalf("storm leaked: %d lines", got)
	}

	// After the interval the next line admits and carries the count.
	clk.advance(time.Second)
	lim.Warn("peer-a", "boom")
	out := buf.String()
	if got := strings.Count(out, "boom"); got != 3 {
		t.Fatalf("post-interval: %d lines", got)
	}
	if !strings.Contains(out, "suppressed=50") {
		t.Fatalf("missing suppressed count in %q", out)
	}

	// A quiet key admits with no suppressed keyval.
	clk.advance(time.Second)
	buf.Reset()
	lim.Info("peer-a", "calm")
	if out := buf.String(); !strings.Contains(out, "calm") || strings.Contains(out, "suppressed") {
		t.Fatalf("quiet line = %q", out)
	}
}

func TestLogLimiterNilSafety(t *testing.T) {
	var lim *LogLimiter
	lim.Warn("k", "msg") // nil limiter: no-op, no panic
	lim.Info("k", "msg")

	// A limiter over a nil logger still counts but writes nowhere.
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l2 := NewLogLimiter(nil, 0, clk.now) // non-positive interval defaults
	l2.Warn("k", "msg")
	l2.Warn("k", "msg")
}

func TestLogLimiterKeyCap(t *testing.T) {
	var buf strings.Builder
	clk := &fakeClock{t: time.Unix(1000, 0)}
	lim := NewLogLimiter(NewLogger(&buf, LevelWarn, false), time.Second, clk.now)
	for i := 0; i < logLimiterMaxKeys; i++ {
		lim.state[string(rune('a'))+time.Duration(i).String()] = &limitState{last: clk.now()}
	}
	// Map full, nothing stale: the new key logs untracked.
	lim.Warn("overflow", "full")
	if !strings.Contains(buf.String(), "full") {
		t.Fatal("full-map line dropped")
	}
	if _, tracked := lim.state["overflow"]; tracked {
		t.Fatal("overflow key tracked past the cap")
	}
	// Once entries go stale the sweep reclaims room and tracks again.
	clk.advance(2 * time.Second)
	lim.Warn("overflow", "full")
	if _, tracked := lim.state["overflow"]; !tracked {
		t.Fatal("stale sweep did not reclaim room")
	}
	if len(lim.state) > logLimiterMaxKeys {
		t.Fatalf("state grew past cap: %d", len(lim.state))
	}
}
