package obs

import (
	"sync"
	"time"
)

// logLimiterMaxKeys bounds the limiter's per-key memory; when full,
// stale entries (older than one interval) are swept, and if none are
// stale the new key logs unthrottled without being tracked.
const logLimiterMaxKeys = 4096

// LogLimiter rate-limits repetitive structured log lines per key
// (typically a peer or entity name): at most one admitted line per key
// per interval. Lines dropped in between are counted, and the count
// rides on the next admitted line as a `suppressed` keyval — so a
// reconnect storm or a flood of rejected traces costs one line per
// second per peer instead of one per event, without hiding how big the
// storm was. A nil limiter is a silent no-op, and a limiter over a nil
// logger inherits the Logger's nil-safety.
type LogLimiter struct {
	log      *Logger
	interval time.Duration
	now      func() time.Time

	mu    sync.Mutex
	state map[string]*limitState
}

type limitState struct {
	last       time.Time
	suppressed int
}

// NewLogLimiter builds a limiter over log admitting one line per key
// per interval (non-positive selects one second). now may be nil (wall
// clock).
func NewLogLimiter(log *Logger, interval time.Duration, now func() time.Time) *LogLimiter {
	if interval <= 0 {
		interval = time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &LogLimiter{log: log, interval: interval, now: now, state: make(map[string]*limitState)}
}

// admit reports whether a line for key may log now and, when it may,
// how many lines were suppressed since the last admitted one.
func (l *LogLimiter) admit(key string) (ok bool, suppressed int) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state[key]
	if st == nil {
		if len(l.state) >= logLimiterMaxKeys {
			for k, s := range l.state {
				if now.Sub(s.last) >= l.interval {
					delete(l.state, k)
				}
			}
			if len(l.state) >= logLimiterMaxKeys {
				return true, 0
			}
		}
		l.state[key] = &limitState{last: now}
		return true, 0
	}
	if now.Sub(st.last) < l.interval {
		st.suppressed++
		return false, 0
	}
	st.last = now
	suppressed, st.suppressed = st.suppressed, 0
	return true, suppressed
}

// Warn logs msg at warn level, rate-limited per key; a `suppressed`
// keyval reports lines dropped since the key's last admitted line.
func (l *LogLimiter) Warn(key, msg string, keyvals ...any) {
	if l == nil {
		return
	}
	ok, suppressed := l.admit(key)
	if !ok {
		return
	}
	if suppressed > 0 {
		keyvals = append(keyvals, "suppressed", suppressed)
	}
	l.log.Warn(msg, keyvals...)
}

// Info logs msg at info level, rate-limited per key, like Warn.
func (l *LogLimiter) Info(key, msg string, keyvals ...any) {
	if l == nil {
		return
	}
	ok, suppressed := l.admit(key)
	if !ok {
		return
	}
	if suppressed > 0 {
		keyvals = append(keyvals, "suppressed", suppressed)
	}
	l.log.Info(msg, keyvals...)
}
