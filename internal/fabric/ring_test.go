package fabric

import (
	"fmt"
	"testing"
)

// shardKeys builds n synthetic shard keys.
func shardKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%06d", i)
	}
	return out
}

// TestRingDeterministicAcrossOrders verifies the core fabric invariant:
// every node computes identical ownership from the same member set, no
// matter what order it learned the members in.
func TestRingDeterministicAcrossOrders(t *testing.T) {
	orders := [][]string{
		{"b1", "b2", "b3", "b4"},
		{"b4", "b3", "b2", "b1"},
		{"b3", "b1", "b4", "b2"},
		{"b2", "b4", "b1", "b3", "b2", "b1"}, // duplicates collapse
	}
	rings := make([]*Ring, len(orders))
	for i, o := range orders {
		rings[i] = NewRing(o, 0)
	}
	for _, r := range rings {
		if r.Size() != 4 {
			t.Fatalf("ring size = %d, want 4", r.Size())
		}
	}
	for _, key := range shardKeys(2000) {
		want := rings[0].Owner(key)
		for i := 1; i < len(rings); i++ {
			if got := rings[i].Owner(key); got != want {
				t.Fatalf("ownership diverges for %q: ring0=%s ring%d=%s", key, want, i, got)
			}
		}
	}
}

// TestRingMinimalMovementOnJoin verifies the consistent-hashing
// property: one join moves roughly K/N of a 10k-topic keyspace and
// nothing more, and every moved topic moves TO the joiner.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	keys := shardKeys(10000)
	for n := 2; n <= 8; n *= 2 {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("b%02d", i)
		}
		before := NewRing(members, 0)
		joiner := "b99"
		after := NewRing(append(append([]string(nil), members...), joiner), 0)
		moved := 0
		for _, key := range keys {
			was, is := before.Owner(key), after.Owner(key)
			if was == is {
				continue
			}
			moved++
			if is != joiner {
				t.Fatalf("n=%d: key %q moved %s->%s, not to the joiner", n, key, was, is)
			}
		}
		// Expected movement is K/(N+1); allow 50% relative slack for
		// hash variance at DefaultVNodes.
		expect := len(keys) / (n + 1)
		if moved > expect+expect/2 {
			t.Fatalf("n=%d: join moved %d of %d keys, expected about %d", n, moved, len(keys), expect)
		}
		if moved == 0 {
			t.Fatalf("n=%d: join moved nothing — the joiner owns no keyspace", n)
		}
	}
}

// TestRingMinimalMovementOnLeave mirrors the join property: topics only
// move FROM the leaver, and only about K/N of them.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	keys := shardKeys(10000)
	members := []string{"b00", "b01", "b02", "b03"}
	before := NewRing(members, 0)
	leaver := "b02"
	after := NewRing([]string{"b00", "b01", "b03"}, 0)
	moved := 0
	for _, key := range keys {
		was, is := before.Owner(key), after.Owner(key)
		if was == is {
			continue
		}
		moved++
		if was != leaver {
			t.Fatalf("key %q moved %s->%s though %s left", key, was, is, leaver)
		}
	}
	expect := len(keys) / len(members)
	if moved > expect+expect/2 {
		t.Fatalf("leave moved %d of %d keys, expected about %d", moved, len(keys), expect)
	}
}

// TestRingBalance verifies virtual nodes spread a 10k-topic keyspace
// within ±15% of the fair share at every fabric size the bench runs.
func TestRingBalance(t *testing.T) {
	keys := shardKeys(10000)
	for _, n := range []int{2, 4, 8, 16} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("broker-%02d", i)
		}
		r := NewRing(members, 0)
		counts := make(map[string]int, n)
		for _, key := range keys {
			counts[r.Owner(key)]++
		}
		fair := float64(len(keys)) / float64(n)
		for _, m := range members {
			share := float64(counts[m])
			if share < fair*0.85 || share > fair*1.15 {
				t.Errorf("n=%d: %s owns %.0f topics, outside ±15%% of fair %.0f", n, m, share, fair)
			}
		}
	}
}

// TestRingOwnedPerMille checks the health-snapshot balance figure sums
// to roughly the whole circle and stays near fair share.
func TestRingOwnedPerMille(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := NewRing(members, 0)
	total := 0
	for _, m := range members {
		pm := r.ownedPerMille(m)
		if pm < 150 || pm > 350 {
			t.Errorf("%s owns %d permille, outside [150, 350]", m, pm)
		}
		total += pm
	}
	if total < 990 || total > 1010 {
		t.Errorf("shares sum to %d permille, want about 1000", total)
	}
	if got := r.ownedPerMille("nobody"); got != 0 {
		t.Errorf("unknown member owns %d permille, want 0", got)
	}
	if got := NewRing(nil, 0).ownedPerMille("a"); got != 0 {
		t.Errorf("empty ring owns %d permille, want 0", got)
	}
}

// TestRingEdgeCases pins empty and single-member behaviour.
func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if empty.Owner("anything") != "" {
		t.Error("empty ring returned an owner")
	}
	solo := NewRing([]string{"only"}, 4)
	for _, key := range shardKeys(100) {
		if got := solo.Owner(key); got != "only" {
			t.Fatalf("single-member ring routed %q to %q", key, got)
		}
	}
	if got := NewRing([]string{"", "x", ""}, 1).Size(); got != 1 {
		t.Errorf("empty names survived dedup: size %d, want 1", got)
	}
}
