package fabric

import (
	"sync"
	"sync/atomic"
)

// ShardFunc decides whether a topic is sharded and, if so, its shard
// key. The default (TraceShard) shards the per-trace-topic derivative
// class topics by their trace-topic UUID, so every derivative class of
// one entity co-locates on the same owner.
type ShardFunc func(ts string) (key string, sharded bool)

// Table is one epoch of the ownership map: an immutable ring plus a
// bounded per-topic route memo. Swapped atomically on membership
// change, so the publish hot path reads it without locks and in-flight
// messages route against a consistent epoch.
type Table struct {
	// Epoch numbers this ownership generation; it increments on every
	// live-set change and is carried in gossip, directory registrations
	// and health snapshots.
	Epoch uint64
	// Self is the local broker's name ("local" ownership).
	Self string

	ring  *Ring
	shard ShardFunc

	// memo caches Route per topic string. Topic strings are
	// publisher-controlled, so the memo is bounded like the broker's
	// propagation cache: past the cap answers are computed uncached.
	memo  sync.Map // string -> routeMemo
	memoN atomic.Int64
}

// routeMemoMax bounds the per-table route memo.
const routeMemoMax = 8192

type routeMemo struct {
	owner   string
	local   bool
	sharded bool
}

// NewTable builds the ownership table for one membership epoch.
func NewTable(epoch uint64, self string, members []string, vnodes int, shard ShardFunc) *Table {
	if shard == nil {
		shard = TraceShard
	}
	return &Table{
		Epoch: epoch,
		Self:  self,
		ring:  NewRing(members, vnodes),
		shard: shard,
	}
}

// Route maps a topic to its owner under this epoch. sharded=false means
// the topic is outside the partitioned space (system topics, wildcards,
// unconstrained app topics) and routes by ordinary subscription flood.
func (t *Table) Route(ts string) (owner string, local, sharded bool) {
	if v, ok := t.memo.Load(ts); ok {
		m := v.(routeMemo)
		return m.owner, m.local, m.sharded
	}
	var m routeMemo
	if key, ok := t.shard(ts); ok && t.ring.Size() > 0 {
		m = routeMemo{owner: t.ring.Owner(key), sharded: true}
		m.local = m.owner == t.Self
	}
	if t.memoN.Load() < routeMemoMax {
		if _, loaded := t.memo.LoadOrStore(ts, m); !loaded {
			t.memoN.Add(1)
		}
	}
	return m.owner, m.local, m.sharded
}

// Members returns the sorted live member set this table was built over.
func (t *Table) Members() []string { return t.ring.Members() }

// OwnedPerMille reports the local broker's share of the hash circle.
func (t *Table) OwnedPerMille() int { return t.ring.ownedPerMille(t.Self) }
