package fabric

import (
	"sort"
	"sync"
	"time"
)

// Row is one member's gossiped state: identity, how to dial it, a
// monotone heartbeat counter, and the Left tombstone for graceful
// departures. Rows merge by heartbeat maximum (anti-entropy), so any
// gossip path eventually converges every node to the same view.
type Row struct {
	Name      string
	Transport string
	Addr      string
	// Heartbeat is seeded from the member's start wall-clock (unix
	// nanoseconds) and advanced every gossip tick, so a restarted broker's
	// counter is monotone across incarnations and its fresh rows always
	// win the merge against stale pre-restart gossip.
	Heartbeat uint64
	// Left marks a graceful departure; a tombstoned row cannot be
	// resurrected by stale directory hints or old gossip.
	Left bool
}

// member is a Row plus the local observation clock used for failure
// detection: lastAdvance is when this node last saw the heartbeat move.
type member struct {
	Row
	lastAdvance time.Time
}

// Membership is one node's gossip-maintained view of the fabric. All
// methods are safe for concurrent use (the gossip loop and the broker's
// delivery goroutines both touch it).
type Membership struct {
	mu   sync.Mutex
	self string
	rows map[string]*member
}

// NewMembership seeds a view with the local member's own row. The
// heartbeat starts at the current wall-clock nanoseconds (see
// Row.Heartbeat).
func NewMembership(self Row, now time.Time) *Membership {
	self.Heartbeat = uint64(now.UnixNano())
	m := &Membership{self: self.Name, rows: make(map[string]*member)}
	m.rows[self.Name] = &member{Row: self, lastAdvance: now}
	return m
}

// Bump advances the local heartbeat. The max with the wall clock keeps
// the counter above any previous incarnation's even if that incarnation
// ticked for a long time.
func (m *Membership) Bump(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.rows[m.self]
	hb := s.Heartbeat + 1
	if wall := uint64(now.UnixNano()); wall > hb {
		hb = wall
	}
	s.Heartbeat = hb
	s.lastAdvance = now
}

// isLive reports whether a row counts as a live ring member: not
// tombstoned and confirmed by real gossip (a directory hint's zero
// heartbeat is a dial target, not a member — see Hint).
func isLive(r Row) bool { return !r.Left && r.Heartbeat > 0 }

// Merge folds gossiped rows into the view, keeping the entry-wise
// heartbeat maximum. It reports whether the live member set changed
// (a live member appeared, or one was tombstoned). Rows about the
// local member are ignored: only Bump and Leave speak for self.
func (m *Membership) Merge(rows []Row, now time.Time) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range rows {
		if r.Name == "" || r.Name == m.self {
			continue
		}
		cur, ok := m.rows[r.Name]
		if !ok {
			m.rows[r.Name] = &member{Row: r, lastAdvance: now}
			if isLive(r) {
				changed = true
			}
			continue
		}
		if r.Heartbeat <= cur.Heartbeat {
			continue
		}
		if isLive(r) != isLive(cur.Row) {
			changed = true
		}
		cur.Row = r
		cur.lastAdvance = now
	}
	return changed
}

// Hint seeds a member learned from the broker directory (which carries
// no heartbeat): unknown names join with a zero heartbeat, which makes
// them dial targets but not ring members until their own gossip
// confirms them — a stale directory entry for a dead broker must not
// pull it back into the ownership map. Known names (tombstones
// included) are untouched. It reports whether a new dial target
// appeared.
func (m *Membership) Hint(name, transportName, addr string, now time.Time) (changed bool) {
	if name == "" || name == m.self {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rows[name]; ok {
		return false
	}
	m.rows[name] = &member{
		Row:         Row{Name: name, Transport: transportName, Addr: addr},
		lastAdvance: now,
	}
	return true
}

// Sweep fails members whose heartbeat has not advanced within
// failAfter: live rows are deleted (crash detection), and old
// tombstones are garbage-collected once every node has had failAfter to
// observe them. It reports whether the live set changed.
func (m *Membership) Sweep(now time.Time, failAfter time.Duration) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, r := range m.rows {
		if name == m.self || now.Sub(r.lastAdvance) <= failAfter {
			continue
		}
		if isLive(r.Row) {
			changed = true
		}
		delete(m.rows, name)
	}
	return changed
}

// Leave tombstones the local member for a graceful departure; the
// caller gossips the resulting rows one final time.
func (m *Membership) Leave(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.rows[m.self]
	s.Heartbeat++
	if wall := uint64(now.UnixNano()); wall > s.Heartbeat {
		s.Heartbeat = wall
	}
	s.Left = true
	s.lastAdvance = now
}

// Live returns the live member names (gossip-confirmed, not
// tombstoned), sorted — the input to ring construction.
func (m *Membership) Live() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.rows))
	for _, r := range m.rows {
		if isLive(r.Row) {
			out = append(out, r.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Dialable returns every non-tombstoned member with a known address,
// self excluded — the link targets. Unconfirmed hints are included so
// the first dial can bootstrap the gossip exchange that confirms them.
func (m *Membership) Dialable() []Row {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Row, 0, len(m.rows))
	for _, r := range m.rows {
		if r.Name == m.self || r.Left || r.Addr == "" {
			continue
		}
		out = append(out, r.Row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Rows snapshots every row (tombstones included) for gossip.
func (m *Membership) Rows() []Row {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Row, 0, len(m.rows))
	for _, r := range m.rows {
		out = append(out, r.Row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns how to reach a live member.
func (m *Membership) Lookup(name string) (transportName, addr string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, found := m.rows[name]
	if !found || r.Left {
		return "", "", false
	}
	return r.Transport, r.Addr, true
}
