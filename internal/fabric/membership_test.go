package fabric

import (
	"reflect"
	"testing"
	"time"
)

var t0 = time.Unix(1_700_000_000, 0)

func row(name string, hb uint64) Row {
	return Row{Name: name, Transport: "inproc", Addr: "addr-" + name, Heartbeat: hb}
}

func TestMembershipMergeConfirmsAndConverges(t *testing.T) {
	m := NewMembership(row("a", 0), t0)
	if got := m.Live(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("initial live = %v, want [a]", got)
	}
	// A confirmed peer joins the live set.
	if !m.Merge([]Row{row("b", 10)}, t0) {
		t.Fatal("merge of a new live member reported no change")
	}
	if got := m.Live(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("live = %v, want [a b]", got)
	}
	// Stale rows (lower heartbeat) never regress the view.
	stale := row("b", 5)
	stale.Addr = "old-addr"
	if m.Merge([]Row{stale}, t0.Add(time.Second)) {
		t.Fatal("stale row reported a change")
	}
	if tr, addr, ok := m.Lookup("b"); !ok || addr != "addr-b" || tr != "inproc" {
		t.Fatalf("lookup(b) = %q %q %v after stale merge", tr, addr, ok)
	}
	// Rows about self are ignored: only Bump and Leave speak for self.
	evil := row("a", ^uint64(0))
	evil.Left = true
	if m.Merge([]Row{evil}, t0) {
		t.Fatal("merge of a self row reported a change")
	}
	if got := m.Live(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("live = %v after self-row merge, want [a b]", got)
	}
}

func TestMembershipBumpMonotoneAcrossRestart(t *testing.T) {
	m := NewMembership(row("a", 0), t0)
	first := m.Rows()[0].Heartbeat
	if first != uint64(t0.UnixNano()) {
		t.Fatalf("seed heartbeat = %d, want wall nanos %d", first, t0.UnixNano())
	}
	// Ticks advance by one when the wall clock stands still...
	m.Bump(t0)
	if got := m.Rows()[0].Heartbeat; got != first+1 {
		t.Fatalf("bump = %d, want %d", got, first+1)
	}
	// ...and jump to wall nanos when it moved past the counter, so a
	// restarted member always outbids its previous incarnation.
	later := t0.Add(time.Hour)
	m.Bump(later)
	if got := m.Rows()[0].Heartbeat; got != uint64(later.UnixNano()) {
		t.Fatalf("bump after clock jump = %d, want %d", got, later.UnixNano())
	}
}

func TestMembershipHintIsDialableNotLive(t *testing.T) {
	m := NewMembership(row("a", 0), t0)
	if !m.Hint("b", "inproc", "addr-b", t0) {
		t.Fatal("fresh hint reported no change")
	}
	if m.Hint("b", "inproc", "other", t0) {
		t.Fatal("repeat hint reported a change")
	}
	if m.Hint("a", "inproc", "self", t0) {
		t.Fatal("self hint reported a change")
	}
	// Hints are dial targets but not ring members until gossip confirms.
	if got := m.Live(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("live = %v after hint, want [a]", got)
	}
	dial := m.Dialable()
	if len(dial) != 1 || dial[0].Name != "b" || dial[0].Addr != "addr-b" {
		t.Fatalf("dialable = %+v, want [b at addr-b]", dial)
	}
	// Real gossip confirms the hint into the live set.
	m.Merge([]Row{row("b", 3)}, t0)
	if got := m.Live(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("live = %v after confirmation, want [a b]", got)
	}
}

func TestMembershipTombstoneNotResurrected(t *testing.T) {
	m := NewMembership(row("a", 0), t0)
	m.Merge([]Row{row("b", 10)}, t0)
	gone := row("b", 11)
	gone.Left = true
	if !m.Merge([]Row{gone}, t0) {
		t.Fatal("tombstone merge reported no change")
	}
	if got := m.Live(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("live = %v after tombstone, want [a]", got)
	}
	// A stale directory hint must not re-add the departed member.
	if m.Hint("b", "inproc", "addr-b", t0) {
		t.Fatal("hint resurrected a tombstoned member")
	}
	if len(m.Dialable()) != 0 {
		t.Fatalf("dialable = %v, want none (tombstones are not dialed)", m.Dialable())
	}
	// Old pre-departure gossip must not either.
	if m.Merge([]Row{row("b", 10)}, t0) {
		t.Fatal("stale gossip resurrected a tombstoned member")
	}
	if _, _, ok := m.Lookup("b"); ok {
		t.Fatal("lookup found a tombstoned member")
	}
	// But tombstones still gossip onward until garbage-collected.
	rows := m.Rows()
	if len(rows) != 2 || !rows[1].Left {
		t.Fatalf("rows = %+v, want the b tombstone gossiped", rows)
	}
}

func TestMembershipSweepFailsStalled(t *testing.T) {
	const failAfter = time.Second
	m := NewMembership(row("a", 0), t0)
	m.Merge([]Row{row("b", 10), row("c", 20)}, t0)
	// c keeps heartbeating, b stalls.
	m.Merge([]Row{row("c", 21)}, t0.Add(900*time.Millisecond))
	if m.Sweep(t0.Add(999*time.Millisecond), failAfter) {
		t.Fatal("sweep inside failAfter reported a change")
	}
	if !m.Sweep(t0.Add(1100*time.Millisecond), failAfter) {
		t.Fatal("sweep past failAfter reported no change")
	}
	if got := m.Live(); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("live = %v after sweep, want [a c]", got)
	}
	// Self is never swept, however long the fabric idles.
	m.Sweep(t0.Add(time.Hour), failAfter)
	if got := m.Live(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("live = %v, want [a] (self survives)", got)
	}
}

func TestMembershipLeave(t *testing.T) {
	m := NewMembership(row("a", 0), t0)
	before := m.Rows()[0].Heartbeat
	m.Leave(t0)
	rows := m.Rows()
	if !rows[0].Left || rows[0].Heartbeat <= before {
		t.Fatalf("leave row = %+v, want Left with advanced heartbeat", rows[0])
	}
	if got := m.Live(); len(got) != 0 {
		t.Fatalf("live = %v after leave, want none", got)
	}
}

func TestTableRouteMemoized(t *testing.T) {
	calls := 0
	shard := func(ts string) (string, bool) {
		calls++
		return ts, ts != "/unsharded"
	}
	tab := NewTable(7, "b", []string{"a", "b"}, 8, shard)
	owner1, _, sharded := tab.Route("/topic/x")
	if !sharded || owner1 == "" {
		t.Fatalf("route = %q sharded=%v, want an owner", owner1, sharded)
	}
	owner2, local, _ := tab.Route("/topic/x")
	if owner2 != owner1 {
		t.Fatalf("memoized route %q != first %q", owner2, owner1)
	}
	if local != (owner1 == "b") {
		t.Fatalf("local=%v inconsistent with owner %q", local, owner1)
	}
	if calls != 1 {
		t.Fatalf("shard func ran %d times for one topic, want 1 (memo)", calls)
	}
	if _, _, sharded := tab.Route("/unsharded"); sharded {
		t.Fatal("unsharded topic reported sharded")
	}
	if tab.Epoch != 7 {
		t.Fatalf("epoch = %d, want 7", tab.Epoch)
	}
}

func TestTraceShard(t *testing.T) {
	const uuid = "0f87dc4a-9f5d-4e19-bc2e-5c68ae33ffc8"
	for _, tc := range []struct {
		ts      string
		key     string
		sharded bool
	}{
		{"/Constrained/Traces/Broker/Publish-Only/" + uuid + "/StateTransitions", uuid, true},
		{"/Constrained/Traces/Broker/Publish-Only/" + uuid + "/Load", uuid, true},
		{"/Constrained/Traces/Broker/Publish-Only/System/Fabric", "", false},
		{"/Constrained/Traces/Broker/Publish-Only/System/Health", "", false},
		{"/plain/app/topic", "", false},
		{"not a topic", "", false},
	} {
		key, sharded := TraceShard(tc.ts)
		if key != tc.key || sharded != tc.sharded {
			t.Errorf("TraceShard(%q) = %q %v, want %q %v", tc.ts, key, sharded, tc.key, tc.sharded)
		}
	}
}
