package fabric

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"entitytrace/internal/broker"
	"entitytrace/internal/brokerdir"
	"entitytrace/internal/durable"
	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// testCluster is a small fabric of guard-free brokers over the inproc
// transport, bootstrapped from an in-process directory server.
type testCluster struct {
	tr      transport.Transport
	dir     *brokerdir.Directory
	dirSrv  *brokerdir.Server
	dirAddr string
	brokers []*broker.Broker
	fabrics []*Fabric
	addrs   []string
	stores  []*durable.Store
	t       *testing.T
}

func newTestCluster(t *testing.T, n int, logDir string) *testCluster {
	t.Helper()
	tc := &testCluster{tr: transport.NewInproc(), t: t}
	tc.dir = brokerdir.NewDirectory(3 * time.Second)
	tc.dirSrv = brokerdir.NewServer(tc.dir)
	dl, err := tc.tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	tc.dirSrv.Serve(dl)
	tc.dirAddr = dl.Addr()
	for i := 0; i < n; i++ {
		tc.addBroker(logDir)
	}
	return tc
}

// addBroker appends one broker + fabric member to the cluster.
func (tc *testCluster) addBroker(logDir string) int {
	tc.t.Helper()
	i := len(tc.brokers)
	name := fmt.Sprintf("fb%d", i)
	var store *durable.Store
	if logDir != "" {
		var err error
		store, err = durable.Open(filepath.Join(logDir, name), durable.Options{})
		if err != nil {
			tc.t.Fatal(err)
		}
	}
	b := broker.New(broker.Config{Name: name, Durable: store})
	l, err := tc.tr.Listen("")
	if err != nil {
		tc.t.Fatal(err)
	}
	b.Serve(l)
	f, err := New(Config{
		Broker:         b,
		Transport:      tc.tr,
		TransportName:  "inproc",
		Addr:           l.Addr(),
		Dir:            brokerdir.NewClient(tc.tr, tc.dirAddr),
		GossipInterval: 25 * time.Millisecond,
		Store:          store,
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	f.Start()
	tc.brokers = append(tc.brokers, b)
	tc.fabrics = append(tc.fabrics, f)
	tc.addrs = append(tc.addrs, l.Addr())
	tc.stores = append(tc.stores, store)
	return i
}

func (tc *testCluster) close() {
	for i, f := range tc.fabrics {
		if f != nil {
			f.Close()
		}
		tc.brokers[i].Close()
		if tc.stores[i] != nil {
			tc.stores[i].Close()
		}
	}
	tc.dirSrv.Close()
}

// awaitMembers blocks until every running fabric's table covers exactly
// want members.
func (tc *testCluster) awaitMembers(want int, timeout time.Duration) {
	tc.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, f := range tc.fabrics {
			if f == nil {
				continue
			}
			if len(f.Members()) != want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for i, f := range tc.fabrics {
				if f != nil {
					tc.t.Logf("fb%d: members=%v epoch=%d", i, f.Members(), f.Epoch())
				}
			}
			tc.t.Fatalf("fabric did not converge to %d members within %v", want, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// traceTopic builds a real sharded derivative topic from a seed.
func traceTopic(seed byte) topic.Topic {
	var u ident.UUID
	for i := range u {
		u[i] = seed
	}
	u[6] = (u[6] & 0x0f) | 0x40
	u[8] = (u[8] & 0x3f) | 0x80
	return topic.StateTransitions(u)
}

func TestFabricConvergesAndAutoLinks(t *testing.T) {
	tc := newTestCluster(t, 4, "")
	defer tc.close()
	tc.awaitMembers(4, 5*time.Second)
	// Every fabric agrees on the member set and ownership.
	base := tc.fabrics[0].Members()
	for i, f := range tc.fabrics {
		got := f.Members()
		for j := range base {
			if got[j] != base[j] {
				t.Fatalf("fb%d members %v != fb0 %v", i, got, base)
			}
		}
	}
	for seed := byte(1); seed < 40; seed++ {
		ts := traceTopic(seed).String()
		owner0, _, sharded := tc.fabrics[0].Route(ts)
		if !sharded {
			t.Fatalf("%s not sharded", ts)
		}
		for i := 1; i < len(tc.fabrics); i++ {
			if owner, _, _ := tc.fabrics[i].Route(ts); owner != owner0 {
				t.Fatalf("fb%d routes %s to %s, fb0 to %s", i, ts, owner, owner0)
			}
		}
	}
	// The deterministic dial direction established every pairwise link.
	deadline := time.Now().Add(5 * time.Second)
	for {
		missing := ""
		for i, b := range tc.brokers {
			for j := range tc.brokers {
				if i == j {
					continue
				}
				if !b.LinkUp(fmt.Sprintf("fb%d", j)) {
					missing = fmt.Sprintf("fb%d <-> fb%d", i, j)
				}
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("link %s never came up", missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Health snapshots surface the fabric state.
	info := tc.fabrics[0].Info()
	if info.Members != 4 || info.Epoch < 2 || info.OwnedPerMille <= 0 {
		t.Fatalf("info = %+v, want 4 members, epoch >= 2, nonzero share", info)
	}
	h := tc.brokers[0].Health()
	if h.FabricMembers != 4 || h.FabricEpoch != info.Epoch {
		t.Fatalf("broker health fabric fields = %d/%d, want 4/%d", h.FabricMembers, h.FabricEpoch, info.Epoch)
	}
}

// TestFabricForwardToOwner proves the one-hop ingress rule: a message
// published at any broker reaches a subscriber attached to any other
// broker, with the owner doing the fan-out.
func TestFabricForwardToOwner(t *testing.T) {
	tc := newTestCluster(t, 3, "")
	defer tc.close()
	tc.awaitMembers(3, 5*time.Second)

	for seed := byte(1); seed <= 6; seed++ {
		tp := traceTopic(seed)
		got := make(chan string, 16)
		// Subscribe at a broker that is NOT the owner, via a real client.
		owner, _, _ := tc.fabrics[0].Route(tp.String())
		subAt, pubAt := -1, -1
		for i := range tc.brokers {
			if fmt.Sprintf("fb%d", i) != owner {
				if subAt < 0 {
					subAt = i
				} else if pubAt < 0 {
					pubAt = i
				}
			}
		}
		sub, err := broker.Connect(tc.tr, tc.addrs[subAt], ident.EntityID(fmt.Sprintf("sub-%d", seed)))
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.Subscribe(tp, func(env *message.Envelope) {
			got <- string(env.Payload)
		}); err != nil {
			t.Fatal(err)
		}
		// Publish broker-side at a third broker (neither owner nor
		// subscriber host), as the trace manager does on Publish-Only
		// topics: ingress forwards to the owner, the owner fans out to
		// the subscriber's broker. Subscription advertisement to the
		// owner is asynchronous; retry until the route is warm.
		want := fmt.Sprintf("payload-%d", seed)
		delivered := false
		for attempt := 0; attempt < 100 && !delivered; attempt++ {
			if err := tc.brokers[pubAt].Publish(message.New(message.TypeData, tp, "", []byte(want))); err != nil {
				t.Fatal(err)
			}
			select {
			case p := <-got:
				if p != want {
					t.Fatalf("delivered %q, want %q", p, want)
				}
				delivered = true
			case <-time.After(50 * time.Millisecond):
			}
		}
		if !delivered {
			t.Fatalf("seed %d: publish at fb%d never reached subscriber at fb%d (owner %s)",
				seed, pubAt, subAt, owner)
		}
		sub.Close()
	}
}

// TestFabricGracefulLeaveRebalances verifies a Close tombstones the
// member and the survivors rebalance without waiting out FailAfter.
func TestFabricGracefulLeaveRebalances(t *testing.T) {
	tc := newTestCluster(t, 3, "")
	defer tc.close()
	tc.awaitMembers(3, 5*time.Second)
	leaving := tc.fabrics[2]
	tc.fabrics[2] = nil
	start := time.Now()
	leaving.Close()
	tc.brokers[2].Close()
	tc.awaitMembers(2, 5*time.Second)
	// The tombstone gossip should beat crash detection (5x25ms) by a
	// wide margin; allow scheduler slack but require it clearly beats
	// the directory TTL path.
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("graceful leave took %v to rebalance", took)
	}
	for i, f := range tc.fabrics {
		if f == nil {
			continue
		}
		for _, m := range f.Members() {
			if m == "fb2" {
				t.Fatalf("fb%d still lists the departed member: %v", i, f.Members())
			}
		}
	}
}

// TestFabricCrashDetectedAndRebalanced kills a member abruptly (no
// leave gossip): survivors must fail it via heartbeat silence.
func TestFabricCrashDetectedAndRebalanced(t *testing.T) {
	tc := newTestCluster(t, 3, "")
	defer tc.close()
	tc.awaitMembers(3, 5*time.Second)
	dead := tc.fabrics[1]
	tc.fabrics[1] = nil
	dead.Kill()
	tc.brokers[1].Close()
	tc.awaitMembers(2, 10*time.Second)
	ts := traceTopic(9).String()
	owner, _, _ := tc.fabrics[0].Route(ts)
	if owner == "fb1" {
		t.Fatalf("dead broker still owns %s", ts)
	}
}

// TestFabricHandoffReplaysDurableTail: records persisted at origin for
// a remote owner are replayed to the new owner when ownership moves.
func TestFabricHandoffReplaysDurableTail(t *testing.T) {
	tc := newTestCluster(t, 2, t.TempDir())
	defer tc.close()
	tc.awaitMembers(2, 5*time.Second)

	// Find a topic owned by fb1 and publish at fb0, so fb0 persists at
	// origin while fb1 fans out.
	var tp topic.Topic
	for seed := byte(1); ; seed++ {
		cand := traceTopic(seed)
		if owner, _, _ := tc.fabrics[0].Route(cand.String()); owner == "fb1" {
			tp = cand
			break
		}
	}
	for i := 0; i < 5; i++ {
		if err := tc.brokers[0].Publish(message.New(message.TypeData, tp, "", []byte(fmt.Sprintf("m%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	// Origin persistence is synchronous on the publish path.
	deadline := time.Now().Add(2 * time.Second)
	for tc.stores[0].Head(tp.String()) < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("origin log head = %d, want 5", tc.stores[0].Head(tp.String()))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the owner. fb0 becomes the sole member and the handoff
	// replays the tail into local fan-out — observed by a subscriber.
	got := make(chan string, 16)
	sub, err := broker.Connect(tc.tr, tc.addrs[0], "handoff-sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(tp, func(env *message.Envelope) { got <- string(env.Payload) }); err != nil {
		t.Fatal(err)
	}
	dead := tc.fabrics[1]
	tc.fabrics[1] = nil
	dead.Kill()
	tc.brokers[1].Close()

	seen := map[string]bool{}
	deadline = time.Now().Add(10 * time.Second)
	for len(seen) < 5 {
		select {
		case p := <-got:
			seen[p] = true
		case <-time.After(time.Until(deadline)):
			t.Fatalf("handoff replayed %d of 5 records: %v", len(seen), seen)
		}
	}
}

// TestFabricNoFabricBrokerUnaffected pins that a broker without a
// fabric routes exactly as before (nil sharding).
func TestFabricNoFabricBrokerUnaffected(t *testing.T) {
	tr := transport.NewInproc()
	b := broker.New(broker.Config{Name: "solo"})
	defer b.Close()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	b.Serve(l)
	tp := traceTopic(1)
	got := make(chan string, 1)
	sub, err := broker.Connect(tr, l.Addr(), "s")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(tp, func(env *message.Envelope) { got <- string(env.Payload) }); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(message.New(message.TypeData, tp, "", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if p != "x" {
			t.Fatalf("delivered %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery on a fabric-less broker")
	}
	if h := b.Health(); h.FabricMembers != 0 {
		t.Fatalf("fabric-less broker reports %d members", h.FabricMembers)
	}
}
