// Package fabric is the self-assembling broker fabric: trace topics are
// partitioned across broker shards by a consistent-hash ring with
// virtual nodes, membership is learned from the §3.2 broker directory
// and maintained by anti-entropy gossip over a constrained system
// topic, and topic ownership rebalances under an epoch-numbered table
// when brokers join, leave or fail (PROTOCOL.md §3.9).
package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVNodes is the virtual-node count per member. 512 points per
// broker keeps every member's share of a 10k-topic keyspace within the
// ±15% balance bound the ring tests enforce up to 16-broker fabrics
// (arc-length relative deviation scales as 1/sqrt(vnodes)), at ~8KB of
// ring state per member. Rings rebuild only on membership change, so
// the build cost is off the hot path.
const DefaultVNodes = 512

// point is one virtual node: a position on the 64-bit hash circle owned
// by a member (indexed into the sorted member list).
type point struct {
	hash   uint64
	member int32
}

// Ring is an immutable consistent-hash ring over a member set. Built
// once per membership epoch and shared read-only, so lookups never
// lock. Two rings built from the same member set are identical on every
// node regardless of join order: members are sorted and vnode placement
// is pure SHA-256.
type Ring struct {
	members []string
	points  []point
}

// NewRing builds a ring over members (deduplicated, sorted) with vnodes
// virtual nodes each (<= 0 selects DefaultVNodes).
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	uniq := ms[:0]
	for i, m := range ms {
		if m == "" || (i > 0 && m == ms[i-1]) {
			continue
		}
		uniq = append(uniq, m)
	}
	r := &Ring{members: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	for i, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{pointHash(m, v), int32(i)})
		}
	}
	// Hash collisions between distinct members' vnodes are broken by
	// member rank so the order — and therefore ownership — is still
	// deterministic across nodes.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// pointHash places virtual node v of a member on the circle.
func pointHash(member string, v int) uint64 {
	var suffix [5]byte
	suffix[0] = '#'
	binary.BigEndian.PutUint32(suffix[1:], uint32(v))
	h := sha256.New()
	h.Write([]byte(member))
	h.Write(suffix[:])
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// keyHash places a shard key on the circle.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's hash. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Members returns the sorted member set the ring was built over.
func (r *Ring) Members() []string { return r.members }

// Size reports the member count.
func (r *Ring) Size() int { return len(r.members) }

// ownedPerMille reports what fraction of the hash circle the named
// member owns, in per-mille — the compact balance figure surfaced on
// broker health snapshots. Arc lengths, not vnode counts: this is the
// expected share of a uniformly hashed keyspace.
func (r *Ring) ownedPerMille(member string) int {
	if len(r.points) == 0 {
		return 0
	}
	idx := -1
	for i, m := range r.members {
		if m == member {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	var owned uint64
	for i, p := range r.points {
		if p.member != int32(idx) {
			continue
		}
		var arc uint64
		if i == 0 {
			arc = p.hash + (^uint64(0) - r.points[len(r.points)-1].hash)
		} else {
			arc = p.hash - r.points[i-1].hash
		}
		// Scaled down so the per-mille multiply below cannot overflow.
		owned += arc >> 16
	}
	total := ^uint64(0) >> 16
	return int(owned * 1000 / total)
}
