// Package fabric turns a set of individually started brokers into a
// self-assembling, sharded fabric (PROTOCOL.md §3.9). Each broker runs
// one Fabric: a gossip membership view (anti-entropy over the
// constrained system topic /…/System/Fabric), a consistent-hash
// ownership table partitioning trace topics across the live brokers,
// and a link manager that auto-dials the peers the table needs — no
// hand-wired -link flags. On join, leave or failure the table is
// rebuilt under a new epoch, broker links are reconciled, and recently
// persisted sharded traffic is re-forwarded to the new owners so
// trackers observe no ledger gap.
package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"entitytrace/internal/broker"
	"entitytrace/internal/brokerdir"
	"entitytrace/internal/clock"
	"entitytrace/internal/durable"
	"entitytrace/internal/message"
	"entitytrace/internal/obs"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

var (
	mEpochs      = obs.Default.Counter("fabric_epoch_total")
	mGossipSent  = obs.Default.Counter("fabric_gossip_sent_total")
	mGossipRecv  = obs.Default.Counter("fabric_gossip_recv_total")
	mGossipBad   = obs.Default.Counter("fabric_gossip_bad_total")
	mHandoffRecs = obs.Default.Counter("fabric_handoff_records_total")
	// Table-shape gauges, refreshed on every rebuild so registry
	// samplers (the telemetry plane) see the fabric's current shape
	// without calling into it. Process-wide: in multi-broker test
	// processes they track the most recent rebuilder.
	mMembers       = obs.Default.Gauge("fabric_members")
	mOwnedPerMille = obs.Default.Gauge("fabric_owned_per_mille")
)

// TraceShard is the default ShardFunc: the per-trace derivative class
// topics (/Constrained/Traces/Broker/Publish-Only/<uuid>/<class>) shard
// by their trace-topic UUID, so every derivative class of one entity
// co-locates on the same owner and its ledger stays totally ordered on
// one durable log. Everything else — system topics, wildcards,
// unconstrained application topics — stays outside the partitioned
// keyspace and floods by subscription as before.
func TraceShard(ts string) (key string, sharded bool) {
	tp, err := topic.Parse(ts)
	if err != nil {
		return "", false
	}
	if !topic.IsTraceDerivative(tp) {
		return "", false
	}
	return tp.Segments()[4], true
}

// Config configures one broker's fabric membership.
type Config struct {
	// Broker is the local broker the fabric routes for. Required.
	Broker *broker.Broker
	// Name overrides the fabric member name (default Broker.Name()).
	Name string
	// Transport dials broker links and is advertised (by TransportName)
	// so peers can dial back. Required for any multi-broker fabric.
	Transport transport.Transport
	// TransportName and Addr are this broker's advertised coordinates.
	TransportName string
	Addr          string
	// Dir is an optional broker-directory client: members register
	// their epoch there and bootstrap peer discovery from List.
	Dir *brokerdir.Client
	// VNodes is the virtual-node count per member (default
	// DefaultVNodes).
	VNodes int
	// GossipInterval paces heartbeat bumps, gossip publishes and
	// directory polls (default 500ms).
	GossipInterval time.Duration
	// FailAfter is how long a member's heartbeat may stall before it is
	// declared failed (default 5× GossipInterval).
	FailAfter time.Duration
	// Clock abstracts time for tests.
	Clock clock.Clock
	// Log, when set, receives membership and epoch transitions.
	Log *obs.Logger
	// Shard overrides the sharding function (default TraceShard).
	Shard ShardFunc
	// Store, when set, is the broker's durable store; on ownership
	// change the fabric replays the tail of re-owned sharded topics to
	// their new owner (handoff).
	Store *durable.Store
	// HandoffRecords bounds the per-topic replay window (default 1024).
	HandoffRecords int
}

// Fabric is one broker's membership in the sharded fabric. It
// implements broker.Sharding.
type Fabric struct {
	cfg  Config
	b    *broker.Broker
	name string
	clk  clock.Clock
	log  *obs.Logger

	mem   *Membership
	table atomic.Pointer[Table]

	// rebuildMu serializes table rebuilds + handoff (loop goroutine and
	// Close both rebuild).
	rebuildMu sync.Mutex

	// linked tracks the peers this member is currently maintaining
	// links for (loop goroutine only).
	linked map[string]bool

	poke      chan struct{}
	done      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	unsub     func()
	started   atomic.Bool
	handoffMu sync.Mutex
}

// New builds a fabric member around an existing broker and installs its
// ownership table (epoch 1: self only). Call Start to begin gossiping.
func New(cfg Config) (*Fabric, error) {
	if cfg.Broker == nil {
		return nil, fmt.Errorf("fabric: Config.Broker is required")
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Broker.Name()
	}
	if cfg.Name == "" {
		return nil, fmt.Errorf("fabric: broker has no name")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 500 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 5 * cfg.GossipInterval
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.HandoffRecords <= 0 {
		cfg.HandoffRecords = 1024
	}
	f := &Fabric{
		cfg:    cfg,
		b:      cfg.Broker,
		name:   cfg.Name,
		clk:    cfg.Clock,
		log:    cfg.Log.With("fabric", cfg.Name),
		linked: make(map[string]bool),
		poke:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	f.mem = NewMembership(Row{
		Name:      cfg.Name,
		Transport: cfg.TransportName,
		Addr:      cfg.Addr,
	}, f.clk.Now())
	f.table.Store(NewTable(1, cfg.Name, []string{cfg.Name}, cfg.VNodes, cfg.Shard))
	f.unsub = f.b.SubscribeLocal(topic.SystemFabric(), f.onGossip)
	f.b.SetSharding(f)
	return f, nil
}

// Route implements broker.Sharding against the current epoch's table.
func (f *Fabric) Route(ts string) (owner string, local, sharded bool) {
	return f.table.Load().Route(ts)
}

// Info implements broker.Sharding.
func (f *Fabric) Info() broker.ShardInfo {
	t := f.table.Load()
	return broker.ShardInfo{
		Epoch:         t.Epoch,
		Members:       len(t.Members()),
		OwnedPerMille: t.OwnedPerMille(),
	}
}

// Epoch returns the current ownership-table epoch.
func (f *Fabric) Epoch() uint64 { return f.table.Load().Epoch }

// Members returns the live member set the current table was built over.
func (f *Fabric) Members() []string { return f.table.Load().Members() }

// Start launches the gossip loop. The first tick runs immediately, so
// a member with a directory learns its peers on the first interval.
func (f *Fabric) Start() {
	if !f.started.CompareAndSwap(false, true) {
		return
	}
	f.wg.Add(1)
	go f.loop()
}

func (f *Fabric) loop() {
	defer f.wg.Done()
	f.tick()
	t := f.clk.NewTimer(f.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-f.done:
			return
		case <-f.poke:
			f.rebuild()
		case <-t.C():
			f.tick()
			t.Reset(f.cfg.GossipInterval)
		}
	}
}

// tick is one gossip round: advance the local heartbeat, pull
// directory hints, fail stalled members, reconcile the table and
// links, then push our view to the fabric and the directory.
func (f *Fabric) tick() {
	now := f.clk.Now()
	f.mem.Bump(now)
	changed := false
	if f.cfg.Dir != nil {
		if entries, err := f.cfg.Dir.List(); err == nil {
			for _, e := range entries {
				if f.mem.Hint(e.Name, e.Transport, e.Addr, now) {
					changed = true
				}
			}
		}
	}
	if f.mem.Sweep(now, f.cfg.FailAfter) {
		changed = true
	}
	if changed {
		f.rebuild()
	} else {
		f.ensureLinks()
	}
	f.gossip()
	if f.cfg.Dir != nil {
		_ = f.cfg.Dir.RegisterEpoch(f.name, f.cfg.TransportName, f.cfg.Addr, 0, f.Epoch())
	}
}

// rebuild swaps in a new ownership table if the live member set moved,
// reconciles subscriptions and links against it, and replays the
// durable tail of any re-owned sharded topic to its new owner.
func (f *Fabric) rebuild() {
	f.rebuildMu.Lock()
	defer f.rebuildMu.Unlock()
	live := f.mem.Live()
	old := f.table.Load()
	if equalStrings(live, old.Members()) {
		f.ensureLinks()
		return
	}
	next := NewTable(old.Epoch+1, f.name, live, f.cfg.VNodes, f.cfg.Shard)
	f.table.Store(next)
	mEpochs.Inc()
	mMembers.Set(int64(len(live)))
	mOwnedPerMille.Set(int64(next.OwnedPerMille()))
	f.log.Info("fabric epoch",
		"epoch", next.Epoch,
		"members", len(live),
		"owned_permille", next.OwnedPerMille())
	f.ensureLinks()
	// Subscriptions advertised to links depend on ownership: re-sync
	// every exact sharded subscription against the new owners.
	f.b.RefreshAllLinks()
	f.handoff(old, next)
}

// ensureLinks reconciles maintained broker links with the dialable
// member set (confirmed members plus unconfirmed directory hints — the
// first dial bootstraps the gossip that confirms them). Dial direction
// is deterministic — the lexicographically smaller name dials — so
// exactly one side of every pair maintains the link.
func (f *Fabric) ensureLinks() {
	if f.cfg.Transport == nil {
		return
	}
	dialable := f.mem.Dialable()
	known := make(map[string]bool, len(dialable)+1)
	want := make(map[string]bool, len(dialable))
	for _, r := range dialable {
		known[r.Name] = true
		if f.name >= r.Name {
			continue
		}
		want[r.Name] = true
		if !f.linked[r.Name] {
			f.linked[r.Name] = true
			f.b.EnsureLink(r.Name, f.cfg.Transport, r.Addr)
		}
	}
	for m := range f.linked {
		if !want[m] {
			delete(f.linked, m)
			f.b.DropLink(m)
		}
	}
	// Drop inbound links from members that failed or left, so a
	// half-open connection cannot keep receiving forwards.
	for _, name := range f.b.LinkNames() {
		if !known[name] && !want[name] {
			f.b.DropLink(name)
		}
	}
}

// gossip publishes the full membership view on the system-fabric topic.
// The topic floods over broker links like any system topic, so every
// member folds in every other member's view within a few intervals.
func (f *Fabric) gossip() {
	rows := f.mem.Rows()
	fg := message.FabricGossip{
		Broker: f.name,
		Epoch:  f.Epoch(),
		Rows:   make([]message.FabricMemberRow, 0, len(rows)),
	}
	for _, r := range rows {
		fg.Rows = append(fg.Rows, message.FabricMemberRow{
			Name:      r.Name,
			Transport: r.Transport,
			Addr:      r.Addr,
			Heartbeat: r.Heartbeat,
			Left:      r.Left,
		})
	}
	env := message.New(message.TypeFabricGossip, topic.SystemFabric(), "", fg.Marshal())
	if err := f.b.Publish(env); err == nil {
		mGossipSent.Inc()
	}
}

// onGossip folds a received membership exchange into the local view.
// It runs on a broker delivery goroutine, so it only merges and pokes;
// the rebuild happens on the fabric loop.
func (f *Fabric) onGossip(env *message.Envelope) {
	if env.Type != message.TypeFabricGossip {
		return
	}
	fg, err := message.UnmarshalFabricGossip(env.Payload)
	if err != nil {
		mGossipBad.Inc()
		return
	}
	if fg.Broker == f.name {
		return
	}
	mGossipRecv.Inc()
	rows := make([]Row, 0, len(fg.Rows))
	for _, r := range fg.Rows {
		rows = append(rows, Row{
			Name:      r.Name,
			Transport: r.Transport,
			Addr:      r.Addr,
			Heartbeat: r.Heartbeat,
			Left:      r.Left,
		})
	}
	if f.mem.Merge(rows, f.clk.Now()) {
		select {
		case f.poke <- struct{}{}:
		default:
		}
	}
}

// handoff replays the durable tail of every sharded topic whose owner
// changed between old and next. This broker persisted the records at
// origin (see routeShardRemote), so replay needs no re-admission; the
// new owner fans them out and downstream dedupe absorbs anything the
// old owner had already delivered. The window is bounded: an owner that
// was down for longer than HandoffRecords of traffic is repaired by the
// durable replay protocol, not by handoff.
func (f *Fabric) handoff(old, next *Table) {
	if f.cfg.Store == nil || old == nil {
		return
	}
	f.handoffMu.Lock()
	defer f.handoffMu.Unlock()
	var replayed int
	for _, ts := range f.cfg.Store.Topics() {
		key, sharded := nextShardKey(next, ts)
		if !sharded {
			continue
		}
		if old.ring.Size() > 0 && old.ring.Owner(key) == next.ring.Owner(key) {
			continue
		}
		l := f.cfg.Store.Get(ts)
		if l == nil {
			continue
		}
		head := l.Head()
		if head == 0 {
			continue
		}
		from := uint64(1)
		if n := uint64(f.cfg.HandoffRecords); head > n {
			from = head - n + 1
		}
		recs, err := l.ReadFrom(from, f.cfg.HandoffRecords, 1<<30)
		if err != nil {
			continue
		}
		for _, rec := range recs {
			env, err := message.Unmarshal(rec.Payload)
			if err != nil {
				continue
			}
			if f.b.ReforwardSharded(env) {
				replayed++
			}
		}
	}
	if replayed > 0 {
		mHandoffRecs.Add(uint64(replayed))
		f.log.Info("fabric handoff", "epoch", next.Epoch, "records", replayed)
	}
}

// nextShardKey resolves the shard key of a stored topic under the
// next table's shard function.
func nextShardKey(next *Table, ts string) (string, bool) {
	return next.shard(ts)
}

// Close leaves the fabric gracefully: the member tombstones itself,
// gossips one final time so peers rebalance immediately instead of
// waiting out FailAfter, hands off its durable tail, deregisters from
// the directory and detaches from the broker.
func (f *Fabric) Close() {
	f.stop(true)
}

// Kill detaches abruptly — no leave gossip, no deregistration — to
// simulate a crash: peers detect the stalled heartbeat and rebalance
// after FailAfter.
func (f *Fabric) Kill() {
	f.stop(false)
}

func (f *Fabric) stop(graceful bool) {
	f.stopOnce.Do(func() {
		close(f.done)
		f.wg.Wait()
		if graceful {
			f.mem.Leave(f.clk.Now())
			f.gossip()
			if f.cfg.Dir != nil {
				_ = f.cfg.Dir.Deregister(f.name)
			}
		}
		f.unsub()
		f.b.SetSharding(nil)
	})
}

// equalStrings reports whether two sorted string slices are equal.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
