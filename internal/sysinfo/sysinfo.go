// Package sysinfo provides the load information a traced entity reports
// in LOAD_INFORMATION traces (§3.3: "CPU Info, Memory Usage and
// Workload"). Two providers exist: Runtime samples the hosting process
// and machine, and Simulated produces a seeded synthetic load pattern for
// experiments and examples (the paper's workloads ran on dedicated lab
// machines we substitute with synthetic load, per DESIGN.md).
package sysinfo

import (
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Load is one load observation.
type Load struct {
	// CPUPercent is CPU utilization in [0, 100].
	CPUPercent float64
	// MemoryUsedBytes and MemoryTotalBytes describe memory pressure.
	MemoryUsedBytes  uint64
	MemoryTotalBytes uint64
	// Workload is an application-defined utilization figure in [0, 1]
	// (e.g. request queue occupancy).
	Workload float64
	// At is the sample time.
	At time.Time
}

// Provider produces load observations.
type Provider interface {
	Sample() Load
}

// Simulated is a deterministic synthetic load source: CPU follows a
// sinusoid with seeded noise, memory follows a slow random walk and
// workload tracks CPU. Safe for concurrent use.
type Simulated struct {
	mu     sync.Mutex
	rng    *rand.Rand
	tick   int
	center float64 // mean CPU percent
	swing  float64 // sinusoid amplitude
	mem    float64 // walked memory fraction
	total  uint64
	now    func() time.Time
}

// NewSimulated creates a synthetic provider around the given mean CPU
// percentage (e.g. 40) with the given swing (e.g. 25).
func NewSimulated(seed int64, centerCPU, swing float64) *Simulated {
	return &Simulated{
		rng:    rand.New(rand.NewSource(seed)),
		center: centerCPU,
		swing:  swing,
		mem:    0.5,
		total:  8 << 30,
		now:    time.Now,
	}
}

// SetTimeFunc overrides the sample clock, for tests.
func (s *Simulated) SetTimeFunc(f func() time.Time) { s.now = f }

// Sample implements Provider.
func (s *Simulated) Sample() Load {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	phase := float64(s.tick) / 20 * 2 * math.Pi
	cpu := s.center + s.swing*math.Sin(phase) + s.rng.NormFloat64()*3
	cpu = clamp(cpu, 0, 100)
	s.mem += (s.rng.Float64() - 0.5) * 0.02
	s.mem = clamp(s.mem, 0.05, 0.95)
	return Load{
		CPUPercent:       cpu,
		MemoryUsedBytes:  uint64(s.mem * float64(s.total)),
		MemoryTotalBytes: s.total,
		Workload:         clamp(cpu/100+s.rng.NormFloat64()*0.02, 0, 1),
		At:               s.now(),
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Runtime samples the hosting process: Go heap usage for memory and the
// 1-minute load average (scaled by CPU count) for CPU when /proc is
// available, else 0.
type Runtime struct{}

// NewRuntime returns the process-backed provider.
func NewRuntime() *Runtime { return &Runtime{} }

// Sample implements Provider.
func (r *Runtime) Sample() Load {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	l := Load{
		MemoryUsedBytes:  ms.HeapInuse + ms.StackInuse,
		MemoryTotalBytes: ms.Sys,
		At:               time.Now(),
	}
	if la, ok := loadAvg(); ok {
		pct := la / float64(runtime.NumCPU()) * 100
		l.CPUPercent = clamp(pct, 0, 100)
		l.Workload = clamp(la/float64(runtime.NumCPU()), 0, 1)
	}
	return l
}

// loadAvg reads the 1-minute load average from /proc/loadavg.
func loadAvg() (float64, bool) {
	b, err := os.ReadFile("/proc/loadavg")
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(b))
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Fixed always reports the same load; useful in tests and as a stub for
// entities that do not measure load.
type Fixed struct {
	L Load
}

// Sample implements Provider.
func (f Fixed) Sample() Load {
	l := f.L
	if l.At.IsZero() {
		l.At = time.Now()
	}
	return l
}
