package sysinfo

import (
	"testing"
	"time"
)

func TestSimulatedBounds(t *testing.T) {
	s := NewSimulated(7, 40, 25)
	for i := 0; i < 1000; i++ {
		l := s.Sample()
		if l.CPUPercent < 0 || l.CPUPercent > 100 {
			t.Fatalf("CPU out of range: %v", l.CPUPercent)
		}
		if l.Workload < 0 || l.Workload > 1 {
			t.Fatalf("Workload out of range: %v", l.Workload)
		}
		if l.MemoryUsedBytes > l.MemoryTotalBytes {
			t.Fatalf("memory used %d exceeds total %d", l.MemoryUsedBytes, l.MemoryTotalBytes)
		}
	}
}

func TestSimulatedDeterministicPerSeed(t *testing.T) {
	a := NewSimulated(42, 40, 25)
	b := NewSimulated(42, 40, 25)
	fixed := time.Unix(0, 0)
	a.SetTimeFunc(func() time.Time { return fixed })
	b.SetTimeFunc(func() time.Time { return fixed })
	for i := 0; i < 50; i++ {
		la, lb := a.Sample(), b.Sample()
		if la != lb {
			t.Fatalf("same seed diverged at sample %d: %+v vs %+v", i, la, lb)
		}
	}
	c := NewSimulated(43, 40, 25)
	c.SetTimeFunc(func() time.Time { return fixed })
	if c.Sample() == func() Load {
		d := NewSimulated(42, 40, 25)
		d.SetTimeFunc(func() time.Time { return fixed })
		return d.Sample()
	}() {
		t.Fatal("different seeds produced identical first sample")
	}
}

func TestSimulatedVaries(t *testing.T) {
	s := NewSimulated(1, 50, 30)
	first := s.Sample().CPUPercent
	varied := false
	for i := 0; i < 40; i++ {
		if s.Sample().CPUPercent != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("simulated CPU never varied")
	}
}

func TestRuntimeSample(t *testing.T) {
	l := NewRuntime().Sample()
	if l.MemoryUsedBytes == 0 || l.MemoryTotalBytes == 0 {
		t.Fatalf("runtime memory sample empty: %+v", l)
	}
	if l.CPUPercent < 0 || l.CPUPercent > 100 {
		t.Fatalf("runtime CPU out of range: %v", l.CPUPercent)
	}
	if l.At.IsZero() {
		t.Fatal("sample time zero")
	}
}

func TestFixed(t *testing.T) {
	f := Fixed{L: Load{CPUPercent: 12.5, Workload: 0.25}}
	l := f.Sample()
	if l.CPUPercent != 12.5 || l.Workload != 0.25 {
		t.Fatalf("fixed sample mutated: %+v", l)
	}
	if l.At.IsZero() {
		t.Fatal("Fixed did not stamp time")
	}
	at := time.Unix(5, 0)
	f2 := Fixed{L: Load{At: at}}
	if !f2.Sample().At.Equal(at) {
		t.Fatal("Fixed overrode explicit time")
	}
}
