package token

import (
	"errors"
	"testing"
	"time"

	"entitytrace/internal/ident"
	"entitytrace/internal/secure"
)

var (
	ownerPair    *secure.KeyPair
	intruderPair *secure.KeyPair
)

func init() {
	var err error
	if ownerPair, err = secure.GenerateKeyPair(secure.PaperRSABits); err != nil {
		panic(err)
	}
	if intruderPair, err = secure.GenerateKeyPair(secure.PaperRSABits); err != nil {
		panic(err)
	}
}

func ownerSigner(t *testing.T) *secure.Signer {
	t.Helper()
	s, err := secure.NewSigner(ownerPair.Private, secure.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func grant(t *testing.T, rights Rights, validFor time.Duration, now time.Time) *Delegation {
	t.Helper()
	d, err := Grant("traced-entity", ident.NewUUID(), rights, validFor, now, ownerSigner(t), secure.PaperRSABits)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGrantAndVerify(t *testing.T) {
	now := time.Now()
	d := grant(t, RightPublish, time.Hour, now)
	pub, err := d.Token.Verify(ownerPair.Public, now.Add(time.Minute), DefaultClockSkew, RightPublish)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if pub.N.Cmp(d.PrivateKey.PublicKey.N) != 0 {
		t.Fatal("delegated public key does not match delegated private key")
	}
}

func TestVerifyRejectsWrongOwner(t *testing.T) {
	now := time.Now()
	d := grant(t, RightPublish, time.Hour, now)
	if _, err := d.Token.Verify(intruderPair.Public, now, DefaultClockSkew, RightPublish); !errors.Is(err, ErrBadTokenSignature) {
		t.Fatalf("token verified under wrong owner key, err=%v", err)
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	now := time.Now()
	d := grant(t, RightPublish, time.Second, now)
	late := now.Add(time.Second + MaxClockSkew + time.Millisecond)
	if _, err := d.Token.Verify(ownerPair.Public, late, MaxClockSkew, RightPublish); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired token verified, err=%v", err)
	}
}

func TestVerifyRejectsNotYetValid(t *testing.T) {
	now := time.Now()
	d := grant(t, RightPublish, time.Hour, now)
	early := now.Add(-time.Second)
	if _, err := d.Token.Verify(ownerPair.Public, early, MinClockSkew, RightPublish); !errors.Is(err, ErrExpired) {
		t.Fatalf("premature token verified, err=%v", err)
	}
}

func TestClockSkewTolerance(t *testing.T) {
	// §4.3: clocks are within 30-100ms; a token missed by less than the
	// skew must still verify.
	now := time.Now()
	d := grant(t, RightPublish, time.Second, now)
	justLate := now.Add(time.Second + 50*time.Millisecond)
	if _, err := d.Token.Verify(ownerPair.Public, justLate, MaxClockSkew, RightPublish); err != nil {
		t.Fatalf("token within skew rejected: %v", err)
	}
	if _, err := d.Token.Verify(ownerPair.Public, justLate, MinClockSkew, RightPublish); !errors.Is(err, ErrExpired) {
		t.Fatalf("token beyond 30ms skew verified, err=%v", err)
	}
}

func TestVerifyRejectsInsufficientRights(t *testing.T) {
	now := time.Now()
	d := grant(t, RightSubscribe, time.Hour, now)
	if _, err := d.Token.Verify(ownerPair.Public, now, DefaultClockSkew, RightPublish); !errors.Is(err, ErrRightsMismatch) {
		t.Fatalf("subscribe-only token verified for publish, err=%v", err)
	}
}

func TestVerifyDetectsFieldTampering(t *testing.T) {
	now := time.Now()
	d := grant(t, RightPublish, time.Second, now)
	// Extend the validity window without re-signing.
	d.Token.NotAfter = now.Add(24 * time.Hour).UnixNano()
	if _, err := d.Token.Verify(ownerPair.Public, now.Add(time.Hour), DefaultClockSkew, RightPublish); !errors.Is(err, ErrBadTokenSignature) {
		t.Fatalf("tampered token verified, err=%v", err)
	}
}

func TestVerifyDetectsRightsEscalation(t *testing.T) {
	now := time.Now()
	d := grant(t, RightSubscribe, time.Hour, now)
	d.Token.Rights = RightPublish | RightSubscribe
	if _, err := d.Token.Verify(ownerPair.Public, now, DefaultClockSkew, RightPublish); !errors.Is(err, ErrBadTokenSignature) {
		t.Fatalf("rights-escalated token verified, err=%v", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	now := time.Now()
	d := grant(t, RightPublish|RightSubscribe, time.Hour, now)
	back, err := Unmarshal(d.Token.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.TraceTopic != d.Token.TraceTopic || back.Owner != d.Token.Owner ||
		back.Rights != d.Token.Rights || back.NotBefore != d.Token.NotBefore ||
		back.NotAfter != d.Token.NotAfter || back.Hash != d.Token.Hash {
		t.Fatal("round trip field mismatch")
	}
	if _, err := back.Verify(ownerPair.Public, now, DefaultClockSkew, RightPublish); err != nil {
		t.Fatalf("round-tripped token failed verification: %v", err)
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	cases := [][]byte{nil, {1}, {tokenVersion, 1, 2, 3}, []byte("garbage token")}
	for _, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("Unmarshal(%d bytes) succeeded", len(c))
		}
	}
	// Wrong version.
	now := time.Now()
	d := grant(t, RightPublish, time.Hour, now)
	wire := d.Token.Marshal()
	wire[0] = 99
	if _, err := Unmarshal(wire); err == nil {
		t.Fatal("accepted wrong version")
	}
	// Trailing bytes.
	wire = append(d.Token.Marshal(), 0)
	if _, err := Unmarshal(wire); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestGrantValidation(t *testing.T) {
	s := ownerSigner(t)
	if _, err := Grant("", ident.NewUUID(), RightPublish, time.Hour, time.Now(), s, secure.PaperRSABits); err == nil {
		t.Fatal("granted token for empty owner")
	}
	if _, err := Grant("e", ident.NewUUID(), RightPublish, 0, time.Now(), s, secure.PaperRSABits); err == nil {
		t.Fatal("granted token with zero validity")
	}
}

func TestExpiresSoon(t *testing.T) {
	now := time.Now()
	d := grant(t, RightPublish, time.Minute, now)
	if d.Token.ExpiresSoon(now, time.Second) {
		t.Fatal("fresh token reported expiring")
	}
	if !d.Token.ExpiresSoon(now.Add(59*time.Second+500*time.Millisecond), time.Second) {
		t.Fatal("nearly expired token not reported expiring")
	}
}

func TestRightsStrings(t *testing.T) {
	cases := map[Rights]string{
		RightPublish:                  "publish",
		RightSubscribe:                "subscribe",
		RightPublish | RightSubscribe: "publish+subscribe",
		0:                             "none",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Rights(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestNegativeSkewUsesDefault(t *testing.T) {
	now := time.Now()
	d := grant(t, RightPublish, time.Hour, now)
	if _, err := d.Token.Verify(ownerPair.Public, now, -1, RightPublish); err != nil {
		t.Fatalf("negative skew should default, got %v", err)
	}
}

// TestDelegatedKeyHidesBroker checks the design property of §4.3: the
// token contains only the random delegated key, never any broker
// identity material.
func TestDelegatedKeyHidesBroker(t *testing.T) {
	now := time.Now()
	d := grant(t, RightPublish, time.Hour, now)
	// A second delegation for the same owner/topic produces a different
	// delegated key — there is nothing broker-identifying or stable.
	d2, err := Grant(d.Token.Owner, d.Token.TraceTopic, RightPublish, time.Hour, now, ownerSigner(t), secure.PaperRSABits)
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Token.DelegatePub) == string(d2.Token.DelegatePub) {
		t.Fatal("delegated keys are not random per grant")
	}
}
