// Package token implements the authorization tokens of §4.3: a traced
// entity explicitly authorizes its hosting broker to publish trace
// information by issuing a signed token containing the trace topic, a
// randomly generated public key, the delegated rights, and a validity
// duration.
//
// The random key pair serves two purposes. First, the broker signs the
// trace messages it publishes with the delegated *private* key, so every
// routing broker can check that the publisher actually holds the
// delegation. Second — as the paper notes — embedding a random key
// instead of the broker's own credential ensures "no other broker within
// the network is aware of the broker that a given traced entity is
// connected to".
package token

import (
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"entitytrace/internal/ident"
	"entitytrace/internal/secure"
)

// Rights enumerates the delegated actions (§4.3 item 3: "either publish
// or subscribe. For a broker, this is set to publish").
type Rights uint8

const (
	// RightPublish delegates publishing.
	RightPublish Rights = 1 << iota
	// RightSubscribe delegates subscribing.
	RightSubscribe
)

// Has reports whether r includes all rights in want.
func (r Rights) Has(want Rights) bool { return r&want == want }

// String returns a human-readable rights description.
func (r Rights) String() string {
	switch {
	case r.Has(RightPublish | RightSubscribe):
		return "publish+subscribe"
	case r.Has(RightPublish):
		return "publish"
	case r.Has(RightSubscribe):
		return "subscribe"
	default:
		return "none"
	}
}

// Clock-skew bounds from §4.3: "Use of NTP timestamp ensures that
// timestamps are within 30-100 milliseconds of each other". Validation
// accepts tokens whose window is missed by at most the configured skew.
const (
	MinClockSkew = 30 * time.Millisecond
	MaxClockSkew = 100 * time.Millisecond
	// DefaultClockSkew is the tolerance used when none is specified.
	DefaultClockSkew = MaxClockSkew
)

// Validation errors.
var (
	// ErrExpired reports a token outside its validity window.
	ErrExpired = errors.New("token: outside validity window")
	// ErrBadTokenSignature reports a token not signed by the claimed
	// owner.
	ErrBadTokenSignature = errors.New("token: owner signature invalid")
	// ErrRightsMismatch reports a token lacking the required rights.
	ErrRightsMismatch = errors.New("token: required rights not delegated")
	// ErrMalformed reports an undecodable token.
	ErrMalformed = errors.New("token: malformed")
)

const tokenVersion = 1

// Token is an authorization token (§4.3).
type Token struct {
	// TraceTopic is the UUID trace topic the delegation concerns.
	TraceTopic ident.UUID
	// Owner names the issuing (traced) entity.
	Owner ident.EntityID
	// DelegatePub is the DER-encoded randomly generated public key.
	DelegatePub []byte
	// Rights are the delegated actions.
	Rights Rights
	// NotBefore/NotAfter bound the validity window (Unix nanoseconds).
	NotBefore int64
	NotAfter  int64
	// Signature is the owner's signature over the fields above.
	Signature []byte
	// hash is the digest used for the signature.
	Hash secure.Hash
}

// Delegation couples a token with the delegated private key; the issuing
// entity hands this to its hosting broker.
type Delegation struct {
	Token      *Token
	PrivateKey *rsa.PrivateKey
}

// Grant creates a delegation: it generates a fresh random key pair,
// builds a token delegating rights on traceTopic for the given duration,
// and signs it with the owner's signer. A traced entity "will typically
// keep this duration short enough to correspond to its expected presence
// within the system" (§4.3).
func Grant(owner ident.EntityID, traceTopic ident.UUID, rights Rights,
	validFor time.Duration, now time.Time, ownerSigner *secure.Signer, keyBits int) (*Delegation, error) {
	if err := owner.Validate(); err != nil {
		return nil, err
	}
	if validFor <= 0 {
		return nil, errors.New("token: non-positive validity duration")
	}
	pair, err := secure.GenerateKeyPair(keyBits)
	if err != nil {
		return nil, err
	}
	pubDER, err := secure.MarshalPublicKey(pair.Public)
	if err != nil {
		return nil, err
	}
	tok := &Token{
		TraceTopic:  traceTopic,
		Owner:       owner,
		DelegatePub: pubDER,
		Rights:      rights,
		NotBefore:   now.UnixNano(),
		NotAfter:    now.Add(validFor).UnixNano(),
		Hash:        ownerSigner.Hash(),
	}
	if err := tok.sign(ownerSigner); err != nil {
		return nil, err
	}
	return &Delegation{Token: tok, PrivateKey: pair.Private}, nil
}

// signingBytes serializes every field covered by the owner signature.
func (t *Token) signingBytes() []byte {
	buf := make([]byte, 0, 64+len(t.DelegatePub))
	buf = append(buf, tokenVersion)
	buf = append(buf, t.TraceTopic[:]...)
	buf = appendLenPrefixed(buf, []byte(t.Owner))
	buf = appendLenPrefixed(buf, t.DelegatePub)
	buf = append(buf, byte(t.Rights), byte(t.Hash))
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.NotBefore))
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.NotAfter))
	return buf
}

func (t *Token) sign(s *secure.Signer) error {
	sig, err := s.Sign(t.signingBytes())
	if err != nil {
		return err
	}
	t.Signature = sig
	return nil
}

// Verify checks the token: owner signature under ownerPub, and validity
// window against now with the given clock-skew tolerance (§4.3: "check
// to see if the token was signed by the owner of the trace topic, check
// to see if the token has expired"). It returns the delegated public key
// on success so callers can verify the publisher's message signature.
func (t *Token) Verify(ownerPub *rsa.PublicKey, now time.Time, skew time.Duration, required Rights) (*rsa.PublicKey, error) {
	if skew < 0 {
		skew = DefaultClockSkew
	}
	if !t.Rights.Has(required) {
		return nil, fmt.Errorf("%w: have %v, need %v", ErrRightsMismatch, t.Rights, required)
	}
	if err := secure.Verify(ownerPub, t.Hash, t.signingBytes(), t.Signature); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTokenSignature, err)
	}
	nb := time.Unix(0, t.NotBefore).Add(-skew)
	na := time.Unix(0, t.NotAfter).Add(skew)
	if now.Before(nb) || now.After(na) {
		return nil, fmt.Errorf("%w: valid [%v, %v], now %v", ErrExpired,
			time.Unix(0, t.NotBefore), time.Unix(0, t.NotAfter), now)
	}
	pub, err := secure.ParsePublicKey(t.DelegatePub)
	if err != nil {
		return nil, fmt.Errorf("%w: delegate key: %v", ErrMalformed, err)
	}
	return pub, nil
}

// ExpiresSoon reports whether the token's remaining validity at now is
// below threshold; entities "can generate a new token, once a token is
// closer to expiration" (§4.3).
func (t *Token) ExpiresSoon(now time.Time, threshold time.Duration) bool {
	return time.Unix(0, t.NotAfter).Sub(now) < threshold
}

// Marshal serializes the token including the signature.
func (t *Token) Marshal() []byte {
	body := t.signingBytes()
	out := make([]byte, 0, len(body)+len(t.Signature)+4)
	out = append(out, body...)
	out = appendLenPrefixed(out, t.Signature)
	return out
}

// Unmarshal parses a wire-format token.
func Unmarshal(b []byte) (*Token, error) {
	r := &tokenReader{b: b}
	if v := r.u8(); r.err == nil && v != tokenVersion {
		return nil, fmt.Errorf("%w: version %d", ErrMalformed, v)
	}
	t := &Token{}
	copy(t.TraceTopic[:], r.take(16))
	t.Owner = ident.EntityID(r.lenPrefixed())
	t.DelegatePub = []byte(r.lenPrefixed())
	t.Rights = Rights(r.u8())
	t.Hash = secure.Hash(r.u8())
	t.NotBefore = int64(r.u64())
	t.NotAfter = int64(r.u64())
	t.Signature = []byte(r.lenPrefixed())
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, r.err)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrMalformed)
	}
	return t, nil
}

func appendLenPrefixed(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// tokenReader is a minimal cursor over token wire bytes.
type tokenReader struct {
	b   []byte
	off int
	err error
}

func (r *tokenReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = errors.New("truncated")
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *tokenReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *tokenReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *tokenReader) lenPrefixed() string {
	b := r.take(4)
	if b == nil {
		return ""
	}
	n := binary.BigEndian.Uint32(b)
	if n > 1<<20 {
		r.err = errors.New("field too large")
		return ""
	}
	v := r.take(int(n))
	return string(v)
}
