package token

import (
	"testing"
	"time"

	"entitytrace/internal/ident"
	"entitytrace/internal/secure"
)

// FuzzUnmarshalToken checks the token parser never panics and that
// accepted tokens round trip.
func FuzzUnmarshalToken(f *testing.F) {
	signer, err := secure.NewSigner(ownerPair.Private, secure.SHA1)
	if err != nil {
		f.Fatal(err)
	}
	del, err := Grant("fuzz-owner", ident.NewUUID(), RightPublish, time.Hour, time.Now(), signer, secure.PaperRSABits)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(del.Token.Marshal())
	f.Add([]byte{})
	f.Add([]byte{tokenVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		tok, err := Unmarshal(data)
		if err != nil {
			return
		}
		back, err := Unmarshal(tok.Marshal())
		if err != nil {
			t.Fatalf("accepted token does not round trip: %v", err)
		}
		if back.TraceTopic != tok.TraceTopic || back.Owner != tok.Owner || back.Rights != tok.Rights {
			t.Fatal("round trip changed token identity")
		}
	})
}
