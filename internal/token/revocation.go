package token

import (
	"crypto/sha256"
	"errors"
	"sync"
	"time"
)

// ErrRevoked reports a token that was explicitly revoked before use.
var ErrRevoked = errors.New("token: revoked")

// Digest identifies a token by the SHA-256 of its signed byte image; two
// tokens share a digest only if every signed field matches.
func (t *Token) Digest() [32]byte {
	return sha256.Sum256(t.signingBytes())
}

// RevocationList is a set of explicitly revoked tokens. The paper ties a
// token's life primarily to its short validity window (§4.3); revocation
// covers the gap between a compromise and the window's natural end —
// e.g. a traced entity rotating its trace topic after a suspected
// broker compromise (§5.2). Entries expire with the token they revoke,
// so the list stays bounded by the number of live tokens.
type RevocationList struct {
	mu      sync.Mutex
	revoked map[[32]byte]int64 // digest -> token NotAfter (unix nanos)
}

// NewRevocationList creates an empty revocation list.
func NewRevocationList() *RevocationList {
	return &RevocationList{revoked: make(map[[32]byte]int64)}
}

// Revoke marks the token revoked until its validity window ends.
func (rl *RevocationList) Revoke(t *Token) {
	rl.mu.Lock()
	rl.revoked[t.Digest()] = t.NotAfter
	rl.mu.Unlock()
}

// Revoked reports whether t is on the list.
func (rl *RevocationList) Revoked(t *Token) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	_, ok := rl.revoked[t.Digest()]
	return ok
}

// Check returns ErrRevoked when t is on the list and nil otherwise, for
// composition with Verify in guard paths.
func (rl *RevocationList) Check(t *Token) error {
	if rl.Revoked(t) {
		return ErrRevoked
	}
	return nil
}

// Compact drops entries whose tokens have expired on their own (past
// NotAfter plus skew) — revoking them no longer adds anything.
func (rl *RevocationList) Compact(now time.Time, skew time.Duration) int {
	if skew < 0 {
		skew = DefaultClockSkew
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	dropped := 0
	for d, notAfter := range rl.revoked {
		if now.After(time.Unix(0, notAfter).Add(skew)) {
			delete(rl.revoked, d)
			dropped++
		}
	}
	return dropped
}

// Len reports the number of live revocations.
func (rl *RevocationList) Len() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.revoked)
}
