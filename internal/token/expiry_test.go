package token

import (
	"errors"
	"testing"
	"time"

	"entitytrace/internal/clock"
)

// TestExpiryBoundaries drives a fake clock across every edge of the
// validity window: issuance, the exact NotBefore/NotAfter instants, and
// each side of the skew tolerance (§4.3's NTP-bounded clock model).
func TestExpiryBoundaries(t *testing.T) {
	start := time.Unix(1_000_000, 0)
	const validity = time.Minute
	d := grant(t, RightPublish, validity, start)
	notAfter := start.Add(validity)

	// Chronological order: the fake clock only moves forward (Set
	// refuses to travel back), so it starts at the earliest probe.
	cases := []struct {
		name    string
		at      time.Time
		skew    time.Duration
		wantErr error
	}{
		{"before window beyond skew", start.Add(-MaxClockSkew - time.Nanosecond), MaxClockSkew, ErrExpired},
		{"before window within skew", start.Add(-MaxClockSkew), MaxClockSkew, nil},
		{"exactly NotBefore", start, MaxClockSkew, nil},
		{"mid window", start.Add(validity / 2), MaxClockSkew, nil},
		{"exactly NotAfter", notAfter, MaxClockSkew, nil},
		{"expired with tighter skew", notAfter.Add(MinClockSkew + time.Nanosecond), MinClockSkew, ErrExpired},
		{"expired within skew", notAfter.Add(MaxClockSkew), MaxClockSkew, nil},
		{"expired one tick beyond skew", notAfter.Add(MaxClockSkew + time.Nanosecond), MaxClockSkew, ErrExpired},
		{"expired long after", notAfter.Add(time.Hour), MaxClockSkew, ErrExpired},
	}
	fc := clock.NewFake(cases[0].at)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fc.Set(tc.at)
			_, err := d.Token.Verify(ownerPair.Public, fc.Now(), tc.skew, RightPublish)
			if tc.wantErr == nil && err != nil {
				t.Fatalf("Verify at %v: %v", tc.at, err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("Verify at %v: err=%v, want %v", tc.at, err, tc.wantErr)
			}
		})
	}
}

// TestClockSkewAsymmetry checks that the skew tolerance widens the
// window on both ends and that negative skew selects the default.
func TestClockSkewAsymmetry(t *testing.T) {
	start := time.Unix(2_000_000, 0)
	d := grant(t, RightPublish, time.Minute, start)
	end := start.Add(time.Minute)

	// Negative skew selects DefaultClockSkew: a point inside the default
	// tolerance verifies, a point outside does not.
	if _, err := d.Token.Verify(ownerPair.Public, end.Add(DefaultClockSkew), -1, RightPublish); err != nil {
		t.Fatalf("default-skew grace rejected: %v", err)
	}
	if _, err := d.Token.Verify(ownerPair.Public, end.Add(DefaultClockSkew+time.Millisecond), -1, RightPublish); !errors.Is(err, ErrExpired) {
		t.Fatalf("beyond default skew accepted, err=%v", err)
	}
	// Zero skew means the window is exact.
	if _, err := d.Token.Verify(ownerPair.Public, end.Add(time.Nanosecond), 0, RightPublish); !errors.Is(err, ErrExpired) {
		t.Fatalf("zero-skew grace accepted, err=%v", err)
	}
	if _, err := d.Token.Verify(ownerPair.Public, start.Add(-time.Nanosecond), 0, RightPublish); !errors.Is(err, ErrExpired) {
		t.Fatalf("zero-skew early accepted, err=%v", err)
	}
}

// TestRevocationList exercises revoke/reuse/compact: a verified token
// that gets revoked must fail the guard-side Check until it would have
// expired anyway, at which point Compact retires the entry.
func TestRevocationList(t *testing.T) {
	start := time.Unix(3_000_000, 0)
	fc := clock.NewFake(start)
	const validity = time.Minute
	d := grant(t, RightPublish, validity, fc.Now())
	rl := NewRevocationList()

	if err := rl.Check(d.Token); err != nil {
		t.Fatalf("fresh token flagged revoked: %v", err)
	}
	rl.Revoke(d.Token)
	if !rl.Revoked(d.Token) {
		t.Fatal("revoked token not flagged")
	}
	// Reuse after revoke: the signature and window still verify — the
	// cryptography has no revocation concept — so the guard must consult
	// the list.
	if _, err := d.Token.Verify(ownerPair.Public, fc.Now(), DefaultClockSkew, RightPublish); err != nil {
		t.Fatalf("revoked token should still pass pure Verify: %v", err)
	}
	if err := rl.Check(d.Token); !errors.Is(err, ErrRevoked) {
		t.Fatalf("Check = %v, want ErrRevoked", err)
	}

	// A reissued token (fresh delegate key, later window) is a distinct
	// digest and is not covered by the old revocation.
	fc.Advance(time.Second)
	d2 := grant(t, RightPublish, validity, fc.Now())
	if rl.Revoked(d2.Token) {
		t.Fatal("reissued token inherited revocation")
	}

	// Compact keeps the entry while the token could still be replayed...
	fc.Set(start.Add(validity))
	if n := rl.Compact(fc.Now(), DefaultClockSkew); n != 0 {
		t.Fatalf("Compact dropped %d live entries", n)
	}
	// ...and drops it once the window plus skew has passed.
	fc.Set(start.Add(validity + DefaultClockSkew + time.Millisecond))
	if n := rl.Compact(fc.Now(), DefaultClockSkew); n != 1 {
		t.Fatalf("Compact dropped %d entries, want 1", n)
	}
	if rl.Len() != 0 {
		t.Fatalf("list length %d after compact", rl.Len())
	}
	if rl.Revoked(d.Token) {
		t.Fatal("expired revocation still reported")
	}
}
