package tracectl

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"entitytrace/internal/avail"
	"entitytrace/internal/clock"
	"entitytrace/internal/message"
	"entitytrace/internal/obs"
)

var testT0 = time.Unix(1_700_000_000, 0)

func sampleDigest() *message.AvailabilityDigest {
	return &message.AvailabilityDigest{
		Reporter: "hb0",
		AtNanos:  testT0.UnixNano(),
		Rows: []message.AvailabilityRow{
			{
				Entity: "svc-up", State: uint8(avail.Up), SinceNanos: testT0.UnixNano(),
				Transitions: 4, Flaps: 1, DowntimeNanos: int64(3 * time.Second),
				Uptime5m: 1, Uptime1h: 0.995, Uptime24h: -1,
				MTBFNanos: int64(time.Minute), MTTRNanos: int64(2 * time.Second),
				DetectLastNanos: int64(80 * time.Millisecond), DetectMaxNanos: int64(400 * time.Millisecond),
				BudgetRemaining: 0.42, BurnRate: 1.7, Breaches: 1,
			},
			{
				Entity: "svc-down", State: uint8(avail.Down), SinceNanos: testT0.UnixNano(),
				Transitions: 1, Uptime5m: 0.2, Uptime1h: -1, Uptime24h: -1,
				DetectLastNanos: int64(time.Second), DetectMaxNanos: int64(time.Second),
				BudgetRemaining: -1, BurnRate: -1,
			},
		},
	}
}

func TestRenderAvailBoard(t *testing.T) {
	var out bytes.Buffer
	RenderAvailBoard(&out, []*message.AvailabilityDigest{sampleDigest()})
	got := out.String()
	for _, want := range []string{
		"reporter hb0", "svc-up", "svc-down", "UP", "DOWN",
		"[██████████] 100.0%", // full 5m bar for svc-up
		"budget", "burn 1.70", "breaches=1",
		"ttd", "flaps=1",
		"  n/a", // 24h window with no observations
		"slowest detections:",
		"1. svc-down", // worst detect-max ranks first
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("board missing %q:\n%s", want, got)
		}
	}
	// svc-down carries no SLO: its line must not show a budget.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "svc-down") && strings.Contains(line, "budget") {
			t.Fatalf("SLO-less row rendered a budget: %q", line)
		}
	}
}

func TestRenderAvailBoardEmpty(t *testing.T) {
	var out bytes.Buffer
	RenderAvailBoard(&out, nil)
	if !strings.Contains(out.String(), "no availability digests observed") {
		t.Fatalf("empty board output: %q", out.String())
	}
}

func TestRenderAvailJSONRoundTrip(t *testing.T) {
	var out bytes.Buffer
	if err := RenderAvailJSON(&out, []*message.AvailabilityDigest{sampleDigest()}); err != nil {
		t.Fatal(err)
	}
	var decoded []*message.AvailabilityDigest
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || len(decoded[0].Rows) != 2 || decoded[0].Rows[0].Entity != "svc-up" {
		t.Fatalf("round trip mangled digest: %+v", decoded)
	}
	// nil renders an empty array, not JSON null.
	out.Reset()
	if err := RenderAvailJSON(&out, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("nil digests rendered %q, want []", out.String())
	}
}

func TestUptimeBar(t *testing.T) {
	for _, tc := range []struct {
		ratio float64
		want  string
	}{
		{-1, "n/a"},
		{0, "[░░░░░░░░░░]   0.0%"},
		{0.5, "[█████░░░░░]  50.0%"},
		{1, "[██████████] 100.0%"},
		{1.5, "100.0%"}, // clamped
	} {
		if got := uptimeBar(tc.ratio); !strings.Contains(got, tc.want) {
			t.Fatalf("uptimeBar(%v) = %q, want containing %q", tc.ratio, got, tc.want)
		}
	}
	if got := uptimeCell(-1); !strings.Contains(got, "n/a") {
		t.Fatalf("uptimeCell(-1) = %q", got)
	}
	if got := uptimeCell(0.995); got != " 99.5%" {
		t.Fatalf("uptimeCell(0.995) = %q", got)
	}
}

func TestFetchAvail(t *testing.T) {
	fc := clock.NewFake(testT0)
	l := avail.New(avail.Config{Clock: fc})
	l.Observe(avail.Observation{Entity: "svc-1", Kind: avail.KindUp})
	fc.Advance(time.Second)
	srv := httptest.NewServer(avail.Handler(l, "node-a"))
	defer srv.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer dead.Close()

	// One reachable endpoint is enough; the dead one is skipped.
	cl := &Client{Admins: []string{dead.URL, srv.URL}}
	digests, err := cl.FetchAvail()
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 1 || digests[0].Reporter != "node-a" {
		t.Fatalf("digests = %+v", digests)
	}
	if len(digests[0].Rows) != 1 || digests[0].Rows[0].Entity != "svc-1" {
		t.Fatalf("rows = %+v", digests[0].Rows)
	}

	// All endpoints failing (or none configured) is an error.
	if _, err := (&Client{Admins: []string{dead.URL}}).FetchAvail(); err == nil {
		t.Fatal("all-dead FetchAvail did not fail")
	}
	if _, err := (&Client{}).FetchAvail(); err == nil {
		t.Fatal("admin-less FetchAvail did not fail")
	}
}

// waterfallDumps builds two synthetic flight dumps describing one trace
// crossing b0 → b1 (entity ingress on b0, egress to the tracker on b1).
func waterfallDumps(tr obs.FlightTrace) []*obs.FlightDump {
	base := testT0.UnixNano()
	return []*obs.FlightDump{
		{Node: "b0", Head: 2, Events: []obs.FlightEvent{
			{Seq: 1, AtNanos: base, Kind: obs.FlightIngress, Trace: tr, Peer: "svc-1"},
			{Seq: 2, AtNanos: base + 100, Kind: obs.FlightEgress, Trace: tr, Peer: "b1"},
		}},
		{Node: "b1", Head: 2, Events: []obs.FlightEvent{
			{Seq: 1, AtNanos: base + 300, Kind: obs.FlightIngress, Trace: tr, Peer: "b0"},
			{Seq: 2, AtNanos: base + 400, Kind: obs.FlightEgress, Trace: tr, Peer: "tracker-1"},
		}},
	}
}

func TestAssembleWaterfall(t *testing.T) {
	tr, err := obs.ParseFlightTrace("00112233-4455-6677-8899-aabbccddeeff")
	if err != nil {
		t.Fatal(err)
	}
	wf, err := AssembleWaterfall(tr, waterfallDumps(tr))
	if err != nil {
		t.Fatal(err)
	}
	wantPath := []string{"svc-1", "b0", "b1", "tracker-1"}
	if len(wf.Path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", wf.Path, wantPath)
	}
	for i, p := range wantPath {
		if wf.Path[i] != p {
			t.Fatalf("path = %v, want %v", wf.Path, wantPath)
		}
	}
	if len(wf.Events) != 4 || wf.TotalNanos != 400 {
		t.Fatalf("events=%d total=%d, want 4 events over 400ns", len(wf.Events), wf.TotalNanos)
	}

	// Foreign-trace events are filtered out entirely.
	other, _ := obs.ParseFlightTrace("ffffffff-ffff-ffff-ffff-ffffffffffff")
	if _, err := AssembleWaterfall(other, waterfallDumps(tr)); err == nil {
		t.Fatal("waterfall for unseen trace did not fail")
	}
}

func TestRenderWaterfallJSON(t *testing.T) {
	tr, err := obs.ParseFlightTrace("00112233-4455-6677-8899-aabbccddeeff")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := RenderWaterfallJSON(&out, tr, waterfallDumps(tr)); err != nil {
		t.Fatal(err)
	}
	var wf Waterfall
	if err := json.Unmarshal(out.Bytes(), &wf); err != nil {
		t.Fatal(err)
	}
	if wf.Trace != tr.String() || len(wf.Events) != 4 || wf.Events[0].Node != "b0" {
		t.Fatalf("JSON waterfall mangled: %+v", wf)
	}
	// The text renderer consumes the same assembly.
	out.Reset()
	if err := RenderWaterfall(&out, tr, waterfallDumps(tr)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "path: svc-1 → b0 → b1 → tracker-1") {
		t.Fatalf("text waterfall missing path:\n%s", out.String())
	}
}

func TestRenderMapJSON(t *testing.T) {
	snaps := []*message.BrokerHealth{{Broker: "hb0", AtNanos: testT0.UnixNano(), Subscriptions: 3}}
	var out bytes.Buffer
	if err := RenderMapJSON(&out, snaps); err != nil {
		t.Fatal(err)
	}
	var decoded []*message.BrokerHealth
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Broker != "hb0" || decoded[0].Subscriptions != 3 {
		t.Fatalf("map JSON mangled: %+v", decoded)
	}
	out.Reset()
	if err := RenderMapJSON(&out, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("nil snaps rendered %q, want []", out.String())
	}
}

func TestTailJSON(t *testing.T) {
	fr := obs.NewFlightRecorder("t0", 64, 1)
	fr.Record(obs.FlightEvent{Kind: obs.FlightIngress, Peer: "svc-1"})
	srv := httptest.NewServer(obs.FlightHandler(fr))
	defer srv.Close()
	cl := &Client{Admins: []string{srv.URL}, JSON: true}
	var out bytes.Buffer
	n, err := cl.Tail(&out, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("tail printed no events")
	}
	// Every line is one JSON object with node + event.
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var ne struct {
			Node  string          `json:"node"`
			Event obs.FlightEvent `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &ne); err != nil {
			t.Fatalf("tail line is not JSON: %q: %v", line, err)
		}
		if ne.Node != "t0" {
			t.Fatalf("tail line node = %q", ne.Node)
		}
	}
}

// A node restart resets its flight recorder's sequence space. Tail must
// notice the head moving backwards and resync from the start of the new
// recorder instead of polling with a stale cursor that skips (or hides
// forever) everything the restarted node records.
func TestTailResyncsAfterNodeRestart(t *testing.T) {
	before := obs.NewFlightRecorder("t0", 64, 1)
	for i := 0; i < 3; i++ {
		before.Record(obs.FlightEvent{Kind: obs.FlightIngress, Peer: "pre-restart"})
	}
	after := obs.NewFlightRecorder("t0", 64, 1)
	after.Record(obs.FlightEvent{Kind: obs.FlightIngress, Peer: "post-restart"})

	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// First poll hits the original recorder; every later poll hits
		// the restarted node's fresh (shorter) recorder.
		if calls.Add(1) == 1 {
			obs.FlightHandler(before).ServeHTTP(w, r)
			return
		}
		obs.FlightHandler(after).ServeHTTP(w, r)
	}))
	defer srv.Close()

	cl := &Client{Admins: []string{srv.URL}, JSON: true}
	var out bytes.Buffer
	n, err := cl.Tail(&out, time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("tail printed %d events, want 4 (3 pre-restart + 1 resynced)", n)
	}
	if !strings.Contains(out.String(), "post-restart") {
		t.Fatal("post-restart event missing: stale cursor was not resynced")
	}
}
