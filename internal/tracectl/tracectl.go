// Package tracectl is the debugging console for the tracing fabric: it
// fetches flight-recorder dumps from broker admin endpoints, renders
// end-to-end waterfalls for a trace ID, tails live flight events, and
// draws a broker map from the self-monitoring snapshots published on
// the system-health topic. The cmd/tracectl binary is a thin flag
// wrapper over this package so every operation is testable in-process.
package tracectl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"entitytrace/internal/broker"
	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/obs"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// Client talks to broker admin endpoints (the /trace handler).
type Client struct {
	// Admins are admin base URLs, e.g. http://127.0.0.1:9100.
	Admins []string
	// HTTP overrides the HTTP client (default: 5 s timeout).
	HTTP *http.Client
	// JSON switches the fetch-based subcommands (trace, tail) from the
	// text view to machine-readable JSON output.
	JSON bool
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// fetch retrieves one flight dump from an admin base URL with the given
// query string.
func (c *Client) fetch(admin, query string) (*obs.FlightDump, error) {
	u := strings.TrimSuffix(admin, "/") + "/trace"
	if query != "" {
		u += "?" + query
	}
	resp, err := c.httpClient().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tracectl: %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return obs.ParseFlightDump(body)
}

// FetchAll queries every admin endpoint with the same filter, skipping
// unreachable ones. It fails only when no endpoint answered.
func (c *Client) FetchAll(query string) ([]*obs.FlightDump, error) {
	var dumps []*obs.FlightDump
	var errs []string
	for _, a := range c.Admins {
		d, err := c.fetch(a, query)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		dumps = append(dumps, d)
	}
	if len(dumps) == 0 {
		if len(errs) > 0 {
			return nil, fmt.Errorf("tracectl: no admin endpoint answered: %s", strings.Join(errs, "; "))
		}
		return nil, fmt.Errorf("tracectl: no admin endpoints configured")
	}
	return dumps, nil
}

// nodeEvent pairs a flight event with the node that recorded it, for
// cross-broker merged views.
type nodeEvent struct {
	Node string          `json:"node"`
	Ev   obs.FlightEvent `json:"event"`
}

// mergeEvents flattens dumps into one timestamp-ordered list.
func mergeEvents(dumps []*obs.FlightDump) []nodeEvent {
	var out []nodeEvent
	for _, d := range dumps {
		for _, ev := range d.Events {
			out = append(out, nodeEvent{Node: d.Node, Ev: ev})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ev.AtNanos < out[j].Ev.AtNanos })
	return out
}

// formatEvent renders one event line relative to a base timestamp.
func formatEvent(w io.Writer, node string, ev obs.FlightEvent, base int64) {
	at := time.Duration(ev.AtNanos - base)
	fmt.Fprintf(w, "  %+11s  %-8s %-10s", at.Round(time.Microsecond), node, ev.Kind)
	if ev.Peer != "" {
		fmt.Fprintf(w, " peer=%s", ev.Peer)
	}
	if ev.Kind == obs.FlightRoute {
		fmt.Fprintf(w, " remote=%d local=%d", ev.N, ev.N2)
	} else if ev.N != 0 {
		fmt.Fprintf(w, " n=%d", ev.N)
	}
	if ev.Cache != "" {
		fmt.Fprintf(w, " cache=%s", ev.Cache)
	}
	if ev.DurNanos != 0 {
		fmt.Fprintf(w, " dur=%s", time.Duration(ev.DurNanos).Round(time.Microsecond))
	}
	if ev.Reason != "" {
		fmt.Fprintf(w, " reason=%q", ev.Reason)
	}
	// The trace ID makes tail lines feed `tracectl trace <uuid>` directly.
	if ev.Trace != (obs.FlightTrace{}) {
		fmt.Fprintf(w, " trace=%s", ev.Trace)
	}
	if ev.Topic != "" {
		fmt.Fprintf(w, " topic=%s", ev.Topic)
	}
	fmt.Fprintln(w)
}

// Waterfall fetches the flight events for one trace ID from every admin
// endpoint and renders the merged entity→broker(s)→tracker flow: the
// chronological event list, the reconstructed path, and skew-normalized
// per-stage latencies (within-broker processing vs inter-broker wire
// legs). With Client.JSON set, the assembled waterfall is emitted as a
// JSON document instead of the text view.
func (c *Client) Waterfall(w io.Writer, id string) error {
	t, err := obs.ParseFlightTrace(id)
	if err != nil {
		return err
	}
	dumps, err := c.FetchAll("id=" + url.QueryEscape(t.String()))
	if err != nil {
		return err
	}
	if c.JSON {
		return RenderWaterfallJSON(w, t, dumps)
	}
	return RenderWaterfall(w, t, dumps)
}

// Waterfall is the assembled view of one trace across brokers: the
// reconstructed path, the merged event list, and the skew-normalized
// stage latencies. It is what both the text and JSON waterfall
// renderers consume.
type Waterfall struct {
	Trace  string        `json:"trace"`
	Path   []string      `json:"path"`
	Events []nodeEvent   `json:"events"`
	Stages []obs.Segment `json:"stages,omitempty"`
	// TotalNanos and SkewNanos mirror the obs.Assembly totals.
	TotalNanos int64 `json:"total_nanos"`
	SkewNanos  int64 `json:"skew_nanos,omitempty"`
}

// AssembleWaterfall filters the dumps down to trace t and builds the
// merged waterfall (the testable core of the trace subcommand).
func AssembleWaterfall(t obs.FlightTrace, dumps []*obs.FlightDump) (*Waterfall, error) {
	events := mergeEvents(dumps)
	kept := events[:0]
	for _, ne := range events {
		if ne.Ev.Trace == t {
			kept = append(kept, ne)
		}
	}
	events = kept
	if len(events) == 0 {
		return nil, fmt.Errorf("tracectl: no flight events for trace %s (sampled out, or ring overwritten)", t)
	}

	// Per-broker first/last event times, in traversal (first-seen) order.
	type window struct {
		node        string
		first, last int64
	}
	var order []*window
	byNode := make(map[string]*window)
	for _, ne := range events {
		win, ok := byNode[ne.Node]
		if !ok {
			win = &window{node: ne.Node, first: ne.Ev.AtNanos, last: ne.Ev.AtNanos}
			byNode[ne.Node] = win
			order = append(order, win)
			continue
		}
		if ne.Ev.AtNanos < win.first {
			win.first = ne.Ev.AtNanos
		}
		if ne.Ev.AtNanos > win.last {
			win.last = ne.Ev.AtNanos
		}
	}

	// Path endpoints: the entity is the non-broker ingress peer on the
	// first broker; the tracker-side client is the egress peer on the
	// last broker.
	path := make([]string, 0, len(order)+2)
	if first := order[0]; true {
		for _, ne := range events {
			if ne.Node == first.node && ne.Ev.Kind == obs.FlightIngress && ne.Ev.Peer != "" && ne.Ev.Peer != "local" {
				path = append(path, ne.Ev.Peer)
				break
			}
		}
	}
	for _, win := range order {
		path = append(path, win.node)
	}
	lastNode := order[len(order)-1].node
	for i := len(events) - 1; i >= 0; i-- {
		ne := events[i]
		if ne.Node == lastNode && ne.Ev.Kind == obs.FlightEgress && ne.Ev.Peer != "" {
			path = append(path, ne.Ev.Peer)
			break
		}
	}

	// Stage attribution: each broker's first/last event bound its local
	// processing; the gap to the next broker's first event is the wire
	// leg. Assemble normalizes inter-broker clock skew.
	var hops []obs.HopRecord
	for _, win := range order {
		hops = append(hops, obs.HopRecord{Node: win.node, AtNanos: win.first})
		if win.last != win.first {
			hops = append(hops, obs.HopRecord{Node: win.node, AtNanos: win.last})
		}
	}
	asm := obs.Assemble(hops)
	return &Waterfall{
		Trace:      t.String(),
		Path:       path,
		Events:     events,
		Stages:     asm.Segments,
		TotalNanos: asm.TotalNanos,
		SkewNanos:  asm.SkewNanos,
	}, nil
}

// RenderWaterfall renders the waterfall for trace t from the given
// dumps as the human-readable text view.
func RenderWaterfall(w io.Writer, t obs.FlightTrace, dumps []*obs.FlightDump) error {
	wf, err := AssembleWaterfall(t, dumps)
	if err != nil {
		return err
	}
	brokers := make(map[string]bool)
	for _, ne := range wf.Events {
		brokers[ne.Node] = true
	}
	fmt.Fprintf(w, "trace %s — %d events across %d broker(s)\n", wf.Trace, len(wf.Events), len(brokers))
	fmt.Fprintf(w, "path: %s\n", strings.Join(wf.Path, " → "))
	base := wf.Events[0].Ev.AtNanos
	for _, ne := range wf.Events {
		formatEvent(w, ne.Node, ne.Ev, base)
	}
	if len(wf.Stages) > 0 {
		fmt.Fprintln(w, "stages:")
		for _, seg := range wf.Stages {
			label := seg.From + " → " + seg.To
			if seg.From == seg.To {
				label = "within " + seg.From
			}
			fmt.Fprintf(w, "  %-24s %s\n", label, time.Duration(seg.Nanos).Round(time.Microsecond))
		}
		fmt.Fprintf(w, "  %-24s %s", "total", time.Duration(wf.TotalNanos).Round(time.Microsecond))
		if wf.SkewNanos != 0 {
			fmt.Fprintf(w, " (skew clamped: %s)", time.Duration(wf.SkewNanos).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Tail polls every admin endpoint and prints newly recorded flight
// events in one merged, timestamp-ordered stream. It runs rounds poll
// rounds spaced by interval (rounds <= 0 means poll once) and returns
// the number of events printed. With Client.JSON set, each event is
// printed as one JSON object per line (node + event) instead of the
// text rendering.
func (c *Client) Tail(w io.Writer, interval time.Duration, rounds int) (int, error) {
	if rounds <= 0 {
		rounds = 1
	}
	since := make(map[string]uint64)
	printed := 0
	for round := 0; round < rounds; round++ {
		if round > 0 {
			time.Sleep(interval)
		}
		var fresh []*obs.FlightDump
		for _, a := range c.Admins {
			d, err := c.fetch(a, fmt.Sprintf("since=%d", since[a]))
			if err != nil {
				continue
			}
			if d.Head < since[a] {
				// The node's flight head moved backwards: it restarted
				// and our cursor is from the old recorder's sequence
				// space, so every future poll would return nothing.
				// Resync from the beginning of the new recorder.
				if d, err = c.fetch(a, "since=0"); err != nil {
					continue
				}
			}
			since[a] = d.Head
			fresh = append(fresh, d)
		}
		if len(fresh) == 0 && printed == 0 && round == rounds-1 {
			return 0, fmt.Errorf("tracectl: no admin endpoint answered")
		}
		events := mergeEvents(fresh)
		if len(events) == 0 {
			continue
		}
		base := events[0].Ev.AtNanos
		for _, ne := range events {
			if c.JSON {
				if err := json.NewEncoder(w).Encode(ne); err != nil {
					return printed, err
				}
			} else {
				formatEvent(w, ne.Node, ne.Ev, base)
			}
			printed++
		}
	}
	return printed, nil
}

// RenderWaterfallJSON emits the assembled waterfall as one indented
// JSON document.
func RenderWaterfallJSON(w io.Writer, t obs.FlightTrace, dumps []*obs.FlightDump) error {
	wf, err := AssembleWaterfall(t, dumps)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wf)
}

// RenderMapJSON emits the broker self-monitoring snapshots as one
// indented JSON document (the machine-readable form of RenderMap).
func RenderMapJSON(w io.Writer, snaps []*message.BrokerHealth) error {
	if snaps == nil {
		snaps = []*message.BrokerHealth{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}

// WatchHealth subscribes to the system-health topic via the given
// broker and collects self-monitoring snapshots for the given duration,
// returning the latest snapshot per broker. One subscription anywhere
// sees every broker: the topic's default Disseminate distribution
// propagates the snapshots network-wide.
func WatchHealth(tr transport.Transport, addr string, name ident.EntityID, d time.Duration) ([]*message.BrokerHealth, error) {
	cl, err := broker.Connect(tr, addr, name)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	type keyed struct {
		bh *message.BrokerHealth
	}
	snaps := make(chan *message.BrokerHealth, 256)
	err = cl.Subscribe(topic.SystemHealth(), func(env *message.Envelope) {
		if env.Type != message.TraceBrokerHealth {
			return
		}
		bh, err := message.UnmarshalBrokerHealth(env.Payload)
		if err != nil {
			return
		}
		select {
		case snaps <- bh:
		default:
		}
	})
	if err != nil {
		return nil, err
	}
	latest := make(map[string]*keyed)
	deadline := time.After(d)
collect:
	for {
		select {
		case bh := <-snaps:
			if cur, ok := latest[bh.Broker]; !ok || bh.AtNanos >= cur.bh.AtNanos {
				latest[bh.Broker] = &keyed{bh}
			}
		case <-deadline:
			break collect
		}
	}
	names := make([]string, 0, len(latest))
	for n := range latest {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*message.BrokerHealth, 0, len(names))
	for _, n := range names {
		out = append(out, latest[n].bh)
	}
	return out, nil
}

// RenderMap renders broker self-monitoring snapshots as a topology map:
// every broker with its peer links, queue depths and offender scores,
// plus its routing and guard-cache counters.
func RenderMap(w io.Writer, snaps []*message.BrokerHealth) {
	if len(snaps) == 0 {
		fmt.Fprintln(w, "no broker health snapshots observed")
		return
	}
	for _, bh := range snaps {
		fmt.Fprintf(w, "broker %s  subs=%d  flight-head=%d  at=%s\n",
			bh.Broker, bh.Subscriptions, bh.FlightHead,
			time.Unix(0, bh.AtNanos).UTC().Format(time.RFC3339Nano))
		if bh.FabricMembers > 0 {
			fmt.Fprintf(w, "  fabric: epoch=%d members=%d owned=%d‰\n",
				bh.FabricEpoch, bh.FabricMembers, bh.FabricOwnedPerMille)
		}
		for i, p := range bh.Peers {
			branch := "├─"
			if i == len(bh.Peers)-1 {
				branch = "└─"
			}
			kind := "client"
			if p.IsBroker {
				kind = "broker"
			}
			fmt.Fprintf(w, "  %s %-16s %-6s queued=%d score=%.1f\n", branch, p.Name, kind, p.Queued, p.Score)
		}
		fmt.Fprintf(w, "  stats: published=%d forwarded=%d duplicates=%d violations=%d sheds=%d throttled=%d guard=%d/%d hit/miss\n",
			bh.Published, bh.Forwarded, bh.Duplicates, bh.Violations,
			bh.EgressSheds, bh.Throttled, bh.GuardHits, bh.GuardMisses)
	}
}
