package tracectl

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"entitytrace/internal/broker"
	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// This file is the subscriber half of the fleet telemetry plane
// (PROTOCOL.md §3.10): `tracectl top` subscribes once to the
// system-telemetry topic, folds every broker's delta-encoded snapshots
// back into cumulative series and per-second rates, and renders a live
// fleet board — per-broker sparkline columns, fleet totals, and the
// standing alert set (including absence-of-heartbeat alerts the
// assembler synthesizes itself when a broker's snapshots stop).

// sparkSamples is the per-series rate history behind each sparkline.
const sparkSamples = 32

// staleAfterIntervals is how many missed publisher intervals mark a
// broker stale and raise the synthesized heartbeat-absent alert.
const staleAfterIntervals = 3

// topSeries tracks one series of one broker inside the assembler.
type topSeries struct {
	counter bool
	cum     int64 // folded cumulative value (counters) or latest (gauges)
	rate    float64
	spark   [sparkSamples]float64
	n       int // total rate samples recorded (ring write cursor)
}

func (s *topSeries) pushRate(v float64) {
	s.rate = v
	s.spark[s.n%sparkSamples] = v
	s.n++
}

// sparkline renders the ring oldest-to-newest.
func (s *topSeries) sparkline(width int) string {
	return sparkline(s.history(width))
}

func (s *topSeries) history(width int) []float64 {
	if width > sparkSamples {
		width = sparkSamples
	}
	have := s.n
	if have > width {
		have = width
	}
	out := make([]float64, 0, have)
	for i := s.n - have; i < s.n; i++ {
		out = append(out, s.spark[i%sparkSamples])
	}
	return out
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline maps values to the classic 8-level block ramp, scaled to
// the window's own maximum.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		if max <= 0 || v <= 0 {
			out[i] = sparkRunes[0]
			continue
		}
		idx := int(v / max * float64(len(sparkRunes)-1))
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// topBroker is one broker's folded state.
type topBroker struct {
	name     string
	epoch    uint64
	atNanos  int64 // publisher clock of the last snapshot
	seenAt   int64 // assembler clock when it arrived
	interval time.Duration
	series   map[string]*topSeries
	// alerts maps rule -> the broker's last reported state of it.
	alerts map[string]message.TelemetryAlert
	// absentSince, when nonzero, is the synthesized heartbeat-absent
	// episode start.
	absentSince int64
}

// TopAssembler folds TELEMETRY_SNAPSHOT payloads from any number of
// brokers into a queryable fleet view. Safe for concurrent Ingest and
// Board calls.
type TopAssembler struct {
	mu      sync.Mutex
	brokers map[string]*topBroker
	now     func() time.Time
	// episodes counts distinct alert episodes per (broker, rule,
	// since) — the e2e's "exactly one edge" oracle.
	episodes map[string]struct{}
}

// NewTopAssembler builds an empty assembler; now may be nil (wall
// clock).
func NewTopAssembler(now func() time.Time) *TopAssembler {
	if now == nil {
		now = time.Now
	}
	return &TopAssembler{
		brokers:  make(map[string]*topBroker),
		now:      now,
		episodes: make(map[string]struct{}),
	}
}

// Ingest folds one snapshot. Out-of-order snapshots (older publisher
// clock than the last seen) are dropped; a fabric-epoch change re-keys
// the broker's view but keeps its series history.
func (a *TopAssembler) Ingest(ts *message.TelemetrySnapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.brokers[ts.Broker]
	if b == nil {
		b = &topBroker{
			name:   ts.Broker,
			series: make(map[string]*topSeries),
			alerts: make(map[string]message.TelemetryAlert),
		}
		a.brokers[ts.Broker] = b
	}
	if ts.AtNanos <= b.atNanos {
		return
	}
	dt := float64(ts.AtNanos-b.atNanos) / float64(time.Second)
	first := b.atNanos == 0
	b.atNanos = ts.AtNanos
	b.seenAt = a.now().UnixNano()
	b.epoch = ts.FabricEpoch
	b.interval = time.Duration(ts.IntervalMillis) * time.Millisecond
	b.absentSince = 0
	for _, row := range ts.Rows {
		s := b.series[row.Name]
		if s == nil {
			s = &topSeries{counter: row.Counter}
			b.series[row.Name] = s
		}
		if !row.Counter {
			s.cum = row.Value
			continue
		}
		if row.Value < 0 {
			// A negative delta means the publisher restarted mid-stream
			// and re-anchored below our fold: adopt its anchor rather
			// than spiking the cumulative backwards.
			s.cum = row.Value
			s.pushRate(0)
			continue
		}
		s.cum += row.Value
		if first || dt <= 0 {
			// The anchor snapshot carries the publisher's lifetime
			// cumulative, not one interval's movement — no rate yet.
			s.pushRate(0)
			continue
		}
		s.pushRate(float64(row.Value) / dt)
	}
	for rule := range b.alerts {
		// Standing alerts are re-asserted every snapshot; one that
		// vanishes without a clear edge cleared while we were not
		// looking.
		found := false
		for _, al := range ts.Alerts {
			if al.Rule == rule {
				found = true
				break
			}
		}
		if !found {
			delete(b.alerts, rule)
		}
	}
	for _, al := range ts.Alerts {
		if al.Firing {
			a.episodes[fmt.Sprintf("%s|%s|%d", ts.Broker, al.Rule, al.SinceNanos)] = struct{}{}
			b.alerts[al.Rule] = al
		} else {
			delete(b.alerts, al.Rule)
		}
	}
}

// Episodes reports how many distinct alert episodes — unique (broker,
// rule, firing-edge time) triples — the assembler has observed.
func (a *TopAssembler) Episodes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.episodes)
}

// TopAlert is one standing alert row of the board.
type TopAlert struct {
	Broker string  `json:"broker"`
	Rule   string  `json:"rule"`
	Series string  `json:"series"`
	Since  int64   `json:"since_nanos"`
	Value  float64 `json:"value"`
	// Synthesized marks assembler-made heartbeat-absent alerts.
	Synthesized bool `json:"synthesized,omitempty"`
}

// TopBrokerView is one broker's row of the board.
type TopBrokerView struct {
	Broker      string  `json:"broker"`
	FabricEpoch uint64  `json:"fabric_epoch"`
	AtNanos     int64   `json:"at_nanos"`
	Stale       bool    `json:"stale"`
	PublishRate float64 `json:"publish_rate"`
	ForwardRate float64 `json:"forward_rate"`
	DeliverRate float64 `json:"deliver_rate"`
	EgressDepth int64   `json:"egress_queue_depth"`
	GuardHitPct float64 `json:"guard_hit_pct"`
	ReplayRate  float64 `json:"replay_rate"`
	// Series carries every folded series: cumulative/latest value and
	// current rate (counters only).
	Series map[string]TopSeriesView `json:"series"`
	// Spark is the publish-rate sparkline history, oldest first.
	Spark []float64 `json:"spark"`
}

// TopSeriesView is one series' folded state.
type TopSeriesView struct {
	Counter bool    `json:"counter"`
	Value   int64   `json:"value"`
	Rate    float64 `json:"rate,omitempty"`
}

// TopBoard is one point-in-time fleet view.
type TopBoard struct {
	AtNanos  int64           `json:"at_nanos"`
	Brokers  []TopBrokerView `json:"brokers"`
	Alerts   []TopAlert      `json:"alerts"`
	Episodes int             `json:"episodes"`
	// Fleet totals across live brokers.
	FleetPublishRate float64 `json:"fleet_publish_rate"`
	FleetEgressDepth int64   `json:"fleet_egress_depth"`
}

func (b *topBroker) stale(nowNanos int64) bool {
	iv := b.interval
	if iv <= 0 {
		iv = time.Second
	}
	return nowNanos-b.seenAt > staleAfterIntervals*int64(iv)
}

// Board snapshots the assembled fleet view. Brokers whose snapshots
// stopped arriving for staleAfterIntervals publisher intervals are
// marked stale and carry a synthesized heartbeat-absent alert — the
// subscriber-side absence detector a killed broker cannot suppress.
func (a *TopAssembler) Board() *TopBoard {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now().UnixNano()
	board := &TopBoard{AtNanos: now}
	names := make([]string, 0, len(a.brokers))
	for n := range a.brokers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := a.brokers[n]
		v := TopBrokerView{
			Broker:      b.name,
			FabricEpoch: b.epoch,
			AtNanos:     b.atNanos,
			Stale:       b.stale(now),
			Series:      make(map[string]TopSeriesView, len(b.series)),
		}
		for name, s := range b.series {
			sv := TopSeriesView{Counter: s.counter, Value: s.cum}
			if s.counter {
				sv.Rate = s.rate
			}
			v.Series[name] = sv
		}
		if s := b.series["broker_published_total"]; s != nil {
			v.PublishRate = s.rate
			v.Spark = s.history(sparkSamples)
		}
		if s := b.series["broker_forwarded_total"]; s != nil {
			v.ForwardRate = s.rate
		}
		if s := b.series["broker_delivered_local_total"]; s != nil {
			v.DeliverRate = s.rate
		}
		if s := b.series["broker_egress_queue_depth"]; s != nil {
			v.EgressDepth = s.cum
		}
		if s := b.series["broker_replay_records_total"]; s != nil {
			v.ReplayRate = s.rate
		}
		hits, misses := int64(0), int64(0)
		if s := b.series["guard_hits_total"]; s != nil {
			hits = s.cum
		}
		if s := b.series["guard_misses_total"]; s != nil {
			misses = s.cum
		}
		if hits+misses > 0 {
			v.GuardHitPct = 100 * float64(hits) / float64(hits+misses)
		}
		if !v.Stale {
			board.FleetPublishRate += v.PublishRate
			board.FleetEgressDepth += v.EgressDepth
		}
		board.Brokers = append(board.Brokers, v)

		ruleNames := make([]string, 0, len(b.alerts))
		for r := range b.alerts {
			ruleNames = append(ruleNames, r)
		}
		sort.Strings(ruleNames)
		for _, r := range ruleNames {
			al := b.alerts[r]
			board.Alerts = append(board.Alerts, TopAlert{
				Broker: b.name, Rule: al.Rule, Series: al.Series,
				Since: al.SinceNanos, Value: al.Value,
			})
		}
		if v.Stale {
			if b.absentSince == 0 {
				b.absentSince = now
			}
			since := b.absentSince
			a.episodes[fmt.Sprintf("%s|heartbeat-absent|%d", b.name, since)] = struct{}{}
			board.Alerts = append(board.Alerts, TopAlert{
				Broker: b.name, Rule: "heartbeat-absent", Series: "telemetry_snapshots",
				Since: since, Synthesized: true,
			})
		}
	}
	board.Episodes = len(a.episodes)
	return board
}

// WatchTelemetry connects to a broker, subscribes to the
// system-telemetry topic and feeds every snapshot to the assembler
// until the duration elapses, invoking onTick (nil-tolerant) every tick
// interval with the current board — the live half of `tracectl top`.
// One subscription anywhere sees every broker: the topic's Disseminate
// distribution propagates the snapshots network-wide.
func WatchTelemetry(tr transport.Transport, addr string, name ident.EntityID,
	d, tick time.Duration, a *TopAssembler, onTick func(*TopBoard)) error {
	cl, err := broker.Connect(tr, addr, name)
	if err != nil {
		return err
	}
	defer cl.Close()
	snaps := make(chan *message.TelemetrySnapshot, 256)
	err = cl.Subscribe(topic.SystemTelemetry(), func(env *message.Envelope) {
		if env.Type != message.TraceTelemetrySnapshot {
			return
		}
		ts, err := message.UnmarshalTelemetrySnapshot(env.Payload)
		if err != nil {
			return
		}
		select {
		case snaps <- ts:
		default:
		}
	})
	if err != nil {
		return err
	}
	if tick <= 0 {
		tick = time.Second
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	deadline := time.After(d)
	for {
		select {
		case ts := <-snaps:
			a.Ingest(ts)
		case <-ticker.C:
			if onTick != nil {
				onTick(a.Board())
			}
		case <-deadline:
			return nil
		}
	}
}

// RenderTop renders the board as the live console layout: one row per
// broker with its sparkline column, the fleet totals line, then the
// standing alerts.
func RenderTop(w io.Writer, b *TopBoard) {
	if len(b.Brokers) == 0 {
		fmt.Fprintln(w, "no telemetry snapshots observed")
		return
	}
	fmt.Fprintf(w, "%-18s %5s %8s %8s %8s %7s %6s  %s\n",
		"BROKER", "EPOCH", "PUB/s", "FWD/s", "DLV/s", "EGRESS", "GUARD%", "PUBLISH RATE")
	for _, v := range b.Brokers {
		state := ""
		if v.Stale {
			state = "  [STALE]"
		}
		fmt.Fprintf(w, "%-18s %5d %8.1f %8.1f %8.1f %7d %6.1f  %s%s\n",
			v.Broker, v.FabricEpoch, v.PublishRate, v.ForwardRate, v.DeliverRate,
			v.EgressDepth, v.GuardHitPct, sparkline(v.Spark), state)
	}
	fmt.Fprintf(w, "fleet: %d broker(s)  publish=%.1f/s  egress-depth=%d  episodes=%d\n",
		len(b.Brokers), b.FleetPublishRate, b.FleetEgressDepth, b.Episodes)
	for _, al := range b.Alerts {
		tag := "ALERT"
		if al.Synthesized {
			tag = "ALERT*"
		}
		fmt.Fprintf(w, "%-7s %s: %s on %s since %s value=%.1f\n",
			tag, al.Broker, al.Rule, al.Series,
			time.Unix(0, al.Since).UTC().Format(time.RFC3339), al.Value)
	}
}

// RenderTopJSON emits the board as one indented JSON document (the
// -format json form the e2e asserts against).
func RenderTopJSON(w io.Writer, b *TopBoard) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
