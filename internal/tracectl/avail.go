package tracectl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"entitytrace/internal/avail"
	"entitytrace/internal/broker"
	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// WatchAvailability subscribes to the system-availability topic via the
// given broker and collects availability digests for the given
// duration, returning the latest digest per reporter. Like the health
// topic, one subscription anywhere sees every reporter: the topic's
// Disseminate distribution propagates digests network-wide.
func WatchAvailability(tr transport.Transport, addr string, name ident.EntityID, d time.Duration) ([]*message.AvailabilityDigest, error) {
	cl, err := broker.Connect(tr, addr, name)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	digests := make(chan *message.AvailabilityDigest, 256)
	err = cl.Subscribe(topic.SystemAvailability(), func(env *message.Envelope) {
		if env.Type != message.TraceAvailabilityDigest {
			return
		}
		ad, err := message.UnmarshalAvailabilityDigest(env.Payload)
		if err != nil {
			return
		}
		select {
		case digests <- ad:
		default:
		}
	})
	if err != nil {
		return nil, err
	}
	latest := make(map[string]*message.AvailabilityDigest)
	deadline := time.After(d)
collect:
	for {
		select {
		case ad := <-digests:
			if cur, ok := latest[ad.Reporter]; !ok || ad.AtNanos >= cur.AtNanos {
				latest[ad.Reporter] = ad
			}
		case <-deadline:
			break collect
		}
	}
	return sortDigests(latest), nil
}

// FetchAvail queries the /avail admin endpoint of every configured
// admin base URL (trackers and brokers both serve it), skipping
// unreachable ones; it fails only when no endpoint answered. This is
// the pull-based alternative to WatchAvailability for nodes whose
// digests are not on the availability topic (e.g. trackers).
func (c *Client) FetchAvail() ([]*message.AvailabilityDigest, error) {
	latest := make(map[string]*message.AvailabilityDigest)
	var errs []string
	for _, a := range c.Admins {
		u := strings.TrimSuffix(a, "/") + "/avail"
		ad, err := fetchDigest(c.httpClient(), u)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		if cur, ok := latest[ad.Reporter]; !ok || ad.AtNanos >= cur.AtNanos {
			latest[ad.Reporter] = ad
		}
	}
	if len(latest) == 0 {
		if len(errs) > 0 {
			return nil, fmt.Errorf("tracectl: no admin endpoint answered: %s", strings.Join(errs, "; "))
		}
		return nil, fmt.Errorf("tracectl: no admin endpoints configured")
	}
	return sortDigests(latest), nil
}

func fetchDigest(hc *http.Client, u string) (*message.AvailabilityDigest, error) {
	resp, err := hc.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tracectl: %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return avail.ParseDigest(body)
}

func sortDigests(latest map[string]*message.AvailabilityDigest) []*message.AvailabilityDigest {
	names := make([]string, 0, len(latest))
	for n := range latest {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*message.AvailabilityDigest, 0, len(names))
	for _, n := range names {
		out = append(out, latest[n])
	}
	return out
}

// RenderAvailBoard renders availability digests as the fleet board: one
// section per reporter with per-entity state, uptime bars per window,
// error-budget position, and detection latency, followed by a
// fleet-wide "slowest detections" ranking.
func RenderAvailBoard(w io.Writer, digests []*message.AvailabilityDigest) {
	if len(digests) == 0 {
		fmt.Fprintln(w, "no availability digests observed")
		return
	}
	type slow struct {
		entity, reporter string
		maxNanos         int64
	}
	var slowest []slow
	for _, d := range digests {
		fmt.Fprintf(w, "reporter %s  entities=%d  at=%s\n",
			d.Reporter, len(d.Rows),
			time.Unix(0, d.AtNanos).UTC().Format(time.RFC3339Nano))
		for i, row := range d.Rows {
			branch := "├─"
			if i == len(d.Rows)-1 {
				branch = "└─"
			}
			fmt.Fprintf(w, "  %s %-20s %-8s", branch, row.Entity, avail.State(row.State))
			fmt.Fprintf(w, " 5m %s  1h %s  24h %s",
				uptimeBar(row.Uptime5m), uptimeCell(row.Uptime1h), uptimeCell(row.Uptime24h))
			if row.BudgetRemaining >= 0 {
				fmt.Fprintf(w, "  budget %s burn %.2f", uptimeBar(row.BudgetRemaining), row.BurnRate)
				if row.Breaches > 0 {
					fmt.Fprintf(w, " breaches=%d", row.Breaches)
				}
			}
			if row.DetectLastNanos > 0 || row.DetectMaxNanos > 0 {
				fmt.Fprintf(w, "  ttd %s/%s",
					time.Duration(row.DetectLastNanos).Round(time.Microsecond),
					time.Duration(row.DetectMaxNanos).Round(time.Microsecond))
			}
			fmt.Fprintf(w, "  trans=%d flaps=%d down=%s",
				row.Transitions, row.Flaps,
				time.Duration(row.DowntimeNanos).Round(time.Millisecond))
			if row.MTBFNanos > 0 {
				fmt.Fprintf(w, " mtbf=%s", time.Duration(row.MTBFNanos).Round(time.Millisecond))
			}
			if row.MTTRNanos > 0 {
				fmt.Fprintf(w, " mttr=%s", time.Duration(row.MTTRNanos).Round(time.Millisecond))
			}
			fmt.Fprintln(w)
			if row.DetectMaxNanos > 0 {
				slowest = append(slowest, slow{row.Entity, d.Reporter, row.DetectMaxNanos})
			}
		}
	}
	if len(slowest) > 0 {
		sort.Slice(slowest, func(i, j int) bool { return slowest[i].maxNanos > slowest[j].maxNanos })
		if len(slowest) > 5 {
			slowest = slowest[:5]
		}
		fmt.Fprintln(w, "slowest detections:")
		for i, s := range slowest {
			fmt.Fprintf(w, "  %d. %-20s max=%s (seen by %s)\n",
				i+1, s.entity, time.Duration(s.maxNanos).Round(time.Microsecond), s.reporter)
		}
	}
}

// RenderAvailJSON emits the digests as one indented JSON document (the
// machine-readable form of RenderAvailBoard).
func RenderAvailJSON(w io.Writer, digests []*message.AvailabilityDigest) error {
	if digests == nil {
		digests = []*message.AvailabilityDigest{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(digests)
}

// uptimeBar renders a ratio in [0,1] as a ten-cell bar plus percentage;
// a negative ratio means the window has no observations yet.
func uptimeBar(ratio float64) string {
	if ratio < 0 {
		return "[----------]   n/a"
	}
	if ratio > 1 {
		ratio = 1
	}
	filled := int(ratio*10 + 0.5)
	return fmt.Sprintf("[%s%s] %5.1f%%",
		strings.Repeat("█", filled), strings.Repeat("░", 10-filled), ratio*100)
}

// uptimeCell is the compact percentage-only form used for the wider
// windows, keeping each board line readable.
func uptimeCell(ratio float64) string {
	if ratio < 0 {
		return "  n/a"
	}
	if ratio > 1 {
		ratio = 1
	}
	return fmt.Sprintf("%5.1f%%", ratio*100)
}
