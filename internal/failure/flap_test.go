package failure

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// flapSchedule is a deterministic alternation of healthy and dark
// bursts, derived from a seed: burst lengths are drawn from a seeded
// RNG so the scenario is arbitrary but exactly reproducible.
type flapSchedule struct {
	bursts []burst
}

type burst struct {
	up    bool
	pings int
}

func makeFlapSchedule(seed int64, bursts, maxLen int) flapSchedule {
	rng := rand.New(rand.NewSource(seed))
	s := flapSchedule{}
	up := true
	for i := 0; i < bursts; i++ {
		s.bursts = append(s.bursts, burst{up: up, pings: 1 + rng.Intn(maxLen)})
		up = !up
	}
	return s
}

// drive runs the schedule against a detector, one ping per step, and
// returns the verdict trajectory as a printable string (for replay
// comparison) plus the worst verdict observed.
func (s flapSchedule) drive(t *testing.T, d *Detector, cfg Config) (string, Verdict) {
	t.Helper()
	now := time.Unix(0, 0)
	trajectory := ""
	worst := Healthy
	for _, b := range s.bursts {
		for i := 0; i < b.pings; i++ {
			n := d.NextPingNumber(now)
			if b.up {
				if _, ok := d.HandleResponse(n, now.Add(2*time.Millisecond)); !ok {
					t.Fatal("live response rejected")
				}
			}
			now = now.Add(cfg.ResponseTimeout)
			v, _ := d.Expire(now)
			trajectory += fmt.Sprintf("%d", int(v))
			if v > worst {
				worst = v
			}
		}
	}
	return trajectory, worst
}

// TestFlapConvergence drives the detector through seeded flapping where
// every dark burst stays below the failure threshold: suspicion may come
// and go, but the detector must converge back to Healthy after each
// recovery and never declare FAILED — the chaos-suite invariant that
// link flaps alone don't kill a live entity.
func TestFlapConvergence(t *testing.T) {
	cfg := testConfig()
	failAfter := cfg.SuspicionThreshold + cfg.FailureThreshold
	for seed := int64(1); seed <= 5; seed++ {
		d, err := NewDetector(cfg, time.Unix(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		// Dark bursts capped one miss short of the FAILED threshold.
		s := makeFlapSchedule(seed, 40, failAfter-1)
		_, worst := s.drive(t, d, cfg)
		if worst == Failed {
			t.Fatalf("seed %d: sub-threshold flapping reached FAILED", seed)
		}
		// Converge: one answered ping settles any residual suspicion.
		now := time.Unix(1_000, 0)
		n := d.NextPingNumber(now)
		d.HandleResponse(n, now.Add(time.Millisecond))
		if d.Verdict() != Healthy {
			t.Fatalf("seed %d: verdict %v after recovery, want Healthy", seed, d.Verdict())
		}
		if d.ConsecutiveMisses() != 0 {
			t.Fatalf("seed %d: residual misses after recovery", seed)
		}
	}
}

// TestFlapScheduleDeterministic replays the same seed twice and a
// different seed once: identical seeds must yield identical verdict
// trajectories (the fault framework's same-seed/same-schedule promise
// applied to the detector), different seeds almost surely not.
func TestFlapScheduleDeterministic(t *testing.T) {
	cfg := testConfig()
	run := func(seed int64) string {
		d, err := NewDetector(cfg, time.Unix(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		traj, _ := makeFlapSchedule(seed, 60, 6).drive(t, d, cfg)
		return traj
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged:\n a=%s\n b=%s", a, b)
	}
	if c := run(43); c == a {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestSustainedOutageFailsDespitePriorFlaps confirms the other side of
// convergence: flapping history must not mask a real failure. After an
// arbitrary flap run, a sustained dark burst past both thresholds must
// reach FAILED.
func TestSustainedOutageFailsDespitePriorFlaps(t *testing.T) {
	cfg := testConfig()
	d, err := NewDetector(cfg, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	makeFlapSchedule(7, 20, cfg.SuspicionThreshold).drive(t, d, cfg)
	// Recover once, then go permanently dark.
	now := time.Unix(2_000, 0)
	n := d.NextPingNumber(now)
	d.HandleResponse(n, now.Add(time.Millisecond))
	misses := cfg.SuspicionThreshold + cfg.FailureThreshold
	for i := 0; i < misses; i++ {
		d.NextPingNumber(now)
		now = now.Add(cfg.ResponseTimeout)
		d.Expire(now)
	}
	if d.Verdict() != Failed {
		t.Fatalf("verdict %v after %d consecutive misses, want Failed", d.Verdict(), misses)
	}
}
