// Package failure implements the broker-side failure detection of §3.3:
// adaptive ping scheduling, per-entity ping history (the last 10 pings'
// response times and losses), and the FAILURE_SUSPICION → FAILED state
// machine driven by consecutive unanswered pings.
//
// The Detector is a passive state machine: the owning broker feeds it
// ping sends, responses and the current time, and asks for the next ping
// interval and the current verdict. This keeps it deterministic and
// testable with a fake clock.
package failure

import (
	"fmt"
	"sync"
	"time"

	"entitytrace/internal/obs"
)

// Verdict-transition counters across all detectors in the process.
var (
	mSuspicions = obs.Default.Counter("failure_suspicions_total")
	mFailures   = obs.Default.Counter("failure_failures_total")
	mRecoveries = obs.Default.Counter("failure_recoveries_total")
)

// HistorySize is the number of recent pings retained (§3.3: "the
// response times (and loss rates) associated with the last 10 pings").
const HistorySize = 10

// Verdict is the detector's opinion of the traced entity.
type Verdict int

const (
	// Healthy means pings are being answered.
	Healthy Verdict = iota
	// Suspected means SuspicionThreshold consecutive pings went
	// unanswered; a FAILURE_SUSPICION trace is due.
	Suspected
	// Failed means additional pings after suspicion also went
	// unanswered; a FAILED trace is due.
	Failed
)

// String names the verdict using the paper's trace vocabulary.
func (v Verdict) String() string {
	switch v {
	case Healthy:
		return "HEALTHY"
	case Suspected:
		return "FAILURE_SUSPICION"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Config tunes the detector.
type Config struct {
	// BaseInterval is the established ping interval.
	BaseInterval time.Duration
	// MinInterval floors the hastened interval ("if consecutive pings do
	// not have responses associated with them, the ping interval is
	// reduced to hasten the failure detection").
	MinInterval time.Duration
	// MaxInterval caps the relaxed interval for long-healthy entities
	// ("depending on ... the duration for which a traced entity has been
	// active, this ping interval is varied").
	MaxInterval time.Duration
	// ResponseTimeout is how long a ping may remain unanswered before it
	// counts as missed.
	ResponseTimeout time.Duration
	// SuspicionThreshold is the number of consecutive misses that
	// triggers FAILURE_SUSPICION.
	SuspicionThreshold int
	// FailureThreshold is the number of additional consecutive misses
	// (beyond suspicion) that triggers FAILED.
	FailureThreshold int
	// SuccessesPerRelax is how many consecutive successes lengthen the
	// interval by one BaseInterval step.
	SuccessesPerRelax int
	// Log, when set, receives verdict-transition diagnostics. The field
	// is a pointer so Config stays comparable (NewTraceBroker compares
	// against the zero Config to select defaults).
	Log *obs.Logger
}

// DefaultConfig returns production-oriented defaults: 1 s pings, 250 ms
// floor, 10 s ceiling, suspicion after 3 misses, failure after 2 more.
func DefaultConfig() Config {
	return Config{
		BaseInterval:       time.Second,
		MinInterval:        250 * time.Millisecond,
		MaxInterval:        10 * time.Second,
		ResponseTimeout:    750 * time.Millisecond,
		SuspicionThreshold: 3,
		FailureThreshold:   2,
		SuccessesPerRelax:  30,
	}
}

// Validate checks config consistency.
func (c Config) Validate() error {
	if c.BaseInterval <= 0 || c.MinInterval <= 0 || c.MaxInterval <= 0 || c.ResponseTimeout <= 0 {
		return fmt.Errorf("failure: intervals must be positive: %+v", c)
	}
	if c.MinInterval > c.BaseInterval || c.BaseInterval > c.MaxInterval {
		return fmt.Errorf("failure: need MinInterval <= BaseInterval <= MaxInterval: %+v", c)
	}
	if c.SuspicionThreshold < 1 || c.FailureThreshold < 1 {
		return fmt.Errorf("failure: thresholds must be >= 1: %+v", c)
	}
	if c.SuccessesPerRelax < 1 {
		return fmt.Errorf("failure: SuccessesPerRelax must be >= 1: %+v", c)
	}
	return nil
}

// PingRecord describes one ping in the history window.
type PingRecord struct {
	Number      uint64
	SentAt      time.Time
	RespondedAt time.Time // zero if unanswered
	RTT         time.Duration
	Answered    bool
	OutOfOrder  bool
}

// Metrics summarizes the history window for NETWORK_METRICS traces.
type Metrics struct {
	// LossRate is the fraction of window pings that went unanswered.
	LossRate float64
	// MeanRTT averages the answered pings' round trips.
	MeanRTT time.Duration
	// OutOfOrderRate is the fraction of answered pings whose responses
	// arrived out of number order.
	OutOfOrderRate float64
	// Samples is the number of pings in the window.
	Samples int
}

// Detector tracks one traced entity. It is safe for concurrent use.
type Detector struct {
	mu sync.Mutex

	cfg Config

	nextNumber  uint64
	outstanding map[uint64]time.Time // ping number -> sent time
	history     []PingRecord         // last HistorySize resolved pings
	lastRespNum uint64               // highest response number seen
	anyResponse bool

	consecMisses    int
	consecSuccesses int
	verdict         Verdict
	startedAt       time.Time
	lastPingAt      time.Time
}

// NewDetector creates a detector; now is the session start time.
func NewDetector(cfg Config, now time.Time) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{
		cfg:         cfg,
		outstanding: make(map[uint64]time.Time),
		startedAt:   now,
	}, nil
}

// NextPingNumber allocates the monotonically increasing message number
// for the next ping (§3.3) and records it as outstanding.
func (d *Detector) NextPingNumber(now time.Time) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextNumber++
	d.outstanding[d.nextNumber] = now
	d.lastPingAt = now
	return d.nextNumber
}

// HandleResponse records a ping response. It reports the measured RTT
// and whether the response matched an outstanding ping (duplicates and
// unknown numbers report ok=false).
func (d *Detector) HandleResponse(number uint64, now time.Time) (rtt time.Duration, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sentAt, exists := d.outstanding[number]
	if !exists {
		return 0, false
	}
	delete(d.outstanding, number)
	rtt = now.Sub(sentAt)
	rec := PingRecord{
		Number:      number,
		SentAt:      sentAt,
		RespondedAt: now,
		RTT:         rtt,
		Answered:    true,
		OutOfOrder:  d.anyResponse && number < d.lastRespNum,
	}
	if number > d.lastRespNum {
		d.lastRespNum = number
	}
	d.anyResponse = true
	d.pushHistory(rec)
	d.consecMisses = 0
	d.consecSuccesses++
	// A response from a suspected entity clears the suspicion; a FAILED
	// verdict is terminal for the session (the entity must re-register).
	if d.verdict == Suspected {
		d.verdict = Healthy
		mRecoveries.Inc()
		d.cfg.Log.Info("suspicion cleared", "ping", number, "rtt", rtt)
	}
	return rtt, true
}

// Expire sweeps outstanding pings older than ResponseTimeout, recording
// them as misses. It returns the updated verdict and how many pings
// newly expired.
func (d *Detector) Expire(now time.Time) (Verdict, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	expired := 0
	for num, sentAt := range d.outstanding {
		if now.Sub(sentAt) >= d.cfg.ResponseTimeout {
			delete(d.outstanding, num)
			d.pushHistory(PingRecord{Number: num, SentAt: sentAt})
			d.consecMisses++
			d.consecSuccesses = 0
			expired++
		}
	}
	if expired > 0 && d.verdict != Failed {
		before := d.verdict
		if d.consecMisses >= d.cfg.SuspicionThreshold+d.cfg.FailureThreshold {
			d.verdict = Failed
		} else if d.consecMisses >= d.cfg.SuspicionThreshold {
			d.verdict = Suspected
		}
		if d.verdict != before {
			switch d.verdict {
			case Suspected:
				mSuspicions.Inc()
				d.cfg.Log.Warn("verdict transition", "from", before, "to", d.verdict,
					"consecutive_misses", d.consecMisses)
			case Failed:
				mFailures.Inc()
				d.cfg.Log.Error("verdict transition", "from", before, "to", d.verdict,
					"consecutive_misses", d.consecMisses)
			}
		}
	}
	return d.verdict, expired
}

// Verdict returns the current opinion.
func (d *Detector) Verdict() Verdict {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.verdict
}

// Interval returns the current adaptive ping interval. Misses shrink it
// by halving per consecutive miss down to MinInterval (hastening failure
// detection); sustained health relaxes it toward MaxInterval.
func (d *Detector) Interval() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	iv := d.cfg.BaseInterval
	if d.consecMisses > 0 {
		for i := 0; i < d.consecMisses && iv > d.cfg.MinInterval; i++ {
			iv /= 2
		}
		if iv < d.cfg.MinInterval {
			iv = d.cfg.MinInterval
		}
		return iv
	}
	relaxSteps := d.consecSuccesses / d.cfg.SuccessesPerRelax
	iv += time.Duration(relaxSteps) * d.cfg.BaseInterval
	if iv > d.cfg.MaxInterval {
		iv = d.cfg.MaxInterval
	}
	return iv
}

// ConsecutiveMisses reports the current run of unanswered pings.
func (d *Detector) ConsecutiveMisses() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.consecMisses
}

// Outstanding reports how many pings await responses.
func (d *Detector) Outstanding() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.outstanding)
}

// LastPingAt returns when the entity was last pinged (§3.3: the broker
// maintains "information about when the traced entity was last pinged").
func (d *Detector) LastPingAt() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastPingAt
}

// Uptime reports how long the session has been tracked.
func (d *Detector) Uptime(now time.Time) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return now.Sub(d.startedAt)
}

// History returns a copy of the resolved-ping window, newest last.
func (d *Detector) History() []PingRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]PingRecord(nil), d.history...)
}

// NetworkMetrics summarizes the window: loss, mean RTT and out-of-order
// rates over the link between broker and entity (§3.3: "The nature of
// the pings and the corresponding responses allow a broker to determine
// the loss rates, latency and out-of-order delivery rates over the
// link").
func (d *Detector) NetworkMetrics() Metrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := Metrics{Samples: len(d.history)}
	if m.Samples == 0 {
		return m
	}
	var answered, ooo int
	var rttSum time.Duration
	for _, r := range d.history {
		if r.Answered {
			answered++
			rttSum += r.RTT
			if r.OutOfOrder {
				ooo++
			}
		}
	}
	m.LossRate = float64(m.Samples-answered) / float64(m.Samples)
	if answered > 0 {
		m.MeanRTT = rttSum / time.Duration(answered)
		m.OutOfOrderRate = float64(ooo) / float64(answered)
	}
	return m
}

// pushHistory appends with the window bound; callers hold d.mu.
func (d *Detector) pushHistory(r PingRecord) {
	d.history = append(d.history, r)
	if len(d.history) > HistorySize {
		d.history = d.history[len(d.history)-HistorySize:]
	}
}

// Reset returns the detector to a healthy state with cleared counters,
// for an entity that re-registers after recovery.
func (d *Detector) Reset(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.outstanding = make(map[uint64]time.Time)
	d.history = nil
	d.consecMisses = 0
	d.consecSuccesses = 0
	d.verdict = Healthy
	d.startedAt = now
	d.anyResponse = false
	d.lastRespNum = 0
}
