package failure_test

import (
	"fmt"
	"time"

	"entitytrace/internal/failure"
)

// The detector walks HEALTHY → FAILURE_SUSPICION → FAILED as pings go
// unanswered (§3.3), while the adaptive interval shrinks to hasten
// detection.
func ExampleDetector() {
	cfg := failure.Config{
		BaseInterval:       time.Second,
		MinInterval:        250 * time.Millisecond,
		MaxInterval:        10 * time.Second,
		ResponseTimeout:    time.Second,
		SuspicionThreshold: 3,
		FailureThreshold:   2,
		SuccessesPerRelax:  30,
	}
	now := time.Unix(0, 0)
	d, _ := failure.NewDetector(cfg, now)

	// One answered ping: healthy.
	n := d.NextPingNumber(now)
	d.HandleResponse(n, now.Add(2*time.Millisecond))
	fmt.Println(d.Verdict(), "interval:", d.Interval())

	// Five unanswered pings: suspicion, then failure, with the interval
	// hastened along the way.
	for i := 0; i < 5; i++ {
		d.NextPingNumber(now)
		now = now.Add(cfg.ResponseTimeout)
		d.Expire(now)
	}
	fmt.Println(d.Verdict(), "interval:", d.Interval())
	// Output:
	// HEALTHY interval: 1s
	// FAILED interval: 250ms
}
