package failure

import (
	"testing"
	"testing/quick"
	"time"
)

func testConfig() Config {
	return Config{
		BaseInterval:       time.Second,
		MinInterval:        125 * time.Millisecond,
		MaxInterval:        8 * time.Second,
		ResponseTimeout:    500 * time.Millisecond,
		SuspicionThreshold: 3,
		FailureThreshold:   2,
		SuccessesPerRelax:  10,
	}
}

func newDetector(t *testing.T, start time.Time) *Detector {
	t.Helper()
	d, err := NewDetector(testConfig(), start)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{},
		{BaseInterval: time.Second, MinInterval: 2 * time.Second, MaxInterval: 3 * time.Second,
			ResponseTimeout: time.Second, SuspicionThreshold: 1, FailureThreshold: 1, SuccessesPerRelax: 1},
		func() Config { c := testConfig(); c.SuspicionThreshold = 0; return c }(),
		func() Config { c := testConfig(); c.FailureThreshold = 0; return c }(),
		func() Config { c := testConfig(); c.SuccessesPerRelax = 0; return c }(),
		func() Config { c := testConfig(); c.ResponseTimeout = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
		if _, err := NewDetector(c, time.Now()); err == nil {
			t.Errorf("NewDetector accepted bad config %d", i)
		}
	}
}

func TestPingNumbersMonotonic(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	var prev uint64
	for i := 0; i < 100; i++ {
		n := d.NextPingNumber(now)
		if n <= prev {
			t.Fatalf("ping number %d not greater than %d", n, prev)
		}
		prev = n
	}
	if d.Outstanding() != 100 {
		t.Fatalf("Outstanding = %d", d.Outstanding())
	}
}

func TestHealthyResponseFlow(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	n := d.NextPingNumber(now)
	rtt, ok := d.HandleResponse(n, now.Add(3*time.Millisecond))
	if !ok || rtt != 3*time.Millisecond {
		t.Fatalf("HandleResponse = %v, %v", rtt, ok)
	}
	if d.Verdict() != Healthy {
		t.Fatalf("Verdict = %v", d.Verdict())
	}
	if d.Outstanding() != 0 {
		t.Fatal("response did not clear outstanding ping")
	}
}

func TestDuplicateAndUnknownResponses(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	n := d.NextPingNumber(now)
	if _, ok := d.HandleResponse(n+100, now); ok {
		t.Fatal("unknown response accepted")
	}
	if _, ok := d.HandleResponse(n, now); !ok {
		t.Fatal("valid response rejected")
	}
	if _, ok := d.HandleResponse(n, now); ok {
		t.Fatal("duplicate response accepted")
	}
}

func TestSuspicionThenFailure(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	cfg := testConfig()

	// Miss pings one at a time up to the suspicion threshold.
	for i := 0; i < cfg.SuspicionThreshold; i++ {
		d.NextPingNumber(now)
		now = now.Add(cfg.ResponseTimeout)
		verdict, expired := d.Expire(now)
		if expired != 1 {
			t.Fatalf("miss %d: expired %d pings", i, expired)
		}
		if i < cfg.SuspicionThreshold-1 && verdict != Healthy {
			t.Fatalf("miss %d: verdict %v before threshold", i, verdict)
		}
	}
	if d.Verdict() != Suspected {
		t.Fatalf("after %d misses verdict = %v, want Suspected", cfg.SuspicionThreshold, d.Verdict())
	}
	// Additional misses push to Failed.
	for i := 0; i < cfg.FailureThreshold; i++ {
		d.NextPingNumber(now)
		now = now.Add(cfg.ResponseTimeout)
		d.Expire(now)
	}
	if d.Verdict() != Failed {
		t.Fatalf("verdict = %v, want Failed", d.Verdict())
	}
}

func TestResponseClearsSuspicion(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	cfg := testConfig()
	for i := 0; i < cfg.SuspicionThreshold; i++ {
		d.NextPingNumber(now)
		now = now.Add(cfg.ResponseTimeout)
		d.Expire(now)
	}
	if d.Verdict() != Suspected {
		t.Fatalf("setup: verdict = %v", d.Verdict())
	}
	n := d.NextPingNumber(now)
	d.HandleResponse(n, now.Add(time.Millisecond))
	if d.Verdict() != Healthy {
		t.Fatalf("response did not clear suspicion: %v", d.Verdict())
	}
	if d.ConsecutiveMisses() != 0 {
		t.Fatal("consecutive misses not reset")
	}
}

func TestFailedIsTerminal(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	cfg := testConfig()
	for i := 0; i < cfg.SuspicionThreshold+cfg.FailureThreshold; i++ {
		d.NextPingNumber(now)
		now = now.Add(cfg.ResponseTimeout)
		d.Expire(now)
	}
	if d.Verdict() != Failed {
		t.Fatalf("setup: %v", d.Verdict())
	}
	n := d.NextPingNumber(now)
	d.HandleResponse(n, now.Add(time.Millisecond))
	if d.Verdict() != Failed {
		t.Fatalf("late response resurrected failed entity: %v", d.Verdict())
	}
	// Reset (re-registration) clears it.
	d.Reset(now)
	if d.Verdict() != Healthy || d.Outstanding() != 0 || len(d.History()) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestIntervalHastensOnMisses(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	cfg := testConfig()
	if d.Interval() != cfg.BaseInterval {
		t.Fatalf("initial interval = %v", d.Interval())
	}
	d.NextPingNumber(now)
	now = now.Add(cfg.ResponseTimeout)
	d.Expire(now)
	if got := d.Interval(); got != cfg.BaseInterval/2 {
		t.Fatalf("after 1 miss interval = %v, want %v", got, cfg.BaseInterval/2)
	}
	d.NextPingNumber(now)
	now = now.Add(cfg.ResponseTimeout)
	d.Expire(now)
	if got := d.Interval(); got != cfg.BaseInterval/4 {
		t.Fatalf("after 2 misses interval = %v", got)
	}
	// Interval floors at MinInterval.
	for i := 0; i < 10; i++ {
		d.NextPingNumber(now)
		now = now.Add(cfg.ResponseTimeout)
		d.Expire(now)
	}
	if got := d.Interval(); got != cfg.MinInterval {
		t.Fatalf("hastened interval = %v, want floor %v", got, cfg.MinInterval)
	}
}

func TestIntervalRelaxesWhenHealthy(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	cfg := testConfig()
	for i := 0; i < cfg.SuccessesPerRelax; i++ {
		n := d.NextPingNumber(now)
		d.HandleResponse(n, now.Add(time.Millisecond))
		now = now.Add(time.Second)
	}
	if got := d.Interval(); got != 2*cfg.BaseInterval {
		t.Fatalf("after %d successes interval = %v, want %v", cfg.SuccessesPerRelax, got, 2*cfg.BaseInterval)
	}
	// Relaxation caps at MaxInterval.
	for i := 0; i < 100*cfg.SuccessesPerRelax; i++ {
		n := d.NextPingNumber(now)
		d.HandleResponse(n, now.Add(time.Millisecond))
	}
	if got := d.Interval(); got != cfg.MaxInterval {
		t.Fatalf("relaxed interval = %v, want cap %v", got, cfg.MaxInterval)
	}
}

func TestHistoryWindowBounded(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	for i := 0; i < 3*HistorySize; i++ {
		n := d.NextPingNumber(now)
		d.HandleResponse(n, now.Add(time.Millisecond))
	}
	h := d.History()
	if len(h) != HistorySize {
		t.Fatalf("history length = %d, want %d", len(h), HistorySize)
	}
	// Newest last.
	if h[len(h)-1].Number <= h[0].Number {
		t.Fatal("history not ordered oldest to newest")
	}
}

func TestNetworkMetrics(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	// 8 answered at 4ms, 2 missed.
	for i := 0; i < 8; i++ {
		n := d.NextPingNumber(now)
		d.HandleResponse(n, now.Add(4*time.Millisecond))
	}
	for i := 0; i < 2; i++ {
		d.NextPingNumber(now)
		now = now.Add(time.Second)
		d.Expire(now)
	}
	m := d.NetworkMetrics()
	if m.Samples != 10 {
		t.Fatalf("Samples = %d", m.Samples)
	}
	if m.LossRate != 0.2 {
		t.Fatalf("LossRate = %v", m.LossRate)
	}
	if m.MeanRTT != 4*time.Millisecond {
		t.Fatalf("MeanRTT = %v", m.MeanRTT)
	}
	if m.OutOfOrderRate != 0 {
		t.Fatalf("OutOfOrderRate = %v", m.OutOfOrderRate)
	}
}

func TestNetworkMetricsEmpty(t *testing.T) {
	d := newDetector(t, time.Unix(0, 0))
	m := d.NetworkMetrics()
	if m.Samples != 0 || m.LossRate != 0 || m.MeanRTT != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
}

func TestOutOfOrderDetection(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	n1 := d.NextPingNumber(now)
	n2 := d.NextPingNumber(now)
	// n2's response arrives before n1's.
	d.HandleResponse(n2, now.Add(time.Millisecond))
	d.HandleResponse(n1, now.Add(2*time.Millisecond))
	m := d.NetworkMetrics()
	if m.OutOfOrderRate != 0.5 {
		t.Fatalf("OutOfOrderRate = %v, want 0.5", m.OutOfOrderRate)
	}
}

func TestExpireOnlyAfterTimeout(t *testing.T) {
	now := time.Unix(0, 0)
	d := newDetector(t, now)
	cfg := testConfig()
	d.NextPingNumber(now)
	if _, expired := d.Expire(now.Add(cfg.ResponseTimeout / 2)); expired != 0 {
		t.Fatal("ping expired before timeout")
	}
	if _, expired := d.Expire(now.Add(cfg.ResponseTimeout)); expired != 1 {
		t.Fatal("ping did not expire at timeout")
	}
}

func TestUptimeAndLastPing(t *testing.T) {
	start := time.Unix(100, 0)
	d := newDetector(t, start)
	if got := d.Uptime(start.Add(5 * time.Second)); got != 5*time.Second {
		t.Fatalf("Uptime = %v", got)
	}
	pingAt := start.Add(time.Second)
	d.NextPingNumber(pingAt)
	if !d.LastPingAt().Equal(pingAt) {
		t.Fatalf("LastPingAt = %v", d.LastPingAt())
	}
}

func TestVerdictStrings(t *testing.T) {
	if Healthy.String() != "HEALTHY" || Suspected.String() != "FAILURE_SUSPICION" || Failed.String() != "FAILED" {
		t.Fatal("verdict strings wrong")
	}
	if Verdict(42).String() == "" {
		t.Fatal("unknown verdict empty")
	}
}

// TestVerdictMonotonicUnderMisses property: with only misses (no
// responses), the verdict never moves backwards.
func TestVerdictMonotonicUnderMisses(t *testing.T) {
	prop := func(steps uint8) bool {
		now := time.Unix(0, 0)
		d, err := NewDetector(testConfig(), now)
		if err != nil {
			return false
		}
		prev := Healthy
		for i := 0; i < int(steps%40); i++ {
			d.NextPingNumber(now)
			now = now.Add(time.Second)
			v, _ := d.Expire(now)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestLossRateBounds property: loss rate is always within [0, 1].
func TestLossRateBounds(t *testing.T) {
	prop := func(ops []bool) bool {
		now := time.Unix(0, 0)
		d, err := NewDetector(testConfig(), now)
		if err != nil {
			return false
		}
		for _, answer := range ops {
			n := d.NextPingNumber(now)
			if answer {
				d.HandleResponse(n, now.Add(time.Millisecond))
			} else {
				now = now.Add(time.Second)
				d.Expire(now)
			}
		}
		m := d.NetworkMetrics()
		return m.LossRate >= 0 && m.LossRate <= 1 && m.OutOfOrderRate >= 0 && m.OutOfOrderRate <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
