// Package backoff provides the exponential-backoff-with-jitter policy
// shared by every reconnect path in the system: broker↔broker persistent
// links, traced-entity session resume and tracker resubscription. Keeping
// the policy in one place means every retry loop paces itself the same
// way under chaos testing, and the deterministic jitter (seeded, not
// wall-clock derived) lets fault-injection tests replay identically.
package backoff

import (
	"math/rand"
	"sync"
	"time"
)

// Defaults for Config zero values.
const (
	DefaultInitial = 100 * time.Millisecond
	DefaultMax     = 30 * time.Second
	DefaultFactor  = 2.0
	DefaultJitter  = 0.2
)

// Config tunes a Policy. The zero value selects the defaults above.
type Config struct {
	// Initial is the delay before the first retry.
	Initial time.Duration
	// Max caps the grown delay.
	Max time.Duration
	// Factor multiplies the delay after each failed attempt (>= 1).
	Factor float64
	// Jitter spreads each delay uniformly over [d*(1-J), d*(1+J)] so
	// that a fleet of reconnecting peers does not thunder in lockstep.
	// Negative disables jitter; zero selects DefaultJitter.
	Jitter float64
	// Seed makes the jitter sequence reproducible. Zero is a valid,
	// fixed seed: policies are deterministic unless told otherwise.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Initial <= 0 {
		c.Initial = DefaultInitial
	}
	if c.Max <= 0 {
		c.Max = DefaultMax
	}
	if c.Max < c.Initial {
		c.Max = c.Initial
	}
	if c.Factor < 1 {
		c.Factor = DefaultFactor
	}
	if c.Jitter == 0 {
		c.Jitter = DefaultJitter
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter > 1 {
		c.Jitter = 1
	}
	return c
}

// Policy produces the successive delays of one retry loop. It is safe
// for concurrent use, though retry loops are typically single-goroutine.
type Policy struct {
	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	attempt int
}

// New creates a policy from cfg (zero-value fields select defaults).
func New(cfg Config) *Policy {
	cfg = cfg.withDefaults()
	return &Policy{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next returns the delay to wait before the next attempt and advances
// the attempt counter. The n-th delay (0-based) is
// min(Initial*Factor^n, Max), jittered.
func (p *Policy) Next() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := float64(p.cfg.Initial)
	for i := 0; i < p.attempt; i++ {
		d *= p.cfg.Factor
		if d >= float64(p.cfg.Max) {
			d = float64(p.cfg.Max)
			break
		}
	}
	p.attempt++
	if p.cfg.Jitter > 0 {
		d *= 1 - p.cfg.Jitter + 2*p.cfg.Jitter*p.rng.Float64()
	}
	out := time.Duration(d)
	if out > time.Duration(float64(p.cfg.Max)*(1+p.cfg.Jitter)) {
		out = p.cfg.Max
	}
	if out <= 0 {
		out = time.Nanosecond
	}
	return out
}

// Reset returns the policy to the initial delay after a success.
func (p *Policy) Reset() {
	p.mu.Lock()
	p.attempt = 0
	p.mu.Unlock()
}

// Attempts reports how many delays have been handed out since the last
// Reset.
func (p *Policy) Attempts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attempt
}
