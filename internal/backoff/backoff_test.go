package backoff

import (
	"testing"
	"time"
)

func TestGrowthAndCap(t *testing.T) {
	p := New(Config{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1})
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Next(); got != w {
			t.Fatalf("delay %d: got %v want %v", i, got, w)
		}
	}
	if p.Attempts() != len(want) {
		t.Fatalf("attempts = %d", p.Attempts())
	}
	p.Reset()
	if got := p.Next(); got != 10*time.Millisecond {
		t.Fatalf("post-reset delay %v", got)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	mk := func() *Policy {
		return New(Config{Initial: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5, Seed: 7})
	}
	a, b := mk(), mk()
	base := 100 * time.Millisecond
	for i := 0; i < 8; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if base > time.Second {
			lo, hi = 500*time.Millisecond, 1500*time.Millisecond
		}
		if da < lo || da > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, da, lo, hi)
		}
		if base < time.Second {
			base *= 2
		}
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	p := New(Config{})
	d := p.Next()
	lo := time.Duration(float64(DefaultInitial) * (1 - DefaultJitter))
	hi := time.Duration(float64(DefaultInitial) * (1 + DefaultJitter))
	if d < lo || d > hi {
		t.Fatalf("first default delay %v outside [%v, %v]", d, lo, hi)
	}
}
