package harness

import (
	"testing"
	"time"

	"entitytrace/internal/topic"
)

func TestTestbedBuildAndClose(t *testing.T) {
	tb, err := New(Options{Brokers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Brokers) != 2 || len(tb.Managers) != 2 {
		t.Fatalf("built %d brokers, %d managers", len(tb.Brokers), len(tb.Managers))
	}
	tb.Close()
}

func TestTestbedBadOptions(t *testing.T) {
	if _, err := New(Options{Transport: "pigeon"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestStartEntityAndTrackerValidation(t *testing.T) {
	tb, err := New(Options{Brokers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if _, err := tb.StartEntity("e", 5); err == nil {
		t.Fatal("out-of-range broker index accepted")
	}
	if _, err := tb.StartTracker("t", -1, "e", topic.AllClasses()); err == nil {
		t.Fatal("negative broker index accepted")
	}
}

func TestMeasureStateTraces(t *testing.T) {
	tb, err := New(Options{Brokers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	ent, err := tb.StartEntity("m-entity", 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.StartTracker("m-tracker", 1, "m-entity", topic.NewClassSet(topic.ClassStateTransitions))
	if err != nil {
		t.Fatal(err)
	}
	sample, err := MeasureStateTraces(ent, h, 5, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sample.N() != 5 {
		t.Fatalf("measured %d rounds", sample.N())
	}
	if sample.Mean() <= 0 {
		t.Fatalf("non-positive latency %v", sample.Mean())
	}
	if sample.Mean() > 5000 {
		t.Fatalf("implausible latency %v ms", sample.Mean())
	}
}

func TestRunTraceRoutingBothModes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in short mode")
	}
	auth, err := RunTraceRouting(2, "inproc", false, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := RunTraceRouting(2, "inproc", true, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if auth.N != 5 || sec.N != 5 {
		t.Fatalf("rounds: %d, %d", auth.N, sec.N)
	}
	if auth.Mean <= 0 || sec.Mean <= 0 {
		t.Fatal("non-positive means")
	}
}

func TestCryptoCosts(t *testing.T) {
	rows, err := CryptoCosts(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d crypto rows, want 8", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.N != 3 {
			t.Fatalf("row %q has N=%d", r.Name, r.N)
		}
		if r.Mean < 0 {
			t.Fatalf("row %q negative mean", r.Name)
		}
		byName[r.Name] = r.Mean
	}
	// Shape: token generation (keygen+sign) dominates verification, and
	// signing costs more than symmetric encryption — exactly the paper's
	// cost ordering.
	if byName["Token Generation and Signing"] <= byName["Verifying Authorization Token"] {
		t.Fatal("token generation not slower than verification")
	}
	if byName["Sign Trace Message"] <= byName["Encrypting Trace Message"] {
		t.Fatal("RSA signing not slower than AES encryption")
	}
}

func TestRunKeyDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in short mode")
	}
	sm, err := RunKeyDistribution(2, "inproc", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sm.N != 3 || sm.Mean <= 0 {
		t.Fatalf("key distribution summary: %+v", sm)
	}
}

func TestRunSigningOptimization(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in short mode")
	}
	plain, opt, err := RunSigningOptimization("inproc", 4)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Mean <= 0 || opt.Mean <= 0 {
		t.Fatalf("plain=%v opt=%v", plain.Mean, opt.Mean)
	}
}

func TestRunTrackerScalingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in short mode")
	}
	points, err := RunTrackerScaling([]int{1, 3}, "inproc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].X != 1 || points[1].X != 3 {
		t.Fatalf("points: %+v", points)
	}
}

func TestRunEntityScalingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in short mode")
	}
	points, err := RunEntityScaling([]int{1, 2}, 2, "inproc", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points: %+v", points)
	}
	for _, p := range points {
		if p.Summary.Mean <= 0 {
			t.Fatalf("point %d non-positive mean", p.X)
		}
	}
}

func TestMessageComplexity(t *testing.T) {
	rows := MessageComplexity([]int{10, 100}, 5)
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].AllToAll != 90 || rows[1].AllToAll != 9900 {
		t.Fatalf("all-to-all counts wrong: %+v", rows)
	}
	if rows[1].Brokered >= rows[1].AllToAll {
		t.Fatal("brokered scheme not cheaper at N=100")
	}
}

func TestPerHopLatencyShapesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in short mode")
	}
	fast, err := RunTraceRouting(2, "inproc", false, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunTraceRouting(2, "inproc", false, 10*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Mean <= fast.Mean {
		t.Fatalf("injected latency had no effect: fast=%.2f slow=%.2f", fast.Mean, slow.Mean)
	}
}

func TestRunDetectionComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in short mode")
	}
	rows, err := RunDetectionComparison(10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	brokered := rows[0]
	if brokered.Detection.Mean <= 0 {
		t.Fatal("non-positive brokered detection latency")
	}
	// Detection should land in the vicinity of 5 missed 100 ms periods
	// (plus scheduling); anything over 5 s means the mechanism broke.
	if brokered.Detection.Mean > 5000 {
		t.Fatalf("implausible detection latency %v ms", brokered.Detection.Mean)
	}
	// The headline claim: far fewer messages than all-to-all at N=10.
	if rows[0].MessagesPerPeriod >= rows[1].MessagesPerPeriod {
		t.Fatal("brokered scheme not cheaper than all-to-all")
	}
}

func TestRunInterestGating(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in short mode")
	}
	rows, err := RunInterestGating(600 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	silent, interested, withdrawn := rows[0], rows[1], rows[2]
	// §3.5: the interested phase must publish materially more than the
	// silent phases (heartbeats per ping vs only gauge probes).
	if interested.Published <= silent.Published {
		t.Fatalf("interest did not increase publications: %d vs %d",
			interested.Published, silent.Published)
	}
	if withdrawn.Published >= interested.Published {
		t.Fatalf("withdrawal did not reduce publications: %d vs %d",
			withdrawn.Published, interested.Published)
	}
	for _, r := range rows {
		if r.String() == "" {
			t.Fatal("empty row string")
		}
	}
}
