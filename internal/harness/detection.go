package harness

import (
	"fmt"
	"time"

	"entitytrace/internal/baseline"
	"entitytrace/internal/failure"
	"entitytrace/internal/message"
	"entitytrace/internal/stats"
	"entitytrace/internal/topic"
)

// DetectionComparison contrasts failure-detection behaviour across the
// paper's scheme and the comparison schemes of §1 and the related work:
// end-to-end detection latency (entity dies → observer knows) and the
// message cost per heartbeat period for a population of n entities.
type DetectionComparison struct {
	// Scheme names the detector.
	Scheme string
	// Detection summarizes measured (or simulated) detection latency in
	// milliseconds.
	Detection stats.Summary
	// MessagesPerPeriod is the steady-state message cost per heartbeat
	// period for the population.
	MessagesPerPeriod uint64
}

// RunDetectionComparison measures the brokered scheme's real detection
// latency (kill the entity, wait for the tracker's FAILED trace) and
// simulates the naive all-to-all and gossip detectors with matched
// parameters: heartbeat period = ping interval, failure threshold =
// suspicion+failure misses. n sizes the message-cost columns and the
// simulated populations.
func RunDetectionComparison(n, rounds int, interestedTrackers int) ([]DetectionComparison, error) {
	const period = 100 * time.Millisecond
	const misses = 5 // suspicion 3 + failure 2

	det := failure.Config{
		BaseInterval:       period,
		MinInterval:        25 * time.Millisecond,
		MaxInterval:        time.Second,
		ResponseTimeout:    250 * time.Millisecond,
		SuspicionThreshold: 3,
		FailureThreshold:   2,
		SuccessesPerRelax:  1 << 30,
	}

	// --- brokered scheme: measured ------------------------------------
	brokered := stats.NewSample(true)
	for i := 0; i < rounds; i++ {
		tb, err := New(Options{Brokers: 1, Detector: det})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("det-entity-%d", i)
		ent, err := tb.StartEntity(name, 0)
		if err != nil {
			tb.Close()
			return nil, err
		}
		h, err := tb.StartTracker(fmt.Sprintf("det-tracker-%d", i), 0, name,
			topic.NewClassSet(topic.ClassChangeNotifications))
		if err != nil {
			tb.Close()
			return nil, err
		}
		// Let a few pings succeed so the detector is in steady state.
		time.Sleep(3 * period)
		DrainEvents(h.Events)
		t0 := time.Now()
		ent.Kill()
		deadline := time.After(measurementTimeout)
	wait:
		for {
			select {
			case ev := <-h.Events:
				if ev.Type == message.TraceFailed {
					brokered.AddDuration(time.Since(t0))
					break wait
				}
			case <-deadline:
				tb.Close()
				return nil, fmt.Errorf("round %d: FAILED trace never arrived", i)
			}
		}
		tb.Close()
	}

	// --- naive all-to-all: simulated, one tick = one period ------------
	naive := stats.NewSample(true)
	for i := 0; i < rounds; i++ {
		sim, err := baseline.NewAllToAll(baseline.AllToAllConfig{
			N: n, HeartbeatEvery: 1, FailAfter: misses,
		})
		if err != nil {
			return nil, err
		}
		for w := 0; w < 3; w++ {
			sim.Tick()
		}
		if err := sim.Kill(0); err != nil {
			return nil, err
		}
		ticks, _ := sim.DetectionTicks(0)
		naive.AddDuration(time.Duration(ticks) * period)
	}

	// --- gossip: simulated, one round = one period ----------------------
	gossip := stats.NewSample(true)
	for i := 0; i < rounds; i++ {
		g, err := baseline.NewGossip(baseline.GossipConfig{
			N: n, Fanout: 3, FailTicks: misses, Seed: int64(i + 1),
		})
		if err != nil {
			return nil, err
		}
		for w := 0; w < 5; w++ {
			g.Round()
		}
		if err := g.Kill(0); err != nil {
			return nil, err
		}
		r, _, err := g.DetectionRounds(0, 10*misses+100)
		if err != nil {
			return nil, err
		}
		gossip.AddDuration(time.Duration(r) * period)
	}

	return []DetectionComparison{
		{
			Scheme:            "brokered tracing (this paper, measured)",
			Detection:         brokered.Summarize("brokered"),
			MessagesPerPeriod: baseline.BrokeredMessagesPerPeriod(n, interestedTrackers),
		},
		{
			Scheme:            "naive all-to-all (§1, simulated)",
			Detection:         naive.Summarize("all-to-all"),
			MessagesPerPeriod: baseline.MessagesPerPeriod(n),
		},
		{
			Scheme:            "gossip fanout=3 majority (related work [7,8], simulated)",
			Detection:         gossip.Summarize("gossip"),
			MessagesPerPeriod: uint64(n) * 3,
		},
	}, nil
}
