package harness

import (
	"fmt"
	"time"

	"entitytrace/internal/baseline"
	"entitytrace/internal/core"
	"entitytrace/internal/failure"
	"entitytrace/internal/ident"
	"entitytrace/internal/secure"
	"entitytrace/internal/stats"
	"entitytrace/internal/token"
	"entitytrace/internal/topic"
)

// measurementTimeout bounds each measured round.
const measurementTimeout = 15 * time.Second

// RunTraceRouting reproduces one row of Table 3 ("Trace Routing Overhead
// for different hops"): a chain of `hops` brokers, the traced entity on
// the first, the measuring tracker on the last, and `rounds` state
// transitions timed end to end. security toggles the "Authorization
// Only" vs "Authorization & Security" variants.
func RunTraceRouting(hops int, transportName string, security bool, perHop time.Duration, rounds int) (stats.Summary, error) {
	tb, err := New(Options{
		Brokers:       hops,
		Transport:     transportName,
		Security:      security,
		PerHopLatency: perHop,
	})
	if err != nil {
		return stats.Summary{}, err
	}
	defer tb.Close()

	ent, err := tb.StartEntity("t3-entity", 0)
	if err != nil {
		return stats.Summary{}, err
	}
	h, err := tb.StartTracker("t3-tracker", hops-1, "t3-entity",
		topic.NewClassSet(topic.ClassStateTransitions))
	if err != nil {
		return stats.Summary{}, err
	}
	if security {
		if err := h.AwaitTraceKey(measurementTimeout); err != nil {
			return stats.Summary{}, err
		}
	}
	// Warm-up round to absorb subscription propagation.
	if _, err := MeasureStateTraces(ent, h, 2, measurementTimeout); err != nil {
		return stats.Summary{}, err
	}
	DrainEvents(h.Events)
	sample, err := MeasureStateTraces(ent, h, rounds, measurementTimeout)
	if err != nil {
		return stats.Summary{}, err
	}
	label := fmt.Sprintf("%d hops", hops)
	return sample.Summarize(label), nil
}

// CryptoCosts reproduces the "Security and Authorization related costs"
// block of Table 3: per-operation costs of token generation+signing,
// token verification, trace encryption/decryption, and signing/
// verification of plain and encrypted trace messages.
func CryptoCosts(iters int) ([]stats.Summary, error) {
	pair, err := secure.GenerateKeyPair(secure.PaperRSABits)
	if err != nil {
		return nil, err
	}
	signer, err := secure.NewSigner(pair.Private, secure.SHA1)
	if err != nil {
		return nil, err
	}
	traceKey, err := secure.NewSymmetricKey(secure.PaperAESKeyBytes)
	if err != nil {
		return nil, err
	}
	// A representative trace message payload.
	payload, err := secure.RandomBytes(256)
	if err != nil {
		return nil, err
	}
	topicID := ident.NewUUID()
	now := time.Now()

	timed := func(name string, op func() error) (stats.Summary, error) {
		s := stats.NewSample(false)
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			if err := op(); err != nil {
				return stats.Summary{}, fmt.Errorf("%s: %w", name, err)
			}
			s.AddDuration(time.Since(t0))
		}
		return s.Summarize(name), nil
	}

	var out []stats.Summary

	// Token Generation and Signing (includes the random key pair, as in
	// §4.3 — this is why the paper's figure is ~27 ms).
	var lastTok *token.Token
	sm, err := timed("Token Generation and Signing", func() error {
		d, err := token.Grant("crypto-bench", topicID, token.RightPublish, time.Hour, now, signer, secure.PaperRSABits)
		if err != nil {
			return err
		}
		lastTok = d.Token
		return nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, sm)

	sm, err = timed("Verifying Authorization Token", func() error {
		_, err := lastTok.Verify(pair.Public, now, token.DefaultClockSkew, token.RightPublish)
		return err
	})
	if err != nil {
		return nil, err
	}
	out = append(out, sm)

	var ciphertext []byte
	sm, err = timed("Encrypting Trace Message", func() error {
		ct, err := traceKey.Encrypt(payload)
		ciphertext = ct
		return err
	})
	if err != nil {
		return nil, err
	}
	out = append(out, sm)

	sm, err = timed("Decrypting Trace Message", func() error {
		_, err := traceKey.Decrypt(ciphertext)
		return err
	})
	if err != nil {
		return nil, err
	}
	out = append(out, sm)

	var sig []byte
	sm, err = timed("Sign Trace Message", func() error {
		s, err := signer.Sign(payload)
		sig = s
		return err
	})
	if err != nil {
		return nil, err
	}
	out = append(out, sm)

	sm, err = timed("Verify Signature in Trace Message", func() error {
		return secure.Verify(pair.Public, secure.SHA1, payload, sig)
	})
	if err != nil {
		return nil, err
	}
	out = append(out, sm)

	var encSig []byte
	sm, err = timed("Sign Encrypted Trace Message", func() error {
		s, err := signer.Sign(ciphertext)
		encSig = s
		return err
	})
	if err != nil {
		return nil, err
	}
	out = append(out, sm)

	sm, err = timed("Verify Signature in Encrypted Trace Message", func() error {
		return secure.Verify(pair.Public, secure.SHA1, ciphertext, encSig)
	})
	if err != nil {
		return nil, err
	}
	out = append(out, sm)

	return out, nil
}

// RunKeyDistribution reproduces the "Key Distribution Overhead" block of
// Table 3: the time from a tracker joining (announcing interest with its
// credential) to holding the sealed secret trace key (§5.1), across a
// chain of `hops` brokers. Each round uses a fresh tracker.
func RunKeyDistribution(hops int, transportName string, perHop time.Duration, rounds int) (stats.Summary, error) {
	tb, err := New(Options{
		Brokers:       hops,
		Transport:     transportName,
		Security:      true,
		PerHopLatency: perHop,
	})
	if err != nil {
		return stats.Summary{}, err
	}
	defer tb.Close()
	if _, err := tb.StartEntity("kd-entity", 0); err != nil {
		return stats.Summary{}, err
	}
	sample := stats.NewSample(true)
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		h, err := tb.StartTracker(fmt.Sprintf("kd-tracker-%d", i), hops-1, "kd-entity",
			topic.NewClassSet(topic.ClassChangeNotifications))
		if err != nil {
			return stats.Summary{}, err
		}
		if err := h.AwaitTraceKey(measurementTimeout); err != nil {
			return stats.Summary{}, err
		}
		sample.AddDuration(time.Since(t0))
		h.Watch.Stop()
	}
	return sample.Summarize(fmt.Sprintf("%d-hops", hops)), nil
}

// ScalingPoint is one x/summary pair of a scaling curve.
type ScalingPoint struct {
	X       int
	Summary stats.Summary
}

// RunTrackerScaling reproduces Figure 4: trace time as the number of
// trackers grows (added in groups, as in Figure 3's topology). The
// measuring tracker sits on the last broker of a 2-broker chain; load
// trackers subscribe to the same trace topics.
func RunTrackerScaling(trackerCounts []int, transportName string, rounds int) ([]ScalingPoint, error) {
	tb, err := New(Options{Brokers: 2, Transport: transportName})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	ent, err := tb.StartEntity("fig4-entity", 0)
	if err != nil {
		return nil, err
	}
	measuring, err := tb.StartTracker("fig4-measuring", 1, "fig4-entity",
		topic.NewClassSet(topic.ClassStateTransitions))
	if err != nil {
		return nil, err
	}
	if _, err := MeasureStateTraces(ent, measuring, 2, measurementTimeout); err != nil {
		return nil, err
	}

	var out []ScalingPoint
	started := 1 // the measuring tracker
	for _, want := range trackerCounts {
		for started < want {
			// Trackers join in groups spread across both brokers, per
			// Figure 3.
			bi := started % 2
			_, err := tb.StartTracker(fmt.Sprintf("fig4-load-%d", started), bi, "fig4-entity",
				topic.NewClassSet(topic.ClassStateTransitions, topic.ClassAllUpdates))
			if err != nil {
				return nil, err
			}
			started++
		}
		DrainEvents(measuring.Events)
		sample, err := measureStateTraces(ent, measuring.Events, rounds, measurementTimeout)
		if err != nil {
			return nil, fmt.Errorf("with %d trackers: %w", want, err)
		}
		out = append(out, ScalingPoint{X: want, Summary: sample.Summarize(fmt.Sprintf("%d trackers", want))})
	}
	return out, nil
}

// RunSigningOptimization reproduces Figure 5 (§6.3): end-to-end trace
// cost with per-message entity signatures versus the symmetric-key
// optimization.
func RunSigningOptimization(transportName string, rounds int) (plain, optimized stats.Summary, err error) {
	run := func(symmetric bool, label string) (stats.Summary, error) {
		tb, err := New(Options{Brokers: 2, Transport: transportName, Symmetric: symmetric})
		if err != nil {
			return stats.Summary{}, err
		}
		defer tb.Close()
		ent, err := tb.StartEntity("fig5-entity", 0)
		if err != nil {
			return stats.Summary{}, err
		}
		h, err := tb.StartTracker("fig5-tracker", 1, "fig5-entity",
			topic.NewClassSet(topic.ClassStateTransitions))
		if err != nil {
			return stats.Summary{}, err
		}
		if _, err := MeasureStateTraces(ent, h, 2, measurementTimeout); err != nil {
			return stats.Summary{}, err
		}
		DrainEvents(h.Events)
		sample, err := MeasureStateTraces(ent, h, rounds, measurementTimeout)
		if err != nil {
			return stats.Summary{}, err
		}
		return sample.Summarize(label), nil
	}
	plain, err = run(false, "per-message signing")
	if err != nil {
		return
	}
	optimized, err = run(true, "symmetric-key optimization")
	return
}

// RunEntityScaling reproduces Table 4: 1 broker, a fixed population of
// trackers, and a growing number of actively traced entities. Every
// tracker follows every entity's state transitions (so the per-trace
// security work at entities and broker scales with the population, as
// in §6.4); the measurement cycles state reports across all entities.
// entityCounts must be non-decreasing.
func RunEntityScaling(entityCounts []int, trackers int, transportName string, rounds int) ([]ScalingPoint, error) {
	// The paper ran every traced entity and tracker on one machine, so
	// "the security operations related to the generation of trace
	// messages ... impacted the overall performance" (§6.4). Aggressive
	// pings recreate that per-entity signing load: each entity signs a
	// ping response every 20 ms and the broker token-signs the resulting
	// heartbeat, so CPU contention grows with the population.
	tb, err := New(Options{
		Brokers:   1,
		Transport: transportName,
		Detector: failure.Config{
			BaseInterval:       20 * time.Millisecond,
			MinInterval:        10 * time.Millisecond,
			MaxInterval:        time.Second,
			ResponseTimeout:    500 * time.Millisecond,
			SuspicionThreshold: 8,
			FailureThreshold:   4,
			SuccessesPerRelax:  1 << 30,
		},
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	type tracked struct {
		ent *core.TracedEntity
		h   *TrackerHandle // the measuring tracker's watch events
	}
	var ents []tracked
	var loadTrackers []*core.Tracker

	// One measuring tracker observes all entities; the remaining
	// trackers provide fan-out load.
	var out []ScalingPoint
	for _, want := range entityCounts {
		for len(ents) < want {
			i := len(ents)
			name := fmt.Sprintf("t4-entity-%d", i)
			ent, err := tb.StartEntity(name, 0)
			if err != nil {
				return nil, err
			}
			h, err := tb.StartTracker(fmt.Sprintf("t4-measure-%d", i), 0, name,
				topic.NewClassSet(topic.ClassStateTransitions, topic.ClassAllUpdates))
			if err != nil {
				return nil, err
			}
			ents = append(ents, tracked{ent: ent, h: h})
		}
		// Bring the load-tracker population up to `trackers`; each load
		// tracker follows entity i%N.
		for len(loadTrackers) < trackers {
			i := len(loadTrackers)
			target := fmt.Sprintf("t4-entity-%d", i%len(ents))
			h, err := tb.StartTracker(fmt.Sprintf("t4-load-%d", i), 0, target,
				topic.NewClassSet(topic.ClassStateTransitions, topic.ClassAllUpdates))
			if err != nil {
				return nil, err
			}
			loadTrackers = append(loadTrackers, h.Tracker)
		}

		sample := stats.NewSample(true)
		for round := 0; round < rounds; round++ {
			tr := ents[round%len(ents)]
			DrainEvents(tr.h.Events)
			one, err := measureStateTraces(tr.ent, tr.h.Events, 1, measurementTimeout)
			if err != nil {
				return nil, fmt.Errorf("with %d entities: %w", want, err)
			}
			sample.Add(one.Mean())
		}
		out = append(out, ScalingPoint{X: want, Summary: sample.Summarize(fmt.Sprintf("%d entities", want))})
	}
	return out, nil
}

// ComplexityRow is one row of the §1 message-complexity comparison.
type ComplexityRow struct {
	N        int
	AllToAll uint64
	Brokered uint64
}

// MessageComplexity contrasts the naive N×(N−1) scheme of §1 with the
// brokered, interest-gated scheme for the given entity counts and
// tracker population.
func MessageComplexity(ns []int, interestedTrackers int) []ComplexityRow {
	out := make([]ComplexityRow, 0, len(ns))
	for _, n := range ns {
		out = append(out, ComplexityRow{
			N:        n,
			AllToAll: baseline.MessagesPerPeriod(n),
			Brokered: baseline.BrokeredMessagesPerPeriod(n, interestedTrackers),
		})
	}
	return out
}
