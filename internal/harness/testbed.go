// Package harness builds reproducible experiment environments for the
// paper's evaluation (§6): chains of brokers (Figure 1), the star of
// tracker groups (Figure 3), and measurement routines producing the
// mean/standard-deviation/standard-error summaries of Tables 3 and 4.
package harness

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"entitytrace/internal/avail"
	"entitytrace/internal/backoff"
	"entitytrace/internal/broker"
	"entitytrace/internal/brokerdir"
	"entitytrace/internal/clock"
	"entitytrace/internal/core"
	"entitytrace/internal/credential"
	"entitytrace/internal/durable"
	"entitytrace/internal/fabric"
	"entitytrace/internal/failure"
	"entitytrace/internal/ident"
	"entitytrace/internal/obs"
	"entitytrace/internal/obs/timeseries"
	"entitytrace/internal/secure"
	"entitytrace/internal/stats"
	"entitytrace/internal/tdn"
	"entitytrace/internal/token"
	"entitytrace/internal/topic"
	"entitytrace/internal/transport"
)

// Options configures a testbed.
type Options struct {
	// Brokers is the chain length. The paper's "N hops" topology is a
	// chain of N brokers with the traced entity attached to the first
	// and the measuring tracker to the last.
	Brokers int
	// Transport selects "inproc", "tcp" or "udp".
	Transport string
	// PerHopLatency injects artificial one-way latency on every link,
	// standing in for the paper's LAN (§6.1 reports 1-2 ms per hop).
	PerHopLatency time.Duration
	// Security enables §5.1 trace encryption ("authorization & security"
	// rows of Table 3); with it off only authorization applies.
	Security bool
	// Symmetric enables the §6.3 signing-cost optimization.
	Symmetric bool
	// SessionKeys enables the §6.3 session-tag signing amortization on
	// every broker: steady-state traces carry HMAC session tags verified
	// against negotiated session keys instead of per-message RSA.
	SessionKeys bool
	// BatchBytes enables egress drain coalescing on every broker: each
	// writer pass packs queued frames under this byte budget into one
	// batch send (zero disables).
	BatchBytes int
	// BatchLatency bounds how long an underfull batch drain may linger
	// for more frames (zero flushes immediately).
	BatchLatency time.Duration
	// Detector overrides failure detection tuning (zero selects a
	// 100 ms ping interval suitable for experiments).
	Detector failure.Config
	// GaugeInterval overrides the §3.5 interest-gauging period.
	GaugeInterval time.Duration
	// InterestTTL overrides how long tracker interest lasts without
	// renewal (default: effectively forever, for stable measurements).
	InterestTTL time.Duration
	// KeyBits sizes all RSA keys (default secure.PaperRSABits).
	KeyBits int
	// ShapeSeed seeds the PerHopLatency shaping wrapper (default 1);
	// experiments that sweep seeds set it explicitly.
	ShapeSeed int64
	// WrapTransport, when set, wraps the (possibly shaped) transport
	// before any broker, entity or tracker uses it — the hook the chaos
	// injector plugs into.
	WrapTransport func(transport.Transport) transport.Transport
	// ViolationLimit overrides the brokers' per-peer violation budget.
	// Chaos corruption runs raise it so injected garbage does not
	// exhaust a legitimate peer's allowance (§5.2 punishes real
	// attackers; the injector is not one).
	ViolationLimit int
	// EgressQueue overrides the brokers' per-peer egress queue bound
	// (zero selects the broker default).
	EgressQueue int
	// SlowConsumerDeadline overrides how long a peer's egress queue may
	// stay saturated before the peer is evicted (zero selects the broker
	// default).
	SlowConsumerDeadline time.Duration
	// PublishRate/PublishBurst enable per-publisher token-bucket
	// admission control on every broker (zero PublishRate disables).
	PublishRate  float64
	PublishBurst int
	// QuarantineDuration overrides how long evicted principals' reconnects
	// are refused (zero selects the broker default; negative disables).
	QuarantineDuration time.Duration
	// PersistentLinks connects the broker chain with backoff-paced
	// persistent links instead of one-shot dials, so the topology heals
	// after link flaps.
	PersistentLinks bool
	// LinkBackoff paces persistent-link redial (zero selects fast
	// test-friendly defaults).
	LinkBackoff backoff.Config
	// Reconnect wires automatic redial + session resume into every
	// entity and tracker the testbed starts.
	Reconnect bool
	// ReconnectBackoff paces entity/tracker redial (zero selects fast
	// test-friendly defaults).
	ReconnectBackoff backoff.Config
	// TrackerReconnectBackoff, when non-zero, paces tracker redial
	// separately from entities. Crash-recovery tests slow it down to
	// open a deterministic window in which the entity is already back
	// and publishing while the tracker is still away — the gap that
	// only durable replay can close.
	TrackerReconnectBackoff backoff.Config
	// GuardCache sizes each broker's verified-token cache. Zero selects
	// the default size (cache enabled, so the testbed exercises the
	// cached hot path like production brokerd); negative disables
	// caching, reproducing the uncached §4.3 pipeline on every trace.
	GuardCache int
	// FlightEvents enables a per-broker flight recorder of that many
	// events (zero disables; negative selects obs.DefaultFlightEvents).
	// Recorders appear in Testbed.Flights, indexed like Brokers.
	FlightEvents int
	// FlightSample is the healthy-path sampling period of the flight
	// recorders (1 records everything; zero selects
	// obs.DefaultFlightSample). Drops and guard rejections are always
	// recorded regardless.
	FlightSample int
	// HealthInterval enables periodic broker self-monitoring snapshots
	// on the system health topic (zero disables).
	HealthInterval time.Duration
	// AvailInterval enables per-broker availability digests on the
	// system-availability topic every interval (zero disables broker
	// ledgers and digests).
	AvailInterval time.Duration
	// TelemetryInterval enables the per-broker telemetry plane
	// (PROTOCOL.md §3.10): health sampling into a per-broker time-series
	// store plus delta-encoded snapshots on the system-telemetry topic
	// every interval (zero disables).
	TelemetryInterval time.Duration
	// TelemetryOptions tunes the telemetry stores' retention (zero value
	// keeps the timeseries defaults).
	TelemetryOptions timeseries.Options
	// TelemetryRules runs the anomaly engine over every broker's store
	// (alert edges ride in the published snapshots).
	TelemetryRules []timeseries.Rule
	// Avail is the template config for every availability ledger the
	// testbed creates (per broker when AvailInterval is set, and per
	// tracker always); zero-value fields take the avail.New defaults.
	Avail avail.Config
	// AvailSLO, when valid, is the default availability objective
	// applied to those ledgers.
	AvailSLO avail.SLO
	// LogDir enables per-broker durable trace logs (PROTOCOL.md §3.8)
	// rooted at this directory, one subdirectory per broker. Trackers
	// the testbed starts request catch-up replay automatically, and
	// StopBroker/RestartBroker exercise crash recovery on the same
	// directory.
	LogDir string
	// LogRetention bounds how long sealed durable-log segments are kept
	// (zero keeps them for the durable package default).
	LogRetention time.Duration
	// LogSegmentBytes overrides the durable-log segment roll size.
	LogSegmentBytes int64
	// LogFsync selects the durable-log fsync policy (default FsyncBatch;
	// crash-recovery tests use FsyncAlways so every append survives).
	LogFsync durable.FsyncPolicy
	// Fabric assembles the brokers into a sharded fabric (PROTOCOL.md
	// §3.9) instead of a hand-wired chain: an in-process broker
	// directory bootstraps discovery, gossip maintains membership, and
	// links to shard owners are auto-dialed.
	Fabric bool
	// VNodes overrides the virtual nodes per fabric member (zero keeps
	// the fabric default).
	VNodes int
	// GossipInterval paces fabric gossip (zero selects a test-friendly
	// 50ms).
	GossipInterval time.Duration
	// FabricFailAfter overrides how long a member's heartbeat may stall
	// before peers fail it (zero means 5x GossipInterval).
	FabricFailAfter time.Duration
}

func (o *Options) setDefaults() {
	if o.Brokers <= 0 {
		o.Brokers = 1
	}
	if o.Transport == "" {
		o.Transport = "inproc"
	}
	if o.Detector == (failure.Config{}) {
		o.Detector = failure.Config{
			BaseInterval:       100 * time.Millisecond,
			MinInterval:        25 * time.Millisecond,
			MaxInterval:        time.Second,
			ResponseTimeout:    250 * time.Millisecond,
			SuspicionThreshold: 3,
			FailureThreshold:   2,
			SuccessesPerRelax:  1 << 30, // keep the interval fixed during measurements
		}
	}
	if o.GaugeInterval <= 0 {
		o.GaugeInterval = 250 * time.Millisecond
	}
	if o.InterestTTL <= 0 {
		o.InterestTTL = time.Hour // interest never expires mid-experiment
	}
	if o.KeyBits <= 0 {
		o.KeyBits = secure.PaperRSABits
	}
	if o.ShapeSeed == 0 {
		o.ShapeSeed = 1
	}
}

// fastBackoff returns cfg, substituting test-friendly defaults (quick
// initial retry, bounded cap, fixed seed) for a zero value.
func fastBackoff(cfg backoff.Config, seed int64) backoff.Config {
	if cfg == (backoff.Config{}) {
		return backoff.Config{
			Initial: 20 * time.Millisecond,
			Max:     500 * time.Millisecond,
			Seed:    seed,
		}
	}
	return cfg
}

// Testbed is a running system: CA, TDN, broker chain with trace
// managers.
type Testbed struct {
	Opts     Options
	CA       *credential.Authority
	Verifier *credential.Verifier
	Node     *tdn.Node
	Brokers  []*broker.Broker
	Managers []*core.TraceBroker
	Addrs    []string
	// Flights holds each broker's flight recorder, indexed like Brokers
	// (nil entries when Options.FlightEvents is zero).
	Flights []*obs.FlightRecorder
	// Stores holds each broker's durable trace-log store, indexed like
	// Brokers (nil entries unless Options.LogDir is set).
	Stores []*durable.Store
	// Fabrics holds each broker's fabric membership, indexed like
	// Brokers (nil entries unless Options.Fabric is set, or after a
	// StopBroker crash).
	Fabrics []*fabric.Fabric
	// Dir is the in-process broker directory fabrics bootstrap from
	// (nil unless Options.Fabric is set).
	Dir *brokerdir.Directory

	tr       transport.Transport
	dirSrv   *brokerdir.Server
	dirAddr  string
	entities []*core.TracedEntity
	trackers []*core.Tracker
}

// New builds a testbed with opts.
func New(opts Options) (*Testbed, error) {
	opts.setDefaults()
	tb := &Testbed{Opts: opts}

	var tr transport.Transport
	var err error
	if opts.Transport == "inproc" {
		tr = transport.NewInproc()
	} else {
		tr, err = transport.New(opts.Transport)
		if err != nil {
			return nil, err
		}
	}
	if opts.PerHopLatency > 0 {
		tr, err = transport.NewShaped(tr, transport.ShapeConfig{Latency: opts.PerHopLatency, Seed: opts.ShapeSeed})
		if err != nil {
			return nil, err
		}
	}
	if opts.WrapTransport != nil {
		tr = opts.WrapTransport(tr)
	}
	tb.tr = tr

	tb.CA, err = credential.NewAuthority("harness-ca", credential.WithKeyBits(opts.KeyBits))
	if err != nil {
		return nil, err
	}
	tb.Verifier, err = credential.NewVerifier(tb.CA.CACertificate())
	if err != nil {
		return nil, err
	}
	tdnID, err := tb.CA.Issue("harness-tdn")
	if err != nil {
		return nil, err
	}
	tb.Node, err = tdn.NewNode(tdnID, tb.Verifier)
	if err != nil {
		return nil, err
	}

	if opts.Fabric {
		// The directory only bootstraps discovery: registrations refresh
		// every gossip interval, so a short TTL keeps dead brokers from
		// lingering as hints.
		tb.Dir = brokerdir.NewDirectory(5 * time.Second)
		tb.dirSrv = brokerdir.NewServer(tb.Dir)
		dl, err := tb.listen()
		if err != nil {
			return nil, err
		}
		tb.dirSrv.Serve(dl)
		tb.dirAddr = dl.Addr()
	}

	for i := 0; i < opts.Brokers; i++ {
		if err := tb.startBroker(i, ""); err != nil {
			tb.Close()
			return nil, err
		}
		if err := tb.linkBroker(i); err != nil {
			tb.Close()
			return nil, err
		}
	}
	return tb, nil
}

// startBroker builds broker i with its guard, trace manager and (when
// Options.LogDir is set) durable store, and serves it. An empty
// listenAddr picks a fresh address; a concrete one reuses it (restart).
// Index i == len(tb.Brokers) appends a new node; an existing index is
// replaced in place.
func (tb *Testbed) startBroker(i int, listenAddr string) error {
	opts := tb.Opts
	resolver := core.NewCachingResolver(core.NodeResolver(tb.Node))
	var tokenCache *core.TokenCache
	if opts.GuardCache >= 0 {
		tokenCache = core.NewTokenCache(opts.GuardCache)
	}
	var flight *obs.FlightRecorder
	if opts.FlightEvents != 0 {
		size := opts.FlightEvents
		if size < 0 {
			size = obs.DefaultFlightEvents
		}
		sample := opts.FlightSample
		if sample <= 0 {
			sample = obs.DefaultFlightSample
		}
		flight = obs.NewFlightRecorder(fmt.Sprintf("hb%d", i), size, sample)
	}
	var guard broker.Guard
	var sessions *core.SessionStore
	// requester is bound after the trace manager exists; the guard's
	// unknown-session hook reads it atomically (the guard may already
	// run on peer goroutines by then).
	var requester atomic.Pointer[func(ident.UUID, [secure.SessionIDLen]byte)]
	if opts.SessionKeys {
		sessions = core.NewSessionStore(0)
		guard = core.NewSessionTokenGuard(resolver, tb.Verifier, nil, token.DefaultClockSkew,
			tokenCache, flight, core.SessionGuardConfig{
				Store: sessions,
				OnUnknownSession: func(tt ident.UUID, sid [secure.SessionIDLen]byte) {
					if fn := requester.Load(); fn != nil {
						(*fn)(tt, sid)
					}
				},
			})
	} else {
		guard = core.NewObservedTokenGuard(resolver, tb.Verifier, nil, token.DefaultClockSkew, tokenCache, flight)
	}
	// One durable-log directory per broker, stable across restarts so
	// recovery replays what the previous incarnation persisted.
	var store *durable.Store
	if opts.LogDir != "" {
		var err error
		store, err = durable.Open(filepath.Join(opts.LogDir, fmt.Sprintf("hb%d", i)), durable.Options{
			SegmentBytes: opts.LogSegmentBytes,
			Retention:    opts.LogRetention,
			Fsync:        opts.LogFsync,
		})
		if err != nil {
			return err
		}
	}
	b := broker.New(broker.Config{
		Name:                 fmt.Sprintf("hb%d", i),
		Guard:                guard,
		Flight:               flight,
		Durable:              store,
		ViolationLimit:       opts.ViolationLimit,
		EgressQueue:          opts.EgressQueue,
		SlowConsumerDeadline: opts.SlowConsumerDeadline,
		PublishRate:          opts.PublishRate,
		PublishBurst:         opts.PublishBurst,
		QuarantineDuration:   opts.QuarantineDuration,
		BatchBytes:           opts.BatchBytes,
		BatchLatency:         opts.BatchLatency,
	})
	// Broker identities carry the broker role (OU marker): hosting
	// brokers only honour session-key requests from interested trackers
	// or broker-role credentials.
	brokerID, err := tb.CA.IssueBroker(ident.EntityID(fmt.Sprintf("harness-broker-%d", i)))
	if err != nil {
		b.Close()
		return err
	}
	mgr, err := core.NewTraceBroker(core.BrokerConfig{
		Broker:            b,
		Identity:          brokerID,
		Verifier:          tb.Verifier,
		Resolver:          resolver,
		Clock:             clock.Real{},
		Detector:          opts.Detector,
		GaugeInterval:     opts.GaugeInterval,
		InterestTTL:       opts.InterestTTL,
		HealthInterval:    opts.HealthInterval,
		AvailInterval:     opts.AvailInterval,
		Avail:             tb.newLedger(opts.AvailInterval > 0),
		TokenCache:        tokenCache,
		SessionKeys:       opts.SessionKeys,
		Sessions:          sessions,
		TelemetryInterval: opts.TelemetryInterval,
		TelemetryOptions:  opts.TelemetryOptions,
		TelemetryRules:    opts.TelemetryRules,
	})
	if err != nil {
		b.Close()
		return err
	}
	if opts.SessionKeys {
		fn := mgr.SessionRequester()
		requester.Store(&fn)
	}
	mgr.Start()
	// Accept connections only once the manager's subscriptions are live:
	// a client redialing a freshly restarted broker would otherwise
	// publish its registration into the void and stall for a full
	// RegisterTimeout before retrying.
	var l transport.Listener
	if listenAddr == "" {
		l, err = tb.listen()
	} else {
		l, err = tb.tr.Listen(listenAddr)
	}
	if err != nil {
		mgr.Close()
		b.Close()
		return err
	}
	b.Serve(l)
	var fab *fabric.Fabric
	if opts.Fabric {
		gossip := opts.GossipInterval
		if gossip <= 0 {
			gossip = 50 * time.Millisecond
		}
		fab, err = fabric.New(fabric.Config{
			Broker:         b,
			Transport:      tb.tr,
			TransportName:  opts.Transport,
			Addr:           l.Addr(),
			Dir:            brokerdir.NewClient(tb.tr, tb.dirAddr),
			VNodes:         opts.VNodes,
			GossipInterval: gossip,
			FailAfter:      opts.FabricFailAfter,
			Store:          store,
		})
		if err != nil {
			mgr.Close()
			b.Close()
			return err
		}
		fab.Start()
	}
	if i == len(tb.Brokers) {
		tb.Brokers = append(tb.Brokers, b)
		tb.Managers = append(tb.Managers, mgr)
		tb.Flights = append(tb.Flights, flight)
		tb.Stores = append(tb.Stores, store)
		tb.Fabrics = append(tb.Fabrics, fab)
		tb.Addrs = append(tb.Addrs, l.Addr())
	} else {
		tb.Brokers[i] = b
		tb.Managers[i] = mgr
		tb.Flights[i] = flight
		tb.Stores[i] = store
		tb.Fabrics[i] = fab
		tb.Addrs[i] = l.Addr()
	}
	return nil
}

// linkBroker dials broker i's chain link to its predecessor. Under
// Options.Fabric links are auto-dialed by the fabric, so this is a
// no-op.
func (tb *Testbed) linkBroker(i int) error {
	if i <= 0 || tb.Opts.Fabric {
		return nil
	}
	if tb.Opts.PersistentLinks {
		tb.Brokers[i].ConnectToPersistentBackoff(tb.tr, tb.Addrs[i-1],
			fastBackoff(tb.Opts.LinkBackoff, tb.Opts.ShapeSeed+int64(i)))
		return nil
	}
	return tb.Brokers[i].ConnectTo(tb.tr, tb.Addrs[i-1])
}

// StopBroker simulates a broker crash: node i's manager and broker go
// down and the durable store is abandoned without a final sync — the
// in-process equivalent of SIGKILL, so recovery finds exactly what the
// write path had already handed to the OS.
func (tb *Testbed) StopBroker(i int) error {
	if i < 0 || i >= len(tb.Brokers) {
		return errors.New("harness: broker index out of range")
	}
	if tb.Fabrics[i] != nil {
		// Abrupt detach — no leave gossip, no handoff: peers must detect
		// the crash through the stalled heartbeat.
		tb.Fabrics[i].Kill()
		tb.Fabrics[i] = nil
	}
	tb.Managers[i].Close()
	tb.Brokers[i].Close()
	if tb.Stores[i] != nil {
		tb.Stores[i].Crash()
	}
	return nil
}

// RestartBroker rebuilds a stopped broker i on its original address and
// durable-log directory: recovery scans and verifies the persisted
// segments, and reconnecting consumers resume their replay cursors.
func (tb *Testbed) RestartBroker(i int) error {
	if i < 0 || i >= len(tb.Brokers) {
		return errors.New("harness: broker index out of range")
	}
	if err := tb.startBroker(i, tb.Addrs[i]); err != nil {
		return err
	}
	return tb.linkBroker(i)
}

// Transport exposes the testbed's transport so callers can attach extra
// raw clients (observers, adversaries) to its brokers.
func (tb *Testbed) Transport() transport.Transport { return tb.tr }

// newLedger builds one availability ledger from the options template
// (nil unless enabled).
func (tb *Testbed) newLedger(enabled bool) *avail.Ledger {
	if !enabled {
		return nil
	}
	cfg := tb.Opts.Avail
	if tb.Opts.AvailSLO.Valid() {
		cfg.DefaultSLO = tb.Opts.AvailSLO
	}
	return avail.New(cfg)
}

func (tb *Testbed) listen() (transport.Listener, error) {
	if tb.Opts.Transport == "inproc" {
		return tb.tr.Listen("")
	}
	return tb.tr.Listen("127.0.0.1:0")
}

// Close tears the system down.
func (tb *Testbed) Close() {
	for _, tk := range tb.trackers {
		tk.Close()
	}
	for _, e := range tb.entities {
		_ = e.Stop()
	}
	// Fabrics leave gracefully while their brokers are still up.
	for _, f := range tb.Fabrics {
		if f != nil {
			f.Close()
		}
	}
	if tb.dirSrv != nil {
		tb.dirSrv.Close()
	}
	for _, m := range tb.Managers {
		m.Close()
	}
	for _, b := range tb.Brokers {
		b.Close()
	}
	for _, s := range tb.Stores {
		if s != nil {
			s.Close()
		}
	}
}

// StartEntity brings up a traced entity attached to broker brokerIdx.
func (tb *Testbed) StartEntity(name string, brokerIdx int) (*core.TracedEntity, error) {
	if brokerIdx < 0 || brokerIdx >= len(tb.Addrs) {
		return nil, errors.New("harness: broker index out of range")
	}
	id, err := tb.CA.Issue(ident.EntityID(name))
	if err != nil {
		return nil, err
	}
	addr := tb.Addrs[brokerIdx]
	cl, err := broker.Connect(tb.tr, addr, ident.EntityID(name))
	if err != nil {
		return nil, err
	}
	cfg := core.EntityConfig{
		Identity:         id,
		Verifier:         tb.Verifier,
		Registry:         tb.Node,
		Client:           cl,
		SecureTraces:     tb.Opts.Security,
		SymmetricChannel: tb.Opts.Symmetric,
		AllowAnyTracker:  true,
		TokenKeyBits:     tb.Opts.KeyBits,
		TokenValidity:    time.Hour,
	}
	if tb.Opts.Reconnect {
		cfg.Redial = func() (*broker.Client, error) {
			return broker.Connect(tb.tr, addr, ident.EntityID(name))
		}
		cfg.ReconnectBackoff = fastBackoff(tb.Opts.ReconnectBackoff, tb.Opts.ShapeSeed)
	}
	ent, err := core.StartTracing(cfg)
	if err != nil {
		return nil, err
	}
	tb.entities = append(tb.entities, ent)
	return ent, nil
}

// TrackerHandle couples a tracker with its event stream for one watch.
type TrackerHandle struct {
	Tracker *core.Tracker
	Watch   *core.Watch
	Events  chan core.Event
	// Avail is the tracker's availability ledger, fed by every verified
	// trace this tracker delivers.
	Avail *avail.Ledger
}

// StartTracker brings up a tracker on broker brokerIdx following the
// named entity with the given classes. Its events arrive on the
// returned channel (buffered; overflow drops).
func (tb *Testbed) StartTracker(name string, brokerIdx int, entity string, classes topic.ClassSet) (*TrackerHandle, error) {
	return tb.StartTrackerPaced(name, brokerIdx, entity, classes, backoff.Config{})
}

// StartTrackerPaced is StartTracker with an explicit reconnect pace for
// this one tracker, overriding Options.TrackerReconnectBackoff. Crash
// tests use it to pair a fast-redialing tracker (whose restored
// interest keeps the manager publishing after a broker restart) with a
// slow one whose catch-up replay is under test. A zero pace falls back
// to the testbed-wide options.
func (tb *Testbed) StartTrackerPaced(name string, brokerIdx int, entity string, classes topic.ClassSet, pace backoff.Config) (*TrackerHandle, error) {
	if brokerIdx < 0 || brokerIdx >= len(tb.Addrs) {
		return nil, errors.New("harness: broker index out of range")
	}
	id, err := tb.CA.Issue(ident.EntityID(name))
	if err != nil {
		return nil, err
	}
	addr := tb.Addrs[brokerIdx]
	cl, err := broker.Connect(tb.tr, addr, ident.EntityID(name))
	if err != nil {
		return nil, err
	}
	ledger := tb.newLedger(true)
	cfg := core.TrackerConfig{
		Identity:  id,
		Verifier:  tb.Verifier,
		Discovery: tb.Node,
		Resolver:  core.NewCachingResolver(core.NodeResolver(tb.Node)),
		Client:    cl,
		Avail:     ledger,
		// Durable brokers serve catch-up replay; trackers use it so the
		// ledger sees traces published while they were away (§3.8).
		Replay: tb.Opts.LogDir != "",
	}
	if tb.Opts.Reconnect {
		cfg.Redial = func() (*broker.Client, error) {
			return broker.Connect(tb.tr, addr, ident.EntityID(name))
		}
		if pace == (backoff.Config{}) {
			pace = tb.Opts.TrackerReconnectBackoff
		}
		if pace == (backoff.Config{}) {
			pace = tb.Opts.ReconnectBackoff
		}
		cfg.ReconnectBackoff = fastBackoff(pace, tb.Opts.ShapeSeed+1)
	}
	tk, err := core.NewTracker(cfg)
	if err != nil {
		cl.Close()
		return nil, err
	}
	ad, err := tk.Discover(ident.EntityID(entity))
	if err != nil {
		tk.Close()
		return nil, err
	}
	events := make(chan core.Event, 1024)
	w, err := tk.Track(ad, classes, func(ev core.Event) {
		select {
		case events <- ev:
		default:
		}
	})
	if err != nil {
		tk.Close()
		return nil, err
	}
	tb.trackers = append(tb.trackers, tk)
	return &TrackerHandle{Tracker: tk, Watch: w, Events: events, Avail: ledger}, nil
}

// AwaitTraceKey blocks until the §5.1 trace key reaches the watch.
func (h *TrackerHandle) AwaitTraceKey(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if h.Watch.HasTraceKey() {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return errors.New("harness: trace key not delivered in time")
}

// MeasureStateTraces measures end-to-end trace routing overhead: the
// traced entity reports a state transition and the measuring tracker
// timestamps the verified delivery. Both run in this process (as in the
// paper, "to obviate the need for clock synchronizations, the traced
// entity and the measuring tracker were hosted on the same machine"),
// so latency = receive time − report time. It returns a Sample in
// milliseconds.
func MeasureStateTraces(ent *core.TracedEntity, h *TrackerHandle, rounds int, timeout time.Duration) (*stats.Sample, error) {
	return measureStateTraces(ent, h.Events, rounds, timeout)
}

func measureStateTraces(ent *core.TracedEntity, events <-chan core.Event, rounds int, timeout time.Duration) (*stats.Sample, error) {
	sample := stats.NewSample(true)
	// Alternate between READY and RECOVERING so each report is a real
	// transition.
	for i := 0; i < rounds; i++ {
		want := core.StateForRound(i)
		if err := ent.SetState(want); err != nil {
			return nil, err
		}
		deadline := time.After(timeout)
	waiting:
		for {
			// Interest registration is asynchronous (§3.5): a transition
			// reported before the broker learns of the tracker's interest
			// is legitimately not published. Re-issue the transition on a
			// sub-timeout; each delivered event carries its own report
			// timestamp, so retries do not distort the measured latency.
			retry := time.After(time.Second)
			select {
			case ev := <-events:
				if ev.State == nil || ev.State.To != want {
					continue waiting
				}
				lat := ev.ReceivedAt.Sub(time.Unix(0, ev.State.At))
				sample.AddDuration(lat)
				break waiting
			case <-retry:
				if err := ent.SetState(want); err != nil {
					return nil, err
				}
			case <-deadline:
				return nil, fmt.Errorf("harness: round %d: no state trace within %v", i, timeout)
			}
		}
	}
	return sample, nil
}

// DrainEvents empties an event channel (between measurement phases).
func DrainEvents(events <-chan core.Event) {
	for {
		select {
		case <-events:
		default:
			return
		}
	}
}
