package harness

import (
	"fmt"
	"time"

	"entitytrace/internal/failure"
	"entitytrace/internal/topic"
)

// GatingResult quantifies the §3.5 claim that "traces are issued by a
// broker only if there are entities that are interested in receiving
// traces": broker publication counts over a fixed window with no
// trackers, with an interested tracker, and after interest expires.
type GatingResult struct {
	Phase     string
	Window    time.Duration
	Published uint64
	PerSecond float64
}

// RunInterestGating measures broker publications across three phases on
// one testbed: silent (no trackers), interested (one tracker wanting
// heartbeats), and withdrawn (the tracker stopped and its interest
// registration expired).
func RunInterestGating(window time.Duration) ([]GatingResult, error) {
	interestTTL := 300 * time.Millisecond
	tb, err := New(Options{
		Brokers:       1,
		GaugeInterval: 100 * time.Millisecond,
		InterestTTL:   interestTTL,
		Detector: failure.Config{
			BaseInterval:       25 * time.Millisecond,
			MinInterval:        10 * time.Millisecond,
			MaxInterval:        time.Second,
			ResponseTimeout:    200 * time.Millisecond,
			SuspicionThreshold: 5,
			FailureThreshold:   3,
			SuccessesPerRelax:  1 << 30,
		},
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	if _, err := tb.StartEntity("gating-entity", 0); err != nil {
		return nil, err
	}

	measure := func(phase string) GatingResult {
		before := tb.Brokers[0].Snapshot().Published
		time.Sleep(window)
		after := tb.Brokers[0].Snapshot().Published
		n := after - before
		return GatingResult{
			Phase:     phase,
			Window:    window,
			Published: n,
			PerSecond: float64(n) / window.Seconds(),
		}
	}

	var out []GatingResult
	// Phase 1: nobody is interested. Publications are limited to the
	// broker's own gauge probes.
	out = append(out, measure("no trackers"))

	// Phase 2: a tracker wants heartbeats. Interest renews on every
	// gauge probe, so it stays alive while the watch runs.
	h, err := tb.StartTracker("gating-tracker", 0, "gating-entity",
		topic.NewClassSet(topic.ClassAllUpdates))
	if err != nil {
		return nil, err
	}
	time.Sleep(200 * time.Millisecond) // let interest register
	out = append(out, measure("1 interested tracker"))

	// Phase 3: the tracker withdraws; after InterestTTL the broker
	// reverts to silence.
	h.Watch.Stop()
	time.Sleep(interestTTL + 2*tb.Opts.GaugeInterval)
	out = append(out, measure("tracker withdrawn, interest expired"))
	return out, nil
}

// String renders one row.
func (g GatingResult) String() string {
	return fmt.Sprintf("%-40s %6d msgs in %v (%.1f/s)", g.Phase, g.Published, g.Window, g.PerSecond)
}
