package secure

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// Shared key pairs: RSA generation is slow, so generate once.
var (
	testPair  *KeyPair
	otherPair *KeyPair
)

func init() {
	var err error
	testPair, err = GenerateKeyPair(PaperRSABits)
	if err != nil {
		panic(err)
	}
	otherPair, err = GenerateKeyPair(PaperRSABits)
	if err != nil {
		panic(err)
	}
}

func TestGenerateKeyPairRejectsWeakModulus(t *testing.T) {
	if _, err := GenerateKeyPair(512); err == nil {
		t.Fatal("accepted 512-bit modulus")
	}
}

func TestHashString(t *testing.T) {
	if SHA1.String() != "SHA-1" || SHA256.String() != "SHA-256" {
		t.Fatal("unexpected hash names")
	}
	if Hash(99).String() == "" {
		t.Fatal("unknown hash produced empty name")
	}
}

func TestHashDigestUnknown(t *testing.T) {
	if _, err := Hash(99).Digest([]byte("x")); err == nil {
		t.Fatal("unknown hash digest should error")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	der, err := MarshalPublicKey(testPair.Public)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePublicKey(der)
	if err != nil {
		t.Fatal(err)
	}
	if back.N.Cmp(testPair.Public.N) != 0 || back.E != testPair.Public.E {
		t.Fatal("public key round trip mismatch")
	}
}

func TestPrivateKeyRoundTrip(t *testing.T) {
	der, err := MarshalPrivateKey(testPair.Private)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePrivateKey(der)
	if err != nil {
		t.Fatal(err)
	}
	if back.D.Cmp(testPair.Private.D) != 0 {
		t.Fatal("private key round trip mismatch")
	}
}

func TestMarshalNilKeys(t *testing.T) {
	if _, err := MarshalPublicKey(nil); err == nil {
		t.Fatal("MarshalPublicKey(nil) succeeded")
	}
	if _, err := MarshalPrivateKey(nil); err == nil {
		t.Fatal("MarshalPrivateKey(nil) succeeded")
	}
}

func TestParseGarbageKeys(t *testing.T) {
	if _, err := ParsePublicKey([]byte("junk")); err == nil {
		t.Fatal("ParsePublicKey accepted junk")
	}
	if _, err := ParsePrivateKey([]byte("junk")); err == nil {
		t.Fatal("ParsePrivateKey accepted junk")
	}
}

func TestSignVerifySHA1(t *testing.T) {
	s, err := NewSigner(testPair.Private, SHA1)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ALLS_WELL trace for entity-7")
	sig, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(testPair.Public, SHA1, msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestSignVerifySHA256(t *testing.T) {
	s, err := NewSigner(testPair.Private, SHA256)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("state transition READY")
	sig, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(testPair.Public, SHA256, msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	s, _ := NewSigner(testPair.Private, SHA1)
	msg := []byte("original content")
	sig, _ := s.Sign(msg)
	tampered := []byte("original content!")
	if err := Verify(testPair.Public, SHA1, tampered, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered message verified, err=%v", err)
	}
}

func TestVerifyDetectsWrongSigner(t *testing.T) {
	s, _ := NewSigner(otherPair.Private, SHA1)
	msg := []byte("spoofed trace")
	sig, _ := s.Sign(msg)
	if err := Verify(testPair.Public, SHA1, msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong-signer message verified, err=%v", err)
	}
}

func TestVerifyWrongHash(t *testing.T) {
	s, _ := NewSigner(testPair.Private, SHA1)
	msg := []byte("digest confusion")
	sig, _ := s.Sign(msg)
	if err := Verify(testPair.Public, SHA256, msg, sig); err == nil {
		t.Fatal("signature verified under wrong hash")
	}
}

func TestNewSignerValidation(t *testing.T) {
	if _, err := NewSigner(nil, SHA1); err == nil {
		t.Fatal("NewSigner(nil) succeeded")
	}
	if _, err := NewSigner(testPair.Private, Hash(42)); err == nil {
		t.Fatal("NewSigner with unknown hash succeeded")
	}
}

func TestSignerAccessors(t *testing.T) {
	s, _ := NewSigner(testPair.Private, SHA1)
	if s.Hash() != SHA1 {
		t.Fatal("Hash() mismatch")
	}
	if s.Public().N.Cmp(testPair.Public.N) != 0 {
		t.Fatal("Public() mismatch")
	}
}

func TestSymmetricRoundTrip(t *testing.T) {
	for _, size := range []int{AES128KeyBytes, PaperAESKeyBytes, AES256KeyBytes} {
		k, err := NewSymmetricKey(size)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("NETWORK_METRICS loss=0.01 rtt=1.9ms")
		ct, err := k.Encrypt(msg)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := k.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestSymmetricRoundTripProperty(t *testing.T) {
	k, err := NewSymmetricKey(PaperAESKeyBytes)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(msg []byte) bool {
		ct, err := k.Encrypt(msg)
		if err != nil {
			return false
		}
		pt, err := k.Decrypt(ct)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricEmptyPlaintext(t *testing.T) {
	k, _ := NewSymmetricKey(PaperAESKeyBytes)
	ct, err := k.Encrypt(nil)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := k.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt) != 0 {
		t.Fatalf("expected empty plaintext, got %d bytes", len(pt))
	}
}

func TestSymmetricIVRandomized(t *testing.T) {
	k, _ := NewSymmetricKey(PaperAESKeyBytes)
	msg := []byte("same plaintext")
	a, _ := k.Encrypt(msg)
	b, _ := k.Encrypt(msg)
	if bytes.Equal(a, b) {
		t.Fatal("two encryptions of the same plaintext are identical (IV reuse?)")
	}
}

func TestSymmetricWrongKeyFails(t *testing.T) {
	k1, _ := NewSymmetricKey(PaperAESKeyBytes)
	k2, _ := NewSymmetricKey(PaperAESKeyBytes)
	ct, _ := k1.Encrypt([]byte("secret trace"))
	if pt, err := k2.Decrypt(ct); err == nil && bytes.Equal(pt, []byte("secret trace")) {
		t.Fatal("wrong key decrypted to original plaintext")
	}
}

func TestSymmetricDecryptMalformed(t *testing.T) {
	k, _ := NewSymmetricKey(PaperAESKeyBytes)
	cases := [][]byte{nil, {1, 2, 3}, make([]byte, 16), make([]byte, 17), make([]byte, 33)}
	for _, c := range cases {
		if _, err := k.Decrypt(c); err == nil {
			t.Errorf("Decrypt accepted malformed input of %d bytes", len(c))
		}
	}
}

func TestAuthenticatedRoundTrip(t *testing.T) {
	k, _ := NewSymmetricKey(PaperAESKeyBytes)
	msg := []byte("ping response #42")
	ct, err := k.EncryptAuthenticated(msg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := k.DecryptAuthenticated(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("authenticated round trip mismatch")
	}
}

func TestAuthenticatedDetectsFlippedBit(t *testing.T) {
	k, _ := NewSymmetricKey(PaperAESKeyBytes)
	ct, _ := k.EncryptAuthenticated([]byte("authentic trace"))
	ct[len(ct)/2] ^= 0x01
	if _, err := k.DecryptAuthenticated(ct); !errors.Is(err, ErrBadCiphertext) {
		t.Fatalf("tampered authenticated ciphertext accepted, err=%v", err)
	}
}

func TestAuthenticatedShortInput(t *testing.T) {
	k, _ := NewSymmetricKey(PaperAESKeyBytes)
	if _, err := k.DecryptAuthenticated([]byte("short")); err == nil {
		t.Fatal("short authenticated ciphertext accepted")
	}
}

func TestSymmetricKeyFromBytes(t *testing.T) {
	k1, _ := NewSymmetricKey(PaperAESKeyBytes)
	k2, err := SymmetricKeyFromBytes(k1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Equal(k2) {
		t.Fatal("keys from identical bytes not equal")
	}
	if _, err := SymmetricKeyFromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted 3-byte key")
	}
}

func TestSymmetricKeyEqual(t *testing.T) {
	k1, _ := NewSymmetricKey(PaperAESKeyBytes)
	k2, _ := NewSymmetricKey(PaperAESKeyBytes)
	if k1.Equal(k2) {
		t.Fatal("distinct random keys reported equal")
	}
	if k1.Equal(nil) {
		t.Fatal("Equal(nil) = true")
	}
	if k1.Size() != PaperAESKeyBytes {
		t.Fatalf("Size = %d", k1.Size())
	}
}

func TestNewSymmetricKeyBadSize(t *testing.T) {
	if _, err := NewSymmetricKey(20); err == nil {
		t.Fatal("accepted invalid key size")
	}
}

func TestSealOpen(t *testing.T) {
	payload := []byte("trace key material + AES-192-CBC + PKCS7")
	sp, err := Seal(testPair.Public, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sp.Open(testPair.Private)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("seal/open round trip mismatch")
	}
}

func TestSealOpenWrongRecipient(t *testing.T) {
	sp, err := Seal(testPair.Public, []byte("for test pair only"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Open(otherPair.Private); err == nil {
		t.Fatal("wrong recipient opened sealed payload")
	}
}

func TestSealNilKey(t *testing.T) {
	if _, err := Seal(nil, []byte("x")); err == nil {
		t.Fatal("Seal(nil) succeeded")
	}
	sp := &SealedPayload{}
	if _, err := sp.Open(nil); err == nil {
		t.Fatal("Open(nil) succeeded")
	}
}

func TestSealedPayloadMarshalRoundTrip(t *testing.T) {
	sp, err := Seal(testPair.Public, []byte("wire form"))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSealedPayload(wire)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Open(testPair.Private)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("wire form")) {
		t.Fatal("marshal round trip lost payload")
	}
}

func TestUnmarshalSealedPayloadMalformed(t *testing.T) {
	if _, err := UnmarshalSealedPayload([]byte{0}); err == nil {
		t.Fatal("accepted 1-byte payload")
	}
	// Claims a 1000-byte wrapped key but provides none.
	if _, err := UnmarshalSealedPayload([]byte{0x03, 0xe8}); err == nil {
		t.Fatal("accepted truncated payload")
	}
}

func TestRandomBytes(t *testing.T) {
	a, err := RandomBytes(32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomBytes(32)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two 32-byte random reads are identical")
	}
}
