package secure

import (
	"crypto/hmac"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/subtle"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync"
	"time"
)

// This file implements the §6.3 signing-cost optimization for the trace
// path: after the first successful token + RSA verification of a
// publisher on a topic, publisher and verifiers share a per-session
// symmetric key and subsequent envelopes carry an HMAC-SHA256 session
// tag instead of a per-message RSA delegate signature. The key is never
// sent in the clear: the publisher generates a random session secret,
// seals it to each verifier's RSA credential (the §5.1 trace-key
// construction), and both sides derive the tag key with HKDF-SHA256
// from the secret and a public nonce.

// Session wire sizes.
const (
	// SessionIDLen is the length of a session identifier.
	SessionIDLen = 16
	// SessionSecretLen is the length of the random session secret from
	// which the tag key is derived.
	SessionSecretLen = 32
	// SessionNonceLen is the length of the public HKDF salt nonce.
	SessionNonceLen = 16
	// SessionKeyLen is the length of the derived HMAC key.
	SessionKeyLen = 32
	// SessionTagLen is the length of an HMAC-SHA256 session tag.
	SessionTagLen = sha256.Size
)

// ErrBadSessionTag reports a session tag that failed verification:
// wrong key, tampered content, or a truncated tag.
var ErrBadSessionTag = errors.New("secure: session tag verification failed")

// hkdfExtract is the RFC 5869 extract step: PRK = HMAC-Hash(salt, IKM).
func hkdfExtract(salt, ikm []byte) []byte {
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// hkdfExpand is the RFC 5869 expand step: OKM = T(1) | T(2) | ... with
// T(i) = HMAC-Hash(PRK, T(i-1) | info | i).
func hkdfExpand(prk, info []byte, length int) ([]byte, error) {
	if length <= 0 || length > 255*sha256.Size {
		return nil, fmt.Errorf("secure: invalid HKDF output length %d", length)
	}
	out := make([]byte, 0, length)
	var t []byte
	for i := byte(1); len(out) < length; i++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(t)
		mac.Write(info)
		mac.Write([]byte{i})
		t = mac.Sum(nil)
		out = append(out, t...)
	}
	return out[:length], nil
}

// HKDF derives length bytes of key material from secret with the RFC
// 5869 HKDF-SHA256 construction (extract with salt, then expand with
// info). Implemented directly on crypto/hmac so the module keeps its
// go 1.22 floor.
func HKDF(secret, salt, info []byte, length int) ([]byte, error) {
	return hkdfExpand(hkdfExtract(salt, secret), info, length)
}

// sessionKeyInfo is the HKDF info-string prefix binding derived keys to
// this protocol and version.
const sessionKeyInfo = "entitytrace/session-key/v1"

// SessionParams is the negotiated material one verifier needs to check
// a publisher's session tags: the session identifier, the secret and
// nonce the tag key derives from, the digest of the authorization token
// the session is bound to, and the validity window. The whole struct
// travels only inside a SealedPayload addressed to the verifier's RSA
// credential — an RSA-encrypted nonce exchange.
type SessionParams struct {
	// ID identifies the session on the wire (it prefixes every tag).
	ID [SessionIDLen]byte
	// Secret is the random input keying material (never on the wire in
	// the clear).
	Secret []byte
	// Nonce is the public HKDF salt.
	Nonce []byte
	// TokenDigest is the SHA-256 of the raw authorization-token bytes
	// this session amortizes; token rotation changes the digest and
	// forces a rekey.
	TokenDigest [32]byte
	// NotBefore and NotAfter bound the session validity window in Unix
	// nanoseconds. The window never extends past the bound token's own
	// window.
	NotBefore int64
	NotAfter  int64
}

// NewSessionParams creates fresh session parameters: random ID, secret
// and nonce, bound to tokenDigest and valid over [notBefore, notAfter].
func NewSessionParams(tokenDigest [32]byte, notBefore, notAfter int64) (*SessionParams, error) {
	if notAfter <= notBefore {
		return nil, errors.New("secure: empty session validity window")
	}
	raw, err := RandomBytes(SessionIDLen + SessionSecretLen + SessionNonceLen)
	if err != nil {
		return nil, err
	}
	p := &SessionParams{
		Secret:      raw[SessionIDLen : SessionIDLen+SessionSecretLen],
		Nonce:       raw[SessionIDLen+SessionSecretLen:],
		TokenDigest: tokenDigest,
		NotBefore:   notBefore,
		NotAfter:    notAfter,
	}
	copy(p.ID[:], raw[:SessionIDLen])
	return p, nil
}

// Derive computes the session tag key with HKDF-SHA256. The info string
// binds the key to the protocol version, the session ID, the trace
// topic and the publishing principal, so a key derived for one context
// verifies nothing in another.
func (p *SessionParams) Derive(traceTopic, principal string) (*SessionKey, error) {
	if len(p.Secret) != SessionSecretLen {
		return nil, fmt.Errorf("secure: session secret length %d, want %d", len(p.Secret), SessionSecretLen)
	}
	info := make([]byte, 0, len(sessionKeyInfo)+SessionIDLen+len(traceTopic)+len(principal)+3)
	info = append(info, sessionKeyInfo...)
	info = append(info, 0)
	info = append(info, p.ID[:]...)
	info = append(info, 0)
	info = append(info, traceTopic...)
	info = append(info, 0)
	info = append(info, principal...)
	key, err := HKDF(p.Secret, p.Nonce, info, SessionKeyLen)
	if err != nil {
		return nil, err
	}
	k := &SessionKey{
		id:          p.ID,
		key:         key,
		tokenDigest: p.TokenDigest,
		notBefore:   p.NotBefore,
		notAfter:    p.NotAfter,
	}
	k.istate, k.ostate = precomputeMacStates(key)
	return k, nil
}

// precomputeMacStates runs the HMAC key schedule once: it returns the
// marshaled SHA-256 states after absorbing the ipad- and opad-masked key
// blocks. Per-tag work then restores a state and hashes only the data —
// the key block compressions and the hmac.New allocations are paid once
// per session instead of once per message. Returns nils (disabling the
// fast path) if the hash does not support state marshaling.
func precomputeMacStates(key []byte) (istate, ostate []byte) {
	var ipad, opad [sha256.BlockSize]byte
	copy(ipad[:], key) // SessionKeyLen < BlockSize, so never pre-hashed
	copy(opad[:], key)
	for i := range ipad {
		ipad[i] ^= 0x36
		opad[i] ^= 0x5c
	}
	marshal := func(block []byte) []byte {
		h := sha256.New()
		h.Write(block)
		m, ok := h.(encoding.BinaryMarshaler)
		if !ok {
			return nil
		}
		state, err := m.MarshalBinary()
		if err != nil {
			return nil
		}
		return state
	}
	istate, ostate = marshal(ipad[:]), marshal(opad[:])
	if istate == nil || ostate == nil {
		return nil, nil
	}
	return istate, ostate
}

// macScratch pools the two transient SHA-256 digests a precomputed-state
// tag computation restores into, plus the inner-sum buffer: brokers tag-
// verify every forwarded trace, so these would otherwise be pure hot-path
// garbage.
type macScratch struct {
	inner, outer hash.Hash
	sum          [sha256.Size]byte
}

var macPool = sync.Pool{
	New: func() any { return &macScratch{inner: sha256.New(), outer: sha256.New()} },
}

// Marshal serializes the parameters (pre-sealing).
func (p *SessionParams) Marshal() []byte {
	out := make([]byte, 0, SessionIDLen+2+len(p.Secret)+2+len(p.Nonce)+32+16)
	out = append(out, p.ID[:]...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(p.Secret)))
	out = append(out, p.Secret...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(p.Nonce)))
	out = append(out, p.Nonce...)
	out = append(out, p.TokenDigest[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(p.NotBefore))
	out = binary.BigEndian.AppendUint64(out, uint64(p.NotAfter))
	return out
}

// UnmarshalSessionParams parses the wire form produced by Marshal.
func UnmarshalSessionParams(b []byte) (*SessionParams, error) {
	p := &SessionParams{}
	if len(b) < SessionIDLen+2 {
		return nil, errors.New("secure: truncated session params")
	}
	copy(p.ID[:], b[:SessionIDLen])
	b = b[SessionIDLen:]
	take := func(field string) ([]byte, error) {
		if len(b) < 2 {
			return nil, fmt.Errorf("secure: truncated session %s", field)
		}
		n := int(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
		if n > len(b) {
			return nil, fmt.Errorf("secure: truncated session %s", field)
		}
		v := append([]byte(nil), b[:n]...)
		b = b[n:]
		return v, nil
	}
	var err error
	if p.Secret, err = take("secret"); err != nil {
		return nil, err
	}
	if p.Nonce, err = take("nonce"); err != nil {
		return nil, err
	}
	if len(b) != 32+16 {
		return nil, errors.New("secure: malformed session params")
	}
	copy(p.TokenDigest[:], b[:32])
	p.NotBefore = int64(binary.BigEndian.Uint64(b[32:40]))
	p.NotAfter = int64(binary.BigEndian.Uint64(b[40:48]))
	if len(p.Secret) != SessionSecretLen {
		return nil, fmt.Errorf("secure: session secret length %d, want %d", len(p.Secret), SessionSecretLen)
	}
	if p.NotAfter <= p.NotBefore {
		return nil, errors.New("secure: empty session validity window")
	}
	return p, nil
}

// SealTo seals the parameters to a verifier's RSA public key, producing
// the wire blob of a SESSION_KEY_RESPONSE payload.
func (p *SessionParams) SealTo(pub *rsa.PublicKey) ([]byte, error) {
	sealed, err := Seal(pub, p.Marshal())
	if err != nil {
		return nil, err
	}
	return sealed.Marshal()
}

// OpenSessionParams opens a blob produced by SealTo with the verifier's
// private key.
func OpenSessionParams(priv *rsa.PrivateKey, blob []byte) (*SessionParams, error) {
	sealed, err := UnmarshalSealedPayload(blob)
	if err != nil {
		return nil, err
	}
	body, err := sealed.Open(priv)
	if err != nil {
		return nil, err
	}
	return UnmarshalSessionParams(body)
}

// SessionKey is a derived per-session HMAC key with its identity,
// token binding and validity window. It is immutable after derivation
// and safe for concurrent use.
type SessionKey struct {
	id          [SessionIDLen]byte
	key         []byte
	tokenDigest [32]byte
	notBefore   int64
	notAfter    int64

	// istate and ostate hold the marshaled SHA-256 states of the HMAC
	// key schedule (ipad/opad blocks already absorbed); see
	// precomputeMacStates. Nil disables the fast path.
	istate, ostate []byte
}

// ID returns the session identifier.
func (k *SessionKey) ID() [SessionIDLen]byte { return k.id }

// TokenDigest returns the SHA-256 of the bound authorization token.
func (k *SessionKey) TokenDigest() [32]byte { return k.tokenDigest }

// Window returns the validity bounds in Unix nanoseconds.
func (k *SessionKey) Window() (notBefore, notAfter int64) { return k.notBefore, k.notAfter }

// ValidAt reports whether the key's window covers now with the given
// clock-skew tolerance — the same acceptance rule token validation
// applies, so the session path and the RSA path agree on expiry.
func (k *SessionKey) ValidAt(now time.Time, skew time.Duration) bool {
	if skew < 0 {
		skew = 0
	}
	n := now.UnixNano()
	return n >= k.notBefore-int64(skew) && n <= k.notAfter+int64(skew)
}

// appendTag appends the HMAC-SHA256 tag over data to dst. With
// precomputed key-schedule states it restores pooled digests instead of
// running hmac.New per message; the output is byte-identical HMAC-SHA256
// either way (TestSessionTagMatchesHMAC pins this).
func (k *SessionKey) appendTag(dst, data []byte) []byte {
	if k.istate == nil {
		mac := hmac.New(sha256.New, k.key)
		mac.Write(data)
		return mac.Sum(dst)
	}
	s := macPool.Get().(*macScratch)
	iu := s.inner.(encoding.BinaryUnmarshaler)
	ou := s.outer.(encoding.BinaryUnmarshaler)
	if iu.UnmarshalBinary(k.istate) != nil || ou.UnmarshalBinary(k.ostate) != nil {
		macPool.Put(s)
		mac := hmac.New(sha256.New, k.key)
		mac.Write(data)
		return mac.Sum(dst)
	}
	s.inner.Write(data)
	innerSum := s.inner.Sum(s.sum[:0])
	s.outer.Write(innerSum)
	dst = s.outer.Sum(dst)
	macPool.Put(s)
	return dst
}

// Tag computes the HMAC-SHA256 session tag over data.
func (k *SessionKey) Tag(data []byte) []byte {
	return k.appendTag(nil, data)
}

// AppendTag appends the session tag over data to dst, avoiding the
// separate allocation of Tag on hot paths.
func (k *SessionKey) AppendTag(dst, data []byte) []byte {
	return k.appendTag(dst, data)
}

// VerifyTag checks a session tag over data in constant time.
func (k *SessionKey) VerifyTag(data, tag []byte) error {
	if len(tag) != SessionTagLen {
		return fmt.Errorf("%w: tag length %d", ErrBadSessionTag, len(tag))
	}
	var sum [SessionTagLen]byte
	if subtle.ConstantTimeCompare(k.appendTag(sum[:0], data), tag) != 1 {
		return ErrBadSessionTag
	}
	return nil
}
