package secure

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
)

// SealedPayload is a hybrid public-key envelope: the payload is encrypted
// with a randomly generated secret key, and that secret key is encrypted
// using the recipient's public key — exactly the construction of the
// registration response (§3.2: "The response message is encrypted with a
// randomly generated secret key, and this secret key is encrypted using
// the entity's public key") and of trace-key distribution (§5.1).
//
// Wire layout: uint16 wrappedKeyLen || wrappedKey || ciphertext.
type SealedPayload struct {
	WrappedKey []byte // RSA-PKCS1v15 encryption of the fresh AES key
	Ciphertext []byte // AES-CBC + HMAC ciphertext of the payload
}

// Seal encrypts payload for the holder of pub.
func Seal(pub *rsa.PublicKey, payload []byte) (*SealedPayload, error) {
	if pub == nil {
		return nil, errors.New("secure: nil recipient key")
	}
	key, err := NewSymmetricKey(PaperAESKeyBytes)
	if err != nil {
		return nil, err
	}
	ct, err := key.EncryptAuthenticated(payload)
	if err != nil {
		return nil, err
	}
	wrapped, err := rsa.EncryptPKCS1v15(rand.Reader, pub, key.Bytes())
	if err != nil {
		return nil, fmt.Errorf("secure: wrapping session key: %w", err)
	}
	return &SealedPayload{WrappedKey: wrapped, Ciphertext: ct}, nil
}

// Open decrypts a SealedPayload with the recipient's private key.
func (sp *SealedPayload) Open(priv *rsa.PrivateKey) ([]byte, error) {
	if priv == nil {
		return nil, errors.New("secure: nil private key")
	}
	raw, err := rsa.DecryptPKCS1v15(rand.Reader, priv, sp.WrappedKey)
	if err != nil {
		return nil, fmt.Errorf("%w: unwrapping session key: %v", ErrBadCiphertext, err)
	}
	key, err := SymmetricKeyFromBytes(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: bad session key length", ErrBadCiphertext)
	}
	return key.DecryptAuthenticated(sp.Ciphertext)
}

// Marshal encodes the envelope for transmission.
func (sp *SealedPayload) Marshal() ([]byte, error) {
	if len(sp.WrappedKey) > 0xffff {
		return nil, errors.New("secure: wrapped key too large")
	}
	out := make([]byte, 2+len(sp.WrappedKey)+len(sp.Ciphertext))
	binary.BigEndian.PutUint16(out[:2], uint16(len(sp.WrappedKey)))
	copy(out[2:], sp.WrappedKey)
	copy(out[2+len(sp.WrappedKey):], sp.Ciphertext)
	return out, nil
}

// UnmarshalSealedPayload decodes the wire form produced by Marshal.
func UnmarshalSealedPayload(b []byte) (*SealedPayload, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: short sealed payload", ErrBadCiphertext)
	}
	klen := int(binary.BigEndian.Uint16(b[:2]))
	if len(b) < 2+klen {
		return nil, fmt.Errorf("%w: truncated sealed payload", ErrBadCiphertext)
	}
	sp := &SealedPayload{
		WrappedKey: append([]byte(nil), b[2:2+klen]...),
		Ciphertext: append([]byte(nil), b[2+klen:]...),
	}
	return sp, nil
}
