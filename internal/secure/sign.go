package secure

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
)

// ErrBadSignature reports a signature that failed verification, which per
// §3.2 covers both "wrong signer" and "tampered content".
var ErrBadSignature = errors.New("secure: signature verification failed")

// Signer signs byte slices with a fixed private key and digest. The paper
// signs by "computing the checksum for the message and encrypting this
// message digest with its private key" (§3.2) — exactly RSASSA-PKCS1-v1.5.
type Signer struct {
	priv *rsa.PrivateKey
	hash Hash
}

// NewSigner returns a Signer using priv and digest h.
func NewSigner(priv *rsa.PrivateKey, h Hash) (*Signer, error) {
	if priv == nil {
		return nil, errors.New("secure: nil private key for signer")
	}
	if _, err := h.cryptoHash(); err != nil {
		return nil, err
	}
	return &Signer{priv: priv, hash: h}, nil
}

// Hash returns the digest the signer uses.
func (s *Signer) Hash() Hash { return s.hash }

// Public returns the verification key matching the signer.
func (s *Signer) Public() *rsa.PublicKey { return &s.priv.PublicKey }

// Sign produces an RSASSA-PKCS1-v1.5 signature over data.
func (s *Signer) Sign(data []byte) ([]byte, error) {
	digest, err := s.hash.Digest(data)
	if err != nil {
		return nil, err
	}
	ch, _ := s.hash.cryptoHash()
	sig, err := rsa.SignPKCS1v15(rand.Reader, s.priv, ch, digest)
	if err != nil {
		return nil, fmt.Errorf("secure: signing: %w", err)
	}
	return sig, nil
}

// Verify checks an RSASSA-PKCS1-v1.5 signature over data made with h.
func Verify(pub *rsa.PublicKey, h Hash, data, sig []byte) error {
	if pub == nil {
		return errors.New("secure: nil public key for verify")
	}
	digest, err := h.Digest(data)
	if err != nil {
		return err
	}
	ch, err := h.cryptoHash()
	if err != nil {
		return err
	}
	if err := rsa.VerifyPKCS1v15(pub, ch, digest, sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	return nil
}
