package secure

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"time"

	"entitytrace/internal/obs"
)

// Symmetric crypto latencies — the per-message cost of securing traces
// (§5.1) and of the §6.3 signing-cost optimization.
var (
	mEncryptLatency = obs.Default.Histogram("secure_encrypt_ms", nil)
	mDecryptLatency = obs.Default.Histogram("secure_decrypt_ms", nil)
)

// Symmetric key sizes.
const (
	// PaperAESKeyBytes is the paper's 192-bit AES key size.
	PaperAESKeyBytes = 24
	// AES128KeyBytes and AES256KeyBytes are also supported.
	AES128KeyBytes = 16
	AES256KeyBytes = 32
)

// ErrBadCiphertext reports undecryptable or tampered ciphertext.
var ErrBadCiphertext = errors.New("secure: bad ciphertext")

// SymmetricKey is an AES key used for trace encryption (§5.1) and for the
// signing-cost optimization (§6.3).
type SymmetricKey struct {
	key []byte
}

// NewSymmetricKey generates a fresh random AES key of size bytes (16, 24
// or 32).
func NewSymmetricKey(size int) (*SymmetricKey, error) {
	switch size {
	case AES128KeyBytes, PaperAESKeyBytes, AES256KeyBytes:
	default:
		return nil, fmt.Errorf("secure: invalid AES key size %d", size)
	}
	k, err := RandomBytes(size)
	if err != nil {
		return nil, err
	}
	return &SymmetricKey{key: k}, nil
}

// SymmetricKeyFromBytes wraps existing key material (e.g. received during
// key distribution).
func SymmetricKeyFromBytes(k []byte) (*SymmetricKey, error) {
	switch len(k) {
	case AES128KeyBytes, PaperAESKeyBytes, AES256KeyBytes:
	default:
		return nil, fmt.Errorf("secure: invalid AES key size %d", len(k))
	}
	cp := make([]byte, len(k))
	copy(cp, k)
	return &SymmetricKey{key: cp}, nil
}

// Bytes returns a copy of the raw key material.
func (k *SymmetricKey) Bytes() []byte {
	cp := make([]byte, len(k.key))
	copy(cp, k.key)
	return cp
}

// Size returns the key size in bytes.
func (k *SymmetricKey) Size() int { return len(k.key) }

// pkcs7Pad appends PKCS#7 padding to reach a multiple of blockSize.
func pkcs7Pad(data []byte, blockSize int) []byte {
	pad := blockSize - len(data)%blockSize
	out := make([]byte, len(data)+pad)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = byte(pad)
	}
	return out
}

// pkcs7Unpad validates and strips PKCS#7 padding.
func pkcs7Unpad(data []byte, blockSize int) ([]byte, error) {
	if len(data) == 0 || len(data)%blockSize != 0 {
		return nil, ErrBadCiphertext
	}
	pad := int(data[len(data)-1])
	if pad == 0 || pad > blockSize || pad > len(data) {
		return nil, ErrBadCiphertext
	}
	for _, b := range data[len(data)-pad:] {
		if int(b) != pad {
			return nil, ErrBadCiphertext
		}
	}
	return data[:len(data)-pad], nil
}

// Encrypt encrypts plaintext with AES-CBC and PKCS#7 padding (the paper's
// "encryption algorithm and padding scheme"), prepending a random IV.
// The output layout is IV || ciphertext.
func (k *SymmetricKey) Encrypt(plaintext []byte) ([]byte, error) {
	start := time.Now()
	block, err := aes.NewCipher(k.key)
	if err != nil {
		return nil, fmt.Errorf("secure: creating AES cipher: %w", err)
	}
	padded := pkcs7Pad(plaintext, block.BlockSize())
	out := make([]byte, block.BlockSize()+len(padded))
	iv := out[:block.BlockSize()]
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("secure: generating IV: %w", err)
	}
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(out[block.BlockSize():], padded)
	mEncryptLatency.ObserveDuration(time.Since(start))
	return out, nil
}

// Decrypt reverses Encrypt.
func (k *SymmetricKey) Decrypt(ciphertext []byte) ([]byte, error) {
	start := time.Now()
	block, err := aes.NewCipher(k.key)
	if err != nil {
		return nil, fmt.Errorf("secure: creating AES cipher: %w", err)
	}
	bs := block.BlockSize()
	if len(ciphertext) < 2*bs || (len(ciphertext)-bs)%bs != 0 {
		return nil, ErrBadCiphertext
	}
	iv := ciphertext[:bs]
	body := make([]byte, len(ciphertext)-bs)
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(body, ciphertext[bs:])
	out, err := pkcs7Unpad(body, bs)
	if err == nil {
		mDecryptLatency.ObserveDuration(time.Since(start))
	}
	return out, err
}

// EncryptAuthenticated encrypts plaintext and appends an HMAC-SHA256 tag
// (encrypt-then-MAC). This is what the §6.3 optimization relies on: the
// broker accepts messages decryptable (and authentic) under the shared
// secret key as originating from the traced entity, so integrity matters.
func (k *SymmetricKey) EncryptAuthenticated(plaintext []byte) ([]byte, error) {
	ct, err := k.Encrypt(plaintext)
	if err != nil {
		return nil, err
	}
	mac := hmac.New(sha256.New, k.key)
	mac.Write(ct)
	return mac.Sum(ct), nil
}

// DecryptAuthenticated verifies the HMAC tag and decrypts.
func (k *SymmetricKey) DecryptAuthenticated(ciphertext []byte) ([]byte, error) {
	tagLen := sha256.Size
	if len(ciphertext) < tagLen {
		return nil, ErrBadCiphertext
	}
	body, tag := ciphertext[:len(ciphertext)-tagLen], ciphertext[len(ciphertext)-tagLen:]
	mac := hmac.New(sha256.New, k.key)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, fmt.Errorf("%w: MAC mismatch", ErrBadCiphertext)
	}
	return k.Decrypt(body)
}

// Equal reports whether two keys hold identical material, in constant
// time.
func (k *SymmetricKey) Equal(other *SymmetricKey) bool {
	if other == nil || len(k.key) != len(other.key) {
		return false
	}
	return bytes.Equal(k.key, other.key) // lengths equal; not secret-dependent branching on content needed here
}
