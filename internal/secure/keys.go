// Package secure implements the cryptographic operations the tracking
// framework relies on: RSA signing and verification (the paper uses
// 1024-bit RSA with 160-bit SHA-1 and PKCS#1 padding), AES-CBC symmetric
// encryption (the paper uses 192-bit AES keys), and hybrid public-key
// envelopes used for registration responses (§3.2) and trace-key
// distribution (§5.1).
//
// Everything is built on the Go standard library. SHA-1 and 1024-bit RSA
// are kept available because they are the paper's parameters and the
// benchmarks reproduce the paper's cost structure; SHA-256 and 2048-bit
// RSA are the defaults for non-benchmark use.
package secure

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"hash"
	"io"
)

// Hash selects the message digest used for signing.
type Hash int

const (
	// SHA1 is the paper's digest (160-bit SHA-1).
	SHA1 Hash = iota
	// SHA256 is the modern default.
	SHA256
)

// String returns the conventional name of the hash.
func (h Hash) String() string {
	switch h {
	case SHA1:
		return "SHA-1"
	case SHA256:
		return "SHA-256"
	default:
		return fmt.Sprintf("Hash(%d)", int(h))
	}
}

func (h Hash) cryptoHash() (crypto.Hash, error) {
	switch h {
	case SHA1:
		return crypto.SHA1, nil
	case SHA256:
		return crypto.SHA256, nil
	default:
		return 0, fmt.Errorf("secure: unknown hash %d", int(h))
	}
}

func (h Hash) new() (hash.Hash, error) {
	switch h {
	case SHA1:
		return sha1.New(), nil
	case SHA256:
		return sha256.New(), nil
	default:
		return nil, fmt.Errorf("secure: unknown hash %d", int(h))
	}
}

// Digest computes the digest of data under h.
func (h Hash) Digest(data []byte) ([]byte, error) {
	hh, err := h.new()
	if err != nil {
		return nil, err
	}
	hh.Write(data)
	return hh.Sum(nil), nil
}

// Key sizes for RSA key pairs.
const (
	// PaperRSABits is the modulus size the paper benchmarks with.
	PaperRSABits = 1024
	// DefaultRSABits is the modern default modulus size.
	DefaultRSABits = 2048
)

// KeyPair is an RSA key pair used for signing and for hybrid encryption.
type KeyPair struct {
	Private *rsa.PrivateKey
	Public  *rsa.PublicKey
}

// GenerateKeyPair creates an RSA key pair with the given modulus size.
func GenerateKeyPair(bits int) (*KeyPair, error) {
	if bits < 1024 {
		return nil, fmt.Errorf("secure: refusing RSA modulus below 1024 bits (got %d)", bits)
	}
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("secure: generating RSA key: %w", err)
	}
	return &KeyPair{Private: priv, Public: &priv.PublicKey}, nil
}

// MarshalPublicKey encodes an RSA public key in PKIX/DER form, the wire
// representation used inside authorization tokens and advertisements.
func MarshalPublicKey(pub *rsa.PublicKey) ([]byte, error) {
	if pub == nil {
		return nil, errors.New("secure: nil public key")
	}
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("secure: marshaling public key: %w", err)
	}
	return der, nil
}

// ParsePublicKey decodes a PKIX/DER-encoded RSA public key.
func ParsePublicKey(der []byte) (*rsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("secure: parsing public key: %w", err)
	}
	pub, ok := k.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("secure: public key is %T, want *rsa.PublicKey", k)
	}
	return pub, nil
}

// MarshalPrivateKey encodes an RSA private key in PKCS#8/DER form.
func MarshalPrivateKey(priv *rsa.PrivateKey) ([]byte, error) {
	if priv == nil {
		return nil, errors.New("secure: nil private key")
	}
	der, err := x509.MarshalPKCS8PrivateKey(priv)
	if err != nil {
		return nil, fmt.Errorf("secure: marshaling private key: %w", err)
	}
	return der, nil
}

// ParsePrivateKey decodes a PKCS#8/DER-encoded RSA private key.
func ParsePrivateKey(der []byte) (*rsa.PrivateKey, error) {
	k, err := x509.ParsePKCS8PrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("secure: parsing private key: %w", err)
	}
	priv, ok := k.(*rsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("secure: private key is %T, want *rsa.PrivateKey", k)
	}
	return priv, nil
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("secure: reading random bytes: %w", err)
	}
	return b, nil
}
