package secure

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
	"time"
)

// mustHex decodes a hex string or fails the test.
func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TestHKDFRFC5869Vectors pins the hand-rolled HKDF-SHA256 to the RFC
// 5869 Appendix A test vectors (cases 1-3), so the derivation is the
// standard construction, not a lookalike.
func TestHKDFRFC5869Vectors(t *testing.T) {
	cases := []struct {
		name                   string
		ikm, salt, info, okm   string
		length                 int
	}{
		{
			name:   "A.1 basic",
			ikm:    "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
			salt:   "000102030405060708090a0b0c",
			info:   "f0f1f2f3f4f5f6f7f8f9",
			length: 42,
			okm: "3cb25f25faacd57a90434f64d0362f2a" +
				"2d2d0a90cf1a5a4c5db02d56ecc4c5bf" +
				"34007208d5b887185865",
		},
		{
			name: "A.2 longer inputs",
			ikm: "000102030405060708090a0b0c0d0e0f" +
				"101112131415161718191a1b1c1d1e1f" +
				"202122232425262728292a2b2c2d2e2f" +
				"303132333435363738393a3b3c3d3e3f" +
				"404142434445464748494a4b4c4d4e4f",
			salt: "606162636465666768696a6b6c6d6e6f" +
				"707172737475767778797a7b7c7d7e7f" +
				"808182838485868788898a8b8c8d8e8f" +
				"909192939495969798999a9b9c9d9e9f" +
				"a0a1a2a3a4a5a6a7a8a9aaabacadaeaf",
			info: "b0b1b2b3b4b5b6b7b8b9babbbcbdbebf" +
				"c0c1c2c3c4c5c6c7c8c9cacbcccdcecf" +
				"d0d1d2d3d4d5d6d7d8d9dadbdcdddedf" +
				"e0e1e2e3e4e5e6e7e8e9eaebecedeeef" +
				"f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff",
			length: 82,
			okm: "b11e398dc80327a1c8e7f78c596a4934" +
				"4f012eda2d4efad8a050cc4c19afa97c" +
				"59045a99cac7827271cb41c65e590e09" +
				"da3275600c2f09b8367793a9aca3db71" +
				"cc30c58179ec3e87c14c01d5c1f3434f" +
				"1d87",
		},
		{
			name:   "A.3 zero-length salt and info",
			ikm:    "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
			salt:   "",
			info:   "",
			length: 42,
			okm: "8da4e775a563c18f715f802a063c5a31" +
				"b8a11f5c5ee1879ec3454e5f3c738d2d" +
				"9d201395faa4b61a96c8",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			okm, err := HKDF(mustHex(t, tc.ikm), mustHex(t, tc.salt), mustHex(t, tc.info), tc.length)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(okm, mustHex(t, tc.okm)) {
				t.Fatalf("okm = %x, want %s", okm, tc.okm)
			}
		})
	}
}

func TestHKDFBadLength(t *testing.T) {
	if _, err := HKDF([]byte("secret"), nil, nil, 0); err == nil {
		t.Fatal("accepted zero length")
	}
	if _, err := HKDF([]byte("secret"), nil, nil, 255*32+1); err == nil {
		t.Fatal("accepted over-long output")
	}
}

func newTestParams(t *testing.T) *SessionParams {
	t.Helper()
	var digest [32]byte
	copy(digest[:], bytes.Repeat([]byte{7}, 32))
	p, err := NewSessionParams(digest, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewSessionParamsWindow(t *testing.T) {
	if _, err := NewSessionParams([32]byte{}, 5, 5); err == nil {
		t.Fatal("accepted empty window")
	}
	if _, err := NewSessionParams([32]byte{}, 10, 5); err == nil {
		t.Fatal("accepted inverted window")
	}
}

func TestSessionParamsRoundTrip(t *testing.T) {
	p := newTestParams(t)
	q, err := UnmarshalSessionParams(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != p.ID || !bytes.Equal(q.Secret, p.Secret) || !bytes.Equal(q.Nonce, p.Nonce) ||
		q.TokenDigest != p.TokenDigest || q.NotBefore != p.NotBefore || q.NotAfter != p.NotAfter {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
}

func TestUnmarshalSessionParamsMalformed(t *testing.T) {
	wire := newTestParams(t).Marshal()
	for cut := 0; cut < len(wire); cut++ {
		if _, err := UnmarshalSessionParams(wire[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	if _, err := UnmarshalSessionParams(append(wire, 0)); err == nil {
		t.Fatal("accepted trailing byte")
	}
	// Wrong secret length round-trips structurally but is rejected.
	p := newTestParams(t)
	p.Secret = p.Secret[:16]
	if _, err := UnmarshalSessionParams(p.Marshal()); err == nil {
		t.Fatal("accepted short secret")
	}
	// Inverted window.
	p = newTestParams(t)
	p.NotBefore, p.NotAfter = p.NotAfter, p.NotBefore
	if _, err := UnmarshalSessionParams(p.Marshal()); err == nil {
		t.Fatal("accepted inverted window")
	}
}

func TestSessionDeriveDeterministic(t *testing.T) {
	p := newTestParams(t)
	k1, err := p.Derive("topic-A", "entity-1")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := p.Derive("topic-A", "entity-1")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the same bytes")
	if !bytes.Equal(k1.Tag(data), k2.Tag(data)) {
		t.Fatal("same params + context derived different keys")
	}
	if k1.ID() != p.ID {
		t.Fatal("derived key lost the session ID")
	}
	if k1.TokenDigest() != p.TokenDigest {
		t.Fatal("derived key lost the token binding")
	}
	if nb, na := k1.Window(); nb != p.NotBefore || na != p.NotAfter {
		t.Fatal("derived key lost the window")
	}
}

// TestSessionDeriveContextSeparation proves the info-string binding: the
// same secret derives unrelated keys for different topics or principals,
// so a key negotiated for one context authenticates nothing in another.
func TestSessionDeriveContextSeparation(t *testing.T) {
	p := newTestParams(t)
	base, err := p.Derive("topic-A", "entity-1")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("payload")
	tag := base.Tag(data)
	for _, other := range [][2]string{
		{"topic-B", "entity-1"},
		{"topic-A", "entity-2"},
		{"topic-Aentity-1", ""},
		{"", "topic-Aentity-1"},
	} {
		k, err := p.Derive(other[0], other[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := k.VerifyTag(data, tag); err == nil {
			t.Fatalf("key for %q/%q verified a tag from topic-A/entity-1", other[0], other[1])
		}
	}
}

func TestSessionDeriveBadSecret(t *testing.T) {
	p := newTestParams(t)
	p.Secret = []byte("short")
	if _, err := p.Derive("t", "p"); err == nil {
		t.Fatal("derived from malformed secret")
	}
}

func TestSessionSealOpenRoundTrip(t *testing.T) {
	p := newTestParams(t)
	blob, err := p.SealTo(testPair.Public)
	if err != nil {
		t.Fatal(err)
	}
	q, err := OpenSessionParams(testPair.Private, blob)
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != p.ID || !bytes.Equal(q.Secret, p.Secret) {
		t.Fatal("sealed round trip mismatch")
	}
	// The wrong recipient cannot open the blob.
	if _, err := OpenSessionParams(otherPair.Private, blob); err == nil {
		t.Fatal("wrong recipient opened the sealed params")
	}
	// Garbage is rejected before RSA is attempted.
	if _, err := OpenSessionParams(testPair.Private, []byte("junk")); err == nil {
		t.Fatal("opened garbage blob")
	}
}

func TestSessionTagVerify(t *testing.T) {
	k, err := newTestParams(t).Derive("t", "p")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("canonical signing bytes")
	tag := k.Tag(data)
	if len(tag) != SessionTagLen {
		t.Fatalf("tag length %d, want %d", len(tag), SessionTagLen)
	}
	if err := k.VerifyTag(data, tag); err != nil {
		t.Fatal(err)
	}
	// AppendTag agrees with Tag.
	appended := k.AppendTag([]byte("prefix"), data)
	if !bytes.Equal(appended[len("prefix"):], tag) {
		t.Fatal("AppendTag disagrees with Tag")
	}
	// Tampered data.
	bad := append([]byte(nil), data...)
	bad[0] ^= 1
	if err := k.VerifyTag(bad, tag); err == nil {
		t.Fatal("verified tag over tampered data")
	}
	// Tampered tag.
	badTag := append([]byte(nil), tag...)
	badTag[SessionTagLen-1] ^= 1
	if err := k.VerifyTag(data, badTag); err == nil {
		t.Fatal("verified tampered tag")
	}
	// Truncated tag must be rejected (no prefix matching).
	if err := k.VerifyTag(data, tag[:SessionTagLen-1]); err == nil {
		t.Fatal("verified truncated tag")
	}
	if !strings.Contains(k.VerifyTag(data, tag[:4]).Error(), "tag length") {
		t.Fatal("short tag error should name the length")
	}
}

// TestSessionTagMatchesHMAC pins the precomputed-key-schedule fast path
// to the reference construction: every tag must be exactly
// HMAC-SHA256(key, data), whichever code path produced it, across data
// sizes spanning block boundaries.
func TestSessionTagMatchesHMAC(t *testing.T) {
	k, err := newTestParams(t).Derive("t", "p")
	if err != nil {
		t.Fatal(err)
	}
	if k.istate == nil || k.ostate == nil {
		t.Fatal("precomputed HMAC states missing after Derive")
	}
	slow := &SessionKey{key: k.key} // istate nil: hmac.New fallback path
	for _, n := range []int{0, 1, 55, 56, 64, 350, 4096} {
		data := bytes.Repeat([]byte{0x5a}, n)
		ref := hmac.New(sha256.New, k.key)
		ref.Write(data)
		want := ref.Sum(nil)
		if got := k.Tag(data); !bytes.Equal(got, want) {
			t.Fatalf("fast-path tag over %d bytes diverges from HMAC-SHA256", n)
		}
		if got := slow.Tag(data); !bytes.Equal(got, want) {
			t.Fatalf("fallback tag over %d bytes diverges from HMAC-SHA256", n)
		}
		if err := k.VerifyTag(data, want); err != nil {
			t.Fatalf("fast-path verify of reference tag over %d bytes: %v", n, err)
		}
	}
}

func TestSessionKeyValidAt(t *testing.T) {
	p := newTestParams(t) // window [1000, 2000] ns
	k, err := p.Derive("t", "p")
	if err != nil {
		t.Fatal(err)
	}
	at := func(ns int64) time.Time { return time.Unix(0, ns) }
	if k.ValidAt(at(999), 0) {
		t.Fatal("valid before NotBefore without skew")
	}
	if !k.ValidAt(at(1000), 0) || !k.ValidAt(at(2000), 0) {
		t.Fatal("window bounds should be inclusive")
	}
	if k.ValidAt(at(2001), 0) {
		t.Fatal("valid after NotAfter without skew")
	}
	// Skew widens both edges, mirroring token validation.
	if !k.ValidAt(at(999), time.Nanosecond) || !k.ValidAt(at(2001), time.Nanosecond) {
		t.Fatal("skew tolerance not applied")
	}
	// Negative skew is treated as zero, not as a narrower window.
	if !k.ValidAt(at(1500), -time.Hour) {
		t.Fatal("negative skew rejected an in-window time")
	}
}
