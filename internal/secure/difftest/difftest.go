// Package difftest is a differential crypto harness for the §6.3
// signing-cost optimization: it replays identical logical envelope
// streams through the full RSA verification pipeline (core.VerifyTrace,
// §4.3) and the amortized session-tag pipeline (core.VerifyTraceSession)
// and asserts the two produce byte-identical accept/reject verdict
// strings. The session path is an optimization, never a relaxation — any
// stream an adversary can craft (expired windows, rotated tokens,
// revoked topics, tampered payloads, replays, downgrade re-framing) must
// settle to the same verdict on both paths.
//
// All time flows through an internal/clock fake, so every validity
// window — token and session alike — is evaluated at deterministic
// instants and the verdict strings are reproducible bit for bit.
package difftest

import (
	"bytes"
	"crypto/sha256"
	"sync"
	"testing"
	"time"

	"entitytrace/internal/clock"
	"entitytrace/internal/core"
	"entitytrace/internal/credential"
	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/secure"
	"entitytrace/internal/tdn"
	"entitytrace/internal/token"
	"entitytrace/internal/topic"
)

// Shared CA fixture: RSA keygen dominates setup cost, so the authority,
// verifier, and TDN identity are built once per test binary.
var (
	fxOnce     sync.Once
	fxCA       *credential.Authority
	fxVerifier *credential.Verifier
	fxTDNIdent *credential.Identity
	fxErr      error
)

func fixture(t *testing.T) {
	t.Helper()
	fxOnce.Do(func() {
		fxCA, fxErr = credential.NewAuthority("difftest-ca", credential.WithKeyBits(secure.PaperRSABits))
		if fxErr != nil {
			return
		}
		if fxVerifier, fxErr = credential.NewVerifier(fxCA.CACertificate()); fxErr != nil {
			return
		}
		fxTDNIdent, fxErr = fxCA.Issue("difftest-tdn")
	})
	if fxErr != nil {
		t.Fatal(fxErr)
	}
}

// revocableResolver wraps the TDN resolver so scenarios can model §5.2
// topic abandonment: a revoked topic stops resolving, which is how the
// RSA path learns a publisher's authority has been withdrawn.
type revocableResolver struct {
	inner   core.AdResolver
	mu      sync.Mutex
	revoked map[ident.UUID]bool
}

func (r *revocableResolver) ResolveAd(id ident.UUID) (*tdn.Advertisement, error) {
	r.mu.Lock()
	dead := r.revoked[id]
	r.mu.Unlock()
	if dead {
		return nil, core.ErrUnknownTopic
	}
	return r.inner.ResolveAd(id)
}

func (r *revocableResolver) revoke(id ident.UUID) {
	r.mu.Lock()
	r.revoked[id] = true
	r.mu.Unlock()
}

// World is one differential universe: a fake clock, a CA-backed
// verifier, a TDN node for advertisements, and a session store standing
// in for a verifying broker's installed keys.
type World struct {
	T        *testing.T
	Clock    *clock.Fake
	Node     *tdn.Node
	Resolver *revocableResolver
	Store    *core.SessionStore
	Skew     time.Duration
}

// NewWorld builds a universe. The fake clock starts at wall time (the
// CA's X.509 validity is anchored there) but every subsequent instant is
// driven explicitly by the scenario.
func NewWorld(t *testing.T) *World {
	t.Helper()
	fixture(t)
	node, err := tdn.NewNode(fxTDNIdent, fxVerifier)
	if err != nil {
		t.Fatal(err)
	}
	return &World{
		T:        t,
		Clock:    clock.NewFake(time.Now()),
		Node:     node,
		Resolver: &revocableResolver{inner: core.NodeResolver(node), revoked: make(map[ident.UUID]bool)},
		Store:    core.NewSessionStore(0),
		Skew:     token.DefaultClockSkew,
	}
}

// Publisher owns one trace topic and holds the live signing materials
// for both paths: the delegate RSA key (token path) and the derived
// session key (tag path), with windows mirroring each other as the
// SessionPublisher keeps them in production.
type Publisher struct {
	w        *World
	Name     ident.EntityID
	Topic    ident.UUID
	identity *credential.Identity

	TokenBytes []byte
	Delegate   *secure.Signer
	Params     *secure.SessionParams
	Key        *secure.SessionKey
}

// NewPublisher issues an identity, advertises a trace topic, and
// delegates publish rights for validFor starting at the fake clock's
// now. The matching session key is derived and installed in the world's
// store, as if negotiation had completed.
func (w *World) NewPublisher(name ident.EntityID, validFor time.Duration) *Publisher {
	w.T.Helper()
	id, err := fxCA.Issue(name)
	if err != nil {
		w.T.Fatal(err)
	}
	signer, err := id.Signer(secure.SHA1)
	if err != nil {
		w.T.Fatal(err)
	}
	req := &tdn.CreateRequest{
		Owner:      name,
		OwnerCert:  id.Credential.Cert,
		Descriptor: "Availability/Traces/" + string(name),
		AllowAny:   true,
		RequestID:  ident.NewRequestID(),
	}
	if err := req.Sign(signer); err != nil {
		w.T.Fatal(err)
	}
	ad, err := w.Node.CreateTopic(req)
	if err != nil {
		w.T.Fatal(err)
	}
	p := &Publisher{w: w, Name: name, Topic: ad.TopicID, identity: id}
	p.Rotate(validFor)
	return p
}

// Rotate re-delegates: a fresh token (and delegate key) is granted from
// the fake clock's now, and a fresh session key with the token's exact
// validity window is derived and installed. This is what the
// SessionPublisher does on every token renewal.
func (p *Publisher) Rotate(validFor time.Duration) {
	p.w.T.Helper()
	signer, err := p.identity.Signer(secure.SHA1)
	if err != nil {
		p.w.T.Fatal(err)
	}
	now := p.w.Clock.Now()
	del, err := token.Grant(p.Name, p.Topic, token.RightPublish, validFor, now, signer, secure.PaperRSABits)
	if err != nil {
		p.w.T.Fatal(err)
	}
	delegate, err := secure.NewSigner(del.PrivateKey, core.TraceSigHash)
	if err != nil {
		p.w.T.Fatal(err)
	}
	p.TokenBytes = del.Token.Marshal()
	p.Delegate = delegate
	params, err := secure.NewSessionParams(sha256.Sum256(p.TokenBytes), del.Token.NotBefore, del.Token.NotAfter)
	if err != nil {
		p.w.T.Fatal(err)
	}
	key, err := params.Derive(p.Topic.String(), string(p.Name))
	if err != nil {
		p.w.T.Fatal(err)
	}
	p.Params = params
	p.Key = key
	p.w.Store.Install(p.Topic, key)
}

// Renegotiate reinstalls the current session key. In production this is
// the SESSION_KEY_REQUEST/RESPONSE exchange a verifier falls back to
// after a hard invalidation; here it is the one harness step that models
// that full-RSA-verified recovery.
func (p *Publisher) Renegotiate() { p.w.Store.Install(p.Topic, p.Key) }

// Revoke withdraws the publisher's authority on both paths at once:
// the topic stops resolving (§5.2 abandonment, killing the RSA chain)
// and every session derived from the current token is invalidated.
func (p *Publisher) Revoke() {
	p.w.Resolver.revoke(p.Topic)
	p.w.Store.InvalidateToken(sha256.Sum256(p.TokenBytes))
}

// Pair is one logical publish rendered for both pipelines: identical
// type, topic, timestamp, and payload; only the authentication trailer
// differs (token + RSA delegate signature vs session ID + HMAC tag).
type Pair struct {
	RSA     *message.Envelope
	Session *message.Envelope
}

// Emit renders one logical trace event as a Pair, stamped with the fake
// clock's now.
func (p *Publisher) Emit(detail string) *Pair {
	p.w.T.Helper()
	te := &message.TraceEvent{Entity: p.Name, TraceTopic: p.Topic, Detail: detail}
	mk := func() *message.Envelope {
		env := message.New(message.TraceAllsWell, topic.AllUpdates(p.Topic), "", te.Marshal())
		env.Timestamp = p.w.Clock.Now().UnixNano()
		return env
	}
	rsaEnv := mk()
	rsaEnv.Token = p.TokenBytes
	if err := rsaEnv.Sign(p.Delegate); err != nil {
		p.w.T.Fatal(err)
	}
	sessEnv := mk()
	if err := sessEnv.SignSession(p.Key); err != nil {
		p.w.T.Fatal(err)
	}
	return &Pair{RSA: rsaEnv, Session: sessEnv}
}

// Mutate applies the same adversarial edit to both renderings.
func (pr *Pair) Mutate(f func(*message.Envelope)) *Pair {
	f(pr.RSA)
	f(pr.Session)
	return pr
}

// VerifyRSA runs the full §4.3 pipeline at the fake clock's now.
func (w *World) VerifyRSA(tt ident.UUID, env *message.Envelope) error {
	return core.VerifyTrace(env, tt, w.Resolver, fxVerifier, w.Clock.Now(), w.Skew)
}

// VerifySession runs the amortized §6.3 pipeline at the fake clock's now.
func (w *World) VerifySession(tt ident.UUID, env *message.Envelope) error {
	return core.VerifyTraceSession(env, tt, w.Store, w.Clock.Now(), w.Skew)
}

// Route dispatches exactly as the broker guard does: FlagSessionTag
// selects the session pipeline, everything else takes the RSA pipeline.
// Downgrade scenarios depend on this — re-framing an envelope moves it
// between pipelines, and both must still reject it.
func (w *World) Route(tt ident.UUID, env *message.Envelope) error {
	if env.Flags&message.FlagSessionTag != 0 {
		return w.VerifySession(tt, env)
	}
	return w.VerifyRSA(tt, env)
}

// Verdicts accumulates one byte per step per pipeline: 'A' for accept,
// 'R' for reject. The differential contract is that the two strings are
// byte-identical at the end of every scenario.
type Verdicts struct {
	RSA     []byte
	Session []byte
}

func mark(err error) byte {
	if err == nil {
		return 'A'
	}
	return 'R'
}

// Step verifies both renderings of a pair through their own pipelines
// and records the verdict pair.
func (v *Verdicts) Step(w *World, tt ident.UUID, pr *Pair) (rsaErr, sessErr error) {
	rsaErr = w.VerifyRSA(tt, pr.RSA)
	sessErr = w.VerifySession(tt, pr.Session)
	v.RSA = append(v.RSA, mark(rsaErr))
	v.Session = append(v.Session, mark(sessErr))
	return rsaErr, sessErr
}

// StepRouted verifies both renderings through flag-based routing (the
// guard's dispatch), for scenarios where the mutation changes which
// pipeline an envelope lands on.
func (v *Verdicts) StepRouted(w *World, tt ident.UUID, pr *Pair) (rsaErr, sessErr error) {
	rsaErr = w.Route(tt, pr.RSA)
	sessErr = w.Route(tt, pr.Session)
	v.RSA = append(v.RSA, mark(rsaErr))
	v.Session = append(v.Session, mark(sessErr))
	return rsaErr, sessErr
}

// AssertIdentical fails the test unless the two verdict strings are
// byte-identical and match want (a string of 'A'/'R').
func (v *Verdicts) AssertIdentical(t *testing.T, want string) {
	t.Helper()
	if !bytes.Equal(v.RSA, v.Session) {
		t.Fatalf("verdict divergence:\n  rsa     %s\n  session %s", v.RSA, v.Session)
	}
	if want != "" && string(v.RSA) != want {
		t.Fatalf("verdicts = %s, want %s", v.RSA, want)
	}
}
