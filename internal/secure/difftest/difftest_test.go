package difftest

import (
	"errors"
	"testing"
	"time"

	"entitytrace/internal/core"
	"entitytrace/internal/message"
)

// TestDiffHappyPath replays a clean stream: every logical publish must
// accept on both pipelines.
func TestDiffHappyPath(t *testing.T) {
	w := NewWorld(t)
	p := w.NewPublisher("diff-happy", time.Hour)
	var v Verdicts
	for i := 0; i < 8; i++ {
		w.Clock.Advance(time.Second)
		if rsaErr, sessErr := v.Step(w, p.Topic, p.Emit("tick")); rsaErr != nil || sessErr != nil {
			t.Fatalf("step %d: rsa=%v session=%v", i, rsaErr, sessErr)
		}
	}
	v.AssertIdentical(t, "AAAAAAAA")
}

// TestDiffExpiry walks the validity window edge by edge: both pipelines
// apply the same skew tolerance, so the accept/reject flip happens at
// the same deterministic instant on both.
func TestDiffExpiry(t *testing.T) {
	w := NewWorld(t)
	p := w.NewPublisher("diff-expiry", time.Hour)
	pr := p.Emit("probe")
	notAfter := time.Unix(0, p.Params.NotAfter)

	var v Verdicts
	for _, at := range []time.Time{
		time.Unix(0, p.Params.NotBefore),  // issue instant
		notAfter.Add(-30 * time.Minute),   // mid-window
		notAfter,                          // exact expiry (inclusive)
		notAfter.Add(w.Skew),              // inside skew tolerance (inclusive)
		notAfter.Add(w.Skew + time.Nanosecond), // first rejected instant
		notAfter.Add(time.Hour),           // long expired; session now invalidated
	} {
		w.Clock.Set(at)
		v.Step(w, p.Topic, pr)
	}
	v.AssertIdentical(t, "AAAARR")

	// The expired session was hard-invalidated, so the very same stream
	// element now fails as unknown — never as a stale acceptance.
	if err := w.VerifySession(p.Topic, pr.Session); !errors.Is(err, core.ErrUnknownSession) {
		t.Fatalf("expired session lookup = %v, want ErrUnknownSession", err)
	}
}

// TestDiffRotation re-delegates mid-stream. Materials from before the
// rotation stay valid until their own window closes (the paper's tokens
// are bearer grants, not serially numbered), and both pipelines must
// agree on that — then agree again once the old window lapses.
func TestDiffRotation(t *testing.T) {
	w := NewWorld(t)
	p := w.NewPublisher("diff-rotate", time.Hour)
	oldPair := p.Emit("pre-rotation")
	oldSession := p.Key.ID()

	w.Clock.Advance(time.Minute)
	p.Rotate(3 * time.Hour)
	if p.Key.ID() == oldSession {
		t.Fatal("rotation reused the session ID")
	}
	newPair := p.Emit("post-rotation")

	var v Verdicts
	v.Step(w, p.Topic, oldPair) // old token still in window
	v.Step(w, p.Topic, newPair)

	w.Clock.Advance(2 * time.Hour) // old window lapsed, new still open
	v.Step(w, p.Topic, oldPair)
	v.Step(w, p.Topic, newPair)
	v.AssertIdentical(t, "AARA")
}

// TestDiffRevocation withdraws the publisher's authority: the topic
// stops resolving (§5.2) and all sessions bound to the token die.
// Already-captured envelopes and fresh ones alike must reject on both
// pipelines.
func TestDiffRevocation(t *testing.T) {
	w := NewWorld(t)
	p := w.NewPublisher("diff-revoke", time.Hour)
	captured := p.Emit("before")

	var v Verdicts
	v.Step(w, p.Topic, captured)
	p.Revoke()
	v.Step(w, p.Topic, captured) // replayed capture
	v.Step(w, p.Topic, p.Emit("after"))
	v.AssertIdentical(t, "ARR")
}

// TestDiffTamper flips payload and signature bytes. Both pipelines
// reject; additionally the session pipeline hard-invalidates on a tag
// failure, so the previously good stream element is refused until the
// publisher re-passes full verification (renegotiation) — the fallback
// the issue calls for, asserted explicitly outside the parity string.
func TestDiffTamper(t *testing.T) {
	w := NewWorld(t)
	p := w.NewPublisher("diff-tamper", time.Hour)

	var v Verdicts
	good := p.Emit("good")
	v.Step(w, p.Topic, good)

	tampered := p.Emit("victim").Mutate(func(e *message.Envelope) {
		e.Payload[0] ^= 0x80
	})
	v.Step(w, p.Topic, tampered)

	// Hard fallback: the tag failure killed the session, so even the
	// pristine earlier envelope is now unknown on the session path.
	if err := w.VerifySession(p.Topic, good.Session); !errors.Is(err, core.ErrUnknownSession) {
		t.Fatalf("post-tamper session verdict = %v, want ErrUnknownSession", err)
	}
	p.Renegotiate()
	v.Step(w, p.Topic, good)

	// Trailer corruption: flip one authentication byte on each rendering.
	flipped := p.Emit("victim2").Mutate(func(e *message.Envelope) {
		e.Signature[len(e.Signature)-1] ^= 1
	})
	v.Step(w, p.Topic, flipped)
	p.Renegotiate()
	v.Step(w, p.Topic, p.Emit("recovered"))
	v.AssertIdentical(t, "ARARA")
}

// TestDiffReplay re-verifies captured envelopes. Inside the validity
// window a crypto-layer replay verifies on both paths (dedup lives at
// the routing layer); once the window closes, both reject the same
// capture.
func TestDiffReplay(t *testing.T) {
	w := NewWorld(t)
	p := w.NewPublisher("diff-replay", time.Hour)
	captured := p.Emit("capture-me")

	var v Verdicts
	v.Step(w, p.Topic, captured)
	v.Step(w, p.Topic, captured) // immediate replay
	w.Clock.Advance(30 * time.Minute)
	v.Step(w, p.Topic, captured) // late in-window replay
	w.Clock.Advance(time.Hour)   // past expiry + skew
	v.Step(w, p.Topic, captured)
	v.AssertIdentical(t, "AAAR")
}

// TestDiffDowngrade re-frames envelopes across pipelines. FlagSessionTag
// is covered by the canonical signing bytes, so moving an envelope to
// the other pipeline — with or without splicing captured credentials —
// must always reject.
func TestDiffDowngrade(t *testing.T) {
	w := NewWorld(t)
	p := w.NewPublisher("diff-downgrade", time.Hour)
	var v Verdicts

	// Sanity: an honest pair routes to its own pipeline and accepts.
	v.StepRouted(w, p.Topic, p.Emit("honest"))

	// Session envelope stripped of its flag lands on the RSA pipeline
	// with no token: rejected.
	bare := p.Emit("strip").Session.Clone()
	bare.Flags &^= message.FlagSessionTag
	if err := w.Route(p.Topic, bare); err == nil {
		t.Fatal("flag-stripped session envelope verified on the RSA path")
	}

	// Same attack with a captured token spliced on: the token chain
	// verifies, but a 48-byte session trailer is no RSA delegate
	// signature.
	spliced := p.Emit("strip+token").Session.Clone()
	spliced.Flags &^= message.FlagSessionTag
	spliced.Token = p.TokenBytes
	if err := w.Route(p.Topic, spliced); err == nil {
		t.Fatal("flag-stripped envelope with spliced token verified")
	}

	// RSA envelope force-flagged into the session pipeline: the RSA
	// signature cannot parse as sessionID||tag.
	forced := p.Emit("force").RSA.Clone()
	forced.Flags |= message.FlagSessionTag
	if err := w.Route(p.Topic, forced); err == nil {
		t.Fatal("force-flagged RSA envelope verified on the session path")
	}

	// Splice a live session ID onto a garbage tag: the known session
	// rejects AND hard-invalidates, and nothing stale authenticates
	// until renegotiation.
	victim := p.Emit("victim")
	sid := p.Key.ID()
	spoof := victim.RSA.Clone()
	spoof.Flags |= message.FlagSessionTag
	spoof.Signature = append(append([]byte(nil), sid[:]...), spoof.Signature[:32]...)
	if err := w.Route(p.Topic, spoof); err == nil {
		t.Fatal("spliced session ID with forged tag verified")
	}
	if err := w.VerifySession(p.Topic, victim.Session); !errors.Is(err, core.ErrUnknownSession) {
		t.Fatalf("post-spoof session verdict = %v, want ErrUnknownSession", err)
	}
	p.Renegotiate()
	v.StepRouted(w, p.Topic, p.Emit("recovered"))
	v.AssertIdentical(t, "AA")
}

// TestDiffDeterministicVerdicts runs the expiry walk in two independent
// worlds: session IDs, secrets, and delegate keys are freshly random,
// yet every validity decision flows through the fake clock, so the
// verdict strings must come out byte-identical run to run.
func TestDiffDeterministicVerdicts(t *testing.T) {
	run := func() string {
		w := NewWorld(t)
		p := w.NewPublisher("diff-determinism", time.Hour)
		pr := p.Emit("probe")
		notAfter := time.Unix(0, p.Params.NotAfter)
		var v Verdicts
		for _, at := range []time.Time{
			time.Unix(0, p.Params.NotBefore),
			notAfter.Add(-time.Minute),
			notAfter.Add(w.Skew),
			notAfter.Add(w.Skew + time.Nanosecond),
		} {
			w.Clock.Set(at)
			v.Step(w, p.Topic, pr)
		}
		v.AssertIdentical(t, "")
		return string(v.RSA)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("verdicts varied across runs: %s vs %s", first, second)
	}
	if first != "AAAR" {
		t.Fatalf("verdicts = %s, want AAAR", first)
	}
}
