package credential

import (
	"testing"

	"entitytrace/internal/secure"
)

func TestIdentityPEMRoundTrip(t *testing.T) {
	a := testAuthority(t)
	id, err := a.Issue("pem-entity")
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalIdentityPEM(id)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseIdentityPEM(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Credential.Entity != "pem-entity" {
		t.Fatalf("entity = %q", back.Credential.Entity)
	}
	if back.Private == nil || back.Private.D.Cmp(id.Private.D) != 0 {
		t.Fatal("private key lost in round trip")
	}
	v, _ := NewVerifier(a.CACertificate())
	if _, err := v.Verify(&back.Credential); err != nil {
		t.Fatalf("round-tripped credential failed verification: %v", err)
	}
}

func TestIdentityPEMWithoutKey(t *testing.T) {
	a := testAuthority(t)
	id, _ := a.Issue("certonly")
	id.Private = nil
	data, err := MarshalIdentityPEM(id)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseIdentityPEM(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Private != nil {
		t.Fatal("phantom private key appeared")
	}
}

func TestParseIdentityPEMGarbage(t *testing.T) {
	if _, err := ParseIdentityPEM([]byte("not pem at all")); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := MarshalIdentityPEM(nil); err == nil {
		t.Fatal("marshaled nil identity")
	}
}

func TestAuthorityPEMRoundTrip(t *testing.T) {
	a := testAuthority(t)
	data, err := a.MarshalAuthorityPEM()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseAuthorityPEM(data, WithKeyBits(secure.PaperRSABits))
	if err != nil {
		t.Fatal(err)
	}
	// The restored authority can issue credentials trusted under the
	// original anchor.
	id, err := back.Issue("issued-after-restore")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := NewVerifier(a.CACertificate())
	if _, err := v.Verify(&id.Credential); err != nil {
		t.Fatalf("restored CA's credential rejected: %v", err)
	}
}

func TestParseAuthorityPEMRequiresKey(t *testing.T) {
	a := testAuthority(t)
	id, _ := a.Issue("nokey-ca")
	id.Private = nil
	data, _ := MarshalIdentityPEM(id)
	if _, err := ParseAuthorityPEM(data); err == nil {
		t.Fatal("authority restored without private key")
	}
}

func TestSaveLoadCAAndIdentity(t *testing.T) {
	a := testAuthority(t)
	dir := t.TempDir()
	if err := SaveCA(dir, a); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadCA(dir, WithKeyBits(secure.PaperRSABits))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != a.Name() {
		t.Fatalf("restored CA name %q", restored.Name())
	}
	v, err := LoadVerifier(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := restored.Issue("disk-entity")
	if err != nil {
		t.Fatal(err)
	}
	path, err := SaveIdentity(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIdentity(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(&loaded.Credential); err != nil {
		t.Fatalf("loaded identity rejected: %v", err)
	}
}

func TestLoadVerifierMissing(t *testing.T) {
	if _, err := LoadVerifier(t.TempDir()); err == nil {
		t.Fatal("verifier loaded from empty dir")
	}
	if _, err := LoadCA(t.TempDir()); err == nil {
		t.Fatal("CA loaded from empty dir")
	}
}
