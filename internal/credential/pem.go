package credential

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"entitytrace/internal/ident"
	"entitytrace/internal/secure"
)

// PEM block types used by the on-disk PKI layout.
const (
	pemCertificate = "CERTIFICATE"
	pemPrivateKey  = "PRIVATE KEY"
)

// MarshalIdentityPEM encodes an identity as a certificate block followed
// by a PKCS#8 private-key block. Identities without private keys encode
// the certificate only.
func MarshalIdentityPEM(id *Identity) ([]byte, error) {
	if id == nil {
		return nil, errors.New("credential: nil identity")
	}
	out := pem.EncodeToMemory(&pem.Block{Type: pemCertificate, Bytes: id.Credential.Cert})
	if id.Private != nil {
		keyDER, err := secure.MarshalPrivateKey(id.Private)
		if err != nil {
			return nil, err
		}
		out = append(out, pem.EncodeToMemory(&pem.Block{Type: pemPrivateKey, Bytes: keyDER})...)
	}
	return out, nil
}

// ParseIdentityPEM decodes the output of MarshalIdentityPEM. The entity
// name is recovered from the certificate's common name.
func ParseIdentityPEM(data []byte) (*Identity, error) {
	var certDER []byte
	var key *rsa.PrivateKey
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		switch block.Type {
		case pemCertificate:
			certDER = block.Bytes
		case pemPrivateKey:
			k, err := secure.ParsePrivateKey(block.Bytes)
			if err != nil {
				return nil, err
			}
			key = k
		}
	}
	if certDER == nil {
		return nil, errors.New("credential: no certificate block found")
	}
	cert, err := x509.ParseCertificate(certDER)
	if err != nil {
		return nil, fmt.Errorf("credential: parsing certificate: %w", err)
	}
	return &Identity{
		Credential: Credential{
			Entity: ident.EntityID(cert.Subject.CommonName),
			Cert:   certDER,
		},
		Private: key,
	}, nil
}

// MarshalAuthorityPEM encodes the CA certificate and key for storage.
func (a *Authority) MarshalAuthorityPEM() ([]byte, error) {
	out := pem.EncodeToMemory(&pem.Block{Type: pemCertificate, Bytes: a.certDER})
	keyDER, err := secure.MarshalPrivateKey(a.key)
	if err != nil {
		return nil, err
	}
	return append(out, pem.EncodeToMemory(&pem.Block{Type: pemPrivateKey, Bytes: keyDER})...), nil
}

// ParseAuthorityPEM restores an Authority from MarshalAuthorityPEM
// output. The serial counter restarts; colliding serials across restarts
// are tolerable for this reproduction (revocation keys on serial+issuer).
func ParseAuthorityPEM(data []byte, opts ...AuthorityOption) (*Authority, error) {
	id, err := ParseIdentityPEM(data)
	if err != nil {
		return nil, err
	}
	if id.Private == nil {
		return nil, errors.New("credential: authority PEM lacks private key")
	}
	cert, err := x509.ParseCertificate(id.Credential.Cert)
	if err != nil {
		return nil, err
	}
	a := &Authority{
		name:    cert.Subject.CommonName,
		key:     id.Private,
		cert:    cert,
		certDER: id.Credential.Cert,
		serial:  time.Now().UnixNano(), // avoid serial collisions across restarts
		revoked: make(map[string]bool),
		keyBits: secure.DefaultRSABits,
		life:    24 * time.Hour,
	}
	for _, o := range opts {
		o(a)
	}
	a.pool = x509.NewCertPool()
	a.pool.AddCert(cert)
	return a, nil
}

// SaveIdentity writes an identity to dir/<name>.pem with 0600 perms.
func SaveIdentity(dir string, id *Identity) (string, error) {
	data, err := MarshalIdentityPEM(id)
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, string(id.Credential.Entity)+".pem")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return "", err
	}
	return path, nil
}

// LoadIdentity reads an identity PEM file.
func LoadIdentity(path string) (*Identity, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseIdentityPEM(data)
}

// SaveCA writes the CA material (ca.pem, private) and the public trust
// anchor (ca.cert.pem) into dir.
func SaveCA(dir string, a *Authority) error {
	full, err := a.MarshalAuthorityPEM()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "ca.pem"), full, 0o600); err != nil {
		return err
	}
	anchor := pem.EncodeToMemory(&pem.Block{Type: pemCertificate, Bytes: a.CACertificate()})
	return os.WriteFile(filepath.Join(dir, "ca.cert.pem"), anchor, 0o644)
}

// LoadCA restores an Authority from dir/ca.pem.
func LoadCA(dir string, opts ...AuthorityOption) (*Authority, error) {
	data, err := os.ReadFile(filepath.Join(dir, "ca.pem"))
	if err != nil {
		return nil, err
	}
	return ParseAuthorityPEM(data, opts...)
}

// LoadVerifier builds a Verifier from dir/ca.cert.pem.
func LoadVerifier(dir string) (*Verifier, error) {
	data, err := os.ReadFile(filepath.Join(dir, "ca.cert.pem"))
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(data)
	if block == nil || block.Type != pemCertificate {
		return nil, errors.New("credential: ca.cert.pem has no certificate block")
	}
	return NewVerifier(block.Bytes)
}
