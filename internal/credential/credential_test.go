package credential

import (
	"errors"
	"sync"
	"testing"
	"time"

	"entitytrace/internal/secure"
)

// One shared authority: RSA keygen is expensive.
var (
	authOnce sync.Once
	auth     *Authority
	authErr  error
)

func testAuthority(t *testing.T) *Authority {
	t.Helper()
	authOnce.Do(func() {
		auth, authErr = NewAuthority("test-ca", WithKeyBits(secure.PaperRSABits))
	})
	if authErr != nil {
		t.Fatal(authErr)
	}
	return auth
}

func TestIssueAndVerify(t *testing.T) {
	a := testAuthority(t)
	id, err := a.Issue("service-alpha")
	if err != nil {
		t.Fatal(err)
	}
	if id.Private == nil {
		t.Fatal("issued identity lacks private key")
	}
	v, err := NewVerifier(a.CACertificate())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := v.Verify(&id.Credential)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if pub.N.Cmp(id.Private.PublicKey.N) != 0 {
		t.Fatal("verified key does not match issued key")
	}
}

func TestVerifyRejectsForeignCA(t *testing.T) {
	a := testAuthority(t)
	foreign, err := NewAuthority("evil-ca", WithKeyBits(secure.PaperRSABits))
	if err != nil {
		t.Fatal(err)
	}
	id, err := foreign.Issue("intruder")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := NewVerifier(a.CACertificate())
	if _, err := v.Verify(&id.Credential); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("foreign credential accepted, err=%v", err)
	}
}

func TestVerifyRejectsEntityMismatch(t *testing.T) {
	a := testAuthority(t)
	id, _ := a.Issue("honest-entity")
	v, _ := NewVerifier(a.CACertificate())
	forged := id.Credential
	forged.Entity = "someone-else"
	if _, err := v.Verify(&forged); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("entity-mismatched credential accepted, err=%v", err)
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	a := testAuthority(t)
	id, _ := a.Issue("short-lived")
	v, _ := NewVerifier(a.CACertificate())
	v.SetTimeFunc(func() time.Time { return time.Now().Add(48 * time.Hour) })
	if _, err := v.Verify(&id.Credential); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired credential accepted, err=%v", err)
	}
}

func TestVerifyRejectsRevoked(t *testing.T) {
	a := testAuthority(t)
	id, _ := a.Issue("to-be-revoked")
	if err := a.Revoke(&id.Credential); err != nil {
		t.Fatal(err)
	}
	cert, _ := id.Credential.Certificate()
	v, _ := NewVerifier(a.CACertificate())
	v.MarkRevoked(cert.SerialNumber.String())
	if _, err := v.Verify(&id.Credential); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked credential accepted, err=%v", err)
	}
}

func TestIssueRejectsBadEntityID(t *testing.T) {
	a := testAuthority(t)
	if _, err := a.Issue(""); err == nil {
		t.Fatal("issued credential for empty entity ID")
	}
	if _, err := a.Issue("has/slash"); err == nil {
		t.Fatal("issued credential for slashed entity ID")
	}
}

func TestIssueForKeyNilPublic(t *testing.T) {
	a := testAuthority(t)
	if _, err := a.IssueForKey("e", nil, nil); err == nil {
		t.Fatal("IssueForKey(nil) succeeded")
	}
}

func TestCredentialPublicKey(t *testing.T) {
	a := testAuthority(t)
	id, _ := a.Issue("keyed")
	pub, err := id.Credential.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(id.Private.PublicKey.N) != 0 {
		t.Fatal("PublicKey mismatch")
	}
}

func TestCredentialGarbageCert(t *testing.T) {
	c := &Credential{Entity: "x", Cert: []byte("garbage")}
	if _, err := c.Certificate(); err == nil {
		t.Fatal("parsed garbage certificate")
	}
	if _, err := c.PublicKey(); err == nil {
		t.Fatal("extracted key from garbage certificate")
	}
}

func TestIdentitySigner(t *testing.T) {
	a := testAuthority(t)
	id, _ := a.Issue("signer-entity")
	s, err := id.Signer(secure.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("registration message")
	sig, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := id.Credential.PublicKey()
	if err := secure.Verify(pub, secure.SHA1, msg, sig); err != nil {
		t.Fatalf("verify with credential key: %v", err)
	}
}

func TestNewVerifierGarbage(t *testing.T) {
	if _, err := NewVerifier([]byte("not a cert")); err == nil {
		t.Fatal("NewVerifier accepted garbage")
	}
}

func TestAuthorityName(t *testing.T) {
	a := testAuthority(t)
	if a.Name() != "test-ca" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestUniqueSerials(t *testing.T) {
	a := testAuthority(t)
	id1, _ := a.Issue("s1")
	id2, _ := a.Issue("s2")
	c1, _ := id1.Credential.Certificate()
	c2, _ := id2.Credential.Certificate()
	if c1.SerialNumber.Cmp(c2.SerialNumber) == 0 {
		t.Fatal("issued certificates share a serial number")
	}
}

func TestWithLifetime(t *testing.T) {
	a, err := NewAuthority("short-ca", WithKeyBits(secure.PaperRSABits), WithLifetime(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	id, err := a.Issue("short-lived-entity")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := id.Credential.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	if got := cert.NotAfter.Sub(cert.NotBefore); got > time.Minute+10*time.Minute {
		t.Fatalf("lifetime = %v", got)
	}
}

func TestIssueBrokerRole(t *testing.T) {
	a := testAuthority(t)
	b, err := a.IssueBroker("broker-north")
	if err != nil {
		t.Fatal(err)
	}
	if !b.Credential.IsBroker() {
		t.Fatal("IssueBroker certificate lacks the broker role")
	}
	plain, err := a.Issue("service-beta")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Credential.IsBroker() {
		t.Fatal("plain entity certificate claims the broker role")
	}
	// Broker certificates verify like any other credential.
	v, err := NewVerifier(a.CACertificate())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(&b.Credential); err != nil {
		t.Fatalf("verify broker credential: %v", err)
	}
}
