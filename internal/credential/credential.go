// Package credential implements the certificate infrastructure the paper
// assumes: every entity presents "credentials — a X.509 certificate"
// (§3.1) when creating topics, registering for tracing and discovering
// trace topics. An Authority plays the role of the certificate authority
// trusted by brokers and Topic Discovery Nodes; it issues real X.509
// certificates (crypto/x509) binding an entity identifier to an RSA
// public key.
package credential

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"entitytrace/internal/ident"
	"entitytrace/internal/secure"
)

// Errors returned during credential verification.
var (
	// ErrUntrusted reports a certificate that does not chain to the
	// authority.
	ErrUntrusted = errors.New("credential: certificate not issued by trusted authority")
	// ErrExpired reports a certificate outside its validity window.
	ErrExpired = errors.New("credential: certificate expired or not yet valid")
	// ErrRevoked reports a certificate the authority has revoked.
	ErrRevoked = errors.New("credential: certificate revoked")
)

// BrokerOU is the X.509 OrganizationalUnit the authority stamps into
// broker certificates (IssueBroker). Peer-broker privileges — today,
// requesting §6.3 session keys for sessions the broker relays — are
// granted only to credentials carrying it, so a plain entity or tracker
// certificate cannot claim broker standing just by asking.
const BrokerOU = "entitytrace-broker"

// Credential binds an entity identifier to its certificate and,
// for the holder, the matching private key.
type Credential struct {
	Entity ident.EntityID
	// Cert is the DER-encoded X.509 certificate.
	Cert []byte
	// parsed caches the parsed form.
	parsed *x509.Certificate
}

// Certificate returns the parsed X.509 certificate.
func (c *Credential) Certificate() (*x509.Certificate, error) {
	if c.parsed != nil {
		return c.parsed, nil
	}
	parsed, err := x509.ParseCertificate(c.Cert)
	if err != nil {
		return nil, fmt.Errorf("credential: parsing certificate: %w", err)
	}
	c.parsed = parsed
	return parsed, nil
}

// IsBroker reports whether the certificate carries the broker role
// (OU=BrokerOU). It reads only the parsed subject — callers must have
// verified the certificate chains to the authority before trusting it.
func (c *Credential) IsBroker() bool {
	cert, err := c.Certificate()
	if err != nil {
		return false
	}
	for _, ou := range cert.Subject.OrganizationalUnit {
		if ou == BrokerOU {
			return true
		}
	}
	return false
}

// PublicKey extracts the RSA public key bound by the certificate.
func (c *Credential) PublicKey() (*rsa.PublicKey, error) {
	cert, err := c.Certificate()
	if err != nil {
		return nil, err
	}
	pub, ok := cert.PublicKey.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("credential: certificate key is %T, want *rsa.PublicKey", cert.PublicKey)
	}
	return pub, nil
}

// Identity is a credential together with the private key — what an entity
// holds locally. Possession of the private key is what registration
// (§3.2) demonstrates by signing.
type Identity struct {
	Credential Credential
	Private    *rsa.PrivateKey
}

// Signer returns a secure.Signer bound to the identity's private key.
func (id *Identity) Signer(h secure.Hash) (*secure.Signer, error) {
	return secure.NewSigner(id.Private, h)
}

// Authority is a certificate authority trusted by the system's brokers
// and TDNs. It is safe for concurrent use.
type Authority struct {
	mu      sync.Mutex
	name    string
	key     *rsa.PrivateKey
	cert    *x509.Certificate
	certDER []byte
	pool    *x509.CertPool
	serial  int64
	revoked map[string]bool // serial number (decimal) -> revoked
	keyBits int
	life    time.Duration
}

// AuthorityOption configures a new Authority.
type AuthorityOption func(*Authority)

// WithKeyBits sets the RSA modulus size for the authority and for issued
// certificates (default secure.DefaultRSABits; the paper used 1024).
func WithKeyBits(bits int) AuthorityOption {
	return func(a *Authority) { a.keyBits = bits }
}

// WithLifetime sets the validity duration of issued certificates
// (default 24h).
func WithLifetime(d time.Duration) AuthorityOption {
	return func(a *Authority) { a.life = d }
}

// NewAuthority creates a self-signed certificate authority.
func NewAuthority(name string, opts ...AuthorityOption) (*Authority, error) {
	a := &Authority{
		name:    name,
		serial:  1,
		revoked: make(map[string]bool),
		keyBits: secure.DefaultRSABits,
		life:    24 * time.Hour,
	}
	for _, o := range opts {
		o(a)
	}
	pair, err := secure.GenerateKeyPair(a.keyBits)
	if err != nil {
		return nil, err
	}
	a.key = pair.Private
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"entitytrace"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, pair.Public, pair.Private)
	if err != nil {
		return nil, fmt.Errorf("credential: creating CA certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("credential: parsing CA certificate: %w", err)
	}
	a.cert = cert
	a.certDER = der
	a.pool = x509.NewCertPool()
	a.pool.AddCert(cert)
	return a, nil
}

// Name returns the authority's common name.
func (a *Authority) Name() string { return a.name }

// CACertificate returns the DER-encoded CA certificate, which relying
// parties (brokers, TDNs) embed as their trust anchor.
func (a *Authority) CACertificate() []byte {
	out := make([]byte, len(a.certDER))
	copy(out, a.certDER)
	return out
}

// Issue creates an identity for the given entity: a fresh RSA key pair
// and a certificate signed by the authority.
func (a *Authority) Issue(entity ident.EntityID) (*Identity, error) {
	if err := entity.Validate(); err != nil {
		return nil, err
	}
	pair, err := secure.GenerateKeyPair(a.keyBits)
	if err != nil {
		return nil, err
	}
	return a.IssueForKey(entity, pair.Public, pair.Private)
}

// IssueBroker creates a broker identity: like Issue, but the subject
// carries OU=BrokerOU, the role marker verifiers require before
// honouring broker-only requests (session-key renegotiation for relayed
// sessions).
func (a *Authority) IssueBroker(entity ident.EntityID) (*Identity, error) {
	if err := entity.Validate(); err != nil {
		return nil, err
	}
	pair, err := secure.GenerateKeyPair(a.keyBits)
	if err != nil {
		return nil, err
	}
	return a.issueForKey(entity, pair.Public, pair.Private, []string{BrokerOU})
}

// IssueForKey certifies an existing key pair for the given entity. The
// private key is only embedded in the returned Identity; pass nil if the
// caller does not hold it.
func (a *Authority) IssueForKey(entity ident.EntityID, pub *rsa.PublicKey, priv *rsa.PrivateKey) (*Identity, error) {
	return a.issueForKey(entity, pub, priv, nil)
}

func (a *Authority) issueForKey(entity ident.EntityID, pub *rsa.PublicKey, priv *rsa.PrivateKey, ou []string) (*Identity, error) {
	if err := entity.Validate(); err != nil {
		return nil, err
	}
	if pub == nil {
		return nil, errors.New("credential: nil public key")
	}
	a.mu.Lock()
	a.serial++
	serial := big.NewInt(a.serial)
	a.mu.Unlock()
	now := time.Now()
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject: pkix.Name{
			CommonName:         string(entity),
			Organization:       []string{"entitytrace"},
			OrganizationalUnit: ou,
		},
		NotBefore:   now.Add(-5 * time.Minute),
		NotAfter:    now.Add(a.life),
		KeyUsage:    x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage: []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth, x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.cert, pub, a.key)
	if err != nil {
		return nil, fmt.Errorf("credential: issuing certificate: %w", err)
	}
	return &Identity{
		Credential: Credential{Entity: entity, Cert: der},
		Private:    priv,
	}, nil
}

// Revoke marks a previously issued credential as revoked.
func (a *Authority) Revoke(c *Credential) error {
	cert, err := c.Certificate()
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.revoked[cert.SerialNumber.String()] = true
	return nil
}

// Verifier checks credentials against a trust anchor. Brokers and TDNs
// hold a Verifier rather than the Authority itself.
type Verifier struct {
	pool      *x509.CertPool
	mu        sync.RWMutex
	revoked   map[string]bool
	now       func() time.Time
	checkName bool
}

// NewVerifier builds a Verifier trusting the given DER-encoded CA
// certificate.
func NewVerifier(caDER []byte) (*Verifier, error) {
	cert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return nil, fmt.Errorf("credential: parsing CA certificate: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &Verifier{
		pool:      pool,
		revoked:   make(map[string]bool),
		now:       time.Now,
		checkName: true,
	}, nil
}

// SetTimeFunc overrides the verifier clock, for tests.
func (v *Verifier) SetTimeFunc(f func() time.Time) { v.now = f }

// MarkRevoked records a revoked serial number (distributed out of band in
// this reproduction; the paper does not specify a revocation transport).
func (v *Verifier) MarkRevoked(serial string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.revoked[serial] = true
}

// Verify checks that the credential chains to the trust anchor, is within
// its validity window, is not revoked, and names the claimed entity. It
// returns the bound public key on success.
func (v *Verifier) Verify(c *Credential) (*rsa.PublicKey, error) {
	cert, err := c.Certificate()
	if err != nil {
		return nil, err
	}
	v.mu.RLock()
	revoked := v.revoked[cert.SerialNumber.String()]
	v.mu.RUnlock()
	if revoked {
		return nil, ErrRevoked
	}
	opts := x509.VerifyOptions{
		Roots:       v.pool,
		CurrentTime: v.now(),
		KeyUsages:   []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}
	if _, err := cert.Verify(opts); err != nil {
		var invalid x509.CertificateInvalidError
		if errors.As(err, &invalid) && invalid.Reason == x509.Expired {
			return nil, fmt.Errorf("%w: %v", ErrExpired, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrUntrusted, err)
	}
	if v.checkName && cert.Subject.CommonName != string(c.Entity) {
		return nil, fmt.Errorf("%w: certificate names %q, credential claims %q",
			ErrUntrusted, cert.Subject.CommonName, c.Entity)
	}
	pub, ok := cert.PublicKey.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("credential: certificate key is %T, want *rsa.PublicKey", cert.PublicKey)
	}
	return pub, nil
}
