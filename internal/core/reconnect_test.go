package core

import (
	"testing"
	"time"

	"entitytrace/internal/backoff"
	"entitytrace/internal/broker"
	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/topic"
)

// fastReconnect is a millisecond-scale backoff for reconnect tests.
func fastReconnect() backoff.Config {
	return backoff.Config{Initial: 10 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 7}
}

// redialer returns a Redial closure dialing broker bi as name.
func (tb *testbed) redialer(name ident.EntityID, bi int) func() (*broker.Client, error) {
	addr := tb.addrs[bi]
	return func() (*broker.Client, error) {
		return broker.Connect(tb.tr, addr, name)
	}
}

// TestEntityReconnectResumesSession severs a traced entity's broker
// connection mid-session. With Redial configured the entity must dial a
// replacement under backoff, re-register its existing advertisement,
// re-run the key/delegation handshake and carry on publishing state
// traces that the (undisturbed) tracker still receives.
func TestEntityReconnectResumesSession(t *testing.T) {
	tb := newTestbed(t, 1)
	ok0, resumes0 := mReconnOKEntity.Value(), mSessionResumes.Value()

	ent, err := tb.startEntity("svc-reconnect", 0, func(cfg *EntityConfig) {
		cfg.Redial = tb.redialer("svc-reconnect", 0)
		cfg.ReconnectBackoff = fastReconnect()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ent.Stop()
	oldSession := ent.SessionID()

	tk := tb.startTracker("tracker-reconnect", 0)
	col := newCollector()
	if _, err := tk.Track(ent.Advertisement(), topic.AllClasses(), col.handle); err != nil {
		t.Fatal(err)
	}
	// Heartbeats prove the broker knows the tracker's interest; only then
	// are constrained state traces guaranteed to route.
	col.waitFor(t, "heartbeat", typeIs(message.TraceAllsWell))
	if err := ent.SetState(message.StateReady); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, "pre-failure READY trace", typeIs(message.TraceReady))

	// Sever the connection out from under the entity, as a crashed broker
	// link would. The reconnect loop observes Done() and takes over.
	_ = ent.client().Close()

	// Publishing fails while down; keep nudging until a post-resume state
	// trace makes it through the fresh session.
	deadline := time.After(10 * time.Second)
	for len(col.eventsOfType(message.TraceRecovering)) == 0 {
		_ = ent.SetState(message.StateRecovering)
		select {
		case <-deadline:
			t.Fatal("no RECOVERING trace after reconnect")
		case <-time.After(20 * time.Millisecond):
		}
	}

	if got := ent.SessionID(); got == oldSession {
		t.Fatal("session ID unchanged: resume did not re-register")
	}
	if d := mReconnOKEntity.Value() - ok0; d < 1 {
		t.Fatalf("core_reconnects_total{role=entity} delta = %d", d)
	}
	if d := mSessionResumes.Value() - resumes0; d < 1 {
		t.Fatalf("core_session_resumes_total delta = %d", d)
	}
}

// TestTrackerReconnectRestoresWatches severs the tracker's broker
// connection. With Redial configured the tracker must re-subscribe every
// watch topic on the replacement client and re-announce interest, so
// state traces resume flowing without re-tracking.
func TestTrackerReconnectRestoresWatches(t *testing.T) {
	tb := newTestbed(t, 1)
	ok0 := mReconnOKTracker.Value()

	ent, err := tb.startEntity("svc-steady", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ent.Stop()

	id := issue(t, "tracker-comeback")
	cl, err := broker.Connect(tb.tr, tb.addrs[0], "tracker-comeback")
	if err != nil {
		t.Fatal(err)
	}
	tk, err := NewTracker(TrackerConfig{
		Identity:         id,
		Verifier:         fxVerifier,
		Discovery:        tb.node,
		Resolver:         NewCachingResolver(NodeResolver(tb.node)),
		Client:           cl,
		Redial:           tb.redialer("tracker-comeback", 0),
		ReconnectBackoff: fastReconnect(),
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Close()

	col := newCollector()
	if _, err := tk.Track(ent.Advertisement(), topic.AllClasses(), col.handle); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, "heartbeat", typeIs(message.TraceAllsWell))
	if err := ent.SetState(message.StateReady); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, "pre-failure READY trace", typeIs(message.TraceReady))

	// Drop the tracker's connection: the broker forgets its subscriptions,
	// so only a successful resubscribe can deliver further traces.
	_ = tk.client().Close()

	deadline := time.After(10 * time.Second)
	for len(col.eventsOfType(message.TraceRecovering)) == 0 {
		_ = ent.SetState(message.StateRecovering)
		select {
		case <-deadline:
			t.Fatal("no RECOVERING trace after tracker reconnect")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if d := mReconnOKTracker.Value() - ok0; d < 1 {
		t.Fatalf("core_reconnects_total{role=tracker} delta = %d", d)
	}
}

// TestEvictedReconnectBacksOffThenRecovers evicts a connected entity via
// an administrative ban: the reconnect loop must recognize the typed
// eviction (on the dropped connection and on each quarantine-refused
// redial) and advance its backoff schedule extra steps instead of
// hot-looping, then resume normally once the quarantine lapses.
func TestEvictedReconnectBacksOffThenRecovers(t *testing.T) {
	tb := newTestbed(t, 1)
	penalties0, ok0 := mEvictedBackoffs.Value(), mReconnOKEntity.Value()

	ent, err := tb.startEntity("svc-banished", 0, func(cfg *EntityConfig) {
		cfg.Redial = tb.redialer("svc-banished", 0)
		cfg.ReconnectBackoff = fastReconnect()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ent.Stop()

	tb.brokers[0].Banish("svc-banished", 600*time.Millisecond)
	select {
	case <-ent.client().Done():
	case <-time.After(5 * time.Second):
		t.Fatal("banished entity's connection not dropped")
	}
	// The eviction itself plus at least one quarantine-refused redial
	// must each have advanced the backoff an extra step.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && mEvictedBackoffs.Value()-penalties0 < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	if d := mEvictedBackoffs.Value() - penalties0; d < 2 {
		t.Fatalf("core_evicted_backoffs_total delta = %d, want >= 2", d)
	}

	// Once the quarantine lapses the ordinary reconnect machinery brings
	// the session back without intervention.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && mReconnOKEntity.Value()-ok0 < 1 {
		time.Sleep(5 * time.Millisecond)
	}
	if d := mReconnOKEntity.Value() - ok0; d < 1 {
		t.Fatalf("entity never resumed after quarantine lapsed (reconnects delta = %d)", d)
	}
}

// TestReconnectLoopStopsCleanly ensures Stop/Close tear down the
// reconnect goroutines without hanging, both mid-session and while a
// redial cycle is in flight.
func TestReconnectLoopStopsCleanly(t *testing.T) {
	tb := newTestbed(t, 1)
	ent, err := tb.startEntity("svc-brief", 0, func(cfg *EntityConfig) {
		cfg.Redial = tb.redialer("svc-brief", 0)
		cfg.ReconnectBackoff = fastReconnect()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sever so the loop enters its redial cycle, then stop underneath it.
	_ = ent.client().Close()
	time.Sleep(25 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		_ = ent.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung with reconnect loop active")
	}
}
