package core

import (
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"entitytrace/internal/clock"
	"entitytrace/internal/ident"
	"entitytrace/internal/message"
	"entitytrace/internal/secure"
	"entitytrace/internal/token"
	"entitytrace/internal/topic"
)

// mintSessionKey derives a session key from fresh parameters bound to
// the given token digest, valid [now, now+life).
func mintSessionKey(t *testing.T, digest [32]byte, now time.Time, life time.Duration) *secure.SessionKey {
	t.Helper()
	params, err := secure.NewSessionParams(digest, now.UnixNano(), now.Add(life).UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	key, err := params.Derive(ident.NewUUID().String(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// Re-installing the same session ID (repeated SESSION_KEY_RESPONSE
// deliveries, renegotiation re-requests) must not accumulate duplicate
// byToken index entries: InvalidateToken counts each session once and
// the bucket empties completely.
func TestSessionStoreReinstallKeepsTokenIndexClean(t *testing.T) {
	store := NewSessionStore(0)
	tt := ident.NewUUID()
	digest := sha256.Sum256([]byte("token-bytes"))
	key := mintSessionKey(t, digest, time.Now(), time.Minute)

	for i := 0; i < 5; i++ {
		store.Install(tt, key)
	}
	if got := store.Len(); got != 1 {
		t.Fatalf("Len after re-installs = %d, want 1", got)
	}
	if got := store.InvalidateToken(digest); got != 1 {
		t.Fatalf("InvalidateToken = %d, want 1 (byToken accumulated duplicates)", got)
	}
	// The bucket must be gone: a second invalidation finds nothing.
	if got := store.InvalidateToken(digest); got != 0 {
		t.Fatalf("second InvalidateToken = %d, want 0 (stale byToken entries survived)", got)
	}
	if _, _, ok := store.Lookup(key.ID()); ok {
		t.Fatal("session still installed after InvalidateToken")
	}

	// Install → Invalidate → re-install must land back at exactly one
	// token-index entry.
	store.Install(tt, key)
	store.Invalidate(key.ID())
	store.Install(tt, key)
	if got := store.InvalidateToken(digest); got != 1 {
		t.Fatalf("InvalidateToken after reinstall = %d, want 1", got)
	}
}

// Re-installing must not consume FIFO capacity: the store's eviction
// order tracks distinct sessions, not installation calls.
func TestSessionStoreReinstallDoesNotGrowFIFO(t *testing.T) {
	store := NewSessionStore(2)
	tt := ident.NewUUID()
	now := time.Now()
	k1 := mintSessionKey(t, sha256.Sum256([]byte("t1")), now, time.Minute)
	k2 := mintSessionKey(t, sha256.Sum256([]byte("t2")), now, time.Minute)

	for i := 0; i < 4; i++ {
		store.Install(tt, k1)
	}
	store.Install(tt, k2)
	if _, _, ok := store.Lookup(k1.ID()); !ok {
		t.Fatal("k1 evicted by its own re-installs")
	}
	if _, _, ok := store.Lookup(k2.ID()); !ok {
		t.Fatal("k2 missing")
	}
}

// newTestSessionPublisher grants a publish delegation under a fake
// clock and wraps it in a SessionPublisher.
func newTestSessionPublisher(t *testing.T, clk *clock.Fake, tokenLife, maxLife time.Duration) *SessionPublisher {
	t.Helper()
	fixture(t)
	id := issue(t, "sp-unit-owner")
	signer, err := id.Signer(secure.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	tt := ident.NewUUID()
	del, err := token.Grant("sp-unit-owner", tt, token.RightPublish, tokenLife, clk.Now(), signer, secure.PaperRSABits)
	if err != nil {
		t.Fatal(err)
	}
	delegate, err := secure.NewSigner(del.PrivateKey, TraceSigHash)
	if err != nil {
		t.Fatal(err)
	}
	return NewSessionPublisher(tt, "sp-unit-owner", del.Token.Marshal(), delegate, clk.Now, maxLife)
}

// Sign must stay on the RSA fallback until the freshly minted session
// key has been distributed to a verifier (MarkDistributed), and fall
// back again after every rekey — otherwise each ~10-minute rekey opens
// a gap where every session-tagged heartbeat is dropped as
// unknown-session until renegotiation catches up.
func TestSessionPublisherSignGatedOnDistribution(t *testing.T) {
	clk := clock.NewFake(time.Now())
	sp := newTestSessionPublisher(t, clk, time.Hour, 10*time.Minute)
	if _, err := sp.Rekey(); err != nil {
		t.Fatal(err)
	}
	tt := sp.TraceTopic()
	sign := func() (bool, *message.Envelope) {
		env := message.New(message.TraceAllsWell, topic.AllUpdates(tt), "", []byte("hb"))
		sessionSigned, err := sp.Sign(env)
		if err != nil {
			t.Fatal(err)
		}
		return sessionSigned, env
	}

	if sessionSigned, env := sign(); sessionSigned || len(env.Token) == 0 {
		t.Fatalf("undistributed key: sessionSigned=%v tokenLen=%d, want RSA fallback with token", sessionSigned, len(env.Token))
	}
	firstID := sp.Key().ID()

	// A stale (or bogus) ID must not unlock tagging.
	var wrong [secure.SessionIDLen]byte
	wrong[0] = ^firstID[0]
	sp.MarkDistributed(wrong)
	if sessionSigned, _ := sign(); sessionSigned {
		t.Fatal("MarkDistributed with a foreign ID unlocked session tagging")
	}

	sp.MarkDistributed(firstID)
	if sessionSigned, env := sign(); !sessionSigned || len(env.Token) != 0 {
		t.Fatalf("distributed key: sessionSigned=%v tokenLen=%d, want session tag without token", sessionSigned, len(env.Token))
	}

	// Window expiry: Sign falls back to RSA and mints a fresh key, which
	// again waits on distribution.
	clk.Advance(11 * time.Minute)
	if sessionSigned, _ := sign(); sessionSigned {
		t.Fatal("expired session still tag-signed")
	}
	secondID := sp.Key().ID()
	if secondID == firstID {
		t.Fatal("expired Sign did not rekey")
	}
	if sessionSigned, _ := sign(); sessionSigned {
		t.Fatal("fresh undistributed key tag-signed before delivery")
	}
	sp.MarkDistributed(secondID)
	if sessionSigned, _ := sign(); !sessionSigned {
		t.Fatal("distributed rekeyed session did not resume tagging")
	}
}

// SealedParamsFor must report the ID of the session actually sealed —
// including one a rekey just minted — so callers mark exactly that
// session distributed.
func TestSealedParamsForReturnsSealedID(t *testing.T) {
	clk := clock.NewFake(time.Now())
	sp := newTestSessionPublisher(t, clk, time.Hour, 10*time.Minute)
	id := issue(t, "sp-unit-verifier")

	// No key yet: SealedParamsFor rekeys internally.
	sealed, sid, err := sp.SealedParamsFor(&id.Private.PublicKey)
	if err != nil || len(sealed) == 0 {
		t.Fatalf("SealedParamsFor: %v", err)
	}
	if sid != sp.Key().ID() {
		t.Fatal("returned ID does not match the sealed session")
	}
	params, err := secure.OpenSessionParams(id.Private, sealed)
	if err != nil {
		t.Fatal(err)
	}
	key, err := params.Derive(sp.TraceTopic().String(), sp.Principal())
	if err != nil {
		t.Fatal(err)
	}
	if key.ID() != sid {
		t.Fatal("opened params derive a different session than reported")
	}
}

// The responder-side rate limiter: one admitted request per requester
// and sessionKeyRespBurst total per window, before any crypto work.
func TestAdmitSessionKeyRequest(t *testing.T) {
	s := &session{skReqLast: make(map[ident.EntityID]time.Time)}
	base := time.Now()

	if !s.admitSessionKeyRequest("r1", base) {
		t.Fatal("first request refused")
	}
	if s.admitSessionKeyRequest("r1", base.Add(500*time.Millisecond)) {
		t.Fatal("repeat request inside the interval admitted")
	}
	if !s.admitSessionKeyRequest("r1", base.Add(sessionRequestMinInterval+time.Millisecond)) {
		t.Fatal("request after the interval refused")
	}

	// Global per-session burst: cycling requester names must not buy
	// unbounded work.
	s2 := &session{skReqLast: make(map[ident.EntityID]time.Time)}
	w := time.Now()
	for i := 0; i < sessionKeyRespBurst; i++ {
		if !s2.admitSessionKeyRequest(ident.EntityID("req-"+string(rune('a'+i))), w) {
			t.Fatalf("request %d inside burst refused", i)
		}
	}
	if s2.admitSessionKeyRequest("req-overflow", w) {
		t.Fatal("request beyond the per-window burst admitted")
	}
	if !s2.admitSessionKeyRequest("req-overflow", w.Add(sessionRequestMinInterval)) {
		t.Fatal("request in the next window refused")
	}

	// Sessions without the map (session keys off) admit nothing.
	s3 := &session{}
	if s3.admitSessionKeyRequest("r1", base) {
		t.Fatal("session-keys-off session admitted a request")
	}
}

// interestedTracker honours expiry: a lapsed §5.1 registration grants
// no session-key standing.
func TestInterestedTrackerExpiry(t *testing.T) {
	now := time.Now()
	s := &session{interest: map[topic.TraceClass]map[ident.EntityID]time.Time{
		topic.ClassAllUpdates: {
			"fresh": now.Add(time.Minute),
			"stale": now.Add(-time.Minute),
		},
	}}
	if !s.interestedTracker("fresh", now) {
		t.Fatal("unexpired interest not recognized")
	}
	if s.interestedTracker("stale", now) {
		t.Fatal("expired interest still grants standing")
	}
	if s.interestedTracker("unknown", now) {
		t.Fatal("unregistered tracker has standing")
	}
}

// A full recipient table must evict its longest-idle entry to admit a
// new verifier — the old behavior silently dropped every arrival past
// capacity, so a churn of short-lived trackers permanently locked
// later ones out of proactive rekey pushes.
func TestSessionKeyRecipientEvictsOldestWhenFull(t *testing.T) {
	s := &session{sessionKeyRecips: make(map[ident.EntityID]*sessionKeyRecipient)}
	var id [secure.SessionIDLen]byte
	for i := 0; i < sessionKeyMaxRecipients; i++ {
		s.rememberRecipient(ident.EntityID(fmt.Sprintf("tracker-%04d", i)), id, "/t", nil)
	}
	// Refresh the very first recipient: it becomes the most recent.
	s.rememberRecipient("tracker-0000", id, "/t", nil)

	s.rememberRecipient("tracker-new", id, "/t", nil)
	if got := len(s.sessionKeyRecips); got != sessionKeyMaxRecipients {
		t.Fatalf("table size = %d, want %d", got, sessionKeyMaxRecipients)
	}
	if _, ok := s.sessionKeyRecips["tracker-new"]; !ok {
		t.Fatal("new recipient was dropped instead of admitted")
	}
	if _, ok := s.sessionKeyRecips["tracker-0000"]; !ok {
		t.Fatal("recently refreshed recipient was evicted")
	}
	if _, ok := s.sessionKeyRecips["tracker-0001"]; ok {
		t.Fatal("longest-idle recipient survived a full-table insert")
	}
}
